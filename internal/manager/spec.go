// ClusterSpec is the wire-serializable description of a deployment: the
// topology tree plus the deterministic knobs of DeployConfig. The
// coordinator of a multi-process run sends it to every shard process,
// which rebuilds its partition from the spec — both sides must derive
// identical names, MACs, IPs and seeds, so the spec round-trips through
// the exact same assignment passes Deploy uses.
package manager

import (
	"encoding/json"
	"fmt"

	"repro/internal/clock"
)

// NodeSpec is one topology node in serializable form. Exactly one of
// Switch/Server is set (switches carry downlinks, servers a blade type).
type NodeSpec struct {
	Switch    string     `json:"switch,omitempty"`
	Server    string     `json:"server,omitempty"`
	Blade     string     `json:"blade,omitempty"`
	Downlinks []NodeSpec `json:"downlinks,omitempty"`
}

// WorkloadSpec names a deterministic workload every process of a
// distributed run applies to its own nodes. Kind "stream" starts a paced
// raw Ethernet stream on every node i toward node (i+1) mod N — chosen
// because it is serializable (the generator is part of node checkpoints)
// and exercises every link through the root.
type WorkloadSpec struct {
	Kind       string  `json:"kind"`
	StartAt    uint64  `json:"startAt"`
	FrameBytes int     `json:"frameBytes"`
	Gbps       float64 `json:"gbps"`
	StopAt     uint64  `json:"stopAt"`
}

// ClusterSpec carries everything a process needs to build its slice of
// the simulation. Fault injection and supernode packing are deliberately
// absent: neither is supported in distributed runs (the fault plan hooks
// the whole-cluster runner, and supernode multiplexing would straddle the
// partition boundary).
type ClusterSpec struct {
	Root             NodeSpec      `json:"root"`
	LinkLatency      uint64        `json:"linkLatency"`
	SwitchingLatency uint64        `json:"switchingLatency"`
	Seed             uint64        `json:"seed"`
	Freq             uint64        `json:"freq,omitempty"`
	Parallel         bool          `json:"parallel,omitempty"`
	Workers          int           `json:"workers,omitempty"`
	Workload         *WorkloadSpec `json:"workload,omitempty"`
	// CutLevel is the tree depth at which the partition is cut into units
	// (see CutUnits): 0 or 1 cuts at the root's downlinks (the historical
	// behavior), 2 cuts below the aggregation tier, and so on. It is a
	// host-side partitioning knob — it changes which process simulates
	// what, never what is simulated — so it is deliberately not part of
	// TopologyHash.
	CutLevel int `json:"cutLevel,omitempty"`
}

// maxSpecNodes bounds how many topology nodes a decoded spec may carry; a
// malicious or corrupt control frame cannot make a shard allocate an
// unbounded tree.
const maxSpecNodes = 1 << 16

// SpecFromTopology snapshots a topology into its serializable form. Names
// must already be assigned (Deploy and the coordinator both run the
// assignment passes first); an unnamed node is an error, because the two
// sides of the wire could not agree on identity.
func SpecFromTopology(root *SwitchNode, cfg DeployConfig) (ClusterSpec, error) {
	var conv func(t TopoNode) (NodeSpec, error)
	conv = func(t TopoNode) (NodeSpec, error) {
		switch v := t.(type) {
		case *SwitchNode:
			if v.Name == "" {
				return NodeSpec{}, fmt.Errorf("manager: spec: unnamed switch (run the assignment passes first)")
			}
			ns := NodeSpec{Switch: v.Name}
			for _, d := range v.Downlinks {
				c, err := conv(d)
				if err != nil {
					return NodeSpec{}, err
				}
				ns.Downlinks = append(ns.Downlinks, c)
			}
			return ns, nil
		case *ServerNode:
			if v.Name == "" {
				return NodeSpec{}, fmt.Errorf("manager: spec: unnamed server (run the assignment passes first)")
			}
			return NodeSpec{Server: v.Name, Blade: string(v.Type)}, nil
		default:
			return NodeSpec{}, fmt.Errorf("manager: spec: unknown topology node %T", t)
		}
	}
	rs, err := conv(root)
	if err != nil {
		return ClusterSpec{}, err
	}
	return ClusterSpec{
		Root:             rs,
		LinkLatency:      uint64(cfg.LinkLatency),
		SwitchingLatency: uint64(cfg.SwitchingLatency),
		Seed:             cfg.Seed,
		Freq:             uint64(cfg.Freq),
		Parallel:         false,
		Workers:          cfg.Workers,
	}, nil
}

// RackSpec builds the canonical distributed-run topology — nodes
// single-core servers hanging directly off the root switch, so every
// server is its own partition unit — runs the assignment passes, and
// returns the serializable spec. The CLI and examples build their
// distributed clusters through this one helper so coordinator and
// reference runs always agree on identities.
func RackSpec(nodes int, cfg DeployConfig) (ClusterSpec, error) {
	if nodes < 1 {
		return ClusterSpec{}, fmt.Errorf("manager: rack spec: need at least 1 node, got %d", nodes)
	}
	root := NewSwitchNode("")
	for i := 0; i < nodes; i++ {
		root.AddDownlinks(NewServerNode("", SingleCore))
	}
	cfg = normalizeConfig(cfg)
	assignSwitchNames(root)
	assignIdentities(root, cfg)
	return SpecFromTopology(root, cfg)
}

// TreeSpec builds a uniform tree distributed-run topology mirroring
// core.Tree — fanouts[0] switches under the root, and so on, with the last
// fanout counting servers per leaf switch (so []int{4, 8, 32} is the
// paper's 1024-node datacenter) — runs the assignment passes, and returns
// the serializable spec with the given partition cut level. A single
// fanout degenerates to RackSpec's shape.
func TreeSpec(fanouts []int, blade BladeType, cfg DeployConfig, cutLevel int) (ClusterSpec, error) {
	if len(fanouts) == 0 {
		return ClusterSpec{}, fmt.Errorf("manager: tree spec: need at least one fanout")
	}
	for _, f := range fanouts {
		if f < 1 {
			return ClusterSpec{}, fmt.Errorf("manager: tree spec: fanouts must be positive, got %v", fanouts)
		}
	}
	if cutLevel < 0 || cutLevel > len(fanouts) {
		return ClusterSpec{}, fmt.Errorf("manager: tree spec: cut level %d outside tree depth %d", cutLevel, len(fanouts))
	}
	root := NewSwitchNode("")
	var grow func(s *SwitchNode, level int)
	grow = func(s *SwitchNode, level int) {
		if level == len(fanouts)-1 {
			for i := 0; i < fanouts[level]; i++ {
				s.AddDownlinks(NewServerNode("", blade))
			}
			return
		}
		for i := 0; i < fanouts[level]; i++ {
			c := NewSwitchNode("")
			s.AddDownlinks(c)
			grow(c, level+1)
		}
	}
	grow(root, 0)
	cfg = normalizeConfig(cfg)
	assignSwitchNames(root)
	assignIdentities(root, cfg)
	spec, err := SpecFromTopology(root, cfg)
	if err != nil {
		return ClusterSpec{}, err
	}
	spec.CutLevel = cutLevel
	return spec, nil
}

// Topology rebuilds the topology tree and DeployConfig the spec carries.
func (s ClusterSpec) Topology() (*SwitchNode, DeployConfig, error) {
	if s.CutLevel < 0 {
		return nil, DeployConfig{}, fmt.Errorf("manager: spec: negative cut level %d", s.CutLevel)
	}
	nodes := 0
	var conv func(ns NodeSpec) (TopoNode, error)
	conv = func(ns NodeSpec) (TopoNode, error) {
		nodes++
		if nodes > maxSpecNodes {
			return nil, fmt.Errorf("manager: spec: more than %d topology nodes", maxSpecNodes)
		}
		switch {
		case ns.Switch != "" && ns.Server == "":
			sw := NewSwitchNode(ns.Switch)
			for _, d := range ns.Downlinks {
				c, err := conv(d)
				if err != nil {
					return nil, err
				}
				sw.AddDownlinks(c)
			}
			return sw, nil
		case ns.Server != "" && ns.Switch == "":
			if len(ns.Downlinks) != 0 {
				return nil, fmt.Errorf("manager: spec: server %q has downlinks", ns.Server)
			}
			return NewServerNode(ns.Server, BladeType(ns.Blade)), nil
		default:
			return nil, fmt.Errorf("manager: spec: node is neither switch nor server")
		}
	}
	t, err := conv(s.Root)
	if err != nil {
		return nil, DeployConfig{}, err
	}
	root, ok := t.(*SwitchNode)
	if !ok {
		return nil, DeployConfig{}, fmt.Errorf("manager: spec: root is not a switch")
	}
	if err := Validate(root); err != nil {
		return nil, DeployConfig{}, err
	}
	cfg := DeployConfig{
		LinkLatency:      clock.Cycles(s.LinkLatency),
		SwitchingLatency: clock.Cycles(s.SwitchingLatency),
		Seed:             s.Seed,
		Freq:             clock.Hz(s.Freq),
		Workers:          s.Workers,
	}
	return root, cfg, nil
}

// Encode serialises the spec (the payload format of assign frames).
func (s ClusterSpec) Encode() ([]byte, error) { return json.Marshal(s) }

// DecodeSpec parses an encoded spec, enforcing the node bound.
func DecodeSpec(data []byte) (ClusterSpec, error) {
	var s ClusterSpec
	if err := json.Unmarshal(data, &s); err != nil {
		return ClusterSpec{}, fmt.Errorf("manager: spec decode: %w", err)
	}
	// Bounds are enforced during Topology(); run it once here so a bad
	// spec is rejected at decode time, not deep inside a build.
	if _, _, err := s.Topology(); err != nil {
		return ClusterSpec{}, err
	}
	return s, nil
}

// Apply installs the spec's workload on the locally instantiated nodes.
// ids must be the cluster-wide assignment-ordered identities — the
// destination ring is computed over the FULL cluster so every process
// agrees on who streams to whom — and only identities with an
// instantiated Node are touched.
func (w *WorkloadSpec) Apply(ids []*NodeIdentity) error {
	if w == nil {
		return nil
	}
	switch w.Kind {
	case "stream":
		n := len(ids)
		if n == 0 {
			return fmt.Errorf("manager: workload: no servers")
		}
		for _, id := range ids {
			if id.Node == nil {
				continue
			}
			dst := ids[(id.Index+1)%n].MAC
			id.Node.StartRawStream(clock.Cycles(w.StartAt), dst, w.FrameBytes, w.Gbps, clock.Cycles(w.StopAt))
		}
		return nil
	default:
		return fmt.Errorf("manager: workload: unknown kind %q", w.Kind)
	}
}
