package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/ethernet"
	"repro/internal/fame"
	"repro/internal/nic"
	"repro/internal/riscv"
	"repro/internal/soc"
	"repro/internal/stats"
	"repro/internal/switchmodel"
)

func init() {
	register("iperf", func(sc Scale) (Result, error) { return Iperf(sc) })
	register("baremetal", func(sc Scale) (Result, error) { return BareMetal(sc) })
}

// IperfResult is the Section IV-B measurement.
type IperfResult struct {
	// GoodputGbps is the TCP-style stream goodput over Linux.
	GoodputGbps float64
}

// Title implements Result.
func (IperfResult) Title() string { return "Section IV-B: iperf3 on Linux" }

// Render implements Result.
func (r IperfResult) Render() string {
	return fmt.Sprintf("iperf3 goodput over modeled Linux stack: %.2f Gbit/s\n"+
		"Paper reference: 1.4 Gbit/s (software-stack-limited on a 200 Gbit/s link).\n", r.GoodputGbps)
}

// Iperf measures stream goodput between two nodes on one ToR switch.
func Iperf(sc Scale) (IperfResult, error) {
	dur := clock.Cycles(64_000_000) // 20 ms
	if sc.Quick {
		dur = 16_000_000
	}
	c, err := core.Deploy(core.Rack("tor0", 2, core.QuadCore), core.DeployConfig{})
	if err != nil {
		return IperfResult{}, err
	}
	srv := apps.NewIperfServer(c.Servers[1])
	apps.NewIperfClient(c.Servers[0], c.Servers[1].IP(), 0, dur)
	if err := c.RunFor(dur + 1_000_000); err != nil {
		return IperfResult{}, err
	}
	return IperfResult{GoodputGbps: srv.GoodputGbps()}, nil
}

// BareMetalResult is the Section IV-C measurement.
type BareMetalResult struct {
	// WireGbps is the bandwidth a single NIC drove onto the network.
	WireGbps float64
	// PacketsReceived verifies the receiver actually consumed the stream.
	PacketsReceived uint64
}

// Title implements Result.
func (BareMetalResult) Title() string { return "Section IV-C: bare-metal node-to-node bandwidth" }

// Render implements Result.
func (r BareMetalResult) Render() string {
	return fmt.Sprintf("bare-metal single-NIC bandwidth: %.1f Gbit/s (%d packets)\n"+
		"Paper reference: ~100 Gbit/s from one NIC, confirming the Linux stack (1.4 Gbit/s) is the bottleneck.\n",
		r.WireGbps, r.PacketsReceived)
}

// bareMetalSender builds the RV64 program that drives the NIC at maximum
// rate: enqueue the same packet whenever the send queue has space, npkts
// times, then power off.
func bareMetalSender(pktAddr uint64, pktLen, ringSlots, npkts int) *riscv.Asm {
	a := riscv.NewAsm()
	a.LI64(riscv.T0, soc.NICBase)
	a.LI64(riscv.T1, pktAddr|uint64(pktLen)<<48)
	a.MV(riscv.S0, riscv.T1)         // ring base descriptor
	a.LI(riscv.S1, int32(ringSlots)) // slots until wrap
	a.MV(riscv.S2, riscv.S1)         // countdown
	a.LI(riscv.S3, int32(pktLen))    // descriptor stride
	a.LI(riscv.T2, int32(npkts))     // sends remaining
	a.LI(riscv.T4, int32(npkts))     // completions remaining
	// Main loop: drain a completion if one is pending (the completion
	// queue is only 16 deep, so it must be serviced while sending), then
	// enqueue a send if a request slot is free.
	a.Label("loop")
	a.LD(riscv.T3, riscv.T0, nic.RegCounts)
	a.SRLI(riscv.T5, riscv.T3, 16)
	a.ANDI(riscv.T5, riscv.T5, 0xff)
	a.BEQ(riscv.T5, riscv.Zero, "trysend")
	a.LD(riscv.Zero, riscv.T0, nic.RegSendComp)
	a.ADDI(riscv.T4, riscv.T4, -1)
	a.Label("trysend")
	a.BEQ(riscv.T2, riscv.Zero, "checkdone")
	a.ANDI(riscv.T5, riscv.T3, 0xff) // free send-request slots
	a.BEQ(riscv.T5, riscv.Zero, "checkdone")
	a.SD(riscv.T1, riscv.T0, nic.RegSendReq)
	a.ADDI(riscv.T2, riscv.T2, -1)
	// Advance around the packet ring: the ring exceeds the L2 capacity so
	// the reader's DMA streams from DRAM, like the paper's "sequence of
	// Ethernet packets".
	a.ADDI(riscv.S2, riscv.S2, -1)
	a.ADD(riscv.T1, riscv.T1, riscv.S3)
	a.BNE(riscv.S2, riscv.Zero, "checkdone")
	a.MV(riscv.T1, riscv.S0)
	a.MV(riscv.S2, riscv.S1)
	a.Label("checkdone")
	a.BNE(riscv.T2, riscv.Zero, "loop")
	a.BNE(riscv.T4, riscv.Zero, "loop")
	a.LI(riscv.T6, int32(soc.PowerOff))
	a.SD(riscv.Zero, riscv.T6, 0)
	return a
}

// BareMetal runs the RTL-level bandwidth test: a cycle-exact sender blade
// drives maximum-rate traffic through the token network; the wire rate is
// measured at the switch. The DDR3 streaming bandwidth (12.8 GB/s =
// ~102 Gbit/s) is the physical bottleneck, reproducing the paper's
// ~100 Gbit/s result.
func BareMetal(sc Scale) (BareMetalResult, error) {
	const pktLen = 4096
	// The packet ring spans 512 KiB — twice the L2 — so the NIC reader
	// streams from DRAM like the paper's test.
	const ringSlots = 128
	npkts := 512
	if sc.Quick {
		npkts = 192
	}

	frame := &ethernet.Frame{
		Dst: 0x0200_0000_0002, Src: 0x0200_0000_0001,
		Type: ethernet.TypeIPv4, Payload: make([]byte, pktLen-ethernet.HeaderLen),
	}
	buf, err := frame.Encode()
	if err != nil {
		return BareMetalResult{}, err
	}

	prog, err := bareMetalSender(soc.DRAMBase+0x10000, len(buf), ringSlots, npkts).Bytes()
	if err != nil {
		return BareMetalResult{}, err
	}
	sender, err := soc.New(soc.Config{Name: "sender", Cores: 1, MAC: 0x0200_0000_0001}, prog)
	if err != nil {
		return BareMetalResult{}, err
	}
	for s := 0; s < ringSlots; s++ {
		sender.DRAM().WriteBytes(0x10000+uint64(s*pktLen), buf)
	}

	sink := fame.NewSink("recv")
	sw := switchmodel.New(switchmodel.Config{Name: "tor", Ports: 2})
	sw.MACTable().Set(0x0200_0000_0001, 0)
	sw.MACTable().Set(0x0200_0000_0002, 1)

	r := fame.NewRunner()
	r.Add(sender)
	r.Add(sink)
	r.Add(sw)
	const linkLat = 640
	if err := r.Connect(sender, 0, sw, 0, linkLat); err != nil {
		return BareMetalResult{}, err
	}
	if err := r.Connect(sw, 1, sink, 0, linkLat); err != nil {
		return BareMetalResult{}, err
	}

	for !sender.Halted() && r.Cycle() < 100_000_000 {
		if err := r.Run(linkLat * 16); err != nil {
			return BareMetalResult{}, err
		}
	}
	if !sender.Halted() {
		return BareMetalResult{}, fmt.Errorf("baremetal: sender did not finish (pc=%#x)", sender.Core(0).PC)
	}

	// Wire rate: bytes received over the active window (first to last
	// flit at the sink).
	if len(sink.Received) == 0 {
		return BareMetalResult{}, fmt.Errorf("baremetal: no flits received")
	}
	packets := uint64(0)
	for _, arr := range sink.Received {
		if arr.Tok.Last {
			packets++
		}
	}
	span := sink.Received[len(sink.Received)-1].Cycle - sink.Received[0].Cycle + 1
	bits := float64(len(sink.Received)) * 64
	gbps := bits / (float64(span) / 3.2e9) / 1e9
	return BareMetalResult{WireGbps: gbps, PacketsReceived: packets}, nil
}

// BandwidthComparison renders both results side by side, the paper's
// headline contrast.
func BandwidthComparison(sc Scale) (Result, error) {
	ip, err := Iperf(sc)
	if err != nil {
		return nil, err
	}
	bm, err := BareMetal(sc)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Test", "Bandwidth (Gbit/s)", "Paper")
	t.AddRow("iperf3 over Linux", ip.GoodputGbps, "1.4")
	t.AddRow("bare-metal NIC", bm.WireGbps, "~100")
	var b strings.Builder
	b.WriteString(t.String())
	return textResult{"Sections IV-B/IV-C: bandwidth", b.String()}, nil
}

func init() {
	register("bandwidth", BandwidthComparison)
}
