package switchmodel

import (
	"repro/internal/obs"
)

// This file mirrors the switch's per-round counters into the
// observability layer (internal/obs). The per-flit loops in TickBatch and
// releasePort are the switch's hot paths, so they are left untouched:
// publishMetrics runs once per TickBatch, computes the delta since the
// previous publish from the plain (goroutine-owned) Stats struct, and
// applies it to the shared atomic instruments. Queue occupancy is
// published as gauges from the same place.
//
// Metric names, labelled with the switch name:
//
//	switch_packets_in_total{switch=S}       packets assembled at ingress
//	switch_packets_out_total{switch=S}      packets fully released
//	switch_flits_in_total{switch=S}         flits received
//	switch_flits_out_total{switch=S}        flits released
//	switch_bytes_total{switch=S}            bytes switched
//	switch_drops_total{switch=S,reason=R}   drops by reason (buffer|stale|unroutable)
//	switch_stall_cycles_total{switch=S}     port-cycles suppressed by stall hooks
//	switch_out_queued_bytes{switch=S}       gauge: bytes queued across output ports
//	switch_out_queued_packets{switch=S}     gauge: packets queued across output ports
type switchMetrics struct {
	packetsIn   *obs.Counter
	packetsOut  *obs.Counter
	flitsIn     *obs.Counter
	flitsOut    *obs.Counter
	bytes       *obs.Counter
	dropsBuf    *obs.Counter
	dropsStale  *obs.Counter
	dropsUnrt   *obs.Counter
	stallCycles *obs.Counter

	queuedBytes   *obs.Gauge
	queuedPackets *obs.Gauge

	last       Stats // counters as of the previous publish
	lastQBytes int64 // gauge values as of the previous publish
	lastQPkts  int64
}

// EnableMetrics attaches the switch to a registry: from the next TickBatch
// on, the switch_* instruments described in metrics.go track its activity.
// Passing nil detaches. Like the runner's EnableMetrics, call it between
// runs, not mid-run.
func (s *Switch) EnableMetrics(reg *obs.Registry) {
	if reg == nil {
		s.metrics = nil
		return
	}
	name := s.cfg.Name
	label := func(metric string) string { return obs.Label(metric, "switch", name) }
	dropLabel := func(reason string) string {
		return "switch_drops_total{switch=\"" + name + "\",reason=\"" + reason + "\"}"
	}
	s.metrics = &switchMetrics{
		packetsIn:     reg.Counter(label("switch_packets_in_total")),
		packetsOut:    reg.Counter(label("switch_packets_out_total")),
		flitsIn:       reg.Counter(label("switch_flits_in_total")),
		flitsOut:      reg.Counter(label("switch_flits_out_total")),
		bytes:         reg.Counter(label("switch_bytes_total")),
		dropsBuf:      reg.Counter(dropLabel("buffer")),
		dropsStale:    reg.Counter(dropLabel("stale")),
		dropsUnrt:     reg.Counter(dropLabel("unroutable")),
		stallCycles:   reg.Counter(label("switch_stall_cycles_total")),
		queuedBytes:   reg.Gauge(label("switch_out_queued_bytes")),
		queuedPackets: reg.Gauge(label("switch_out_queued_packets")),
		last:          s.stats,
	}
}

// publishMetrics applies the delta since the previous publish to the
// shared instruments. Called once per TickBatch when metrics are enabled.
// Atomic RMW ops are the only real cost on this path, so zero deltas and
// unchanged gauges are skipped entirely — a quiet switch round publishes
// with no shared-memory traffic at all.
func (s *Switch) publishMetrics() {
	m := s.metrics
	cur := s.stats
	if cur == m.last {
		// Quiet round: no counter moved, so occupancy cannot have moved
		// either (enqueue bumps PacketsIn, drain bumps FlitsOut, and a
		// blocked port bumps StallCycles). Skip the delta walk and the
		// per-port queue scan entirely.
		return
	}
	addDelta := func(c *obs.Counter, cur, last uint64) {
		if d := cur - last; d != 0 {
			c.Add(d)
		}
	}
	addDelta(m.packetsIn, cur.PacketsIn, m.last.PacketsIn)
	addDelta(m.packetsOut, cur.PacketsOut, m.last.PacketsOut)
	addDelta(m.flitsIn, cur.FlitsIn, m.last.FlitsIn)
	addDelta(m.flitsOut, cur.FlitsOut, m.last.FlitsOut)
	addDelta(m.bytes, cur.BytesSwitched, m.last.BytesSwitched)
	addDelta(m.dropsBuf, cur.DropsBufFull, m.last.DropsBufFull)
	addDelta(m.dropsStale, cur.DropsStale, m.last.DropsStale)
	addDelta(m.dropsUnrt, cur.DropsUnroutable, m.last.DropsUnroutable)
	addDelta(m.stallCycles, cur.StallCycles, m.last.StallCycles)
	m.last = cur

	var qBytes, qPkts int64
	for p := range s.out {
		o := &s.out[p]
		qBytes += int64(o.queuedBytes)
		qPkts = qPkts + int64(o.queue.len())
		if o.tx != nil {
			qPkts++
		}
	}
	if qBytes != m.lastQBytes {
		m.queuedBytes.Set(qBytes)
		m.lastQBytes = qBytes
	}
	if qPkts != m.lastQPkts {
		m.queuedPackets.Set(qPkts)
		m.lastQPkts = qPkts
	}
}
