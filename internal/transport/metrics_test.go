package transport

import (
	"net"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/token"
)

// TestBridgeMetricsCleanRun drives two bridges over an in-memory pipe
// for a fixed number of rounds and checks the instrumented side's wire
// accounting to the byte: batches and bytes must match the protocol math
// exactly (one hello plus one frame per round), and every
// failure-recovery counter must stay at zero on a clean run.
func TestBridgeMetricsCleanRun(t *testing.T) {
	c1, c2 := net.Pipe()
	const rounds = 8
	const n = 16

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		peer := NewBridge("peer", c2)
		for r := 0; r < rounds; r++ {
			tickOnce(peer, n, 100+uint64(r))
		}
	}()

	reg := obs.NewRegistry("transport")
	br := NewBridge("local", c1)
	br.EnableMetrics(reg)
	for r := 0; r < rounds; r++ {
		out := tickOnce(br, n, uint64(r))
		if tok := out.At(0); !tok.Valid {
			t.Fatalf("round %d: no token from peer", r)
		}
	}
	wg.Wait()
	if err := br.Err(); err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	get := func(metric string) uint64 {
		return s.Counters[obs.Label(metric, "bridge", "local")]
	}
	if got := get("transport_batches_sent_total"); got != rounds {
		t.Errorf("batches_sent = %d, want %d", got, rounds)
	}
	if got := get("transport_batches_recv_total"); got != rounds {
		t.Errorf("batches_recv = %d, want %d", got, rounds)
	}
	// Each side wrote one hello and one single-slot frame per round. The
	// byte counters come from the connection shims, so the expectation is
	// the exact v3 encoding of the frames this test makes each side send —
	// and must agree with the bridge's own wire accessors.
	frameBytes := func(data func(r uint64) uint64) uint64 {
		total := uint64(helloSize)
		for r := uint64(0); r < rounds; r++ {
			b := token.NewBatch(n)
			b.Put(0, token.Token{Data: data(r), Valid: true})
			total += uint64(len(appendFrame(nil, r, b)))
		}
		return total
	}
	wantSent := frameBytes(func(r uint64) uint64 { return r })
	wantRecv := frameBytes(func(r uint64) uint64 { return 100 + r })
	if got := get("transport_bytes_sent_total"); got != wantSent {
		t.Errorf("bytes_sent = %d, want %d", got, wantSent)
	}
	if got := get("transport_bytes_recv_total"); got != wantRecv {
		t.Errorf("bytes_recv = %d, want %d", got, wantRecv)
	}
	if got := br.WireBytesSent(); got != wantSent {
		t.Errorf("WireBytesSent = %d, want %d", got, wantSent)
	}
	if got := br.WireBytesRecv(); got != wantRecv {
		t.Errorf("WireBytesRecv = %d, want %d", got, wantRecv)
	}
	// The precodec counter prices the same sent traffic at the v2 codec's
	// fixed framing; on this single-slot-per-round run the v3 stream must
	// come in strictly under it.
	wantPre := uint64(helloSize) + rounds*frameWireBytes(1)
	if got := get("transport_precodec_bytes_total"); got != wantPre {
		t.Errorf("precodec_bytes = %d, want %d", got, wantPre)
	}
	if wantSent >= wantPre {
		t.Errorf("v3 wire bytes %d not below the v2 baseline %d", wantSent, wantPre)
	}
	if got := s.Histograms[obs.Label("transport_stall_nanos", "bridge", "local")]; got.Count != rounds {
		t.Errorf("stall_nanos count = %d, want %d", got.Count, rounds)
	}
	for _, m := range []string{
		"transport_reconnects_total", "transport_resyncs_total",
		"transport_resent_frames_total", "transport_dup_frames_total",
		"transport_seq_gaps_total", "transport_errors_total",
	} {
		if got := get(m); got != 0 {
			t.Errorf("%s = %d on a clean run, want 0", m, got)
		}
	}
	if got := s.Gauges[obs.Label("transport_degraded", "bridge", "local")]; got != 0 {
		t.Errorf("degraded gauge = %d on a live bridge, want 0", got)
	}

	br.Degrade()
	s = reg.Snapshot()
	if got := s.Gauges[obs.Label("transport_degraded", "bridge", "local")]; got != 1 {
		t.Errorf("degraded gauge = %d after Degrade, want 1", got)
	}
}
