// Package token defines the fundamental unit of data exchanged between
// decoupled simulation endpoints in a FireSim-style distributed simulation.
//
// On a simulated link, one token represents one target cycle's worth of
// data. A link of latency N cycles always has N tokens in flight: if an
// endpoint issues a token at target cycle M, the token is consumed at the
// other end at cycle M+N. Endpoints may not advance past a target cycle
// until they hold an input token for it, which is what makes the distributed
// simulation cycle-exact and deterministic.
//
// A token carries a 64-bit payload (one flit of a 200 Gbit/s link clocked at
// 3.2 GHz), a Valid flag marking cycles on which the endpoint actually
// transmitted, and a Last flag marking the final flit of a packet so that
// the transport layer can delimit packets without understanding the
// link-layer protocol.
package token

import "fmt"

// Token is one target cycle's worth of link data.
type Token struct {
	// Data is the flit payload; meaningful only when Valid is set.
	Data uint64
	// Valid marks a cycle on which real data was transmitted. A zero Token
	// is an empty token: a cycle on which the endpoint sent nothing.
	Valid bool
	// Last marks the final flit of a packet. It lets transports and switch
	// ingress logic delimit packets without parsing the link-layer protocol.
	Last bool
}

// Empty is the canonical empty token, representing a cycle with no traffic.
var Empty = Token{}

// String implements fmt.Stringer for debugging output.
func (t Token) String() string {
	if !t.Valid {
		return "·"
	}
	if t.Last {
		return fmt.Sprintf("[%016x L]", t.Data)
	}
	return fmt.Sprintf("[%016x  ]", t.Data)
}

// Slot pairs a token with its cycle offset inside a Batch.
type Slot struct {
	// Offset is the cycle index within the batch, in [0, Batch.N).
	Offset int32
	// Tok is the token occupying that cycle.
	Tok Token
}

// Batch is a link-latency-sized group of tokens covering N consecutive
// target cycles. Moving whole batches (rather than individual tokens)
// amortises host transport latency exactly as described in the paper:
// tokens can be batched up to the target link latency without compromising
// cycle accuracy.
//
// Only occupied (valid) cycles are stored explicitly; all other cycles in
// the window are empty tokens. This keeps an idle link's batch O(1) to
// produce, move, and consume while remaining semantically identical to a
// dense array of N tokens.
type Batch struct {
	// N is the number of target cycles this batch covers.
	N int
	// Slots holds the occupied cycles in strictly increasing Offset order.
	Slots []Slot
}

// NewBatch returns an empty batch covering n cycles.
func NewBatch(n int) *Batch {
	if n <= 0 {
		panic(fmt.Sprintf("token: batch size must be positive, got %d", n))
	}
	return &Batch{N: n}
}

// Reset clears the batch in place so it can be reused for a new window of n
// cycles. Reusing batches avoids per-round allocation on hot simulation
// paths.
func (b *Batch) Reset(n int) {
	b.N = n
	b.Slots = b.Slots[:0]
}

// Put records tok at cycle offset within the batch. Offsets must be added
// in strictly increasing order; Put panics otherwise, since out-of-order
// writes would corrupt the per-cycle ordering invariants that the switch
// models rely on. Empty tokens are not stored.
func (b *Batch) Put(offset int, tok Token) {
	if offset < 0 || offset >= b.N {
		panic(fmt.Sprintf("token: offset %d out of batch range [0,%d)", offset, b.N))
	}
	if !tok.Valid {
		return
	}
	if n := len(b.Slots); n > 0 && int(b.Slots[n-1].Offset) >= offset {
		panic(fmt.Sprintf("token: out-of-order Put at offset %d after %d", offset, b.Slots[n-1].Offset))
	}
	b.Slots = append(b.Slots, Slot{Offset: int32(offset), Tok: tok})
}

// At returns the token at the given cycle offset, which is the empty token
// for unoccupied cycles. It runs a binary search; prefer iterating Slots
// directly on hot paths.
func (b *Batch) At(offset int) Token {
	lo, hi := 0, len(b.Slots)
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case int(b.Slots[mid].Offset) == offset:
			return b.Slots[mid].Tok
		case int(b.Slots[mid].Offset) < offset:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return Empty
}

// Occupied reports the number of valid tokens in the batch.
func (b *Batch) Occupied() int { return len(b.Slots) }

// IsEmpty reports whether the batch carries no valid tokens.
func (b *Batch) IsEmpty() bool { return len(b.Slots) == 0 }

// Dense expands the batch to a dense per-cycle token slice of length N.
// It is intended for tests and for per-cycle components (such as the
// cycle-exact SoC model) that genuinely need to observe every cycle.
func (b *Batch) Dense() []Token {
	out := make([]Token, b.N)
	for _, s := range b.Slots {
		out[s.Offset] = s.Tok
	}
	return out
}

// FromDense builds a batch from a dense token slice.
func FromDense(toks []Token) *Batch {
	b := NewBatch(len(toks))
	for i, t := range toks {
		b.Put(i, t)
	}
	return b
}

// Filter removes, in place, every token for which keep returns false. It
// preserves slot ordering and is the primitive fault injectors use to model
// link flaps and packet loss without reallocating the batch.
func (b *Batch) Filter(keep func(offset int, tok Token) bool) {
	kept := b.Slots[:0]
	for _, s := range b.Slots {
		if keep(int(s.Offset), s.Tok) {
			kept = append(kept, s)
		}
	}
	b.Slots = kept
}

// Mutate applies fn to every valid token in place. A token returned with
// Valid cleared is removed from the batch entirely (a dropped cycle), so fn
// can both corrupt and discard. Offsets cannot be changed — per-cycle
// ordering is an invariant of the batch.
func (b *Batch) Mutate(fn func(offset int, tok Token) Token) {
	kept := b.Slots[:0]
	for _, s := range b.Slots {
		t := fn(int(s.Offset), s.Tok)
		if !t.Valid {
			continue
		}
		s.Tok = t
		kept = append(kept, s)
	}
	b.Slots = kept
}

// Copy returns a deep copy of the batch. Transports that fan a batch out to
// multiple consumers must copy, since consumers may retain slot slices.
func (b *Batch) Copy() *Batch {
	nb := &Batch{N: b.N, Slots: make([]Slot, len(b.Slots))}
	copy(nb.Slots, b.Slots)
	return nb
}

// Queue is a FIFO of tokens used by per-cycle components (for example the
// NIC top-level interface) to stage tokens between the cycle-exact domain
// and the batched transport domain. The zero value is not usable; use
// NewQueue.
type Queue struct {
	buf  []Token
	head int
	size int
}

// NewQueue returns a queue with the given capacity. Capacity is fixed:
// token queues model finite hardware buffers.
func NewQueue(capacity int) *Queue {
	if capacity <= 0 {
		panic(fmt.Sprintf("token: queue capacity must be positive, got %d", capacity))
	}
	return &Queue{buf: make([]Token, capacity)}
}

// Len reports the number of tokens currently queued.
func (q *Queue) Len() int { return q.size }

// Cap reports the fixed capacity of the queue.
func (q *Queue) Cap() int { return len(q.buf) }

// Full reports whether the queue cannot accept another token.
func (q *Queue) Full() bool { return q.size == len(q.buf) }

// Push enqueues tok, reporting false if the queue is full.
func (q *Queue) Push(tok Token) bool {
	if q.Full() {
		return false
	}
	q.buf[(q.head+q.size)%len(q.buf)] = tok
	q.size++
	return true
}

// Pop dequeues the oldest token, reporting false if the queue is empty.
func (q *Queue) Pop() (Token, bool) {
	if q.size == 0 {
		return Empty, false
	}
	tok := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	return tok, true
}

// Peek returns the oldest token without dequeuing it.
func (q *Queue) Peek() (Token, bool) {
	if q.size == 0 {
		return Empty, false
	}
	return q.buf[q.head], true
}
