package manager

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/clock"
	"repro/internal/fame"
	"repro/internal/stats"
	"repro/internal/transport"
)

// This file adds the distributed-run supervisor. A scale-out simulation
// spans several Runner instances joined by transport bridges; any of the
// peer hosts can die mid-run. Without supervision the surviving partition
// would block forever waiting for tokens that will never arrive. The
// supervisor drives the local runner in slices and polls the bridges
// between slices: when a bridge reports a permanent transport error it is
// degraded (its token stream goes silent), the remote partition's nodes
// are marked down, and the local partition keeps simulating to the
// horizon so partial results survive the failure.
//
// This relies on the hardened bridge: deadline-based reads guarantee a
// dead peer surfaces as a bridge error instead of a hung TickBatch, so
// the supervisor always regains control between slices.

// NodeStatus is one server's health in a supervisor report.
type NodeStatus struct {
	// Name is the server (or peer partition) name.
	Name string
	// Up is false once the component's partition is unreachable.
	Up bool
	// LastCycle is the last target cycle the component is known to have
	// simulated: the horizon for local nodes, the last confirmed token
	// batch for nodes behind a dead bridge.
	LastCycle clock.Cycles
	// Err is the transport error that took the partition down, if any.
	Err error
}

// Report summarises a supervised run.
type Report struct {
	// Cycle is the local partition's final target cycle.
	Cycle clock.Cycles
	// Partial is true when at least one peer partition died and the
	// results therefore cover only the surviving nodes.
	Partial bool
	// Recoveries counts peers revived from a checkpoint mid-run (see
	// EnableRecovery). A recovered peer is not Partial: the run completed
	// with full coverage, it just rewound along the way.
	Recoveries int
	// Nodes lists per-node status, local nodes first, sorted by name.
	Nodes []NodeStatus
}

// String renders the report as a table.
func (r *Report) String() string {
	t := stats.NewTable("Node", "Status", "LastCycle", "Error")
	for _, n := range r.Nodes {
		status := "up"
		if !n.Up {
			status = "DOWN"
		}
		errText := ""
		if n.Err != nil {
			errText = n.Err.Error()
		}
		t.AddRow(n.Name, status, n.LastCycle, errText)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "run to cycle %d (partial=%v)\n", r.Cycle, r.Partial)
	b.WriteString(t.String())
	return b.String()
}

// watchedPeer is one remote partition reached through a bridge.
type watchedPeer struct {
	name  string
	br    *transport.Bridge
	nodes []string
	down  bool
	at    clock.Cycles // local cycle when the failure was detected
	err   error
}

// RecoveryConfig turns permanent peer loss into checkpoint-based
// recovery: instead of degrading a dead peer's bridge and finishing with
// partial results, the supervisor rewinds the local partition to its last
// checkpoint, asks the caller to respawn the peer at that cycle, and
// resumes the run with full coverage.
//
// The scheme assumes symmetric checkpoint cadence: the peer harness must
// retain its own partition checkpoints at (at least) the same Every
// interval, because Respawn is asked for a cycle the supervisor chose
// from its local history.
type RecoveryConfig struct {
	// Save writes the local partition's checkpoint (typically
	// Cluster.Checkpoint). It is called at batch boundaries; if the
	// partition is momentarily non-quiescent the checkpoint is skipped
	// and retried next interval.
	Save func(w io.Writer) error
	// Restore rewinds the local partition from a stream Save produced
	// (typically Cluster.RestoreState).
	Restore func(r io.Reader) error
	// Every is the checkpoint interval in target cycles (rounded to whole
	// runner steps).
	Every clock.Cycles
	// History is how many checkpoints to retain (default 4). Older ones
	// are discarded; recovery picks the newest usable one.
	History int
	// Respawn brings the named peer partition back up at exactly the
	// given cycle and returns the new connection. The respawned peer must
	// resume its token stream at batch cycle/step — its bridge side
	// starts from that sequence number (transport.Bridge.Reset) — and its
	// partition state must be restored from the peer's own checkpoint at
	// that cycle.
	Respawn func(peer string, cycle clock.Cycles) (io.ReadWriter, error)
	// MaxRecoveries bounds recovery attempts per run (default 2); beyond
	// it a dead peer degrades as without recovery.
	MaxRecoveries int
}

// supCheckpoint is one retained local checkpoint.
type supCheckpoint struct {
	cycle clock.Cycles
	data  []byte
}

// Supervisor drives a local Runner while watching the transport bridges
// that connect it to remote partitions.
type Supervisor struct {
	runner *fame.Runner
	local  []string
	peers  []*watchedPeer
	// CheckEvery is how many target cycles run between bridge health
	// checks (rounded to whole runner steps; default 4 steps).
	CheckEvery clock.Cycles
	// Parallel selects the runner's worker-pool scheduler for each slice
	// (see fame.Runner.RunParallel and DeployConfig.Workers). Results are
	// bit-identical either way; this is host-side tuning only.
	Parallel bool

	recovery   *RecoveryConfig
	ckpts      []supCheckpoint
	lastCkpt   clock.Cycles
	recoveries int

	metrics *supervisorMetrics
}

// NewSupervisor wraps a runner with no nodes registered yet.
func NewSupervisor(r *fame.Runner) *Supervisor {
	return &Supervisor{runner: r}
}

// Supervise returns a supervisor for the cluster's runner with every
// local server pre-registered.
func (c *Cluster) Supervise() *Supervisor {
	s := NewSupervisor(c.Runner)
	for _, n := range c.Servers {
		s.AddLocal(n.Name())
	}
	return s
}

// AddLocal registers servers simulated by the local runner.
func (s *Supervisor) AddLocal(names ...string) {
	s.local = append(s.local, names...)
}

// Watch registers a bridge to a remote partition and the names of the
// nodes simulated behind it, so a failure can be attributed in the
// report. The bridge should be configured with a read timeout (and
// usually a redial policy): the supervisor can only degrade a peer whose
// death surfaces as a bridge error.
func (s *Supervisor) Watch(peerName string, br *transport.Bridge, remoteNodes ...string) {
	s.peers = append(s.peers, &watchedPeer{name: peerName, br: br, nodes: remoteNodes})
	if m := s.metrics; m != nil {
		br.EnableMetrics(m.reg)
		for _, name := range remoteNodes {
			m.trackNode(name)
		}
		m.watched.Set(int64(len(s.peers)))
	}
}

// EnableRecovery arms checkpoint-based peer recovery for subsequent
// RunTo calls.
func (s *Supervisor) EnableRecovery(cfg RecoveryConfig) error {
	if cfg.Save == nil || cfg.Restore == nil || cfg.Respawn == nil {
		return fmt.Errorf("manager: supervisor recovery needs Save, Restore and Respawn")
	}
	if cfg.Every <= 0 {
		return fmt.Errorf("manager: supervisor recovery interval must be positive")
	}
	if cfg.History <= 0 {
		cfg.History = 4
	}
	if cfg.MaxRecoveries <= 0 {
		cfg.MaxRecoveries = 2
	}
	s.recovery = &cfg
	return nil
}

// saveCheckpoint captures the local partition if it is currently
// checkpointable; a non-quiescent partition is skipped (the previous
// checkpoint stays usable and the next interval retries).
func (s *Supervisor) saveCheckpoint() {
	var buf bytes.Buffer
	if err := s.recovery.Save(&buf); err != nil {
		return
	}
	s.ckpts = append(s.ckpts, supCheckpoint{cycle: s.runner.Cycle(), data: buf.Bytes()})
	if n := len(s.ckpts); n > s.recovery.History {
		s.ckpts = append(s.ckpts[:0], s.ckpts[n-s.recovery.History:]...)
	}
	s.lastCkpt = s.runner.Cycle()
}

// tryRecover attempts to revive a failing peer from the checkpoint
// history instead of degrading it. On success the local partition has
// been rewound, the peer respawned at the same cycle, and the bridge
// reset onto the new connection.
func (s *Supervisor) tryRecover(p *watchedPeer) bool {
	rec := s.recovery
	if rec == nil || s.recoveries >= rec.MaxRecoveries || len(s.ckpts) == 0 {
		return false
	}
	// Rewinding the local partition rewinds its token streams to every
	// peer, so recovery is only sound when the failing peer is the only
	// one — healthy peers would desync. Multi-peer recovery would need a
	// coordinated rewind protocol; degrade instead.
	if len(s.peers) > 1 {
		return false
	}
	step := s.runner.Step()
	// The peer completed (at least) the window before the last batch it
	// sent us; rewind to a checkpoint it can provably match.
	var peerComplete clock.Cycles
	if n := p.br.Received(); n > 0 {
		peerComplete = clock.Cycles(n-1) * step
	}
	var ck *supCheckpoint
	for i := len(s.ckpts) - 1; i >= 0; i-- {
		if s.ckpts[i].cycle <= peerComplete {
			ck = &s.ckpts[i]
			break
		}
	}
	if ck == nil {
		return false
	}
	// Respawn first: if the peer cannot come back, local state is
	// untouched and the caller still gets the degraded-peer behaviour.
	conn, err := rec.Respawn(p.name, ck.cycle)
	if err != nil || conn == nil {
		return false
	}
	if err := rec.Restore(bytes.NewReader(ck.data)); err != nil {
		return false
	}
	p.br.Reset(conn, uint64(ck.cycle/step))
	s.recoveries++
	if m := s.metrics; m != nil {
		m.recoveries.Inc()
	}
	// Checkpoints after the rewind point belong to the abandoned timeline.
	kept := s.ckpts[:0]
	for _, c := range s.ckpts {
		if c.cycle <= ck.cycle {
			kept = append(kept, c)
		}
	}
	s.ckpts = kept
	s.lastCkpt = ck.cycle
	return true
}

// checkPeers recovers or degrades any bridge with a permanent error. It
// reports whether all peers are still up.
func (s *Supervisor) checkPeers() bool {
	if m := s.metrics; m != nil {
		m.checks.Inc()
	}
	allUp := true
	for _, p := range s.peers {
		if p.down {
			allUp = false
			continue
		}
		if err := p.br.Err(); err != nil {
			if s.tryRecover(p) {
				continue
			}
			p.down = true
			p.at = s.runner.Cycle()
			p.err = err
			p.br.Degrade()
			allUp = false
		}
	}
	return allUp
}

// RunTo advances the local partition to the given target cycle (rounded
// down to whole runner steps), degrading dead peers along the way rather
// than hanging on them. It returns a per-node report; a peer failure is
// reported in it, not as an error — only a local runner failure aborts
// the run.
func (s *Supervisor) RunTo(horizon clock.Cycles) (*Report, error) {
	step := s.runner.Step()
	if step <= 0 {
		return nil, fmt.Errorf("manager: supervisor: runner has no connected links")
	}
	slice := s.CheckEvery
	if slice < step {
		slice = 4 * step
	}
	slice -= slice % step
	horizon -= horizon % step

	if s.recovery != nil && len(s.ckpts) == 0 {
		// Baseline checkpoint: even a peer that dies in the first interval
		// can be recovered by restarting both partitions from here.
		s.saveCheckpoint()
	}
	for s.runner.Cycle() < horizon {
		n := slice
		if rem := horizon - s.runner.Cycle(); rem < n {
			n = rem
		}
		var err error
		if s.Parallel {
			err = s.runner.RunParallel(n)
		} else {
			err = s.runner.Run(n)
		}
		if err != nil {
			return nil, err
		}
		s.checkPeers()
		if rec := s.recovery; rec != nil && s.runner.Cycle()-s.lastCkpt >= rec.Every {
			s.saveCheckpoint()
		}
		if s.metrics != nil {
			s.metrics.slices.Inc()
			s.publishMetrics()
		}
	}
	s.checkPeers()
	if s.metrics != nil {
		s.publishMetrics()
	}
	return s.report(), nil
}

func (s *Supervisor) report() *Report {
	r := &Report{Cycle: s.runner.Cycle(), Recoveries: s.recoveries}
	for _, name := range s.local {
		r.Nodes = append(r.Nodes, NodeStatus{Name: name, Up: true, LastCycle: r.Cycle})
	}
	sort.Slice(r.Nodes, func(i, j int) bool { return r.Nodes[i].Name < r.Nodes[j].Name })
	for _, p := range s.peers {
		if p.down {
			r.Partial = true
		}
		// The peer's nodes advanced at least to the last batch the bridge
		// confirmed before the failure.
		confirmed := clock.Cycles(p.br.Received()) * clock.Cycles(p.br.Step())
		status := make([]NodeStatus, 0, len(p.nodes))
		for _, name := range p.nodes {
			ns := NodeStatus{Name: name, Up: !p.down, LastCycle: r.Cycle}
			if p.down {
				ns.LastCycle = confirmed
				ns.Err = p.err
			}
			status = append(status, ns)
		}
		sort.Slice(status, func(i, j int) bool { return status[i].Name < status[j].Name })
		r.Nodes = append(r.Nodes, status...)
	}
	return r
}
