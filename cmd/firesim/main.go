// Command firesim is the simulation manager CLI: it mirrors the paper's
// manager workflow — describe a topology, run the build flow, plan the
// EC2 deployment, and run workloads against the simulated cluster.
//
// Usage:
//
//	firesim topology -fanouts 4,8,32
//	firesim build    -fanouts 4,8,32 -supernode
//	firesim deploy   -fanouts 4,8,32 -supernode
//	firesim ping     -nodes 8 -latency-us 2 -count 10
//	firesim memcached -threads 5 -qps 135000
//	firesim bench    -nodes 2,4,8 -out BENCH_fame.json
//	firesim top      -nodes 8 -format prometheus
//	firesim snap     verify -nodes 4 -cycles 65536 -extra 65536
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/apps"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/manager"
	"repro/internal/softstack"
	"repro/internal/stats"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "topology":
		err = cmdTopology(os.Args[2:])
	case "build":
		err = cmdBuild(os.Args[2:])
	case "deploy":
		err = cmdDeploy(os.Args[2:])
	case "ping":
		err = cmdPing(os.Args[2:])
	case "faults":
		err = cmdFaults(os.Args[2:])
	case "memcached":
		err = cmdMemcached(os.Args[2:])
	case "workload":
		err = cmdWorkload(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "top":
		err = cmdTop(os.Args[2:])
	case "snap":
		err = cmdSnap(os.Args[2:])
	case "run-dist":
		err = cmdRunDist(os.Args[2:])
	case "shard":
		err = cmdShard(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "firesim: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "firesim: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `firesim — FPGA-accelerated-style cycle-exact datacenter simulation (Go reproduction)

commands:
  topology   describe and validate a tree topology
  build      run the (modeled) FPGA build flow for a topology
  deploy     plan the EC2 instance mapping and cost for a topology
  ping       boot a rack and measure ping RTT between two nodes
  faults     list fault scenarios or preview a deterministic fault schedule
  memcached  run a memcached+mutilate load test on a rack
  workload   run a reusable workload description on a deployed topology
  bench      measure sim-rate across topology sizes, write BENCH_fame.json
  top        run an instrumented rack and watch live metrics
  snap       checkpoint/restore a cluster (save, restore, inspect, verify)
  run-dist   coordinate a self-healing multi-process run (spawns shards)
  shard      run one shard worker process (spawned by run-dist)`)
}

func parseFanouts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad fanout %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}

func cmdTopology(args []string) error {
	fs := flag.NewFlagSet("topology", flag.ExitOnError)
	fanouts := fs.String("fanouts", "4,8,32", "comma-separated switch fanouts from root down; last level is servers")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := parseFanouts(*fanouts)
	if err != nil {
		return err
	}
	topo, err := core.Tree(f, core.QuadCore)
	if err != nil {
		return err
	}
	if err := manager.Validate(topo); err != nil {
		return err
	}
	fmt.Printf("topology ok: %d servers, %d switches\n",
		manager.CountServers(topo), manager.CountSwitches(topo))
	return nil
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	fanouts := fs.String("fanouts", "4,8,32", "switch fanouts")
	supernode := fs.Bool("supernode", false, "pack four blades per FPGA")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := parseFanouts(*fanouts)
	if err != nil {
		return err
	}
	topo, err := core.Tree(f, core.QuadCore)
	if err != nil {
		return err
	}
	farm := manager.NewBuildFarm()
	images, err := farm.BuildAll(topo, *supernode)
	if err != nil {
		return err
	}
	t := stats.NewTable("Blade", "AGFI", "Supernode")
	for _, img := range images {
		t.AddRow(string(img.Blade), img.AGFI, img.Supernode)
	}
	fmt.Print(t.String())
	return nil
}

func cmdDeploy(args []string) error {
	fs := flag.NewFlagSet("deploy", flag.ExitOnError)
	fanouts := fs.String("fanouts", "4,8,32", "switch fanouts")
	supernode := fs.Bool("supernode", false, "pack four blades per FPGA")
	latencyUs := fs.Float64("latency-us", 2, "link latency in microseconds")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := parseFanouts(*fanouts)
	if err != nil {
		return err
	}
	topo, err := core.Tree(f, core.QuadCore)
	if err != nil {
		return err
	}
	clk := clock.New(clock.DefaultTargetClock)
	c, err := core.Deploy(topo, core.DeployConfig{
		Supernode:   *supernode,
		LinkLatency: clk.CyclesInMicros(*latencyUs),
	})
	if err != nil {
		return err
	}
	fmt.Printf("deployed %d servers, %d switches (link latency %.3g us)\n",
		len(c.Servers), len(c.Switches), *latencyUs)
	t := stats.NewTable("Quantity", "Value")
	t.AddRow("f1.16xlarge instances", c.Deployment.Count("f1.16xlarge"))
	t.AddRow("m4.16xlarge instances", c.Deployment.Count("m4.16xlarge"))
	t.AddRow("FPGAs", c.Deployment.FPGAs())
	t.AddRow("FPGA value", fmt.Sprintf("$%.2fM", c.Deployment.FPGAValueUSD()/1e6))
	t.AddRow("Spot $/hour", fmt.Sprintf("$%.2f", c.Deployment.HourlyCost(true)))
	t.AddRow("On-demand $/hour", fmt.Sprintf("$%.2f", c.Deployment.HourlyCost(false)))
	fmt.Print(t.String())
	fmt.Printf("\nsample address assignments:\n")
	for i, s := range c.Servers {
		if i >= 4 {
			fmt.Printf("  ... %d more\n", len(c.Servers)-4)
			break
		}
		fmt.Printf("  %-16s %v  %v\n", s.Name(), s.MAC(), s.IP())
	}
	return nil
}

func cmdPing(args []string) error {
	fs := flag.NewFlagSet("ping", flag.ExitOnError)
	nodes := fs.Int("nodes", 8, "servers on the rack")
	latencyUs := fs.Float64("latency-us", 2, "link latency in microseconds")
	count := fs.Int("count", 10, "echo requests")
	scenario := fs.String("faults", "", "fault scenario to inject (see 'firesim faults')")
	faultSeed := fs.Uint64("fault-seed", 1, "seed for the deterministic fault schedule")
	if err := fs.Parse(args); err != nil {
		return err
	}
	clk := clock.New(clock.DefaultTargetClock)
	c, err := core.Deploy(core.Rack("tor0", *nodes, core.QuadCore), core.DeployConfig{
		LinkLatency:      clk.CyclesInMicros(*latencyUs),
		DisableStaticARP: true,
		Seed:             *faultSeed,
		FaultScenario:    *scenario,
	})
	if err != nil {
		return err
	}
	src, dst := c.Servers[0], c.Servers[*nodes-1]
	var res []softstack.PingResult
	src.Ping(0, dst.IP(), *count, clk.CyclesInMicros(200), func(r []softstack.PingResult) { res = r })
	ok, err := c.RunUntil(func() bool { return res != nil }, clk.CyclesInMicros(float64(*count+5)*1000))
	if err != nil {
		return err
	}
	if !ok && c.Faults == nil {
		return fmt.Errorf("ping did not complete")
	}
	fmt.Printf("PING %v -> %v over a %g us / 200 Gbit/s network:\n", src.IP(), dst.IP(), *latencyUs)
	for _, pr := range res {
		note := ""
		if pr.Seq == 0 {
			note = "  (includes ARP)"
		}
		fmt.Printf("  seq=%d time=%.2f us%s\n", pr.Seq, clk.Micros(pr.RTT), note)
	}
	if !ok {
		fmt.Printf("  (ping did not complete under injected faults)\n")
	}
	if c.Faults != nil {
		fmt.Printf("\nfault injection (scenario %q, seed %d, schedule %#x):\n",
			*scenario, *faultSeed, c.Faults.Fingerprint())
		fmt.Print(c.Faults.Counters().Table().String())
	}
	return nil
}

func cmdFaults(args []string) error {
	fs := flag.NewFlagSet("faults", flag.ExitOnError)
	scenario := fs.String("scenario", "", "scenario to preview (empty lists the registry)")
	seed := fs.Uint64("seed", 1, "schedule seed")
	nodes := fs.Int("nodes", 8, "servers on the rack used for the preview")
	horizonUs := fs.Float64("horizon-us", 10000, "schedule horizon in target microseconds")
	show := fs.Int("show", 20, "events to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scenario == "" {
		fmt.Println("available fault scenarios:")
		for _, n := range faults.Scenarios() {
			fmt.Printf("  %s\n", n)
		}
		return nil
	}
	clk := clock.New(clock.DefaultTargetClock)
	c, err := core.Deploy(core.Rack("tor0", *nodes, core.QuadCore), core.DeployConfig{
		Seed:          *seed,
		FaultScenario: *scenario,
		FaultHorizon:  clk.CyclesInMicros(*horizonUs),
	})
	if err != nil {
		return err
	}
	evs := c.Faults.Events()
	fmt.Printf("scenario %q, seed %d: %d events, schedule fingerprint %#x\n",
		*scenario, *seed, len(evs), c.Faults.Fingerprint())
	t := stats.NewTable("Kind", "Target", "Port", "Start", "End")
	for i, ev := range evs {
		if i >= *show {
			fmt.Printf("(showing first %d of %d events)\n", *show, len(evs))
			break
		}
		port := fmt.Sprint(ev.Port)
		if ev.Port < 0 {
			port = "all"
		}
		t.AddRow(ev.Kind.String(), ev.Target, port, ev.Start, ev.End)
	}
	fmt.Print(t.String())
	return nil
}

func cmdWorkload(args []string) error {
	fs := flag.NewFlagSet("workload", flag.ExitOnError)
	name := fs.String("name", "", "workload name (empty lists the registry)")
	fanouts := fs.String("fanouts", "1,4", "switch fanouts")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" {
		fmt.Println("available workloads:")
		for _, n := range manager.Workloads() {
			fmt.Printf("  %s\n", n)
		}
		return nil
	}
	f, err := parseFanouts(*fanouts)
	if err != nil {
		return err
	}
	topo, err := core.Tree(f, core.QuadCore)
	if err != nil {
		return err
	}
	c, err := core.Deploy(topo, core.DeployConfig{})
	if err != nil {
		return err
	}
	report, err := manager.RunWorkload(*name, c)
	if err != nil {
		return err
	}
	fmt.Print(report)
	return nil
}

func cmdMemcached(args []string) error {
	fs := flag.NewFlagSet("memcached", flag.ExitOnError)
	threads := fs.Int("threads", 4, "memcached worker threads")
	pinned := fs.Bool("pinned", false, "pin workers one-to-a-core")
	qps := fs.Float64("qps", 100000, "offered load")
	ms := fs.Int("ms", 50, "measurement window, target milliseconds")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := core.Deploy(core.Rack("tor0", 8, core.QuadCore), core.DeployConfig{Seed: 42})
	if err != nil {
		return err
	}
	apps.NewMemcachedServer(c.Servers[0], apps.MemcachedConfig{Threads: *threads, Pinned: *pinned})
	window := clock.Cycles(*ms) * 3_200_000
	var gens []*apps.Mutilate
	for i := 1; i < 8; i++ {
		gens = append(gens, apps.NewMutilate(c.Servers[i], apps.MutilateConfig{
			Server: c.Servers[0].IP(), QPS: *qps / 7, Connections: 3,
			Duration: window, Seed: uint64(i),
		}))
	}
	if err := c.RunFor(window + 3_200_000); err != nil {
		return err
	}
	var all stats.Sample
	var recv uint64
	for _, g := range gens {
		recv += g.Received
		for p := 1.0; p <= 99; p++ {
			all.Add(g.Latencies.Percentile(p))
		}
	}
	fmt.Printf("memcached %d threads (pinned=%v), offered %.0f QPS for %d ms:\n", *threads, *pinned, *qps, *ms)
	fmt.Printf("  achieved %.0f QPS, p50 %.1f us, p95 %.1f us\n",
		float64(recv)/(float64(window)/3.2e9), all.Median(), all.P95())
	return nil
}
