package manager

import (
	"fmt"
	"sort"

	"repro/internal/clock"
	"repro/internal/softstack"
	"repro/internal/stats"
)

// This file implements the manager's reusable workload descriptions: "a
// second layer of the cluster manager allows users to describe jobs that
// automatically run on the simulated cluster nodes and automatically
// collect result files and host/target-level measurements for analysis
// outside of the simulation" (Section III-B3). A Workload names a job,
// sets it up on a deployed cluster, and harvests a report when the run
// completes.

// Workload is a reusable job description.
type Workload struct {
	// Name identifies the workload to the CLI and the registry.
	Name string
	// Description is a one-line summary.
	Description string
	// Run sets up the job on the cluster, advances simulation until it
	// completes, and returns a text report.
	Run func(c *Cluster) (string, error)
}

var workloads = map[string]Workload{}

// RegisterWorkload adds a workload description to the registry.
func RegisterWorkload(w Workload) {
	if _, dup := workloads[w.Name]; dup {
		panic(fmt.Sprintf("manager: workload %q registered twice", w.Name))
	}
	workloads[w.Name] = w
}

// Workloads lists registered workload names in sorted order.
func Workloads() []string {
	var names []string
	for n := range workloads {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RunWorkload runs a registered workload on the cluster.
func RunWorkload(name string, c *Cluster) (string, error) {
	w, ok := workloads[name]
	if !ok {
		return "", fmt.Errorf("manager: unknown workload %q (have %v)", name, Workloads())
	}
	return w.Run(c)
}

func init() {
	RegisterWorkload(Workload{
		Name:        "ping-all",
		Description: "node 0 pings every other node; reports RTT per peer",
		Run:         runPingAll,
	})
	RegisterWorkload(Workload{
		Name:        "net-stats",
		Description: "idle the cluster briefly and dump switch/NIC counters",
		Run:         runNetStats,
	})
}

// runPingAll measures RTT from server 0 to every other server, five
// samples each, reporting the steady-state RTT (the hop count to each
// peer is visible directly in the table).
func runPingAll(c *Cluster) (string, error) {
	if len(c.Servers) < 2 {
		return "", fmt.Errorf("ping-all needs at least two servers")
	}
	src := c.Servers[0]
	clk := src.Clock()
	t := stats.NewTable("Peer", "IP", "RTT (us)")
	for _, dst := range c.Servers[1:] {
		var res []softstack.PingResult
		src.Ping(c.Runner.Cycle(), dst.IP(), 3, clk.CyclesInMicros(150), func(r []softstack.PingResult) { res = r })
		deadline := c.Runner.Cycle() + clk.CyclesInMicros(5000)
		ok, err := c.RunUntil(func() bool { return res != nil }, deadline)
		if err != nil {
			return "", err
		}
		if !ok {
			return "", fmt.Errorf("ping to %v did not complete", dst.IP())
		}
		t.AddRow(dst.Name(), dst.IP().String(), clk.Micros(res[len(res)-1].RTT))
	}
	return t.String(), nil
}

// runNetStats advances the cluster a little and reports per-switch and
// per-node counters — the "host/target-level measurements" harvest.
func runNetStats(c *Cluster) (string, error) {
	if err := c.RunFor(clock.Cycles(64) * c.LinkLatency); err != nil {
		return "", err
	}
	t := stats.NewTable("Component", "Packets in/sent", "Packets out/recv", "Drops")
	for _, sw := range c.Switches {
		st := sw.Stats()
		t.AddRow("switch "+sw.Name(), st.PacketsIn, st.PacketsOut,
			st.DropsBufFull+st.DropsStale+st.DropsUnroutable)
	}
	for _, n := range c.Servers {
		st := n.Stats()
		t.AddRow("node "+n.Name(), st.FramesSent, st.FramesRecv, uint64(0))
	}
	return t.String(), nil
}
