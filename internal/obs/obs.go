// Package obs is the observability layer for the simulation hot paths.
//
// The paper's headline claims are quantitative — simulation rate versus
// scale (Figures 8 and 9) and token-transport overhead — so the runtime
// needs per-link and per-endpoint telemetry that is cheap enough to leave
// enabled while measuring. This package provides exactly three instrument
// kinds, all built on single atomic words so that instrumented hot loops
// pay a handful of uncontended atomic adds per round and nothing else:
//
//   - Counter: a monotonically increasing uint64 (events, tokens, bytes);
//   - Gauge: a settable int64 (queue depth, buffered bytes, progress);
//   - Histogram: power-of-two-bucketed uint64 observations with count and
//     sum (tick latencies in nanoseconds).
//
// Instruments live in a named Registry. Registries are cheap maps guarded
// by a mutex, but the mutex is only taken at registration and snapshot
// time — never on the instrument fast path. Snapshot() captures a
// consistent-enough point-in-time view that renders as JSON, Prometheus
// text exposition format, or a fixed-width table (see snapshot.go).
//
// Naming follows the Prometheus convention: snake_case metric names with
// a subsystem prefix and a _total suffix on counters, and label sets
// rendered inline (use Label to build them), e.g.
//
//	fame_rounds_total
//	fame_tick_nanos{endpoint="tor0-s3"}
//	switch_out_queued_bytes{switch="tor0"}
//
// Instrumented packages accept a *Registry and treat a nil registry as
// "metrics disabled": every constructor in this package returns usable
// no-op-free instruments, and the wiring helpers in fame, switchmodel,
// transport and manager guard their hooks with a single nil check, so the
// uninstrumented hot loop is byte-identical to the pre-obs code.
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter, safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value, safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of histogram buckets: observation v lands in
// bucket bits.Len64(v), so bucket b counts observations in
// [2^(b-1), 2^b). 65 buckets cover the full uint64 range.
const histBuckets = 65

// Histogram accumulates uint64 observations into power-of-two buckets,
// tracking count and sum, safe for concurrent use. Recording costs three
// uncontended atomic adds; there are no locks and no allocation.
//
// Power-of-two buckets trade resolution for speed: the bucket index is a
// single bit-length instruction, and a factor-of-two resolution is plenty
// for the latency distributions this layer exists to expose (a tick that
// regressed from 4 us to 40 us moves three buckets).
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// Count returns the number of observations recorded.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Mean returns the mean observation, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) from
// the bucket boundaries: the upper edge of the bucket containing the
// q-th observation. Resolution is a factor of two.
func (h *Histogram) Quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var seen uint64
	for b := 0; b < histBuckets; b++ {
		seen += h.buckets[b].Load()
		if seen > target {
			return bucketUpperBound(b)
		}
	}
	return bucketUpperBound(histBuckets - 1)
}

// bucketUpperBound returns the exclusive upper edge of bucket b: bucket 0
// holds only the observation 0, bucket b>0 holds [2^(b-1), 2^b).
func bucketUpperBound(b int) uint64 {
	if b == 0 {
		return 0
	}
	if b >= 64 {
		return ^uint64(0)
	}
	return uint64(1) << b
}

// Label renders a metric name with one label pair in Prometheus form:
// Label("fame_tick_nanos", "endpoint", "tor0-s3") is
// `fame_tick_nanos{endpoint="tor0-s3"}`. Label values are escaped per the
// exposition format (backslash, double-quote, newline).
func Label(name, key, value string) string {
	return name + "{" + key + "=\"" + escapeLabel(value) + "\"}"
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer("\\", "\\\\", "\"", "\\\"", "\n", "\\n")
	return r.Replace(v)
}

// Registry is a named set of instruments. Instruments are registered by
// full name (including any inline label set) and retrieved get-or-create
// style, so independent components can share one registry without
// coordination. All methods are safe for concurrent use; nothing in the
// registry is touched on the instrument fast paths.
type Registry struct {
	name string

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry. The name identifies the registry
// in snapshots (e.g. one registry per deployed cluster).
func NewRegistry(name string) *Registry {
	return &Registry{
		name:       name,
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Name returns the registry name.
func (r *Registry) Name() string { return r.name }

// Counter returns the named counter, creating it on first use. It panics
// if the name is already registered as a different instrument kind.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFresh(name, "counter", r.counters)
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFresh(name, "gauge", r.gauges)
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	r.checkFresh(name, "histogram", r.histograms)
	h := &Histogram{}
	r.histograms[name] = h
	return h
}

// checkFresh panics if name is registered under a kind other than want.
// The caller holds r.mu and has already established that name is absent
// from want's own map.
func (r *Registry) checkFresh(name, want string, _ interface{}) {
	kinds := []struct {
		kind string
		has  bool
	}{
		{"counter", r.counters[name] != nil},
		{"gauge", r.gauges[name] != nil},
		{"histogram", r.histograms[name] != nil},
	}
	for _, k := range kinds {
		if k.has && k.kind != want {
			panic(fmt.Sprintf("obs: metric %q already registered as a %s, requested as a %s", name, k.kind, want))
		}
	}
}

// sortedKeys returns map keys in sorted order, for deterministic output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
