// pfa reproduces the Section VI case study: an application node pages to
// a remote memory blade across the simulated network, either through
// traditional software paging (trap + kernel fault handler on every
// remote access) or through the Page-Fault Accelerator, which fetches the
// latency-critical page in hardware and lets the OS consume new-page
// metadata asynchronously in batches.
package main

import (
	"fmt"
	"log"

	"repro/internal/clock"
	"repro/internal/fame"
	"repro/internal/pfa"
	"repro/internal/softstack"
	"repro/internal/stats"
	"repro/internal/switchmodel"
)

// runOnce wires app node + memory blade through a ToR switch and runs the
// workload to completion.
func runOnce(mode pfa.Mode, localPages int, pattern pfa.AccessPattern) pfa.Result {
	appNode := softstack.NewNode(softstack.Config{Name: "app", MAC: 0x1, IP: 0x0a000001})
	bladeNode := softstack.NewNode(softstack.Config{Name: "blade", MAC: 0x2, IP: 0x0a000002})
	pfa.NewBlade(bladeNode)

	sw := switchmodel.New(switchmodel.Config{Name: "tor", Ports: 2})
	sw.MACTable().Set(0x1, 0)
	sw.MACTable().Set(0x2, 1)
	r := fame.NewRunner()
	r.Add(appNode)
	r.Add(bladeNode)
	r.Add(sw)
	const linkLat = 6400 // 2 us
	if err := r.Connect(appNode, 0, sw, 0, linkLat); err != nil {
		log.Fatal(err)
	}
	if err := r.Connect(bladeNode, 0, sw, 1, linkLat); err != nil {
		log.Fatal(err)
	}

	app := pfa.NewApp(appNode, pfa.AppConfig{
		Mode:             mode,
		Blade:            0x2,
		LocalPages:       localPages,
		Pattern:          pattern,
		ComputePerAccess: 6400,
	}, 0)
	for !app.Done() {
		if err := r.Run(linkLat * 64); err != nil {
			log.Fatal(err)
		}
	}
	return app.Result()
}

func main() {
	const pages = 4096 // 16 MiB working set of 4 KiB pages
	clk := clock.New(clock.DefaultTargetClock)

	fmt.Println("Page-Fault Accelerator vs. software paging (memory blade 2 us away):")
	for _, wl := range []struct {
		name string
		mk   func() pfa.AccessPattern
	}{
		{"Genome (random hash-table access)", func() pfa.AccessPattern { return pfa.NewGenomePattern(pages, 60000, 42) }},
		{"Qsort (depth-first partition passes)", func() pfa.AccessPattern { return pfa.NewQsortPattern(pages, 2) }},
	} {
		fmt.Printf("\n%s:\n", wl.name)
		t := stats.NewTable("Local memory", "SW paging (ms)", "PFA (ms)", "Speedup", "Faults", "Meta time ratio")
		for _, frac := range []float64{0.25, 0.5, 0.75} {
			local := int(float64(pages) * frac)
			sw := runOnce(pfa.SoftwarePaging, local, wl.mk())
			hw := runOnce(pfa.PFAMode, local, wl.mk())
			metaRatio := 0.0
			if hw.MetadataTime > 0 {
				metaRatio = float64(sw.MetadataTime) / float64(hw.MetadataTime)
			}
			t.AddRow(
				fmt.Sprintf("%.0f%%", frac*100),
				float64(clk.Duration(sw.Runtime).Microseconds())/1000,
				float64(clk.Duration(hw.Runtime).Microseconds())/1000,
				float64(sw.Runtime)/float64(hw.Runtime),
				sw.Faults,
				metaRatio,
			)
		}
		fmt.Print(t.String())
	}
	fmt.Println("\nExpected shape (paper Fig. 11): up to ~1.4x speedup on Genome at low local")
	fmt.Println("memory, identical eviction counts, and ~2.5x less metadata-management time.")
}
