package riscv

import (
	"math/bits"
	"testing"
	"testing/quick"
)

// execBinOp runs a single register-register instruction on fresh state
// with the given operand values and returns rd. Every program runs twice
// — predecode cache on and off — and the two final architectural states
// must be bit-identical, so all the property tests below double as
// fast-path equivalence checks.
func execBinOp(t *testing.T, emit func(a *Asm), x, y uint64) uint64 {
	t.Helper()
	a := NewAsm()
	a.LI64(T0, x)
	a.LI64(T1, y)
	emit(a)
	a.EBREAK()
	words := a.MustAssemble()
	run := func(decode bool) *CPU {
		bus := newFlatBus(1 << 16)
		bus.loadProgram(words)
		cpu := New(bus, 0, 0)
		cpu.SetDecodeCache(decode)
		for i := 0; i < 100 && !cpu.Halted; i++ {
			cpu.Step()
		}
		if !cpu.Halted {
			t.Fatal("program did not halt")
		}
		return cpu
	}
	on, off := run(true), run(false)
	if on.X != off.X || on.PC != off.PC || on.stats != off.stats {
		t.Fatalf("decode cache changed architectural state: on=%v off=%v", on.X, off.X)
	}
	return on.X[A0]
}

// TestALUAgainstGoSemantics cross-checks every RV64 register-register ALU
// op against Go's own 64-bit semantics over random operands.
func TestALUAgainstGoSemantics(t *testing.T) {
	ops := []struct {
		name string
		emit func(a *Asm)
		ref  func(x, y uint64) uint64
	}{
		{"add", func(a *Asm) { a.ADD(A0, T0, T1) }, func(x, y uint64) uint64 { return x + y }},
		{"sub", func(a *Asm) { a.SUB(A0, T0, T1) }, func(x, y uint64) uint64 { return x - y }},
		{"xor", func(a *Asm) { a.XOR(A0, T0, T1) }, func(x, y uint64) uint64 { return x ^ y }},
		{"or", func(a *Asm) { a.OR(A0, T0, T1) }, func(x, y uint64) uint64 { return x | y }},
		{"and", func(a *Asm) { a.AND(A0, T0, T1) }, func(x, y uint64) uint64 { return x & y }},
		{"sll", func(a *Asm) { a.SLL(A0, T0, T1) }, func(x, y uint64) uint64 { return x << (y & 63) }},
		{"srl", func(a *Asm) { a.SRL(A0, T0, T1) }, func(x, y uint64) uint64 { return x >> (y & 63) }},
		{"sra", func(a *Asm) { a.SRA(A0, T0, T1) }, func(x, y uint64) uint64 { return uint64(int64(x) >> (y & 63)) }},
		{"slt", func(a *Asm) { a.SLT(A0, T0, T1) }, func(x, y uint64) uint64 {
			if int64(x) < int64(y) {
				return 1
			}
			return 0
		}},
		{"sltu", func(a *Asm) { a.SLTU(A0, T0, T1) }, func(x, y uint64) uint64 {
			if x < y {
				return 1
			}
			return 0
		}},
		{"mul", func(a *Asm) { a.MUL(A0, T0, T1) }, func(x, y uint64) uint64 { return x * y }},
		{"mulhu", func(a *Asm) { a.MULHU(A0, T0, T1) }, func(x, y uint64) uint64 {
			hi, _ := bits.Mul64(x, y)
			return hi
		}},
		{"divu", func(a *Asm) { a.DIVU(A0, T0, T1) }, func(x, y uint64) uint64 {
			if y == 0 {
				return ^uint64(0)
			}
			return x / y
		}},
		{"remu", func(a *Asm) { a.REMU(A0, T0, T1) }, func(x, y uint64) uint64 {
			if y == 0 {
				return x
			}
			return x % y
		}},
		{"addw", func(a *Asm) { a.ADDW(A0, T0, T1) }, func(x, y uint64) uint64 {
			return uint64(int64(int32(uint32(x) + uint32(y))))
		}},
		{"subw", func(a *Asm) { a.SUBW(A0, T0, T1) }, func(x, y uint64) uint64 {
			return uint64(int64(int32(uint32(x) - uint32(y))))
		}},
	}
	for _, op := range ops {
		op := op
		t.Run(op.name, func(t *testing.T) {
			check := func(x, y uint64) bool {
				return execBinOp(t, op.emit, x, y) == op.ref(x, y)
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestSignedDivAgainstGo checks DIV/REM including the spec's two special
// cases (divide by zero, most-negative overflow) against a Go reference.
func TestSignedDivAgainstGo(t *testing.T) {
	refDiv := func(x, y int64) uint64 {
		switch {
		case y == 0:
			return ^uint64(0)
		case x == -1<<63 && y == -1:
			return uint64(x)
		default:
			return uint64(x / y)
		}
	}
	refRem := func(x, y int64) uint64 {
		switch {
		case y == 0:
			return uint64(x)
		case x == -1<<63 && y == -1:
			return 0
		default:
			return uint64(x % y)
		}
	}
	check := func(x, y int64) bool {
		d := execBinOp(t, func(a *Asm) { a.DIV(A0, T0, T1) }, uint64(x), uint64(y))
		r := execBinOp(t, func(a *Asm) { a.REM(A0, T0, T1) }, uint64(x), uint64(y))
		return d == refDiv(x, y) && r == refRem(x, y)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
	// The two special cases explicitly.
	if got := execBinOp(t, func(a *Asm) { a.DIV(A0, T0, T1) }, 1<<63, ^uint64(0)); got != 1<<63 {
		t.Errorf("INT64_MIN / -1 = %#x", got)
	}
	if got := execBinOp(t, func(a *Asm) { a.REM(A0, T0, T1) }, 7, 0); got != 7 {
		t.Errorf("7 %% 0 = %d", got)
	}
}

// TestCSRSetClearSemantics verifies CSRRS/CSRRC read-modify-write
// behaviour and the rs1=x0 no-write rule.
func TestCSRSetClearSemantics(t *testing.T) {
	a := NewAsm()
	a.LI(T0, 0b1100)
	a.CSRRW(Zero, CSRMScratch, T0) // mscratch = 0b1100
	a.LI(T1, 0b0110)
	a.CSRRS(A0, CSRMScratch, T1)   // A0 = 0b1100, mscratch = 0b1110
	a.CSRRC(A1, CSRMScratch, T1)   // A1 = 0b1110, mscratch = 0b1000
	a.CSRRS(A2, CSRMScratch, Zero) // A2 = 0b1000, no write
	a.EBREAK()
	bus := newFlatBus(1 << 16)
	bus.loadProgram(a.MustAssemble())
	cpu := New(bus, 0, 0)
	for i := 0; i < 50 && !cpu.Halted; i++ {
		cpu.Step()
	}
	if cpu.X[A0] != 0b1100 || cpu.X[A1] != 0b1110 || cpu.X[A2] != 0b1000 {
		t.Errorf("CSR sequence = %#b %#b %#b", cpu.X[A0], cpu.X[A1], cpu.X[A2])
	}
	if cpu.MScratch != 0b1000 {
		t.Errorf("mscratch = %#b, want 0b1000", cpu.MScratch)
	}
}

// TestMulhSignedAgainstGo checks MULH and MULHSU against bits.Mul64-based
// references.
func TestMulhSignedAgainstGo(t *testing.T) {
	refMulh := func(x, y int64) uint64 {
		hi, _ := bits.Mul64(uint64(x), uint64(y))
		// Convert unsigned high to signed high: subtract the wraparound
		// corrections.
		if x < 0 {
			hi -= uint64(y)
		}
		if y < 0 {
			hi -= uint64(x)
		}
		return hi
	}
	check := func(x, y int64) bool {
		got := execBinOp(t, func(a *Asm) { a.MULH(A0, T0, T1) }, uint64(x), uint64(y))
		return got == refMulh(x, y)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
