// Package riscv implements the functional+timing model of the RISC-V
// Rocket cores inside each simulated server blade, together with a small
// programmatic assembler used to build the bare-metal test programs of
// Section IV-C.
//
// FireSim derives its server models from Rocket Chip RTL; this package is
// the Go substitution (see DESIGN.md): an RV64IM machine-mode core with an
// in-order single-issue timing model, memory-mapped I/O, and
// machine-external interrupts, presenting the same observable contract —
// deterministic cycle counts driven by the cache/DRAM hierarchy and the
// NIC's MMIO interface.
package riscv

import "fmt"

// Reg is a register number 0..31.
type Reg uint32

// ABI register names.
const (
	Zero Reg = iota
	RA
	SP
	GP
	TP
	T0
	T1
	T2
	S0
	S1
	A0
	A1
	A2
	A3
	A4
	A5
	A6
	A7
	S2
	S3
	S4
	S5
	S6
	S7
	S8
	S9
	S10
	S11
	T3
	T4
	T5
	T6
)

// Opcode constants (major opcodes from the RV spec).
const (
	opLUI    = 0x37
	opAUIPC  = 0x17
	opJAL    = 0x6f
	opJALR   = 0x67
	opBranch = 0x63
	opLoad   = 0x03
	opStore  = 0x23
	opImm    = 0x13
	opImm32  = 0x1b
	opReg    = 0x33
	opReg32  = 0x3b
	opSystem = 0x73
	opFence  = 0x0f
)

// CSR addresses implemented by the core.
const (
	CSRMStatus  = 0x300
	CSRMIE      = 0x304
	CSRMTVec    = 0x305
	CSRMScratch = 0x340
	CSRMEPC     = 0x341
	CSRMCause   = 0x342
	CSRMIP      = 0x344
	CSRMHartID  = 0xf14
	CSRCycle    = 0xc00
)

// mstatus / mie / mip bits.
const (
	MStatusMIE  = 1 << 3
	MStatusMPIE = 1 << 7
	MIEMEIE     = 1 << 11 // machine external interrupt enable
	MIPMEIP     = 1 << 11 // machine external interrupt pending
)

// Trap causes.
const (
	CauseECall        = 11
	CauseExternalIntr = 0x8000000000000000 | 11
)

func encR(f7, rs2, rs1, f3, rd, op uint32) uint32 {
	return f7<<25 | rs2<<20 | rs1<<15 | f3<<12 | rd<<7 | op
}

func encI(imm int32, rs1, f3, rd, op uint32) uint32 {
	return uint32(imm)<<20 | rs1<<15 | f3<<12 | rd<<7 | op
}

func encS(imm int32, rs2, rs1, f3, op uint32) uint32 {
	u := uint32(imm)
	return (u>>5&0x7f)<<25 | rs2<<20 | rs1<<15 | f3<<12 | (u&0x1f)<<7 | op
}

func encB(imm int32, rs2, rs1, f3, op uint32) uint32 {
	u := uint32(imm)
	return (u>>12&1)<<31 | (u>>5&0x3f)<<25 | rs2<<20 | rs1<<15 | f3<<12 |
		(u>>1&0xf)<<8 | (u>>11&1)<<7 | op
}

func encU(imm int32, rd, op uint32) uint32 {
	return uint32(imm)&0xfffff000 | rd<<7 | op
}

func encJ(imm int32, rd, op uint32) uint32 {
	u := uint32(imm)
	return (u>>20&1)<<31 | (u>>1&0x3ff)<<21 | (u>>11&1)<<20 | (u>>12&0xff)<<12 | rd<<7 | op
}

type fixup struct {
	index int    // instruction index needing patching
	label string // target label
	kind  byte   // 'B' branch, 'J' jal
}

// Asm builds a machine-code program with label-based control flow.
// Instruction methods append one 32-bit word each; Assemble resolves label
// fixups and returns the final words.
type Asm struct {
	words  []uint32
	labels map[string]int
	fixups []fixup
	err    error
}

// NewAsm returns an empty program builder.
func NewAsm() *Asm {
	return &Asm{labels: make(map[string]int)}
}

// PC returns the byte offset of the next instruction.
func (a *Asm) PC() int { return len(a.words) * 4 }

// Label defines a label at the current position.
func (a *Asm) Label(name string) {
	if _, dup := a.labels[name]; dup {
		a.fail(fmt.Errorf("riscv: duplicate label %q", name))
		return
	}
	a.labels[name] = len(a.words)
}

func (a *Asm) fail(err error) {
	if a.err == nil {
		a.err = err
	}
}

func (a *Asm) emit(w uint32) { a.words = append(a.words, w) }

// Word emits a raw instruction word.
func (a *Asm) Word(w uint32) { a.emit(w) }

// --- register-register ---

// ADD emits add rd, rs1, rs2.
func (a *Asm) ADD(rd, rs1, rs2 Reg) { a.emit(encR(0, uint32(rs2), uint32(rs1), 0, uint32(rd), opReg)) }

// SUB emits sub rd, rs1, rs2.
func (a *Asm) SUB(rd, rs1, rs2 Reg) {
	a.emit(encR(0x20, uint32(rs2), uint32(rs1), 0, uint32(rd), opReg))
}

// SLL emits sll rd, rs1, rs2.
func (a *Asm) SLL(rd, rs1, rs2 Reg) { a.emit(encR(0, uint32(rs2), uint32(rs1), 1, uint32(rd), opReg)) }

// SLT emits slt rd, rs1, rs2.
func (a *Asm) SLT(rd, rs1, rs2 Reg) { a.emit(encR(0, uint32(rs2), uint32(rs1), 2, uint32(rd), opReg)) }

// SLTU emits sltu rd, rs1, rs2.
func (a *Asm) SLTU(rd, rs1, rs2 Reg) {
	a.emit(encR(0, uint32(rs2), uint32(rs1), 3, uint32(rd), opReg))
}

// XOR emits xor rd, rs1, rs2.
func (a *Asm) XOR(rd, rs1, rs2 Reg) { a.emit(encR(0, uint32(rs2), uint32(rs1), 4, uint32(rd), opReg)) }

// SRL emits srl rd, rs1, rs2.
func (a *Asm) SRL(rd, rs1, rs2 Reg) { a.emit(encR(0, uint32(rs2), uint32(rs1), 5, uint32(rd), opReg)) }

// SRA emits sra rd, rs1, rs2.
func (a *Asm) SRA(rd, rs1, rs2 Reg) {
	a.emit(encR(0x20, uint32(rs2), uint32(rs1), 5, uint32(rd), opReg))
}

// OR emits or rd, rs1, rs2.
func (a *Asm) OR(rd, rs1, rs2 Reg) { a.emit(encR(0, uint32(rs2), uint32(rs1), 6, uint32(rd), opReg)) }

// AND emits and rd, rs1, rs2.
func (a *Asm) AND(rd, rs1, rs2 Reg) { a.emit(encR(0, uint32(rs2), uint32(rs1), 7, uint32(rd), opReg)) }

// ADDW emits addw rd, rs1, rs2.
func (a *Asm) ADDW(rd, rs1, rs2 Reg) {
	a.emit(encR(0, uint32(rs2), uint32(rs1), 0, uint32(rd), opReg32))
}

// SUBW emits subw rd, rs1, rs2.
func (a *Asm) SUBW(rd, rs1, rs2 Reg) {
	a.emit(encR(0x20, uint32(rs2), uint32(rs1), 0, uint32(rd), opReg32))
}

// --- M extension ---

// MUL emits mul rd, rs1, rs2.
func (a *Asm) MUL(rd, rs1, rs2 Reg) { a.emit(encR(1, uint32(rs2), uint32(rs1), 0, uint32(rd), opReg)) }

// MULH emits mulh rd, rs1, rs2 (high 64 bits of the signed product).
func (a *Asm) MULH(rd, rs1, rs2 Reg) {
	a.emit(encR(1, uint32(rs2), uint32(rs1), 1, uint32(rd), opReg))
}

// MULHSU emits mulhsu rd, rs1, rs2 (high bits of signed x unsigned).
func (a *Asm) MULHSU(rd, rs1, rs2 Reg) {
	a.emit(encR(1, uint32(rs2), uint32(rs1), 2, uint32(rd), opReg))
}

// MULHU emits mulhu rd, rs1, rs2.
func (a *Asm) MULHU(rd, rs1, rs2 Reg) {
	a.emit(encR(1, uint32(rs2), uint32(rs1), 3, uint32(rd), opReg))
}

// DIV emits div rd, rs1, rs2.
func (a *Asm) DIV(rd, rs1, rs2 Reg) { a.emit(encR(1, uint32(rs2), uint32(rs1), 4, uint32(rd), opReg)) }

// DIVU emits divu rd, rs1, rs2.
func (a *Asm) DIVU(rd, rs1, rs2 Reg) {
	a.emit(encR(1, uint32(rs2), uint32(rs1), 5, uint32(rd), opReg))
}

// REM emits rem rd, rs1, rs2.
func (a *Asm) REM(rd, rs1, rs2 Reg) { a.emit(encR(1, uint32(rs2), uint32(rs1), 6, uint32(rd), opReg)) }

// REMU emits remu rd, rs1, rs2.
func (a *Asm) REMU(rd, rs1, rs2 Reg) {
	a.emit(encR(1, uint32(rs2), uint32(rs1), 7, uint32(rd), opReg))
}

// --- immediates ---

// ADDI emits addi rd, rs1, imm.
func (a *Asm) ADDI(rd, rs1 Reg, imm int32) {
	a.checkImm12(imm)
	a.emit(encI(imm, uint32(rs1), 0, uint32(rd), opImm))
}

// SLTI emits slti rd, rs1, imm.
func (a *Asm) SLTI(rd, rs1 Reg, imm int32) {
	a.checkImm12(imm)
	a.emit(encI(imm, uint32(rs1), 2, uint32(rd), opImm))
}

// SLTIU emits sltiu rd, rs1, imm.
func (a *Asm) SLTIU(rd, rs1 Reg, imm int32) {
	a.checkImm12(imm)
	a.emit(encI(imm, uint32(rs1), 3, uint32(rd), opImm))
}

// XORI emits xori rd, rs1, imm.
func (a *Asm) XORI(rd, rs1 Reg, imm int32) {
	a.checkImm12(imm)
	a.emit(encI(imm, uint32(rs1), 4, uint32(rd), opImm))
}

// ORI emits ori rd, rs1, imm.
func (a *Asm) ORI(rd, rs1 Reg, imm int32) {
	a.checkImm12(imm)
	a.emit(encI(imm, uint32(rs1), 6, uint32(rd), opImm))
}

// ANDI emits andi rd, rs1, imm.
func (a *Asm) ANDI(rd, rs1 Reg, imm int32) {
	a.checkImm12(imm)
	a.emit(encI(imm, uint32(rs1), 7, uint32(rd), opImm))
}

// SLLI emits slli rd, rs1, shamt.
func (a *Asm) SLLI(rd, rs1 Reg, shamt int32) {
	a.emit(encI(shamt&0x3f, uint32(rs1), 1, uint32(rd), opImm))
}

// SRLI emits srli rd, rs1, shamt.
func (a *Asm) SRLI(rd, rs1 Reg, shamt int32) {
	a.emit(encI(shamt&0x3f, uint32(rs1), 5, uint32(rd), opImm))
}

// SRAI emits srai rd, rs1, shamt.
func (a *Asm) SRAI(rd, rs1 Reg, shamt int32) {
	a.emit(encI(shamt&0x3f|0x400, uint32(rs1), 5, uint32(rd), opImm))
}

// ADDIW emits addiw rd, rs1, imm.
func (a *Asm) ADDIW(rd, rs1 Reg, imm int32) {
	a.checkImm12(imm)
	a.emit(encI(imm, uint32(rs1), 0, uint32(rd), opImm32))
}

// LUI emits lui rd, imm (imm is the full 32-bit value whose top 20 bits
// are used).
func (a *Asm) LUI(rd Reg, imm int32) { a.emit(encU(imm, uint32(rd), opLUI)) }

// AUIPC emits auipc rd, imm.
func (a *Asm) AUIPC(rd Reg, imm int32) { a.emit(encU(imm, uint32(rd), opAUIPC)) }

func (a *Asm) checkImm12(imm int32) {
	if imm < -2048 || imm > 2047 {
		a.fail(fmt.Errorf("riscv: immediate %d out of 12-bit range", imm))
	}
}

// --- loads and stores ---

// LB emits lb rd, off(rs1).
func (a *Asm) LB(rd, rs1 Reg, off int32) {
	a.checkImm12(off)
	a.emit(encI(off, uint32(rs1), 0, uint32(rd), opLoad))
}

// LH emits lh rd, off(rs1).
func (a *Asm) LH(rd, rs1 Reg, off int32) {
	a.checkImm12(off)
	a.emit(encI(off, uint32(rs1), 1, uint32(rd), opLoad))
}

// LW emits lw rd, off(rs1).
func (a *Asm) LW(rd, rs1 Reg, off int32) {
	a.checkImm12(off)
	a.emit(encI(off, uint32(rs1), 2, uint32(rd), opLoad))
}

// LD emits ld rd, off(rs1).
func (a *Asm) LD(rd, rs1 Reg, off int32) {
	a.checkImm12(off)
	a.emit(encI(off, uint32(rs1), 3, uint32(rd), opLoad))
}

// LBU emits lbu rd, off(rs1).
func (a *Asm) LBU(rd, rs1 Reg, off int32) {
	a.checkImm12(off)
	a.emit(encI(off, uint32(rs1), 4, uint32(rd), opLoad))
}

// LHU emits lhu rd, off(rs1).
func (a *Asm) LHU(rd, rs1 Reg, off int32) {
	a.checkImm12(off)
	a.emit(encI(off, uint32(rs1), 5, uint32(rd), opLoad))
}

// LWU emits lwu rd, off(rs1).
func (a *Asm) LWU(rd, rs1 Reg, off int32) {
	a.checkImm12(off)
	a.emit(encI(off, uint32(rs1), 6, uint32(rd), opLoad))
}

// SB emits sb rs2, off(rs1).
func (a *Asm) SB(rs2, rs1 Reg, off int32) {
	a.checkImm12(off)
	a.emit(encS(off, uint32(rs2), uint32(rs1), 0, opStore))
}

// SH emits sh rs2, off(rs1).
func (a *Asm) SH(rs2, rs1 Reg, off int32) {
	a.checkImm12(off)
	a.emit(encS(off, uint32(rs2), uint32(rs1), 1, opStore))
}

// SW emits sw rs2, off(rs1).
func (a *Asm) SW(rs2, rs1 Reg, off int32) {
	a.checkImm12(off)
	a.emit(encS(off, uint32(rs2), uint32(rs1), 2, opStore))
}

// SD emits sd rs2, off(rs1).
func (a *Asm) SD(rs2, rs1 Reg, off int32) {
	a.checkImm12(off)
	a.emit(encS(off, uint32(rs2), uint32(rs1), 3, opStore))
}

// --- control flow ---

func (a *Asm) branch(rs1, rs2 Reg, f3 uint32, label string) {
	a.fixups = append(a.fixups, fixup{index: len(a.words), label: label, kind: 'B'})
	a.emit(encB(0, uint32(rs2), uint32(rs1), f3, opBranch))
}

// BEQ emits beq rs1, rs2, label.
func (a *Asm) BEQ(rs1, rs2 Reg, label string) { a.branch(rs1, rs2, 0, label) }

// BNE emits bne rs1, rs2, label.
func (a *Asm) BNE(rs1, rs2 Reg, label string) { a.branch(rs1, rs2, 1, label) }

// BLT emits blt rs1, rs2, label.
func (a *Asm) BLT(rs1, rs2 Reg, label string) { a.branch(rs1, rs2, 4, label) }

// BGE emits bge rs1, rs2, label.
func (a *Asm) BGE(rs1, rs2 Reg, label string) { a.branch(rs1, rs2, 5, label) }

// BLTU emits bltu rs1, rs2, label.
func (a *Asm) BLTU(rs1, rs2 Reg, label string) { a.branch(rs1, rs2, 6, label) }

// BGEU emits bgeu rs1, rs2, label.
func (a *Asm) BGEU(rs1, rs2 Reg, label string) { a.branch(rs1, rs2, 7, label) }

// JAL emits jal rd, label.
func (a *Asm) JAL(rd Reg, label string) {
	a.fixups = append(a.fixups, fixup{index: len(a.words), label: label, kind: 'J'})
	a.emit(encJ(0, uint32(rd), opJAL))
}

// JALR emits jalr rd, off(rs1).
func (a *Asm) JALR(rd, rs1 Reg, off int32) {
	a.checkImm12(off)
	a.emit(encI(off, uint32(rs1), 0, uint32(rd), opJALR))
}

// J emits an unconditional jump to label (jal x0).
func (a *Asm) J(label string) { a.JAL(Zero, label) }

// RET emits jalr x0, 0(ra).
func (a *Asm) RET() { a.JALR(Zero, RA, 0) }

// NOP emits addi x0, x0, 0.
func (a *Asm) NOP() { a.ADDI(Zero, Zero, 0) }

// --- system ---

// CSRRW emits csrrw rd, csr, rs1.
func (a *Asm) CSRRW(rd Reg, csr uint32, rs1 Reg) {
	a.emit(encI(int32(csr), uint32(rs1), 1, uint32(rd), opSystem))
}

// CSRRS emits csrrs rd, csr, rs1.
func (a *Asm) CSRRS(rd Reg, csr uint32, rs1 Reg) {
	a.emit(encI(int32(csr), uint32(rs1), 2, uint32(rd), opSystem))
}

// CSRRC emits csrrc rd, csr, rs1.
func (a *Asm) CSRRC(rd Reg, csr uint32, rs1 Reg) {
	a.emit(encI(int32(csr), uint32(rs1), 3, uint32(rd), opSystem))
}

// ECALL emits ecall.
func (a *Asm) ECALL() { a.emit(encI(0, 0, 0, 0, opSystem)) }

// EBREAK emits ebreak; the core model treats it as a simulation halt,
// playing the role of the tohost power-off used by bare-metal RISC-V test
// harnesses.
func (a *Asm) EBREAK() { a.emit(encI(1, 0, 0, 0, opSystem)) }

// WFI emits wfi (wait for interrupt).
func (a *Asm) WFI() { a.emit(encI(0x105, 0, 0, 0, opSystem)) }

// MRET emits mret.
func (a *Asm) MRET() { a.emit(encI(0x302, 0, 0, 0, opSystem)) }

// FENCE emits fence (a timing no-op in this single-hart model).
func (a *Asm) FENCE() { a.emit(encI(0, 0, 0, 0, opFence)) }

// FENCEI emits fence.i, which synchronises the instruction stream with
// prior data stores (required between patching code and executing it when
// the predecode cache is enabled).
func (a *Asm) FENCEI() { a.emit(encI(0, 0, 1, 0, opFence)) }

// --- pseudo-instructions ---

// LI loads a 32-bit signed constant into rd (1-2 instructions).
func (a *Asm) LI(rd Reg, v int32) {
	if v >= -2048 && v <= 2047 {
		a.ADDI(rd, Zero, v)
		return
	}
	upper := int32((int64(v) + 0x800) & ^int64(0xfff))
	a.LUI(rd, upper)
	if low := v - upper; low != 0 {
		a.ADDIW(rd, rd, low)
	}
}

// LI64 loads an arbitrary 64-bit constant into rd with a shift-or chunk
// sequence (11 instructions, no scratch register); used for MMIO base
// addresses above the sign-extendable range.
func (a *Asm) LI64(rd Reg, v uint64) {
	// Top 9 bits first (always fits a 12-bit immediate), then five 11-bit
	// chunks, each ORI-safe because 11-bit values are non-negative.
	a.ADDI(rd, Zero, int32(v>>55))
	for shift := 44; shift >= 0; shift -= 11 {
		a.SLLI(rd, rd, 11)
		if chunk := int32(v >> uint(shift) & 0x7ff); chunk != 0 {
			a.ORI(rd, rd, chunk)
		}
	}
}

// MV emits mv rd, rs (addi rd, rs, 0).
func (a *Asm) MV(rd, rs Reg) { a.ADDI(rd, rs, 0) }

// Assemble resolves all fixups and returns the program as instruction
// words.
func (a *Asm) Assemble() ([]uint32, error) {
	if a.err != nil {
		return nil, a.err
	}
	for _, f := range a.fixups {
		target, ok := a.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("riscv: undefined label %q", f.label)
		}
		off := int32(target-f.index) * 4
		w := a.words[f.index]
		switch f.kind {
		case 'B':
			if off < -4096 || off > 4095 {
				return nil, fmt.Errorf("riscv: branch to %q out of range (%d bytes)", f.label, off)
			}
			a.words[f.index] = encB(off, w>>20&0x1f, w>>15&0x1f, w>>12&7, opBranch)
		case 'J':
			if off < -(1<<20) || off >= 1<<20 {
				return nil, fmt.Errorf("riscv: jump to %q out of range (%d bytes)", f.label, off)
			}
			a.words[f.index] = encJ(off, w>>7&0x1f, opJAL)
		}
	}
	return a.words, nil
}

// MustAssemble is Assemble for tests and fixed programs, panicking on
// error.
func (a *Asm) MustAssemble() []uint32 {
	w, err := a.Assemble()
	if err != nil {
		panic(err)
	}
	return w
}

// Bytes assembles the program to little-endian bytes for loading into the
// DRAM model.
func (a *Asm) Bytes() ([]byte, error) {
	words, err := a.Assemble()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, len(words)*4)
	for i, w := range words {
		buf[i*4] = byte(w)
		buf[i*4+1] = byte(w >> 8)
		buf[i*4+2] = byte(w >> 16)
		buf[i*4+3] = byte(w >> 24)
	}
	return buf, nil
}
