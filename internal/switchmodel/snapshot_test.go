package switchmodel

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ethernet"
	"repro/internal/snapshot"
	"repro/internal/snapshot/snaptest"
	"repro/internal/token"
)

func TestSwitchSnapshotConformance(t *testing.T) {
	mk := func() *Switch {
		sw := New(Config{Name: "tor", Ports: 4, SwitchingLatency: 10})
		sw.MACTable().Set(ethernet.MAC(0x2222), 2)
		return sw
	}
	sw := mk()
	flits := mkFrameFlits(t, 0x2222, 0x1111, 40)
	// One complete packet waiting out its switching latency plus a second
	// packet cut off mid-assembly, so the pending heap, an egress queue
	// and a partial ingress all carry state.
	tick(sw, 16, map[int]*token.Batch{0: packetBatch(16, 2, flits)})
	half := token.NewBatch(8)
	for i := 0; i < 4; i++ {
		half.Put(i, token.Token{Data: flits[i], Valid: true})
	}
	tick(sw, 8, map[int]*token.Batch{1: half})
	snaptest.RoundTrip(t, sw, func() snapshot.Snapshotter { return mk() })
}

func TestSwitchRestoreRejectsPortMismatch(t *testing.T) {
	sw := New(Config{Name: "tor", Ports: 4})
	data := snaptest.Save(t, sw)
	other := New(Config{Name: "tor", Ports: 2})
	err := restoreErr(other, data)
	if err == nil || !strings.Contains(err.Error(), "ports") {
		t.Fatalf("restore into 2-port switch from 4-port checkpoint: err = %v", err)
	}
}

// restoreErr mirrors snaptest's framing for error-path assertions.
func restoreErr(dst snapshot.Snapshotter, stream []byte) error {
	r, _, err := snapshot.NewReader(bytes.NewReader(stream))
	if err != nil {
		return err
	}
	if _, err := r.Next(); err != nil {
		return err
	}
	return dst.Restore(r)
}
