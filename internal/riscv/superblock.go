package riscv

import "repro/internal/clock"

// Superblock interpreter: decode-once, execute-many threaded dispatch on
// top of the predecode cache. A superblock chains consecutive predecoded
// entries starting at some PC — conditional branches do not end a block
// (the fall-through path continues inside it; a taken branch chains to the
// target's block through the dispatcher) — and ends at an unconditional
// control transfer, a system/fence instruction, a cold decode entry, or
// sbMaxLen instructions.
//
// Everything here is derived state, rebuilt lazily from memory, and is
// deliberately excluded from FSNP snapshot streams exactly like the
// predecode cache: blocks cache only the decoding of words that still sit
// in DRAM, so dropping them can never change an architectural observable,
// and a restore (which calls InvalidateDecodeAll) starts cold.
//
// Invalidation rides the existing SMC machinery. Live blocks collectively
// maintain an address envelope [sbLo, sbHi); any invalidated range that
// overlaps the envelope bumps sbVer, which the dispatcher checks after
// every instruction, so a store into block N+1's code while block N is
// executing — or into the running block itself — exits dispatch before
// the stale word could issue. Ordinary data stores (outside the envelope)
// cost two compares.
const (
	sbBits = 10
	sbSize = 1 << sbBits
	sbMask = sbSize - 1
	// sbMaxLen bounds block length so a single dispatch stays a small
	// fraction of a token window.
	sbMaxLen = 32
)

// sbEntry is one chained instruction, packed to 32 bytes so a typical
// block spans few host cache lines. The cracked fields widen to uint32 at
// the exec1 call for free (zero-extending loads).
type sbEntry struct {
	pc   uint64
	imm  uint64
	word uint32
	// spanCost is the total post-clamp cost of the fetch span starting
	// here (valid when spanLen > 0); see buildBlock.
	spanCost uint16
	op       uint8
	rd       uint8
	rs1      uint8
	rs2      uint8
	f3       uint8
	f7       uint8
	// spanLen counts the consecutive span-pure entries starting here that
	// share one I-line: eligible for one batched FetchSpan call.
	spanLen uint8
	_       [2]uint8
}

type superblock struct {
	pc      uint64
	ver     uint64
	entries []sbEntry
	valid   bool
}

// SetSuperblocks enables or disables the superblock dispatcher (default
// on). Superblocks build on the predecode cache: with SetDecodeCache(false)
// no blocks can form and StepBlock degrades to a no-op. Disabling drops all
// built blocks, so re-enabling starts cold.
func (c *CPU) SetSuperblocks(on bool) {
	c.sbOn = on
	if !on {
		c.sb = nil
		c.sbLo, c.sbHi = 0, 0
	}
}

// SuperblocksEnabled reports whether the superblock fast path is active.
func (c *CPU) SuperblocksEnabled() bool { return c.sbOn }

// SuperblockInstret reports how many instructions retired through block
// dispatch (observability only; excluded from Stats and snapshots).
func (c *CPU) SuperblockInstret() uint64 { return c.sbInstret }

// BindWindow attaches the compute-window plumbing the SoC scheduler uses
// during block dispatch: *now is advanced to each instruction's start
// cycle before any bus access, and *stop, when set true by the bus
// mid-dispatch (an MMIO access tripped the window), ends StepBlock after
// the current instruction. Either may be nil.
func (c *CPU) BindWindow(now *clock.Cycles, stop *bool) {
	c.winNow = now
	c.winStop = stop
}

// killBlocksRange drops every superblock overlapping [addr, addr+n).
// Blocks record only their collective envelope, so an overlapping write
// conservatively kills all of them via a version bump; the dispatcher
// re-checks the version after each instruction.
func (c *CPU) killBlocksRange(addr uint64, n int) {
	if c.sbLo != c.sbHi && addr < c.sbHi && addr+uint64(n) > c.sbLo {
		c.sbVer++
		c.sbLo, c.sbHi = 0, 0
	}
}

// killBlocksAll drops every superblock (fence.i, snapshot restore, bulk
// DMA, stale-word refetch).
func (c *CPU) killBlocksAll() {
	if c.sbLo != c.sbHi {
		c.sbVer++
		c.sbLo, c.sbHi = 0, 0
	}
}

// lookupBlock returns a live superblock starting at pc, building one from
// the predecode cache if needed, or nil when the entry at pc is cold.
func (c *CPU) lookupBlock(pc uint64) *superblock {
	if c.sb == nil {
		c.sb = make([]superblock, sbSize)
	}
	b := &c.sb[(pc>>2)&sbMask]
	if b.valid && b.pc == pc && b.ver == c.sbVer {
		return b
	}
	return c.buildBlock(b, pc)
}

// buildBlock forms a superblock at pc from consecutive valid predecoded
// entries. It reuses the slot's entry storage across rebuilds.
func (c *CPU) buildBlock(b *superblock, pc uint64) *superblock {
	entries := b.entries[:0]
	p := pc
	for len(entries) < sbMaxLen {
		d := &c.dec[(p>>2)&decMask]
		if !d.valid || d.pc != p {
			break
		}
		entries = append(entries, sbEntry{pc: p, imm: d.imm, word: d.word,
			op: uint8(d.op), rd: uint8(d.rd), rs1: uint8(d.rs1), rs2: uint8(d.rs2),
			f3: uint8(d.f3), f7: uint8(d.f7)})
		if blockEnds(d.op) {
			break
		}
		p += 4
	}
	if len(entries) == 0 {
		b.valid = false
		b.entries = entries
		return nil
	}
	if c.spanBus != nil {
		c.formSpans(entries)
	}
	*b = superblock{pc: pc, ver: c.sbVer, entries: entries, valid: true}
	end := entries[len(entries)-1].pc + 4
	if c.sbLo == c.sbHi {
		c.sbLo, c.sbHi = pc, end
	} else {
		if pc < c.sbLo {
			c.sbLo = pc
		}
		if end > c.sbHi {
			c.sbHi = end
		}
	}
	return b
}

// formSpans annotates entries with fetch-span runs, walking backwards so
// each entry extends its successor's run. A span is a maximal run of
// span-pure instructions within one I-line; the dispatcher replays all of
// a span's fetches in one FetchSpan call and executes its instructions
// with no per-instruction exit checks (none can fire; see StepBlock).
// spanCost accumulates each instruction's post-clamp cost, which for pure
// ops is fully determined at build time: Base (+ Mul/Div for multiplies
// and divides) plus a zero fetch stall, clamped to at least 1.
func (c *CPU) formSpans(entries []sbEntry) {
	mask := c.spanMask
	for i := len(entries) - 1; i >= 0; i-- {
		e := &entries[i]
		if !spanPure(e.op, e.f3, e.f7) {
			continue
		}
		cost := c.timing.Base
		if e.f7 == 1 {
			switch uint32(e.op) {
			case opReg:
				if e.f3 < 4 {
					cost += c.timing.Mul
				} else {
					cost += c.timing.Div
				}
			case opReg32:
				if e.f3 == 0 {
					cost += c.timing.Mul
				} else {
					cost += c.timing.Div
				}
			}
		}
		if cost <= 0 {
			cost = 1
		}
		if cost > 0xff {
			continue // exotic timing; keep the per-instruction path exact
		}
		e.spanLen, e.spanCost = 1, uint16(cost)
		if i+1 < len(entries) {
			n := &entries[i+1]
			if n.spanLen > 0 && n.spanLen < 0xff && n.pc&mask == e.pc&mask {
				e.spanLen = n.spanLen + 1
				e.spanCost += n.spanCost
			}
		}
	}
}

// spanPure reports whether a cracked instruction is span-eligible: it
// performs no bus access, cannot transfer control and cannot trap (the
// illegal-instruction paths in the 32-bit ops are excluded), so executing
// it can neither end the dispatch loop nor touch anything outside the
// register file. Its cost is then fully determined at decode time.
func spanPure(op, f3, f7 uint8) bool {
	switch uint32(op) {
	case opLUI, opAUIPC, opImm, opReg:
		return true
	case opImm32:
		return f3 == 0 || f3 == 1 || f3 == 5
	case opReg32:
		if f7 == 1 {
			return f3 == 0 || f3 >= 4
		}
		return f3 == 0 || f3 == 1 || f3 == 5
	}
	return false
}

// blockEnds reports whether op terminates block formation: unconditional
// transfers always leave the block, and system/fence instructions can
// change interrupt/decode state mid-stream, so they end it conservatively.
func blockEnds(op uint32) bool {
	switch op {
	case opJAL, opJALR, opSystem, opFence:
		return true
	}
	return false
}

// StepBlock executes superblocks starting at the current PC until an exit
// condition: budget cycles of instruction start-times consumed, a WFI or
// halt, a trip signalled through BindWindow (MMIO), a block invalidation,
// or a transfer into cold code. It returns the cycles consumed (the last
// instruction may run past budget, exactly as a slow-path instruction
// started on the window's final cycle would); 0 means no block could run
// and the caller should fall back to Step.
//
// Cycle-exactness contract with the per-cycle path: before every
// instruction the hart's Cycle and the bus clock are advanced to that
// instruction's start cycle and the external interrupt pending bit is
// deasserted — the per-cycle loop does exactly this each cycle of a
// compute-only window (the line is known low for the whole window, and
// the clear is idempotent, so once per instruction boundary is identical
// to once per cycle). Fetch side effects replay through the same
// FetchFast/Fetch calls Step makes, and execution goes through the same
// exec1, so every checkpointed observable matches the slow path bit for
// bit.
func (c *CPU) StepBlock(budget clock.Cycles) clock.Cycles {
	if !c.sbOn || c.dec == nil || budget <= 0 || c.Halted || c.WaitingForInterrupt {
		return 0
	}
	fast := c.fastBus
	spanBus := c.spanBus
	winNow := c.winNow
	winStop := c.winStop
	base := c.Cycle
	now := base
	var used clock.Cycles
	var retired uint64
	defer func() {
		c.sbInstret += retired
		// Land the hart's cycle counter on the last executed instruction's
		// start cycle, exactly where the per-cycle path leaves it. During
		// dispatch it lives in a register; only opSystem entries can read
		// it mid-block (CSR mcycle) and those get an eager store below.
		c.Cycle = now
	}()
	for {
		b := c.lookupBlock(c.PC)
		if b == nil {
			return used
		}
		bVer := b.ver
		// Deassert the external line once per block: the per-cycle loop
		// clears it before every step, but inside a block body no
		// instruction can set MEIP (opSystem ends block formation), so one
		// clear per block boundary is identical.
		c.MIP &^= MIPMEIP
		entries := b.entries
		for ei := 0; ei < len(entries); ei++ {
			e := &entries[ei]
			now = base + used

			// Fetch-span fast path: a run of span-pure instructions in one
			// I-line replays all its fetch side effects in a single batched
			// call and executes with no per-instruction exit checks. None
			// can fire inside the run: no bus access means no window trip
			// and no store-driven invalidation, span-pure ops cannot trap,
			// halt, WFI or branch (PC provably advances +4 each), and the
			// build-time spanCost precheck proves every instruction starts
			// within budget. The bus clock (*winNow) can go stale during
			// the run because only bus accesses read it.
			if e.spanLen > 1 && spanBus != nil &&
				used+clock.Cycles(e.spanCost) <= budget && spanBus.FetchSpan(e.pc, int(e.spanLen)) {
				end := ei + int(e.spanLen)
				var cost clock.Cycles
				for j := ei; j < end; j++ {
					se := &entries[j]
					cost = c.exec1(se.word, uint32(se.op), uint32(se.rd), uint32(se.rs1), uint32(se.rs2),
						uint32(se.f3), uint32(se.f7), se.imm, 0)
					if cost <= 0 {
						cost = 1
					}
					used += cost
				}
				retired += uint64(end - ei)
				now = base + used - cost
				ei = end - 1
				if used >= budget {
					return used
				}
				continue
			}

			if winNow != nil {
				*winNow = now
			}
			if e.op == uint8(opSystem) {
				c.Cycle = now
			}

			var fetchLat clock.Cycles
			ok := false
			if fast != nil {
				fetchLat, ok = fast.FetchFast(e.pc)
			}
			if !ok {
				// No fast bus (or line not provably resident): full fetch,
				// with the same stale-word guard fetchPredecode applies.
				word, lat := c.bus.Fetch(e.pc)
				fetchLat = lat
				if word != e.word {
					c.killBlocksAll()
					op := word & 0x7f
					rd := word >> 7 & 0x1f
					rs1 := word >> 15 & 0x1f
					rs2 := word >> 20 & 0x1f
					f3 := word >> 12 & 7
					f7 := word >> 25
					imm := crackImm(op, word)
					c.dec[(e.pc>>2)&decMask] = decEntry{pc: e.pc, imm: imm, word: word, valid: true,
						op: op, rd: rd, rs1: rs1, rs2: rs2, f3: f3, f7: f7}
					if op == opSystem {
						c.Cycle = now
					}
					cost := c.exec1(word, op, rd, rs1, rs2, f3, f7, imm, fetchLat)
					if cost <= 0 {
						cost = 1
					}
					retired++
					return used + cost
				}
			}
			cost := c.exec1(e.word, uint32(e.op), uint32(e.rd), uint32(e.rs1), uint32(e.rs2),
				uint32(e.f3), uint32(e.f7), e.imm, fetchLat)
			if cost <= 0 {
				cost = 1
			}
			used += cost
			retired++
			if winStop != nil && *winStop {
				return used
			}
			if c.sbVer != bVer {
				// A store invalidated code; PC already points past the
				// retired instruction, so the caller resumes exactly there.
				return used
			}
			if used >= budget {
				return used
			}
			if c.PC != e.pc+4 {
				break // control transfer: chain to the target's block
			}
		}
		// Halt and WFI can only arise from an opSystem instruction, which
		// always ends its block — one check per block is therefore exact.
		if c.Halted || c.WaitingForInterrupt {
			return used
		}
	}
}
