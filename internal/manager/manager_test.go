package manager

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/softstack"
)

// figure4Topology builds the paper's 64-node example: a root switch over 8
// ToR switches with 8 quad-core servers each (Figures 1 and 4).
func figure4Topology() *SwitchNode {
	root := NewSwitchNode("root")
	for i := 0; i < 8; i++ {
		tor := NewSwitchNode(fmt.Sprintf("tor%d", i))
		root.AddDownlinks(tor)
		for j := 0; j < 8; j++ {
			tor.AddDownlinks(NewServerNode("", QuadCore))
		}
	}
	return root
}

// figure10Topology builds the 1024-node datacenter: 32 ToR switches of 32
// servers each, 4 aggregation switches of 8 ToRs each, one root.
func figure10Topology() *SwitchNode {
	root := NewSwitchNode("root")
	for a := 0; a < 4; a++ {
		agg := NewSwitchNode(fmt.Sprintf("agg%d", a))
		root.AddDownlinks(agg)
		for t := 0; t < 8; t++ {
			tor := NewSwitchNode(fmt.Sprintf("tor%d_%d", a, t))
			agg.AddDownlinks(tor)
			for s := 0; s < 32; s++ {
				tor.AddDownlinks(NewServerNode("", QuadCore))
			}
		}
	}
	return root
}

func TestValidate(t *testing.T) {
	if err := Validate(figure4Topology()); err != nil {
		t.Errorf("valid topology rejected: %v", err)
	}
	if err := Validate(nil); err == nil {
		t.Error("nil root accepted")
	}
	empty := NewSwitchNode("empty")
	if err := Validate(empty); err == nil {
		t.Error("switch with no downlinks accepted")
	}
	dup := NewSwitchNode("root")
	srv := NewServerNode("s", QuadCore)
	dup.AddDownlinks(srv, srv)
	if err := Validate(dup); err == nil {
		t.Error("repeated node accepted")
	}
	bad := NewSwitchNode("root")
	bad.AddDownlinks(NewServerNode("s", BladeType("OctoCore")))
	if err := Validate(bad); err == nil {
		t.Error("unknown blade type accepted")
	}
}

func TestCounts(t *testing.T) {
	topo := figure4Topology()
	if got := CountServers(topo); got != 64 {
		t.Errorf("CountServers = %d, want 64", got)
	}
	if got := CountSwitches(topo); got != 9 {
		t.Errorf("CountSwitches = %d, want 9", got)
	}
	topo10 := figure10Topology()
	if got := CountServers(topo10); got != 1024 {
		t.Errorf("CountServers = %d, want 1024", got)
	}
	if got := CountSwitches(topo10); got != 37 {
		t.Errorf("CountSwitches = %d, want 37 (32 ToR + 4 agg + 1 root)", got)
	}
}

func TestBuildFarmDedupes(t *testing.T) {
	farm := NewBuildFarm()
	topo := NewSwitchNode("root")
	topo.AddDownlinks(
		NewServerNode("a", QuadCore),
		NewServerNode("b", QuadCore),
		NewServerNode("c", SingleCore),
	)
	images, err := farm.BuildAll(topo, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(images) != 2 {
		t.Errorf("built %d images, want 2 distinct types", len(images))
	}
	if farm.Builds != 2 {
		t.Errorf("Builds = %d, want 2", farm.Builds)
	}
	// Rebuilding is a cache hit.
	if _, err := farm.BuildAll(topo, false); err != nil {
		t.Fatal(err)
	}
	if farm.Builds != 2 {
		t.Errorf("rebuild triggered %d total builds, want cached 2", farm.Builds)
	}
	// Supernode images are distinct artifacts.
	img, err := farm.Build(QuadCore, true)
	if err != nil {
		t.Fatal(err)
	}
	if img.AGFI == images[0].AGFI {
		t.Error("supernode image shares AGFI with standard image")
	}
}

func TestDeployFigure4Mapping(t *testing.T) {
	// The paper's Figure 2 mapping: 64 standard nodes need 64 FPGAs = 8x
	// f1.16xlarge, plus one m4.16xlarge for the root switch.
	c, err := Deploy(figure4Topology(), DeployConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Servers) != 64 || len(c.Switches) != 9 {
		t.Fatalf("deployed %d servers, %d switches", len(c.Servers), len(c.Switches))
	}
	if got := c.Deployment.Count("f1.16xlarge"); got != 8 {
		t.Errorf("f1.16xlarge = %d, want 8", got)
	}
	if got := c.Deployment.Count("m4.16xlarge"); got != 1 {
		t.Errorf("m4.16xlarge = %d, want 1", got)
	}
	// Unique MACs and IPs.
	macs := map[uint64]bool{}
	for _, s := range c.Servers {
		if macs[uint64(s.MAC())] {
			t.Errorf("duplicate MAC %v", s.MAC())
		}
		macs[uint64(s.MAC())] = true
	}
	if c.NodeByName("server0") == nil {
		t.Error("auto-named server0 not found")
	}
}

func TestDeployFigure10Supernode(t *testing.T) {
	// Section V-C: 1024 supernode-packed nodes on 32 f1.16xlarge plus 5
	// m4.16xlarge, ~$100/hour spot, ~$440/hour on-demand, $12.8M of
	// FPGAs.
	c, err := Deploy(figure10Topology(), DeployConfig{Supernode: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Deployment.Count("f1.16xlarge"); got != 32 {
		t.Errorf("f1.16xlarge = %d, want 32", got)
	}
	if got := c.Deployment.Count("m4.16xlarge"); got != 5 {
		t.Errorf("m4.16xlarge = %d, want 5", got)
	}
	if got := c.Deployment.FPGAValueUSD(); got != 12_800_000 {
		t.Errorf("FPGA value = %.0f", got)
	}
	spot := c.Deployment.HourlyCost(true)
	if spot < 90 || spot > 110 {
		t.Errorf("spot = $%.2f, want ~$100", spot)
	}
	onDemand := c.Deployment.HourlyCost(false)
	if onDemand < 430 || onDemand > 450 {
		t.Errorf("on-demand = $%.2f, want ~$440", onDemand)
	}
}

func TestPingAcrossDeployedCluster(t *testing.T) {
	// End-to-end: deploy a 2-ToR topology and ping same-rack vs
	// cross-rack; the cross-rack RTT must exceed same-rack by exactly
	// 4 link latencies plus 2 switch crossings (the Table III mechanism).
	root := NewSwitchNode("root")
	for i := 0; i < 2; i++ {
		tor := NewSwitchNode(fmt.Sprintf("tor%d", i))
		root.AddDownlinks(tor)
		for j := 0; j < 2; j++ {
			tor.AddDownlinks(NewServerNode(fmt.Sprintf("n%d%d", i, j), QuadCore))
		}
	}
	const lat = 6400
	c, err := Deploy(root, DeployConfig{LinkLatency: lat})
	if err != nil {
		t.Fatal(err)
	}

	ping := func(from, to string) clock.Cycles {
		src := c.NodeByName(from)
		dst := c.NodeByName(to)
		var res []softstack.PingResult
		src.Ping(c.Runner.Cycle(), dst.IP(), 3, 100*3200, func(r []softstack.PingResult) { res = r })
		ok, err := c.RunUntil(func() bool { return res != nil }, c.Runner.Cycle()+20_000_000)
		if err != nil || !ok {
			t.Fatalf("ping %s->%s did not complete: %v", from, to, err)
		}
		return res[len(res)-1].RTT // last sample: steady state
	}

	same := ping("n00", "n01")
	cross := ping("n00", "n11")
	wantDelta := clock.Cycles(4*lat + 2*10)
	delta := cross - same
	slack := clock.Cycles(200) // frame serialisation slack
	if delta < wantDelta-slack || delta > wantDelta+slack {
		t.Errorf("cross-rack RTT delta = %d cycles, want ~%d", delta, wantDelta)
	}
}

func TestRunForRounds(t *testing.T) {
	root := NewSwitchNode("root")
	root.AddDownlinks(NewServerNode("a", SingleCore), NewServerNode("b", SingleCore))
	c, err := Deploy(root, DeployConfig{LinkLatency: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RunFor(1234); err != nil { // rounds up to 1300
		t.Fatal(err)
	}
	if got := c.Runner.Cycle(); got != 1300 {
		t.Errorf("Cycle = %d, want 1300", got)
	}
	// Sub-batch requests advance a whole batch rather than silently
	// doing nothing.
	if err := c.RunFor(1); err != nil {
		t.Fatal(err)
	}
	if got := c.Runner.Cycle(); got != 1400 {
		t.Errorf("Cycle after RunFor(1) = %d, want 1400", got)
	}
	// Zero and negative cycle counts are caller bugs, not no-ops.
	if err := c.RunFor(0); err == nil {
		t.Error("RunFor(0) succeeded, want error")
	}
	if err := c.RunFor(-5); err == nil {
		t.Error("RunFor(-5) succeeded, want error")
	}
}

func TestRunUntilStopsAtMaxCycles(t *testing.T) {
	root := NewSwitchNode("root")
	root.AddDownlinks(NewServerNode("a", SingleCore), NewServerNode("b", SingleCore))
	c, err := Deploy(root, DeployConfig{LinkLatency: 100})
	if err != nil {
		t.Fatal(err)
	}
	// An unsatisfiable predicate must stop at (not past) the horizon even
	// when the horizon is not a multiple of the 4-batch stride.
	ok, err := c.RunUntil(func() bool { return false }, 500)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("pred reported satisfied")
	}
	if got := c.Runner.Cycle(); got != 500 {
		t.Errorf("Cycle = %d, want exactly 500", got)
	}
}

func TestDeployValidatesTopology(t *testing.T) {
	if _, err := Deploy(NewSwitchNode("empty"), DeployConfig{}); err == nil {
		t.Error("empty topology deployed")
	}
}

// TestSupernodeEquivalence: FAME-5 supernode packing must not change
// target behaviour — ping RTTs are identical to a standard deployment of
// the same topology.
func TestSupernodeEquivalence(t *testing.T) {
	run := func(supernode bool) []clock.Cycles {
		root := NewSwitchNode("root")
		tor := NewSwitchNode("tor0")
		root.AddDownlinks(tor)
		for j := 0; j < 8; j++ {
			tor.AddDownlinks(NewServerNode(fmt.Sprintf("n%d", j), QuadCore))
		}
		c, err := Deploy(root, DeployConfig{LinkLatency: 3200, Supernode: supernode, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		var res []softstack.PingResult
		c.NodeByName("n0").Ping(0, c.NodeByName("n7").IP(), 4, 50*3200,
			func(r []softstack.PingResult) { res = r })
		ok, err := c.RunUntil(func() bool { return res != nil }, 20_000_000)
		if err != nil || !ok {
			t.Fatalf("ping failed: %v", err)
		}
		var rtts []clock.Cycles
		for _, p := range res {
			rtts = append(rtts, p.RTT)
		}
		return rtts
	}
	std := run(false)
	super := run(true)
	for i := range std {
		if std[i] != super[i] {
			t.Fatalf("supernode RTTs differ from standard: %v vs %v", super, std)
		}
	}
}

func TestWorkloadRegistry(t *testing.T) {
	names := Workloads()
	if len(names) < 2 {
		t.Fatalf("workloads = %v", names)
	}
	root := NewSwitchNode("root")
	tor := NewSwitchNode("tor0")
	root.AddDownlinks(tor)
	for j := 0; j < 3; j++ {
		tor.AddDownlinks(NewServerNode(fmt.Sprintf("w%d", j), QuadCore))
	}
	c, err := Deploy(root, DeployConfig{LinkLatency: 3200})
	if err != nil {
		t.Fatal(err)
	}
	report, err := RunWorkload("ping-all", c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "w1") || !strings.Contains(report, "w2") {
		t.Errorf("ping-all report missing peers:\n%s", report)
	}
	report, err = RunWorkload("net-stats", c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report, "switch") {
		t.Errorf("net-stats report missing switches:\n%s", report)
	}
	if _, err := RunWorkload("nope", c); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestSmallDeployUsesF12xlarge(t *testing.T) {
	root := NewSwitchNode("root")
	root.AddDownlinks(NewServerNode("a", QuadCore), NewServerNode("b", QuadCore))
	c, err := Deploy(root, DeployConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Deployment.Count("f1.2xlarge"); got != 2 {
		t.Errorf("f1.2xlarge = %d, want 2 (one FPGA per node)", got)
	}
	if got := c.Deployment.Count("f1.16xlarge"); got != 0 {
		t.Errorf("f1.16xlarge = %d, want 0 for a 2-node sim", got)
	}
	// Supernode packing fits both nodes on one FPGA.
	c2, err := Deploy(root, DeployConfig{Supernode: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.Deployment.Count("f1.2xlarge"); got != 1 {
		t.Errorf("supernode f1.2xlarge = %d, want 1", got)
	}
}
