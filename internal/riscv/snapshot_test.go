package riscv

import (
	"testing"

	"repro/internal/snapshot"
	"repro/internal/snapshot/snaptest"
)

func TestCPUSnapshotConformance(t *testing.T) {
	// A non-terminating counting loop leaves the CPU mid-flight with
	// non-trivial register, PC and counter state.
	a := NewAsm()
	a.LI(A0, 0)
	a.LI(T0, 1)
	a.Label("loop")
	a.ADD(A0, A0, T0)
	a.ADDI(T0, T0, 1)
	a.J("loop")

	bus := newFlatBus(1 << 16)
	bus.loadProgram(a.MustAssemble())
	cpu := New(bus, 3, 0)
	for i := 0; i < 100; i++ {
		cpu.Cycle += cpu.Step()
	}
	snaptest.RoundTrip(t, cpu, func() snapshot.Snapshotter {
		fb := newFlatBus(1 << 16)
		fb.loadProgram(a.MustAssemble())
		return New(fb, 3, 0)
	})
}

func TestCPURestoreResumesExecution(t *testing.T) {
	// Checkpoint mid-loop, restore into a fresh CPU over an identical bus,
	// run both sides further: architectural state must stay identical.
	a := NewAsm()
	a.LI(A0, 0)
	a.LI(T0, 1)
	a.Label("loop")
	a.ADD(A0, A0, T0)
	a.ADDI(T0, T0, 1)
	a.J("loop")

	mk := func() *CPU {
		bus := newFlatBus(1 << 16)
		bus.loadProgram(a.MustAssemble())
		return New(bus, 0, 0)
	}
	orig := mk()
	for i := 0; i < 57; i++ {
		orig.Cycle += orig.Step()
	}
	data := snaptest.Save(t, orig)
	clone := mk()
	snaptest.Restore(t, clone, data)
	for i := 0; i < 91; i++ {
		orig.Cycle += orig.Step()
		clone.Cycle += clone.Step()
	}
	if orig.PC != clone.PC || orig.X != clone.X || orig.Cycle != clone.Cycle {
		t.Errorf("diverged after restore: pc %#x vs %#x, cycle %d vs %d", orig.PC, clone.PC, orig.Cycle, clone.Cycle)
	}
}
