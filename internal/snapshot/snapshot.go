// Package snapshot defines the versioned, self-describing binary
// checkpoint format used to save and restore whole-cluster simulations.
//
// Determinism is the point: the simulation guarantees that Run and
// RunParallel produce bit-identical token streams, so a checkpoint taken
// at target cycle N and restored later must replay the exact same future.
// The format is built to make violations loud — a restored cluster that
// re-saves to different bytes, or a stream that fails a CRC, is a bug,
// not a tolerance.
//
// Layout (all fixed-width integers little-endian):
//
//	magic     "FSNP"
//	version   u16       format version (currently 1)
//	reserved  u16
//	topoHash  u64       structural identity of the deployed topology
//	cycle     u64       target cycle the checkpoint was taken at
//	step      u64       runner batch step in cycles
//	section*            any number of sections
//	trailer   0x5A      end-of-snapshot marker (truncation detector)
//
// Each section:
//
//	0xA5      section marker
//	name      uvarint length + bytes (component identity, e.g. "node/s0")
//	length    uvarint payload bytes
//	payload   [length]byte
//	crc       u32 IEEE CRC-32 of payload
//
// Within a payload, components write primitives through Writer and read
// them back through Reader. Both use a sticky error: the first failure
// latches and every later call is a cheap no-op, so Save/Restore code can
// run straight-line and check the error once. The Reader never panics on
// malformed input — every length is capped and every access bounds-checked
// — which is what the FuzzReader fuzz target enforces.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Magic identifies a snapshot stream.
const Magic = "FSNP"

// Version is the current format version.
const Version = 1

const (
	sectionMarker byte = 0xA5
	trailerMarker byte = 0x5A

	// maxNameLen bounds section and component-mark names.
	maxNameLen = 256
	// maxSectionBytes bounds one section payload (a full blade with a
	// dirty memory image fits comfortably; a corrupted length field does
	// not get to allocate unbounded memory because payloads are read
	// incrementally).
	maxSectionBytes = 1 << 30
)

// ErrFormat tags malformed-stream errors (wrong magic, bad marker,
// truncation, CRC mismatch). errors.Is(err, ErrFormat) matches them all.
var ErrFormat = errors.New("snapshot: malformed stream")

// ErrVersion tags version mismatches.
var ErrVersion = errors.New("snapshot: unsupported version")

// Header carries the stream-level identity of a checkpoint.
type Header struct {
	// TopologyHash is manager.TopologyHash of the deployed topology; a
	// restore into a differently-shaped cluster is refused up front.
	TopologyHash uint64
	// Cycle is the target cycle the checkpoint was taken at.
	Cycle uint64
	// Step is the runner batch step in cycles.
	Step uint64
}

// Snapshotter is implemented by every stateful simulation layer: the CPU
// register file, caches, DRAM, the NIC, switch models, modeled-OS nodes
// and the token runner itself. Save must be read-only (checkpointing a
// live simulation must not perturb it) and deterministic: saving the same
// state twice yields identical bytes (maps are serialised in sorted key
// order). Restore must validate what it reads and return an error — never
// panic — on malformed or mismatched input.
type Snapshotter interface {
	Save(w *Writer) error
	Restore(r *Reader) error
}

// --- Writer ---

// Writer serialises a snapshot stream. Create with NewWriter, open a
// section per component with Section, write primitives, and Close.
// Primitive methods latch the first error; check Err (or the error from
// Close) once at the end.
type Writer struct {
	dst      io.Writer
	buf      bytes.Buffer // current section payload
	name     string
	open     bool
	closed   bool
	err      error
	sections int
}

// NewWriter writes the stream header and returns a Writer.
func NewWriter(dst io.Writer, h Header) (*Writer, error) {
	w := &Writer{dst: dst}
	var hdr [4 + 2 + 2 + 8 + 8 + 8]byte
	copy(hdr[0:4], Magic)
	binary.LittleEndian.PutUint16(hdr[4:6], Version)
	binary.LittleEndian.PutUint64(hdr[8:16], h.TopologyHash)
	binary.LittleEndian.PutUint64(hdr[16:24], h.Cycle)
	binary.LittleEndian.PutUint64(hdr[24:32], h.Step)
	if _, err := dst.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("snapshot: write header: %w", err)
	}
	return w, nil
}

// Err returns the first error latched by a primitive write.
func (w *Writer) Err() error { return w.err }

func (w *Writer) setErr(err error) {
	if w.err == nil && err != nil {
		w.err = err
	}
}

// Section flushes the previous section (if any) and starts a new one.
func (w *Writer) Section(name string) {
	if w.err != nil {
		return
	}
	if len(name) == 0 || len(name) > maxNameLen {
		w.setErr(fmt.Errorf("snapshot: section name %q out of range", name))
		return
	}
	w.flushSection()
	w.name = name
	w.open = true
}

func (w *Writer) flushSection() {
	if !w.open || w.err != nil {
		return
	}
	payload := w.buf.Bytes()
	var scratch []byte
	scratch = append(scratch, sectionMarker)
	scratch = binary.AppendUvarint(scratch, uint64(len(w.name)))
	scratch = append(scratch, w.name...)
	scratch = binary.AppendUvarint(scratch, uint64(len(payload)))
	if _, err := w.dst.Write(scratch); err != nil {
		w.setErr(fmt.Errorf("snapshot: write section %q: %w", w.name, err))
		return
	}
	if _, err := w.dst.Write(payload); err != nil {
		w.setErr(fmt.Errorf("snapshot: write section %q: %w", w.name, err))
		return
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	if _, err := w.dst.Write(crc[:]); err != nil {
		w.setErr(fmt.Errorf("snapshot: write section %q: %w", w.name, err))
		return
	}
	w.buf.Reset()
	w.open = false
	w.sections++
}

// Close flushes the final section and writes the end-of-snapshot trailer.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.flushSection()
	if w.err == nil {
		if _, err := w.dst.Write([]byte{trailerMarker}); err != nil {
			w.setErr(fmt.Errorf("snapshot: write trailer: %w", err))
		}
	}
	w.closed = true
	return w.err
}

func (w *Writer) need() bool {
	if w.err != nil {
		return false
	}
	if !w.open {
		w.setErr(errors.New("snapshot: primitive write outside a section"))
		return false
	}
	return true
}

// U64 writes a fixed-width 64-bit value.
func (w *Writer) U64(v uint64) {
	if !w.need() {
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.buf.Write(b[:])
}

// I64 writes a signed 64-bit value.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F64 writes a float64 bit-exactly.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool writes one byte, 0 or 1.
func (w *Writer) Bool(v bool) {
	if !w.need() {
		return
	}
	b := byte(0)
	if v {
		b = 1
	}
	w.buf.WriteByte(b)
}

// Uvarint writes a variable-length unsigned value (counts, small fields).
func (w *Writer) Uvarint(v uint64) {
	if !w.need() {
		return
	}
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], v)
	w.buf.Write(b[:n])
}

// Bytes writes a length-prefixed byte slice.
func (w *Writer) Bytes(p []byte) {
	w.Uvarint(uint64(len(p)))
	if w.err == nil && w.open {
		w.buf.Write(p)
	}
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	if w.err == nil && w.open {
		w.buf.WriteString(s)
	}
}

// Begin marks a component boundary inside a section: a name plus a
// per-component schema version. Reader.Begin verifies both, which turns
// misaligned or stale streams into descriptive errors instead of silently
// misread state.
func (w *Writer) Begin(name string, version uint64) {
	w.String(name)
	w.Uvarint(version)
}

// --- Reader ---

// Reader deserialises a snapshot stream section by section. Next advances
// to the following section; primitives consume the current section's
// payload. Like Writer, the first failure latches: primitives return zero
// values afterwards and Err reports the cause.
type Reader struct {
	src     io.Reader
	hdr     Header
	payload []byte
	pos     int
	name    string
	err     error
	done    bool
}

// NewReader validates the stream header and returns a Reader positioned
// before the first section.
func NewReader(src io.Reader) (*Reader, Header, error) {
	var hdr [32]byte
	if _, err := io.ReadFull(src, hdr[:]); err != nil {
		return nil, Header{}, fmt.Errorf("%w: short header: %v", ErrFormat, err)
	}
	if string(hdr[0:4]) != Magic {
		return nil, Header{}, fmt.Errorf("%w: bad magic %q", ErrFormat, hdr[0:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != Version {
		return nil, Header{}, fmt.Errorf("%w: stream version %d, this build reads %d", ErrVersion, v, Version)
	}
	h := Header{
		TopologyHash: binary.LittleEndian.Uint64(hdr[8:16]),
		Cycle:        binary.LittleEndian.Uint64(hdr[16:24]),
		Step:         binary.LittleEndian.Uint64(hdr[24:32]),
	}
	return &Reader{src: src, hdr: h}, h, nil
}

// Header returns the stream header read by NewReader.
func (r *Reader) Header() Header { return r.hdr }

// Err returns the first error latched by a primitive read.
func (r *Reader) Err() error { return r.err }

func (r *Reader) setErr(err error) {
	if r.err == nil && err != nil {
		r.err = err
	}
}

// SectionName returns the name of the current section.
func (r *Reader) SectionName() string { return r.name }

// Next advances to the next section and returns its name. It returns
// io.EOF at the end-of-snapshot trailer; a stream that ends without the
// trailer is reported as truncated. Any unread remainder of the previous
// section is discarded.
func (r *Reader) Next() (string, error) {
	if r.err != nil {
		return "", r.err
	}
	if r.done {
		return "", io.EOF
	}
	var marker [1]byte
	if _, err := io.ReadFull(r.src, marker[:]); err != nil {
		r.setErr(fmt.Errorf("%w: truncated before trailer: %v", ErrFormat, err))
		return "", r.err
	}
	switch marker[0] {
	case trailerMarker:
		r.done = true
		r.payload, r.pos, r.name = nil, 0, ""
		return "", io.EOF
	case sectionMarker:
	default:
		r.setErr(fmt.Errorf("%w: bad section marker %#x", ErrFormat, marker[0]))
		return "", r.err
	}
	br := byteReaderFor(r.src)
	nameLen, err := binary.ReadUvarint(br)
	if err != nil || nameLen == 0 || nameLen > maxNameLen {
		r.setErr(fmt.Errorf("%w: bad section name length", ErrFormat))
		return "", r.err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r.src, name); err != nil {
		r.setErr(fmt.Errorf("%w: truncated section name: %v", ErrFormat, err))
		return "", r.err
	}
	plen, err := binary.ReadUvarint(br)
	if err != nil || plen > maxSectionBytes {
		r.setErr(fmt.Errorf("%w: bad section length for %q", ErrFormat, name))
		return "", r.err
	}
	// Read the payload incrementally: a corrupted length on a short
	// stream fails after copying what is actually there, instead of
	// pre-allocating the claimed size.
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, r.src, int64(plen)); err != nil {
		r.setErr(fmt.Errorf("%w: truncated payload of %q: %v", ErrFormat, name, err))
		return "", r.err
	}
	var crc [4]byte
	if _, err := io.ReadFull(r.src, crc[:]); err != nil {
		r.setErr(fmt.Errorf("%w: truncated CRC of %q: %v", ErrFormat, name, err))
		return "", r.err
	}
	if got, want := crc32.ChecksumIEEE(buf.Bytes()), binary.LittleEndian.Uint32(crc[:]); got != want {
		r.setErr(fmt.Errorf("%w: CRC mismatch in section %q", ErrFormat, name))
		return "", r.err
	}
	r.payload = buf.Bytes()
	r.pos = 0
	r.name = string(name)
	return r.name, nil
}

// byteReaderFor adapts src for binary.ReadUvarint without buffering ahead
// (a bufio.Reader would swallow bytes the section reader needs).
func byteReaderFor(src io.Reader) io.ByteReader {
	if br, ok := src.(io.ByteReader); ok {
		return br
	}
	return oneByteReader{src}
}

type oneByteReader struct{ r io.Reader }

func (o oneByteReader) ReadByte() (byte, error) {
	var b [1]byte
	_, err := io.ReadFull(o.r, b[:])
	return b[0], err
}

// Remaining reports the unread bytes left in the current section.
func (r *Reader) Remaining() int { return len(r.payload) - r.pos }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.Remaining() < n {
		r.setErr(fmt.Errorf("%w: section %q exhausted (need %d bytes, have %d)", ErrFormat, r.name, n, r.Remaining()))
		return nil
	}
	p := r.payload[r.pos : r.pos+n]
	r.pos += n
	return p
}

// U64 reads a fixed-width 64-bit value.
func (r *Reader) U64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// I64 reads a signed 64-bit value.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads a float64 bit-exactly.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads one byte, rejecting values other than 0 and 1.
func (r *Reader) Bool() bool {
	p := r.take(1)
	if p == nil {
		return false
	}
	switch p[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		r.setErr(fmt.Errorf("%w: bad bool byte %#x in section %q", ErrFormat, p[0], r.name))
		return false
	}
}

// Uvarint reads a variable-length unsigned value.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.payload[r.pos:])
	if n <= 0 {
		r.setErr(fmt.Errorf("%w: bad varint in section %q", ErrFormat, r.name))
		return 0
	}
	r.pos += n
	return v
}

// Count reads a Uvarint and validates it as an element count bounded by
// max, the guard every repeated-field reader needs against corrupted or
// hostile streams.
func (r *Reader) Count(max int) int {
	v := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if max >= 0 && v > uint64(max) {
		r.setErr(fmt.Errorf("%w: count %d exceeds limit %d in section %q", ErrFormat, v, max, r.name))
		return 0
	}
	return int(v)
}

// Bytes reads a length-prefixed byte slice of at most max bytes. The
// returned slice is a fresh copy.
func (r *Reader) Bytes(max int) []byte {
	n := r.Count(max)
	p := r.take(n)
	if p == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, p)
	return out
}

// String reads a length-prefixed string of at most max bytes.
func (r *Reader) String(max int) string {
	n := r.Count(max)
	p := r.take(n)
	if p == nil {
		return ""
	}
	return string(p)
}

// Begin verifies a component boundary written by Writer.Begin: the name
// and schema version must match exactly.
func (r *Reader) Begin(name string, version uint64) error {
	got := r.String(maxNameLen)
	ver := r.Uvarint()
	if r.err != nil {
		return r.err
	}
	if got != name {
		r.setErr(fmt.Errorf("%w: expected component %q, found %q in section %q", ErrFormat, name, got, r.name))
		return r.err
	}
	if ver != version {
		r.setErr(fmt.Errorf("%w: component %q version %d, this build reads %d", ErrVersion, name, ver, version))
		return r.err
	}
	return nil
}

// --- Inspection ---

// SectionInfo describes one section for `firesim snap inspect`.
type SectionInfo struct {
	// Name is the section (component) name.
	Name string
	// Bytes is the payload size.
	Bytes int
}

// Inspect reads the stream's header and section table without
// interpreting any payload. It validates framing, CRCs and the trailer,
// so a clean Inspect proves the stream is structurally intact.
func Inspect(src io.Reader) (Header, []SectionInfo, error) {
	r, h, err := NewReader(src)
	if err != nil {
		return Header{}, nil, err
	}
	var infos []SectionInfo
	for {
		name, err := r.Next()
		if err == io.EOF {
			return h, infos, nil
		}
		if err != nil {
			return h, infos, err
		}
		infos = append(infos, SectionInfo{Name: name, Bytes: r.Remaining()})
	}
}
