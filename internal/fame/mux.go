package fame

import (
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/token"
)

// This file implements the FAME-style many-nodes-per-worker multiplexing
// mode of the parallel scheduler (SetMultiplexed). It is the scheduler-
// level analogue of the FAME-5 Multiplex endpoint wrapper: where Multiplex
// hosts several target models on one simulated physical pipeline, this
// mode hosts a worker's whole endpoint group on one *scheduling unit* —
// one fused plan with a single flattened port-binding table, ticked once
// per round.
//
// Why it exists: the default pool mode compiles one epPlan per endpoint,
// so a 1024-node datacenter (~1100 endpoints) carries ~1100 schedule
// entries — ~1100 heap objects, each with five slice headers, walked
// through two levels of indirection every round. In multiplexed mode the
// same topology on 8 workers compiles into 8 muxPlans: per worker, ONE
// contiguous portBind array, ONE batch arena, members addressed by port
// span (lo, hi) offsets. The paper's host-multithreading trade-off
// applies unchanged: host cost of a unit tick grows with the member
// count, but the schedulable-unit population stays bounded by the worker
// count instead of the node count — which is what lets
// hostplatform.PackUnits-style packing (shared with the distributed
// reshard path via partition()) treat worker assignment and process
// assignment as the same problem.
//
// Determinism: a unit ticks its members in global registration order and
// performs the identical per-member pop → filter → tick → filter → push
// sequence as the pool loop and the sequential scheduler, so token
// streams, injector windows and metrics are bit-identical for every
// worker count (TestMuxWorkerSweepEquivalence, TestMuxCheckpointMidRun,
// TestMuxMetricsEquivalence — all also under fault injection).

// SetMultiplexed selects (or, with false, deselects) the
// many-nodes-per-worker scheduling mode for subsequent RunParallel calls.
// Like SetWorkers it may be called between runs; mid-run changes are not
// supported. Host-side tuning only: simulated behaviour is bit-identical
// in both modes.
func (r *Runner) SetMultiplexed(on bool) { r.multiplexed = on }

// Multiplexed reports whether the many-nodes-per-worker mode is selected.
func (r *Runner) Multiplexed() bool { return r.multiplexed }

// muxMember locates one endpoint inside a fused unit: its global index
// (for metrics arrays), and the span [lo, hi) of the unit's flat port
// arrays it owns.
type muxMember struct {
	idx    int
	ep     Endpoint
	name   string
	eager  EagerStarter // non-nil when ep wants the per-round prepass
	lo, hi int
}

// muxPlan is one worker's fused scheduling unit: every member's port
// bindings and batch scratch live in shared contiguous arrays, addressed
// by the member's span.
type muxPlan struct {
	members []muxMember
	in, out []portBind
	ins     []*token.Batch
	outs    []*token.Batch
	scratch []*token.Batch // non-nil per unconnected output port
	empty   *token.Batch   // read-only input for unconnected input ports
}

// buildMuxPlans fuses each worker's per-endpoint plans into one unit.
// The pool-mode plans are the single source of truth for port binding
// resolution, so the two modes cannot disagree about which links cross
// workers.
func buildMuxPlans(plans [][]*epPlan) []*muxPlan {
	units := make([]*muxPlan, len(plans))
	for w, eps := range plans {
		ports := 0
		for _, pl := range eps {
			ports += len(pl.in)
		}
		u := &muxPlan{
			members: make([]muxMember, 0, len(eps)),
			in:      make([]portBind, 0, ports),
			out:     make([]portBind, 0, ports),
			ins:     make([]*token.Batch, ports),
			outs:    make([]*token.Batch, ports),
			scratch: make([]*token.Batch, 0, ports),
		}
		for _, pl := range eps {
			lo := len(u.in)
			u.in = append(u.in, pl.in...)
			u.out = append(u.out, pl.out...)
			u.scratch = append(u.scratch, pl.scratch...)
			u.members = append(u.members, muxMember{
				idx: pl.idx, ep: pl.ep, name: pl.name, eager: pl.eager,
				lo: lo, hi: len(u.in),
			})
			if u.empty == nil {
				u.empty = pl.empty
			}
		}
		units[w] = u
	}
	return units
}

// muxLoop runs the multiplexed scheduling mode: one goroutine per unit
// (== per worker), each ticking its fused member table once per round.
// Panic containment, heartbeat cadence, tick-timing sample rounds and
// token accounting all mirror poolLoop exactly; only the schedule
// representation differs. Returns the round-loop wall time and the
// contained panic, if any (the caller drains rings and poisons the
// runner).
func (r *Runner) muxLoop(units []*muxPlan, hbWorker, rounds, n int, m *runnerMetrics) (time.Duration, *EndpointPanicError) {
	base := r.cycle
	start := time.Now()

	var abort atomic.Bool
	var panicMu sync.Mutex
	var panicErr *EndpointPanicError

	var wg sync.WaitGroup
	for w := range units {
		wg.Add(1)
		go func(w int, u *muxPlan) {
			defer wg.Done()
			curName := "<worker>"
			curWin := base
			defer func() {
				if v := recover(); v != nil {
					abort.Store(true)
					panicMu.Lock()
					if panicErr == nil {
						panicErr = &EndpointPanicError{Endpoint: curName, Cycle: curWin, Value: v, Stack: debug.Stack()}
					}
					panicMu.Unlock()
				}
			}()
			heartbeat := hbWorker == w
			var hbRounds, accToks uint64
			// Per-member token counts batch locally and flush on sampled
			// rounds and at run end, mirroring the other schedulers.
			var epAcc []uint64
			if m != nil {
				epAcc = make([]uint64, len(u.members))
			}
			// Eager members of this unit: their span inputs pop early each
			// round so StartBatch overlaps the rest of the round.
			var eagers []*muxMember
			for mi := range u.members {
				if u.members[mi].eager != nil {
					eagers = append(eagers, &u.members[mi])
				}
			}
			for round := 0; round < rounds; round++ {
				if abort.Load() {
					return
				}
				winStart := base + clock.Cycles(round)*r.step
				curWin = winStart
				for _, mem := range eagers {
					curName = mem.name
					for p := mem.lo; p < mem.hi; p++ {
						switch bind := u.in[p]; {
						case bind.rp != nil:
							b, ok := popWait(bind.rp.data, &abort)
							if !ok {
								return
							}
							u.ins[p] = b
						case bind.ch != nil:
							u.ins[p] = bind.ch.pop()
						default:
							u.ins[p] = u.empty
						}
					}
					if inj := r.injector; inj != nil {
						for p := mem.lo; p < mem.hi; p++ {
							if u.in[p].connected() {
								inj.FilterInput(mem.name, p-mem.lo, winStart, u.ins[p])
							}
						}
					}
					mem.eager.StartBatch(n, u.ins[mem.lo:mem.hi])
				}
				sampled := m != nil && round&tickSampleMask == 0
				for mi := range u.members {
					mem := &u.members[mi]
					curName = mem.name
					// The member's ports are the span [lo, hi) of the
					// unit's flat arrays; the in/out views handed to
					// TickBatch are subslices of the shared arena.
					for p := mem.lo; p < mem.hi; p++ {
						if mem.eager == nil {
							switch bind := u.in[p]; {
							case bind.rp != nil:
								b, ok := popWait(bind.rp.data, &abort)
								if !ok {
									return
								}
								u.ins[p] = b
							case bind.ch != nil:
								u.ins[p] = bind.ch.pop()
							default:
								u.ins[p] = u.empty
							}
						}
						switch bind := u.out[p]; {
						case bind.rp != nil:
							if b, ok := bind.rp.free.pop(); ok {
								b.Reset(n)
								u.outs[p] = b
							} else {
								if m != nil {
									m.poolAllocs.Inc()
								}
								u.outs[p] = token.NewBatch(n)
							}
						case bind.ch != nil:
							u.outs[p] = bind.ch.take(n)
						default:
							u.scratch[p].Reset(n)
							u.outs[p] = u.scratch[p]
						}
					}
					if inj := r.injector; inj != nil && mem.eager == nil {
						for p := mem.lo; p < mem.hi; p++ {
							if u.in[p].connected() {
								inj.FilterInput(mem.name, p-mem.lo, winStart, u.ins[p])
							}
						}
					}
					var t0 time.Time
					if sampled {
						t0 = time.Now()
					}
					mem.ep.TickBatch(n, u.ins[mem.lo:mem.hi], u.outs[mem.lo:mem.hi])
					if sampled {
						m.tick[mem.idx].Observe(uint64(time.Since(t0).Nanoseconds()))
					}
					if m != nil {
						var toks uint64
						for p := mem.lo; p < mem.hi; p++ {
							if u.out[p].connected() {
								toks += uint64(len(u.outs[p].Slots))
							}
						}
						if toks > 0 {
							epAcc[mi] += toks
							accToks += toks
						}
					}
					if inj := r.injector; inj != nil {
						for p := mem.lo; p < mem.hi; p++ {
							if u.out[p].connected() {
								inj.FilterOutput(mem.name, p-mem.lo, winStart, u.outs[p])
							}
						}
					}
					for p := mem.lo; p < mem.hi; p++ {
						switch bind := u.out[p]; {
						case bind.rp != nil:
							if !pushWait(bind.rp.data, u.outs[p], &abort) {
								return
							}
						case bind.ch != nil:
							bind.ch.push(u.outs[p])
						}
						switch bind := u.in[p]; {
						case bind.rp != nil:
							if !bind.rp.free.push(u.ins[p]) {
								// Unreachable with the depth+3+slack sizing;
								// tripwire asserted zero by tests.
								if m != nil {
									m.poolDrops.Inc()
								}
							}
						case bind.ch != nil:
							bind.ch.recycle(u.ins[p])
						}
					}
				}
				if m != nil {
					if sampled {
						if accToks > 0 {
							m.tokens.Add(accToks)
							accToks = 0
						}
						for mi, t := range epAcc {
							if t > 0 {
								m.epTokens[u.members[mi].idx].Add(t)
								epAcc[mi] = 0
							}
						}
					}
					if heartbeat {
						hbRounds++
						if sampled {
							m.rounds.Add(hbRounds)
							m.cycles.Add(hbRounds * uint64(r.step))
							hbRounds = 0
							m.cycleGauge.Set(int64(winStart + r.step))
						}
					}
				}
			}
			if m != nil {
				if hbRounds > 0 {
					m.rounds.Add(hbRounds)
					m.cycles.Add(hbRounds * uint64(r.step))
				}
				if accToks > 0 {
					m.tokens.Add(accToks)
				}
				for mi, t := range epAcc {
					if t > 0 {
						m.epTokens[u.members[mi].idx].Add(t)
					}
				}
			}
		}(w, units[w])
	}
	wg.Wait()
	wall := time.Since(start)
	return wall, panicErr
}
