// Package hostplatform models the public-cloud host platform FireSim runs
// on: EC2 F1 FPGA instances and the m4.16xlarge switch-model hosts, FPGA
// resource budgets (including the supernode packing of Section III-A5),
// and the spot/on-demand cost arithmetic of Section V-C.
//
// SUBSTITUTION NOTE: this repository cannot rent FPGAs, so these models
// carry the deployment-planning half of FireSim — how many instances a
// topology needs, what it costs per hour, and how full the FPGAs are —
// while the token-level behaviour runs in the in-process simulator.
package hostplatform

import (
	"fmt"

	"repro/internal/clock"
)

// InstanceType describes one EC2 instance offering.
type InstanceType struct {
	// Name is the EC2 API name.
	Name string
	// VCPUs and DRAMGiB describe the host instance.
	VCPUs   int
	DRAMGiB int
	// NetworkGbps is the host networking bandwidth.
	NetworkGbps float64
	// FPGAs is the number of attached Xilinx Virtex UltraScale+ FPGAs.
	FPGAs int
	// OnDemandHourly and SpotHourly are USD prices (2018-era, matching the
	// paper's cost arithmetic).
	OnDemandHourly float64
	SpotHourly     float64
}

// The instance types used by FireSim (Section II).
var (
	F1_2XLarge = InstanceType{
		Name: "f1.2xlarge", VCPUs: 8, DRAMGiB: 122, NetworkGbps: 10, FPGAs: 1,
		OnDemandHourly: 1.65, SpotHourly: 0.55,
	}
	F1_16XLarge = InstanceType{
		Name: "f1.16xlarge", VCPUs: 64, DRAMGiB: 976, NetworkGbps: 25, FPGAs: 8,
		OnDemandHourly: 13.20, SpotHourly: 3.00,
	}
	M4_16XLarge = InstanceType{
		Name: "m4.16xlarge", VCPUs: 64, DRAMGiB: 256, NetworkGbps: 25, FPGAs: 0,
		OnDemandHourly: 3.20, SpotHourly: 0.80,
	}
)

// FPGARetailUSD is the publicly listed retail price of one UltraScale+
// FPGA, used for the paper's "$12.8M worth of FPGAs" headline.
const FPGARetailUSD = 50_000

// FPGADRAMChannels is the number of DRAM channels per F1 FPGA; each
// simulated node consumes one, which is what makes 4-node supernode
// packing natural.
const FPGADRAMChannels = 4

// FPGADRAMGiB is the DRAM on each FPGA card (64 GiB across 4 channels).
const FPGADRAMGiB = 64

// Utilization describes FPGA LUT occupancy for a given packing, matching
// the percentages reported in Section III-A5.
type Utilization struct {
	// NodesPerFPGA is the packing factor (1 = standard, 4 = supernode).
	NodesPerFPGA int
	// BladePct is LUT share consumed by the simulated server blades.
	BladePct float64
	// InfraPct is the shell + simulation infrastructure share.
	InfraPct float64
}

// LUT shares from the paper: a single blade design uses 32.6% of the
// FPGA's LUTs, of which 14.4 points are the custom server-blade RTL; the
// remaining 18.2 points are the AWS shell and simulation infrastructure.
const (
	bladeLUTPct = 14.4
	infraLUTPct = 32.6 - bladeLUTPct
)

// UtilizationFor returns the LUT budget for packing n nodes per FPGA.
// n=1 reproduces the paper's 32.6% total; n=4 (supernode) reproduces
// ~57.7% of blade logic and ~76% total.
func UtilizationFor(n int) (Utilization, error) {
	if n < 1 || n > FPGADRAMChannels {
		return Utilization{}, fmt.Errorf("hostplatform: %d nodes per FPGA exceeds the %d DRAM channels", n, FPGADRAMChannels)
	}
	u := Utilization{
		NodesPerFPGA: n,
		BladePct:     bladeLUTPct * float64(n),
		InfraPct:     infraLUTPct,
	}
	if u.TotalPct() > 100 {
		return Utilization{}, fmt.Errorf("hostplatform: packing %d nodes needs %.1f%% of LUTs", n, u.TotalPct())
	}
	return u, nil
}

// TotalPct is the total LUT occupancy.
func (u Utilization) TotalPct() float64 { return u.BladePct + u.InfraPct }

// Deployment is a bill of instances for a simulation.
type Deployment struct {
	counts map[string]int
	types  map[string]InstanceType
}

// NewDeployment returns an empty deployment.
func NewDeployment() *Deployment {
	return &Deployment{counts: make(map[string]int), types: make(map[string]InstanceType)}
}

// Add includes n instances of the given type.
func (d *Deployment) Add(t InstanceType, n int) {
	d.counts[t.Name] += n
	d.types[t.Name] = t
}

// Count reports how many instances of the named type are deployed.
func (d *Deployment) Count(name string) int { return d.counts[name] }

// Instances reports the total instance count.
func (d *Deployment) Instances() int {
	total := 0
	for _, n := range d.counts {
		total += n
	}
	return total
}

// FPGAs reports the total FPGA count.
func (d *Deployment) FPGAs() int {
	total := 0
	for name, n := range d.counts {
		total += n * d.types[name].FPGAs
	}
	return total
}

// HourlyCost returns the USD per simulation hour, spot or on-demand —
// the paper's "~$100 per simulation hour" (spot) vs "~$440" (on-demand)
// for the 1024-node datacenter.
func (d *Deployment) HourlyCost(spot bool) float64 {
	var total float64
	for name, n := range d.counts {
		t := d.types[name]
		if spot {
			total += float64(n) * t.SpotHourly
		} else {
			total += float64(n) * t.OnDemandHourly
		}
	}
	return total
}

// FPGAValueUSD returns the retail value of the harnessed FPGAs — the
// paper's "$12.8M worth of FPGAs".
func (d *Deployment) FPGAValueUSD() float64 {
	return float64(d.FPGAs()) * FPGARetailUSD
}

// --- projected EC2 simulation-rate model ---

// RateModel projects the simulation rate the paper's EC2 deployment
// achieves for a given scale and link latency (batch size). It captures
// the structure of Figures 8 and 9: per-round transport latencies are
// fixed costs amortised over one link latency's worth of target cycles,
// so rate falls with scale (more hosts to synchronise) and rises with
// link latency (bigger batches).
type RateModel struct {
	// FPGAClock is the hard ceiling: the FAME-1 design's FPGA clock.
	FPGAClock clock.Hz
	// PCIeRoundTrip is the per-round PCIe/EDMA cost.
	PCIeRoundTrip float64 // seconds
	// HostEthRoundTrip is the per-round host Ethernet cost paid once the
	// simulation spans multiple instances.
	HostEthRoundTrip float64
	// PerNode is the per-simulated-node host processing cost per round
	// (token movement plus switch ingress/egress work).
	PerNode float64
}

// DefaultRateModel is calibrated so the paper's headline operating point
// (1024 supernode-packed nodes, 2 us / 200 Gbit/s network) lands at
// ~3.4 MHz, inside the "less than 1,000x slowdown" envelope.
func DefaultRateModel() RateModel {
	return RateModel{
		FPGAClock:        90 * clock.MHz,
		PCIeRoundTrip:    15e-6,
		HostEthRoundTrip: 40e-6,
		PerNode:          1.78e-6,
	}
}

// Project returns the projected simulation rate for a cluster of the
// given node count, batch size in target cycles (= link latency), and
// whether the deployment spans more than one EC2 instance.
func (m RateModel) Project(nodes int, batchCycles clock.Cycles, multiInstance bool) clock.Hz {
	round := m.PCIeRoundTrip + float64(nodes)*m.PerNode
	if multiInstance {
		round += m.HostEthRoundTrip
	}
	rate := clock.Hz(float64(batchCycles) / round)
	if rate > m.FPGAClock {
		rate = m.FPGAClock
	}
	return rate
}
