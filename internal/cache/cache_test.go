package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/clock"
)

// fakeMem records accesses and returns a fixed latency.
type fakeMem struct {
	latency  clock.Cycles
	accesses []struct {
		addr  uint64
		write bool
	}
}

func (f *fakeMem) AccessLine(now clock.Cycles, addr uint64, write bool) clock.Cycles {
	f.accesses = append(f.accesses, struct {
		addr  uint64
		write bool
	}{addr, write})
	return now + f.latency
}

func newTestCache() (*Cache, *fakeMem) {
	mem := &fakeMem{latency: 100}
	// Tiny cache: 4 sets x 2 ways x 64 B lines = 512 B.
	c := New(Config{Name: "T", SizeBytes: 512, LineBytes: 64, Ways: 2, HitLatency: 2}, mem)
	return c, mem
}

func TestMissThenHit(t *testing.T) {
	c, mem := newTestCache()
	d1 := c.Access(0, 0x40, false)
	if d1 != 2+100 {
		t.Errorf("cold miss done at %d, want 102", d1)
	}
	d2 := c.Access(d1, 0x40, false)
	if d2 != d1+2 {
		t.Errorf("hit done at %d, want %d", d2, d1+2)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
	if len(mem.accesses) != 1 {
		t.Errorf("parent saw %d accesses, want 1 refill", len(mem.accesses))
	}
	if st.HitRate() != 0.5 {
		t.Errorf("HitRate = %g", st.HitRate())
	}
}

func TestSameLineDifferentOffsetsHit(t *testing.T) {
	c, _ := newTestCache()
	c.Access(0, 0x80, false)
	d := c.Access(0, 0xb8, false) // same 64 B line
	if d != 2 {
		t.Errorf("same-line access missed (done at %d)", d)
	}
}

func TestLRUEviction(t *testing.T) {
	c, _ := newTestCache()
	// 4 sets: line addresses with the same set index are 4 lines apart.
	// Set 0 holds lines 0x000, 0x400 (2 ways); a third conflicting line
	// must evict the least recently used (0x000).
	c.Access(0, 0x000, false)
	c.Access(0, 0x400, false)
	c.Access(0, 0x800, false) // evicts 0x000
	if c.Contains(0x000) {
		t.Error("LRU line 0x000 still resident")
	}
	if !c.Contains(0x400) || !c.Contains(0x800) {
		t.Error("recently used lines evicted")
	}
	// Touch 0x400 to make 0x800 the LRU, then conflict again.
	c.Access(0, 0x400, false)
	c.Access(0, 0x000, false) // should evict 0x800
	if c.Contains(0x800) {
		t.Error("LRU line 0x800 still resident after touch-ordering")
	}
	if !c.Contains(0x400) {
		t.Error("MRU line 0x400 evicted")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c, mem := newTestCache()
	c.Access(0, 0x000, true) // allocate dirty
	c.Access(0, 0x400, false)
	mem.accesses = nil
	c.Access(0, 0x800, false) // evicts dirty 0x000: writeback + refill
	if len(mem.accesses) != 2 {
		t.Fatalf("parent saw %d accesses, want writeback+refill", len(mem.accesses))
	}
	if !mem.accesses[0].write || mem.accesses[0].addr != 0x000 {
		t.Errorf("first access = %+v, want writeback of 0x000", mem.accesses[0])
	}
	if mem.accesses[1].write || mem.accesses[1].addr != 0x800 {
		t.Errorf("second access = %+v, want refill of 0x800", mem.accesses[1])
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("Writebacks = %d", c.Stats().Writebacks)
	}
}

func TestCleanEvictionSkipsWriteback(t *testing.T) {
	c, mem := newTestCache()
	c.Access(0, 0x000, false)
	c.Access(0, 0x400, false)
	mem.accesses = nil
	c.Access(0, 0x800, false)
	if len(mem.accesses) != 1 {
		t.Errorf("clean eviction caused %d parent accesses, want 1", len(mem.accesses))
	}
}

func TestFlush(t *testing.T) {
	c, mem := newTestCache()
	c.Access(0, 0x000, true)
	c.Access(0, 0x40, false)
	mem.accesses = nil
	c.Flush(0)
	if len(mem.accesses) != 1 || !mem.accesses[0].write {
		t.Errorf("flush accesses = %+v, want one writeback", mem.accesses)
	}
	if c.Contains(0x000) || c.Contains(0x40) {
		t.Error("lines resident after flush")
	}
}

func TestStacked(t *testing.T) {
	// L1 -> L2 -> mem: an L1 miss that hits L2 must cost less than one
	// that misses both.
	mem := &fakeMem{latency: 100}
	l2 := New(Config{Name: "L2", SizeBytes: 2048, LineBytes: 64, Ways: 4, HitLatency: 12}, mem)
	l1 := New(Config{Name: "L1", SizeBytes: 256, LineBytes: 64, Ways: 2, HitLatency: 1}, l2)

	dColdBoth := l1.Access(0, 0x1000, false) - 0 // misses L1 and L2
	// Evict from L1 by conflicting (L1 has 2 sets): lines 0x1000, 0x1080,
	// 0x1100 share set 0 of L1 but fit easily in L2.
	l1.Access(0, 0x1080, false)
	l1.Access(0, 0x1100, false)
	if l1.Contains(0x1000) {
		t.Fatal("test setup: 0x1000 still in L1")
	}
	start := clock.Cycles(10000)
	dL2Hit := l1.Access(start, 0x1000, false) - start
	if dL2Hit >= dColdBoth {
		t.Errorf("L2 hit (%d cycles) not faster than DRAM fill (%d cycles)", dL2Hit, dColdBoth)
	}
	if dL2Hit != 1+12 {
		t.Errorf("L2 hit latency = %d, want 13", dL2Hit)
	}
}

func TestGeometryValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"zero size":    {SizeBytes: 0, LineBytes: 64, Ways: 2},
		"bad ways":     {SizeBytes: 512, LineBytes: 64, Ways: 3},
		"non-pow2 set": {SizeBytes: 6 * 64, LineBytes: 64, Ways: 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			New(cfg, &fakeMem{})
		}()
	}
}

func TestDefaultGeometries(t *testing.T) {
	// The Table I caches must construct without panicking and have the
	// paper's capacities.
	mem := &fakeMem{latency: 100}
	l2 := New(DefaultL2(), mem)
	l1i := New(DefaultL1I(), l2)
	l1d := New(DefaultL1D(), l2)
	if l1i.Config().SizeBytes != 16<<10 || l1d.Config().SizeBytes != 16<<10 || l2.Config().SizeBytes != 256<<10 {
		t.Error("default geometries do not match Table I")
	}
}

// Property: a second access to any address immediately after the first is
// always a hit with exactly HitLatency cost, and the cache never reports
// more parent accesses than misses+writebacks.
func TestHitAfterAccessProperty(t *testing.T) {
	c, mem := newTestCache()
	var now clock.Cycles
	check := func(addrSeed uint16, write bool) bool {
		addr := uint64(addrSeed) * 8
		now = c.Access(now, addr, write)
		before := c.Stats()
		done := c.Access(now, addr, false)
		after := c.Stats()
		if after.Hits != before.Hits+1 || done != now+2 {
			return false
		}
		now = done
		return uint64(len(mem.accesses)) == after.Misses+after.Writebacks
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
