package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/obs"
)

// cmdTop is the observability showcase: it deploys a rack with every
// layer instrumented, drives ping traffic across it, and prints a
// top-style heartbeat per supervisor slice — live proof that the
// metrics advance while the simulation runs. The final snapshot renders
// in the chosen format, so `firesim top -format prometheus` doubles as
// a scrape-format smoke test.
func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	nodes := fs.Int("nodes", 8, "servers on the rack")
	latencyUs := fs.Float64("latency-us", 2, "link latency in microseconds")
	horizonUs := fs.Float64("horizon-us", 2000, "how far to simulate, target microseconds")
	slices := fs.Int("slices", 10, "heartbeat refreshes across the run")
	format := fs.String("format", "table", "final snapshot format: table, json, or prometheus")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	tracefile := fs.String("trace", "", "write a runtime execution trace to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *format {
	case "table", "json", "prometheus":
	default:
		return fmt.Errorf("unknown -format %q (want table, json, or prometheus)", *format)
	}

	var prof obs.Profiles
	if err := prof.Start(*cpuprofile, *tracefile); err != nil {
		return err
	}
	defer prof.Stop()

	clk := clock.New(clock.DefaultTargetClock)
	c, err := core.Deploy(core.Rack("tor0", *nodes, core.QuadCore), core.DeployConfig{
		LinkLatency: clk.CyclesInMicros(*latencyUs),
	})
	if err != nil {
		return err
	}
	reg := obs.NewRegistry("firesim")
	c.EnableMetrics(reg)
	sup := c.Supervise()
	sup.EnableMetrics(reg)

	// Ring of pings so every link carries traffic for the whole run.
	horizon := clk.CyclesInMicros(*horizonUs)
	interval := 8 * c.LinkLatency
	count := int(horizon/interval) + 1
	for i, src := range c.Servers {
		dst := c.Servers[(i+1)%len(c.Servers)]
		src.Ping(0, dst.IP(), count, interval, nil)
	}

	fmt.Printf("firesim top: %d nodes, link %.3g us, horizon %.0f us\n\n", *nodes, *latencyUs, *horizonUs)
	fmt.Printf("%12s %12s %14s %14s %10s\n", "cycle", "sim rate", "tokens", "flits", "peers up")
	var lastCycles, lastWall, lastTokens uint64
	for s := 1; s <= *slices; s++ {
		target := horizon * clock.Cycles(s) / clock.Cycles(*slices)
		rep, err := sup.RunTo(target)
		if err != nil {
			return err
		}
		snap := reg.Snapshot()
		cycles := snap.Counters["fame_cycles_total"]
		wall := snap.Counters["fame_run_wall_nanos_total"]
		tokens := snap.Counters["fame_tokens_total"]
		rate := clock.SimRate{
			TargetCycles: clock.Cycles(cycles - lastCycles),
			Wall:         time.Duration(wall - lastWall),
			TargetFreq:   clock.DefaultTargetClock,
		}
		flits := uint64(0)
		for name, v := range snap.Counters {
			if obs.BaseName(name) == "switch_flits_in_total" {
				flits += v
			}
		}
		up := len(c.Servers)
		for _, n := range rep.Nodes {
			if !n.Up {
				up--
			}
		}
		fmt.Printf("%12d %12v %14d %14d %7d/%d\n",
			snap.Gauges["fame_cycle"], rate.EffectiveHz(), tokens-lastTokens, flits, up, len(c.Servers))
		lastCycles, lastWall, lastTokens = cycles, wall, tokens
	}

	fmt.Println()
	snap := reg.Snapshot()
	switch *format {
	case "table":
		fmt.Print(snap.Table().String())
	case "json":
		return snap.WriteJSON(os.Stdout)
	case "prometheus":
		return snap.WritePrometheus(os.Stdout)
	}
	return nil
}
