// Store is the crash-safe on-disk home for checkpoint generations. The
// in-memory checkpoint history the supervisor keeps dies with its
// process, which is exactly the failure a multi-process deployment must
// survive: a shard that is SIGKILLed mid-run — or mid-checkpoint-write —
// must come back and find an intact generation to rewind to.
//
// Durability discipline, per generation:
//
//  1. the stream is written to a hidden temp file in the same directory,
//  2. the temp file is fsynced (contents durable before visible),
//  3. it is atomically renamed to its final ckpt-<cycle>.fsnp name,
//  4. the directory is fsynced (the rename itself durable).
//
// A crash at any point leaves either the previous generations untouched
// plus an ignorable temp file, or the new generation complete. A torn or
// bit-rotted file that somehow does appear under the final name (partial
// rename on a dying disk, filesystem without atomic-rename guarantees,
// external truncation) is caught at read time: the file name carries a
// whole-file CRC-32 that every load re-verifies — covering even the
// bytes FSNP's per-section CRCs do not (headers, section names, framing)
// — on top of full structural validation via Inspect. The enumeration
// APIs simply skip files that fail, so callers fall back to the newest
// generation that is actually intact.
package snapshot

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// storePrefix/storeSuffix frame a generation file name:
// ckpt-<cycle as 16 hex digits>-<whole-file CRC-32 as 8 hex digits>.fsnp.
// Fixed-width hex keeps lexicographic and numeric order identical.
const (
	storePrefix = "ckpt-"
	storeSuffix = ".fsnp"
	storeTemp   = ".tmp-"
)

// maxStoreFileBytes bounds how much of a checkpoint file a load is
// willing to read; a corrupted filesystem cannot make us allocate
// unbounded memory. One partition's stream is far below this.
const maxStoreFileBytes = 1 << 31

// Store manages the checkpoint generations of one partition in one
// directory. It is safe for use by one process at a time per partition
// (the coordinator serialises access); concurrent readers of other
// partitions' stores never interfere because each partition has its own
// directory.
type Store struct {
	dir    string
	retain int
}

// NewStore opens (creating if needed) the generation directory for one
// partition. retain bounds how many valid generations GC keeps
// (minimum 1; default 4 when <= 0).
func NewStore(dir string, retain int) (*Store, error) {
	if retain <= 0 {
		retain = 4
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot: store: %w", err)
	}
	return &Store{dir: dir, retain: retain}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) fileFor(cycle uint64, crc uint32) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%016x-%08x%s", storePrefix, cycle, crc, storeSuffix))
}

// cycleOf parses a generation file name into (cycle, expected whole-file
// CRC); ok is false for temp files and foreign names.
func cycleOf(name string) (cycle uint64, crc uint32, ok bool) {
	if !strings.HasPrefix(name, storePrefix) || !strings.HasSuffix(name, storeSuffix) {
		return 0, 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, storePrefix), storeSuffix)
	if len(hex) != 16+1+8 || hex[16] != '-' {
		return 0, 0, false
	}
	v, err := strconv.ParseUint(hex[:16], 16, 64)
	if err != nil {
		return 0, 0, false
	}
	c, err := strconv.ParseUint(hex[17:], 16, 32)
	if err != nil {
		return 0, 0, false
	}
	return v, uint32(c), true
}

// Save durably writes the generation for the given cycle: fn streams the
// checkpoint into a temp file, which is fsynced and atomically renamed
// into place, then the directory entry is fsynced. If fn fails (for
// example a momentarily non-quiescent node), the temp file is removed
// and no generation appears — the previous ones stay untouched. After a
// successful save, retention GC runs.
func (s *Store) Save(cycle uint64, fn func(w io.Writer) error) error {
	tmp, err := os.CreateTemp(s.dir, storeTemp+"*")
	if err != nil {
		return fmt.Errorf("snapshot: store save: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	crc := crc32.NewIEEE()
	if err := fn(io.MultiWriter(tmp, crc)); err != nil {
		cleanup()
		return fmt.Errorf("snapshot: store save cycle %d: %w", cycle, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("snapshot: store save: fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("snapshot: store save: close: %w", err)
	}
	final := s.fileFor(cycle, crc.Sum32())
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("snapshot: store save: rename: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return fmt.Errorf("snapshot: store save: %w", err)
	}
	// One generation per cycle, newest write wins: purge any older file
	// for the same cycle (its content CRC differs). This matters to the
	// recovery path — a slice that was later declared failed may have
	// persisted a generation built on a degraded token stream, and when
	// the re-run of that slice persists the real state for the same
	// cycle, the stale file must not remain as an alternative Load result.
	if entries, err := os.ReadDir(s.dir); err == nil {
		base := filepath.Base(final)
		for _, e := range entries {
			if c, _, ok := cycleOf(e.Name()); ok && c == cycle && e.Name() != base {
				os.Remove(filepath.Join(s.dir, e.Name()))
			}
		}
	}
	s.GC()
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// validate reads and verifies one generation file, returning its bytes.
// The whole-file CRC from the name must match (catching any torn write,
// truncation or bit rot, including bytes FSNP's section CRCs do not
// cover) and the stream must be structurally intact.
func (s *Store) validate(path string, wantCycle uint64, wantCRC uint32) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := io.ReadAll(io.LimitReader(f, maxStoreFileBytes))
	if err != nil {
		return nil, err
	}
	if got := crc32.ChecksumIEEE(data); got != wantCRC {
		return nil, fmt.Errorf("%w: whole-file CRC %08x, name claims %08x", ErrFormat, got, wantCRC)
	}
	h, _, err := Inspect(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	if h.Cycle != wantCycle {
		return nil, fmt.Errorf("%w: file named for cycle %d 'contains' cycle %d", ErrFormat, wantCycle, h.Cycle)
	}
	return data, nil
}

// Cycles enumerates the generations that are present AND intact, sorted
// ascending. Torn or corrupt files are skipped, not reported as errors:
// the caller's fallback to an older generation is the point of the
// store.
func (s *Store) Cycles() ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("snapshot: store: %w", err)
	}
	seen := make(map[uint64]bool)
	var out []uint64
	for _, e := range entries {
		cycle, crc, ok := cycleOf(e.Name())
		if !ok || seen[cycle] {
			continue
		}
		if _, err := s.validate(filepath.Join(s.dir, e.Name()), cycle, crc); err != nil {
			continue
		}
		seen[cycle] = true
		out = append(out, cycle)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Load returns the validated bytes of the generation at exactly cycle.
func (s *Store) Load(cycle uint64) ([]byte, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("snapshot: store load: %w", err)
	}
	var firstErr error
	for _, e := range entries {
		c, crc, ok := cycleOf(e.Name())
		if !ok || c != cycle {
			continue
		}
		data, err := s.validate(filepath.Join(s.dir, e.Name()), cycle, crc)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		return data, nil
	}
	if firstErr != nil {
		return nil, fmt.Errorf("snapshot: store load cycle %d: %w", cycle, firstErr)
	}
	return nil, fmt.Errorf("snapshot: store load cycle %d: no generation file", cycle)
}

// LatestValid returns the newest intact generation (cycle and bytes),
// skipping over any torn or corrupt newer files. ok is false when no
// intact generation exists at all.
func (s *Store) LatestValid() (cycle uint64, data []byte, ok bool) {
	cycles, err := s.Cycles()
	if err != nil || len(cycles) == 0 {
		return 0, nil, false
	}
	for i := len(cycles) - 1; i >= 0; i-- {
		d, err := s.Load(cycles[i])
		if err != nil {
			continue
		}
		return cycles[i], d, true
	}
	return 0, nil, false
}

// GC enforces retention: every orphaned temp file is removed, every
// corrupt generation file is removed (it can never be loaded), and only
// the newest `retain` intact generations are kept. GC never touches the
// newest intact generation.
func (s *Store) GC() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("snapshot: store gc: %w", err)
	}
	type gen struct {
		cycle uint64
		path  string
	}
	var valid []gen
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, storeTemp) {
			os.Remove(filepath.Join(s.dir, name))
			continue
		}
		cycle, crc, ok := cycleOf(name)
		if !ok {
			continue // foreign file: not ours to delete
		}
		path := filepath.Join(s.dir, name)
		if _, err := s.validate(path, cycle, crc); err != nil {
			os.Remove(path)
			continue
		}
		valid = append(valid, gen{cycle, path})
	}
	sort.Slice(valid, func(i, j int) bool { return valid[i].cycle < valid[j].cycle })
	if excess := len(valid) - s.retain; excess > 0 {
		for _, g := range valid[:excess] {
			os.Remove(g.path)
		}
	}
	return nil
}

// CoordinatedCycle returns the newest cycle for which EVERY listed store
// holds an intact generation — the rewind point a coordinator can
// restore a whole multi-partition simulation to. ok is false when no
// common generation exists.
func CoordinatedCycle(stores []*Store) (uint64, bool) {
	if len(stores) == 0 {
		return 0, false
	}
	common := make(map[uint64]int)
	for _, st := range stores {
		cycles, err := st.Cycles()
		if err != nil {
			return 0, false
		}
		for _, c := range cycles {
			common[c]++
		}
	}
	best, ok := uint64(0), false
	for c, n := range common {
		if n == len(stores) && (!ok || c > best) {
			best, ok = c, true
		}
	}
	return best, ok
}
