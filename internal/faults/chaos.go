// Process-level chaos for distributed runs. Where the rest of this
// package injects faults into the simulated target (dropped tokens,
// frozen nodes), chaos events attack the HOST: they kill, suspend and
// stall the real worker processes of a multi-process run, and tear
// checkpoint files mid-recovery, to prove the supervision layer heals
// every class of failure without perturbing the simulated target by a
// single bit.
package faults

import (
	"fmt"
	"strconv"
	"strings"
)

// Chaos event kinds.
const (
	// ChaosKill SIGKILLs the target shard process when the run reaches
	// the event cycle: abrupt death, detected by lease expiry.
	ChaosKill = "kill"
	// ChaosStop SIGSTOPs the target shard: the process is alive but
	// silent, also caught by lease expiry (heartbeats stop).
	ChaosStop = "stop"
	// ChaosStall makes the target shard stop advancing target time for
	// StallMs of wall time while still heartbeating: caught only by the
	// cycle-progress watchdog.
	ChaosStall = "stall"
	// ChaosTear truncates the target unit's newest checkpoint generation
	// at the next recovery, simulating a crash mid-checkpoint-write; the
	// store must fall back to the previous valid generation.
	ChaosTear = "tear"
)

// ChaosEvent is one scheduled host-level failure.
type ChaosEvent struct {
	// Kind is one of the Chaos* constants.
	Kind string
	// Target names the victim: a shard name for kill/stop/stall, a
	// partition unit name (e.g. "sub0") for tear.
	Target string
	// Cycle triggers kill/stop/stall when the coordinated run reaches
	// it; ignored for tear (which fires at the next recovery).
	Cycle uint64
	// StallMs is the stall duration (stall only).
	StallMs int
}

// ParseChaos parses a comma-separated chaos spec, e.g.
//
//	kill:shard1@8192,stall:shard2@16384+2000,tear:sub0
//
// Grammar per event: kind ":" target [ "@" cycle ] [ "+" stallMs ].
// kill/stop/stall require a cycle; stall requires a duration; tear
// takes neither.
func ParseChaos(spec string) ([]ChaosEvent, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var events []ChaosEvent
	for _, raw := range strings.Split(spec, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		kind, rest, ok := strings.Cut(raw, ":")
		if !ok {
			return nil, fmt.Errorf("faults: chaos event %q: missing ':'", raw)
		}
		ev := ChaosEvent{Kind: kind}
		if at := strings.IndexByte(rest, '@'); at >= 0 {
			ev.Target = rest[:at]
			tail := rest[at+1:]
			if plus := strings.IndexByte(tail, '+'); plus >= 0 {
				ms, err := strconv.Atoi(tail[plus+1:])
				if err != nil || ms <= 0 {
					return nil, fmt.Errorf("faults: chaos event %q: bad stall duration", raw)
				}
				ev.StallMs = ms
				tail = tail[:plus]
			}
			c, err := strconv.ParseUint(tail, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: chaos event %q: bad cycle", raw)
			}
			ev.Cycle = c
		} else {
			ev.Target = rest
		}
		if ev.Target == "" {
			return nil, fmt.Errorf("faults: chaos event %q: empty target", raw)
		}
		switch ev.Kind {
		case ChaosKill, ChaosStop:
			if ev.Cycle == 0 {
				return nil, fmt.Errorf("faults: chaos event %q: %s requires @cycle", raw, ev.Kind)
			}
			if ev.StallMs != 0 {
				return nil, fmt.Errorf("faults: chaos event %q: +duration is stall-only", raw)
			}
		case ChaosStall:
			if ev.Cycle == 0 || ev.StallMs == 0 {
				return nil, fmt.Errorf("faults: chaos event %q: stall requires @cycle+durationMs", raw)
			}
		case ChaosTear:
			if ev.Cycle != 0 || ev.StallMs != 0 {
				return nil, fmt.Errorf("faults: chaos event %q: tear takes only a unit target", raw)
			}
		default:
			return nil, fmt.Errorf("faults: chaos event %q: unknown kind %q", raw, ev.Kind)
		}
		events = append(events, ev)
	}
	return events, nil
}
