package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/stats"
)

func init() {
	register("fig7", func(sc Scale) (Result, error) { return Fig7(sc) })
}

// Fig7Config is one memcached server configuration from the experiment.
type Fig7Config struct {
	// Label matches the paper's legend.
	Label   string
	Threads int
	Pinned  bool
}

// Fig7Point is one load point for one configuration.
type Fig7Point struct {
	OfferedQPS   float64
	AchievedQPS  float64
	P50Us, P95Us float64
}

// Fig7Result is the full sweep.
type Fig7Result struct {
	Configs []Fig7Config
	// Points[i] are the load points for Configs[i].
	Points [][]Fig7Point
}

// Title implements Result.
func (Fig7Result) Title() string {
	return "Figure 7: memcached thread-imbalance tail latency"
}

// Render implements Result.
func (r Fig7Result) Render() string {
	var b strings.Builder
	t := stats.NewTable("Config", "Offered QPS", "Achieved QPS", "p50 (us)", "p95 (us)")
	for i, cfg := range r.Configs {
		for _, p := range r.Points[i] {
			t.AddRow(cfg.Label, p.OfferedQPS, p.AchievedQPS, p.P50Us, p.P95Us)
		}
	}
	b.WriteString(t.String())
	b.WriteString("\nPaper reference: 5 threads on 4 cores inflates p95 sharply while p50 is\n" +
		"essentially unchanged; unpinned 4-thread p95 tracks the 5-thread curve at low-mid\n" +
		"load and converges to the pinned curve at high load.\n")
	return b.String()
}

// Fig7 runs the Section IV-E experiment: an 8-node cluster (one 4-core
// memcached server, seven mutilate load generators) on a 200 Gbit/s, 2 us
// network; the server runs 4 threads, 5 threads, or 4 threads pinned
// one-to-a-core.
func Fig7(sc Scale) (Fig7Result, error) {
	configs := []Fig7Config{
		{Label: "4 threads", Threads: 4, Pinned: false},
		{Label: "5 threads", Threads: 5, Pinned: false},
		{Label: "4 threads pinned", Threads: 4, Pinned: true},
	}
	loads := []float64{40_000, 90_000, 120_000, 135_000, 145_000}
	window := clock.Cycles(320_000_000) // 100 ms per point
	if sc.Quick {
		loads = []float64{40_000, 135_000}
		window = 96_000_000 // 30 ms
	}

	res := Fig7Result{Configs: configs, Points: make([][]Fig7Point, len(configs))}
	for ci, cfg := range configs {
		for _, qps := range loads {
			p, err := fig7Point(cfg, qps, window)
			if err != nil {
				return Fig7Result{}, fmt.Errorf("fig7 %s @ %g qps: %w", cfg.Label, qps, err)
			}
			res.Points[ci] = append(res.Points[ci], p)
		}
	}
	return res, nil
}

func fig7Point(cfg Fig7Config, qps float64, window clock.Cycles) (Fig7Point, error) {
	c, err := core.Deploy(core.Rack("tor0", 8, core.QuadCore), core.DeployConfig{Seed: 1234})
	if err != nil {
		return Fig7Point{}, err
	}
	server := c.Servers[0]
	apps.NewMemcachedServer(server, apps.MemcachedConfig{Threads: cfg.Threads, Pinned: cfg.Pinned})

	// Seven load generators split the offered load, as in the paper.
	gens := make([]*apps.Mutilate, 7)
	for i := 0; i < 7; i++ {
		gens[i] = apps.NewMutilate(c.Servers[i+1], apps.MutilateConfig{
			Server:      server.IP(),
			QPS:         qps / 7,
			Connections: 3,
			Duration:    window,
			Seed:        uint64(1000 + i),
		})
	}
	if err := c.RunFor(window + 2_000_000); err != nil {
		return Fig7Point{}, err
	}

	var all stats.Sample
	var received uint64
	for _, g := range gens {
		received += g.Received
		for p := 1.0; p <= 99; p++ {
			// Merge by re-sampling each generator's distribution at 1%
			// resolution (mutilate aggregates client-side the same way).
			all.Add(g.Latencies.Percentile(p))
		}
	}
	seconds := float64(window) / 3.2e9
	return Fig7Point{
		OfferedQPS:  qps,
		AchievedQPS: float64(received) / seconds,
		P50Us:       all.Median(),
		P95Us:       all.P95(),
	}, nil
}
