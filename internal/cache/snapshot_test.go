package cache

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/snapshot"
	"repro/internal/snapshot/snaptest"
)

func TestCacheSnapshotConformance(t *testing.T) {
	c, _ := newTestCache()
	// Mix of reads and writes across enough lines to force evictions, so
	// tags, dirty bits and LRU counters are all populated.
	now := clock.Cycles(0)
	for i := 0; i < 64; i++ {
		now = c.Access(now, uint64(i*64%2048), i%3 == 0)
	}
	snaptest.RoundTrip(t, c, func() snapshot.Snapshotter {
		f, _ := newTestCache()
		return f
	})
}

func TestCacheRestoreRejectsGeometryMismatch(t *testing.T) {
	c, _ := newTestCache()
	c.Access(0, 0x40, true)
	data := snaptest.Save(t, c)

	other := New(Config{Name: "big", SizeBytes: 2048, LineBytes: 64, Ways: 2, HitLatency: 2}, &fakeMem{latency: 100})
	err := restoreInto(other, data)
	if err == nil || !strings.Contains(err.Error(), "geometry") {
		t.Fatalf("restore into mismatched geometry: err = %v", err)
	}
}

// restoreInto mirrors snaptest's framing for error-path assertions.
func restoreInto(dst snapshot.Snapshotter, stream []byte) error {
	r, _, err := snapshot.NewReader(bytes.NewReader(stream))
	if err != nil {
		return err
	}
	if _, err := r.Next(); err != nil {
		return err
	}
	return dst.Restore(r)
}
