package experiments

import (
	"fmt"
	"strings"

	"repro/internal/hostplatform"
	"repro/internal/stats"
)

func init() {
	register("tableI", TableI)
	register("tableII", TableII)
	register("utilization", UtilizationTable)
	register("cost", CostTable)
}

// TableI renders the server blade configuration (paper Table I), read
// back from the live model defaults so the table cannot drift from the
// implementation.
func TableI(sc Scale) (Result, error) {
	t := stats.NewTable("Blade Component", "RTL or Model")
	t.AddRow("1 to 4 RISC-V Rocket Cores @ 3.2 GHz", "RV64IM core model (internal/riscv)")
	t.AddRow("Optional RoCC Accel. (Table II)", "MMIO accelerator slots (internal/soc)")
	t.AddRow("16 KiB L1I$, 16 KiB L1D$, 256 KiB L2$", "Timing model (internal/cache)")
	t.AddRow("16 GiB DDR3", "Bank/row timing model (internal/dram)")
	t.AddRow("200 Gbit/s Ethernet NIC", "Figure-3 NIC model (internal/nic)")
	t.AddRow("Disk", "Block device model (internal/blockdev)")
	return textResult{"Table I: Server blade configuration", t.String()}, nil
}

// TableII renders the example accelerators for custom blades (paper
// Table II).
func TableII(sc Scale) (Result, error) {
	t := stats.NewTable("Accelerator", "Purpose")
	t.AddRow("Page Fault Accel.", "Remote memory fast-path (Section VI; internal/pfa)")
	t.AddRow("Hwacha", "Vector-accelerated compute (Section VIII; MMIO slot)")
	t.AddRow("HLS-Generated", "Rapid custom scale-out accels. (Section VIII; MMIO slot)")
	return textResult{"Table II: Example accelerators for custom blades", t.String()}, nil
}

// UtilizationTable reproduces the Section III-A5 FPGA LUT utilisation
// numbers for standard and supernode packing.
func UtilizationTable(sc Scale) (Result, error) {
	t := stats.NewTable("Packing", "Blade LUT %", "Infra LUT %", "Total LUT %")
	for _, n := range []int{1, 2, 4} {
		u, err := hostplatform.UtilizationFor(n)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%d node/FPGA", n)
		if n == 4 {
			label += " (supernode)"
		}
		t.AddRow(label, u.BladePct, u.InfraPct, u.TotalPct())
	}
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString("\nPaper reference: single 32.6% total (14.4% blade RTL); supernode ~57.7% blades, ~76% total.\n")
	return textResult{"Section III-A5: FPGA utilization", b.String()}, nil
}

// CostTable reproduces the Section V-C cost arithmetic for the 1024-node
// datacenter simulation.
func CostTable(sc Scale) (Result, error) {
	d := hostplatform.NewDeployment()
	d.Add(hostplatform.F1_16XLarge, 32)
	d.Add(hostplatform.M4_16XLarge, 5)
	t := stats.NewTable("Quantity", "Value")
	t.AddRow("f1.16xlarge instances", 32)
	t.AddRow("m4.16xlarge instances", 5)
	t.AddRow("FPGAs harnessed", d.FPGAs())
	t.AddRow("FPGA retail value", fmt.Sprintf("$%.1fM", d.FPGAValueUSD()/1e6))
	t.AddRow("Cost per simulation-hour (spot)", fmt.Sprintf("$%.0f", d.HourlyCost(true)))
	t.AddRow("Cost per simulation-hour (on-demand)", fmt.Sprintf("$%.0f", d.HourlyCost(false)))
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString("\nPaper reference: ~$100/hour spot, ~$440/hour on-demand, $12.8M of FPGAs.\n")
	return textResult{"Section V-C: 1024-node simulation cost", b.String()}, nil
}
