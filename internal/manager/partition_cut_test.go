package manager

import (
	"testing"
	"time"

	"repro/internal/faults"
)

// TestCutUnitsEnumeration pins the cut semantics BuildPartition and the
// coordinator both rely on: deterministic pre-order, one unit per severed
// subtree, servers above the cut becoming their own units, and cut levels
// <= 1 reproducing the historical root-downlink numbering.
func TestCutUnitsEnumeration(t *testing.T) {
	// Rack: every cut level degenerates to one unit per server.
	rack := NewSwitchNode("root")
	for i := 0; i < 4; i++ {
		rack.AddDownlinks(NewServerNode("", SingleCore))
	}
	for _, lvl := range []int{0, 1, 2} {
		units := CutUnits(rack, lvl)
		if len(units) != 4 {
			t.Fatalf("rack cut level %d: %d units, want 4", lvl, len(units))
		}
		for i, u := range units {
			if u != rack.Downlinks[i] {
				t.Errorf("rack cut level %d unit %d is not downlink %d", lvl, i, i)
			}
		}
	}

	// Uniform tree {2,2,2}: level 1 cuts the 2 aggregation subtrees,
	// level 2 the 4 ToR subtrees, level 3 the 8 servers.
	tree := NewSwitchNode("root")
	var grow func(s *SwitchNode, depth int)
	grow = func(s *SwitchNode, depth int) {
		if depth == 2 {
			s.AddDownlinks(NewServerNode("", SingleCore), NewServerNode("", SingleCore))
			return
		}
		for i := 0; i < 2; i++ {
			c := NewSwitchNode("")
			s.AddDownlinks(c)
			grow(c, depth+1)
		}
	}
	grow(tree, 0)
	for _, tc := range []struct{ level, want int }{{1, 2}, {2, 4}, {3, 8}} {
		units := CutUnits(tree, tc.level)
		if len(units) != tc.want {
			t.Fatalf("tree cut level %d: %d units, want %d", tc.level, len(units), tc.want)
		}
		servers := 0
		for _, u := range units {
			switch v := u.(type) {
			case *ServerNode:
				servers++
			case *SwitchNode:
				servers += CountServers(v)
			}
		}
		if servers != 8 {
			t.Errorf("tree cut level %d covers %d servers, want all 8", tc.level, servers)
		}
	}

	// Ragged tree: a server hanging above the cut level becomes its own
	// unit, and pre-order interleaves it with the severed subtrees.
	ragged := NewSwitchNode("root")
	srv := NewServerNode("", SingleCore)
	agg := NewSwitchNode("")
	tor := NewSwitchNode("")
	tor.AddDownlinks(NewServerNode("", SingleCore), NewServerNode("", SingleCore))
	leafSrv := NewServerNode("", SingleCore)
	agg.AddDownlinks(tor, leafSrv)
	ragged.AddDownlinks(srv, agg)
	units := CutUnits(ragged, 2)
	if len(units) != 3 {
		t.Fatalf("ragged cut level 2: %d units, want 3", len(units))
	}
	if units[0] != TopoNode(srv) || units[1] != TopoNode(tor) || units[2] != TopoNode(leafSrv) {
		t.Errorf("ragged cut level 2 pre-order: got [%T %T %T], want [server, ToR switch, server]",
			units[0], units[1], units[2])
	}

	// Weights follow the same enumeration.
	w := unitWeights(ragged, 2)
	if len(w) != 3 || w[0] != 1 || w[1] != 2 || w[2] != 1 {
		t.Errorf("ragged unit weights = %v, want [1 2 1]", w)
	}
}

// TestBuildPartitionTreeCut checks the static shape of a level-2 cut of a
// {2,2,2} tree: the coordinator hosts root + both aggregation switches
// with 4 down-bridges, each shard unit hosts one ToR subtree, and unit
// indices out of cut range are rejected.
func TestBuildPartitionTreeCut(t *testing.T) {
	spec, err := TreeSpec([]int{2, 2, 2}, SingleCore, DeployConfig{LinkLatency: 512, Seed: 42}, 2)
	if err != nil {
		t.Fatal(err)
	}

	rootPart, err := BuildPartition(spec, nil, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rootPart.Switches); got != 3 {
		t.Errorf("root partition has %d switches, want 3 (root + 2 aggregation)", got)
	}
	if got := len(rootPart.Bridges); got != 4 {
		t.Errorf("root partition has %d bridges, want 4", got)
	}
	if got := len(rootPart.unitComps[RootUnit]); got != 3 {
		t.Errorf("root unit checkpoints %d sections, want 3", got)
	}

	shard, err := BuildPartition(spec, []int{1, 3}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(shard.Servers); got != 4 {
		t.Errorf("shard hosting units {1,3} has %d servers, want 4", got)
	}
	if got := len(shard.Switches); got != 2 {
		t.Errorf("shard hosting units {1,3} has %d switches, want 2 ToRs", got)
	}

	if _, err := BuildPartition(spec, []int{4}, time.Second); err == nil {
		t.Error("unit 4 of a 4-unit cut accepted, want out-of-range error")
	}
}

// TestDistributedTreeCut is the multi-level-cut keystone: a {2,2,2} tree
// cut at the ToR level (4 units over 2 procs, aggregation switches in the
// coordinator), disturbed by a mid-run SIGKILL, must heal and finish
// bit-identical to the undisturbed in-process whole-cluster run.
func TestDistributedTreeCut(t *testing.T) {
	spec, err := TreeSpec([]int{2, 2, 2}, SingleCore, DeployConfig{LinkLatency: 512, Seed: 42}, 2)
	if err != nil {
		t.Fatal(err)
	}
	spec.Workload = &WorkloadSpec{Kind: "stream", StartAt: 600, FrameBytes: 200, Gbps: 1, StopAt: 12000}
	const horizon = 16384
	chaos, err := faults.ParseChaos("kill:shard1@4096")
	if err != nil {
		t.Fatal(err)
	}
	report, err := RunDistributed(CoordinatorConfig{
		Spec:          spec,
		Procs:         2,
		BaseDir:       t.TempDir(),
		CkptEvery:     2048,
		Horizon:       horizon,
		MaxRecoveries: 5,
		RespawnBudget: 0,
		Chaos:         chaos,
		Spawn:         testSpawn(),
		Log:           newTestLog(t),
		Lease:         800 * time.Millisecond,
		StallAfter:    1500 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("RunDistributed: %v", err)
	}
	if report.Cycle != horizon {
		t.Errorf("final cycle %d, want %d", report.Cycle, horizon)
	}
	if report.Recoveries < 1 {
		t.Errorf("run healed %d failures, want at least the SIGKILL", report.Recoveries)
	}
	if report.FinalProcs != 1 {
		t.Errorf("run finished with %d procs, want 1 (no respawn budget)", report.FinalProcs)
	}
	compareWithReference(t, spec, horizon, report)
}
