// Package switchmodel implements FireSim's software switch models.
//
// Switches in the target design are modeled in software (C++ in the paper,
// Go here) processing network flits cycle-by-cycle. The algorithm follows
// Section III-B1 exactly:
//
//   - At ingress, simulation tokens containing valid data are buffered into
//     full packets, timestamped with the arrival cycle of their last token
//     plus a configurable minimum switching latency.
//   - A global switching step pushes all packets that completed during the
//     round through a priority queue sorted on timestamp, and drains the
//     queue into output-port buffers chosen by a static MAC address table
//     (datacenter topologies are relatively fixed). Broadcast packets are
//     duplicated as necessary.
//   - Per output port, packets are "released" onto the link in token form
//     when their release timestamp is less than or equal to global
//     simulation time and the output token buffer has space. Because the
//     output token buffer is of fixed size each iteration (one link
//     latency's worth of tokens), congestion is modeled automatically by
//     packets not being releasable. Buffer sizing and congestion drops are
//     modeled by bounding the delay between a packet's release timestamp
//     and global time, and by bounding output buffer occupancy in bytes.
//
// The switching algorithm and the assumption of Ethernet as the link layer
// are not fundamental: users can plug in their own Router to model new
// switch designs.
package switchmodel

import (
	"container/heap"
	"fmt"
	"sync/atomic"

	"repro/internal/clock"
	"repro/internal/ethernet"
	"repro/internal/token"
)

// Config parameterises a switch. Port bandwidth, link latency, buffering
// and switching latency are all runtime-configurable (no FPGA rebuild), as
// the paper emphasises.
type Config struct {
	// Name identifies the switch in diagnostics and stats.
	Name string
	// Ports is the number of full-duplex ports.
	Ports int
	// SwitchingLatency is the minimum port-to-port latency added to every
	// packet's timestamp at ingress. The paper's experiments use 10 cycles.
	SwitchingLatency clock.Cycles
	// OutputBufferBytes bounds each output port's packet buffer; packets
	// that would overflow it are dropped (at full-packet granularity).
	OutputBufferBytes int
	// MaxReleaseDelay bounds how stale a packet may become (global time
	// minus release timestamp) before it is dropped, modeling drop due to
	// congestion. Zero disables staleness drops.
	MaxReleaseDelay clock.Cycles
	// Router chooses output ports; nil selects a MAC-table router.
	Router Router
}

// DefaultSwitchingLatency is the paper's fixed port-to-port latency.
const DefaultSwitchingLatency clock.Cycles = 10

// DefaultOutputBufferBytes is a generous default output buffer (512 KiB),
// comparable to per-port packet memory in datacenter ToR switches.
const DefaultOutputBufferBytes = 512 << 10

// Packet is a fully-assembled packet inside the switch.
type Packet struct {
	// Flits is the packet's link-level data.
	Flits []uint64
	// InPort is the ingress port.
	InPort int
	// Release is the earliest global cycle at which the packet may be
	// released to an output port (last-flit arrival + switching latency).
	Release clock.Cycles
	// seq breaks timestamp ties deterministically (ingress order).
	seq uint64
}

// Dst returns the destination MAC parsed from the first flit.
func (p *Packet) Dst() ethernet.MAC { return ethernet.DstFromFirstFlit(p.Flits[0]) }

// Router decides which output ports a packet goes to.
type Router interface {
	// Route returns the output ports for the packet. Returning no ports
	// drops the packet.
	Route(sw *Switch, pkt *Packet) []int
}

// MACTableRouter routes by a static MAC address table populated by the
// simulation manager, flooding broadcast and unknown-destination packets to
// every port except the ingress port.
type MACTableRouter struct {
	table map[ethernet.MAC]int
}

// NewMACTableRouter returns an empty table router.
func NewMACTableRouter() *MACTableRouter {
	return &MACTableRouter{table: make(map[ethernet.MAC]int)}
}

// Set maps a MAC address to an output port.
func (r *MACTableRouter) Set(mac ethernet.MAC, port int) { r.table[mac] = port }

// Lookup reports the port for a MAC, if present.
func (r *MACTableRouter) Lookup(mac ethernet.MAC) (int, bool) {
	p, ok := r.table[mac]
	return p, ok
}

// Route implements Router.
func (r *MACTableRouter) Route(sw *Switch, pkt *Packet) []int {
	dst := pkt.Dst()
	if dst != ethernet.Broadcast {
		if port, ok := r.table[dst]; ok {
			if port == pkt.InPort {
				return nil // never reflect a packet back out its ingress port
			}
			return []int{port}
		}
	}
	// Broadcast / unknown destination: flood.
	ports := make([]int, 0, sw.cfg.Ports-1)
	for p := 0; p < sw.cfg.Ports; p++ {
		if p != pkt.InPort {
			ports = append(ports, p)
		}
	}
	return ports
}

// Stats aggregates switch activity counters.
type Stats struct {
	PacketsIn       uint64
	PacketsOut      uint64
	FlitsIn         uint64
	FlitsOut        uint64
	DropsBufFull    uint64
	DropsStale      uint64
	DropsUnroutable uint64
	BytesSwitched   uint64
	// StallCycles counts port-cycles on which an installed stall hook
	// (fault injection) suppressed egress.
	StallCycles uint64
}

// pending is the global timestamp-sorted priority queue of routed packets.
type pending []*Packet

func (h pending) Len() int { return len(h) }
func (h pending) Less(i, j int) bool {
	if h[i].Release != h[j].Release {
		return h[i].Release < h[j].Release
	}
	return h[i].seq < h[j].seq
}
func (h pending) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pending) Push(x interface{}) { *h = append(*h, x.(*Packet)) }
func (h *pending) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// outPort is the egress state of one port.
type outPort struct {
	queue       []*Packet // FIFO, already routed, bounded by bytes
	queuedBytes int
	// tx is the packet currently being transmitted, flit index next to go.
	tx     *Packet
	txFlit int
}

// inPort is the ingress state of one port: partial packet assembly.
type inPort struct {
	flits []uint64
}

// Switch is a software switch model implementing fame.Endpoint.
type Switch struct {
	cfg    Config
	router Router
	cycle  clock.Cycles
	seq    uint64

	in    []inPort
	out   []outPort
	queue pending

	// stats is owned by the ticking goroutine; readers go through the
	// atomically published copies below, so Stats() and Cycle() are safe
	// to call concurrently with an in-flight RunParallel (the runner runs
	// each endpoint, this switch included, on its own goroutine).
	stats    Stats
	pubStats atomic.Pointer[Stats]
	pubCycle atomic.Int64

	// metrics, when non-nil, mirrors the switch counters into the
	// observability registry at the end of every TickBatch (see
	// publishMetrics); the per-flit hot loops stay untouched.
	metrics *switchMetrics

	// probe, when non-nil, is called once per released flit with the
	// absolute cycle, for bandwidth-over-time measurements (Figure 6
	// samples aggregate bandwidth at the root switch).
	probe func(cycle clock.Cycles, port int)

	// stall, when non-nil, reports whether an output port is prevented
	// from releasing a flit at the given cycle (fault injection: a stalled
	// port backs traffic up into its output buffer, so sustained stalls
	// surface as DropsBufFull/DropsStale exactly like real congestion).
	stall func(port int, cycle clock.Cycles) bool
}

// New builds a switch from cfg, applying defaults for zero values.
func New(cfg Config) *Switch {
	if cfg.Ports <= 0 {
		panic(fmt.Sprintf("switchmodel: switch %q needs at least one port", cfg.Name))
	}
	if cfg.SwitchingLatency == 0 {
		cfg.SwitchingLatency = DefaultSwitchingLatency
	}
	if cfg.OutputBufferBytes == 0 {
		cfg.OutputBufferBytes = DefaultOutputBufferBytes
	}
	router := cfg.Router
	if router == nil {
		router = NewMACTableRouter()
	}
	return &Switch{
		cfg:    cfg,
		router: router,
		in:     make([]inPort, cfg.Ports),
		out:    make([]outPort, cfg.Ports),
	}
}

// Name implements fame.Endpoint.
func (s *Switch) Name() string { return s.cfg.Name }

// NumPorts implements fame.Endpoint.
func (s *Switch) NumPorts() int { return s.cfg.Ports }

// Router returns the switch's router, for manager-side MAC table
// population.
func (s *Switch) Router() Router { return s.router }

// MACTable returns the router as a *MACTableRouter if that is what is
// installed, for the common case.
func (s *Switch) MACTable() *MACTableRouter {
	r, _ := s.router.(*MACTableRouter)
	return r
}

// Stats returns a snapshot of the switch counters as of the most recently
// completed TickBatch. It reads an atomically published copy, so it is
// safe to call from any goroutine while a parallel run is in flight —
// the snapshot is always internally consistent (whole-round granularity),
// never a torn mid-round view.
func (s *Switch) Stats() Stats {
	if p := s.pubStats.Load(); p != nil {
		return *p
	}
	return Stats{}
}

// Cycle returns the switch's target cycle as of the most recently
// completed TickBatch. Like Stats, it is safe concurrently with a
// parallel run.
func (s *Switch) Cycle() clock.Cycles { return clock.Cycles(s.pubCycle.Load()) }

// SetProbe installs a per-released-flit callback for bandwidth
// measurement.
func (s *Switch) SetProbe(fn func(cycle clock.Cycles, port int)) { s.probe = fn }

// SetStall installs (or, with nil, removes) a port-stall hook for fault
// injection. While fn(port, cycle) reports true the port releases nothing;
// the hook must be a pure function of (port, cycle) to preserve
// determinism.
func (s *Switch) SetStall(fn func(port int, cycle clock.Cycles) bool) { s.stall = fn }

// TickBatch implements fame.Endpoint: one full switching round over n
// target cycles.
func (s *Switch) TickBatch(n int, in, out []*token.Batch) {
	// Phase 1: ingress. Buffer valid tokens into packets; timestamp each
	// completed packet with its last token's arrival cycle plus the
	// minimum switching latency, and push it into the global queue.
	for p := 0; p < s.cfg.Ports; p++ {
		ip := &s.in[p]
		for _, slot := range in[p].Slots {
			ip.flits = append(ip.flits, slot.Tok.Data)
			s.stats.FlitsIn++
			if slot.Tok.Last {
				pkt := &Packet{
					Flits:   ip.flits,
					InPort:  p,
					Release: s.cycle + clock.Cycles(slot.Offset) + s.cfg.SwitchingLatency,
					seq:     s.seq,
				}
				s.seq++
				ip.flits = nil
				s.stats.PacketsIn++
				heap.Push(&s.queue, pkt)
			}
		}
	}

	// Phase 2: global switching step. Drain the priority queue in
	// timestamp order into output port buffers via the router, duplicating
	// for broadcast. Packets that would overflow an output buffer are
	// dropped at full-packet granularity.
	for s.queue.Len() > 0 {
		pkt := heap.Pop(&s.queue).(*Packet)
		ports := s.router.Route(s, pkt)
		if len(ports) == 0 {
			s.stats.DropsUnroutable++
			continue
		}
		for _, op := range ports {
			o := &s.out[op]
			bytes := len(pkt.Flits) * ethernet.FlitSize
			if o.queuedBytes+bytes > s.cfg.OutputBufferBytes {
				s.stats.DropsBufFull++
				continue
			}
			dup := pkt
			if len(ports) > 1 {
				c := *pkt
				dup = &c
			}
			o.queue = append(o.queue, dup)
			o.queuedBytes += bytes
		}
	}

	// Phase 3: egress. Per port, release packets whose timestamp has been
	// reached, one flit per cycle. The output token buffer for the round
	// is exactly n tokens, so a congested port simply fails to release —
	// which is the paper's congestion model.
	for p := 0; p < s.cfg.Ports; p++ {
		s.releasePort(p, n, out[p])
	}
	s.cycle += clock.Cycles(n)

	// Publish this round's counters for concurrent readers: one copy and
	// two atomic stores per round, nothing per flit.
	snap := s.stats
	s.pubStats.Store(&snap)
	s.pubCycle.Store(int64(s.cycle))
	if s.metrics != nil {
		s.publishMetrics()
	}
}

func (s *Switch) releasePort(p int, n int, out *token.Batch) {
	o := &s.out[p]
	for i := 0; i < n; i++ {
		now := s.cycle + clock.Cycles(i)
		if s.stall != nil && s.stall(p, now) {
			s.stats.StallCycles++
			continue
		}
		if o.tx == nil {
			// Try to start a new packet this cycle.
			for len(o.queue) > 0 {
				head := o.queue[0]
				if head.Release > now {
					break
				}
				if s.cfg.MaxReleaseDelay > 0 && now-head.Release > s.cfg.MaxReleaseDelay {
					// Too stale: congestion drop.
					o.queue = o.queue[1:]
					o.queuedBytes -= len(head.Flits) * ethernet.FlitSize
					s.stats.DropsStale++
					continue
				}
				o.tx = head
				o.txFlit = 0
				o.queue = o.queue[1:]
				break
			}
		}
		if o.tx == nil {
			// Idle: fast-forward to the next packet's release time (or
			// the end of the batch). Semantically identical to ticking
			// every empty cycle, but O(1) for idle ports.
			if len(o.queue) == 0 {
				return
			}
			next := o.queue[0].Release
			if next >= s.cycle+clock.Cycles(n) {
				return
			}
			if j := int(next - s.cycle); j > i {
				i = j - 1 // loop increment lands on the release cycle
			}
			continue
		}
		flit := o.tx.Flits[o.txFlit]
		last := o.txFlit == len(o.tx.Flits)-1
		out.Put(i, token.Token{Data: flit, Valid: true, Last: last})
		s.stats.FlitsOut++
		s.stats.BytesSwitched += ethernet.FlitSize
		if s.probe != nil {
			s.probe(now, p)
		}
		o.txFlit++
		if last {
			o.queuedBytes -= len(o.tx.Flits) * ethernet.FlitSize
			o.tx = nil
			s.stats.PacketsOut++
		}
	}
}
