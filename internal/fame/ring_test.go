package fame

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/token"
)

// TestBatchRingFIFO drives the ring through growth and wrap-around and
// checks strict FIFO order against a reference slice.
func TestBatchRingFIFO(t *testing.T) {
	var r batchRing
	var ref []*token.Batch
	mk := func(id int) *token.Batch {
		b := token.NewBatch(4)
		b.Put(0, token.Token{Data: uint64(id), Valid: true})
		return b
	}
	id := 0
	// Interleave pushes and pops with varying phase so head walks all the
	// way around the buffer several times, across multiple growths.
	for phase := 0; phase < 50; phase++ {
		for i := 0; i < phase%7+1; i++ {
			b := mk(id)
			id++
			r.push(b)
			ref = append(ref, b)
		}
		for i := 0; i < phase%5 && r.len() > 0; i++ {
			got := r.pop()
			want := ref[0]
			ref = ref[1:]
			if got != want {
				t.Fatalf("phase %d: pop = batch %d, want %d",
					phase, got.Slots[0].Tok.Data, want.Slots[0].Tok.Data)
			}
		}
		if r.len() != len(ref) {
			t.Fatalf("phase %d: len = %d, want %d", phase, r.len(), len(ref))
		}
		for i := 0; i < r.len(); i++ {
			if r.at(i) != ref[i] {
				t.Fatalf("phase %d: at(%d) mismatch", phase, i)
			}
		}
	}
	for r.len() > 0 {
		if got, want := r.pop(), ref[0]; got != want {
			t.Fatal("drain order mismatch")
		}
		ref = ref[1:]
	}
}

// TestBatchRingPopReleasesReference makes sure pop nils the stored slot;
// otherwise the ring would pin every batch that ever passed through it.
func TestBatchRingPopReleasesReference(t *testing.T) {
	var r batchRing
	r.push(token.NewBatch(1))
	r.pop()
	for _, slot := range r.buf {
		if slot != nil {
			t.Fatal("pop left a batch reference in the ring")
		}
	}
}

// BenchmarkChannelPop compares the ring against the old copy-shift
// dequeue at the in-flight depth a LinkLatency=6400, step=1 link carries
// (6400 batches). The shift variant is the pre-fix implementation kept
// inline for comparison; each of its pops moves the whole queue.
func BenchmarkChannelPop(b *testing.B) {
	const depth = 6400
	b.Run("ring", func(b *testing.B) {
		var r batchRing
		for i := 0; i < depth; i++ {
			r.push(token.NewBatch(1))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.push(r.pop())
		}
	})
	b.Run("shift", func(b *testing.B) {
		queue := make([]*token.Batch, 0, depth+1)
		for i := 0; i < depth; i++ {
			queue = append(queue, token.NewBatch(1))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			batch := queue[0]
			copy(queue, queue[1:])
			queue = queue[:len(queue)-1]
			queue = append(queue, batch)
		}
	})
}

// BenchmarkHighLatencyLink runs a whole topology at LinkLatency=6400 with
// the step forced to 1, so every channel holds 6400 in-flight batches and
// each round pops from that depth. Before the ring fix, channel.pop's
// copy-shift made this O(latency) per round; the benchmark exists to keep
// that from regressing.
func BenchmarkHighLatencyLink(b *testing.B) {
	const latency = 6400
	r := NewRunner()
	a := &echo{name: "a"}
	z := &echo{name: "z"}
	r.Add(a)
	r.Add(z)
	if err := r.Connect(a, 0, z, 0, latency); err != nil {
		b.Fatal(err)
	}
	if err := r.SetStepOverride(1); err != nil {
		b.Fatal(err)
	}
	// Prime past build and the first full latency window.
	if err := r.Run(latency); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := r.Run(clock.Cycles(b.N)); err != nil {
		b.Fatal(err)
	}
}
