package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/manager"
	"repro/internal/snapshot"
	"repro/internal/stats"
)

// firesim snap — whole-cluster checkpoint/restore.
//
// A checkpoint captures every stateful layer of a deployed simulation
// (token runner, nodes, switches) into one versioned stream. Restoring it
// into a fresh deployment of the same topology replays the exact same
// future, so `snap verify` can prove determinism end to end: run N
// cycles, checkpoint, run M more, then restore and re-run the same M —
// the two final states must hash identically.
func cmdSnap(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("snap needs a subcommand: save, restore, inspect or verify")
	}
	switch args[0] {
	case "save":
		return cmdSnapSave(args[1:])
	case "restore":
		return cmdSnapRestore(args[1:])
	case "inspect":
		return cmdSnapInspect(args[1:])
	case "verify":
		return cmdSnapVerify(args[1:])
	default:
		return fmt.Errorf("snap: unknown subcommand %q (want save, restore, inspect or verify)", args[0])
	}
}

// snapFlags are the deployment parameters shared by the snap subcommands
// that build a cluster. Restore must be given the same values that
// produced the checkpoint — the topology hash check refuses anything else.
type snapFlags struct {
	nodes     *int
	latencyUs *float64
	seed      *uint64
}

func addSnapFlags(fs *flag.FlagSet) *snapFlags {
	return &snapFlags{
		nodes:     fs.Int("nodes", 4, "servers on the rack"),
		latencyUs: fs.Float64("latency-us", 2, "link latency in microseconds"),
		seed:      fs.Uint64("seed", 42, "address-assignment seed"),
	}
}

func (f *snapFlags) deploy() (*core.Cluster, error) {
	clk := clock.New(clock.DefaultTargetClock)
	return core.Deploy(core.Rack("tor0", *f.nodes, core.QuadCore), core.DeployConfig{
		LinkLatency: clk.CyclesInMicros(*f.latencyUs),
		Seed:        *f.seed,
	})
}

func (f *snapFlags) topo() *core.Topology {
	return core.Rack("tor0", *f.nodes, core.QuadCore)
}

func (f *snapFlags) config() core.DeployConfig {
	clk := clock.New(clock.DefaultTargetClock)
	return core.DeployConfig{
		LinkLatency: clk.CyclesInMicros(*f.latencyUs),
		Seed:        *f.seed,
	}
}

// startRing drives pure data-plane load (node i streams to node i+1 in a
// ring). Raw streams keep every node quiescent — checkpointable at any
// batch boundary — while still exercising the switch and every link.
func startRing(c *core.Cluster) {
	n := len(c.Servers)
	for i, s := range c.Servers {
		s.StartRawStream(100, c.Servers[(i+1)%n].MAC(), 256, 1.0, 1<<30)
	}
}

func cmdSnapSave(args []string) error {
	fs := flag.NewFlagSet("snap save", flag.ExitOnError)
	sf := addSnapFlags(fs)
	cycles := fs.Int64("cycles", 65536, "target cycles to run before checkpointing")
	out := fs.String("out", "firesim.snap", "checkpoint file to write")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c, err := sf.deploy()
	if err != nil {
		return err
	}
	startRing(c)
	if err := c.RunFor(clock.Cycles(*cycles)); err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := c.Checkpoint(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	info, err := os.Stat(*out)
	if err != nil {
		return err
	}
	hash, err := c.StateHash()
	if err != nil {
		return err
	}
	fmt.Printf("checkpointed %d nodes at cycle %d to %s (%d bytes)\n",
		len(c.Servers), c.Runner.Cycle(), *out, info.Size())
	fmt.Printf("topology hash %#x, state hash %#x\n", c.TopoHash, hash)
	return nil
}

func cmdSnapRestore(args []string) error {
	fs := flag.NewFlagSet("snap restore", flag.ExitOnError)
	sf := addSnapFlags(fs)
	in := fs.String("in", "firesim.snap", "checkpoint file to restore")
	extra := fs.Int64("extra", 65536, "target cycles to run after restoring")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	c, err := manager.RestoreCluster(f, sf.topo(), sf.config())
	if err != nil {
		return err
	}
	fmt.Printf("restored %d nodes at cycle %d from %s\n", len(c.Servers), c.Runner.Cycle(), *in)
	if *extra > 0 {
		if err := c.RunFor(clock.Cycles(*extra)); err != nil {
			return err
		}
	}
	hash, err := c.StateHash()
	if err != nil {
		return err
	}
	fmt.Printf("now at cycle %d, state hash %#x\n", c.Runner.Cycle(), hash)
	return nil
}

func cmdSnapInspect(args []string) error {
	fs := flag.NewFlagSet("snap inspect", flag.ExitOnError)
	in := fs.String("in", "firesim.snap", "checkpoint file to inspect")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	h, sections, err := snapshot.Inspect(f)
	if err != nil {
		return err
	}
	fmt.Printf("%s: snapshot v%d, topology %#x, cycle %d, step %d, %d sections\n",
		*in, snapshot.Version, h.TopologyHash, h.Cycle, h.Step, len(sections))
	t := stats.NewTable("Section", "Bytes")
	total := 0
	for _, s := range sections {
		t.AddRow(s.Name, s.Bytes)
		total += s.Bytes
	}
	t.AddRow("(total payload)", total)
	fmt.Print(t.String())
	return nil
}

// cmdSnapVerify is the self-contained determinism proof: run N cycles,
// checkpoint, run M more and hash; then restore the checkpoint into a
// fresh deployment, re-run the same M, and require bit-identical state.
func cmdSnapVerify(args []string) error {
	fs := flag.NewFlagSet("snap verify", flag.ExitOnError)
	sf := addSnapFlags(fs)
	cycles := fs.Int64("cycles", 65536, "target cycles before the checkpoint")
	extra := fs.Int64("extra", 65536, "target cycles replayed on both sides of the checkpoint")
	parallel := fs.Bool("parallel", false, "replay with the worker-pool parallel runner")
	if err := fs.Parse(args); err != nil {
		return err
	}

	advance := func(c *core.Cluster, cycles clock.Cycles) error {
		if *parallel {
			return c.Runner.RunParallel(cycles)
		}
		return c.Runner.Run(cycles)
	}

	c1, err := sf.deploy()
	if err != nil {
		return err
	}
	// Round both phases up to whole runner steps (checkpoints exist only
	// at batch boundaries).
	roundUp := func(v int64) clock.Cycles {
		n := clock.Cycles(v)
		step := c1.Runner.Step()
		if rem := n % step; rem != 0 {
			n += step - rem
		}
		return n
	}
	runN, runM := roundUp(*cycles), roundUp(*extra)
	startRing(c1)
	if err := advance(c1, runN); err != nil {
		return err
	}
	var ck bytes.Buffer
	if err := c1.Checkpoint(&ck); err != nil {
		return err
	}
	if err := advance(c1, runM); err != nil {
		return err
	}
	var final1 bytes.Buffer
	if err := c1.Checkpoint(&final1); err != nil {
		return err
	}

	c2, err := manager.RestoreCluster(bytes.NewReader(ck.Bytes()), sf.topo(), sf.config())
	if err != nil {
		return err
	}
	if err := advance(c2, runM); err != nil {
		return err
	}
	var final2 bytes.Buffer
	if err := c2.Checkpoint(&final2); err != nil {
		return err
	}

	mode := "sequential"
	if *parallel {
		mode = "parallel"
	}
	fmt.Printf("checkpoint at cycle %d (%d bytes), replayed %d cycles twice (%s runner)\n",
		runN, ck.Len(), runM, mode)
	if !bytes.Equal(final1.Bytes(), final2.Bytes()) {
		return fmt.Errorf("snap verify: restored replay diverged (%d vs %d final bytes)",
			final1.Len(), final2.Len())
	}
	fmt.Printf("deterministic: original and restored replays reached bit-identical state at cycle %d\n",
		c1.Runner.Cycle())
	return nil
}
