package fame

import (
	"fmt"

	"repro/internal/token"
)

// Multiplex is a FAME-5-style host multithreading wrapper: it maps several
// target models onto one simulated physical pipeline. The paper describes
// this as a way to "further increase the number of simulated nodes ... at
// the cost of simulation performance and reduced physical memory per
// simulated core".
//
// Multiplex exposes the concatenation of its children's ports. Each
// TickBatch, it advances the children one after another on the shared host
// resource; functionally the composite is indistinguishable from the
// children running side by side (verified by tests), while the host cost of
// a tick grows with the number of children — which is precisely the FAME-5
// performance trade-off.
type Multiplex struct {
	name     string
	children []Endpoint
	// portBase[i] is the index of child i's first port within the
	// composite port space.
	portBase []int
	numPorts int
}

// NewMultiplex wraps the given endpoints into one host pipeline.
func NewMultiplex(name string, children ...Endpoint) *Multiplex {
	if len(children) == 0 {
		panic("fame: Multiplex needs at least one child")
	}
	m := &Multiplex{name: name, children: children}
	for _, c := range children {
		m.portBase = append(m.portBase, m.numPorts)
		m.numPorts += c.NumPorts()
	}
	return m
}

// Name implements Endpoint.
func (m *Multiplex) Name() string { return m.name }

// NumPorts implements Endpoint; it is the sum of all child port counts.
func (m *Multiplex) NumPorts() int { return m.numPorts }

// PortOf translates (child index, child port) to a composite port index,
// for wiring the multiplexed node into a Runner.
func (m *Multiplex) PortOf(child, port int) int {
	if child < 0 || child >= len(m.children) {
		panic(fmt.Sprintf("fame: multiplex child %d out of range", child))
	}
	if port < 0 || port >= m.children[child].NumPorts() {
		panic(fmt.Sprintf("fame: port %d out of range for child %d", port, child))
	}
	return m.portBase[child] + port
}

// TickBatch implements Endpoint by time-multiplexing the children over the
// shared pipeline.
func (m *Multiplex) TickBatch(n int, in, out []*token.Batch) {
	for i, c := range m.children {
		base := m.portBase[i]
		np := c.NumPorts()
		c.TickBatch(n, in[base:base+np], out[base:base+np])
	}
}
