package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/token"
)

// Wire codec v3: run-length-encoded batch frames.
//
// The v2 codec (transport.go, kept as the compatibility oracle) spends 13
// bytes per occupied slot — a 4-byte absolute offset, 8 data bytes and a
// flag byte — plus a fixed 16-byte header per frame, and issues one
// buffered Write per slot. Both common cases waste most of that: an idle
// link ships empty batches (16 header bytes for zero payload), and an
// active link ships contiguous bursts whose offsets differ by exactly 1
// with identical flags.
//
// A v3 frame encodes the batch as runs of consecutive slots:
//
//	uvarint seq                         absolute frame sequence number
//	uvarint N                           cycles covered by the batch
//	uvarint runCount                    number of runs that follow
//	per run:
//	  uvarint gap                       run start − end of previous run
//	  uvarint runLen<<1 | lastBit       slots in the run, shared Last flag
//	  runLen × 8-byte big-endian data   one word per slot
//
// A run is a maximal span of slots at consecutive offsets sharing one
// Last flag; Valid is implicit (stored tokens are always valid, exactly
// the invariant the v2 decoder enforces). The previous-run end starts at
// offset 0, so gaps are non-negative by construction and overlapping or
// reordered runs are unrepresentable. The sequence number is encoded as
// its absolute value — not a delta — so a retransmitted frame from the
// resend ring is byte-identical to the original transmission.
//
// Costs: an empty batch is 3–4 bytes (vs 16); a dense contiguous batch
// is ~8.2 bytes/slot (vs 13); the whole frame is appended to one scratch
// buffer and written with a single Write.

// maxBatchCycles bounds the decoded N as a sanity check against corrupt
// streams; it matches the v2 codec's implicit uint32 offset ceiling.
const maxBatchCycles = 1 << 32

// appendFrame appends the complete v3 encoding of one sequenced batch
// frame to dst and returns the extended slice. It performs no I/O and no
// allocation beyond growing dst.
func appendFrame(dst []byte, seq uint64, b *token.Batch) []byte {
	dst = binary.AppendUvarint(dst, seq)
	dst = binary.AppendUvarint(dst, uint64(b.N))
	slots := b.Slots
	runs := 0
	for i := 0; i < len(slots); i = runEnd(slots, i) {
		runs++
	}
	dst = binary.AppendUvarint(dst, uint64(runs))
	prev := 0
	for i := 0; i < len(slots); {
		j := runEnd(slots, i)
		start := int(slots[i].Offset)
		dst = binary.AppendUvarint(dst, uint64(start-prev))
		desc := uint64(j-i) << 1
		if slots[i].Tok.Last {
			desc |= 1
		}
		dst = binary.AppendUvarint(dst, desc)
		for k := i; k < j; k++ {
			dst = binary.BigEndian.AppendUint64(dst, slots[k].Tok.Data)
		}
		prev = start + (j - i)
		i = j
	}
	return dst
}

// runEnd returns the index one past the maximal run starting at i: slots
// at consecutive offsets sharing the Last flag of slots[i].
func runEnd(slots []token.Slot, i int) int {
	j := i + 1
	for j < len(slots) && slots[j].Offset == slots[j-1].Offset+1 && slots[j].Tok.Last == slots[i].Tok.Last {
		j++
	}
	return j
}

// readFrameSeq reads a frame's leading sequence number. io.EOF before the
// first byte is a clean close and passes through; a stream ending inside
// the varint is a torn frame and surfaces as io.ErrUnexpectedEOF (which
// binary.ReadUvarint already maps).
func readFrameSeq(r *bufio.Reader) (uint64, error) {
	return binary.ReadUvarint(r)
}

// readBatchV3 decodes a v3 batch body (everything after the sequence
// number) from r into dst, which is Reset first. Malformed input — zero-
// length runs, slot totals past N or the occupancy ceiling, truncated
// varints or data words — returns an error and never panics; io.EOF
// mid-body surfaces as io.ErrUnexpectedEOF because the frame's sequence
// number was already consumed. The decode is allocation-free once dst's
// slot capacity has warmed up.
func readBatchV3(r *bufio.Reader, dst *token.Batch) error {
	nv, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("transport: read batch cycles: %w", tornEOF(err))
	}
	if nv == 0 || nv > maxBatchCycles {
		return fmt.Errorf("transport: corrupt batch: covers %d cycles", nv)
	}
	n := int(nv)
	runs, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("transport: read run count: %w", tornEOF(err))
	}
	// Every run carries at least one slot, so the run count is bounded by
	// the same occupancy ceiling as the slots themselves.
	if runs > maxSlots {
		return fmt.Errorf("transport: corrupt batch: %d runs", runs)
	}
	dst.Reset(n)
	next := 0 // one past the previous run's end
	total := 0
	for ri := uint64(0); ri < runs; ri++ {
		gap, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("transport: read run gap: %w", tornEOF(err))
		}
		desc, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("transport: read run descriptor: %w", tornEOF(err))
		}
		runLen := desc >> 1
		last := desc&1 != 0
		if runLen == 0 {
			return fmt.Errorf("transport: corrupt batch: empty run %d", ri)
		}
		if gap > uint64(n) || runLen > uint64(n) {
			return fmt.Errorf("transport: corrupt batch: run %d at gap %d, length %d exceeds %d cycles", ri, gap, runLen, n)
		}
		start := next + int(gap)
		end := start + int(runLen)
		if end > n {
			return fmt.Errorf("transport: corrupt batch: run %d spans [%d,%d) past %d cycles", ri, start, end, n)
		}
		total += int(runLen)
		if total > maxSlots {
			return fmt.Errorf("transport: corrupt batch: %d slots", total)
		}
		for off := start; off < end; off++ {
			p, err := r.Peek(8)
			if err != nil {
				return fmt.Errorf("transport: read run data: %w", tornEOF(err))
			}
			dst.Put(off, token.Token{
				Data:  binary.BigEndian.Uint64(p),
				Valid: true,
				Last:  last,
			})
			r.Discard(8)
		}
		next = end
	}
	return nil
}

// tornEOF maps a clean EOF inside a frame body to io.ErrUnexpectedEOF:
// the caller has already consumed part of the frame, so the stream ending
// here is a truncation, not a graceful close.
func tornEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
