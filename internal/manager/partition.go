// Partitioned deployment for multi-process runs. The full cluster is cut
// at a configurable tree level (ClusterSpec.CutLevel): every link from a
// switch above the cut to a subtree below it is severed, each severed
// subtree is a partition UNIT, a shard process hosts one or more units,
// and the coordinator hosts every switch above the cut (just the root
// switch at the default level 1; root plus aggregation switches at level
// 2, which shards the paper's 1024-node tree into 32 ToR units regardless
// of the root's radix). Every cut link of latency L is split into two
// half-links of L/2 — one in each process — joined by a transport.Bridge
// pair whose synchronous batch exchange contributes zero target latency,
// so the end-to-end latency every token observes is exactly L and the
// partitioned simulation is bit-identical to a whole-cluster Deploy (the
// paper's token-protocol guarantee, stretched across process
// boundaries). The star shape means shards only ever dial the
// coordinator: no shard↔shard connections to manage or to fail.
//
// Identity comes from the same assignment passes Deploy runs
// (assignIdentities/assignSwitchNames) executed over the FULL tree in
// every process, so names, MACs, IPs, seeds and MAC tables agree
// everywhere without any cross-process negotiation.
package manager

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/clock"
	"repro/internal/fame"
	"repro/internal/snapshot"
	"repro/internal/softstack"
	"repro/internal/switchmodel"
	"repro/internal/transport"
)

// RootUnit is the pseudo-unit id of the coordinator's root partition in
// store/checkpoint APIs (real units are cut indices >= 0, in CutUnits
// order).
const RootUnit = -1

// CutUnits enumerates the subtree roots of every partition unit a cut at
// cutLevel produces, in deterministic pre-order. The cut severs every
// link from a depth cutLevel-1 switch down to its subtrees; a server
// hanging above the cut level becomes its own single-node unit, so the
// coordinator's partition always contains only switches. cutLevel <= 1
// reproduces the historical root-downlink units (one unit per root
// downlink, numbered by port).
func CutUnits(root *SwitchNode, cutLevel int) []TopoNode {
	if cutLevel < 1 {
		cutLevel = 1
	}
	var units []TopoNode
	var walk func(s *SwitchNode, depth int)
	walk = func(s *SwitchNode, depth int) {
		for _, d := range s.Downlinks {
			sub, isSwitch := d.(*SwitchNode)
			if !isSwitch || depth+1 >= cutLevel {
				units = append(units, d)
				continue
			}
			walk(sub, depth+1)
		}
	}
	walk(root, 0)
	return units
}

// UnitName names a partition unit for bridges, stores and diagnostics.
func UnitName(unit int) string {
	if unit == RootUnit {
		return "root"
	}
	return fmt.Sprintf("sub%d", unit)
}

// Partition is one process's slice of a partitioned cluster: either the
// coordinator's root partition (the root switch plus one down-bridge per
// unit) or a shard partition (one or more fully instantiated subtrees,
// each with an up-bridge toward the root).
type Partition struct {
	Runner      *fame.Runner
	Servers     []*softstack.Node
	Switches    []*switchmodel.Switch
	Bridges     map[int]*transport.Bridge // unit → bridge endpoint
	Units       []int                     // real units hosted (shard) or bridged (root)
	IsRoot      bool
	TopoHash    uint64 // full-tree hash: both sides of every bridge carry it
	Step        clock.Cycles
	LinkLatency clock.Cycles
	parallel    bool

	comps       map[string]snapshot.Snapshotter // "node/x" / "switch/x"
	unitComps   map[int][]string                // unit → sorted component section names
	unitMembers map[int]map[string]bool         // unit → endpoint names (incl. bridge)
}

// BuildPartition instantiates the slice of spec's cluster given by
// units. nil units builds the ROOT partition. Bridges are created
// detached (no connection); attach each with AttachBridge once the token
// plane is dialed. bridgeTimeout bounds every token batch read — it must
// comfortably exceed the coordinator's watchdog deadlines, so failures
// are detected by supervision (and the token conns actively closed), not
// by every healthy bridge timing out first.
func BuildPartition(spec ClusterSpec, units []int, bridgeTimeout time.Duration) (*Partition, error) {
	root, cfg, err := spec.Topology()
	if err != nil {
		return nil, err
	}
	cfg = normalizeConfig(cfg)
	if cfg.LinkLatency%2 != 0 {
		return nil, fmt.Errorf("manager: partition: link latency %d must be even (cut links split into halves)", cfg.LinkLatency)
	}
	half := cfg.LinkLatency / 2
	ids := assignIdentities(root, cfg)
	topoHash := TopologyHash(root, cfg)

	p := &Partition{
		Runner:      fame.NewRunner(),
		Bridges:     make(map[int]*transport.Bridge),
		IsRoot:      len(units) == 0,
		TopoHash:    topoHash,
		LinkLatency: cfg.LinkLatency,
		parallel:    spec.Parallel,
		comps:       make(map[string]snapshot.Snapshotter),
		unitComps:   make(map[int][]string),
		unitMembers: make(map[int]map[string]bool),
	}
	if err := p.Runner.SetWorkers(cfg.Workers); err != nil {
		return nil, err
	}
	newBridge := func(name string) *transport.Bridge {
		return transport.NewBridgeConfig(name, nil, transport.BridgeConfig{
			ReadTimeout:  bridgeTimeout,
			TopologyHash: topoHash,
		})
	}

	cuts := CutUnits(root, spec.CutLevel)
	cutLevel := spec.CutLevel
	if cutLevel < 1 {
		cutLevel = 1
	}

	if p.IsRoot {
		// Root partition: every switch above the cut, joined by
		// full-latency internal links, with one half-link bridge per cut
		// point. Uplink -1 at the root (its MAC table maps every server
		// to a downlink port); retained inner switches keep their uplink
		// port toward their parent exactly as a whole-cluster Deploy
		// wires them, so checkpoint sections stay interchangeable.
		members := make(map[string]bool)
		var sections []string
		nextCut := 0
		var buildAbove func(s *SwitchNode, depth int) (*switchmodel.Switch, int, error)
		buildAbove = func(s *SwitchNode, depth int) (*switchmodel.Switch, int, error) {
			uplink := -1
			ports := len(s.Downlinks)
			if depth > 0 {
				uplink = len(s.Downlinks)
				ports++
			}
			sw := switchmodel.New(switchmodel.Config{
				Name:             s.Name,
				Ports:            ports,
				SwitchingLatency: cfg.SwitchingLatency,
			})
			setMACTable(sw, s, ids, uplink)
			p.Runner.Add(sw)
			p.Switches = append(p.Switches, sw)
			sec := "switch/" + sw.Name()
			p.comps[sec] = sw
			sections = append(sections, sec)
			members[sw.Name()] = true
			for i, d := range s.Downlinks {
				child, isSwitch := d.(*SwitchNode)
				if !isSwitch || depth+1 >= cutLevel {
					// Cut point: this subtree is a shard-hosted unit.
					// Enumeration order matches CutUnits (same DFS).
					unit := nextCut
					nextCut++
					br := newBridge("down/" + UnitName(unit))
					p.Runner.Add(br)
					if err := p.Runner.Connect(br, 0, sw, i, half); err != nil {
						return nil, 0, err
					}
					p.Bridges[unit] = br
					p.Units = append(p.Units, unit)
					members[br.Name()] = true
					continue
				}
				cs, cup, err := buildAbove(child, depth+1)
				if err != nil {
					return nil, 0, err
				}
				if err := p.Runner.Connect(cs, cup, sw, i, cfg.LinkLatency); err != nil {
					return nil, 0, err
				}
			}
			return sw, uplink, nil
		}
		if _, _, err := buildAbove(root, 0); err != nil {
			return nil, err
		}
		sort.Strings(sections)
		p.unitComps[RootUnit] = sections
		p.unitMembers[RootUnit] = members
	} else {
		seen := make(map[int]bool)
		for _, unit := range units {
			if unit < 0 || unit >= len(cuts) {
				return nil, fmt.Errorf("manager: partition: unit %d out of range (cut level %d yields %d units)", unit, cutLevel, len(cuts))
			}
			if seen[unit] {
				return nil, fmt.Errorf("manager: partition: unit %d assigned twice", unit)
			}
			seen[unit] = true
			members := make(map[string]bool)
			var sections []string

			addNode := func(v *ServerNode) (*softstack.Node, error) {
				id := ids.bySpec[v]
				n := id.instantiate(cfg)
				seedStaticARP([]*softstack.Node{n}, ids.arp)
				p.Runner.Add(n)
				p.Servers = append(p.Servers, n)
				sec := "node/" + n.Name()
				p.comps[sec] = n
				sections = append(sections, sec)
				members[n.Name()] = true
				return n, nil
			}
			var buildSub func(s *SwitchNode) (*switchmodel.Switch, int, error)
			buildSub = func(s *SwitchNode) (*switchmodel.Switch, int, error) {
				uplink := len(s.Downlinks)
				sw := switchmodel.New(switchmodel.Config{
					Name:             s.Name,
					Ports:            uplink + 1,
					SwitchingLatency: cfg.SwitchingLatency,
				})
				setMACTable(sw, s, ids, uplink)
				p.Runner.Add(sw)
				p.Switches = append(p.Switches, sw)
				sec := "switch/" + sw.Name()
				p.comps[sec] = sw
				sections = append(sections, sec)
				members[sw.Name()] = true
				for i, d := range s.Downlinks {
					switch v := d.(type) {
					case *ServerNode:
						n, err := addNode(v)
						if err != nil {
							return nil, 0, err
						}
						if err := p.Runner.Connect(n, 0, sw, i, cfg.LinkLatency); err != nil {
							return nil, 0, err
						}
					case *SwitchNode:
						child, childUp, err := buildSub(v)
						if err != nil {
							return nil, 0, err
						}
						if err := p.Runner.Connect(child, childUp, sw, i, cfg.LinkLatency); err != nil {
							return nil, 0, err
						}
					}
				}
				return sw, uplink, nil
			}

			br := newBridge("up/" + UnitName(unit))
			p.Runner.Add(br)
			p.Bridges[unit] = br
			members[br.Name()] = true
			switch v := cuts[unit].(type) {
			case *ServerNode:
				n, err := addNode(v)
				if err != nil {
					return nil, err
				}
				if err := p.Runner.Connect(n, 0, br, 0, half); err != nil {
					return nil, err
				}
			case *SwitchNode:
				top, up, err := buildSub(v)
				if err != nil {
					return nil, err
				}
				if err := p.Runner.Connect(top, up, br, 0, half); err != nil {
					return nil, err
				}
			default:
				return nil, fmt.Errorf("manager: partition: unit %d has unknown node type %T", unit, cuts[unit])
			}
			sort.Strings(sections)
			p.unitComps[unit] = sections
			p.unitMembers[unit] = members
			p.Units = append(p.Units, unit)
		}
		if spec.Workload != nil {
			if err := spec.Workload.Apply(ids.servers); err != nil {
				return nil, err
			}
		}
	}

	p.Step = p.Runner.Step()
	if p.Step != half {
		return nil, fmt.Errorf("manager: partition: step %d, want half-link %d", p.Step, half)
	}
	return p, nil
}

// AttachBridge binds a unit's bridge to a live token connection,
// resuming the batch sequence at the given cycle (a bridge exchanges one
// batch per Step).
func (p *Partition) AttachBridge(unit int, conn io.ReadWriter, cycle uint64) error {
	br, ok := p.Bridges[unit]
	if !ok {
		return fmt.Errorf("manager: partition: no bridge for unit %d", unit)
	}
	br.Reset(conn, cycle/uint64(p.Step))
	return nil
}

// CloseBridges closes every bridge (and its connection), unblocking any
// in-flight token exchange immediately.
func (p *Partition) CloseBridges() {
	for _, br := range p.Bridges {
		br.Close()
	}
}

// BridgeErr returns the first latched bridge error, if any — checked
// after every slice, because a dead bridge degrades to silence rather
// than halting the runner.
func (p *Partition) BridgeErr() error {
	units := append([]int(nil), p.Units...)
	sort.Ints(units)
	for _, u := range units {
		if err := p.Bridges[u].Err(); err != nil {
			return err
		}
	}
	return nil
}

// RunSlice advances the partition by the given cycles (a multiple of
// Step), using the scheduler the spec selects, and then surfaces any
// bridge failure the slice swallowed.
func (p *Partition) RunSlice(cycles clock.Cycles) error {
	var err error
	if p.parallel {
		err = p.Runner.RunParallel(cycles)
	} else {
		err = p.Runner.Run(cycles)
	}
	if err != nil {
		return err
	}
	return p.BridgeErr()
}

// storeUnit resolves which checkpoint-unit id covers local state: the
// root partition checkpoints as one pseudo-unit, shards per real unit.
func (p *Partition) storeUnits() []int {
	if p.IsRoot {
		return []int{RootUnit}
	}
	return append([]int(nil), p.Units...)
}

// SaveUnit streams one unit's checkpoint: a header stamped with the full
// tree's hash, one section per component, and the unit's in-flight
// channel tokens (keyed by endpoint name, so the stream survives the
// unit moving to a process hosting a different unit mix).
func (p *Partition) SaveUnit(w io.Writer, unit int) error {
	sections, ok := p.unitComps[unit]
	if !ok {
		return fmt.Errorf("manager: partition: unit %d not hosted here", unit)
	}
	sw, err := snapshot.NewWriter(w, snapshot.Header{
		TopologyHash: p.TopoHash,
		Cycle:        uint64(p.Runner.Cycle()),
		Step:         uint64(p.Step),
	})
	if err != nil {
		return err
	}
	for _, sec := range sections {
		sw.Section(sec)
		if err := p.comps[sec].Save(sw); err != nil {
			return err
		}
	}
	sw.Section("links")
	members := p.unitMembers[unit]
	if err := p.Runner.SaveChannels(sw, func(name string) bool { return members[name] }); err != nil {
		return err
	}
	return sw.Close()
}

// RestoreUnit loads one unit's checkpoint into the hosted topology and
// returns the cycle it was taken at. It does NOT move target time: after
// restoring every hosted unit to the same cycle, finish with
// Runner.SetCycle — split so a multi-unit shard restores unit by unit.
func (p *Partition) RestoreUnit(data []byte, unit int) (uint64, error) {
	members, ok := p.unitMembers[unit]
	if !ok {
		return 0, fmt.Errorf("manager: partition: unit %d not hosted here", unit)
	}
	rd, h, err := snapshot.NewReader(bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	if h.TopologyHash != p.TopoHash {
		return 0, fmt.Errorf("manager: partition: checkpoint topology hash %#x, deployment %#x", h.TopologyHash, p.TopoHash)
	}
	if h.Step != uint64(p.Step) {
		return 0, fmt.Errorf("manager: partition: checkpoint step %d, partition step %d", h.Step, p.Step)
	}
	restored := make(map[string]bool)
	for {
		name, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, err
		}
		if restored[name] {
			return 0, fmt.Errorf("manager: partition: checkpoint repeats section %q", name)
		}
		if name == "links" {
			if err := p.Runner.RestoreChannels(rd, func(n string) bool { return members[n] }); err != nil {
				return 0, err
			}
		} else {
			s, ok := p.comps[name]
			if !ok {
				return 0, fmt.Errorf("manager: partition: checkpoint section %q not hosted here", name)
			}
			if err := s.Restore(rd); err != nil {
				return 0, err
			}
		}
		restored[name] = true
	}
	if !restored["links"] {
		return 0, fmt.Errorf("manager: partition: checkpoint missing links section")
	}
	for _, sec := range p.unitComps[unit] {
		if !restored[sec] {
			return 0, fmt.Errorf("manager: partition: checkpoint missing section %q", sec)
		}
	}
	return h.Cycle, nil
}

// UnitHashes digests every hosted component's full serialized state —
// keyed "node/x"/"switch/x", the same keys Cluster.ComponentHashes
// produces — so a distributed run's state can be compared bit-for-bit
// against a whole-cluster reference regardless of how units were packed
// onto processes.
func (p *Partition) UnitHashes() (map[string]uint64, error) {
	out := make(map[string]uint64, len(p.comps))
	for sec, s := range p.comps {
		h, err := componentHash(p.TopoHash, p.Runner.Cycle(), sec, s)
		if err != nil {
			return nil, fmt.Errorf("manager: hash %q: %w", sec, err)
		}
		out[sec] = h
	}
	return out, nil
}
