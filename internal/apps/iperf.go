package apps

import (
	"math"

	"repro/internal/clock"
	"repro/internal/ethernet"
	"repro/internal/softstack"
)

// mathLog hides the math import behind the name used by the mutilate
// arrival process.
func mathLog(x float64) float64 { return math.Log(x) }

// IperfPort is the iperf3 control/data port.
const IperfPort = 5201

// MTU is the standard Ethernet payload budget used by the stream.
const MTU = 1500

// IperfServer counts stream bytes delivered to userspace.
type IperfServer struct {
	node *softstack.Node
	// Bytes is the total payload received.
	Bytes uint64
	// FirstAt/LastAt bracket the receive window for throughput math.
	FirstAt, LastAt clock.Cycles
}

// NewIperfServer installs a receiver on the node.
func NewIperfServer(n *softstack.Node) *IperfServer {
	s := &IperfServer{node: n}
	n.HandleUDP(IperfPort, func(now clock.Cycles, src ethernet.IP, srcPort uint16, payload []byte) {
		if s.Bytes == 0 {
			s.FirstAt = now
		}
		s.Bytes += uint64(len(payload))
		s.LastAt = now
	})
	return s
}

// GoodputGbps reports the payload throughput over the receive window.
func (s *IperfServer) GoodputGbps() float64 {
	if s.LastAt <= s.FirstAt || s.Bytes == 0 {
		return 0
	}
	seconds := float64(s.LastAt-s.FirstAt) / float64(s.node.Clock().Freq())
	return float64(s.Bytes) * 8 / seconds / 1e9
}

// IperfClient streams MTU-sized datagrams as fast as the modeled kernel
// lets one sender thread go: each packet costs KernelTX plus a syscall of
// CPU time, which is exactly the bottleneck the paper identifies ("the
// relatively slow single-issue in-order Rocket processor running the
// network stack in software").
type IperfClient struct {
	node   *softstack.Node
	server ethernet.IP
	thread *softstack.Thread
	stopAt clock.Cycles
	// Sent counts transmitted payload bytes.
	Sent uint64
}

// NewIperfClient installs a sender and schedules the stream over
// [start, start+duration).
func NewIperfClient(n *softstack.Node, server ethernet.IP, start, duration clock.Cycles) *IperfClient {
	c := &IperfClient{node: n, server: server, thread: n.NewThread(-1), stopAt: start + duration}
	n.At(start, func(now clock.Cycles) { c.sendOne(now) })
	return c
}

func (c *IperfClient) sendOne(now clock.Cycles) {
	if now >= c.stopAt {
		return
	}
	costs := c.node.Costs()
	c.thread.Submit(now, softstack.Job{
		Cost: costs.KernelTX + costs.Syscall,
		Fn: func(done clock.Cycles) {
			payload := make([]byte, MTU)
			c.Sent += MTU
			c.node.SendUDPAccounted(done, c.server, IperfPort, IperfPort, payload)
			c.sendOne(done)
		},
	})
}
