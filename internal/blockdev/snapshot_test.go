package blockdev

import (
	"bytes"
	"testing"

	"repro/internal/snapshot"
	"repro/internal/snapshot/snaptest"
)

func TestDeviceSnapshotConformance(t *testing.T) {
	mem := newFakeMem()
	d := New(DefaultConfig(), mem)
	d.WriteSector(3, bytes.Repeat([]byte{0x11}, SectorBytes))
	d.WriteSector(900, bytes.Repeat([]byte{0x22}, SectorBytes))
	// Dispatch a device-to-memory transfer and tick partway through so a
	// tracker is busy at save time.
	d.MMIOStore(RegAddr, 0x2000)
	d.MMIOStore(RegSector, 3)
	d.MMIOStore(RegNSectors, 1)
	d.MMIOStore(RegWrite, 0)
	d.MMIOStore(RegIntrEn, 1)
	if id := d.MMIOLoad(0, RegAlloc); id == NoTracker {
		t.Fatal("no tracker allocated")
	}
	for i := 0; i < 100; i++ {
		d.Tick(0)
	}
	snaptest.RoundTrip(t, d, func() snapshot.Snapshotter {
		return New(DefaultConfig(), newFakeMem())
	})
}
