package faults

import (
	"fmt"
	"sort"

	"repro/internal/clock"
)

// Named scenarios give experiments a shared vocabulary: the manager's
// DeployConfig and the firesim CLI both accept a scenario name, so "run
// the ping benchmark under flaky-links with seed 7" is a complete,
// reproducible experiment description.
//
// Rates are expressed in target cycles at the paper's 3.2 GHz clock; as a
// reference point, 3_200_000 cycles is 1 ms of target time.

// scenarios maps name -> config template (Seed and Horizon are filled in
// by the caller).
var scenarios = map[string]Config{
	// flaky-links: links go completely dark for tens of microseconds every
	// few milliseconds, the classic marginal-optics failure.
	"flaky-links": {
		LinkFlap: Burst{MeanEvery: 6_400_000, MeanDuration: 64_000},
	},
	// lossy: short bursts of packet loss, as from a congested or
	// error-prone path.
	"lossy": {
		PacketDrop: Burst{MeanEvery: 1_600_000, MeanDuration: 8_000},
	},
	// bit-rot: occasional short windows of payload corruption.
	"bit-rot": {
		Corrupt: Burst{MeanEvery: 3_200_000, MeanDuration: 3_200},
	},
	// brownout: switch egress ports stall for hundreds of microseconds,
	// modeling head-of-line blocking or a wedged egress scheduler.
	"brownout": {
		PortStall: Burst{MeanEvery: 9_600_000, MeanDuration: 640_000},
	},
	// node-freeze: whole nodes hang for about a millisecond at a time.
	"node-freeze": {
		NodeFreeze: Burst{MeanEvery: 16_000_000, MeanDuration: 3_200_000},
	},
	// chaos: everything at once, at reduced per-class rates.
	"chaos": {
		LinkFlap:   Burst{MeanEvery: 12_800_000, MeanDuration: 32_000},
		PacketDrop: Burst{MeanEvery: 6_400_000, MeanDuration: 6_400},
		Corrupt:    Burst{MeanEvery: 12_800_000, MeanDuration: 3_200},
		PortStall:  Burst{MeanEvery: 19_200_000, MeanDuration: 320_000},
		NodeFreeze: Burst{MeanEvery: 32_000_000, MeanDuration: 1_600_000},
	},
}

// Scenarios lists the registered scenario names in sorted order.
func Scenarios() []string {
	names := make([]string, 0, len(scenarios))
	for n := range scenarios {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Scenario returns the config for a named scenario with the given seed and
// horizon (zero horizon means DefaultHorizon). The empty name returns a
// disabled config, so callers can thread an optional flag straight
// through.
func Scenario(name string, seed uint64, horizon clock.Cycles) (Config, error) {
	if name == "" || name == "none" {
		return Config{Scenario: "none", Seed: seed, Horizon: horizon}, nil
	}
	cfg, ok := scenarios[name]
	if !ok {
		return Config{}, fmt.Errorf("faults: unknown scenario %q (have %v)", name, Scenarios())
	}
	cfg.Scenario = name
	cfg.Seed = seed
	cfg.Horizon = horizon
	return cfg, nil
}
