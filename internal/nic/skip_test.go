package nic

import (
	"bytes"
	"testing"

	"repro/internal/clock"
	"repro/internal/snapshot"
	"repro/internal/token"
)

func nicState(t *testing.T, n *NIC) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := snapshot.NewWriter(&buf, snapshot.Header{})
	if err != nil {
		t.Fatal(err)
	}
	w.Section("nic")
	if err := n.Save(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSkipIdleMatchesTickLoop checks the arithmetic idle skip against the
// per-cycle Tick loop across rate-limiter shapes, window starts and
// lengths: the full snapshotted state must be bit-identical, and the
// skipped window must produce no output tokens.
func TestSkipIdleMatchesTickLoop(t *testing.T) {
	cases := []struct {
		k, p   uint32
		warm   int // ticks before the window, to vary rateCounter
		start  clock.Cycles
		count  int
		masked uint64 // intrMask, to vary static controller state
	}{
		{1, 1, 0, 0, 1, 0},
		{1, 1, 3, 3, 100, IntrSend},
		{3, 7, 0, 0, 50, 0},
		{3, 7, 5, 5, 1, 0},
		{3, 7, 5, 5, 6, IntrRecv},
		{2, 5, 1, 1, 9999, 0},
		{5, 400, 13, 13, 12345, IntrSend | IntrRecv},
	}
	for _, tc := range cases {
		loop := New(DefaultConfig(0xaa), nil)
		skip := New(DefaultConfig(0xaa), nil)
		for _, n := range []*NIC{loop, skip} {
			n.SetRateLimit(tc.k, tc.p)
			n.MMIOStore(RegIntrMask, tc.masked)
			for i := 0; i < tc.warm; i++ {
				n.Tick(clock.Cycles(i), token.Empty)
			}
			if !n.Quiescent() {
				t.Fatalf("k=%d p=%d: warm NIC not quiescent", tc.k, tc.p)
			}
		}
		for i := 0; i < tc.count; i++ {
			if out := loop.Tick(tc.start+clock.Cycles(i), token.Empty); out.Valid {
				t.Fatalf("k=%d p=%d: idle NIC produced a token", tc.k, tc.p)
			}
		}
		skip.SkipIdle(tc.start, tc.count)
		if a, b := nicState(t, loop), nicState(t, skip); !bytes.Equal(a, b) {
			t.Errorf("k=%d p=%d start=%d count=%d: SkipIdle state diverges from Tick loop (counter %d vs %d)",
				tc.k, tc.p, tc.start, tc.count, loop.rateCounter, skip.rateCounter)
		}
	}
}
