package hostplatform

import (
	"math"
	"testing"

	"repro/internal/clock"
)

func TestUtilizationMatchesPaper(t *testing.T) {
	// Section III-A5: single-node design uses 32.6% of LUTs (14.4 points
	// of custom blade RTL); the 4-node supernode raises blade logic to
	// ~57.7% and total to ~76%.
	single, err := UtilizationFor(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(single.TotalPct()-32.6) > 0.1 {
		t.Errorf("single total = %.1f%%, want 32.6%%", single.TotalPct())
	}
	if math.Abs(single.BladePct-14.4) > 0.1 {
		t.Errorf("single blade = %.1f%%, want 14.4%%", single.BladePct)
	}
	super, err := UtilizationFor(4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(super.BladePct-57.7) > 0.2 {
		t.Errorf("supernode blades = %.1f%%, want ~57.7%%", super.BladePct)
	}
	if math.Abs(super.TotalPct()-76) > 0.5 {
		t.Errorf("supernode total = %.1f%%, want ~76%%", super.TotalPct())
	}
}

func TestUtilizationBounds(t *testing.T) {
	if _, err := UtilizationFor(0); err == nil {
		t.Error("0 nodes per FPGA accepted")
	}
	if _, err := UtilizationFor(5); err == nil {
		t.Error("5 nodes per FPGA accepted (only 4 DRAM channels)")
	}
}

func TestThousandNodeCostArithmetic(t *testing.T) {
	// Section V-C: 32x f1.16xlarge + 5x m4.16xlarge costs ~$100/hour on
	// spot, ~$440/hour on demand, and harnesses ~$12.8M of FPGAs.
	d := NewDeployment()
	d.Add(F1_16XLarge, 32)
	d.Add(M4_16XLarge, 5)

	if got := d.FPGAs(); got != 256 {
		t.Errorf("FPGAs = %d, want 256", got)
	}
	if got := d.FPGAValueUSD(); got != 12_800_000 {
		t.Errorf("FPGA value = $%.0f, want $12.8M", got)
	}
	spot := d.HourlyCost(true)
	if spot < 90 || spot > 110 {
		t.Errorf("spot cost = $%.2f/h, want ~$100", spot)
	}
	onDemand := d.HourlyCost(false)
	if onDemand < 430 || onDemand > 450 {
		t.Errorf("on-demand cost = $%.2f/h, want ~$440", onDemand)
	}
	if d.Instances() != 37 {
		t.Errorf("Instances = %d", d.Instances())
	}
}

func TestRateModelHeadline(t *testing.T) {
	// 1024 nodes, 2us batch (6400 cycles), multi-instance: ~3.4 MHz and
	// under 1000x slowdown from 3.2 GHz.
	m := DefaultRateModel()
	rate := m.Project(1024, 6400, true)
	mhz := float64(rate) / 1e6
	if mhz < 3.0 || mhz > 3.8 {
		t.Errorf("projected rate = %.2f MHz, want ~3.4", mhz)
	}
	slowdown := 3.2e9 / float64(rate)
	if slowdown >= 1000 {
		t.Errorf("slowdown = %.0fx, want < 1000x", slowdown)
	}
}

func TestRateModelShape(t *testing.T) {
	m := DefaultRateModel()
	// Rate must be non-increasing with node count (flat only while the
	// FPGA-clock ceiling binds at small scale) and strictly lower at the
	// far end.
	prev := clock.Hz(math.Inf(1))
	first := m.Project(4, 6400, false)
	for _, nodes := range []int{4, 8, 16, 64, 256, 1024} {
		r := m.Project(nodes, 6400, nodes > 8)
		if r > prev {
			t.Errorf("rate rose with scale: %d nodes -> %v (prev %v)", nodes, r, prev)
		}
		prev = r
	}
	if prev >= first {
		t.Errorf("1024-node rate %v not below small-scale rate %v", prev, first)
	}
	// ...and rise monotonically with link latency (batch size), up to the
	// FPGA clock ceiling.
	prev = 0
	for _, lat := range []clock.Cycles{320, 1600, 6400, 32000, 320000} {
		r := m.Project(64, lat, true)
		if r < prev {
			t.Errorf("rate fell with larger batch: %d -> %v (prev %v)", lat, r, prev)
		}
		prev = r
	}
	// The ceiling binds for very large batches on small clusters.
	if r := m.Project(2, 10_000_000, false); r != m.FPGAClock {
		t.Errorf("rate %v not capped at FPGA clock %v", r, m.FPGAClock)
	}
}

func TestCrossInstancePenalty(t *testing.T) {
	m := DefaultRateModel()
	same := m.Project(64, 6400, false)
	cross := m.Project(64, 6400, true)
	if cross >= same {
		t.Errorf("multi-instance rate %v not below single-instance %v", cross, same)
	}
}

func TestInstanceCatalog(t *testing.T) {
	if F1_16XLarge.FPGAs != 8 || F1_2XLarge.FPGAs != 1 || M4_16XLarge.FPGAs != 0 {
		t.Error("FPGA counts wrong")
	}
	if F1_16XLarge.OnDemandHourly != 13.20 {
		t.Errorf("f1.16xlarge on-demand = %v", F1_16XLarge.OnDemandHourly)
	}
}
