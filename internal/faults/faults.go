// Package faults is the seed-deterministic fault-injection subsystem.
//
// FireSim's token protocol guarantees that a distributed simulation is
// cycle-exact and deterministic (Section III-B2). That same property makes
// failure testing unusually powerful: if faults are injected as a pure
// function of (endpoint, port, target cycle), an entire failure scenario —
// link flaps, packet loss bursts, payload corruption, switch port stalls,
// frozen nodes — replays bit-identically from a single integer seed.
//
// A Plan is a pre-generated schedule of fault events over target time. It
// plugs into the simulation at two points:
//
//   - fame.Runner, via the fame.Injector hook (Plan implements it):
//     events filter the token batches crossing endpoint boundaries;
//   - switchmodel.Switch, via SetStall: PortStall events suppress egress.
//
// Because the schedule is fixed before the first cycle runs and every
// lookup is keyed on target time only, Run and RunParallel — and two
// distributed halves of the same topology — all observe the same faults at
// the same target cycles. Two runs with the same Config produce
// byte-identical schedules (see Encode) and identical post-fault cycle
// counts; this is asserted by tests in this package and in manager.
package faults

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"repro/internal/clock"
	"repro/internal/stats"
	"repro/internal/token"
)

// Kind enumerates the fault classes the subsystem can inject.
type Kind uint8

const (
	// LinkFlap drops every token arriving on one port for the event
	// window, modeling a link that goes dark (optical flap, bad cable).
	LinkFlap Kind = iota
	// PacketDrop drops valid tokens arriving on one port for the window,
	// modeling bursty loss. Dropping mid-packet flits leaves the frame
	// malformed; receivers drop malformed frames silently, like hardware.
	PacketDrop
	// Corrupt XORs a mask into token payloads on one port for the window,
	// modeling bit errors. Corrupt frames fail checksum/parse at the
	// receiver or misroute at the switch.
	Corrupt
	// PortStall freezes one switch egress port for the window; traffic
	// backs up into the output buffer and overflows surface as the
	// switch's ordinary congestion drops.
	PortStall
	// NodeFreeze halts one node for the window: it emits nothing and its
	// arriving tokens are discarded, modeling a hung or crashed host that
	// later recovers.
	NodeFreeze
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case LinkFlap:
		return "link-flap"
	case PacketDrop:
		return "packet-drop"
	case Corrupt:
		return "corrupt"
	case PortStall:
		return "port-stall"
	case NodeFreeze:
		return "node-freeze"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Burst parameterises one fault class: how often bursts start and how long
// they last, per target. Zero MeanEvery disables the class.
type Burst struct {
	// MeanEvery is the mean gap in target cycles between burst starts on
	// one target (gaps are drawn uniformly from [1, 2*MeanEvery]).
	MeanEvery clock.Cycles
	// MeanDuration is the mean burst length in target cycles (drawn
	// uniformly from [1, 2*MeanDuration]).
	MeanDuration clock.Cycles
}

func (b Burst) enabled() bool { return b.MeanEvery > 0 }

// DefaultHorizon bounds generated schedules when Config.Horizon is zero:
// 32M cycles = 10 ms of target time at 3.2 GHz.
const DefaultHorizon clock.Cycles = 32_000_000

// DefaultCorruptMask flips one bit in the MAC header region and one in the
// payload region of a flit, enough to misroute or fail parsing.
const DefaultCorruptMask uint64 = 1<<63 | 1<<5

// Config describes a fault scenario. The zero value injects nothing.
type Config struct {
	// Scenario is a display name (set by the registry; free-form
	// otherwise).
	Scenario string
	// Seed drives all schedule randomness. Identical Config (including
	// Seed) over identical targets yields a byte-identical schedule.
	Seed uint64
	// Horizon bounds the schedule: no event starts at or after it.
	// Zero means DefaultHorizon.
	Horizon clock.Cycles

	// Per-class burst processes.
	LinkFlap   Burst
	PacketDrop Burst
	Corrupt    Burst
	PortStall  Burst
	NodeFreeze Burst

	// CorruptMask is XORed into payloads by Corrupt events (zero means
	// DefaultCorruptMask).
	CorruptMask uint64
}

// Enabled reports whether the config injects any faults at all.
func (c Config) Enabled() bool {
	return c.LinkFlap.enabled() || c.PacketDrop.enabled() || c.Corrupt.enabled() ||
		c.PortStall.enabled() || c.NodeFreeze.enabled()
}

// TargetKind distinguishes injection targets.
type TargetKind uint8

const (
	// NodeTarget is a server blade (link faults on its NIC port, freezes).
	NodeTarget TargetKind = iota
	// SwitchTarget is a switch model (link faults and egress stalls on its
	// ports).
	SwitchTarget
)

// Target is one endpoint faults can be scheduled against. Name must match
// the endpoint name registered with the fame.Runner.
type Target struct {
	Name  string
	Ports int
	Kind  TargetKind
}

// Event is one scheduled fault: Kind applies to Target (and Port, for
// port-scoped kinds; Port is -1 for NodeFreeze) over cycles [Start, End).
type Event struct {
	Kind   Kind
	Target string
	Port   int
	Start  clock.Cycles
	End    clock.Cycles
	Mask   uint64 // corruption mask; zero except for Corrupt events
}

func (e Event) String() string {
	port := fmt.Sprintf("port %d", e.Port)
	if e.Port < 0 {
		port = "all ports"
	}
	return fmt.Sprintf("%s %s %s [%d, %d)", e.Kind, e.Target, port, e.Start, e.End)
}

// overlaps reports whether the event intersects [start, end).
func (e Event) overlaps(start, end clock.Cycles) bool {
	return e.Start < end && start < e.End
}

// splitmix64 is the schedule PRNG: tiny, integer-only (no libm, so the
// schedule is bit-stable across platforms), and seedable per (target,
// kind) stream so one target's schedule does not depend on how many other
// targets exist.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// uniform draws from [1, 2*mean] (mean+0.5 expectation) without floats.
func (s *splitmix64) uniform(mean clock.Cycles) clock.Cycles {
	if mean <= 0 {
		return 1
	}
	return 1 + clock.Cycles(s.next()%uint64(2*mean))
}

func hashName(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// Plan is a generated, immutable fault schedule plus runtime counters.
// It implements fame.Injector; install it with Runner.SetInjector and wire
// switches with StallFunc. All lookups are read-only and safe for the
// parallel scheduler's per-endpoint goroutines.
type Plan struct {
	cfg    Config
	events []Event
	// byEndpoint indexes batch-filter events (everything except
	// PortStall) per target, sorted by Start.
	byEndpoint map[string][]Event
	// stalls indexes PortStall events per switch, sorted by Start.
	stalls   map[string][]Event
	counters *stats.Counters
}

// Generate builds the deterministic schedule for cfg over targets. Target
// order does not matter: each (target, kind) pair gets an independent PRNG
// stream seeded from cfg.Seed and the target's name.
func Generate(cfg Config, targets []Target) (*Plan, error) {
	if cfg.Horizon <= 0 {
		cfg.Horizon = DefaultHorizon
	}
	if cfg.CorruptMask == 0 {
		cfg.CorruptMask = DefaultCorruptMask
	}
	seen := make(map[string]bool, len(targets))
	for _, tg := range targets {
		if tg.Name == "" {
			return nil, fmt.Errorf("faults: target with empty name")
		}
		if tg.Ports <= 0 {
			return nil, fmt.Errorf("faults: target %q has %d ports", tg.Name, tg.Ports)
		}
		if seen[tg.Name] {
			return nil, fmt.Errorf("faults: duplicate target %q", tg.Name)
		}
		seen[tg.Name] = true
	}

	p := &Plan{
		cfg:        cfg,
		byEndpoint: make(map[string][]Event),
		stalls:     make(map[string][]Event),
		counters:   stats.NewCounters(),
	}

	type class struct {
		kind  Kind
		burst Burst
	}
	for _, tg := range targets {
		classes := []class{
			{LinkFlap, cfg.LinkFlap},
			{PacketDrop, cfg.PacketDrop},
			{Corrupt, cfg.Corrupt},
		}
		switch tg.Kind {
		case NodeTarget:
			classes = append(classes, class{NodeFreeze, cfg.NodeFreeze})
		case SwitchTarget:
			classes = append(classes, class{PortStall, cfg.PortStall})
		}
		for _, cl := range classes {
			if !cl.burst.enabled() {
				continue
			}
			prng := splitmix64(cfg.Seed ^ hashName(tg.Name) ^ (uint64(cl.kind)+1)*0xa24baed4963ee407)
			for t := prng.uniform(cl.burst.MeanEvery); t < cfg.Horizon; t += prng.uniform(cl.burst.MeanEvery) {
				ev := Event{
					Kind:   cl.kind,
					Target: tg.Name,
					Start:  t,
					End:    t + prng.uniform(cl.burst.MeanDuration),
					Port:   -1,
				}
				if cl.kind != NodeFreeze {
					ev.Port = int(prng.next() % uint64(tg.Ports))
				}
				if cl.kind == Corrupt {
					ev.Mask = cfg.CorruptMask
				}
				p.events = append(p.events, ev)
			}
		}
	}
	sort.Slice(p.events, func(i, j int) bool {
		a, b := p.events[i], p.events[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Target != b.Target {
			return a.Target < b.Target
		}
		if a.Port != b.Port {
			return a.Port < b.Port
		}
		return a.Kind < b.Kind
	})
	for _, ev := range p.events {
		if ev.Kind == PortStall {
			p.stalls[ev.Target] = append(p.stalls[ev.Target], ev)
		} else {
			p.byEndpoint[ev.Target] = append(p.byEndpoint[ev.Target], ev)
		}
		p.counters.Add("faults.scheduled."+ev.Kind.String(), 1)
	}
	return p, nil
}

// Config returns the config the plan was generated from (with defaults
// applied).
func (p *Plan) Config() Config { return p.cfg }

// Events returns a copy of the full schedule in deterministic order.
func (p *Plan) Events() []Event {
	out := make([]Event, len(p.events))
	copy(out, p.events)
	return out
}

// Counters exposes the runtime injection counters (tokens dropped,
// corrupted, and so on).
func (p *Plan) Counters() *stats.Counters { return p.counters }

// Encode serialises the schedule to a canonical byte string. Two runs with
// the same Config and targets produce identical bytes — the determinism
// contract tests assert on this.
func (p *Plan) Encode() []byte {
	var buf []byte
	var scratch [8]byte
	putU64 := func(v uint64) {
		binary.BigEndian.PutUint64(scratch[:], v)
		buf = append(buf, scratch[:]...)
	}
	for _, ev := range p.events {
		buf = append(buf, byte(ev.Kind))
		putU64(uint64(len(ev.Target)))
		buf = append(buf, ev.Target...)
		putU64(uint64(int64(ev.Port)))
		putU64(uint64(ev.Start))
		putU64(uint64(ev.End))
		putU64(ev.Mask)
	}
	return buf
}

// Fingerprint hashes the canonical schedule encoding to a compact value
// for logs and cross-host comparison.
func (p *Plan) Fingerprint() uint64 {
	h := fnv.New64a()
	h.Write(p.Encode())
	return h.Sum64()
}

// String summarises the plan for reports.
func (p *Plan) String() string {
	var b strings.Builder
	name := p.cfg.Scenario
	if name == "" {
		name = "custom"
	}
	fmt.Fprintf(&b, "fault plan %q: seed=%d horizon=%d events=%d fingerprint=%016x",
		name, p.cfg.Seed, p.cfg.Horizon, len(p.events), p.Fingerprint())
	return b.String()
}

// FilterInput implements fame.Injector: apply link flaps, packet drops,
// corruption, and freeze-side input discard to a batch arriving at the
// named endpoint.
func (p *Plan) FilterInput(endpoint string, port int, start clock.Cycles, b *token.Batch) {
	evs := p.byEndpoint[endpoint]
	if len(evs) == 0 || b.IsEmpty() {
		return
	}
	end := start + clock.Cycles(b.N)
	for i := range evs {
		ev := &evs[i]
		if ev.Start >= end {
			break // events are sorted by Start
		}
		if !ev.overlaps(start, end) {
			continue
		}
		switch ev.Kind {
		case LinkFlap:
			if ev.Port == port {
				p.dropWindow(b, start, ev, "faults.injected.flap-dropped-tokens")
			}
		case PacketDrop:
			if ev.Port == port {
				p.dropWindow(b, start, ev, "faults.injected.dropped-tokens")
			}
		case Corrupt:
			if ev.Port == port {
				n := 0
				b.Mutate(func(offset int, tok token.Token) token.Token {
					c := start + clock.Cycles(offset)
					if c >= ev.Start && c < ev.End {
						tok.Data ^= ev.Mask
						n++
					}
					return tok
				})
				if n > 0 {
					p.counters.Add("faults.injected.corrupted-tokens", uint64(n))
				}
			}
		case NodeFreeze:
			p.dropWindow(b, start, ev, "faults.injected.freeze-dropped-tokens")
		}
	}
}

// FilterOutput implements fame.Injector: a frozen node emits nothing.
func (p *Plan) FilterOutput(endpoint string, port int, start clock.Cycles, b *token.Batch) {
	evs := p.byEndpoint[endpoint]
	if len(evs) == 0 || b.IsEmpty() {
		return
	}
	end := start + clock.Cycles(b.N)
	for i := range evs {
		ev := &evs[i]
		if ev.Start >= end {
			break
		}
		if ev.Kind != NodeFreeze || !ev.overlaps(start, end) {
			continue
		}
		p.dropWindow(b, start, ev, "faults.injected.freeze-suppressed-tokens")
	}
}

// dropWindow removes every token whose absolute cycle falls inside ev.
func (p *Plan) dropWindow(b *token.Batch, start clock.Cycles, ev *Event, counter string) {
	before := b.Occupied()
	b.Filter(func(offset int, tok token.Token) bool {
		c := start + clock.Cycles(offset)
		return c < ev.Start || c >= ev.End
	})
	if dropped := before - b.Occupied(); dropped > 0 {
		p.counters.Add(counter, uint64(dropped))
	}
}

// StallFunc returns the stall hook for the named switch (for
// switchmodel.Switch.SetStall), or nil when the plan schedules no stalls
// there.
func (p *Plan) StallFunc(switchName string) func(port int, cycle clock.Cycles) bool {
	evs := p.stalls[switchName]
	if len(evs) == 0 {
		return nil
	}
	return func(port int, cycle clock.Cycles) bool {
		for i := range evs {
			ev := &evs[i]
			if ev.Start > cycle {
				return false // sorted by Start
			}
			if ev.Port == port && cycle < ev.End {
				return true
			}
		}
		return false
	}
}
