// Whole-cluster checkpoint/restore. A checkpoint is a snapshot stream
// whose header carries the deployment's topology hash and the runner's
// cycle/step, followed by one section per stateful component: the token
// runner ("runner"), every server node ("node/<name>") and every switch
// ("switch/<name>"). Restoring requires a cluster deployed from the same
// topology and config — the hash check refuses anything else — and
// replaces simulation state wholesale, so a restored cluster re-runs
// bit-identically to the original.
package manager

import (
	"fmt"
	"hash/fnv"
	"io"
	"strings"

	"repro/internal/snapshot"
)

// Checkpoint writes the cluster's complete simulation state to w. All
// nodes must be quiescent (no in-flight kernel events); if one is not,
// the error says which. Checkpoints are only defined at batch boundaries,
// which every Run/RunFor call leaves the cluster at.
func (c *Cluster) Checkpoint(w io.Writer) error {
	sw, err := snapshot.NewWriter(w, snapshot.Header{
		TopologyHash: c.TopoHash,
		Cycle:        uint64(c.Runner.Cycle()),
		Step:         uint64(c.Runner.Step()),
	})
	if err != nil {
		return err
	}
	sw.Section("runner")
	if err := c.Runner.Save(sw); err != nil {
		return err
	}
	for _, n := range c.Servers {
		sw.Section("node/" + n.Name())
		if err := n.Save(sw); err != nil {
			return err
		}
	}
	for _, s := range c.Switches {
		sw.Section("switch/" + s.Name())
		if err := s.Save(sw); err != nil {
			return err
		}
	}
	return sw.Close()
}

// RestoreState overwrites this cluster's simulation state from a
// checkpoint stream. The cluster must already be deployed from the same
// topology and config; the topology hash in the header is checked before
// anything is touched. Every component present in the cluster must have a
// section in the stream and vice versa.
func (c *Cluster) RestoreState(src io.Reader) error {
	r, h, err := snapshot.NewReader(src)
	if err != nil {
		return err
	}
	if h.TopologyHash != c.TopoHash {
		return fmt.Errorf("manager: checkpoint topology hash %#x does not match deployed %#x", h.TopologyHash, c.TopoHash)
	}
	if h.Step != uint64(c.Runner.Step()) {
		return fmt.Errorf("manager: checkpoint step %d does not match runner step %d", h.Step, c.Runner.Step())
	}
	restored := make(map[string]bool)
	for {
		name, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if restored[name] {
			return fmt.Errorf("manager: checkpoint has duplicate section %q", name)
		}
		switch {
		case name == "runner":
			if err := c.Runner.Restore(r); err != nil {
				return err
			}
		case strings.HasPrefix(name, "node/"):
			n := c.NodeByName(strings.TrimPrefix(name, "node/"))
			if n == nil {
				return fmt.Errorf("manager: checkpoint section %q has no matching node", name)
			}
			if err := n.Restore(r); err != nil {
				return err
			}
		case strings.HasPrefix(name, "switch/"):
			want := strings.TrimPrefix(name, "switch/")
			found := false
			for _, s := range c.Switches {
				if s.Name() == want {
					if err := s.Restore(r); err != nil {
						return err
					}
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("manager: checkpoint section %q has no matching switch", name)
			}
		default:
			return fmt.Errorf("manager: checkpoint has unknown section %q", name)
		}
		restored[name] = true
	}
	if !restored["runner"] {
		return fmt.Errorf("manager: checkpoint missing runner section")
	}
	for _, n := range c.Servers {
		if !restored["node/"+n.Name()] {
			return fmt.Errorf("manager: checkpoint missing node %q", n.Name())
		}
	}
	for _, s := range c.Switches {
		if !restored["switch/"+s.Name()] {
			return fmt.Errorf("manager: checkpoint missing switch %q", s.Name())
		}
	}
	return nil
}

// RestoreCluster deploys the topology and then loads the checkpoint into
// it: the one-call path from a saved stream back to a runnable cluster.
// root and cfg must describe the same deployment that produced the
// checkpoint (applications re-register their handlers on the fresh nodes
// before resuming, exactly as on a cold start).
func RestoreCluster(src io.Reader, root *SwitchNode, cfg DeployConfig) (*Cluster, error) {
	c, err := Deploy(root, cfg)
	if err != nil {
		return nil, err
	}
	if err := c.RestoreState(src); err != nil {
		return nil, err
	}
	return c, nil
}

// StateHash digests the full checkpoint stream into 64 bits — a cheap
// whole-simulation fingerprint for determinism checks.
func (c *Cluster) StateHash() (uint64, error) {
	h := fnv.New64a()
	if err := c.Checkpoint(h); err != nil {
		return 0, err
	}
	return h.Sum64(), nil
}
