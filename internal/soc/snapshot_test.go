package soc

import (
	"bytes"
	"testing"

	"repro/internal/riscv"
	"repro/internal/snapshot"
	"repro/internal/snapshot/snaptest"
	"repro/internal/token"
)

// tickCycles drives a standalone SoC for a fixed cycle count.
func tickCycles(s *SoC, cycles int) {
	const step = 256
	in := []*token.Batch{token.NewBatch(step)}
	out := []*token.Batch{token.NewBatch(step)}
	for c := 0; c < cycles; c += step {
		out[0].Reset(step)
		s.TickBatch(step, in, out)
	}
}

func TestSoCSnapshotConformance(t *testing.T) {
	// A program that prints to the UART and then counts forever in DRAM,
	// so console, caches, DRAM and CPU state are all live mid-run.
	a := riscv.NewAsm()
	a.LI64(riscv.T0, UARTBase)
	for _, ch := range "ck\n" {
		a.LI(riscv.T1, int32(ch))
		a.SB(riscv.T1, riscv.T0, 0)
	}
	a.LI64(riscv.T0, DRAMBase+0x1000)
	a.LI(riscv.T1, 0)
	a.Label("loop")
	a.ADDI(riscv.T1, riscv.T1, 1)
	a.SD(riscv.T1, riscv.T0, 0)
	a.J("loop")

	cfg := Config{Name: "n0", Cores: 2, MAC: 0x5}
	s := mustSoC(t, cfg, a)
	tickCycles(s, 4096)
	snaptest.RoundTrip(t, s, func() snapshot.Snapshotter {
		return mustSoC(t, cfg, a)
	})
}

func TestSoCRestoredBladeContinuesIdentically(t *testing.T) {
	a := riscv.NewAsm()
	a.LI64(riscv.T0, DRAMBase+0x2000)
	a.LI(riscv.T1, 0)
	a.Label("loop")
	a.ADDI(riscv.T1, riscv.T1, 1)
	a.SD(riscv.T1, riscv.T0, 0)
	a.J("loop")

	cfg := Config{Name: "n0", Cores: 1, MAC: 0x6}
	orig := mustSoC(t, cfg, a)
	tickCycles(orig, 2048)
	data := snaptest.Save(t, orig)
	clone := mustSoC(t, cfg, a)
	snaptest.Restore(t, clone, data)
	tickCycles(orig, 2048)
	tickCycles(clone, 2048)
	if !bytes.Equal(snaptest.Save(t, clone), snaptest.Save(t, orig)) {
		t.Fatal("restored blade diverged from original after identical ticks")
	}
}
