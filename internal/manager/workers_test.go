package manager

import (
	"fmt"
	"testing"

	"repro/internal/clock"
)

// workersRack deploys a small rack with cross-traffic and the given
// worker count.
func workersRack(t *testing.T, workers int) *Cluster {
	t.Helper()
	return tunedRack(t, DeployConfig{Seed: 7, LinkLatency: 3200, Workers: workers})
}

// tunedRack is workersRack with the full scheduler-tuning config surface.
func tunedRack(t *testing.T, cfg DeployConfig) *Cluster {
	t.Helper()
	topo := NewSwitchNode("tor0")
	for i := 0; i < 4; i++ {
		topo.AddDownlinks(NewServerNode(fmt.Sprintf("s%d", i), QuadCore))
	}
	c, err := Deploy(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 40 * 3200
	c.Servers[0].StartRawStream(0, c.Servers[1].MAC(), 1500, 10.0, horizon)
	c.Servers[2].StartRawStream(0, c.Servers[3].MAC(), 900, 5.0, horizon)
	return c
}

// TestDeployWorkersEquivalence pins the DeployConfig.Workers plumbing to
// the determinism contract: the same deployment run sequentially and with
// forced multi-worker parallel scheduling must reach byte-identical
// checkpoint state.
func TestDeployWorkersEquivalence(t *testing.T) {
	const horizon = clock.Cycles(40 * 3200)

	ref := workersRack(t, 0)
	if err := ref.RunFor(horizon); err != nil {
		t.Fatal(err)
	}
	want, err := ref.StateHash()
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 3} {
		c := workersRack(t, workers)
		if got := c.Runner.Workers(); got != workers {
			t.Fatalf("DeployConfig.Workers=%d not plumbed to runner (got %d)", workers, got)
		}
		if err := c.Runner.RunParallel(horizon); err != nil {
			t.Fatal(err)
		}
		got, err := c.StateHash()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("workers=%d: state hash %#x diverged from sequential %#x", workers, got, want)
		}
	}

	bad := NewSwitchNode("t")
	bad.AddDownlinks(NewServerNode("s", QuadCore))
	if _, err := Deploy(bad, DeployConfig{Workers: -1}); err == nil {
		t.Error("Deploy accepted a negative worker count")
	}
}

// TestSupervisorParallel runs the supervisor's slice loop through the
// worker-pool scheduler and checks it lands on the same state as the
// sequential slice loop.
func TestSupervisorParallel(t *testing.T) {
	const horizon = clock.Cycles(40 * 3200)

	ref := workersRack(t, 0)
	if _, err := ref.Supervise().RunTo(horizon); err != nil {
		t.Fatal(err)
	}
	want, err := ref.StateHash()
	if err != nil {
		t.Fatal(err)
	}

	c := workersRack(t, 2)
	s := c.Supervise()
	s.Parallel = true
	rep, err := s.RunTo(horizon)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycle != horizon {
		t.Errorf("parallel supervised run stopped at %d, want %d", rep.Cycle, horizon)
	}
	if rep.Partial {
		t.Error("healthy parallel run flagged partial")
	}
	got, err := c.StateHash()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("parallel supervised state %#x diverged from sequential %#x", got, want)
	}
}

// TestDeployMultiplexedEquivalence pins the DeployConfig.Multiplexed,
// RingSlack and BalanceSlackPct plumbing to the same contract as Workers:
// pure host-side tuning, byte-identical checkpoint state, and no effect
// on the topology hash (a tuned cluster must still handshake with an
// untuned peer).
func TestDeployMultiplexedEquivalence(t *testing.T) {
	const horizon = clock.Cycles(40 * 3200)

	ref := workersRack(t, 0)
	if err := ref.RunFor(horizon); err != nil {
		t.Fatal(err)
	}
	want, err := ref.StateHash()
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 3} {
		cfg := DeployConfig{
			Seed: 7, LinkLatency: 3200, Workers: workers,
			Multiplexed: true, RingSlack: 2, BalanceSlackPct: 25,
		}
		c := tunedRack(t, cfg)
		if !c.Runner.Multiplexed() {
			t.Fatal("DeployConfig.Multiplexed not plumbed to runner")
		}
		if got := c.Runner.RingSlack(); got != 2 {
			t.Fatalf("DeployConfig.RingSlack not plumbed to runner (got %d)", got)
		}
		if got := c.Runner.BalanceSlackPct(); got != 25 {
			t.Fatalf("DeployConfig.BalanceSlackPct not plumbed to runner (got %d)", got)
		}
		if c.TopoHash != ref.TopoHash {
			t.Errorf("workers=%d: scheduler tuning changed the topology hash", workers)
		}
		if err := c.Runner.RunParallel(horizon); err != nil {
			t.Fatal(err)
		}
		got, err := c.StateHash()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("workers=%d multiplexed: state hash %#x diverged from sequential %#x", workers, got, want)
		}
	}

	bad := NewSwitchNode("t")
	bad.AddDownlinks(NewServerNode("s", QuadCore))
	if _, err := Deploy(bad, DeployConfig{RingSlack: -1}); err == nil {
		t.Error("Deploy accepted a negative ring slack")
	}
	if _, err := Deploy(bad, DeployConfig{BalanceSlackPct: -1}); err == nil {
		t.Error("Deploy accepted a negative balance slack")
	}
}
