#!/usr/bin/env bash
# Full local gate: static checks, build, and the test suite under the race
# detector. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== bench smoke =="
# One tiny topology, one rep: proves `firesim bench` still runs end to end
# and emits parseable JSON. Real numbers come from scripts/bench.sh.
go run ./cmd/firesim bench -nodes 2 -rounds 64 -reps 1 -out "$(mktemp)" >/dev/null

echo "== checkpoint determinism smoke =="
# Run, checkpoint, run on, restore, re-run: final state must be
# bit-identical, under both runners. Exits non-zero on divergence.
go run ./cmd/firesim snap verify -nodes 4 -cycles 2048 -extra 2048 >/dev/null
go run ./cmd/firesim snap verify -nodes 4 -cycles 2048 -extra 2048 -parallel >/dev/null

echo "== snapshot fuzz (short) =="
# A few seconds of coverage-guided fuzzing over the snapshot decoder: the
# Reader must never panic on malformed streams.
go test ./internal/snapshot -run '^$' -fuzz FuzzReader -fuzztime 5s >/dev/null

echo "OK"
