package softstack

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/ethernet"
	"repro/internal/token"
)

// Config describes one modeled-OS node.
type Config struct {
	// Name identifies the node.
	Name string
	// MAC and IP are assigned by the simulation manager.
	MAC ethernet.MAC
	IP  ethernet.IP
	// Cores is the number of CPU cores (Table I: up to 4).
	Cores int
	// Freq is the target clock (default 3.2 GHz).
	Freq clock.Hz
	// Costs are the modeled kernel constants; zero fields take defaults.
	Costs Costs
	// Seed drives the node's deterministic scheduler randomness.
	Seed uint64
	// StaticARP, when non-nil, pre-populates the ARP table (the manager
	// does this for most experiments; the ping benchmark leaves it empty
	// to reproduce the first-sample ARP artifact).
	StaticARP map[ethernet.IP]ethernet.MAC
}

// txFrame is a frame queued for transmission.
type txFrame struct {
	flits   []uint64
	readyAt clock.Cycles
	flit    int
}

// generator produces paced raw frames for bandwidth experiments.
type generator struct {
	dst      ethernet.MAC
	flits    []uint64
	next     float64 // next frame emission cycle
	interval float64 // cycles between frame starts
	stopAt   clock.Cycles
}

// UDPHandler receives datagrams delivered by the kernel RX path.
type UDPHandler func(now clock.Cycles, src ethernet.IP, srcPort uint16, payload []byte)

// Stats counts node network activity.
type Stats struct {
	FramesSent uint64
	FramesRecv uint64
	BytesSent  uint64
	BytesRecv  uint64
	ARPLookups uint64
}

// PingResult is one echo round trip.
type PingResult struct {
	Seq int
	RTT clock.Cycles
}

type pinger struct {
	dst      ethernet.IP
	count    int
	interval clock.Cycles
	results  []PingResult
	sentAt   map[uint16]clock.Cycles
	done     func([]PingResult)
}

// Node is a modeled-OS server on the token network, implementing
// fame.Endpoint with a single network port.
type Node struct {
	cfg   Config
	clk   clock.Clock
	costs Costs

	cycle    clock.Cycles
	events   eventHeap
	eventSeq uint64

	sched   *scheduler
	threads []*Thread

	// network state
	arp        map[ethernet.IP]ethernet.MAC
	arpWaiting map[ethernet.IP][]func(now clock.Cycles, mac ethernet.MAC)
	udp        map[uint16]UDPHandler
	rxFlits    []uint64

	// TX engine
	txq      []txFrame
	txCursor clock.Cycles
	gen      *generator

	pingers map[uint16]*pinger
	nextID  uint16

	// RemoteMemHandler, when set, receives TypeRemoteMem frames (the
	// disaggregated-memory protocol of Section VI) after IRQ latency. It
	// is a public field so package pfa can implement the memory blade
	// without softstack depending on it.
	RemoteMemHandler RemoteMemFn

	stats Stats
}

// NewNode builds a node from cfg.
func NewNode(cfg Config) *Node {
	if cfg.Cores <= 0 {
		cfg.Cores = 4
	}
	if cfg.Freq == 0 {
		cfg.Freq = clock.DefaultTargetClock
	}
	cfg.Costs.applyDefaults(cfg.Freq)
	n := &Node{
		cfg:        cfg,
		clk:        clock.New(cfg.Freq),
		costs:      cfg.Costs,
		arp:        make(map[ethernet.IP]ethernet.MAC),
		arpWaiting: make(map[ethernet.IP][]func(clock.Cycles, ethernet.MAC)),
		udp:        make(map[uint16]UDPHandler),
		pingers:    make(map[uint16]*pinger),
	}
	for ip, mac := range cfg.StaticARP {
		n.arp[ip] = mac
	}
	n.sched = newScheduler(n, cfg.Cores, cfg.Seed+1)
	return n
}

// Name implements fame.Endpoint.
func (n *Node) Name() string { return n.cfg.Name }

// NumPorts implements fame.Endpoint.
func (n *Node) NumPorts() int { return 1 }

// MAC returns the node's MAC address.
func (n *Node) MAC() ethernet.MAC { return n.cfg.MAC }

// IP returns the node's IP address.
func (n *Node) IP() ethernet.IP { return n.cfg.IP }

// Clock returns the node's clock for cycle/time conversion.
func (n *Node) Clock() clock.Clock { return n.clk }

// Costs returns the node's kernel cost model.
func (n *Node) Costs() Costs { return n.costs }

// Now returns the node's current cycle (end of the last processed event).
func (n *Node) Now() clock.Cycles { return n.cycle }

// Stats returns a snapshot of the counters.
func (n *Node) Stats() Stats { return n.stats }

// LearnARP inserts a static ARP entry.
func (n *Node) LearnARP(ip ethernet.IP, mac ethernet.MAC) { n.arp[ip] = mac }

// --- fame.Endpoint ---

// TickBatch implements fame.Endpoint. It is event-driven: only occupied
// input tokens, due events, and pending transmissions cost host time, so
// an idle node advances a batch in O(1).
func (n *Node) TickBatch(nCycles int, in, out []*token.Batch) {
	start := n.cycle
	end := start + clock.Cycles(nCycles)

	// 1. Ingress: reassemble frames from occupied tokens.
	for _, slot := range in[0].Slots {
		n.rxFlits = append(n.rxFlits, slot.Tok.Data)
		if slot.Tok.Last {
			flits := make([]uint64, len(n.rxFlits))
			copy(flits, n.rxFlits)
			n.rxFlits = n.rxFlits[:0]
			arrival := start + clock.Cycles(slot.Offset)
			n.stats.FramesRecv++
			n.stats.BytesRecv += uint64(len(flits) * ethernet.FlitSize)
			n.handleFrame(arrival, flits)
		}
	}

	// 2. Drain due events (events may schedule more events within the
	// window; the heap keeps everything in cycle order).
	for len(n.events) > 0 && n.events[0].at < end {
		ev := n.events[0]
		popEvent(&n.events)
		now := ev.at
		if now < start {
			now = start
		}
		ev.fn(now)
	}

	// 3. Egress: emit queued frames, one flit per cycle.
	n.emitTX(start, end, out[0])
	n.cycle = end
}

func popEvent(h *eventHeap) {
	// container/heap Pop via the interface allocates; inline the fix-down
	// for the hot path.
	old := *h
	nh := len(old) - 1
	old[0] = old[nh]
	*h = old[:nh]
	if nh > 0 {
		siftDown(*h, 0)
	}
}

func siftDown(h eventHeap, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(h) && h.Less(l, m) {
			m = l
		}
		if r < len(h) && h.Less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		h.Swap(i, m)
		i = m
	}
}

// emitTX drains the TX queue into the output batch for cycles [start,end).
//
// The persisted txCursor advances only when a flit is actually emitted,
// so it always reads "one past the last emitted flit" — a pure function
// of the node's emission history. The window-local clamps below (snap a
// stale cursor up to start, wait for the head frame's readyAt) are
// re-derived every window, so folding them into the persisted value adds
// no information; it would, however, make saved state depend on the
// runner's batch quantum: a partition stepping in half-link windows
// would checkpoint a different cursor than the whole cluster stepping in
// full-link windows despite emitting identical tokens, breaking
// cross-process bit-identity checks.
func (n *Node) emitTX(start, end clock.Cycles, out *token.Batch) {
	cursor := n.txCursor
	if cursor < start {
		cursor = start
	}
	for {
		if len(n.txq) == 0 && !n.refillFromGenerator(end) {
			break
		}
		f := &n.txq[0]
		if f.readyAt > cursor {
			cursor = f.readyAt
		}
		if cursor >= end {
			break
		}
		for f.flit < len(f.flits) && cursor < end {
			last := f.flit == len(f.flits)-1
			out.Put(int(cursor-start), token.Token{Data: f.flits[f.flit], Valid: true, Last: last})
			f.flit++
			cursor++
		}
		n.txCursor = cursor
		if f.flit == len(f.flits) {
			n.txq = n.txq[1:]
			n.stats.FramesSent++
			n.stats.BytesSent += uint64(len(f.flits) * ethernet.FlitSize)
		}
	}
}

// refillFromGenerator produces the next paced raw frame if a stream is
// active and due before end.
func (n *Node) refillFromGenerator(end clock.Cycles) bool {
	g := n.gen
	if g == nil {
		return false
	}
	next := clock.Cycles(g.next)
	if g.stopAt > 0 && next >= g.stopAt {
		n.gen = nil
		return false
	}
	if next >= end {
		return false
	}
	n.txq = append(n.txq, txFrame{flits: g.flits, readyAt: next})
	g.next += g.interval
	return true
}

// sendFrameAt queues a frame for transmission no earlier than ready.
func (n *Node) sendFrameAt(ready clock.Cycles, f *ethernet.Frame) {
	flits, err := f.FrameFlits()
	if err != nil {
		panic(fmt.Sprintf("softstack: %v", err))
	}
	n.txq = append(n.txq, txFrame{flits: flits, readyAt: ready})
}

// --- protocol handling (kernel) ---

func (n *Node) handleFrame(arrival clock.Cycles, flits []uint64) {
	fr, err := ethernet.DecodeFlits(flits)
	if err != nil {
		return // malformed frame: dropped silently like real hardware
	}
	if fr.Dst != n.cfg.MAC && fr.Dst != ethernet.Broadcast {
		return // not ours (flooded or misdelivered)
	}
	switch fr.Type {
	case ethernet.TypeARP:
		n.handleARP(arrival, fr)
	case ethernet.TypeIPv4:
		n.handleIPv4(arrival, fr)
	case ethernet.TypeRemoteMem:
		if n.RemoteMemHandler != nil {
			n.at(arrival+n.costs.IRQLatency, func(now clock.Cycles) {
				n.RemoteMemHandler(now, fr.Src, fr.Payload)
			})
		}
	}
}

func (n *Node) handleARP(arrival clock.Cycles, fr *ethernet.Frame) {
	msg, err := ethernet.DecodeARP(fr.Payload)
	if err != nil {
		return
	}
	// Kernel handles ARP after IRQ+RX cost.
	n.at(arrival+n.costs.IRQLatency+n.costs.KernelRX, func(now clock.Cycles) {
		n.arp[msg.SenderIP] = msg.SenderMAC
		switch msg.Op {
		case ethernet.ARPRequest:
			if msg.TargetIP != n.cfg.IP {
				return
			}
			reply := &ethernet.ARP{
				Op: ethernet.ARPReply, SenderMAC: n.cfg.MAC, SenderIP: n.cfg.IP,
				TargetMAC: msg.SenderMAC, TargetIP: msg.SenderIP,
			}
			n.sendFrameAt(now+n.costs.KernelTX, &ethernet.Frame{
				Dst: msg.SenderMAC, Src: n.cfg.MAC, Type: ethernet.TypeARP, Payload: reply.Encode(),
			})
		case ethernet.ARPReply:
			if waiters := n.arpWaiting[msg.SenderIP]; len(waiters) > 0 {
				delete(n.arpWaiting, msg.SenderIP)
				for _, w := range waiters {
					w(now, msg.SenderMAC)
				}
			}
		}
	})
}

// resolve invokes fn with the MAC for ip, issuing an ARP request if
// needed.
func (n *Node) resolve(now clock.Cycles, ip ethernet.IP, fn func(now clock.Cycles, mac ethernet.MAC)) {
	n.stats.ARPLookups++
	if mac, ok := n.arp[ip]; ok {
		fn(now, mac)
		return
	}
	first := len(n.arpWaiting[ip]) == 0
	n.arpWaiting[ip] = append(n.arpWaiting[ip], fn)
	if !first {
		return
	}
	req := &ethernet.ARP{Op: ethernet.ARPRequest, SenderMAC: n.cfg.MAC, SenderIP: n.cfg.IP, TargetIP: ip}
	n.sendFrameAt(now+n.costs.KernelTX, &ethernet.Frame{
		Dst: ethernet.Broadcast, Src: n.cfg.MAC, Type: ethernet.TypeARP, Payload: req.Encode(),
	})
}

func (n *Node) handleIPv4(arrival clock.Cycles, fr *ethernet.Frame) {
	pkt, err := ethernet.DecodeIPv4(fr.Payload)
	if err != nil || pkt.Dst != n.cfg.IP {
		return
	}
	switch pkt.Proto {
	case ethernet.ProtoICMP:
		n.handleICMP(arrival, fr.Src, pkt)
	case ethernet.ProtoUDP:
		udp, err := ethernet.DecodeUDP(pkt.Payload)
		if err != nil {
			return
		}
		h, ok := n.udp[udp.DstPort]
		if !ok {
			return
		}
		// Kernel RX cost, then deliver to the socket layer.
		n.at(arrival+n.costs.IRQLatency+n.costs.KernelRX, func(now clock.Cycles) {
			h(now, pkt.Src, udp.SrcPort, udp.Payload)
		})
	}
}

func (n *Node) handleICMP(arrival clock.Cycles, srcMAC ethernet.MAC, pkt *ethernet.IPv4) {
	msg, err := ethernet.DecodeICMP(pkt.Payload)
	if err != nil {
		return
	}
	switch msg.Type {
	case ethernet.ICMPEchoRequest:
		// Kernel echoes in interrupt context: RX cost then TX cost.
		n.at(arrival+n.costs.IRQLatency+n.costs.KernelRX, func(now clock.Cycles) {
			reply := &ethernet.ICMP{Type: ethernet.ICMPEchoReply, ID: msg.ID, Seq: msg.Seq, SentCycle: msg.SentCycle}
			ip := &ethernet.IPv4{Src: n.cfg.IP, Dst: pkt.Src, Proto: ethernet.ProtoICMP, TTL: 64, Payload: reply.Encode()}
			n.arp[pkt.Src] = srcMAC // gratuitous learn, like Linux
			n.sendFrameAt(now+n.costs.KernelTX, &ethernet.Frame{
				Dst: srcMAC, Src: n.cfg.MAC, Type: ethernet.TypeIPv4, Payload: ip.Encode(),
			})
		})
	case ethernet.ICMPEchoReply:
		n.at(arrival+n.costs.IRQLatency+n.costs.KernelRX, func(now clock.Cycles) {
			p, ok := n.pingers[msg.ID]
			if !ok {
				return
			}
			sent, ok := p.sentAt[msg.Seq]
			if !ok {
				return
			}
			p.results = append(p.results, PingResult{Seq: int(msg.Seq), RTT: now - sent})
			if len(p.results) == p.count {
				delete(n.pingers, msg.ID)
				if p.done != nil {
					p.done(p.results)
				}
			}
		})
	}
}

// --- application-facing API ---

// HandleUDP registers a datagram handler for a local port.
func (n *Node) HandleUDP(port uint16, h UDPHandler) { n.udp[port] = h }

// SendUDP transmits a datagram with kernel TX cost applied as latency
// (use SendUDPAccounted when the calling thread already charged the cost
// as CPU time).
func (n *Node) SendUDP(now clock.Cycles, dst ethernet.IP, dstPort, srcPort uint16, payload []byte) {
	n.sendUDPAt(now+n.costs.KernelTX, dst, dstPort, srcPort, payload)
}

// SendUDPAccounted transmits a datagram immediately; the caller has
// already accounted the kernel TX cost as thread CPU time.
func (n *Node) SendUDPAccounted(now clock.Cycles, dst ethernet.IP, dstPort, srcPort uint16, payload []byte) {
	n.sendUDPAt(now, dst, dstPort, srcPort, payload)
}

func (n *Node) sendUDPAt(ready clock.Cycles, dst ethernet.IP, dstPort, srcPort uint16, payload []byte) {
	n.resolve(ready, dst, func(now clock.Cycles, mac ethernet.MAC) {
		udp := &ethernet.UDP{SrcPort: srcPort, DstPort: dstPort, Payload: payload}
		ip := &ethernet.IPv4{Src: n.cfg.IP, Dst: dst, Proto: ethernet.ProtoUDP, TTL: 64, Payload: udp.Encode()}
		n.sendFrameAt(now, &ethernet.Frame{Dst: mac, Src: n.cfg.MAC, Type: ethernet.TypeIPv4, Payload: ip.Encode()})
	})
}

// SendRemoteMem transmits a raw remote-memory protocol frame (Section VI).
func (n *Node) SendRemoteMem(ready clock.Cycles, dst ethernet.MAC, payload []byte) {
	n.sendFrameAt(ready, &ethernet.Frame{Dst: dst, Src: n.cfg.MAC, Type: ethernet.TypeRemoteMem, Payload: payload})
}

// RemoteMemFn receives remote-memory frames after IRQ latency.
type RemoteMemFn func(now clock.Cycles, src ethernet.MAC, payload []byte)

// Ping runs `count` echo round trips to dst, spaced by interval, invoking
// done with all results. It reproduces the Linux ping utility's behaviour:
// if dst is not in the ARP cache, the first sample includes the ARP
// round trip (the paper discards that first sample for exactly this
// reason).
func (n *Node) Ping(start clock.Cycles, dst ethernet.IP, count int, interval clock.Cycles, done func([]PingResult)) {
	id := n.nextID
	n.nextID++
	p := &pinger{dst: dst, count: count, interval: interval, sentAt: make(map[uint16]clock.Cycles), done: done}
	n.pingers[id] = p
	for i := 0; i < count; i++ {
		seq := uint16(i)
		n.at(start+clock.Cycles(i)*interval, func(now clock.Cycles) {
			p.sentAt[seq] = now
			msg := &ethernet.ICMP{Type: ethernet.ICMPEchoRequest, ID: id, Seq: seq, SentCycle: uint64(now)}
			ip := &ethernet.IPv4{Src: n.cfg.IP, Dst: dst, Proto: ethernet.ProtoICMP, TTL: 64, Payload: msg.Encode()}
			n.resolve(now+n.costs.KernelTX, dst, func(ready clock.Cycles, mac ethernet.MAC) {
				n.sendFrameAt(ready, &ethernet.Frame{Dst: mac, Src: n.cfg.MAC, Type: ethernet.TypeIPv4, Payload: ip.Encode()})
			})
		})
	}
}

// StartRawStream begins a paced raw Ethernet stream to dst, like the
// bare-metal bandwidth test of Section IV-C: frameBytes-sized frames at
// gbps (on a link whose raw rate is 64 bits per cycle). The stream stops
// at stopAt (0 = never).
func (n *Node) StartRawStream(startAt clock.Cycles, dst ethernet.MAC, frameBytes int, gbps float64, stopAt clock.Cycles) {
	payload := make([]byte, frameBytes-ethernet.HeaderLen)
	f := &ethernet.Frame{Dst: dst, Src: n.cfg.MAC, Type: ethernet.TypeIPv4, Payload: payload}
	flits, err := f.FrameFlits()
	if err != nil {
		panic(fmt.Sprintf("softstack: %v", err))
	}
	bitsPerFrame := float64(frameBytes * 8)
	cyclesPerFrame := bitsPerFrame / (gbps * 1e9) * float64(n.cfg.Freq)
	minInterval := float64(len(flits)) // cannot beat line rate
	if cyclesPerFrame < minInterval {
		cyclesPerFrame = minInterval
	}
	n.gen = &generator{dst: dst, flits: flits, next: float64(startAt), interval: cyclesPerFrame, stopAt: stopAt}
}

// StopStream halts the raw stream.
func (n *Node) StopStream() { n.gen = nil }
