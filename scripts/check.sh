#!/usr/bin/env bash
# Full local gate: static checks, build, and the test suite under the race
# detector. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== bench smoke =="
# One tiny topology, one rep: proves `firesim bench` still runs end to end
# and emits parseable JSON. Real numbers come from scripts/bench.sh.
go run ./cmd/firesim bench -nodes 2 -rounds 64 -reps 1 -out "$(mktemp)" >/dev/null

echo "OK"
