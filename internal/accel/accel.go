// Package accel implements the Table II accelerators that attach to the
// server blades' MMIO accelerator slots.
//
// The paper's Section VIII describes attaching the Hwacha data-parallel
// vector accelerator to Rocket Chip, "including simulating disaggregated
// pools of Hwachas". This package provides a Hwacha-style vector unit
// with a RoCC-flavoured programming model exposed over MMIO: the CPU
// programs source/destination base addresses and an element count, kicks
// off a vector operation, and polls (or takes an interrupt on) completion
// while the unit streams operands through the shared L2 by DMA.
package accel

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/nic"
)

// Vector unit MMIO registers.
const (
	RegSrcA   = 0x00 // W: first operand base address
	RegSrcB   = 0x08 // W: second operand base address
	RegDst    = 0x10 // W: destination base address
	RegCount  = 0x18 // W: element count (64-bit elements)
	RegOp     = 0x20 // W: operation (OpAdd, OpMul, OpMac)
	RegStart  = 0x28 // W: any write launches the operation
	RegStatus = 0x30 // R: 0 = idle/done, 1 = busy
	RegIntrEn = 0x38 // W: enable the completion interrupt
)

// Vector operations.
const (
	OpAdd = 0 // dst[i] = a[i] + b[i]
	OpMul = 1 // dst[i] = a[i] * b[i]
	OpMac = 2 // dst[i] = dst[i] + a[i]*b[i]
)

// Config parameterises the vector unit.
type Config struct {
	// Lanes is the number of 64-bit lanes (elements retired per cycle in
	// the steady state).
	Lanes int
	// StartupLatency is the fixed vector-instruction issue cost.
	StartupLatency clock.Cycles
}

// DefaultConfig returns a Hwacha-class 4-lane configuration.
func DefaultConfig() Config {
	return Config{Lanes: 4, StartupLatency: 20}
}

// Stats counts accelerator activity.
type Stats struct {
	Ops        uint64
	Elements   uint64
	BusyCycles clock.Cycles
}

// Vector is the accelerator device. It implements soc.Device.
type Vector struct {
	cfg Config
	mem nic.Memory

	srcA, srcB, dst, count, op uint64
	busyUntil                  clock.Cycles
	busy                       bool
	intrEn                     bool
	donePending                bool

	stats Stats
}

// New builds a vector unit over the blade's DMA port (soc.SoC.DMA()).
func New(cfg Config, mem nic.Memory) *Vector {
	if cfg.Lanes <= 0 {
		cfg = DefaultConfig()
	}
	return &Vector{cfg: cfg, mem: mem}
}

// Stats returns a snapshot of the counters.
func (v *Vector) Stats() Stats { return v.stats }

// MMIOStore implements soc.Device.
func (v *Vector) MMIOStore(now clock.Cycles, offset uint64, val uint64) {
	switch offset {
	case RegSrcA:
		v.srcA = val
	case RegSrcB:
		v.srcB = val
	case RegDst:
		v.dst = val
	case RegCount:
		v.count = val
	case RegOp:
		v.op = val
	case RegIntrEn:
		v.intrEn = val != 0
	case RegStart:
		v.launch(now)
	}
}

// MMIOLoad implements soc.Device.
func (v *Vector) MMIOLoad(now clock.Cycles, offset uint64) uint64 {
	switch offset {
	case RegStatus:
		if v.busy && now >= v.busyUntil {
			v.busy = false
			v.donePending = v.intrEn
		}
		if v.busy {
			return 1
		}
		return 0
	default:
		return 0
	}
}

// IntrPending implements soc.Device.
func (v *Vector) IntrPending() bool { return v.donePending }

// launch executes the programmed vector operation: functionally
// immediately (against the DRAM backing store), with timing that accounts
// for operand streaming through the L2 and lane throughput.
func (v *Vector) launch(now clock.Cycles) {
	if v.busy || v.count == 0 {
		return
	}
	n := v.count
	bytes := n * 8
	a := make([]byte, bytes)
	b := make([]byte, bytes)
	d := make([]byte, bytes)
	tA := v.mem.ReadDMA(now, v.srcA, a)
	tB := v.mem.ReadDMA(now, v.srcB, b)
	loadDone := tA
	if tB > loadDone {
		loadDone = tB
	}
	if v.op == OpMac {
		if tD := v.mem.ReadDMA(now, v.dst, d); tD > loadDone {
			loadDone = tD
		}
	}

	for i := uint64(0); i < n; i++ {
		av := le64(a[i*8:])
		bv := le64(b[i*8:])
		var dv uint64
		switch v.op {
		case OpAdd:
			dv = av + bv
		case OpMul:
			dv = av * bv
		case OpMac:
			dv = le64(d[i*8:]) + av*bv
		default:
			panic(fmt.Sprintf("accel: unknown vector op %d", v.op))
		}
		put64(d[i*8:], dv)
	}

	compute := loadDone + v.cfg.StartupLatency + clock.Cycles((n+uint64(v.cfg.Lanes)-1)/uint64(v.cfg.Lanes))
	storeDone := v.mem.WriteDMA(compute, v.dst, d)
	v.busy = true
	v.busyUntil = storeDone
	v.stats.Ops++
	v.stats.Elements += n
	v.stats.BusyCycles += storeDone - now
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func put64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
