package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stats"
)

// benchVariant is one (mode, metrics) measurement at one topology size.
type benchVariant struct {
	WallNanos int64   `json:"wall_ns"`
	SimHz     float64 `json:"sim_hz"`
	Slowdown  float64 `json:"slowdown"`
}

// benchResult is the sim-rate record for one topology size.
type benchResult struct {
	Nodes  int    `json:"nodes"`
	Cycles uint64 `json:"cycles"`

	Run                benchVariant `json:"run"`
	RunParallel        benchVariant `json:"run_parallel"`
	RunMetrics         benchVariant `json:"run_metrics"`
	RunParallelMetrics benchVariant `json:"run_parallel_metrics"`

	// Overhead of enabling metrics, percent of wall time, from the ratio
	// of best-of-reps wall times. Min-of-reps is the noise-rejection
	// estimator: each side's best run is its closest approach to the true
	// cost, so the ratio cannot go negative the way a mean or per-rep
	// median could when the host drifts mid-bench (it is clamped at 0 —
	// instrumentation cannot make the simulator faster).
	RunOverheadPct         float64 `json:"run_metrics_overhead_pct"`
	RunParallelOverheadPct float64 `json:"run_parallel_metrics_overhead_pct"`

	ParallelSpeedup float64 `json:"parallel_speedup"`
}

// benchFile is the BENCH_fame.json document.
type benchFile struct {
	GeneratedBy       string  `json:"generated_by"`
	TargetFreqHz      float64 `json:"target_freq_hz"`
	LinkLatencyCycles uint64  `json:"link_latency_cycles"`
	Rounds            int     `json:"rounds"`
	Reps              int     `json:"reps"`
	// Workers is the -workers flag (0 = GOMAXPROCS); GOMAXPROCS records
	// what that default resolved to on the bench host, so speedup numbers
	// can be read against the core count that produced them.
	Workers    int           `json:"workers"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Results    []benchResult `json:"results"`
	// NodeResults covers the per-node compute loop (SoC blades running
	// machine code) with the fast paths on vs off; see nodebench.go.
	NodeResults []nodeBenchResult `json:"node_results,omitempty"`
}

// benchHistoryEntry is one line of BENCH_history.jsonl: a timestamped
// digest of a bench invocation, so the perf trajectory is tracked across
// PRs without diffing full BENCH_fame.json documents.
type benchHistoryEntry struct {
	Time       string             `json:"time"`
	Rounds     int                `json:"rounds"`
	Reps       int                `json:"reps"`
	Workers    int                `json:"workers"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	RunHz      map[string]float64 `json:"run_hz"`
	ParHz      map[string]float64 `json:"run_parallel_hz"`
	Speedup    map[string]float64 `json:"parallel_speedup"`
	// Node-bench digests, keyed "<workload>_fast" / "<workload>_slow"
	// (MIPS) and "<workload>" (fast-over-slow wall-time speedup).
	NodeMIPS        map[string]float64 `json:"node_mips,omitempty"`
	NodeFastSpeedup map[string]float64 `json:"node_fast_speedup,omitempty"`
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	nodesList := fs.String("nodes", "2,4,8", "comma-separated rack sizes to measure")
	rounds := fs.Int("rounds", 2048, "link-latency rounds per measurement")
	reps := fs.Int("reps", 5, "repetitions per variant (best wall time wins)")
	latencyUs := fs.Float64("latency-us", 2, "link latency in microseconds")
	workers := fs.Int("workers", 0, "parallel scheduler worker count (0 = GOMAXPROCS)")
	nodeNodes := fs.Int("node-nodes", 4, "blade count for the per-node compute-loop bench (0 disables it)")
	nodeRounds := fs.Int("node-rounds", 512, "link-latency rounds per node-bench measurement")
	idleMinSpeedup := fs.Float64("idle-min-speedup", 0, "fail unless the idle workload's fast-path speedup reaches this (0 disables the gate)")
	denseMinSpeedup := fs.Float64("dense-min-speedup", 0, "fail unless the dense workload's fast-path speedup reaches this (0 disables the gate)")
	out := fs.String("out", "BENCH_fame.json", "output file")
	history := fs.String("history", "", "append a timestamped result line to this JSONL file")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile covering only the measured round loops to this file")
	tracefile := fs.String("trace", "", "write a runtime execution trace covering only the measured round loops to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sizes, err := parseFanouts(*nodesList)
	if err != nil {
		return err
	}

	clk := clock.New(clock.DefaultTargetClock)
	doc := benchFile{
		GeneratedBy:       "firesim bench",
		TargetFreqHz:      float64(clock.DefaultTargetClock),
		LinkLatencyCycles: uint64(clk.CyclesInMicros(*latencyUs)),
		Rounds:            *rounds,
		Reps:              *reps,
		Workers:           *workers,
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
	}

	table := stats.NewTable("Nodes", "Run", "RunParallel", "Speedup", "Metrics overhead")
	for _, n := range sizes {
		r, err := benchOneSize(n, *rounds, *reps, *workers, clk.CyclesInMicros(*latencyUs))
		if err != nil {
			return fmt.Errorf("bench %d nodes: %w", n, err)
		}
		doc.Results = append(doc.Results, r)
		table.AddRow(n,
			clock.Hz(r.Run.SimHz), clock.Hz(r.RunParallel.SimHz),
			fmt.Sprintf("%.2fx", r.ParallelSpeedup),
			fmt.Sprintf("%+.1f%% / %+.1f%%", r.RunOverheadPct, r.RunParallelOverheadPct))
	}

	nodeTable := stats.NewTable("Workload", "Fast", "Slow", "Speedup", "MIPS fast/slow", "Skipped")
	if *nodeNodes > 0 {
		nodeResults, err := benchNodePass(*nodeNodes, *nodeRounds, *reps, clk.CyclesInMicros(*latencyUs))
		if err != nil {
			return err
		}
		doc.NodeResults = nodeResults
		for _, r := range nodeResults {
			nodeTable.AddRow(r.Workload,
				clock.Hz(r.Fast.SimHz), clock.Hz(r.Slow.SimHz),
				fmt.Sprintf("%.2fx", r.FastSpeedup),
				fmt.Sprintf("%.2f / %.2f", r.Fast.MIPS, r.Slow.MIPS),
				fmt.Sprintf("%.1f%%", r.Fast.SkippedPct))
		}
	}

	buf, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	if *history != "" {
		if err := appendBenchHistory(*history, &doc); err != nil {
			return err
		}
	}
	fmt.Printf("sim-rate across topology sizes (%d rounds x %d reps, link %.3g us):\n",
		*rounds, *reps, *latencyUs)
	fmt.Print(table.String())
	if len(doc.NodeResults) > 0 {
		fmt.Printf("per-node compute loop, %d blades x %d rounds, fast paths on vs off:\n",
			*nodeNodes, *nodeRounds)
		fmt.Print(nodeTable.String())
	}
	fmt.Printf("wrote %s\n", *out)

	for _, gate := range []struct {
		workload string
		min      float64
	}{
		{"idle", *idleMinSpeedup},
		{"dense", *denseMinSpeedup},
	} {
		if gate.min <= 0 {
			continue
		}
		var got *nodeBenchResult
		for i := range doc.NodeResults {
			if doc.NodeResults[i].Workload == gate.workload {
				got = &doc.NodeResults[i]
			}
		}
		if got == nil {
			return fmt.Errorf("bench: -%s-min-speedup set but the node bench did not run (see -node-nodes)", gate.workload)
		}
		if got.FastSpeedup < gate.min {
			return fmt.Errorf("bench: %s workload fast-path speedup %.2fx below the %.2fx gate",
				gate.workload, got.FastSpeedup, gate.min)
		}
	}

	// Profiling is a dedicated extra pass so the collectors wrap only the
	// measured round loops (pprof cannot pause/resume into one file, so
	// arming it around the whole bench would bury the schedulers under
	// deployment and JSON noise).
	if *cpuprofile != "" || *tracefile != "" {
		largest := sizes[len(sizes)-1]
		if err := profilePass(largest, *rounds, *workers, clk.CyclesInMicros(*latencyUs), *cpuprofile, *tracefile); err != nil {
			return err
		}
		fmt.Printf("profiled %d-node round loops (cpu=%q trace=%q)\n", largest, *cpuprofile, *tracefile)
	}
	return nil
}

// appendBenchHistory adds one compact line for this invocation to the
// JSONL history file, creating it if needed.
func appendBenchHistory(path string, doc *benchFile) error {
	e := benchHistoryEntry{
		Time:       time.Now().UTC().Format(time.RFC3339),
		Rounds:     doc.Rounds,
		Reps:       doc.Reps,
		Workers:    doc.Workers,
		GOMAXPROCS: doc.GOMAXPROCS,
		RunHz:      map[string]float64{},
		ParHz:      map[string]float64{},
		Speedup:    map[string]float64{},
	}
	for _, r := range doc.Results {
		key := fmt.Sprintf("%d", r.Nodes)
		e.RunHz[key] = r.Run.SimHz
		e.ParHz[key] = r.RunParallel.SimHz
		e.Speedup[key] = r.ParallelSpeedup
	}
	if len(doc.NodeResults) > 0 {
		e.NodeMIPS = map[string]float64{}
		e.NodeFastSpeedup = map[string]float64{}
		for _, r := range doc.NodeResults {
			e.NodeMIPS[r.Workload+"_fast"] = r.Fast.MIPS
			e.NodeMIPS[r.Workload+"_slow"] = r.Slow.MIPS
			e.NodeFastSpeedup[r.Workload] = r.FastSpeedup
		}
	}
	line, err := json.Marshal(&e)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(append(line, '\n'))
	return err
}

// benchDeploy stands up one ping-loaded rack ready to measure: pings
// armed, one warm-up slice already run with the requested scheduler so
// cold caches and first-round batch allocation are never billed to a
// measured rate.
func benchDeploy(nodes, rounds, workers int, linkLatency clock.Cycles, parallel, withMetrics bool) (*core.Cluster, clock.Cycles, error) {
	c, err := core.Deploy(core.Rack("tor0", nodes, core.QuadCore),
		core.DeployConfig{LinkLatency: linkLatency, Workers: workers})
	if err != nil {
		return nil, 0, err
	}
	if withMetrics {
		c.EnableMetrics(obs.NewRegistry("bench"))
	}
	step := c.Runner.Step()
	cycles := clock.Cycles(rounds) * step
	interval := 4 * step
	count := int((cycles+4*step)/interval) + 1
	for i, src := range c.Servers {
		dst := c.Servers[(i+1)%len(c.Servers)]
		src.Ping(0, dst.IP(), count, interval, nil)
	}
	if _, err := c.Runner.Measure(4*step, clock.DefaultTargetClock, parallel); err != nil {
		return nil, 0, err
	}
	return c, cycles, nil
}

// benchOneSize measures one rack size in all four variants. Each variant
// gets a fresh deployment (so FAME link state never carries over) running
// a ring of pings — an idle rack ticks in nanoseconds and would make any
// fixed instrumentation cost look enormous, so the overhead number is
// only meaningful under representative load. One warm-up slice precedes
// the measurement and the best of reps runs wins — the usual way to
// reject scheduler noise on a shared host.
func benchOneSize(nodes, rounds, reps, workers int, linkLatency clock.Cycles) (benchResult, error) {
	res := benchResult{Nodes: nodes}
	oneRun := func(parallel, withMetrics bool) (time.Duration, clock.Cycles, error) {
		c, cycles, err := benchDeploy(nodes, rounds, workers, linkLatency, parallel, withMetrics)
		if err != nil {
			return 0, 0, err
		}
		rate, err := c.Runner.Measure(cycles, clock.DefaultTargetClock, parallel)
		if err != nil {
			return 0, 0, err
		}
		return rate.Wall, cycles, nil
	}

	// Base and instrumented runs are interleaved within each rep so that
	// host frequency/scheduler drift during the bench biases both sides
	// equally rather than whichever variant ran last. Both the displayed
	// rates and the overhead use best-of-reps (see RunOverheadPct).
	measurePair := func(parallel bool) (base, inst benchVariant, overhead float64, err error) {
		bestBase, bestInst := time.Duration(-1), time.Duration(-1)
		var cycles clock.Cycles
		for rep := 0; rep < reps; rep++ {
			wb, cy, err := oneRun(parallel, false)
			if err != nil {
				return base, inst, 0, err
			}
			if bestBase < 0 || wb < bestBase {
				bestBase = wb
			}
			wi, _, err := oneRun(parallel, true)
			if err != nil {
				return base, inst, 0, err
			}
			if bestInst < 0 || wi < bestInst {
				bestInst = wi
			}
			cycles = cy
		}
		res.Cycles = uint64(cycles)
		overhead = 100 * (float64(bestInst)/float64(bestBase) - 1)
		if overhead < 0 {
			overhead = 0
		}
		return toVariant(cycles, bestBase), toVariant(cycles, bestInst), overhead, nil
	}

	var err error
	if res.Run, res.RunMetrics, res.RunOverheadPct, err = measurePair(false); err != nil {
		return res, err
	}
	if res.RunParallel, res.RunParallelMetrics, res.RunParallelOverheadPct, err = measurePair(true); err != nil {
		return res, err
	}
	if res.RunParallel.WallNanos > 0 {
		res.ParallelSpeedup = float64(res.Run.WallNanos) / float64(res.RunParallel.WallNanos)
	}
	return res, nil
}

// profilePass runs both schedulers once at the given size with the
// collectors from internal/obs armed around only the measured round
// loops: deployment, ping arming and warm-up happen before Start, the
// JSON/teardown after Stop.
func profilePass(nodes, rounds, workers int, linkLatency clock.Cycles, cpuPath, tracePath string) error {
	seq, seqCycles, err := benchDeploy(nodes, rounds, workers, linkLatency, false, false)
	if err != nil {
		return err
	}
	par, parCycles, err := benchDeploy(nodes, rounds, workers, linkLatency, true, false)
	if err != nil {
		return err
	}
	var prof obs.Profiles
	if err := prof.Start(cpuPath, tracePath); err != nil {
		return err
	}
	defer prof.Stop()
	if _, err := seq.Runner.Measure(seqCycles, clock.DefaultTargetClock, false); err != nil {
		return err
	}
	if _, err := par.Runner.Measure(parCycles, clock.DefaultTargetClock, true); err != nil {
		return err
	}
	return nil
}

func toVariant(cycles clock.Cycles, wall time.Duration) benchVariant {
	rate := clock.SimRate{TargetCycles: cycles, Wall: wall, TargetFreq: clock.DefaultTargetClock}
	return benchVariant{
		WallNanos: wall.Nanoseconds(),
		SimHz:     float64(rate.EffectiveHz()),
		Slowdown:  rate.Slowdown(),
	}
}
