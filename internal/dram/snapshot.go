package dram

import (
	"fmt"
	"sort"

	"repro/internal/clock"
	"repro/internal/snapshot"
)

// Save serialises the controller timing state (per-bank open row and
// ready time, bus occupancy, counters) and the sparse functional backing
// store. Chunks are written in sorted key order so equal memory images
// always produce equal bytes, and all-zero chunks are skipped: chunk()
// materialises zeroed chunks on demand, so "absent" and "all zero" are
// behaviourally identical — skipping them both shrinks checkpoints and
// keeps save → restore → save byte-stable (a restore never re-creates a
// chunk the save dropped).
func (m *Model) Save(w *snapshot.Writer) error {
	w.Begin("dram.Model", 1)
	w.Uvarint(uint64(len(m.banks)))
	for _, bk := range m.banks {
		w.I64(bk.openRow)
		w.U64(uint64(bk.readyAt))
	}
	w.U64(uint64(m.busFreeAt))
	w.U64(m.stats.Reads)
	w.U64(m.stats.Writes)
	w.U64(m.stats.RowHits)
	w.U64(m.stats.RowMisses)
	w.U64(uint64(m.stats.BusBusyCycles))

	keys := make([]uint64, 0, len(m.mem))
	for k, c := range m.mem {
		if allZero(c) {
			continue
		}
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.Uvarint(k)
		w.Bytes(m.mem[k])
	}
	return w.Err()
}

// Restore overwrites the controller and functional state from r.
func (m *Model) Restore(r *snapshot.Reader) error {
	if err := r.Begin("dram.Model", 1); err != nil {
		return err
	}
	nbanks := r.Uvarint()
	if err := r.Err(); err != nil {
		return err
	}
	if nbanks != uint64(len(m.banks)) {
		return fmt.Errorf("dram: checkpoint has %d banks, model has %d", nbanks, len(m.banks))
	}
	banks := make([]bank, nbanks)
	for i := range banks {
		banks[i].openRow = r.I64()
		banks[i].readyAt = clock.Cycles(r.U64())
	}
	busFreeAt := clock.Cycles(r.U64())
	var stats Stats
	stats.Reads = r.U64()
	stats.Writes = r.U64()
	stats.RowHits = r.U64()
	stats.RowMisses = r.U64()
	stats.BusBusyCycles = clock.Cycles(r.U64())

	maxChunks := int(m.cfg.CapacityBytes >> chunkShift)
	nchunks := r.Count(maxChunks)
	if err := r.Err(); err != nil {
		return err
	}
	mem := make(map[uint64][]byte, nchunks)
	var prev uint64
	for i := 0; i < nchunks; i++ {
		key := r.Uvarint()
		data := r.Bytes(chunkSize)
		if err := r.Err(); err != nil {
			return err
		}
		if i > 0 && key <= prev {
			return fmt.Errorf("dram: checkpoint chunk keys out of order (%d after %d)", key, prev)
		}
		if key >= uint64(maxChunks) {
			return fmt.Errorf("dram: checkpoint chunk %d beyond capacity (%d chunks)", key, maxChunks)
		}
		if len(data) != chunkSize {
			return fmt.Errorf("dram: checkpoint chunk %d is %d bytes, want %d", key, len(data), chunkSize)
		}
		prev = key
		mem[key] = data
	}
	m.banks = banks
	m.busFreeAt = busFreeAt
	m.stats = stats
	m.mem = mem
	return nil
}

func allZero(p []byte) bool {
	for _, b := range p {
		if b != 0 {
			return false
		}
	}
	return true
}
