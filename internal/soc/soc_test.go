package soc

import (
	"strings"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/clock"
	"repro/internal/ethernet"
	"repro/internal/fame"
	"repro/internal/nic"
	"repro/internal/riscv"
	"repro/internal/switchmodel"
	"repro/internal/token"
)

// tickUntilHalted drives a standalone SoC (no network) until power-off.
func tickUntilHalted(t *testing.T, s *SoC, maxCycles int) {
	t.Helper()
	const step = 256
	in := []*token.Batch{token.NewBatch(step)}
	out := []*token.Batch{token.NewBatch(step)}
	for c := 0; c < maxCycles && !s.Halted(); c += step {
		out[0].Reset(step)
		s.TickBatch(step, in, out)
	}
	if !s.Halted() {
		t.Fatalf("SoC did not power off within %d cycles (pc=%#x)", maxCycles, s.Core(0).PC)
	}
}

func mustSoC(t *testing.T, cfg Config, a *riscv.Asm) *SoC {
	t.Helper()
	prog, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// powerOff emits the store sequence that halts the blade.
func powerOff(a *riscv.Asm) {
	a.LI(riscv.T6, int32(PowerOff))
	a.SD(riscv.Zero, riscv.T6, 0)
}

func TestHelloUART(t *testing.T) {
	a := riscv.NewAsm()
	a.LI64(riscv.T0, UARTBase)
	for _, ch := range "hello\n" {
		a.LI(riscv.T1, int32(ch))
		a.SB(riscv.T1, riscv.T0, 0)
	}
	powerOff(a)
	s := mustSoC(t, Config{Name: "n0", Cores: 1, MAC: 0x1}, a)
	tickUntilHalted(t, s, 100_000)
	if got := s.Console(); got != "hello\n" {
		t.Errorf("console = %q", got)
	}
}

func TestQuadCoreHartsAllRun(t *testing.T) {
	// Every hart stores (hartid+1) to DRAMBase+0x1000+8*hartid; hart 0
	// waits for all then powers off.
	a := riscv.NewAsm()
	a.CSRRS(riscv.A0, riscv.CSRMHartID, riscv.Zero)
	a.LI64(riscv.T0, DRAMBase+0x1000)
	a.SLLI(riscv.T1, riscv.A0, 3)
	a.ADD(riscv.T0, riscv.T0, riscv.T1)
	a.ADDI(riscv.T2, riscv.A0, 1)
	a.SD(riscv.T2, riscv.T0, 0)
	// Non-zero harts spin forever; hart 0 polls for all four values.
	a.BNE(riscv.A0, riscv.Zero, "spin")
	a.LI64(riscv.T0, DRAMBase+0x1000)
	a.Label("poll")
	a.LD(riscv.T1, riscv.T0, 0)
	a.LD(riscv.T2, riscv.T0, 8)
	a.LD(riscv.T3, riscv.T0, 16)
	a.LD(riscv.T4, riscv.T0, 24)
	a.BEQ(riscv.T1, riscv.Zero, "poll")
	a.BEQ(riscv.T2, riscv.Zero, "poll")
	a.BEQ(riscv.T3, riscv.Zero, "poll")
	a.BEQ(riscv.T4, riscv.Zero, "poll")
	powerOff(a)
	a.Label("spin")
	a.J("spin")

	s := mustSoC(t, QuadCore("n0", 0x1), a)
	tickUntilHalted(t, s, 3_000_000)
	for hart := uint64(0); hart < 4; hart++ {
		if got := s.DRAM().Read64(0x1000 + 8*hart); got != hart+1 {
			t.Errorf("hart %d flag = %d, want %d", hart, got, hart+1)
		}
	}
}

// The paper's caches are write-back: repeated access to the same data must
// be dramatically faster than cold misses.
func TestCacheHierarchyTiming(t *testing.T) {
	sum := func(stride int32) clock.Cycles {
		a := riscv.NewAsm()
		a.LI64(riscv.T0, DRAMBase+0x10000)
		a.LI(riscv.T1, 256) // iterations
		a.LI(riscv.A0, 0)
		a.Label("loop")
		a.LD(riscv.T2, riscv.T0, 0)
		a.ADD(riscv.A0, riscv.A0, riscv.T2)
		a.ADDI(riscv.T0, riscv.T0, stride)
		a.ADDI(riscv.T1, riscv.T1, -1)
		a.BNE(riscv.T1, riscv.Zero, "loop")
		powerOff(a)
		s := mustSoC(t, Config{Name: "n", Cores: 1, MAC: 1}, a)
		tickUntilHalted(t, s, 10_000_000)
		// Round up to the batch granularity used by tickUntilHalted.
		return s.Core(0).Cycle
	}
	same := sum(0)     // same line every time: L1 hits
	strided := sum(64) // new line every time: misses to L2/DRAM
	if float64(strided) < 1.5*float64(same) {
		t.Errorf("strided loop (%d cycles) not clearly slower than L1-resident loop (%d cycles)", strided, same)
	}
}

func TestBlockDeviceBoot(t *testing.T) {
	// Read sector 3 into memory via the controller and check the payload.
	a := riscv.NewAsm()
	a.LI64(riscv.T0, BlockDevBase)
	a.LI64(riscv.T1, DRAMBase+0x2000)
	a.SD(riscv.T1, riscv.T0, blockdev.RegAddr)
	a.LI(riscv.T1, 3)
	a.SD(riscv.T1, riscv.T0, blockdev.RegSector)
	a.LI(riscv.T1, 1)
	a.SD(riscv.T1, riscv.T0, blockdev.RegNSectors)
	a.SD(riscv.Zero, riscv.T0, blockdev.RegWrite)
	a.LD(riscv.A0, riscv.T0, blockdev.RegAlloc)
	a.Label("poll")
	a.LD(riscv.T1, riscv.T0, blockdev.RegNComplete)
	a.BEQ(riscv.T1, riscv.Zero, "poll")
	a.LD(riscv.A1, riscv.T0, blockdev.RegComplete)
	powerOff(a)

	s := mustSoC(t, Config{Name: "n", Cores: 1, MAC: 1}, a)
	s.BlockDev().WriteSector(3, []byte("bootable payload"))
	tickUntilHalted(t, s, 10_000_000)
	buf := make([]byte, 16)
	s.DRAM().ReadBytes(0x2000, buf)
	if string(buf) != "bootable payload" {
		t.Errorf("sector data in memory = %q", buf)
	}
	if s.Core(0).X[riscv.A0] != s.Core(0).X[riscv.A1] {
		t.Errorf("allocation id %d != completion id %d", s.Core(0).X[riscv.A0], s.Core(0).X[riscv.A1])
	}
}

// sendProgram busy-polls a send through the NIC: the frame bytes are
// staged at DRAMBase+0x2000 by the test harness.
func sendProgram(frameLen int) *riscv.Asm {
	a := riscv.NewAsm()
	a.LI64(riscv.T0, NICBase)
	a.LI64(riscv.T1, (DRAMBase+0x2000)|uint64(frameLen)<<48)
	a.SD(riscv.T1, riscv.T0, nic.RegSendReq)
	a.Label("poll")
	a.LD(riscv.T2, riscv.T0, nic.RegCounts)
	a.SRLI(riscv.T2, riscv.T2, 16)
	a.ANDI(riscv.T2, riscv.T2, 0xff)
	a.BEQ(riscv.T2, riscv.Zero, "poll")
	a.LD(riscv.Zero, riscv.T0, nic.RegSendComp)
	powerOff(a)
	return a
}

// recvProgram posts one receive buffer at DRAMBase+0x4000 and waits for a
// packet, storing its length at DRAMBase+0x3000.
func recvProgram() *riscv.Asm {
	a := riscv.NewAsm()
	a.LI64(riscv.T0, NICBase)
	a.LI64(riscv.T1, DRAMBase+0x4000)
	a.SD(riscv.T1, riscv.T0, nic.RegRecvReq)
	a.Label("poll")
	a.LD(riscv.T2, riscv.T0, nic.RegCounts)
	a.SRLI(riscv.T2, riscv.T2, 24)
	a.ANDI(riscv.T2, riscv.T2, 0xff)
	a.BEQ(riscv.T2, riscv.Zero, "poll")
	a.LD(riscv.A0, riscv.T0, nic.RegRecvComp)
	a.LI64(riscv.T3, DRAMBase+0x3000)
	a.SD(riscv.A0, riscv.T3, 0)
	powerOff(a)
	return a
}

// TestBareMetalNetworkRoundTrip is the end-to-end integration test: two
// cycle-exact blades running real RV64 machine code exchange an Ethernet
// frame through a switch model over the token network — the same structure
// as the paper's bare-metal bandwidth test (Section IV-C).
func TestBareMetalNetworkRoundTrip(t *testing.T) {
	const macA, macB = ethernet.MAC(0x0200_0000_0001), ethernet.MAC(0x0200_0000_0002)
	frame := &ethernet.Frame{Dst: macB, Src: macA, Type: ethernet.TypeIPv4, Payload: []byte("bare-metal hello across the rack")}
	buf, err := frame.Encode()
	if err != nil {
		t.Fatal(err)
	}

	sender := mustSoC(t, Config{Name: "A", Cores: 1, MAC: macA}, sendProgram(len(buf)))
	sender.DRAM().WriteBytes(0x2000, buf)
	receiver := mustSoC(t, Config{Name: "B", Cores: 1, MAC: macB}, recvProgram())

	tor := switchmodel.New(switchmodel.Config{Name: "tor", Ports: 2})
	tor.MACTable().Set(macA, 0)
	tor.MACTable().Set(macB, 1)

	r := fame.NewRunner()
	r.Add(sender)
	r.Add(receiver)
	r.Add(tor)
	const linkLat = 640 // 200 ns at 3.2 GHz
	if err := r.Connect(sender, 0, tor, 0, linkLat); err != nil {
		t.Fatal(err)
	}
	if err := r.Connect(receiver, 0, tor, 1, linkLat); err != nil {
		t.Fatal(err)
	}

	for r.Cycle() < 3_000_000 && !(sender.Halted() && receiver.Halted()) {
		if err := r.Run(linkLat * 4); err != nil {
			t.Fatal(err)
		}
	}
	if !sender.Halted() || !receiver.Halted() {
		t.Fatalf("nodes did not finish: sender=%v receiver=%v (recv pc=%#x)", sender.Halted(), receiver.Halted(), receiver.Core(0).PC)
	}

	gotLen := receiver.DRAM().Read64(0x3000)
	if gotLen != uint64(len(buf)) {
		t.Fatalf("received length %d, want %d", gotLen, len(buf))
	}
	rx := make([]byte, gotLen)
	receiver.DRAM().ReadBytes(0x4000, rx)
	got, err := ethernet.DecodeFrame(rx)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != string(frame.Payload) {
		t.Errorf("payload = %q", got.Payload)
	}
	if got.Src != macA || got.Dst != macB {
		t.Errorf("frame header corrupted: %+v", got)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Name: "bad", Cores: 0}, nil); err == nil {
		t.Error("0-core blade accepted")
	}
	if _, err := New(Config{Name: "bad", Cores: 5}, nil); err == nil {
		t.Error("5-core blade accepted (Table I allows 1-4)")
	}
}

func TestRegisterDevice(t *testing.T) {
	s := mustSoC(t, Config{Name: "n", Cores: 1, MAC: 1}, riscv.NewAsm())
	if err := s.RegisterDevice(NICBase, nil); err == nil {
		t.Error("collision with NIC window accepted")
	}
	dev := &stubDevice{}
	if err := s.RegisterDevice(0x6200_0000, dev); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterDevice(0x6200_0000, dev); err == nil {
		t.Error("duplicate registration accepted")
	}
}

type stubDevice struct{}

func (stubDevice) MMIOLoad(clock.Cycles, uint64) uint64   { return 0 }
func (stubDevice) MMIOStore(clock.Cycles, uint64, uint64) {}
func (stubDevice) IntrPending() bool                      { return false }

func TestAcceleratorSlot(t *testing.T) {
	// A Table II-style accelerator: doubles whatever is stored to it.
	a := riscv.NewAsm()
	a.LI64(riscv.T0, 0x6200_0000)
	a.LI(riscv.T1, 21)
	a.SD(riscv.T1, riscv.T0, 0)
	a.LD(riscv.A0, riscv.T0, 0)
	powerOff(a)
	s := mustSoC(t, Config{Name: "n", Cores: 1, MAC: 1}, a)
	if err := s.RegisterDevice(0x6200_0000, &doubler{}); err != nil {
		t.Fatal(err)
	}
	tickUntilHalted(t, s, 100_000)
	if got := s.Core(0).X[riscv.A0]; got != 42 {
		t.Errorf("accelerator result = %d, want 42", got)
	}
}

type doubler struct{ v uint64 }

func (d *doubler) MMIOLoad(_ clock.Cycles, off uint64) uint64     { return d.v }
func (d *doubler) MMIOStore(_ clock.Cycles, off uint64, v uint64) { d.v = v * 2 }
func (d *doubler) IntrPending() bool                              { return false }

func TestConsoleOrdering(t *testing.T) {
	a := riscv.NewAsm()
	a.LI64(riscv.T0, UARTBase)
	for _, ch := range "abc" {
		a.LI(riscv.T1, int32(ch))
		a.SB(riscv.T1, riscv.T0, 0)
	}
	powerOff(a)
	s := mustSoC(t, Config{Name: "n", Cores: 1, MAC: 1}, a)
	tickUntilHalted(t, s, 100_000)
	if !strings.HasPrefix(s.Console(), "abc") {
		t.Errorf("console = %q", s.Console())
	}
}
