// Package blockdev implements the target server block device controller of
// Section III-A3, which lets simulated nodes boot custom distributions
// with large root filesystems.
//
// The controller contains a frontend that interfaces with the CPU over
// MMIO and one or more trackers that move data between memory and the
// block device. To start a transfer, the CPU programs the request fields
// and reads the allocation register, which dispatches the request to a
// tracker and returns the tracker's ID. When the transfer completes, the
// tracker posts its ID to the completion queue and the frontend raises an
// interrupt; the CPU matches the completed ID against the one it received
// at allocation.
//
// The device is organised in 512-byte sectors; transfers are multiples of
// 512 bytes and must be sector-aligned on the device (memory addresses
// need not be aligned).
package blockdev

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/nic"
)

// SectorBytes is the device sector size.
const SectorBytes = 512

// MMIO register offsets.
const (
	RegAddr      = 0x00 // W: memory address of the data buffer
	RegSector    = 0x08 // W: starting device sector
	RegNSectors  = 0x10 // W: transfer length in sectors
	RegWrite     = 0x18 // W: 1 = memory -> device, 0 = device -> memory
	RegAlloc     = 0x20 // R: dispatch request; returns tracker ID or NoTracker
	RegComplete  = 0x28 // R: pop a completed tracker ID, or NoTracker
	RegNComplete = 0x30 // R: number of queued completions
	RegIntrEn    = 0x38 // W: enable the completion interrupt
)

// NoTracker is returned by RegAlloc when no tracker is free and by
// RegComplete when no completion is pending.
const NoTracker = 0xff

// Config parameterises the controller.
type Config struct {
	// Trackers is the number of concurrent transfer engines.
	Trackers int
	// CapacityBytes is the device size.
	CapacityBytes uint64
	// SectorLatency is the device-side cycles per sector moved.
	SectorLatency clock.Cycles
	// FixedLatency is the per-request overhead (command issue, seek).
	FixedLatency clock.Cycles
}

// DefaultConfig models a fast SSD-class device: ~4 GiB, ~25 us fixed
// latency at 3.2 GHz, ~0.4 GB/s streaming.
func DefaultConfig() Config {
	return Config{
		Trackers:      4,
		CapacityBytes: 4 << 30,
		SectorLatency: 4000,  // 512 B / (0.4 GB/s) at 3.2 GHz
		FixedLatency:  80000, // 25 us
	}
}

// Stats counts controller activity.
type Stats struct {
	Reads        uint64
	Writes       uint64
	SectorsMoved uint64
	AllocFailed  uint64
}

type tracker struct {
	busy   bool
	doneAt clock.Cycles
	id     int
}

// Device is the block device controller plus its backing store.
type Device struct {
	cfg      Config
	mem      nic.Memory // reuse the DMA port abstraction into SoC memory
	trackers []tracker
	// request staging registers
	addr, sector, nsectors, write uint64
	completions                   []int
	intrEn                        bool
	stats                         Stats

	disk map[uint64][]byte // sparse sector store
}

// New builds a controller over the given DMA port.
func New(cfg Config, mem nic.Memory) *Device {
	if cfg.Trackers == 0 {
		cfg = DefaultConfig()
	}
	d := &Device{cfg: cfg, mem: mem, disk: make(map[uint64][]byte)}
	d.trackers = make([]tracker, cfg.Trackers)
	for i := range d.trackers {
		d.trackers[i].id = i
	}
	return d
}

// Stats returns a snapshot of the counters.
func (d *Device) Stats() Stats { return d.stats }

// NumSectors returns the device capacity in sectors.
func (d *Device) NumSectors() uint64 { return d.cfg.CapacityBytes / SectorBytes }

// WriteSector initialises device contents directly (used to provision the
// "root filesystem" before boot, the way the manager stages disk images).
func (d *Device) WriteSector(sector uint64, data []byte) {
	if len(data) > SectorBytes {
		panic(fmt.Sprintf("blockdev: sector write of %d bytes", len(data)))
	}
	buf := make([]byte, SectorBytes)
	copy(buf, data)
	d.disk[sector] = buf
}

// ReadSector returns device contents directly (for test assertions).
func (d *Device) ReadSector(sector uint64) []byte {
	if s, ok := d.disk[sector]; ok {
		out := make([]byte, SectorBytes)
		copy(out, s)
		return out
	}
	return make([]byte, SectorBytes)
}

// MMIOStore services a CPU write at the given register offset.
func (d *Device) MMIOStore(offset, v uint64) {
	switch offset {
	case RegAddr:
		d.addr = v
	case RegSector:
		d.sector = v
	case RegNSectors:
		d.nsectors = v
	case RegWrite:
		d.write = v
	case RegIntrEn:
		d.intrEn = v != 0
	}
}

// MMIOLoad services a CPU read at the given register offset. now is the
// CPU's current cycle, needed because RegAlloc starts a timed transfer.
func (d *Device) MMIOLoad(now clock.Cycles, offset uint64) uint64 {
	switch offset {
	case RegAlloc:
		return uint64(d.alloc(now))
	case RegComplete:
		if len(d.completions) == 0 {
			return NoTracker
		}
		id := d.completions[0]
		d.completions = d.completions[1:]
		return uint64(id)
	case RegNComplete:
		return uint64(len(d.completions))
	default:
		return 0
	}
}

// alloc dispatches the staged request to a free tracker.
func (d *Device) alloc(now clock.Cycles) int {
	if d.sector+d.nsectors > d.NumSectors() {
		d.stats.AllocFailed++
		return NoTracker
	}
	for i := range d.trackers {
		tr := &d.trackers[i]
		if tr.busy {
			continue
		}
		d.startTransfer(now, tr)
		return tr.id
	}
	d.stats.AllocFailed++
	return NoTracker
}

func (d *Device) startTransfer(now clock.Cycles, tr *tracker) {
	n := d.nsectors
	dev := d.cfg.FixedLatency + clock.Cycles(n)*d.cfg.SectorLatency
	buf := make([]byte, n*SectorBytes)
	var memDone clock.Cycles
	if d.write != 0 {
		// memory -> device
		memDone = d.mem.ReadDMA(now, d.addr, buf)
		for s := uint64(0); s < n; s++ {
			sec := make([]byte, SectorBytes)
			copy(sec, buf[s*SectorBytes:])
			d.disk[d.sector+s] = sec
		}
		d.stats.Writes++
	} else {
		// device -> memory
		for s := uint64(0); s < n; s++ {
			if sec, ok := d.disk[d.sector+s]; ok {
				copy(buf[s*SectorBytes:], sec)
			}
		}
		memDone = d.mem.WriteDMA(now, d.addr, buf)
		d.stats.Reads++
	}
	d.stats.SectorsMoved += n
	done := now + dev
	if memDone > done {
		done = memDone
	}
	tr.busy = true
	tr.doneAt = done
}

// Tick retires finished trackers, posting completions. The SoC calls it
// once per target cycle.
func (d *Device) Tick(now clock.Cycles) {
	for i := range d.trackers {
		tr := &d.trackers[i]
		if tr.busy && now >= tr.doneAt {
			tr.busy = false
			d.completions = append(d.completions, tr.id)
		}
	}
}

// IntrPending reports whether the completion interrupt is asserted.
func (d *Device) IntrPending() bool {
	return d.intrEn && len(d.completions) > 0
}

// Quiescent reports whether Tick is a pure no-op: no tracker is busy, so
// no completion can retire at any future cycle. (Queued completions are
// static state — they only change under MMIO, which cannot happen while
// the cores are idle — so they do not block quiescence; IntrPending is
// checked separately by the scheduler.)
func (d *Device) Quiescent() bool {
	for i := range d.trackers {
		if d.trackers[i].busy {
			return false
		}
	}
	return true
}
