package manager

import (
	"fmt"
	"os"
	"os/exec"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
)

// TestShardProcessMain is not a test: it is the main() of every shard
// worker process the distributed tests spawn. The tests re-exec the test
// binary with -test.run pinned here and the control address in the
// environment; without the environment it skips immediately.
func TestShardProcessMain(t *testing.T) {
	addr := os.Getenv("FIRESIM_SHARD_CONTROL")
	if addr == "" {
		t.Skip("re-exec entry point for the distributed tests")
	}
	if err := RunShard(ShardConfig{ControlAddr: addr, Name: os.Getenv("FIRESIM_SHARD_NAME")}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// testSpawn re-execs this test binary as a shard worker.
func testSpawn() func(name, controlAddr string) *exec.Cmd {
	return func(name, controlAddr string) *exec.Cmd {
		cmd := exec.Command(os.Args[0], "-test.run=^TestShardProcessMain$")
		cmd.Env = append(os.Environ(),
			"FIRESIM_SHARD_CONTROL="+controlAddr,
			"FIRESIM_SHARD_NAME="+name,
		)
		return cmd
	}
}

// newTestLog adapts t.Logf for the coordinator's background goroutines:
// once the test finishes, late lines are dropped instead of panicking.
func newTestLog(t *testing.T) func(string, ...any) {
	var mu sync.Mutex
	done := false
	t.Cleanup(func() {
		mu.Lock()
		done = true
		mu.Unlock()
	})
	return func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		if !done {
			t.Logf(format, args...)
		}
	}
}

// distTestSpec builds a rack of single-core servers hanging directly off
// the root switch (one partition unit per server) with a deterministic
// all-to-next streaming workload.
func distTestSpec(t *testing.T, nodes int, parallel bool) ClusterSpec {
	t.Helper()
	root := NewSwitchNode("")
	for i := 0; i < nodes; i++ {
		root.AddDownlinks(NewServerNode("", SingleCore))
	}
	cfg := normalizeConfig(DeployConfig{LinkLatency: 512, Seed: 42})
	assignSwitchNames(root)
	assignIdentities(root, cfg)
	spec, err := SpecFromTopology(root, cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec.Parallel = parallel
	if parallel {
		spec.Workers = 3
	}
	spec.Workload = &WorkloadSpec{Kind: "stream", StartAt: 600, FrameBytes: 200, Gbps: 1, StopAt: 12000}
	return spec
}

// compareWithReference checks a distributed run's component hashes
// bit-for-bit against an undisturbed in-process whole-cluster run.
func compareWithReference(t *testing.T, spec ClusterSpec, horizon uint64, report *DistReport) {
	t.Helper()
	ref, err := ReferenceHashes(spec, horizon)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if len(ref) != len(report.Hashes) {
		t.Fatalf("distributed run reported %d components, reference has %d", len(report.Hashes), len(ref))
	}
	for k, want := range ref {
		if got, ok := report.Hashes[k]; !ok || got != want {
			t.Errorf("component %s: distributed %016x, reference %016x", k, got, want)
		}
	}
	if got, want := report.Combined, CombineHashes(ref); got != want {
		t.Errorf("combined hash: distributed %016x, reference %016x", got, want)
	}
}

func TestDistributedCleanSequential(t *testing.T) { runCleanDist(t, false) }
func TestDistributedCleanParallel(t *testing.T)  { runCleanDist(t, true) }

// runCleanDist is the no-failure baseline: a multi-process run must be
// bit-identical to the in-process reference in one epoch.
func runCleanDist(t *testing.T, parallel bool) {
	spec := distTestSpec(t, 4, parallel)
	const horizon = 8192
	report, err := RunDistributed(CoordinatorConfig{
		Spec:      spec,
		Procs:     2,
		BaseDir:   t.TempDir(),
		CkptEvery: 2048,
		Horizon:   horizon,
		Spawn:     testSpawn(),
		Log:       newTestLog(t),
	})
	if err != nil {
		t.Fatalf("RunDistributed: %v", err)
	}
	if report.Cycle != horizon {
		t.Errorf("final cycle %d, want %d", report.Cycle, horizon)
	}
	if report.Epochs != 1 || report.Recoveries != 0 {
		t.Errorf("clean run used %d epochs / %d recoveries, want 1 / 0", report.Epochs, report.Recoveries)
	}
	compareWithReference(t, spec, horizon, report)
}

// TestDistributedChaosSequential is the keystone: a 3-process, 8-node
// run that loses one shard to SIGKILL, has another stall (alive, still
// heartbeating, target time frozen — only the progress watchdog can see
// it), and finds a checkpoint torn mid-write at recovery. With no
// respawn budget, the lost shard's units are re-packed onto the two
// survivors. The healed run must be bit-identical to an undisturbed
// single-process run.
func TestDistributedChaosSequential(t *testing.T) {
	runChaosDist(t, chaosCase{
		parallel:      false,
		chaos:         "kill:shard1@4096,stall:shard2@8192+2500,tear:sub0",
		respawnBudget: 0,
		minRecoveries: 2,
		wantProcs:     2, // shard1 never replaced: elastic re-pack
	})
}

// TestDistributedChaosParallel runs the same storm against the
// worker-pool scheduler, adds a SIGSTOP victim (caught by lease expiry,
// killed while stopped), and gives the coordinator a respawn budget, so
// every lost process is replaced and the fleet ends at full strength.
func TestDistributedChaosParallel(t *testing.T) {
	runChaosDist(t, chaosCase{
		parallel:      true,
		chaos:         "kill:shard1@4096,stop:shard0@6144,stall:shard2@10240+2500,tear:sub1",
		respawnBudget: 2,
		minRecoveries: 3,
		wantProcs:     3, // every loss respawned
	})
}

type chaosCase struct {
	parallel      bool
	chaos         string
	respawnBudget int
	minRecoveries int
	wantProcs     int
}

func runChaosDist(t *testing.T, tc chaosCase) {
	spec := distTestSpec(t, 8, tc.parallel)
	const horizon = 16384
	chaos, err := faults.ParseChaos(tc.chaos)
	if err != nil {
		t.Fatal(err)
	}
	report, err := RunDistributed(CoordinatorConfig{
		Spec:          spec,
		Procs:         3,
		BaseDir:       t.TempDir(),
		CkptEvery:     2048,
		Horizon:       horizon,
		MaxRecoveries: 5,
		RespawnBudget: tc.respawnBudget,
		Chaos:         chaos,
		Spawn:         testSpawn(),
		Log:           newTestLog(t),
		Lease:         800 * time.Millisecond,
		StallAfter:    1500 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("RunDistributed: %v", err)
	}
	if report.Cycle != horizon {
		t.Errorf("final cycle %d, want %d", report.Cycle, horizon)
	}
	if report.Recoveries < tc.minRecoveries {
		t.Errorf("run healed %d failures, expected at least %d (chaos %q)", report.Recoveries, tc.minRecoveries, tc.chaos)
	}
	if report.FinalProcs != tc.wantProcs {
		t.Errorf("run finished with %d procs, want %d", report.FinalProcs, tc.wantProcs)
	}
	compareWithReference(t, spec, horizon, report)
}
