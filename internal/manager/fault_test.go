package manager

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/clock"
	"repro/internal/faults"
	"repro/internal/softstack"
	"repro/internal/switchmodel"
)

func faultedRack(t *testing.T, n int) (*Cluster, clock.Cycles) {
	t.Helper()
	const horizon = 100 * 6400 // 640k cycles at the default link latency
	topo := NewSwitchNode("tor0")
	for i := 0; i < n; i++ {
		topo.AddDownlinks(NewServerNode(fmt.Sprintf("s%d", i), QuadCore))
	}
	// Aggressive rates so a short run sees every fault kind.
	fcfg := &faults.Config{
		Scenario:    "test-aggressive",
		Seed:        99,
		Horizon:     horizon,
		LinkFlap:    faults.Burst{MeanEvery: 40_000, MeanDuration: 6_000},
		PacketDrop:  faults.Burst{MeanEvery: 30_000, MeanDuration: 4_000},
		Corrupt:     faults.Burst{MeanEvery: 60_000, MeanDuration: 2_000},
		PortStall:   faults.Burst{MeanEvery: 50_000, MeanDuration: 3_000},
		NodeFreeze:  faults.Burst{MeanEvery: 200_000, MeanDuration: 10_000},
		CorruptMask: faults.DefaultCorruptMask,
	}
	c, err := Deploy(topo, DeployConfig{Seed: 7, FaultConfig: fcfg})
	if err != nil {
		t.Fatal(err)
	}
	if c.Faults == nil {
		t.Fatal("fault config did not produce a plan")
	}
	// Continuous traffic crossing the faulted links in both directions.
	c.Servers[0].StartRawStream(0, c.Servers[1].MAC(), 1500, 10.0, horizon)
	c.Servers[2].StartRawStream(0, c.Servers[0].MAC(), 1200, 5.0, horizon)
	return c, horizon
}

type faultRunDigest struct {
	cycle    clock.Cycles
	nodes    []softstack.Stats
	switches []switchmodel.Stats
	injected uint64
}

func digest(c *Cluster) faultRunDigest {
	d := faultRunDigest{cycle: c.Runner.Cycle()}
	for _, n := range c.Servers {
		d.nodes = append(d.nodes, n.Stats())
	}
	for _, sw := range c.Switches {
		d.switches = append(d.switches, sw.Stats())
	}
	for _, name := range c.Faults.Counters().Names() {
		d.injected += c.Faults.Counters().Get(name)
	}
	return d
}

func digestsEqual(a, b faultRunDigest) bool {
	if a.cycle != b.cycle || a.injected != b.injected ||
		len(a.nodes) != len(b.nodes) || len(a.switches) != len(b.switches) {
		return false
	}
	for i := range a.nodes {
		if a.nodes[i] != b.nodes[i] {
			return false
		}
	}
	for i := range a.switches {
		if a.switches[i] != b.switches[i] {
			return false
		}
	}
	return true
}

// TestFaultDeterminism is the fault-injection acceptance test: the same
// seed must yield a byte-identical fault schedule and an identical
// post-fault simulation — node for node, counter for counter — across
// repeated runs and across the sequential and parallel schedulers.
func TestFaultDeterminism(t *testing.T) {
	c1, horizon := faultedRack(t, 4)
	if err := c1.RunFor(horizon); err != nil {
		t.Fatal(err)
	}
	d1 := digest(c1)
	if d1.injected == 0 {
		t.Fatal("aggressive fault plan injected nothing; the schedule is not wired into the runner")
	}

	c2, _ := faultedRack(t, 4)
	if !bytes.Equal(c1.Faults.Encode(), c2.Faults.Encode()) {
		t.Fatal("same seed produced different fault schedules")
	}
	if c1.Faults.Fingerprint() != c2.Faults.Fingerprint() {
		t.Fatal("same seed produced different fingerprints")
	}
	if err := c2.RunFor(horizon); err != nil {
		t.Fatal(err)
	}
	if d2 := digest(c2); !digestsEqual(d1, d2) {
		t.Errorf("identical seeds diverged under faults:\nrun1: %+v\nrun2: %+v", d1, d2)
	}

	// Parallel scheduler, same seed: bit-identical again.
	c3, _ := faultedRack(t, 4)
	if err := c3.Runner.RunParallel(horizon); err != nil {
		t.Fatal(err)
	}
	if d3 := digest(c3); !digestsEqual(d1, d3) {
		t.Errorf("parallel run diverged from sequential under faults:\nseq: %+v\npar: %+v", d1, d3)
	}

	// Different seed: the schedule must actually differ (faults are not
	// being ignored).
	topo := NewSwitchNode("tor0")
	for i := 0; i < 4; i++ {
		topo.AddDownlinks(NewServerNode(fmt.Sprintf("s%d", i), QuadCore))
	}
	fcfg := c1.Faults.Config()
	fcfg.Seed = 100
	c4, err := Deploy(topo, DeployConfig{Seed: 7, FaultConfig: &fcfg})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(c1.Faults.Encode(), c4.Faults.Encode()) {
		t.Error("different fault seeds produced identical schedules")
	}
}

// TestDeployFaultScenario covers the named-scenario path through
// DeployConfig.
func TestDeployFaultScenario(t *testing.T) {
	topo := NewSwitchNode("tor0")
	topo.AddDownlinks(NewServerNode("s0", QuadCore), NewServerNode("s1", QuadCore))
	c, err := Deploy(topo, DeployConfig{Seed: 3, FaultScenario: "flaky-links"})
	if err != nil {
		t.Fatal(err)
	}
	if c.Faults == nil || len(c.Faults.Events()) == 0 {
		t.Fatal("named scenario produced no fault plan")
	}

	topo2 := NewSwitchNode("tor0")
	topo2.AddDownlinks(NewServerNode("s0", QuadCore))
	if _, err := Deploy(topo2, DeployConfig{FaultScenario: "no-such-scenario"}); err == nil {
		t.Error("unknown fault scenario accepted")
	}

	topo3 := NewSwitchNode("tor0")
	topo3.AddDownlinks(NewServerNode("s0", QuadCore))
	c3, err := Deploy(topo3, DeployConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if c3.Faults != nil {
		t.Error("fault plan present without any fault configuration")
	}
}

// TestTopologyHash: equal deployments hash equal; structural or parameter
// changes change the hash.
func TestTopologyHash(t *testing.T) {
	mk := func(n int) *SwitchNode {
		topo := NewSwitchNode("tor0")
		for i := 0; i < n; i++ {
			topo.AddDownlinks(NewServerNode(fmt.Sprintf("s%d", i), QuadCore))
		}
		return topo
	}
	h1 := TopologyHash(mk(4), DeployConfig{})
	h2 := TopologyHash(mk(4), DeployConfig{})
	if h1 != h2 {
		t.Error("identical topologies hash differently")
	}
	if h1 == TopologyHash(mk(5), DeployConfig{}) {
		t.Error("different server counts hash identically")
	}
	if h1 == TopologyHash(mk(4), DeployConfig{LinkLatency: 3200}) {
		t.Error("different link latencies hash identically")
	}
	if h1 == TopologyHash(mk(4), DeployConfig{Supernode: true}) {
		t.Error("supernode packing does not affect the hash")
	}
}
