package fame

import (
	"repro/internal/token"
)

// This file provides small building-block endpoints used by tests and by
// simple experiments: a source that emits a programmed token stream, a sink
// that records everything it receives, and a wire that forwards tokens
// between its two ports.

// Source emits a programmed sequence of tokens on port 0, one per cycle
// starting at a given cycle, and ignores its input.
type Source struct {
	name string
	// Program maps absolute target cycle -> token to emit.
	program map[int64]token.Token
	cycle   int64
}

// NewSource returns a source with an empty program.
func NewSource(name string) *Source {
	return &Source{name: name, program: make(map[int64]token.Token)}
}

// EmitAt schedules tok for transmission at the given absolute target cycle.
func (s *Source) EmitAt(cycle int64, tok token.Token) { s.program[cycle] = tok }

// EmitPacketAt schedules a multi-flit packet starting at the given cycle,
// one flit per cycle, marking Last on the final flit.
func (s *Source) EmitPacketAt(cycle int64, flits []uint64) {
	for i, f := range flits {
		s.program[cycle+int64(i)] = token.Token{Data: f, Valid: true, Last: i == len(flits)-1}
	}
}

// Name implements Endpoint.
func (s *Source) Name() string { return s.name }

// NumPorts implements Endpoint.
func (s *Source) NumPorts() int { return 1 }

// TickBatch implements Endpoint.
func (s *Source) TickBatch(n int, in, out []*token.Batch) {
	for i := 0; i < n; i++ {
		if tok, ok := s.program[s.cycle+int64(i)]; ok {
			out[0].Put(i, tok)
		}
	}
	s.cycle += int64(n)
}

// Arrival is a token observed by a Sink, tagged with its absolute arrival
// cycle.
type Arrival struct {
	Cycle int64
	Tok   token.Token
}

// Sink records every valid token it receives on port 0 and emits nothing.
type Sink struct {
	name     string
	cycle    int64
	Received []Arrival
}

// NewSink returns an empty sink.
func NewSink(name string) *Sink { return &Sink{name: name} }

// Name implements Endpoint.
func (s *Sink) Name() string { return s.name }

// NumPorts implements Endpoint.
func (s *Sink) NumPorts() int { return 1 }

// TickBatch implements Endpoint.
func (s *Sink) TickBatch(n int, in, out []*token.Batch) {
	for _, slot := range in[0].Slots {
		s.Received = append(s.Received, Arrival{Cycle: s.cycle + int64(slot.Offset), Tok: slot.Tok})
	}
	s.cycle += int64(n)
}

// Wire forwards tokens from port 0 to port 1 and vice versa with zero
// internal delay (all delay lives in the links). It is useful for splicing
// instrumentation into a link.
type Wire struct {
	name string
}

// NewWire returns a two-port pass-through endpoint.
func NewWire(name string) *Wire { return &Wire{name: name} }

// Name implements Endpoint.
func (w *Wire) Name() string { return w.name }

// NumPorts implements Endpoint.
func (w *Wire) NumPorts() int { return 2 }

// TickBatch implements Endpoint.
func (w *Wire) TickBatch(n int, in, out []*token.Batch) {
	for _, slot := range in[0].Slots {
		out[1].Put(int(slot.Offset), slot.Tok)
	}
	for _, slot := range in[1].Slots {
		out[0].Put(int(slot.Offset), slot.Tok)
	}
}
