// Quickstart: boot a simulated 8-node rack behind a top-of-rack switch on
// a 200 Gbit/s, 2 us network, then use it like a real cluster — ping
// between nodes and stream with iperf — while every packet moves through
// the cycle-exact token network.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/softstack"
)

func main() {
	clk := clock.New(clock.DefaultTargetClock)

	// 1. Describe the target: one ToR switch, eight quad-core blades.
	topo := core.Rack("tor0", 8, core.QuadCore)

	// 2. Deploy: the manager builds images, assigns MACs/IPs, populates
	//    the switch's MAC table, and plans the EC2 instance mapping.
	cluster, err := core.Deploy(topo, core.DeployConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed %d nodes; host plan: %d x f1.16xlarge ($%.2f/h spot)\n\n",
		len(cluster.Servers),
		cluster.Deployment.Count("f1.16xlarge"),
		cluster.Deployment.HourlyCost(true))

	// 3. Ping node 7 from node 0.
	src, dst := cluster.Servers[0], cluster.Servers[7]
	var pings []softstack.PingResult
	src.Ping(0, dst.IP(), 5, clk.CyclesInMicros(100), func(r []softstack.PingResult) { pings = r })
	if ok, err := cluster.RunUntil(func() bool { return pings != nil }, clk.CyclesInMicros(5000)); err != nil || !ok {
		log.Fatalf("ping failed: %v", err)
	}
	fmt.Printf("ping %v -> %v:\n", src.IP(), dst.IP())
	for _, p := range pings {
		fmt.Printf("  seq=%d time=%.2f us\n", p.Seq, clk.Micros(p.RTT))
	}

	// 4. iperf between nodes 1 and 2: the modeled Linux stack, not the
	//    200 Gbit/s link, is the bottleneck — exactly the paper's result.
	server := apps.NewIperfServer(cluster.Servers[2])
	dur := clk.CyclesInMicros(5000)
	apps.NewIperfClient(cluster.Servers[1], cluster.Servers[2].IP(), cluster.Runner.Cycle(), dur)
	if err := cluster.RunFor(dur + clk.CyclesInMicros(500)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\niperf %v -> %v: %.2f Gbit/s (paper: 1.4 Gbit/s)\n",
		cluster.Servers[1].IP(), cluster.Servers[2].IP(), server.GoodputGbps())

	// 5. Report how fast the simulation itself ran.
	rate, err := core.MeasureRate(cluster, cluster.LinkLatency*100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulation rate: %v\n", rate)
}
