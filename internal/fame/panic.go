package fame

import (
	"errors"
	"fmt"

	"repro/internal/clock"
)

// EndpointPanicError is what a panicking endpoint surfaces as: instead of
// tearing down the whole process (and, in a multi-process run, every
// healthy shard sharing it), the runner converts the panic into a
// structured error naming the endpoint and the target cycle window it was
// being ticked toward. The runner itself stays alive but is poisoned —
// token channels may be mid-round — so the only legal next steps are
// Restore (rewind to a checkpoint) or throwing the runner away. This is
// the in-process half of the self-healing story: a buggy device model
// costs a rewind, not a fleet restart.
type EndpointPanicError struct {
	Endpoint string       // Name() of the endpoint whose tick panicked
	Cycle    clock.Cycles // start of the cycle window being simulated
	Value    any          // the recovered panic value
	Stack    []byte       // goroutine stack at the panic site
}

func (e *EndpointPanicError) Error() string {
	return fmt.Sprintf("fame: endpoint %q panicked in cycle window starting at %d: %v", e.Endpoint, e.Cycle, e.Value)
}

// ErrPoisoned is returned by Run/RunParallel/Save after an endpoint panic
// left the in-flight token state mid-round. Restore (or a successful
// SetCycle as part of a partition-level restore) clears it.
var ErrPoisoned = errors.New("fame: runner poisoned by an endpoint panic; Restore a checkpoint before running again")
