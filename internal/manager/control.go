// The shard control protocol ("FSCP") is the small versioned framing the
// coordinator and its shard worker processes speak over the control TCP
// connection — separate from the token plane, because control traffic
// (assignments, run commands, heartbeats, failure reports) must keep
// flowing when the token plane is being torn down and rebuilt around a
// failure.
//
// Frame layout (all integers big-endian):
//
//	magic   u32  0x46534350 "FSCP"
//	version u16  1
//	type    u8   message type (msg* constants)
//	flags   u8   0 (reserved)
//	length  u32  payload byte count, <= maxControlPayload
//	payload [length] bytes (JSON-encoded message struct)
//	crc     u32  CRC-32 (IEEE) of payload
//
// Decoding is defensive end to end: bad magic, unknown versions,
// oversized lengths, truncated payloads and CRC mismatches are all
// structured errors, never panics or unbounded allocations —
// FuzzControlRead holds that line.
package manager

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	controlMagic   uint32 = 0x4653_4350 // "FSCP"
	controlVersion uint16 = 1
	// maxControlPayload bounds a frame's payload; the largest legitimate
	// message is an assign carrying a full cluster spec, far below 1 MiB.
	maxControlPayload = 1 << 20
)

// Control message types.
const (
	msgHello      byte = iota + 1 // shard → coordinator, once per connection
	msgAssign                     // coordinator → shard: (re)build these units
	msgReady                      // shard → coordinator: assignment applied
	msgRunTo                      // coordinator → shard: advance to target cycle
	msgProgress                   // shard → coordinator: heartbeat with cycle
	msgDone                       // shard → coordinator: run-to/checkpoint/report complete
	msgError                      // shard → coordinator: slice failed (structured)
	msgShutdown                   // coordinator → shard: exit cleanly
	msgCheckpoint                 // coordinator → shard: persist a generation now
	msgQuiesce                    // coordinator → shard: stop, report durable cycle
	msgReport                     // coordinator → shard: report component hashes
	msgMax                        // first invalid type
)

// HelloMsg identifies a shard process on its control connection.
type HelloMsg struct {
	Name  string `json:"name"`
	PID   int    `json:"pid"`
	Proto int    `json:"proto"` // control protocol version the shard speaks
}

// UnitAssign names one partition unit a shard hosts and where that
// unit's checkpoint generations live. Store directories belong to the
// UNIT, not the process: when recovery re-packs a unit onto a different
// process, the new owner finds the unit's generations in the same place.
type UnitAssign struct {
	Unit     int    `json:"unit"` // root downlink index
	StoreDir string `json:"storeDir"`
}

// AssignMsg tells a shard which slice of the cluster to host. The shard
// tears down whatever it was running, rebuilds the named units from the
// spec, restores them to RestoreCycle when Restore is set, dials one
// token connection per unit (tagged with Epoch), and replies Ready.
type AssignMsg struct {
	Epoch        uint32       `json:"epoch"`
	Spec         ClusterSpec  `json:"spec"`
	Units        []UnitAssign `json:"units"`
	TokenAddr    string       `json:"tokenAddr"`
	Restore      bool         `json:"restore,omitempty"`
	RestoreCycle uint64       `json:"restoreCycle,omitempty"`
	Retain       int          `json:"retain,omitempty"` // checkpoint generations to keep
	// StallAt/StallMs are the chaos hook for the stall watchdog test: at
	// target cycle StallAt the shard stops advancing for StallMs of wall
	// time while its heartbeats keep flowing — alive but stuck.
	StallAt uint64 `json:"stallAt,omitempty"`
	StallMs int    `json:"stallMs,omitempty"`
}

// ReadyMsg acknowledges an assign: the shard is rebuilt, restored and
// its token plane dialed, standing at Cycle.
type ReadyMsg struct {
	Epoch uint32 `json:"epoch"`
	Cycle uint64 `json:"cycle"`
}

// RunToMsg commands a shard to advance to the target cycle and persist a
// checkpoint generation there. Final marks the last slice of the run:
// the Done reply must carry component hashes.
type RunToMsg struct {
	Target uint64 `json:"target"`
	Final  bool   `json:"final,omitempty"`
}

// ProgressMsg is the shard heartbeat: any frame renews the liveness
// lease; the carried cycle feeds the progress (stall) watchdog.
type ProgressMsg struct {
	Cycle uint64 `json:"cycle"`
}

// DoneMsg completes a run-to, checkpoint, quiesce or report command.
// Hashes (component name → hash) is present on final and report replies.
// Epoch lets the coordinator drop replies that raced a recovery: a Done
// for a superseded epoch is stale, not a protocol violation.
type DoneMsg struct {
	Epoch  uint32            `json:"epoch"`
	Cycle  uint64            `json:"cycle"`
	Hashes map[string]uint64 `json:"hashes,omitempty"`
}

// ErrorMsg reports a failed slice (bridge death, restore failure, a
// contained endpoint panic) without killing the control connection: the
// shard stays adoptable for the next assignment. Epoch disambiguates
// errors from a torn-down epoch still in flight during recovery.
type ErrorMsg struct {
	Epoch uint32 `json:"epoch"`
	Msg   string `json:"msg"`
	Cycle uint64 `json:"cycle"`
}

// WriteControl frames and writes one control message. msg is
// JSON-encoded; nil writes an empty payload.
func WriteControl(w io.Writer, typ byte, msg any) error {
	var payload []byte
	if msg != nil {
		var err error
		payload, err = json.Marshal(msg)
		if err != nil {
			return fmt.Errorf("manager: control encode: %w", err)
		}
	}
	if len(payload) > maxControlPayload {
		return fmt.Errorf("manager: control frame payload %d exceeds %d", len(payload), maxControlPayload)
	}
	buf := make([]byte, 12+len(payload)+4)
	binary.BigEndian.PutUint32(buf[0:4], controlMagic)
	binary.BigEndian.PutUint16(buf[4:6], controlVersion)
	buf[6] = typ
	buf[7] = 0
	binary.BigEndian.PutUint32(buf[8:12], uint32(len(payload)))
	copy(buf[12:], payload)
	binary.BigEndian.PutUint32(buf[12+len(payload):], crc32.ChecksumIEEE(payload))
	_, err := w.Write(buf)
	return err
}

// ReadControl reads and validates one control frame, returning its type
// and raw payload. Every malformation is a structured error; no input
// can panic it or make it allocate more than maxControlPayload.
func ReadControl(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("manager: control frame header: %w", err)
	}
	if m := binary.BigEndian.Uint32(hdr[0:4]); m != controlMagic {
		return 0, nil, fmt.Errorf("manager: control frame: bad magic %#x", m)
	}
	if v := binary.BigEndian.Uint16(hdr[4:6]); v != controlVersion {
		return 0, nil, fmt.Errorf("manager: control frame: unsupported version %d", v)
	}
	typ = hdr[6]
	if typ == 0 || typ >= msgMax {
		return 0, nil, fmt.Errorf("manager: control frame: unknown type %d", typ)
	}
	n := binary.BigEndian.Uint32(hdr[8:12])
	if n > maxControlPayload {
		return 0, nil, fmt.Errorf("manager: control frame: payload length %d exceeds %d", n, maxControlPayload)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("manager: control frame payload: %w", err)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return 0, nil, fmt.Errorf("manager: control frame crc: %w", err)
	}
	if want, got := binary.BigEndian.Uint32(crcBuf[:]), crc32.ChecksumIEEE(payload); want != got {
		return 0, nil, fmt.Errorf("manager: control frame: payload crc %08x, frame claims %08x", got, want)
	}
	return typ, payload, nil
}

// decodeControl unmarshals a control payload into out with a structured
// error. JSON decoding never panics on malformed input, which keeps the
// whole read path fuzz-clean.
func decodeControl(typ byte, payload []byte, out any) error {
	if err := json.Unmarshal(payload, out); err != nil {
		return fmt.Errorf("manager: control message type %d: %w", typ, err)
	}
	return nil
}
