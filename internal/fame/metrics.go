package fame

import (
	"repro/internal/obs"
)

// This file wires the token runtime into the observability layer
// (internal/obs). The runner's hot loops are the costliest code in the
// whole simulator, so the instruments follow two rules:
//
//   - a nil *runnerMetrics disables everything: the uninstrumented loop
//     executes exactly the pre-obs code (one pointer nil check per round);
//   - every enabled-path record is an uncontended atomic add (obs
//     instruments); clock reads — the one genuinely expensive part — are
//     paid only on sampled rounds (one round in tickSampleMask+1). On a
//     sampled round the sequential runner chains time.Now() reads across
//     endpoints (one read per tick, the previous tick's end is this
//     tick's start), while the parallel runner pays two reads per tick so
//     ring-wait time never pollutes the tick histogram. firesim bench
//     measures and reports the actual sim-rate overhead against the <5%
//     budget.
//
// Metric names, all under the fame_ prefix:
//
//	fame_rounds_total                        rounds completed (all modes)
//	fame_cycles_total                        target cycles simulated
//	fame_run_wall_nanos_total                wall time inside round loops
//	fame_tokens_total                        valid tokens emitted, all endpoints
//	fame_pool_allocs_total                   batch-pool misses (fresh allocations)
//	fame_pool_drops_total                    recycled batches dropped (want: 0)
//	fame_cycle                               gauge: current target cycle
//	fame_tick_nanos{endpoint=E}              histogram: sampled TickBatch wall time
//	fame_endpoint_tokens_total{endpoint=E}   valid tokens emitted by E
//
// Token and round counters are exact in every mode — they are pure
// functions of target behaviour and the equivalence tests hold them to
// it. fame_tick_nanos is host-side profiling and is sampled: both run
// modes time the same rounds (round index ≡ 0 mod tickSampleMask+1), so
// their histograms stay comparable. In sequential mode it is an
// attribution — endpoint ticks include their share of the runner's
// inter-tick bookkeeping, and a sampled round's tick times sum to its
// wall time.
type runnerMetrics struct {
	rounds     *obs.Counter
	cycles     *obs.Counter
	runWall    *obs.Counter
	tokens     *obs.Counter
	poolAllocs *obs.Counter
	poolDrops  *obs.Counter
	cycleGauge *obs.Gauge

	// Per-endpoint instruments, indexed like Runner.endpoints. Histograms
	// and counters are internally atomic, so the parallel runner's worker
	// goroutines need no extra synchronisation when writing them.
	tick     []*obs.Histogram
	epTokens []*obs.Counter
}

// EnableMetrics attaches the runner to a registry: every subsequent Run,
// RunParallel and Measure updates the fame_* instruments described in
// metrics.go. Passing nil detaches (the default). Like SetInjector, it
// may be called between runs; mid-run changes are not supported.
//
// Per-endpoint instruments are named by endpoint, so they are created
// once the topology is final (at first build); enabling metrics after the
// first Run is also fine.
func (r *Runner) EnableMetrics(reg *obs.Registry) {
	r.metricsReg = reg
	if reg == nil {
		r.metrics = nil
		return
	}
	if r.built {
		r.initMetrics()
	}
}

// initMetrics instantiates the instruments against r.metricsReg. Called
// from build() (or EnableMetrics when already built), never on hot paths.
func (r *Runner) initMetrics() {
	reg := r.metricsReg
	m := &runnerMetrics{
		rounds:     reg.Counter("fame_rounds_total"),
		cycles:     reg.Counter("fame_cycles_total"),
		runWall:    reg.Counter("fame_run_wall_nanos_total"),
		tokens:     reg.Counter("fame_tokens_total"),
		poolAllocs: reg.Counter("fame_pool_allocs_total"),
		poolDrops:  reg.Counter("fame_pool_drops_total"),
		cycleGauge: reg.Gauge("fame_cycle"),
		tick:       make([]*obs.Histogram, len(r.endpoints)),
		epTokens:   make([]*obs.Counter, len(r.endpoints)),
	}
	for i, e := range r.endpoints {
		m.tick[i] = reg.Histogram(obs.Label("fame_tick_nanos", "endpoint", e.Name()))
		m.epTokens[i] = reg.Counter(obs.Label("fame_endpoint_tokens_total", "endpoint", e.Name()))
	}
	r.metrics = m
}

// tickSampleMask selects the rounds whose endpoint ticks are timed:
// round indices where round&tickSampleMask == 0, i.e. one round in 32.
// The round index restarts at every Run/RunParallel call, so short
// slices (a supervisor's 4-step health-check cadence) still sample at
// least once per slice. A sampled round costs one time.Now per endpoint;
// on hosts with a slow clocksource that is the dominant instrumentation
// cost, which is why the rate is this conservative. Untyped so it masks
// both the sequential runner's clock.Cycles round index and the parallel
// runner's int one.
const tickSampleMask = 31

// sampledRounds returns how many of n rounds carry tick timings — the
// expected fame_tick_nanos observation count per endpoint for a run of n
// rounds (exported to tests via the obs_test helpers).
func sampledRounds(n uint64) uint64 { return (n + tickSampleMask) / (tickSampleMask + 1) }

// flushProgress publishes locally accumulated heartbeat state: rounds
// and tokens since the last flush, plus the current cycle gauge. The hot
// loops call it on sampled rounds and at run end, so quiet rounds cost
// no atomic RMW traffic while external readers still see progress at
// sample granularity.
func (m *runnerMetrics) flushProgress(rounds, toks *uint64, step uint64, cycle int64) {
	if *rounds > 0 {
		m.rounds.Add(*rounds)
		m.cycles.Add(*rounds * step)
		*rounds = 0
	}
	if *toks > 0 {
		m.tokens.Add(*toks)
		*toks = 0
	}
	m.cycleGauge.Set(cycle)
}

// flushEpTokens publishes locally accumulated per-endpoint token counts
// (indexed like Runner.endpoints) and zeroes the accumulator. Same flush
// cadence as flushProgress: sampled rounds and run end, so the hot loop
// pays no per-round atomic RMW per endpoint.
func (m *runnerMetrics) flushEpTokens(acc []uint64) {
	for i, t := range acc {
		if t > 0 {
			m.epTokens[i].Add(t)
			acc[i] = 0
		}
	}
}
