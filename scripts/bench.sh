#!/usr/bin/env bash
# Measure sim-rate across topology sizes (Run vs RunParallel, with and
# without metrics) and write BENCH_fame.json at the repo root. Extra
# arguments pass straight through to `firesim bench`, e.g.:
#
#   scripts/bench.sh -nodes 2,4,8,16 -rounds 4096
#
# Overhead numbers alternate base and instrumented regions on one warm
# cluster (median of flank-normalised ratios, full-region warmup); on a
# busy host the small topologies still jitter by a few percent, so prefer
# the raw signed medians trended in BENCH_history.jsonl (and the
# controlled Go benchmark below) when quoting the metrics cost:
#
#   go test -run - -bench DeployedRun ./internal/manager/
#
# Every invocation also appends a timestamped digest line to
# BENCH_history.jsonl, so the perf trajectory is tracked across PRs.
#
# The default invocation includes the multi-core worker sweep (workers
# 1/2/4/8 at 8-64 nodes, speedup vs the 1-worker baseline per cell) and
# the sim-rate-vs-scale pass (the paper's Fig. 9 curve at 8/64/256 nodes,
# recorded as scale_curve in BENCH_fame.json and scale_hz in the history).
# The distributed token-plane pass (8 nodes over 3 loopback-TCP shard
# processes, idle and dense variants, recorded as dist_results /
# dist_hz / dist_wire_bytes_per_window) also runs by default.
#
# Flags are last-wins, so pass -worker-sweep "" or -scale-nodes "" to skip
# a pass, -dist-nodes 0 to skip the distributed pass, or override
# parameters — the paper's full 1024-node datacenter is opt-in because it
# multiplies the bench wall time:
#
#   scripts/bench.sh -worker-sweep 1,2 -sweep-nodes 8,16 -multiplexed
#   scripts/bench.sh -scale-nodes 8,64,256,1024
set -euo pipefail
cd "$(dirname "$0")/.."

go run ./cmd/firesim bench -out BENCH_fame.json -history BENCH_history.jsonl \
    -worker-sweep 1,2,4,8 -sweep-nodes 8,16,32,64 \
    -scale-nodes 8,64,256 -scale-rounds 1024 \
    -dist-nodes 8 "$@"
