package nic

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/clock"
	"repro/internal/ethernet"
	"repro/internal/token"
)

// fakeMem is a flat DMA target with fixed per-transfer latency.
type fakeMem struct {
	mem     []byte
	latency clock.Cycles
}

func newFakeMem() *fakeMem { return &fakeMem{mem: make([]byte, 1<<20), latency: 50} }

func (m *fakeMem) ReadDMA(now clock.Cycles, addr uint64, buf []byte) clock.Cycles {
	copy(buf, m.mem[addr:])
	return now + m.latency
}

func (m *fakeMem) WriteDMA(now clock.Cycles, addr uint64, data []byte) clock.Cycles {
	copy(m.mem[addr:], data)
	return now + m.latency
}

// runTicks advances the NIC for cycles, feeding empty input tokens, and
// returns all valid output tokens with their cycles.
func runTicks(n *NIC, start clock.Cycles, cycles int) (out []token.Token, cyclesAt []clock.Cycles) {
	for i := 0; i < cycles; i++ {
		now := start + clock.Cycles(i)
		tok := n.Tick(now, token.Empty)
		if tok.Valid {
			out = append(out, tok)
			cyclesAt = append(cyclesAt, now)
		}
	}
	return out, cyclesAt
}

func TestSendPath(t *testing.T) {
	mem := newFakeMem()
	n := New(DefaultConfig(0xaa), mem)
	payload := []byte("0123456789abcdef01234567") // 24 bytes = 3 flits
	copy(mem.mem[0x1000:], payload)
	n.MMIOStore(RegSendReq, 0x1000|uint64(len(payload))<<48)

	out, at := runTicks(n, 0, 200)
	if len(out) != 3 {
		t.Fatalf("sent %d flits, want 3", len(out))
	}
	// Data must not flow before the DMA completes (latency 50).
	if at[0] < mem.latency {
		t.Errorf("first flit at cycle %d, before DMA completion %d", at[0], mem.latency)
	}
	// Flits must be contiguous and the final one marked Last.
	if at[2] != at[0]+2 {
		t.Errorf("flits not contiguous: %v", at)
	}
	if !out[2].Last || out[0].Last || out[1].Last {
		t.Errorf("Last flags wrong: %v %v %v", out[0].Last, out[1].Last, out[2].Last)
	}
	if got := ethernet.FromFlits([]uint64{out[0].Data, out[1].Data, out[2].Data}); !bytes.Equal(got, payload) {
		t.Errorf("payload = %q, want %q", got, payload)
	}
	// A send completion must be queued.
	if n.MMIOLoad(RegSendComp) != 1 {
		t.Error("no send completion")
	}
	if st := n.Stats(); st.PacketsSent != 1 || st.FlitsSent != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAlignerUnalignedSend(t *testing.T) {
	// Packet starting at a non-8-byte-aligned address: the aligner must
	// shift so that the first byte delivered is the packet's first byte.
	mem := newFakeMem()
	n := New(DefaultConfig(0xaa), mem)
	copy(mem.mem[0x1000:], "XXXhello, unaligned world!!!")
	const addr, plen = 0x1003, 22 // "hello, unaligned world"
	n.MMIOStore(RegSendReq, addr|uint64(plen)<<48)

	out, _ := runTicks(n, 0, 200)
	var flits []uint64
	for _, tok := range out {
		flits = append(flits, tok.Data)
	}
	got := ethernet.FromFlits(flits)[:plen]
	if string(got) != "hello, unaligned world" {
		t.Errorf("aligner output = %q", got)
	}
}

func TestRateLimiterHalvesBandwidth(t *testing.T) {
	mem := newFakeMem()
	n := New(DefaultConfig(0xaa), mem)
	n.SetRateLimit(1, 2) // k/p = 1/2 rate
	const plen = 800     // 100 flits
	n.MMIOStore(RegSendReq, 0x0|uint64(plen)<<48)

	out, at := runTicks(n, 0, 1000)
	if len(out) != 100 {
		t.Fatalf("sent %d flits, want 100", len(out))
	}
	span := at[len(at)-1] - at[0]
	// At half rate, 100 flits should take ~200 cycles (within bucket-depth
	// slack), not ~100 at line rate.
	if span < 175 || span > 225 {
		t.Errorf("100 flits took %d cycles at 1/2 rate, want ~200", span)
	}
}

func TestRateLimiterBackpressures(t *testing.T) {
	// Internal throttling: the NIC must still send *all* flits, just
	// slower — nothing is lost, unlike external request dropping.
	mem := newFakeMem()
	n := New(DefaultConfig(0xaa), mem)
	n.SetRateLimit(1, 10)
	const plen = 160 // 20 flits
	n.MMIOStore(RegSendReq, 0x0|uint64(plen)<<48)
	out, _ := runTicks(n, 0, 400)
	if len(out) != 20 {
		t.Errorf("sent %d flits, want all 20", len(out))
	}
}

func TestSetRateLimitGbps(t *testing.T) {
	mem := newFakeMem()
	n := New(DefaultConfig(0xaa), mem)
	cases := []struct {
		gbps float64
		k, p uint32
	}{
		{200, 1, 1},
		{100, 1, 2},
		{40, 1, 5},
		{10, 1, 20},
		{1, 1, 200},
	}
	for _, tc := range cases {
		n.SetRateLimitGbps(tc.gbps, 200)
		if n.rateK != tc.k || n.rateP != tc.p {
			t.Errorf("%g Gbps: k/p = %d/%d, want %d/%d", tc.gbps, n.rateK, n.rateP, tc.k, tc.p)
		}
	}
}

func TestReceivePath(t *testing.T) {
	mem := newFakeMem()
	n := New(DefaultConfig(0xbb), mem)
	n.MMIOStore(RegRecvReq, 0x2000)

	payload := []byte("received packet payload!") // 24 bytes = 3 flits
	flits := ethernet.ToFlits(payload)
	now := clock.Cycles(0)
	for i, f := range flits {
		n.Tick(now, token.Token{Data: f, Valid: true, Last: i == len(flits)-1})
		now++
	}
	// Allow the writer DMA to finish.
	for i := 0; i < 100; i++ {
		n.Tick(now, token.Empty)
		now++
	}
	if got := n.MMIOLoad(RegRecvComp); got != uint64(len(payload)) {
		t.Errorf("recv completion length = %d, want %d", got, len(payload))
	}
	if !bytes.Equal(mem.mem[0x2000:0x2000+len(payload)], payload) {
		t.Errorf("DMA'd payload = %q", mem.mem[0x2000:0x2000+len(payload)])
	}
	if st := n.Stats(); st.PacketsRecv != 1 || st.FlitsRecv != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPacketBufferDropsWholePackets(t *testing.T) {
	mem := newFakeMem()
	cfg := DefaultConfig(0xbb)
	cfg.PacketBufBytes = 40 // fits one 24-byte packet, not two
	n := New(cfg, mem)
	// No receive buffers posted, so packets pile up in the packet buffer.
	payload := make([]byte, 24)
	flits := ethernet.ToFlits(payload)
	now := clock.Cycles(0)
	for pkt := 0; pkt < 2; pkt++ {
		for i, f := range flits {
			n.Tick(now, token.Token{Data: f, Valid: true, Last: i == len(flits)-1})
			now++
		}
	}
	st := n.Stats()
	if st.RecvDropped != 1 {
		t.Errorf("RecvDropped = %d, want 1 (drop at full-packet granularity)", st.RecvDropped)
	}
	// The first packet must still be intact and deliverable.
	n.MMIOStore(RegRecvReq, 0x3000)
	for i := 0; i < 100; i++ {
		n.Tick(now, token.Empty)
		now++
	}
	if n.Stats().PacketsRecv != 1 {
		t.Error("surviving packet not delivered")
	}
}

func TestInterrupts(t *testing.T) {
	mem := newFakeMem()
	n := New(DefaultConfig(0xbb), mem)
	if n.IntrPending() {
		t.Error("fresh NIC asserts interrupt")
	}
	// Receive a packet with recv interrupts masked off: no interrupt.
	n.MMIOStore(RegRecvReq, 0x2000)
	flits := ethernet.ToFlits(make([]byte, 16))
	now := clock.Cycles(0)
	for i, f := range flits {
		n.Tick(now, token.Token{Data: f, Valid: true, Last: i == len(flits)-1})
		now++
	}
	for i := 0; i < 100; i++ {
		n.Tick(now, token.Empty)
		now++
	}
	if n.IntrPending() {
		t.Error("interrupt asserted while masked")
	}
	n.MMIOStore(RegIntrMask, IntrRecv)
	if !n.IntrPending() {
		t.Error("interrupt not asserted with completion pending and unmasked")
	}
	// Popping the completion clears the interrupt.
	n.MMIOLoad(RegRecvComp)
	if n.IntrPending() {
		t.Error("interrupt still asserted after completion drained")
	}
}

func TestCountsRegister(t *testing.T) {
	mem := newFakeMem()
	n := New(DefaultConfig(0xbb), mem)
	sendFree, recvFree, sendComp, recvComp := CountsOf(n.MMIOLoad(RegCounts))
	if sendFree != sendReqQueueCap || recvFree != recvReqQueueCap || sendComp != 0 || recvComp != 0 {
		t.Errorf("fresh counts = %d %d %d %d", sendFree, recvFree, sendComp, recvComp)
	}
	n.MMIOStore(RegSendReq, 0x0|8<<48)
	n.MMIOStore(RegRecvReq, 0x100)
	sendFree, recvFree, _, _ = CountsOf(n.MMIOLoad(RegCounts))
	if sendFree != sendReqQueueCap-1 || recvFree != recvReqQueueCap-1 {
		t.Errorf("counts after enqueue = %d %d", sendFree, recvFree)
	}
}

func TestSendQueueOverflowRejected(t *testing.T) {
	mem := newFakeMem()
	n := New(DefaultConfig(0xbb), mem)
	for i := 0; i < sendReqQueueCap+3; i++ {
		n.MMIOStore(RegSendReq, 0x0|8<<48)
	}
	if st := n.Stats(); st.SendRejected != 3 {
		t.Errorf("SendRejected = %d, want 3", st.SendRejected)
	}
}

func TestMACRegister(t *testing.T) {
	mem := newFakeMem()
	n := New(DefaultConfig(0x0200_0000_0001), mem)
	if got := n.MMIOLoad(RegMACAddr); got != 0x0200_0000_0001 {
		t.Errorf("MAC register = %#x", got)
	}
}

func TestRateLimitViaMMIO(t *testing.T) {
	mem := newFakeMem()
	n := New(DefaultConfig(0xbb), mem)
	n.MMIOStore(RegRateLim, uint64(3)|uint64(7)<<32)
	if n.rateK != 3 || n.rateP != 7 {
		t.Errorf("MMIO rate limit = %d/%d, want 3/7", n.rateK, n.rateP)
	}
}

func TestLoopbackTwoNICs(t *testing.T) {
	// Wire NIC A's output directly to NIC B's input (zero-latency wire)
	// and push a full frame through MMIO send -> token stream -> MMIO
	// receive.
	memA, memB := newFakeMem(), newFakeMem()
	a := New(DefaultConfig(0x1), memA)
	b := New(DefaultConfig(0x2), memB)

	frame := &ethernet.Frame{Dst: 0x2, Src: 0x1, Type: ethernet.TypeIPv4, Payload: []byte("ping across the wire")}
	buf, err := frame.Encode()
	if err != nil {
		t.Fatal(err)
	}
	copy(memA.mem[0x1000:], buf)
	a.MMIOStore(RegSendReq, 0x1000|uint64(len(buf))<<48)
	b.MMIOStore(RegRecvReq, 0x4000)

	for i := clock.Cycles(0); i < 500; i++ {
		tok := a.Tick(i, token.Empty)
		b.Tick(i, tok)
	}
	gotLen := b.MMIOLoad(RegRecvComp)
	if gotLen == 0 {
		t.Fatal("no packet received")
	}
	got, err := ethernet.DecodeFrame(memB.mem[0x4000 : 0x4000+gotLen])
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != "ping across the wire" {
		t.Errorf("payload = %q", got.Payload)
	}
	if got.Dst != 0x2 || got.Src != 0x1 {
		t.Errorf("frame header = %+v", got)
	}
}

// TestLoopbackProperty pushes random-size random-content frames through
// an NIC-to-NIC wire and checks bit-exact delivery, send completions, and
// flit accounting, for arbitrary (unaligned) source addresses.
func TestLoopbackProperty(t *testing.T) {
	check := func(seed uint64, sizeRaw uint16, misalign uint8) bool {
		memA, memB := newFakeMem(), newFakeMem()
		a := New(DefaultConfig(0x1), memA)
		b := New(DefaultConfig(0x2), memB)

		size := int(sizeRaw)%2000 + ethernet.HeaderLen
		payload := make([]byte, size-ethernet.HeaderLen)
		rng := seed
		for i := range payload {
			rng ^= rng >> 12
			rng ^= rng << 25
			rng ^= rng >> 27
			payload[i] = byte(rng * 2685821657736338717)
		}
		frame := &ethernet.Frame{Dst: 0x2, Src: 0x1, Type: ethernet.TypeIPv4, Payload: payload}
		buf, err := frame.Encode()
		if err != nil {
			return false
		}
		addr := 0x1000 + uint64(misalign%8)
		copy(memA.mem[addr:], buf)
		a.MMIOStore(RegSendReq, addr|uint64(len(buf))<<48)
		b.MMIOStore(RegRecvReq, 0x4000)

		for i := clock.Cycles(0); i < 3000; i++ {
			b.Tick(i, a.Tick(i, token.Empty))
		}
		gotLen := b.MMIOLoad(RegRecvComp)
		// The wire carries whole 64-bit flits, so the delivered length is
		// the flit-padded frame length; the frame's own length field
		// recovers the exact byte count.
		if int(gotLen) != (len(buf)+7)/8*8 {
			return false
		}
		got, err := ethernet.DecodeFrame(memB.mem[0x4000 : 0x4000+gotLen])
		if err != nil {
			return false
		}
		if !bytes.Equal(got.Payload, payload) || got.Dst != 0x2 || got.Src != 0x1 {
			return false
		}
		return a.MMIOLoad(RegSendComp) == 1 &&
			a.Stats().FlitsSent == b.Stats().FlitsRecv
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
