#!/usr/bin/env bash
# Full local gate: static checks, build, and the test suite under the race
# detector. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "OK"
