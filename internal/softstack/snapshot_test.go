package softstack

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ethernet"
	"repro/internal/snapshot"
	"repro/internal/snapshot/snaptest"
	"repro/internal/token"
)

func tickNode(n *Node, cycles int) {
	const step = 64
	in := []*token.Batch{token.NewBatch(step)}
	out := []*token.Batch{token.NewBatch(step)}
	for c := 0; c < cycles; c += step {
		out[0].Reset(step)
		n.TickBatch(step, in, out)
	}
}

func TestNodeSnapshotConformance(t *testing.T) {
	mk := func() *Node {
		return NewNode(Config{Name: "n0", MAC: 0x11, IP: 0x0a000001, Cores: 2, Seed: 7,
			StaticARP: map[ethernet.IP]ethernet.MAC{0x0a000002: 0x22}})
	}
	n := mk()
	// A raw stream is pure data-plane state: the generator, TX queue and
	// counters populate without scheduling any kernel events, so the node
	// stays quiescent and checkpointable mid-stream.
	n.StartRawStream(10, 0x22, 200, 1.0, 100_000)
	tickNode(n, 512)
	if err := n.Quiescent(); err != nil {
		t.Fatalf("raw stream broke quiescence: %v", err)
	}
	snaptest.RoundTrip(t, n, func() snapshot.Snapshotter { return mk() })
}

func TestNodeSaveRefusesPendingEvents(t *testing.T) {
	a := NewNode(Config{Name: "a", MAC: 1, IP: 1, Cores: 1})
	a.Ping(5, 2, 1, 100, nil)
	tickNode(a, 64)
	err := snapshotErr(a)
	if err == nil || !strings.Contains(err.Error(), "a") {
		t.Fatalf("Save with ping in flight: err = %v", err)
	}
}

func TestNodeRestoreRejectsCoreMismatch(t *testing.T) {
	n := NewNode(Config{Name: "n", MAC: 1, IP: 1, Cores: 2})
	data := snaptest.Save(t, n)
	other := NewNode(Config{Name: "n", MAC: 1, IP: 1, Cores: 4})
	r, _, err := snapshot.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	err = other.Restore(r)
	if err == nil || !strings.Contains(err.Error(), "cores") {
		t.Fatalf("restore into 4-core node from 2-core checkpoint: err = %v", err)
	}
}

func snapshotErr(n *Node) error {
	var sink discard
	w, err := snapshot.NewWriter(&sink, snapshot.Header{Step: 8})
	if err != nil {
		return err
	}
	w.Section("state")
	return n.Save(w)
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
