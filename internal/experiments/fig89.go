package experiments

import (
	"fmt"
	"strings"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/hostplatform"
	"repro/internal/stats"
)

func init() {
	register("fig8", func(sc Scale) (Result, error) { return Fig8(sc) })
	register("fig9", func(sc Scale) (Result, error) { return Fig9(sc) })
}

// Fig8Row is one scale point: simulation rate vs number of simulated
// nodes.
type Fig8Row struct {
	Nodes int
	// MeasuredMHz is this Go simulator's achieved rate (idle cluster,
	// tokens still exchanged — like the paper's boot-and-power-off
	// benchmark, where empty tokens move exactly as if there were
	// traffic).
	MeasuredMHz float64
	// ProjStandardMHz / ProjSupernodeMHz are the modeled EC2 F1 rates for
	// standard (1 node/FPGA) and supernode (4 nodes/FPGA) mappings.
	ProjStandardMHz  float64
	ProjSupernodeMHz float64
}

// Fig8Result is the scale sweep.
type Fig8Result struct {
	Rows []Fig8Row
}

// Title implements Result.
func (Fig8Result) Title() string { return "Figure 8: Simulation rate vs. # simulated target nodes" }

// Render implements Result.
func (r Fig8Result) Render() string {
	t := stats.NewTable("Nodes", "Measured (MHz)", "EC2 proj. standard (MHz)", "EC2 proj. supernode (MHz)")
	for _, row := range r.Rows {
		t.AddRow(row.Nodes, row.MeasuredMHz, row.ProjStandardMHz, row.ProjSupernodeMHz)
	}
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString("\nPaper reference: rate falls with scale as token synchronisation spans more\n" +
		"hosts; the 1024-node supernode point runs at ~3.4 MHz (<1000x slowdown).\n")
	return b.String()
}

// fig8Topology builds an idle cluster of the given size using the same
// shapes as the paper (single ToR up to 32 nodes, ToR+root above).
func fig8Topology(nodes int) (*core.Topology, error) {
	switch {
	case nodes <= 32:
		return core.Rack("tor0", nodes, core.QuadCore), nil
	case nodes <= 256:
		racks := (nodes + 31) / 32
		root := core.NewSwitch("root")
		for i := 0; i < racks; i++ {
			root.AddDownlinks(core.Rack(fmt.Sprintf("tor%d", i), nodes/racks, core.QuadCore))
		}
		return root, nil
	default:
		return core.Tree([]int{4, 8, nodes / 32}, core.QuadCore)
	}
}

// Fig8 measures simulation rate across cluster sizes.
func Fig8(sc Scale) (Fig8Result, error) {
	sizes := []int{4, 8, 16, 32, 64, 128, 256, 1024}
	rounds := clock.Cycles(2000)
	if sc.Quick {
		sizes = []int{4, 16, 64}
		rounds = 400
	}
	rm := hostplatform.DefaultRateModel()

	var out Fig8Result
	for _, n := range sizes {
		topo, err := fig8Topology(n)
		if err != nil {
			return Fig8Result{}, err
		}
		c, err := core.Deploy(topo, core.DeployConfig{})
		if err != nil {
			return Fig8Result{}, err
		}
		r := rounds
		if n >= 256 {
			r = rounds / 4
		}
		rate, err := core.MeasureRate(c, c.LinkLatency*r)
		if err != nil {
			return Fig8Result{}, err
		}
		out.Rows = append(out.Rows, Fig8Row{
			Nodes:            n,
			MeasuredMHz:      float64(rate.EffectiveHz()) / 1e6,
			ProjStandardMHz:  float64(rm.Project(n, 6400, n > 8)) / 1e6,
			ProjSupernodeMHz: float64(rm.Project(n, 6400, n > 32)) / 1e6,
		})
	}
	return out, nil
}

// Fig9Row is one link-latency point: simulation rate vs the simulated
// network's link latency (= token batch size).
type Fig9Row struct {
	LinkLatencyUs float64
	MeasuredMHz   float64
	ProjEC2MHz    float64
	BatchTokens   int
}

// Fig9Result is the latency sweep.
type Fig9Result struct {
	Rows []Fig9Row
}

// Title implements Result.
func (Fig9Result) Title() string { return "Figure 9: Simulation rate vs. simulated link latency" }

// Render implements Result.
func (r Fig9Result) Render() string {
	t := stats.NewTable("Link latency (us)", "Batch (tokens)", "Measured (MHz)", "EC2 proj. (MHz)")
	for _, row := range r.Rows {
		t.AddRow(row.LinkLatencyUs, row.BatchTokens, row.MeasuredMHz, row.ProjEC2MHz)
	}
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString("\nPaper reference: performance improves as the token batch size (= link\n" +
		"latency) grows, since per-batch transport costs amortise over more target cycles.\n")
	return b.String()
}

// Fig9 measures simulation rate for an 8-node cluster across link
// latencies.
func Fig9(sc Scale) (Fig9Result, error) {
	latenciesUs := []float64{0.2, 0.5, 1, 2, 5, 10}
	targetUs := 4000.0
	if sc.Quick {
		latenciesUs = []float64{0.5, 2, 10}
		targetUs = 800
	}
	clk := clock.New(clock.DefaultTargetClock)
	rm := hostplatform.DefaultRateModel()

	var out Fig9Result
	for _, latUs := range latenciesUs {
		lat := clk.CyclesInMicros(latUs)
		c, err := core.Deploy(core.Rack("tor0", 8, core.QuadCore), core.DeployConfig{LinkLatency: lat})
		if err != nil {
			return Fig9Result{}, err
		}
		cycles := clk.CyclesInMicros(targetUs)
		cycles -= cycles % lat
		rate, err := core.MeasureRate(c, cycles)
		if err != nil {
			return Fig9Result{}, err
		}
		out.Rows = append(out.Rows, Fig9Row{
			LinkLatencyUs: latUs,
			BatchTokens:   int(lat),
			MeasuredMHz:   float64(rate.EffectiveHz()) / 1e6,
			ProjEC2MHz:    float64(rm.Project(8, lat, false)) / 1e6,
		})
	}
	return out, nil
}
