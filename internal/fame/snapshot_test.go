package fame

import (
	"bytes"
	"testing"

	"repro/internal/snapshot"
	"repro/internal/snapshot/snaptest"
	"repro/internal/token"
)

// pulse emits a token every period cycles (a pure function of target
// cycle) and records arrivals; it snapshots its own cycle counter and a
// running hash of what it has seen, making it a minimal stateful endpoint
// for restore-continuation tests.
type pulse struct {
	name   string
	period int64
	cycle  int64
	hash   uint64
}

func (p *pulse) Name() string  { return p.name }
func (p *pulse) NumPorts() int { return 1 }

func (p *pulse) TickBatch(n int, in, out []*token.Batch) {
	for _, s := range in[0].Slots {
		cyc := p.cycle + int64(s.Offset)
		p.hash = p.hash*1099511628211 ^ uint64(cyc) ^ s.Tok.Data
	}
	for i := 0; i < n; i++ {
		if (p.cycle+int64(i))%p.period == 0 {
			out[0].Put(i, token.Token{Data: uint64(p.cycle + int64(i)), Valid: true, Last: true})
		}
	}
	p.cycle += int64(n)
}

func (p *pulse) Save(w *snapshot.Writer) error {
	w.Begin("test.pulse", 1)
	w.I64(p.cycle)
	w.U64(p.hash)
	return w.Err()
}

func (p *pulse) Restore(r *snapshot.Reader) error {
	if err := r.Begin("test.pulse", 1); err != nil {
		return err
	}
	p.cycle = r.I64()
	p.hash = r.U64()
	return r.Err()
}

// pulsePair builds a two-endpoint topology with traffic in both
// directions across a latency-8 link.
func pulsePair() (*Runner, *pulse, *pulse) {
	r := NewRunner()
	a := &pulse{name: "a", period: 3}
	z := &pulse{name: "z", period: 5}
	r.Add(a)
	r.Add(z)
	if err := r.Connect(a, 0, z, 0, 8); err != nil {
		panic(err)
	}
	return r, a, z
}

func TestRunnerSnapshotConformance(t *testing.T) {
	src, _, _ := pulsePair()
	if err := src.Run(64); err != nil {
		t.Fatal(err)
	}
	snaptest.RoundTrip(t, src, func() snapshot.Snapshotter {
		r, _, _ := pulsePair()
		return r
	})
}

// TestRunnerSnapshotContinuation is the fame-layer slice of the keystone
// property: checkpoint at N, keep running to N+M, then restore a fresh
// topology from the checkpoint and run the same M — endpoint hashes and
// final cycles must match exactly.
func TestRunnerSnapshotContinuation(t *testing.T) {
	const n, m = 64, 128
	save := func(r *Runner, a, z *pulse) []byte {
		var buf bytes.Buffer
		w, err := snapshot.NewWriter(&buf, snapshot.Header{Cycle: uint64(r.Cycle()), Step: uint64(r.Step())})
		if err != nil {
			t.Fatal(err)
		}
		w.Section("state")
		for _, s := range []snapshot.Snapshotter{r, a, z} {
			if err := s.Save(w); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	r1, a1, z1 := pulsePair()
	if err := r1.Run(n); err != nil {
		t.Fatal(err)
	}
	ck := save(r1, a1, z1)
	if err := r1.Run(m); err != nil {
		t.Fatal(err)
	}
	want := save(r1, a1, z1)

	for _, parallel := range []bool{false, true} {
		r2, a2, z2 := pulsePair()
		rd, _, err := snapshot.NewReader(bytes.NewReader(ck))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rd.Next(); err != nil {
			t.Fatal(err)
		}
		for _, s := range []snapshot.Snapshotter{r2, a2, z2} {
			if err := s.Restore(rd); err != nil {
				t.Fatal(err)
			}
		}
		if r2.Cycle() != n {
			t.Fatalf("restored cycle = %d, want %d", r2.Cycle(), n)
		}
		if parallel {
			err = r2.RunParallel(m)
		} else {
			err = r2.Run(m)
		}
		if err != nil {
			t.Fatal(err)
		}
		got := save(r2, a2, z2)
		if !bytes.Equal(got, want) {
			t.Errorf("parallel=%v: restored run diverged from original (state bytes differ)", parallel)
		}
		if a2.hash != a1.hash || z2.hash != z1.hash {
			t.Errorf("parallel=%v: endpoint hashes diverged", parallel)
		}
	}
}

// TestRunnerRestoreRejectsMismatchedTopology feeds a checkpoint into
// runners whose structure differs from the source.
func TestRunnerRestoreRejectsMismatchedTopology(t *testing.T) {
	src, _, _ := pulsePair()
	if err := src.Run(32); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := snapshot.NewWriter(&buf, snapshot.Header{})
	if err != nil {
		t.Fatal(err)
	}
	w.Section("state")
	if err := src.Save(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	tryRestore := func(build func() *Runner) error {
		rd, _, err := snapshot.NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rd.Next(); err != nil {
			t.Fatal(err)
		}
		return build().Restore(rd)
	}

	// Different latency → different step.
	if err := tryRestore(func() *Runner {
		r := NewRunner()
		a := &pulse{name: "a", period: 3}
		z := &pulse{name: "z", period: 5}
		r.Add(a)
		r.Add(z)
		if err := r.Connect(a, 0, z, 0, 16); err != nil {
			t.Fatal(err)
		}
		return r
	}); err == nil {
		t.Error("restore into different-latency topology did not error")
	}

	// Extra endpoint pair → different channel count.
	if err := tryRestore(func() *Runner {
		r := NewRunner()
		eps := []*pulse{{name: "a", period: 3}, {name: "z", period: 5}, {name: "x", period: 7}, {name: "y", period: 9}}
		for _, e := range eps {
			r.Add(e)
		}
		if err := r.Connect(eps[0], 0, eps[1], 0, 8); err != nil {
			t.Fatal(err)
		}
		if err := r.Connect(eps[2], 0, eps[3], 0, 8); err != nil {
			t.Fatal(err)
		}
		return r
	}); err == nil {
		t.Error("restore into larger topology did not error")
	}
}

// TestMultiplexSnapshotDelegates checks the FAME-5 wrapper saves and
// restores through to its children.
func TestMultiplexSnapshotDelegates(t *testing.T) {
	a := &pulse{name: "a", period: 3, cycle: 77, hash: 0xbeef}
	z := &pulse{name: "z", period: 5, cycle: 77, hash: 0xcafe}
	m := NewMultiplex("mux", a, z)

	var buf bytes.Buffer
	w, err := snapshot.NewWriter(&buf, snapshot.Header{})
	if err != nil {
		t.Fatal(err)
	}
	w.Section("state")
	if err := m.Save(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	a2 := &pulse{name: "a", period: 3}
	z2 := &pulse{name: "z", period: 5}
	m2 := NewMultiplex("mux", a2, z2)
	rd, _, err := snapshot.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); err != nil {
		t.Fatal(err)
	}
	if err := m2.Restore(rd); err != nil {
		t.Fatal(err)
	}
	if a2.cycle != 77 || a2.hash != 0xbeef || z2.hash != 0xcafe {
		t.Errorf("children not restored: a2=%+v z2=%+v", a2, z2)
	}

	// A non-snapshottable child must be refused, not skipped.
	bad := NewMultiplex("bad", NewSink("sink"))
	var buf2 bytes.Buffer
	w2, err := snapshot.NewWriter(&buf2, snapshot.Header{})
	if err != nil {
		t.Fatal(err)
	}
	w2.Section("state")
	if err := bad.Save(w2); err == nil {
		t.Error("Save with non-snapshottable child did not error")
	}
}
