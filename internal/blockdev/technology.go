package blockdev

import "repro/internal/clock"

// Section VIII: "we are planning to replace our functional block device
// model with a timing-accurate model with pluggable timing mechanisms for
// various storage technologies (Disks, SSDs, 3D XPoint)". This file
// provides those pluggable timing configurations; the tracker machinery
// in Device already applies them.

// Technology names a storage timing preset.
type Technology string

// Storage technologies with distinct latency/bandwidth profiles.
const (
	TechDisk   Technology = "disk"
	TechSSD    Technology = "ssd"
	TechXPoint Technology = "3dxpoint"
)

// ConfigFor returns a Device configuration for the given technology at a
// 3.2 GHz target clock:
//
//	disk:      ~6 ms seek+rotate, ~200 MB/s streaming
//	ssd:       ~60 us access, ~2 GB/s streaming
//	3d xpoint: ~8 us access, ~2.5 GB/s streaming
func ConfigFor(tech Technology) Config {
	c := clock.New(clock.DefaultTargetClock)
	// sectorCycles converts a streaming bandwidth (bytes/s) into core
	// cycles per 512 B sector at 3.2 GHz.
	sectorCycles := func(bytesPerSec float64) clock.Cycles {
		return clock.Cycles(float64(SectorBytes) / bytesPerSec * float64(clock.DefaultTargetClock))
	}
	switch tech {
	case TechDisk:
		return Config{
			Trackers:      4,
			CapacityBytes: 4 << 30,
			FixedLatency:  c.CyclesInMicros(6000),
			SectorLatency: sectorCycles(200e6),
		}
	case TechSSD:
		return Config{
			Trackers:      4,
			CapacityBytes: 4 << 30,
			FixedLatency:  c.CyclesInMicros(60),
			SectorLatency: sectorCycles(2e9),
		}
	case TechXPoint:
		return Config{
			Trackers:      4,
			CapacityBytes: 4 << 30,
			FixedLatency:  c.CyclesInMicros(8),
			SectorLatency: sectorCycles(2.5e9),
		}
	default:
		return DefaultConfig()
	}
}

// AccessLatency returns the modeled latency of an n-sector transfer for
// the configuration, for capacity-planning comparisons without running a
// simulation.
func (c Config) AccessLatency(nSectors uint64) clock.Cycles {
	return c.FixedLatency + clock.Cycles(nSectors)*c.SectorLatency
}
