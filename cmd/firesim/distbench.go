package main

import (
	"fmt"
	"os"
	"os/exec"
	"time"

	"repro/internal/clock"
	"repro/internal/manager"
)

// The dist pass measures the distributed token plane end to end: it
// stands up the same loopback-TCP coordinator the chaos tests use
// (re-execing this binary as `firesim shard` workers), runs one clean
// multi-process epoch, and reads the wire accounting the root
// partition's bridges collected. Two variants bracket the codec's
// operating range:
//
//   - idle: no workload — every exchange window is an empty batch, the
//     best case for the run-length frame (a handful of bytes where the
//     fixed-width v2 codec spent 16).
//   - dense: a half-line-rate stream ring — every server streams
//     back-to-back frame bursts, so windows arrive ~50% occupied and the
//     frame cost is data-dominated (the hard case for any codec; the win
//     left is the per-slot header).
//
// Each variant also runs the identical spec in-process, which serves two
// purposes at once: the wall-clock baseline for the dist-rate floor gate
// (a distributed run that collapses to a crawl fails loudly even though
// it produces correct hashes), and the bit-identity reference — the pass
// refuses to report numbers from a run whose combined state hash
// diverged.

// distBenchPoint is one variant's measurement. Wire totals are summed
// over the root partition's bridges for the final epoch; Windows is the
// number of batch exchanges per bridge, so WireBytesPerWindow is the
// root's aggregate per-window wire cost and WireRatio is the compression
// factor against the v2 fixed-width baseline (PrecodecBytes prices the
// same traffic at 16 + 13*slots per frame).
type distBenchPoint struct {
	Variant   string  `json:"variant"`
	Nodes     int     `json:"nodes"`
	Procs     int     `json:"procs"`
	Horizon   uint64  `json:"horizon"`
	WallNanos int64   `json:"wall_ns"`
	DistHz    float64 `json:"dist_hz"`
	InprocHz  float64 `json:"inproc_hz"`
	// DistFrac is DistHz/InprocHz: the cost of going multi-process,
	// spawn and handshake and checkpoint included.
	DistFrac float64 `json:"dist_frac"`

	Windows                uint64  `json:"windows"`
	WireBytesSent          uint64  `json:"wire_bytes_sent"`
	WireBytesRecv          uint64  `json:"wire_bytes_recv"`
	PrecodecBytes          uint64  `json:"precodec_bytes"`
	WireBytesPerWindow     float64 `json:"wire_bytes_per_window"`
	PrecodecBytesPerWindow float64 `json:"precodec_bytes_per_window"`
	WireRatio              float64 `json:"wire_ratio"`
}

// benchDistPass runs both variants at one size. The checkpoint interval
// is the whole horizon — one coordinated checkpoint at the end — so the
// measured region is the token plane, not the snapshot store.
func benchDistPass(nodes, procs int, horizon, link uint64) ([]distBenchPoint, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name     string
		workload *manager.WorkloadSpec
	}{
		{"idle", nil},
		// 100 Gbps is ~half the 204.8 Gbps token line rate (one 8-byte
		// flit per 3.2 GHz cycle), so exchange windows run ~50% occupied
		// in 25-flit bursts — dense enough that frame cost is data-
		// dominated. Streams much past ~150 Gbps saturate the root
		// switch, where a pre-existing divergence between the partitioned
		// and in-process switch state appears (the bit-identity check
		// below catches it); the dense point deliberately stays under
		// that.
		{"dense", &manager.WorkloadSpec{Kind: "stream", StartAt: 600, FrameBytes: 200, Gbps: 100, StopAt: horizon}},
	}

	var points []distBenchPoint
	for _, v := range variants {
		spec, err := manager.RackSpec(nodes, manager.DeployConfig{LinkLatency: clock.Cycles(link), Seed: 42})
		if err != nil {
			return nil, fmt.Errorf("dist bench %s: %w", v.name, err)
		}
		spec.Workload = v.workload

		t0 := time.Now()
		ref, err := manager.ReferenceHashes(spec, horizon)
		if err != nil {
			return nil, fmt.Errorf("dist bench %s: in-process reference: %w", v.name, err)
		}
		inprocWall := time.Since(t0)

		baseDir, err := os.MkdirTemp("", "firesim-distbench-")
		if err != nil {
			return nil, err
		}
		t1 := time.Now()
		report, err := manager.RunDistributed(manager.CoordinatorConfig{
			Spec:      spec,
			Procs:     procs,
			BaseDir:   baseDir,
			CkptEvery: horizon,
			Horizon:   horizon,
			Spawn: func(name, controlAddr string) *exec.Cmd {
				cmd := exec.Command(self, "shard", "-control", controlAddr, "-name", name, "-quiet")
				cmd.Stderr = os.Stderr
				return cmd
			},
		})
		distWall := time.Since(t1)
		os.RemoveAll(baseDir)
		if err != nil {
			return nil, fmt.Errorf("dist bench %s: %w", v.name, err)
		}
		if report.Combined != manager.CombineHashes(ref) {
			return nil, fmt.Errorf("dist bench %s: distributed run is NOT bit-identical to the in-process reference", v.name)
		}

		p := distBenchPoint{
			Variant:       v.name,
			Nodes:         nodes,
			Procs:         procs,
			Horizon:       horizon,
			WallNanos:     distWall.Nanoseconds(),
			DistHz:        toVariant(clock.Cycles(horizon), distWall).SimHz,
			InprocHz:      toVariant(clock.Cycles(horizon), inprocWall).SimHz,
			Windows:       report.Windows,
			WireBytesSent: report.WireBytesSent,
			WireBytesRecv: report.WireBytesRecv,
			PrecodecBytes: report.PrecodecBytes,
		}
		if p.InprocHz > 0 {
			p.DistFrac = p.DistHz / p.InprocHz
		}
		if p.Windows > 0 {
			p.WireBytesPerWindow = float64(p.WireBytesSent) / float64(p.Windows)
			p.PrecodecBytesPerWindow = float64(p.PrecodecBytes) / float64(p.Windows)
		}
		if p.WireBytesSent > 0 {
			p.WireRatio = float64(p.PrecodecBytes) / float64(p.WireBytesSent)
		}
		points = append(points, p)
	}
	return points, nil
}

// checkDistGates enforces the token-plane bounds: per-variant wire-ratio
// floors (how much the v3 codec must beat the v2 baseline by, idle and
// dense bracketing the operating range) and the dist-rate floor (the
// distributed run's sim rate as a fraction of the same spec in-process).
// The rate floor applies to the dense variant only: an idle in-process
// run degenerates to nearly pure host speed, so a fraction of it would
// gate process-spawn latency rather than the token plane.
func checkDistGates(points []distBenchPoint, idleMinRatio, denseMinRatio, minFrac float64) error {
	if len(points) == 0 {
		return fmt.Errorf("bench: a dist gate is set but the dist pass did not run (see -dist-nodes)")
	}
	for _, p := range points {
		min := 0.0
		switch p.Variant {
		case "idle":
			min = idleMinRatio
		case "dense":
			min = denseMinRatio
		}
		if min > 0 && p.WireRatio < min {
			return fmt.Errorf("bench: %s dist wire ratio %.2fx below the %.2fx gate (%.1f B/window vs %.1f baseline)",
				p.Variant, p.WireRatio, min, p.WireBytesPerWindow, p.PrecodecBytesPerWindow)
		}
		if minFrac > 0 && p.Variant == "dense" && p.DistFrac < minFrac {
			return fmt.Errorf("bench: %s dist sim rate is %.3f of the in-process rate, below the %.3f floor",
				p.Variant, p.DistFrac, minFrac)
		}
	}
	return nil
}
