package repro

// One benchmark per table and figure in the paper's evaluation. Each
// benchmark regenerates its result at quick scale per iteration (set
// FIRESIM_FULL=1 to run paper-sized parameters) and reports throughput
// metrics where meaningful. The rendered outputs are printed once per
// benchmark via b.Logf, visible with -v.
//
// Microbenchmarks for the substrates (token transport, switch, RV64 core,
// DRAM) follow the experiment benchmarks.

import (
	"os"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/experiments"
	"repro/internal/fame"
	"repro/internal/riscv"
	"repro/internal/switchmodel"
	"repro/internal/token"
)

func scale() experiments.Scale {
	return experiments.Scale{Quick: os.Getenv("FIRESIM_FULL") == ""}
}

// benchExperiment runs a registered experiment once per iteration.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	var rendered string
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(name, scale())
		if err != nil {
			b.Fatal(err)
		}
		rendered = res.Render()
	}
	b.Logf("\n%s", rendered)
}

// BenchmarkTableIServerBlade renders the Table I blade configuration.
func BenchmarkTableIServerBlade(b *testing.B) { benchExperiment(b, "tableI") }

// BenchmarkTableIIAccelerators renders the Table II accelerator catalog.
func BenchmarkTableIIAccelerators(b *testing.B) { benchExperiment(b, "tableII") }

// BenchmarkFig5PingLatency regenerates Figure 5: ping RTT vs configured
// link latency (ideal + ~34 us stack overhead).
func BenchmarkFig5PingLatency(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkIperf3Linux regenerates Section IV-B: ~1.4 Gbit/s through the
// modeled Linux stack.
func BenchmarkIperf3Linux(b *testing.B) { benchExperiment(b, "iperf") }

// BenchmarkBareMetalBandwidth regenerates Section IV-C: a single NIC
// driving ~100 Gbit/s, bounded by DDR3 streaming bandwidth.
func BenchmarkBareMetalBandwidth(b *testing.B) { benchExperiment(b, "baremetal") }

// BenchmarkFig6Saturation regenerates Figure 6: staggered senders ramping
// the root switch to saturation under NIC rate limits.
func BenchmarkFig6Saturation(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7ThreadImbalance regenerates Figure 7: memcached tail
// latency under thread imbalance and pinning.
func BenchmarkFig7ThreadImbalance(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8SimRateVsScale regenerates Figure 8: simulation rate vs
// simulated cluster size.
func BenchmarkFig8SimRateVsScale(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9SimRateVsLatency regenerates Figure 9: simulation rate vs
// simulated link latency (token batch size).
func BenchmarkFig9SimRateVsLatency(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10Deploy1024 regenerates Figure 10 / Section V-C: the
// 1024-node datacenter deployment, its cost, and its simulation rate.
func BenchmarkFig10Deploy1024(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkTableIIIMemcached1024 regenerates Table III: datacenter-scale
// memcached latency vs pairing distance.
func BenchmarkTableIIIMemcached1024(b *testing.B) { benchExperiment(b, "tableIII") }

// BenchmarkFig11PFA regenerates Figure 11: hardware-accelerated vs
// software paging.
func BenchmarkFig11PFA(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkUtilization renders the Section III-A5 FPGA LUT budget.
func BenchmarkUtilization(b *testing.B) { benchExperiment(b, "utilization") }

// BenchmarkCostModel renders the Section V-C cost arithmetic.
func BenchmarkCostModel(b *testing.B) { benchExperiment(b, "cost") }

// --- substrate microbenchmarks ---

// BenchmarkTokenTransport measures raw token-round throughput of the
// FAME-1 runtime on an idle 8-node rack: target cycles simulated per
// second.
func BenchmarkTokenTransport(b *testing.B) {
	c, err := core.Deploy(core.Rack("tor0", 8, core.QuadCore), core.DeployConfig{})
	if err != nil {
		b.Fatal(err)
	}
	step := c.Runner.Step()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Runner.Run(step); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(step)*float64(b.N)/b.Elapsed().Seconds()/1e6, "target-MHz")
}

// BenchmarkParallelRunner measures the goroutine-per-endpoint runner on
// the same topology.
func BenchmarkParallelRunner(b *testing.B) {
	c, err := core.Deploy(core.Rack("tor0", 8, core.QuadCore), core.DeployConfig{})
	if err != nil {
		b.Fatal(err)
	}
	step := c.Runner.Step()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Runner.RunParallel(step * 16); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(step*16)*float64(b.N)/b.Elapsed().Seconds()/1e6, "target-MHz")
}

// BenchmarkSwitchSaturated measures the switch model under a saturating
// bidirectional load.
func BenchmarkSwitchSaturated(b *testing.B) {
	r := fame.NewRunner()
	a := fame.NewSource("a")
	sink := fame.NewSink("sink")
	sw := newBenchSwitch()
	r.Add(a)
	r.Add(sink)
	r.Add(sw)
	if err := r.Connect(a, 0, sw, 0, 640); err != nil {
		b.Fatal(err)
	}
	if err := r.Connect(sw, 1, sink, 0, 640); err != nil {
		b.Fatal(err)
	}
	// Saturating stream: back-to-back 64-byte frames forever.
	for c := int64(0); c < 1_000_000; c += 8 {
		a.EmitPacketAt(c, benchFlits)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Run(640); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(640*b.N)/b.Elapsed().Seconds()/1e6, "target-MHz")
}

// BenchmarkRV64Core measures the core model's interpretation speed on a
// tight arithmetic loop (target instructions per second).
func BenchmarkRV64Core(b *testing.B) {
	a := riscv.NewAsm()
	a.LI(riscv.T0, 0)
	a.Label("loop")
	a.ADDI(riscv.T0, riscv.T0, 1)
	a.XOR(riscv.T1, riscv.T0, riscv.T0)
	a.OR(riscv.T1, riscv.T1, riscv.T0)
	a.J("loop")
	bus := &flatBenchBus{mem: make([]byte, 1<<16)}
	words := a.MustAssemble()
	for i, w := range words {
		bus.store32(uint64(i*4), w)
	}
	cpu := riscv.New(bus, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu.Step()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/1e6, "target-MIPS")
}

// BenchmarkDRAMStream measures the DRAM timing model on a streaming
// access pattern.
func BenchmarkDRAMStream(b *testing.B) {
	m := dram.New(dram.Config{})
	var now clock.Cycles
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Access(now, uint64(i%(1<<20))*64, false)
		now++
	}
}

// --- benchmark scaffolding ---

// benchFlits is a 64-byte frame whose first flit carries the length field
// (0x0040) and destination MAC 02:00:00:00:00:02.
var benchFlits = []uint64{0x0040_0200_0000_0002, 2, 3, 4, 5, 6, 7, 8}

func newBenchSwitch() *switchmodel.Switch {
	sw := switchmodel.New(switchmodel.Config{Name: "tor", Ports: 2})
	sw.MACTable().Set(0x0200_0000_0002, 1)
	return sw
}

type flatBenchBus struct {
	mem []byte
}

func (f *flatBenchBus) store32(addr uint64, w uint32) {
	f.mem[addr] = byte(w)
	f.mem[addr+1] = byte(w >> 8)
	f.mem[addr+2] = byte(w >> 16)
	f.mem[addr+3] = byte(w >> 24)
}

func (f *flatBenchBus) Fetch(addr uint64) (uint32, clock.Cycles) {
	return uint32(f.mem[addr]) | uint32(f.mem[addr+1])<<8 | uint32(f.mem[addr+2])<<16 | uint32(f.mem[addr+3])<<24, 0
}

func (f *flatBenchBus) Load(addr uint64, size int) (uint64, clock.Cycles) {
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(f.mem[addr+uint64(i)])
	}
	return v, 0
}

func (f *flatBenchBus) Store(addr uint64, size int, v uint64) clock.Cycles {
	for i := 0; i < size; i++ {
		f.mem[addr+uint64(i)] = byte(v >> (8 * i))
	}
	return 0
}

// noCopy guard for the token package import (Batch is used by the switch
// bench plumbing).
var _ = token.Empty

// BenchmarkSingleNodeSuite regenerates the Section VIII parallel
// single-node benchmarking workflow (cycle-exact kernel suite).
func BenchmarkSingleNodeSuite(b *testing.B) { benchExperiment(b, "singlenode") }

// BenchmarkAblationNewQ regenerates the PFA newQ batching ablation.
func BenchmarkAblationNewQ(b *testing.B) { benchExperiment(b, "ablation-newq") }

// BenchmarkAblationSwitchBuf regenerates the incast buffer-sizing ablation.
func BenchmarkAblationSwitchBuf(b *testing.B) { benchExperiment(b, "ablation-switchbuf") }

// BenchmarkAblationBatching regenerates the token-batching ablation: the
// paper's batch-to-link-latency rule, with a target-level RTT proving
// cycle accuracy at every batch size.
func BenchmarkAblationBatching(b *testing.B) { benchExperiment(b, "ablation-batching") }
