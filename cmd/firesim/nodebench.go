package main

import (
	"fmt"
	"runtime"

	"repro/internal/clock"
	"repro/internal/ethernet"
	"repro/internal/fame"
	"repro/internal/obs"
	"repro/internal/riscv"
	"repro/internal/soc"
	"repro/internal/switchmodel"
)

// The node bench measures the per-node compute loop itself — cycle-exact
// SoC blades running machine code, not softstack models — in the two
// shapes the fast paths target: an instruction-dense ALU loop (predecode
// cache + fetch memo) and an idle WFI rack (bulk quiescent skip). Each
// workload runs with the fast paths on and off, so BENCH_fame.json carries
// its own baseline and the check.sh gate needs no cross-run history.

// nodeBenchNode is one blade's contribution to a variant.
type nodeBenchNode struct {
	Name          string  `json:"name"`
	Instret       uint64  `json:"instret"`
	SkippedCycles uint64  `json:"skipped_cycles"`
	MIPS          float64 `json:"mips"`
}

// nodeBenchVariant is one (workload, fast-path setting) measurement.
type nodeBenchVariant struct {
	WallNanos  int64           `json:"wall_ns"`
	SimHz      float64         `json:"sim_hz"`
	MIPS       float64         `json:"mips"`
	SkippedPct float64         `json:"skipped_cycles_pct"`
	PerNode    []nodeBenchNode `json:"per_node"`
}

// nodeBenchResult pairs the fast and slow runs of one workload.
type nodeBenchResult struct {
	Workload string `json:"workload"` // "dense" | "idle"
	Nodes    int    `json:"nodes"`
	Cycles   uint64 `json:"cycles"`

	Fast nodeBenchVariant `json:"fast"`
	Slow nodeBenchVariant `json:"slow"`
	// FastNoSB is the fast paths with only the superblock dispatcher off
	// (dense workload only): the A-B that isolates what block dispatch
	// itself buys on top of the predecode cache and fetch memo.
	FastNoSB *nodeBenchVariant `json:"fast_nosb,omitempty"`

	// FastSpeedup is slow wall time over fast wall time (>1 means the
	// fast paths paid off).
	FastSpeedup float64 `json:"fast_speedup"`
	// SuperblockSpeedup is FastNoSB wall time over Fast wall time.
	SuperblockSpeedup float64 `json:"superblock_speedup,omitempty"`
}

// denseNodeProgram is an L1-resident ALU loop: every cycle retires an
// instruction, so the predecode cache and fetch memo are on the critical
// path and the quiescent skip never fires.
func denseNodeProgram() *riscv.Asm {
	a := riscv.NewAsm()
	a.LI(riscv.T0, 1)
	a.LI(riscv.T1, 3)
	a.Label("loop")
	for i := 0; i < 8; i++ {
		a.ADD(riscv.T2, riscv.T2, riscv.T0)
		a.XOR(riscv.T3, riscv.T3, riscv.T1)
	}
	a.J("loop")
	return a
}

// idleNodeProgram parks the hart in WFI with no interrupt source armed:
// the whole blade is quiescent every window, the shape the bulk skip
// turns into arithmetic.
func idleNodeProgram() *riscv.Asm {
	a := riscv.NewAsm()
	a.Label("idle")
	a.WFI()
	a.J("idle")
	return a
}

// buildNodeRack stands up n single-hart blades behind one idle ToR. fast
// toggles every fast path; sb additionally gates the superblock dispatcher
// (fast=true, sb=false is the superblock A-B variant).
func buildNodeRack(n int, workload string, fast, sb bool, linkLat clock.Cycles) (*fame.Runner, []*soc.SoC, error) {
	prog := idleNodeProgram()
	if workload == "dense" {
		prog = denseNodeProgram()
	}
	bin, err := prog.Bytes()
	if err != nil {
		return nil, nil, err
	}
	tor := switchmodel.New(switchmodel.Config{Name: "tor", Ports: n})
	r := fame.NewRunner()
	reg := obs.NewRegistry("nodebench")
	socs := make([]*soc.SoC, 0, n)
	for i := 0; i < n; i++ {
		s, err := soc.New(soc.Config{
			Name:  fmt.Sprintf("n%d", i),
			Cores: 1,
			MAC:   ethernet.MAC(0x0200_0000_0100 + uint64(i)),
		}, bin)
		if err != nil {
			return nil, nil, err
		}
		s.SetQuiescentSkip(fast)
		s.SetFetchMemo(fast)
		s.SetDecodeCache(fast)
		s.SetSuperblocks(fast && sb)
		s.EnableMetrics(reg)
		r.Add(s)
		socs = append(socs, s)
	}
	r.Add(tor)
	for i, s := range socs {
		if err := r.Connect(s, 0, tor, i, linkLat); err != nil {
			return nil, nil, err
		}
	}
	return r, socs, nil
}

// nodeBenchVariantRun measures one (workload, setting) pair, best wall
// time of reps, each rep on a fresh rack with one unbilled warm-up slice.
func nodeBenchVariantRun(nodes, rounds, reps int, linkLat clock.Cycles, workload string, fast, sb bool) (nodeBenchVariant, clock.Cycles, error) {
	var v nodeBenchVariant
	cycles := clock.Cycles(rounds) * linkLat
	best := int64(-1)
	for rep := 0; rep < reps; rep++ {
		r, socs, err := buildNodeRack(nodes, workload, fast, sb, linkLat)
		if err != nil {
			return v, 0, err
		}
		if _, err := r.Measure(4*linkLat, clock.DefaultTargetClock, false); err != nil {
			return v, 0, err
		}
		// Same GC hygiene as the sim-rate bench: build garbage must not be
		// collected inside the measured region.
		runtime.GC()
		// Counters are reported as deltas over the measured window, so the
		// warm-up slice never inflates MIPS or the skipped share.
		warmInstret := make([]uint64, len(socs))
		warmSkipped := make([]uint64, len(socs))
		for i, s := range socs {
			warmInstret[i] = s.InstretTotal()
			warmSkipped[i] = s.SkippedCycles()
		}
		rate, err := r.Measure(cycles, clock.DefaultTargetClock, false)
		if err != nil {
			return v, 0, err
		}
		wall := rate.Wall.Nanoseconds()
		if best >= 0 && wall >= best {
			continue
		}
		best = wall
		sec := float64(wall) / 1e9
		v = nodeBenchVariant{WallNanos: wall, SimHz: float64(rate.EffectiveHz())}
		var instrs, skipped uint64
		for i, s := range socs {
			st := nodeBenchNode{Name: s.Name(), Instret: s.InstretTotal() - warmInstret[i], SkippedCycles: s.SkippedCycles() - warmSkipped[i]}
			if sec > 0 {
				st.MIPS = float64(st.Instret) / sec / 1e6
			}
			instrs += st.Instret
			skipped += st.SkippedCycles
			v.PerNode = append(v.PerNode, st)
		}
		if sec > 0 {
			v.MIPS = float64(instrs) / sec / 1e6
		}
		v.SkippedPct = 100 * float64(skipped) / float64(uint64(cycles)*uint64(nodes))
	}
	return v, cycles, nil
}

// benchNodePass runs both workloads in both settings.
func benchNodePass(nodes, rounds, reps int, linkLat clock.Cycles) ([]nodeBenchResult, error) {
	var out []nodeBenchResult
	for _, workload := range []string{"dense", "idle"} {
		res := nodeBenchResult{Workload: workload, Nodes: nodes}
		var err error
		var cycles clock.Cycles
		if res.Fast, cycles, err = nodeBenchVariantRun(nodes, rounds, reps, linkLat, workload, true, true); err != nil {
			return nil, fmt.Errorf("node bench %s fast: %w", workload, err)
		}
		if res.Slow, _, err = nodeBenchVariantRun(nodes, rounds, reps, linkLat, workload, false, false); err != nil {
			return nil, fmt.Errorf("node bench %s slow: %w", workload, err)
		}
		if workload == "dense" {
			// The superblock A-B only means something when instructions
			// actually retire; the idle rack skips every window either way.
			nosb, _, err := nodeBenchVariantRun(nodes, rounds, reps, linkLat, workload, true, false)
			if err != nil {
				return nil, fmt.Errorf("node bench %s fast-nosb: %w", workload, err)
			}
			res.FastNoSB = &nosb
			if res.Fast.WallNanos > 0 {
				res.SuperblockSpeedup = float64(nosb.WallNanos) / float64(res.Fast.WallNanos)
			}
		}
		res.Cycles = uint64(cycles)
		if res.Fast.WallNanos > 0 {
			res.FastSpeedup = float64(res.Slow.WallNanos) / float64(res.Fast.WallNanos)
		}
		out = append(out, res)
	}
	return out, nil
}
