package experiments

import (
	"math"
	"strings"
	"testing"
)

// The experiment tests assert the *shape* of each paper result at Quick
// scale: who wins, by roughly what factor, and where the crossovers fall.

func TestRegistryRunsEverythingCheap(t *testing.T) {
	// The static tables must render through the registry.
	for _, name := range []string{"tableI", "tableII", "utilization", "cost"} {
		res, err := Run(name, Scale{Quick: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Title() == "" || res.Render() == "" {
			t.Errorf("%s: empty result", name)
		}
	}
	if _, err := Run("nope", Scale{}); err == nil {
		t.Error("unknown experiment accepted")
	}
	names := Names()
	if len(names) < 12 {
		t.Errorf("only %d experiments registered: %v", len(names), names)
	}
}

func TestFig5Shape(t *testing.T) {
	r, err := Fig5(Scale{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Measured parallels ideal with a fixed ~34 us offset.
	for _, row := range r.Rows {
		if ov := row.Overhead(); ov < 30 || ov > 38 {
			t.Errorf("lat %g us: overhead = %.2f us, want ~34", row.LinkLatencyUs, ov)
		}
	}
	spread := r.Rows[1].Overhead() - r.Rows[0].Overhead()
	if math.Abs(spread) > 2 {
		t.Errorf("offset not fixed across latencies: %.2f us spread", spread)
	}
	if r.Rows[1].MeasuredRTTUs <= r.Rows[0].MeasuredRTTUs {
		t.Error("RTT did not grow with link latency")
	}
}

func TestBandwidthShape(t *testing.T) {
	ip, err := Iperf(Scale{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if ip.GoodputGbps < 1.0 || ip.GoodputGbps > 2.0 {
		t.Errorf("iperf = %.2f Gbit/s, want ~1.4", ip.GoodputGbps)
	}
	bm, err := BareMetal(Scale{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if bm.WireGbps < 85 || bm.WireGbps > 115 {
		t.Errorf("bare-metal = %.1f Gbit/s, want ~100", bm.WireGbps)
	}
	// The headline contrast: bare metal is ~70x the Linux stack.
	if bm.WireGbps < 40*ip.GoodputGbps {
		t.Errorf("bare-metal (%.1f) not dramatically above iperf (%.2f)", bm.WireGbps, ip.GoodputGbps)
	}
}

func TestFig6Shape(t *testing.T) {
	r, err := Fig6(Scale{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	plateaus := map[float64]float64{}
	for _, s := range r.Series {
		plateaus[s.RateGbps] = s.PlateauGbps
	}
	// 10 Gbit/s senders: 8 x 10 = 80, below saturation.
	if p := plateaus[10]; p < 72 || p > 92 {
		t.Errorf("10G plateau = %.1f, want ~80", p)
	}
	// 100 Gbit/s senders saturate the 200 Gbit/s root link.
	if p := plateaus[100]; p < 190 || p > 210 {
		t.Errorf("100G plateau = %.1f, want ~200 (saturated)", p)
	}
	// Ramp: bandwidth in the first buckets is below the plateau.
	for _, s := range r.Series {
		if len(s.Gbps) < 4 {
			t.Fatalf("series too short: %v", s.Gbps)
		}
		if s.Gbps[0] >= s.PlateauGbps*0.9 {
			t.Errorf("%gG series shows no ramp: first bucket %.1f vs plateau %.1f", s.RateGbps, s.Gbps[0], s.PlateauGbps)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	r, err := Fig7(Scale{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string][]Fig7Point{}
	for i, cfg := range r.Configs {
		byLabel[cfg.Label] = r.Points[i]
	}
	high := len(byLabel["4 threads pinned"]) - 1
	pinned := byLabel["4 threads pinned"][high]
	imbalanced := byLabel["5 threads"][high]
	if imbalanced.P95Us < pinned.P95Us*1.3 {
		t.Errorf("5-thread p95 (%.0f) not sharply above pinned (%.0f) at high load", imbalanced.P95Us, pinned.P95Us)
	}
	// Tail inflation dominates median movement.
	if (imbalanced.P95Us - pinned.P95Us) <= 2*(imbalanced.P50Us-pinned.P50Us) {
		t.Errorf("tail shift (%.0f) should dwarf median shift (%.0f)",
			imbalanced.P95Us-pinned.P95Us, imbalanced.P50Us-pinned.P50Us)
	}
	// At low load the three configurations are close.
	lowPinned := byLabel["4 threads pinned"][0]
	lowImb := byLabel["5 threads"][0]
	if lowImb.P95Us > lowPinned.P95Us*1.5 {
		t.Errorf("low-load 5-thread p95 (%.0f) should be near pinned (%.0f)", lowImb.P95Us, lowPinned.P95Us)
	}
}

func TestFig8Shape(t *testing.T) {
	r, err := Fig8(Scale{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].MeasuredMHz >= r.Rows[i-1].MeasuredMHz {
			t.Errorf("measured rate did not fall with scale: %v then %v",
				r.Rows[i-1], r.Rows[i])
		}
		if r.Rows[i].ProjStandardMHz > r.Rows[i-1].ProjStandardMHz {
			t.Errorf("projected rate rose with scale")
		}
	}
}

func TestFig9Shape(t *testing.T) {
	r, err := Fig9(Scale{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].MeasuredMHz <= r.Rows[i-1].MeasuredMHz {
			t.Errorf("measured rate did not rise with link latency: %+v", r.Rows)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	r, err := Fig10(Scale{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Servers != 64 || r.ToRs != 8 || r.Aggs != 2 {
		t.Errorf("quick topology = %d servers, %d ToR, %d agg", r.Servers, r.ToRs, r.Aggs)
	}
	if r.SimRateMHz <= 0 {
		t.Error("no measured rate")
	}
}

func TestTableIIIShape(t *testing.T) {
	r, err := TableIII(Scale{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	tor, agg, dc := r.Rows[0], r.Rows[1], r.Rows[2]
	// Each tier adds 4 link crossings of 2 us: ~8 us on the median.
	d1 := agg.P50Us - tor.P50Us
	d2 := dc.P50Us - agg.P50Us
	if d1 < 6 || d1 > 10 || d2 < 6 || d2 > 10 {
		t.Errorf("per-tier p50 deltas = %.2f, %.2f us, want ~8", d1, d2)
	}
	// p95 above p50 everywhere (the tail is dominated by variability).
	for _, row := range r.Rows {
		if row.P95Us <= row.P50Us {
			t.Errorf("%s: p95 (%.1f) <= p50 (%.1f)", row.Config, row.P95Us, row.P50Us)
		}
		if row.AggregateQPS <= 0 {
			t.Errorf("%s: no throughput", row.Config)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	r, err := Fig11(Scale{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var genomeHalf, qsortHalf *Fig11Point
	for i := range r.Points {
		p := &r.Points[i]
		if !p.EvictionsEqual {
			t.Errorf("%s @ %.0f%%: evictions differ across modes", p.Workload, p.LocalFraction*100)
		}
		if p.LocalFraction == 0.5 {
			if p.Workload == "Genome" {
				genomeHalf = p
			} else {
				qsortHalf = p
			}
		}
	}
	if genomeHalf == nil || qsortHalf == nil {
		t.Fatal("missing 50% points")
	}
	if genomeHalf.Speedup < 1.2 || genomeHalf.Speedup > 1.6 {
		t.Errorf("Genome@50%% speedup = %.2f, want ~1.4", genomeHalf.Speedup)
	}
	if qsortHalf.Speedup >= genomeHalf.Speedup {
		t.Errorf("Qsort speedup (%.2f) should trail Genome (%.2f)", qsortHalf.Speedup, genomeHalf.Speedup)
	}
	if genomeHalf.MetaRatio < 2.0 || genomeHalf.MetaRatio > 3.0 {
		t.Errorf("metadata ratio = %.2f, want ~2.5", genomeHalf.MetaRatio)
	}
}

func TestRendersMentionPaperReferences(t *testing.T) {
	res, err := Run("cost", Scale{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Render(), "$12.8M") {
		t.Error("cost table missing the FPGA-value headline")
	}
}

func TestAblationNewQShape(t *testing.T) {
	r, err := AblationNewQ(Scale{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Batch=1 forfeits the locality benefit: metadata ratio ~1 and a
	// slower runtime than the batched configuration.
	unbatched, batched := r.Rows[0], r.Rows[len(r.Rows)-1]
	if unbatched.MetaRatioVsSW > 1.3 {
		t.Errorf("unbatched metadata ratio = %.2f, want ~1", unbatched.MetaRatioVsSW)
	}
	if batched.MetaRatioVsSW < 2.0 {
		t.Errorf("batched metadata ratio = %.2f, want ~2.5", batched.MetaRatioVsSW)
	}
	if batched.RuntimeUs >= unbatched.RuntimeUs {
		t.Errorf("batched runtime (%.0f us) not below unbatched (%.0f us)", batched.RuntimeUs, unbatched.RuntimeUs)
	}
	// Even the unbatched PFA beats software paging (no traps on the
	// critical path).
	if unbatched.RuntimeUs >= r.SWRuntimeUs {
		t.Errorf("unbatched PFA (%.0f us) not below software paging (%.0f us)", unbatched.RuntimeUs, r.SWRuntimeUs)
	}
}

func TestAblationSwitchBufShape(t *testing.T) {
	r, err := AblationSwitchBuf(Scale{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	small, large := r.Rows[0], r.Rows[len(r.Rows)-1]
	if small.DropsBuf == 0 {
		t.Error("8 KiB buffer dropped nothing under 4:1 incast")
	}
	if large.DropsBuf >= small.DropsBuf {
		t.Errorf("larger buffer dropped more: %d vs %d", large.DropsBuf, small.DropsBuf)
	}
	if large.Delivered <= small.Delivered {
		t.Errorf("larger buffer delivered fewer packets: %d vs %d", large.Delivered, small.Delivered)
	}
}

func TestAblationBatchingShape(t *testing.T) {
	r, err := AblationBatching(Scale{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	small, big := r.Rows[0], r.Rows[len(r.Rows)-1]
	// Cycle accuracy: the target-level RTT is bit-identical across batch
	// sizes.
	if small.PingRTTUs != big.PingRTTUs {
		t.Errorf("RTT changed with batch size: %.3f vs %.3f us", small.PingRTTUs, big.PingRTTUs)
	}
	// Host performance: full-latency batching is dramatically faster.
	if big.MeasuredMHz < 3*small.MeasuredMHz {
		t.Errorf("batch %d (%.0f MHz) not clearly faster than batch %d (%.0f MHz)",
			big.BatchTokens, big.MeasuredMHz, small.BatchTokens, small.MeasuredMHz)
	}
}
