package ethernet

import (
	"encoding/binary"
	"fmt"
)

// Protocol identifies the transport protocol inside an IPv4 packet.
type Protocol uint8

// Transport protocols used by the simulated software stacks.
const (
	ProtoICMP Protocol = 1
	ProtoUDP  Protocol = 17
	ProtoTCP  Protocol = 6
)

// ipv4HeaderLen is the fixed (option-free) header length used in
// simulation.
const ipv4HeaderLen = 12

// IPv4 is a simplified option-free IPv4 header plus payload.
type IPv4 struct {
	Src, Dst IP
	Proto    Protocol
	TTL      uint8
	Payload  []byte
}

// Encode serialises the packet:
//
//	bytes 0..3  src IP
//	bytes 4..7  dst IP
//	byte  8     protocol
//	byte  9     TTL
//	bytes 10..11 payload length
//	bytes 12..  payload
func (p *IPv4) Encode() []byte {
	buf := make([]byte, ipv4HeaderLen+len(p.Payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(p.Src))
	binary.BigEndian.PutUint32(buf[4:8], uint32(p.Dst))
	buf[8] = byte(p.Proto)
	buf[9] = p.TTL
	binary.BigEndian.PutUint16(buf[10:12], uint16(len(p.Payload)))
	copy(buf[12:], p.Payload)
	return buf
}

// DecodeIPv4 parses a serialised IPv4 packet.
func DecodeIPv4(buf []byte) (*IPv4, error) {
	if len(buf) < ipv4HeaderLen {
		return nil, fmt.Errorf("ethernet: ipv4 packet too short: %d bytes", len(buf))
	}
	plen := int(binary.BigEndian.Uint16(buf[10:12]))
	if ipv4HeaderLen+plen > len(buf) {
		return nil, fmt.Errorf("ethernet: ipv4 payload length %d exceeds buffer", plen)
	}
	return &IPv4{
		Src:     IP(binary.BigEndian.Uint32(buf[0:4])),
		Dst:     IP(binary.BigEndian.Uint32(buf[4:8])),
		Proto:   Protocol(buf[8]),
		TTL:     buf[9],
		Payload: append([]byte(nil), buf[ipv4HeaderLen:ipv4HeaderLen+plen]...),
	}, nil
}

// ICMPType distinguishes echo requests from replies.
type ICMPType uint8

// ICMP message types used by the ping workload.
const (
	ICMPEchoRequest ICMPType = 8
	ICMPEchoReply   ICMPType = 0
)

// ICMP is an echo request/reply message. SentCycle carries the sender's
// transmission timestamp so RTT can be computed without shared clocks (the
// network is globally cycle-synchronous, so timestamps are comparable).
type ICMP struct {
	Type      ICMPType
	ID        uint16
	Seq       uint16
	SentCycle uint64
}

// Encode serialises the message.
func (m *ICMP) Encode() []byte {
	buf := make([]byte, 16)
	buf[0] = byte(m.Type)
	binary.BigEndian.PutUint16(buf[2:4], m.ID)
	binary.BigEndian.PutUint16(buf[4:6], m.Seq)
	binary.BigEndian.PutUint64(buf[8:16], m.SentCycle)
	return buf
}

// DecodeICMP parses a serialised ICMP message.
func DecodeICMP(buf []byte) (*ICMP, error) {
	if len(buf) < 16 {
		return nil, fmt.Errorf("ethernet: icmp message too short: %d bytes", len(buf))
	}
	return &ICMP{
		Type:      ICMPType(buf[0]),
		ID:        binary.BigEndian.Uint16(buf[2:4]),
		Seq:       binary.BigEndian.Uint16(buf[4:6]),
		SentCycle: binary.BigEndian.Uint64(buf[8:16]),
	}, nil
}

// udpHeaderLen is the serialised UDP header length.
const udpHeaderLen = 8

// UDP is a datagram header plus payload.
type UDP struct {
	SrcPort, DstPort uint16
	Payload          []byte
}

// Encode serialises the datagram.
func (u *UDP) Encode() []byte {
	buf := make([]byte, udpHeaderLen+len(u.Payload))
	binary.BigEndian.PutUint16(buf[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(buf[2:4], u.DstPort)
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(u.Payload)))
	copy(buf[8:], u.Payload)
	return buf
}

// DecodeUDP parses a serialised datagram.
func DecodeUDP(buf []byte) (*UDP, error) {
	if len(buf) < udpHeaderLen {
		return nil, fmt.Errorf("ethernet: udp datagram too short: %d bytes", len(buf))
	}
	plen := int(binary.BigEndian.Uint32(buf[4:8]))
	if udpHeaderLen+plen > len(buf) {
		return nil, fmt.Errorf("ethernet: udp payload length %d exceeds buffer", plen)
	}
	return &UDP{
		SrcPort: binary.BigEndian.Uint16(buf[0:2]),
		DstPort: binary.BigEndian.Uint16(buf[2:4]),
		Payload: append([]byte(nil), buf[8:8+plen]...),
	}, nil
}

// ARPOp distinguishes ARP requests from replies.
type ARPOp uint16

// ARP operations.
const (
	ARPRequest ARPOp = 1
	ARPReply   ARPOp = 2
)

// ARP resolves IP addresses to MAC addresses. The paper's ping benchmark
// explicitly discards the first sample because it includes an ARP
// round-trip; modeling ARP lets us reproduce that artifact.
type ARP struct {
	Op        ARPOp
	SenderMAC MAC
	SenderIP  IP
	TargetMAC MAC
	TargetIP  IP
}

// Encode serialises the message.
func (a *ARP) Encode() []byte {
	buf := make([]byte, 2+8+4+8+4)
	binary.BigEndian.PutUint16(buf[0:2], uint16(a.Op))
	binary.BigEndian.PutUint64(buf[2:10], uint64(a.SenderMAC))
	binary.BigEndian.PutUint32(buf[10:14], uint32(a.SenderIP))
	binary.BigEndian.PutUint64(buf[14:22], uint64(a.TargetMAC))
	binary.BigEndian.PutUint32(buf[22:26], uint32(a.TargetIP))
	return buf
}

// DecodeARP parses a serialised ARP message.
func DecodeARP(buf []byte) (*ARP, error) {
	if len(buf) < 26 {
		return nil, fmt.Errorf("ethernet: arp message too short: %d bytes", len(buf))
	}
	return &ARP{
		Op:        ARPOp(binary.BigEndian.Uint16(buf[0:2])),
		SenderMAC: MAC(binary.BigEndian.Uint64(buf[2:10])),
		SenderIP:  IP(binary.BigEndian.Uint32(buf[10:14])),
		TargetMAC: MAC(binary.BigEndian.Uint64(buf[14:22])),
		TargetIP:  IP(binary.BigEndian.Uint32(buf[22:26])),
	}, nil
}
