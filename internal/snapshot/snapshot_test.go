package snapshot

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func mustWriter(t *testing.T, buf *bytes.Buffer, h Header) *Writer {
	t.Helper()
	w, err := NewWriter(buf, h)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	return w
}

func TestHeaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	h := Header{TopologyHash: 0xdeadbeefcafe, Cycle: 12345, Step: 64}
	w := mustWriter(t, &buf, h)
	w.Section("a")
	w.U64(7)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, got, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if got != h {
		t.Fatalf("header mismatch: got %+v want %+v", got, h)
	}
	name, err := r.Next()
	if err != nil || name != "a" {
		t.Fatalf("Next = %q, %v", name, err)
	}
	if v := r.U64(); v != 7 {
		t.Fatalf("U64 = %d, want 7", v)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF at trailer, got %v", err)
	}
}

func TestPrimitiveRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := mustWriter(t, &buf, Header{})
	w.Section("prims")
	w.U64(^uint64(0))
	w.I64(-42)
	w.F64(3.5)
	w.Bool(true)
	w.Bool(false)
	w.Uvarint(1 << 40)
	w.Bytes([]byte{1, 2, 3})
	w.String("hello")
	w.Begin("comp", 9)
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, _, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if v := r.U64(); v != ^uint64(0) {
		t.Errorf("U64 = %x", v)
	}
	if v := r.I64(); v != -42 {
		t.Errorf("I64 = %d", v)
	}
	if v := r.F64(); v != 3.5 {
		t.Errorf("F64 = %v", v)
	}
	if !r.Bool() || r.Bool() {
		t.Errorf("Bool sequence wrong")
	}
	if v := r.Uvarint(); v != 1<<40 {
		t.Errorf("Uvarint = %d", v)
	}
	if v := r.Bytes(16); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", v)
	}
	if v := r.String(16); v != "hello" {
		t.Errorf("String = %q", v)
	}
	if err := r.Begin("comp", 9); err != nil {
		t.Errorf("Begin: %v", err)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d", r.Remaining())
	}
	if err := r.Err(); err != nil {
		t.Errorf("Err = %v", err)
	}
}

func TestMultipleSections(t *testing.T) {
	var buf bytes.Buffer
	w := mustWriter(t, &buf, Header{})
	for _, name := range []string{"one", "two", "three"} {
		w.Section(name)
		w.String(name)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, _, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for {
		name, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if got := r.String(64); got != name {
			t.Errorf("section %q payload %q", name, got)
		}
		names = append(names, name)
	}
	if strings.Join(names, ",") != "one,two,three" {
		t.Errorf("sections = %v", names)
	}
}

func TestNextSkipsUnreadPayload(t *testing.T) {
	var buf bytes.Buffer
	w := mustWriter(t, &buf, Header{})
	w.Section("big")
	for i := 0; i < 100; i++ {
		w.U64(uint64(i))
	}
	w.Section("after")
	w.U64(99)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, _, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	// Read only part of "big", then advance.
	_ = r.U64()
	name, err := r.Next()
	if err != nil || name != "after" {
		t.Fatalf("Next = %q, %v", name, err)
	}
	if v := r.U64(); v != 99 {
		t.Errorf("after payload = %d", v)
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	var buf bytes.Buffer
	w := mustWriter(t, &buf, Header{})
	w.Section("a")
	w.U64(1)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	if _, _, err := NewReader(bytes.NewReader(bad)); !errors.Is(err, ErrFormat) {
		t.Errorf("bad magic: err = %v", err)
	}

	bad = append([]byte(nil), good...)
	bad[4] = 0xFF
	if _, _, err := NewReader(bytes.NewReader(bad)); !errors.Is(err, ErrVersion) {
		t.Errorf("bad version: err = %v", err)
	}
}

func TestTruncationAlwaysErrors(t *testing.T) {
	var buf bytes.Buffer
	w := mustWriter(t, &buf, Header{TopologyHash: 1, Cycle: 2, Step: 3})
	w.Section("alpha")
	w.U64(1)
	w.Bytes(bytes.Repeat([]byte{0xAB}, 100))
	w.Section("beta")
	w.String("tail")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for n := 0; n < len(full); n++ {
		if err := consume(full[:n]); err == nil {
			t.Fatalf("prefix of %d/%d bytes did not error", n, len(full))
		}
	}
	if err := consume(full); err != nil {
		t.Fatalf("full stream errored: %v", err)
	}
}

// consume reads an entire stream the way a restore would, returning the
// first error (nil for a clean stream).
func consume(p []byte) error {
	r, _, err := NewReader(bytes.NewReader(p))
	if err != nil {
		return err
	}
	for {
		_, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		for r.Remaining() > 0 {
			_ = r.take(1)
		}
		if err := r.Err(); err != nil {
			return err
		}
	}
}

func TestPayloadCorruptionCaughtByCRC(t *testing.T) {
	var buf bytes.Buffer
	w := mustWriter(t, &buf, Header{})
	w.Section("sec")
	w.Bytes(bytes.Repeat([]byte{0x5C}, 64))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Flip a bit in the middle of the payload (well past header+framing).
	bad := append([]byte(nil), full...)
	bad[len(bad)-20] ^= 0x01
	err := consume(bad)
	if err == nil {
		t.Fatal("corrupted payload accepted")
	}
	if !errors.Is(err, ErrFormat) {
		t.Errorf("err = %v, want ErrFormat", err)
	}
}

func TestReaderBoundsChecks(t *testing.T) {
	var buf bytes.Buffer
	w := mustWriter(t, &buf, Header{})
	w.Section("s")
	w.U64(5)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, _, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	_ = r.U64()
	// Section exhausted: every primitive must latch an error, not panic.
	if v := r.U64(); v != 0 {
		t.Errorf("U64 past end = %d", v)
	}
	if r.Err() == nil {
		t.Error("no error latched after overread")
	}
	// Sticky error: further reads stay zero.
	if v := r.Uvarint(); v != 0 {
		t.Errorf("Uvarint after error = %d", v)
	}
}

func TestCountLimit(t *testing.T) {
	var buf bytes.Buffer
	w := mustWriter(t, &buf, Header{})
	w.Section("s")
	w.Uvarint(1000)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, _, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if n := r.Count(10); n != 0 {
		t.Errorf("Count over limit = %d", n)
	}
	if r.Err() == nil {
		t.Error("Count over limit did not latch error")
	}
}

func TestBeginMismatch(t *testing.T) {
	build := func(name string, ver uint64) []byte {
		var buf bytes.Buffer
		w := mustWriter(t, &buf, Header{})
		w.Section("s")
		w.Begin(name, ver)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	read := func(p []byte, name string, ver uint64) error {
		r, _, err := NewReader(bytes.NewReader(p))
		if err != nil {
			return err
		}
		if _, err := r.Next(); err != nil {
			return err
		}
		return r.Begin(name, ver)
	}
	if err := read(build("cpu", 1), "cpu", 1); err != nil {
		t.Errorf("matching Begin: %v", err)
	}
	if err := read(build("cpu", 1), "dram", 1); !errors.Is(err, ErrFormat) {
		t.Errorf("name mismatch: %v", err)
	}
	if err := read(build("cpu", 2), "cpu", 1); !errors.Is(err, ErrVersion) {
		t.Errorf("version mismatch: %v", err)
	}
}

func TestWriterPrimitiveOutsideSection(t *testing.T) {
	var buf bytes.Buffer
	w := mustWriter(t, &buf, Header{})
	w.U64(1)
	if w.Err() == nil {
		t.Error("write outside section did not error")
	}
	if err := w.Close(); err == nil {
		t.Error("Close did not report latched error")
	}
}

func TestInspect(t *testing.T) {
	var buf bytes.Buffer
	w := mustWriter(t, &buf, Header{TopologyHash: 0x77, Cycle: 100, Step: 4})
	w.Section("runner")
	w.U64(1)
	w.U64(2)
	w.Section("node/s0")
	w.Bytes(make([]byte, 32))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	h, infos, err := Inspect(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if h.TopologyHash != 0x77 || h.Cycle != 100 || h.Step != 4 {
		t.Errorf("header = %+v", h)
	}
	if len(infos) != 2 || infos[0].Name != "runner" || infos[1].Name != "node/s0" {
		t.Errorf("infos = %+v", infos)
	}
	if infos[0].Bytes != 16 {
		t.Errorf("runner section bytes = %d, want 16", infos[0].Bytes)
	}
	// Truncated stream must fail Inspect.
	if _, _, err := Inspect(bytes.NewReader(buf.Bytes()[:buf.Len()-1])); err == nil {
		t.Error("Inspect accepted truncated stream")
	}
}

func TestEmptySnapshot(t *testing.T) {
	var buf bytes.Buffer
	w := mustWriter(t, &buf, Header{})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	h, infos, err := Inspect(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Inspect empty: %v", err)
	}
	if h != (Header{}) || len(infos) != 0 {
		t.Errorf("h=%+v infos=%v", h, infos)
	}
}
