package switchmodel

// Tests for the zero-allocation switch datapath: the steady-state alloc
// gates (dense, broadcast and idle rounds), the egress-ring capacity
// regression (the old append-and-reslice queue leaked its backing array
// head on every dequeue), the cached flood list, and the edge cases the
// rewrite had to preserve bit-for-bit: stalled-port + idle fast-forward
// interaction, a broadcast duplicate dropped at one port but delivered at
// the others, and MaxReleaseDelay staleness evaluated across a round
// boundary.

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/ethernet"
	"repro/internal/token"
)

func portMAC(p int) ethernet.MAC { return ethernet.MAC(0x0200_0000_0001) + ethernet.MAC(p) }

// TestSwitchZeroSteadyStateAllocs is the tentpole's alloc gate: once the
// pools and rings are warm, a full TickBatch round — dense traffic
// including a refcounted broadcast, or fully idle — performs zero heap
// allocations. scripts/check.sh runs this test explicitly.
func TestSwitchZeroSteadyStateAllocs(t *testing.T) {
	const n = 64
	sw := New(Config{Name: "tor", Ports: 4, SwitchingLatency: 10})
	benchSwitchMACs(sw.MACTable().Set)
	ins, outs := benchDenseInputs(t, n)

	dense := func() {
		for _, o := range outs {
			o.Reset(n)
		}
		sw.TickBatch(n, ins, outs)
	}
	for i := 0; i < 8; i++ {
		dense() // warm pools, rings, heap and batch slabs
	}
	if allocs := testing.AllocsPerRun(200, dense); allocs != 0 {
		t.Errorf("dense round allocates %.1f objects per TickBatch, want 0", allocs)
	}

	empty := make([]*token.Batch, 4)
	idleOuts := make([]*token.Batch, 4)
	for p := range empty {
		empty[p] = token.NewBatch(n)
		idleOuts[p] = token.NewBatch(n)
	}
	idle := func() { sw.TickBatch(n, empty, idleOuts) }
	idle()
	if allocs := testing.AllocsPerRun(200, idle); allocs != 0 {
		t.Errorf("idle round allocates %.1f objects per TickBatch, want 0", allocs)
	}
	if st := sw.Stats(); st.PacketsIn == 0 || st.PacketsOut == 0 || st.DropsUnroutable != 0 {
		t.Fatalf("gate traffic did not flow as expected: %+v", st)
	}
}

// TestIdleEarlyOutAdvancesCycle pins the early-out's observable behavior:
// a quiescent switch still advances its published cycle per round, and a
// partial ingress assembly (no Last token yet) does not defeat packet
// delivery once the rest of the frame arrives after many idle rounds.
func TestIdleEarlyOutAdvancesCycle(t *testing.T) {
	const n = 32
	sw := New(Config{Name: "tor", Ports: 2, SwitchingLatency: 10})
	sw.MACTable().Set(portMAC(1), 1)
	flits := mkFrameFlits(t, portMAC(1), 0x1, 24) // 5 flits

	// First two flits only: the assembly stays partial across idle rounds.
	b := token.NewBatch(n)
	b.Put(0, token.Token{Data: flits[0], Valid: true})
	b.Put(1, token.Token{Data: flits[1], Valid: true})
	tick(sw, n, map[int]*token.Batch{0: b})
	for i := 0; i < 4; i++ {
		out := tick(sw, n, nil) // idle rounds: early-out path
		for p := range out {
			if !out[p].IsEmpty() {
				t.Fatalf("idle round %d: port %d carried tokens", i, p)
			}
		}
	}
	if got, want := sw.Cycle(), clock.Cycles(5*n); got != want {
		t.Fatalf("cycle after idle rounds = %d, want %d", got, want)
	}
	// Deliver the rest; the packet must assemble and egress normally.
	rest := token.NewBatch(n)
	for i, f := range flits[2:] {
		rest.Put(i, token.Token{Data: f, Valid: true, Last: i == 2})
	}
	outs := []*token.Batch{tick(sw, n, map[int]*token.Batch{0: rest})[1]}
	outs = append(outs, tick(sw, n, nil)[1])
	pkts, _ := collectPackets(outs, 0)
	if len(pkts) != 1 || len(pkts[0]) != 5 {
		t.Fatalf("got %d packets (flits %v), want the 5-flit frame", len(pkts), pkts)
	}
	if st := sw.Stats(); st.FlitsIn != 5 || st.PacketsIn != 1 || st.PacketsOut != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestOutQueueNoCapacityGrowth is the head-slicing regression gate: with
// packets continuously enqueued and drained (including stale drops), the
// egress ring's backing array must stop growing once it covers the
// steady-state occupancy, where the old append-and-reslice queue leaked
// its head cells and reallocated forever.
func TestOutQueueNoCapacityGrowth(t *testing.T) {
	const n = 64
	sw := New(Config{Name: "tor", Ports: 3, SwitchingLatency: 10, MaxReleaseDelay: 8})
	sw.MACTable().Set(portMAC(2), 2)
	f1 := mkFrameFlits(t, portMAC(2), 0xa, 16)
	f2 := mkFrameFlits(t, portMAC(2), 0xb, 16)
	for round := 0; round < 300; round++ {
		tick(sw, n, map[int]*token.Batch{
			0: packetBatch(n, 0, f1),
			1: packetBatch(n, 1, f2),
		})
	}
	if cap := len(sw.out[2].queue.buf); cap > 8 {
		t.Errorf("egress ring grew to %d cells across rounds, want a small steady-state bound", cap)
	}
	if free := len(sw.free); free > 8 {
		t.Errorf("packet pool grew to %d entries, want steady-state reuse", free)
	}
	st := sw.Stats()
	if st.PacketsIn != 600 || st.PacketsOut+st.DropsStale != 600 {
		t.Errorf("packet conservation violated: %+v", st)
	}
}

// TestFloodListCachedAndInvalidated covers the MACTableRouter satellite:
// broadcast/unknown routing reuses one flood list per ingress port instead
// of allocating per packet, and Set invalidates the cache.
func TestFloodListCachedAndInvalidated(t *testing.T) {
	sw := New(Config{Name: "tor", Ports: 4})
	r := sw.MACTable()
	pkt := &Packet{Flits: mkFrameFlits(t, ethernet.Broadcast, 0x1, 0), InPort: 1}

	a := r.Route(sw, pkt)
	b := r.Route(sw, pkt)
	want := []int{0, 2, 3}
	for i, p := range want {
		if a[i] != p {
			t.Fatalf("flood list = %v, want %v", a, want)
		}
	}
	if &a[0] != &b[0] {
		t.Error("repeated floods from one ingress port must share the cached list")
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = r.Route(sw, pkt) }); allocs != 0 {
		t.Errorf("cached flood path allocates %.1f per Route, want 0", allocs)
	}

	// Table mutation invalidates the cache (and must not corrupt results).
	a[0] = 99 // simulate a stale cache being poisoned
	r.Set(portMAC(2), 2)
	c := r.Route(sw, pkt)
	for i, p := range want {
		if c[i] != p {
			t.Fatalf("flood list after Set = %v, want %v", c, want)
		}
	}

	// The unicast fast path reuses its scratch slab, too.
	uni := &Packet{Flits: mkFrameFlits(t, portMAC(2), 0x1, 0), InPort: 0}
	u1 := r.Route(sw, uni)
	if len(u1) != 1 || u1[0] != 2 {
		t.Fatalf("unicast route = %v, want [2]", u1)
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = r.Route(sw, uni) }); allocs != 0 {
		t.Errorf("unicast path allocates %.1f per Route, want 0", allocs)
	}
}

// TestStallWithIdleFastForward pins the interaction between the stall hook
// and the idle fast-forward: stalled port-cycles are counted while the
// port has (or awaits) work at the stalled cycle, but cycles jumped over
// by the fast-forward — and trailing cycles after the queue empties — are
// never stall-checked. It also confirms a stall hook disables the
// whole-switch idle early-out (round 2 still counts its leading stalls).
func TestStallWithIdleFastForward(t *testing.T) {
	const n = 64
	sw := New(Config{Name: "tor", Ports: 2, SwitchingLatency: 10})
	sw.MACTable().Set(portMAC(1), 1)
	// Stall port 1 over [0,20) and [64,70); the [40,45) window would only
	// be observed if the fast-forward (idle jump 23 -> 50) ticked through
	// it, and [70,...) only if an empty queue kept the port scanning.
	sw.SetStall(func(port int, cycle clock.Cycles) bool {
		if port != 1 {
			return false
		}
		return cycle < 20 || (cycle >= 40 && cycle < 45) || (cycle >= 64 && cycle < 70)
	})
	flits := mkFrameFlits(t, portMAC(1), 0x1, 8) // 3 flits

	b := token.NewBatch(n)
	for i, f := range flits {
		b.Put(3+i, token.Token{Data: f, Valid: true, Last: i == 2}) // release 5+10 = 15
	}
	for i, f := range flits {
		b.Put(38+i, token.Token{Data: f, Valid: true, Last: i == 2}) // release 40+10 = 50
	}
	out1 := tick(sw, n, map[int]*token.Batch{0: b})
	pkts, lasts := collectPackets([]*token.Batch{out1[1]}, 0)
	if len(pkts) != 2 {
		t.Fatalf("got %d packets, want 2", len(pkts))
	}
	// First: release 15, held by the stall to cycle 20, last flit at 22.
	// Second: release 50 — the idle fast-forward jumps from 23 straight to
	// 50, skipping (not counting) the [40,45) stall window; last at 52.
	if lasts[0] != 22 || lasts[1] != 52 {
		t.Errorf("last-flit cycles = %v, want [22 52]", lasts)
	}
	if got := sw.Stats().StallCycles; got != 20 {
		t.Errorf("round 1 StallCycles = %d, want 20 (fast-forward skips stall checks)", got)
	}

	// Round 2 is fully idle but the stall hook is installed: the early-out
	// must stay off, and the leading stalled cycles [64,70) are counted
	// before the empty queue ends the scan.
	out2 := tick(sw, n, nil)
	if !out2[1].IsEmpty() {
		t.Error("idle round emitted tokens")
	}
	if got := sw.Stats().StallCycles; got != 26 {
		t.Errorf("after idle round StallCycles = %d, want 26", got)
	}
}

// TestBroadcastPartialDrop covers the refcounted fan-out edge: one
// broadcast duplicate overflows a congested port and is dropped there,
// while the other ports deliver it. Byte accounting must return to zero
// and the shared packet must be recycled exactly once.
func TestBroadcastPartialDrop(t *testing.T) {
	const n = 64
	// Buffer fits one 24-byte frame plus change, not two.
	sw := New(Config{Name: "tor", Ports: 4, SwitchingLatency: 10, OutputBufferBytes: 40})
	sw.MACTable().Set(portMAC(1), 1)
	uni := mkFrameFlits(t, portMAC(1), 0xa, 8)        // 3 flits = 24 bytes
	bc := mkFrameFlits(t, ethernet.Broadcast, 0xb, 8) // 3 flits = 24 bytes
	out := tick(sw, n, map[int]*token.Batch{
		3: packetBatch(n, 0, uni), // release 12: drains into port 1 first
		0: packetBatch(n, 3, bc),  // release 15: overflows port 1, lands on 2 and 3
	})
	gotUni, _ := collectPackets([]*token.Batch{out[1]}, 0)
	if len(gotUni) != 1 || len(gotUni[0]) != 3 {
		t.Fatalf("port 1: got %d packets, want only the unicast", len(gotUni))
	}
	for _, p := range []int{2, 3} {
		pk, _ := collectPackets([]*token.Batch{out[p]}, 0)
		if len(pk) != 1 {
			t.Fatalf("port %d: got %d packets, want the broadcast duplicate", p, len(pk))
		}
		if got := ethernet.DstFromFirstFlit(pk[0][0]); got != ethernet.Broadcast {
			t.Errorf("port %d delivered dst %v, want broadcast", p, got)
		}
	}
	if !out[0].IsEmpty() {
		t.Error("broadcast reflected to its ingress port")
	}
	st := sw.Stats()
	if st.DropsBufFull != 1 {
		t.Errorf("DropsBufFull = %d, want 1 (port 1's duplicate)", st.DropsBufFull)
	}
	if st.PacketsOut != 3 || st.FlitsOut != 9 {
		t.Errorf("delivered %d packets / %d flits, want 3 / 9: %+v", st.PacketsOut, st.FlitsOut, st)
	}
	for p := range sw.out {
		if got := sw.out[p].queuedBytes; got != 0 {
			t.Errorf("port %d queuedBytes = %d after full drain, want 0", p, got)
		}
	}
	// Both assembled packets (unicast, shared broadcast) are back in the
	// pool exactly once each.
	if got := len(sw.free); got != 2 {
		t.Errorf("packet pool holds %d packets, want 2", got)
	}
}

// TestStaleDropAtRoundBoundary pins MaxReleaseDelay evaluation across a
// round boundary: a packet held up by a stall becomes droppable the first
// cycle of the next round iff its age then exceeds the bound.
func TestStaleDropAtRoundBoundary(t *testing.T) {
	run := func(maxDelay clock.Cycles) (Stats, [][]uint64, []int64) {
		const n = 32
		sw := New(Config{Name: "tor", Ports: 2, SwitchingLatency: 10, MaxReleaseDelay: maxDelay})
		sw.MACTable().Set(portMAC(1), 1)
		// Last flit at cycle 2: release 12. The stall pins the port for
		// all of round 1, so its first release opportunity is cycle 32 —
		// the first cycle of round 2 — at age 32-12 = 20.
		sw.SetStall(func(port int, cycle clock.Cycles) bool { return port == 1 && cycle < 32 })
		flits := mkFrameFlits(t, portMAC(1), 0x1, 8)
		var outs []*token.Batch
		outs = append(outs, tick(sw, 32, map[int]*token.Batch{0: packetBatch(32, 0, flits)})[1])
		outs = append(outs, tick(sw, 32, nil)[1])
		pkts, lasts := collectPackets(outs, 0)
		return sw.Stats(), pkts, lasts
	}

	// Age 20 == bound: still releasable, egresses 32..34.
	st, pkts, lasts := run(20)
	if len(pkts) != 1 || st.DropsStale != 0 {
		t.Fatalf("maxDelay=20: packets=%d stats=%+v, want delivery", len(pkts), st)
	}
	if lasts[0] != 34 {
		t.Errorf("maxDelay=20: last flit at %d, want 34", lasts[0])
	}

	// Age 20 > bound 19: dropped on the first cycle of round 2.
	st, pkts, _ = run(19)
	if len(pkts) != 0 || st.DropsStale != 1 {
		t.Errorf("maxDelay=19: packets=%d stats=%+v, want stale drop at the boundary", len(pkts), st)
	}
}
