package softstack

import (
	"container/heap"

	"repro/internal/clock"
)

// This file implements the node's CPU scheduler model: a fixed number of
// cores, application threads with FIFO job queues, optional pinning, and a
// wake-placement policy that reproduces the thread-placement phenomena of
// Section IV-E (memcached thread imbalance and the smoothing effect of
// pinning).

// Job is a unit of CPU work executed by a thread: cost cycles of
// computation followed by a completion callback.
type Job struct {
	// Cost is the CPU time consumed, in cycles.
	Cost clock.Cycles
	// Fn runs at completion with the completion cycle.
	Fn func(done clock.Cycles)
}

// Thread is a schedulable entity.
type Thread struct {
	node *Node
	id   int
	// pinned is the core this thread is pinned to, or -1.
	pinned int
	// jobs is the FIFO work queue.
	jobs []Job
	// running reports whether the thread currently occupies a core.
	running bool
	// core is the core the thread is queued or running on (-1 when idle).
	core int
	// lastCore is where the thread last ran: wake placement prefers it
	// for cache affinity, like Linux's prev_cpu heuristic.
	lastCore int
	// wakes counts wakeups, used by the placement hash.
	wakes uint64
	// Busy accumulates CPU cycles consumed (for utilisation reporting).
	Busy clock.Cycles
}

// coreState is one CPU's run queue.
type coreState struct {
	// busyUntil is when the in-flight job finishes.
	busyUntil clock.Cycles
	// current is the thread whose job is in flight.
	current *Thread
	// runq holds threads waiting for this core.
	runq []*Thread
	// quantumStart is when the current thread was given the core; it may
	// run jobs back-to-back until SchedQuantum expires.
	quantumStart clock.Cycles
}

// scheduler is the per-node CPU model.
type scheduler struct {
	node  *Node
	cores []coreState
	// rngState drives deterministic wake placement.
	rngState uint64
}

func newScheduler(n *Node, cores int, seed uint64) *scheduler {
	return &scheduler{node: n, cores: make([]coreState, cores), rngState: seed*2862933555777941757 + 3037000493}
}

func (s *scheduler) rand() uint64 {
	// xorshift64*: deterministic, seedable, no global state.
	x := s.rngState
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	s.rngState = x
	return x * 2685821657736338717
}

// NewThread creates a thread. pinned is a core index, or -1 for an
// unpinned thread subject to the wake-placement policy.
func (n *Node) NewThread(pinned int) *Thread {
	th := &Thread{node: n, id: len(n.threads), pinned: pinned, core: -1}
	th.lastCore = th.id % len(n.sched.cores)
	n.threads = append(n.threads, th)
	return th
}

// Submit queues a job on the thread at cycle now, waking the thread if it
// is idle.
func (th *Thread) Submit(now clock.Cycles, job Job) {
	th.jobs = append(th.jobs, job)
	if th.running || th.core >= 0 {
		return // already running or queued; job will be picked up
	}
	th.node.sched.wake(now, th)
}

// QueueLen reports the number of jobs waiting on the thread (including the
// one in flight).
func (th *Thread) QueueLen() int { return len(th.jobs) }

// wake places a thread with pending work onto a core's run queue.
func (s *scheduler) wake(now clock.Cycles, th *Thread) {
	core := th.pinned
	if core < 0 {
		core = s.placeUnpinned(now, th)
	}
	th.core = core
	th.wakes++
	c := &s.cores[core]
	c.runq = append(c.runq, th)
	s.dispatch(now, core)
}

// placeUnpinned models Linux wake placement:
//
//   - prefer the thread's previous core for cache affinity (prev_cpu);
//     with five threads on four cores this keeps a sharing pair together,
//     the structural cause of the paper's thread-imbalance tail;
//   - occasionally explore another core even when prev is idle — the
//     "poor thread placement" the paper suspects behind the unpinned
//     4-thread p95 tracking the 5-thread curve at low-to-mid load;
//   - when prev is busy, sometimes stay anyway (wake affinity), otherwise
//     search for an idle core.
//
// Pinning removes all three effects, which is why the pinned curve is
// smooth.
func (s *scheduler) placeUnpinned(now clock.Cycles, th *Thread) int {
	n := len(s.cores)
	idle := func(c int) bool {
		return s.cores[c].current == nil && s.cores[c].busyUntil <= now && len(s.cores[c].runq) == 0
	}
	prev := th.lastCore
	const explorePct = 15
	const stayBusyPct = 30
	if idle(prev) {
		if s.rand()%100 < explorePct {
			return int(s.rand() % uint64(n)) // exploration: may collide
		}
		return prev
	}
	if s.rand()%100 < stayBusyPct {
		return prev // wake affinity onto a busy core
	}
	start := int(s.rand() % uint64(n))
	for i := 0; i < n; i++ {
		if c := (start + i) % n; idle(c) {
			return c
		}
	}
	return prev
}

// dispatch starts the next job on the core if it is free. An idle core
// with an empty run queue performs idle balancing: it steals a waiting
// unpinned thread from the most loaded core, the behaviour that makes the
// unpinned curve converge to the pinned one at high load (Section IV-E).
func (s *scheduler) dispatch(now clock.Cycles, core int) {
	c := &s.cores[core]
	if c.current != nil || now < c.busyUntil {
		return
	}
	if len(c.runq) == 0 {
		s.steal(core)
	}
	if len(c.runq) == 0 {
		return
	}
	th := c.runq[0]
	c.runq = c.runq[1:]
	if len(th.jobs) == 0 {
		// Spurious wake; thread goes idle.
		th.core = -1
		s.dispatch(now, core)
		return
	}
	c.quantumStart = now
	s.startJob(now, core, th)
}

// startJob begins the thread's next job on the core. The job's effective
// duration is stretched by the number of co-resident runnable threads —
// a processor-sharing approximation of time-slicing: two busy threads on
// one core each make progress at half speed, the core contention behind
// the memcached imbalance tail.
func (s *scheduler) startJob(now clock.Cycles, core int, th *Thread) {
	c := &s.cores[core]
	job := th.jobs[0]
	th.jobs = th.jobs[1:]
	th.running = true
	th.lastCore = core
	th.Busy += job.Cost
	share := clock.Cycles(1 + len(c.runq))
	c.current = th
	c.busyUntil = now + job.Cost*share
	s.node.at(c.busyUntil, func(done clock.Cycles) {
		s.complete(done, core, th, job)
	})
}

// steal moves one waiting unpinned thread from the longest run queue onto
// the idle core.
func (s *scheduler) steal(core int) {
	victim, best := -1, 0
	for i := range s.cores {
		if i == core {
			continue
		}
		if n := len(s.cores[i].runq); n > best {
			// Only steal a queue that has an unpinned thread waiting.
			for _, th := range s.cores[i].runq {
				if th.pinned < 0 {
					victim, best = i, n
					break
				}
			}
		}
	}
	if victim < 0 {
		return
	}
	vq := s.cores[victim].runq
	for i, th := range vq {
		if th.pinned < 0 {
			s.cores[victim].runq = append(vq[:i:i], vq[i+1:]...)
			th.core = core
			s.cores[core].runq = append(s.cores[core].runq, th)
			return
		}
	}
}

// complete retires a finished job: run its callback, requeue the thread if
// it has more work, then let the core pick its next thread.
func (s *scheduler) complete(done clock.Cycles, core int, th *Thread, job Job) {
	c := &s.cores[core]
	c.current = nil
	th.running = false
	if job.Fn != nil {
		job.Fn(done)
	}
	if len(th.jobs) > 0 {
		quantum := s.node.costs.SchedQuantum
		if len(c.runq) == 0 || done-c.quantumStart < quantum {
			// Nobody waiting, or quantum not yet exhausted: keep the core
			// and run the next job back-to-back. A co-located thread can
			// therefore stall for a full quantum — the imbalance tail.
			s.pushIdle(done, core)
			s.startJob(done, core, th)
			return
		}
		// Quantum expired with others waiting: rotate to the tail.
		c.runq = append(c.runq, th)
	} else {
		th.core = -1
	}
	s.pushIdle(done, core)
	s.dispatch(done, core)
}

// pushIdle performs push migration: while this core has waiting unpinned
// threads and some other core is completely idle, move one over. Together
// with steal(), this models Linux's load balancing — at high load every
// thread ends up with its own core and the unpinned configuration behaves
// like the pinned one, as the paper observes.
func (s *scheduler) pushIdle(now clock.Cycles, core int) {
	c := &s.cores[core]
	for len(c.runq) > 0 {
		idle := -1
		for i := range s.cores {
			if i == core {
				continue
			}
			o := &s.cores[i]
			if o.current == nil && now >= o.busyUntil && len(o.runq) == 0 {
				idle = i
				break
			}
		}
		if idle < 0 {
			return
		}
		moved := false
		for i, th := range c.runq {
			if th.pinned < 0 {
				c.runq = append(c.runq[:i:i], c.runq[i+1:]...)
				th.core = idle
				s.cores[idle].runq = append(s.cores[idle].runq, th)
				s.dispatch(now, idle)
				moved = true
				break
			}
		}
		if !moved {
			return
		}
	}
}

// --- node event queue ---

// event is a scheduled callback.
type event struct {
	at  clock.Cycles
	seq uint64
	fn  func(now clock.Cycles)
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// at schedules fn at the given absolute cycle. Events scheduled for the
// past run at the current processing point (monotonicity is preserved by
// the drain loop).
func (n *Node) at(cycle clock.Cycles, fn func(now clock.Cycles)) {
	heap.Push(&n.events, event{at: cycle, seq: n.eventSeq, fn: fn})
	n.eventSeq++
}

// At schedules an application callback at an absolute cycle (public form).
func (n *Node) At(cycle clock.Cycles, fn func(now clock.Cycles)) { n.at(cycle, fn) }
