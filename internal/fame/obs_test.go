package fame

import (
	"runtime"
	"testing"

	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/token"
)

// buildObsTopology wires src -> wire -> sink with the given link latency
// and a programmed packet stream, returning the runner and sink.
func buildObsTopology(t *testing.T, latency clock.Cycles, packets int) (*Runner, *Sink) {
	t.Helper()
	r := NewRunner()
	src := NewSource("src")
	wire := NewWire("wire")
	sink := NewSink("sink")
	r.Add(src)
	r.Add(wire)
	r.Add(sink)
	if err := r.Connect(src, 0, wire, 0, latency); err != nil {
		t.Fatal(err)
	}
	if err := r.Connect(wire, 1, sink, 0, latency); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < packets; p++ {
		src.EmitPacketAt(int64(p)*16, []uint64{uint64(p) + 1, uint64(p) + 2})
	}
	return r, sink
}

// TestEquivalenceWithMetrics pins the regression the observability layer
// must never introduce: Run and RunParallel stay cycle-exact equals with
// metrics enabled, and the shared counters agree across both schedulers.
func TestEquivalenceWithMetrics(t *testing.T) {
	const latency = clock.Cycles(8)
	const cycles = clock.Cycles(8 * 50)

	seqReg := obs.NewRegistry("seq")
	seq, seqSink := buildObsTopology(t, latency, 20)
	seq.EnableMetrics(seqReg)
	if err := seq.Run(cycles); err != nil {
		t.Fatal(err)
	}

	parReg := obs.NewRegistry("par")
	par, parSink := buildObsTopology(t, latency, 20)
	par.EnableMetrics(parReg)
	if err := par.RunParallel(cycles); err != nil {
		t.Fatal(err)
	}

	if len(seqSink.Received) == 0 {
		t.Fatal("sequential run delivered no tokens")
	}
	if len(seqSink.Received) != len(parSink.Received) {
		t.Fatalf("token count diverged: seq=%d par=%d", len(seqSink.Received), len(parSink.Received))
	}
	for i := range seqSink.Received {
		if seqSink.Received[i] != parSink.Received[i] {
			t.Fatalf("arrival %d diverged: seq=%+v par=%+v", i, seqSink.Received[i], parSink.Received[i])
		}
	}

	ss, ps := seqReg.Snapshot(), parReg.Snapshot()
	wantRounds := uint64(cycles / latency)
	for _, tc := range []struct {
		name string
		s    *obs.Snapshot
	}{{"seq", ss}, {"par", ps}} {
		if got := tc.s.Counters["fame_rounds_total"]; got != wantRounds {
			t.Errorf("%s fame_rounds_total = %d, want %d", tc.name, got, wantRounds)
		}
		if got := tc.s.Counters["fame_cycles_total"]; got != uint64(cycles) {
			t.Errorf("%s fame_cycles_total = %d, want %d", tc.name, got, cycles)
		}
		if got := tc.s.Gauges["fame_cycle"]; got != int64(cycles) {
			t.Errorf("%s fame_cycle = %d, want %d", tc.name, got, cycles)
		}
		if got := tc.s.Counters["fame_pool_drops_total"]; got != 0 {
			t.Errorf("%s fame_pool_drops_total = %d, want 0", tc.name, got)
		}
	}
	// Token counters are a pure function of target behaviour, so the two
	// schedulers must agree exactly.
	if st, pt := ss.Counters["fame_tokens_total"], ps.Counters["fame_tokens_total"]; st != pt || st == 0 {
		t.Errorf("fame_tokens_total diverged: seq=%d par=%d", st, pt)
	}
	for _, ep := range []string{"src", "wire", "sink"} {
		name := obs.Label("fame_endpoint_tokens_total", "endpoint", ep)
		if ss.Counters[name] != ps.Counters[name] {
			t.Errorf("%s diverged: seq=%d par=%d", name, ss.Counters[name], ps.Counters[name])
		}
	}
	// Tick timing is sampled, and both modes sample the same round
	// indices: each endpoint's histogram must hold exactly one observation
	// per sampled round in both modes.
	wantTicks := sampledRounds(wantRounds)
	for _, ep := range []string{"src", "wire", "sink"} {
		name := obs.Label("fame_tick_nanos", "endpoint", ep)
		if got := ss.Histograms[name].Count; got != wantTicks {
			t.Errorf("seq %s count = %d, want %d", name, got, wantTicks)
		}
		if got := ps.Histograms[name].Count; got != wantTicks {
			t.Errorf("par %s count = %d, want %d", name, got, wantTicks)
		}
	}
}

// TestParallelSteadyStateAllocs asserts the batch-pool property: once the
// parallel runner's batch population is warm, additional rounds must not
// allocate. Before the pool fix, the undersized free ring dropped recycled
// batches and every round allocated a fresh replacement, so allocations
// grew linearly with round count. The workers=2 and workers=3 variants
// force the cross-worker SPSC ring path even on a single-core host, so
// the zero-steady-state-alloc property is asserted for the ring transport
// too, not just the delegated sequential loop.
func TestParallelSteadyStateAllocs(t *testing.T) {
	for _, workers := range []int{0, 2, 3} {
		const latency = clock.Cycles(8)
		r, _ := buildObsTopology(t, latency, 0) // idle: the pool is the only allocator in play
		if err := r.SetWorkers(workers); err != nil {
			t.Fatal(err)
		}

		// Warm up: first rounds legitimately allocate the circulating batches.
		if err := r.RunParallel(latency * 64); err != nil {
			t.Fatal(err)
		}

		measure := func(rounds clock.Cycles) uint64 {
			runtime.GC()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			if err := r.RunParallel(latency * rounds); err != nil {
				t.Fatal(err)
			}
			runtime.ReadMemStats(&after)
			return after.Mallocs - before.Mallocs
		}

		// Per-call overhead (worker goroutines, rings, plans) is identical
		// for both calls, so the difference isolates the per-round cost.
		short := measure(16)
		long := measure(16 + 512)
		if long > short {
			perRound := float64(long-short) / 512
			if perRound > 0.5 {
				t.Errorf("workers=%d: parallel rounds allocate in steady state: %.2f allocs/round (short=%d long=%d)", workers, perRound, short, long)
			}
		}
	}
}

// TestParallelPoolNoDropsUnderMixedRuns drives alternating sequential and
// parallel runs (the seeding path the original ring sizing got wrong) and
// asserts the pool tripwires stay clean.
func TestParallelPoolNoDropsUnderMixedRuns(t *testing.T) {
	const latency = clock.Cycles(4)
	reg := obs.NewRegistry("mixed")
	r, _ := buildObsTopology(t, latency, 50)
	r.EnableMetrics(reg)
	for i := 0; i < 8; i++ {
		if err := r.Run(latency * 4); err != nil {
			t.Fatal(err)
		}
		if err := r.RunParallel(latency * 32); err != nil {
			t.Fatal(err)
		}
	}
	s := reg.Snapshot()
	if got := s.Counters["fame_pool_drops_total"]; got != 0 {
		t.Errorf("fame_pool_drops_total = %d, want 0", got)
	}
	// Allocations must stay bounded by the circulating population (links
	// hold at most depth+3 batches per direction; 2 links * 2 directions),
	// not grow with the 256 parallel rounds driven above.
	if got := s.Counters["fame_pool_allocs_total"]; got > 32 {
		t.Errorf("fame_pool_allocs_total = %d, want a small constant (pool is leaking)", got)
	}
}

// TestMeasureTimesOnlyRoundLoop asserts Measure's wall time is exactly
// the round-loop time recorded by the runner itself (fame_run_wall_nanos),
// not an outer stopwatch that would fold build and ring construction in.
func TestMeasureTimesOnlyRoundLoop(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		reg := obs.NewRegistry("measure")
		r, _ := buildObsTopology(t, 8, 4)
		r.EnableMetrics(reg)
		rate, err := r.Measure(8*16, clock.DefaultTargetClock, parallel)
		if err != nil {
			t.Fatal(err)
		}
		if rate.TargetCycles != 8*16 {
			t.Errorf("parallel=%v: TargetCycles = %d", parallel, rate.TargetCycles)
		}
		if rate.Wall <= 0 {
			t.Errorf("parallel=%v: non-positive wall %v", parallel, rate.Wall)
		}
		got := reg.Snapshot().Counters["fame_run_wall_nanos_total"]
		if got != uint64(rate.Wall.Nanoseconds()) {
			t.Errorf("parallel=%v: Measure wall %dns != round-loop wall %dns", parallel, rate.Wall.Nanoseconds(), got)
		}
	}
}

// TestEnableMetricsAfterBuild covers late attachment: a runner that has
// already run attaches to a registry and subsequent runs are counted.
func TestEnableMetricsAfterBuild(t *testing.T) {
	r, _ := buildObsTopology(t, 8, 4)
	if err := r.Run(8 * 2); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry("late")
	r.EnableMetrics(reg)
	if err := r.Run(8 * 3); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["fame_rounds_total"]; got != 3 {
		t.Errorf("fame_rounds_total = %d, want 3 (only post-attach rounds)", got)
	}
	// Detach again: further runs must not touch the registry.
	r.EnableMetrics(nil)
	if err := r.Run(8 * 3); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["fame_rounds_total"]; got != 3 {
		t.Errorf("fame_rounds_total = %d after detach, want 3", got)
	}
}

// BenchmarkParallelSteadyState reports allocs/op for warm parallel rounds;
// with the pool fix it must show zero allocations per round (the fixed
// per-call setup amortises to ~0 over the 256 rounds per op).
func BenchmarkParallelSteadyState(b *testing.B) {
	r := NewRunner()
	src := NewSource("src")
	sink := NewSink("sink")
	r.Add(src)
	r.Add(sink)
	if err := r.Connect(src, 0, sink, 0, 8); err != nil {
		b.Fatal(err)
	}
	if err := r.RunParallel(8 * 64); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.RunParallel(8 * 256); err != nil {
			b.Fatal(err)
		}
	}
}

// silence unused-import vigilance if token stops being needed above.
var _ = token.Empty
