package fame

import (
	"bytes"
	"testing"

	"repro/internal/snapshot"
)

// The multiplexed scheduler (mux.go) claims bit-identity with the
// sequential and pool schedulers on every observable: token streams,
// injector windows, checkpoint bytes, metrics and panic containment.
// These tests hold it to that claim by running the exact contracts the
// pool mode already satisfies, through the fused-unit code path.

// TestMuxWorkerSweepEquivalence: streams bit-identical to the sequential
// scheduler for every worker count, with and without fault injection,
// plus the SchedUnits/EffectiveWorkers accounting that distinguishes the
// mode (units == effective workers, not endpoints).
func TestMuxWorkerSweepEquivalence(t *testing.T) { testWorkerSweepEquivalence(t, true) }

// TestMuxCheckpointMidRun: checkpoint between multiplexed RunParallel
// batches, restore, re-run — state bytes must match the uninterrupted
// run, which requires the fused units to drain their rings back into the
// persistent channels exactly like the pool mode.
func TestMuxCheckpointMidRun(t *testing.T) { testCheckpointMidParallel(t, true) }

// TestMuxMetricsEquivalence: the flattened per-member accounting must
// produce the same fame_* counters, gauges and tick histograms as the
// sequential scheduler, with zero pool drops.
func TestMuxMetricsEquivalence(t *testing.T) { testMultiWorkerMetrics(t, true) }

// TestMuxPanicContainment: a panicking member surfaces as a structured
// EndpointPanicError naming the member (not the fused unit), the runner
// poisons, and a restore + disarmed replay lands bit-identical.
func TestMuxPanicContainment(t *testing.T) { testPanicContainment(t, true, true) }

// TestMuxCrossModeRestore is the interoperability half of the checkpoint
// contract: a checkpoint written under one scheduling mode must restore
// and continue under the other, because mode is host-side tuning and the
// snapshot format knows nothing about it.
func TestMuxCrossModeRestore(t *testing.T) {
	const n, m = 64, 128
	save := func(r *Runner, a, z *pulse) []byte {
		var buf bytes.Buffer
		w, err := snapshot.NewWriter(&buf, snapshot.Header{Cycle: uint64(r.Cycle()), Step: uint64(r.Step())})
		if err != nil {
			t.Fatal(err)
		}
		w.Section("state")
		for _, s := range []snapshot.Snapshotter{r, a, z} {
			if err := s.Save(w); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	// Sequential reference for the full n+m run.
	ref, refA, refZ := pulsePair()
	if err := ref.Run(n + m); err != nil {
		t.Fatal(err)
	}
	want := save(ref, refA, refZ)

	for _, dir := range []struct {
		name             string
		srcMux, dstMux   bool
		srcWork, dstWork int
	}{
		{"mux to pool", true, false, 2, 3},
		{"pool to mux", false, true, 3, 2},
	} {
		t.Run(dir.name, func(t *testing.T) {
			r1, a1, z1 := pulsePair()
			if err := r1.SetWorkers(dir.srcWork); err != nil {
				t.Fatal(err)
			}
			r1.SetMultiplexed(dir.srcMux)
			if err := r1.RunParallel(n); err != nil {
				t.Fatal(err)
			}
			ck := save(r1, a1, z1)

			r2, a2, z2 := pulsePair()
			if err := r2.SetWorkers(dir.dstWork); err != nil {
				t.Fatal(err)
			}
			r2.SetMultiplexed(dir.dstMux)
			rd, _, err := snapshot.NewReader(bytes.NewReader(ck))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := rd.Next(); err != nil {
				t.Fatal(err)
			}
			for _, s := range []snapshot.Snapshotter{r2, a2, z2} {
				if err := s.Restore(rd); err != nil {
					t.Fatal(err)
				}
			}
			if err := r2.RunParallel(m); err != nil {
				t.Fatal(err)
			}
			if got := save(r2, a2, z2); !bytes.Equal(got, want) {
				t.Error("cross-mode restored run diverged from sequential reference")
			}
		})
	}
}

// TestMuxPlanFusion pins the unit-fusion arithmetic directly: every
// worker's endpoints collapse into one muxPlan whose member spans tile
// the flat port arrays exactly, in global registration order.
func TestMuxPlanFusion(t *testing.T) {
	r, _, _ := buildSweepTopology(t, false)
	if err := r.build(); err != nil {
		t.Fatal(err)
	}
	parts := r.partition(3)
	owner := make([]int, len(r.endpoints))
	for w, eps := range parts {
		for _, i := range eps {
			owner[i] = w
		}
	}
	rings, err := r.buildCrossRings(owner)
	if err != nil {
		t.Fatal(err)
	}
	units := buildMuxPlans(r.buildPlans(parts, rings, int(r.step)))
	defer func() {
		for _, rp := range rings {
			rp.drain()
		}
	}()
	if len(units) != len(parts) {
		t.Fatalf("%d units for %d parts", len(units), len(parts))
	}
	for w, u := range units {
		if len(u.members) != len(parts[w]) {
			t.Errorf("unit %d has %d members, part has %d endpoints", w, len(u.members), len(parts[w]))
		}
		at := 0
		for mi, mem := range u.members {
			if mem.idx != parts[w][mi] {
				t.Errorf("unit %d member %d is endpoint %d, want %d (registration order)", w, mi, mem.idx, parts[w][mi])
			}
			if mem.lo != at {
				t.Errorf("unit %d member %d span starts at %d, want %d (spans must tile)", w, mi, mem.lo, at)
			}
			if want := r.endpoints[mem.idx].NumPorts(); mem.hi-mem.lo != want {
				t.Errorf("unit %d member %d span width %d, want %d ports", w, mi, mem.hi-mem.lo, want)
			}
			at = mem.hi
		}
		if at != len(u.in) || len(u.in) != len(u.out) || len(u.in) != len(u.ins) || len(u.in) != len(u.outs) {
			t.Errorf("unit %d flat arrays ragged: spans end %d, in %d, out %d, ins %d, outs %d",
				w, at, len(u.in), len(u.out), len(u.ins), len(u.outs))
		}
	}
}
