package fame

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/snapshot"
	"repro/internal/token"
)

// hub is a partition-test stub: an inert endpoint with an arbitrary port
// count, standing in for a switch (whose per-round cost scales with its
// port count).
type hub struct {
	name  string
	ports int
}

func (h *hub) Name() string                            { return h.name }
func (h *hub) NumPorts() int                           { return h.ports }
func (h *hub) TickBatch(n int, in, out []*token.Batch) {}

// starRunner builds the bench-like star: one hub with `leaves` ports, one
// single-port leaf endpoint per port.
func starRunner(t *testing.T, leaves int) *Runner {
	t.Helper()
	r := NewRunner()
	sw := &hub{name: "sw", ports: leaves}
	r.Add(sw)
	for i := 0; i < leaves; i++ {
		leaf := &hub{name: "leaf" + string(rune('a'+i)), ports: 1}
		r.Add(leaf)
		if err := r.Connect(leaf, 0, sw, i, 8); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestSetWorkersValidation(t *testing.T) {
	r := NewRunner()
	if err := r.SetWorkers(-1); err == nil {
		t.Error("SetWorkers(-1) accepted")
	}
	if err := r.SetWorkers(0); err != nil {
		t.Errorf("SetWorkers(0) rejected: %v", err)
	}
	if got, want := r.Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("Workers() with 0 = %d, want GOMAXPROCS %d", got, want)
	}
	if err := r.SetWorkers(3); err != nil {
		t.Fatal(err)
	}
	if got := r.Workers(); got != 3 {
		t.Errorf("Workers() = %d, want 3", got)
	}
}

// TestPartitionProperties checks the partitioner invariants on the
// bench-like star: every endpoint appears exactly once, parts are in index
// order, the part count never exceeds the worker count, and the result is
// a pure function of the topology (two calls agree).
func TestPartitionProperties(t *testing.T) {
	r := starRunner(t, 8)
	if err := r.build(); err != nil {
		t.Fatal(err)
	}
	for workers := 1; workers <= 12; workers++ {
		parts := r.partition(workers)
		if len(parts) > workers {
			t.Fatalf("workers=%d: %d parts", workers, len(parts))
		}
		if again := r.partition(workers); !reflect.DeepEqual(parts, again) {
			t.Fatalf("workers=%d: partition not deterministic:\n%v\n%v", workers, parts, again)
		}
		seen := make(map[int]bool)
		for _, part := range parts {
			if len(part) == 0 {
				t.Fatalf("workers=%d: empty part", workers)
			}
			for j, idx := range part {
				if j > 0 && part[j-1] >= idx {
					t.Fatalf("workers=%d: part %v not in index order", workers, part)
				}
				if seen[idx] {
					t.Fatalf("workers=%d: endpoint %d in two parts", workers, idx)
				}
				seen[idx] = true
			}
		}
		if len(seen) != 9 {
			t.Fatalf("workers=%d: partition covers %d of 9 endpoints", workers, len(seen))
		}
	}
}

// TestPartitionCoLocatesLinkedPairs: with slack in the balance cap, the
// endpoints of a link must land on the same worker so the link needs no
// synchronization. A two-endpoint chain split across two of four workers
// would be the pathological case.
func TestPartitionCoLocatesLinkedPairs(t *testing.T) {
	r := NewRunner()
	var eps []*hub
	for i := 0; i < 8; i++ {
		e := &hub{name: "e" + string(rune('a'+i)), ports: 1}
		eps = append(eps, e)
		r.Add(e)
	}
	for i := 0; i < 8; i += 2 {
		if err := r.Connect(eps[i], 0, eps[i+1], 0, 8); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.build(); err != nil {
		t.Fatal(err)
	}
	parts := r.partition(4)
	owner := make(map[int]int)
	for w, part := range parts {
		for _, idx := range part {
			owner[idx] = w
		}
	}
	for i := 0; i < 8; i += 2 {
		if owner[i] != owner[i+1] {
			t.Errorf("linked pair (%d,%d) split across workers %d/%d (parts %v)", i, i+1, owner[i], owner[i+1], parts)
		}
	}
	if len(parts) != 4 {
		t.Errorf("got %d parts, want 4 (one pair each): %v", len(parts), parts)
	}
}

// buildSweepTopology is a star with real traffic: two sources and a wire
// feeding two sinks plus a cross link, exercising multiple link latencies
// (step = gcd = 8) and an endpoint mix that forces cross-worker rings for
// every worker count > 1.
func buildSweepTopology(t *testing.T, inject bool) (*Runner, *Sink, *Sink) {
	t.Helper()
	r := NewRunner()
	srcA := NewSource("srcA")
	srcB := NewSource("srcB")
	wire := NewWire("wire")
	sinkA := NewSink("sinkA")
	sinkB := NewSink("sinkB")
	for _, e := range []Endpoint{srcA, srcB, wire, sinkA, sinkB} {
		r.Add(e)
	}
	if err := r.Connect(srcA, 0, wire, 0, 8); err != nil {
		t.Fatal(err)
	}
	if err := r.Connect(wire, 1, sinkB, 0, 16); err != nil {
		t.Fatal(err)
	}
	if err := r.Connect(srcB, 0, sinkA, 0, 24); err != nil {
		t.Fatal(err)
	}
	for c := int64(0); c < 48; c++ {
		srcA.EmitAt(c, token.Token{Data: uint64(c) + 100, Valid: true, Last: c%4 == 3})
		srcB.EmitAt(c*2, token.Token{Data: uint64(c) + 500, Valid: true})
	}
	if inject {
		r.SetInjector(&dropOddInjector{mask: 0xff00})
	}
	return r, sinkA, sinkB
}

// TestWorkerSweepEquivalence is the tentpole determinism contract: for
// every worker count (including counts above the endpoint count), with and
// without fault injection, RunParallel must deliver streams bit-identical
// to the sequential scheduler. On a single-core host this still exercises
// the multi-worker ring path — workers make progress via Gosched.
func TestWorkerSweepEquivalence(t *testing.T) {
	for _, inject := range []bool{false, true} {
		ref, refA, refB := buildSweepTopology(t, inject)
		if err := ref.Run(240); err != nil {
			t.Fatal(err)
		}
		if len(refA.Received) == 0 || len(refB.Received) == 0 {
			t.Fatal("reference run delivered no tokens")
		}
		for workers := 1; workers <= 7; workers++ {
			r, sa, sb := buildSweepTopology(t, inject)
			if err := r.SetWorkers(workers); err != nil {
				t.Fatal(err)
			}
			if err := r.RunParallel(240); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(refA.Received, sa.Received) {
				t.Errorf("inject=%v workers=%d: sinkA diverged from sequential", inject, workers)
			}
			if !reflect.DeepEqual(refB.Received, sb.Received) {
				t.Errorf("inject=%v workers=%d: sinkB diverged from sequential", inject, workers)
			}
		}
	}
}

// TestCheckpointMidParallelWorkers is the keystone snapshot property under
// the worker pool: checkpoint between RunParallel batches with forced
// multi-worker scheduling, restore, re-run — state bytes must match the
// uninterrupted run exactly. This is what requires runParallel to drain
// its rings back into the persistent channel queues.
func TestCheckpointMidParallelWorkers(t *testing.T) {
	const n, m = 64, 128
	save := func(r *Runner, a, z *pulse) []byte {
		var buf bytes.Buffer
		w, err := snapshot.NewWriter(&buf, snapshot.Header{Cycle: uint64(r.Cycle()), Step: uint64(r.Step())})
		if err != nil {
			t.Fatal(err)
		}
		w.Section("state")
		for _, s := range []snapshot.Snapshotter{r, a, z} {
			if err := s.Save(w); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	r1, a1, z1 := pulsePair()
	if err := r1.SetWorkers(2); err != nil {
		t.Fatal(err)
	}
	if err := r1.RunParallel(n); err != nil {
		t.Fatal(err)
	}
	ck := save(r1, a1, z1)
	if err := r1.RunParallel(m); err != nil {
		t.Fatal(err)
	}
	want := save(r1, a1, z1)

	for _, workers := range []int{1, 2, 3} {
		r2, a2, z2 := pulsePair()
		if err := r2.SetWorkers(workers); err != nil {
			t.Fatal(err)
		}
		rd, _, err := snapshot.NewReader(bytes.NewReader(ck))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rd.Next(); err != nil {
			t.Fatal(err)
		}
		for _, s := range []snapshot.Snapshotter{r2, a2, z2} {
			if err := s.Restore(rd); err != nil {
				t.Fatal(err)
			}
		}
		if err := r2.RunParallel(m); err != nil {
			t.Fatal(err)
		}
		if got := save(r2, a2, z2); !bytes.Equal(got, want) {
			t.Errorf("workers=%d: restored parallel run diverged from original", workers)
		}
	}
}

// TestMultiWorkerMetricsEquivalence forces the cross-worker ring path and
// holds it to the same fame_* contract the default path satisfies: exact
// round/cycle/token counters, one tick observation per sampled round per
// endpoint, and zero pool drops (the counted-error seeding satellite).
func TestMultiWorkerMetricsEquivalence(t *testing.T) {
	const latency = clock.Cycles(8)
	const cycles = clock.Cycles(8 * 50)

	seqReg := obs.NewRegistry("seq")
	seq, _ := buildObsTopology(t, latency, 20)
	seq.EnableMetrics(seqReg)
	if err := seq.Run(cycles); err != nil {
		t.Fatal(err)
	}
	ss := seqReg.Snapshot()

	for _, workers := range []int{2, 3} {
		parReg := obs.NewRegistry("par")
		par, _ := buildObsTopology(t, latency, 20)
		par.EnableMetrics(parReg)
		if err := par.SetWorkers(workers); err != nil {
			t.Fatal(err)
		}
		if err := par.RunParallel(cycles); err != nil {
			t.Fatal(err)
		}
		ps := parReg.Snapshot()
		if got, want := ps.Counters["fame_rounds_total"], uint64(cycles/latency); got != want {
			t.Errorf("workers=%d: fame_rounds_total = %d, want %d", workers, got, want)
		}
		if got := ps.Counters["fame_cycles_total"]; got != uint64(cycles) {
			t.Errorf("workers=%d: fame_cycles_total = %d, want %d", workers, got, cycles)
		}
		if got := ps.Gauges["fame_cycle"]; got != int64(cycles) {
			t.Errorf("workers=%d: fame_cycle = %d, want %d", workers, got, cycles)
		}
		if got := ps.Counters["fame_pool_drops_total"]; got != 0 {
			t.Errorf("workers=%d: fame_pool_drops_total = %d, want 0", workers, got)
		}
		if st, pt := ss.Counters["fame_tokens_total"], ps.Counters["fame_tokens_total"]; st != pt {
			t.Errorf("workers=%d: fame_tokens_total = %d, want %d", workers, pt, st)
		}
		wantTicks := sampledRounds(uint64(cycles / latency))
		for _, ep := range []string{"src", "wire", "sink"} {
			name := obs.Label("fame_tick_nanos", "endpoint", ep)
			if got := ps.Histograms[name].Count; got != wantTicks {
				t.Errorf("workers=%d: %s count = %d, want %d", workers, name, got, wantTicks)
			}
			tname := obs.Label("fame_endpoint_tokens_total", "endpoint", ep)
			if ss.Counters[tname] != ps.Counters[tname] {
				t.Errorf("workers=%d: %s diverged: seq=%d par=%d", workers, tname, ss.Counters[tname], ps.Counters[tname])
			}
		}
	}
}

// TestRandomTopologyWorkerEquivalence reuses the property-test generator
// idea at a smaller scale: random stars, random worker counts, streams
// must match the sequential scheduler bit for bit.
func TestRandomTopologyWorkerEquivalence(t *testing.T) {
	for leaves := 2; leaves <= 5; leaves++ {
		build := func() (*Runner, []*Sink) {
			r := NewRunner()
			w := NewWire("w")
			r.Add(w)
			src := NewSource("src")
			r.Add(src)
			if err := r.Connect(src, 0, w, 0, 8); err != nil {
				t.Fatal(err)
			}
			var sinks []*Sink
			s := NewSink("s0")
			r.Add(s)
			sinks = append(sinks, s)
			if err := r.Connect(w, 1, s, 0, 8); err != nil {
				t.Fatal(err)
			}
			for i := 1; i < leaves; i++ {
				extra := NewSource("x" + string(rune('0'+i)))
				es := NewSink("xs" + string(rune('0'+i)))
				r.Add(extra)
				r.Add(es)
				if err := r.Connect(extra, 0, es, 0, clock.Cycles(8*i)); err != nil {
					t.Fatal(err)
				}
				extra.EmitPacketAt(int64(i)*3, []uint64{uint64(i), uint64(i) * 7})
				sinks = append(sinks, es)
			}
			src.EmitPacketAt(1, []uint64{1, 2, 3})
			src.EmitPacketAt(33, []uint64{4})
			return r, sinks
		}
		ref, refSinks := build()
		if err := ref.Run(24 * 8); err != nil {
			t.Fatal(err)
		}
		for workers := 2; workers <= 4; workers++ {
			r, sinks := build()
			if err := r.SetWorkers(workers); err != nil {
				t.Fatal(err)
			}
			if err := r.RunParallel(24 * 8); err != nil {
				t.Fatal(err)
			}
			for i := range sinks {
				if !reflect.DeepEqual(refSinks[i].Received, sinks[i].Received) {
					t.Errorf("leaves=%d workers=%d sink %d diverged", leaves, workers, i)
				}
			}
		}
	}
}
