package fame

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/snapshot"
	"repro/internal/token"
)

// relay is a stateful two-port forwarder with an optional time bomb: at
// target cycle panicAt its TickBatch panics, standing in for a buggy
// device model. Save/Restore make it checkpoint-rewindable so the tests
// can prove a contained panic costs a rewind, not the runner.
type relay struct {
	name    string
	cycle   int64
	hash    uint64
	panicAt int64 // absolute target cycle to panic at; <0 = disarmed
}

func (r *relay) Name() string  { return r.name }
func (r *relay) NumPorts() int { return 2 }

func (r *relay) TickBatch(n int, in, out []*token.Batch) {
	if r.panicAt >= 0 && r.cycle <= r.panicAt && r.panicAt < r.cycle+int64(n) {
		panic(fmt.Sprintf("deliberate fault at cycle %d", r.panicAt))
	}
	for p := 0; p < 2; p++ {
		for _, s := range in[p].Slots {
			r.hash = r.hash*1099511628211 ^ uint64(r.cycle+int64(s.Offset)) ^ s.Tok.Data ^ uint64(p)<<56
			out[1-p].Put(int(s.Offset), s.Tok)
		}
	}
	r.cycle += int64(n)
}

func (r *relay) Save(w *snapshot.Writer) error {
	w.Begin("test.relay", 1)
	w.I64(r.cycle)
	w.U64(r.hash)
	return w.Err()
}

func (r *relay) Restore(rd *snapshot.Reader) error {
	if err := rd.Begin("test.relay", 1); err != nil {
		return err
	}
	r.cycle = rd.I64()
	r.hash = rd.U64()
	return rd.Err()
}

// faultChain builds a — r1 — r2 — z with latency-8 links. The weights
// (1,2,2,1) split into exactly two balanced groups under two workers,
// with the r1—r2 link crossing workers, so the parallel test exercises
// the abort path through cross-worker rings.
func faultChain() (*Runner, *pulse, *relay, *relay, *pulse) {
	r := NewRunner()
	a := &pulse{name: "a", period: 3}
	r1 := &relay{name: "r1", panicAt: -1}
	r2 := &relay{name: "r2", panicAt: -1}
	z := &pulse{name: "z", period: 5}
	for _, e := range []Endpoint{a, r1, r2, z} {
		r.Add(e)
	}
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	must(r.Connect(a, 0, r1, 0, 8))
	must(r.Connect(r1, 1, r2, 0, 8))
	must(r.Connect(r2, 1, z, 0, 8))
	return r, a, r1, r2, z
}

func saveChainState(t *testing.T, r *Runner, comps ...snapshot.Snapshotter) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := snapshot.NewWriter(&buf, snapshot.Header{Cycle: uint64(r.Cycle()), Step: uint64(r.Step())})
	if err != nil {
		t.Fatal(err)
	}
	w.Section("state")
	if err := r.Save(w); err != nil {
		t.Fatal(err)
	}
	for _, c := range comps {
		if err := c.Save(w); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func restoreChainState(t *testing.T, stream []byte, r *Runner, comps ...snapshot.Snapshotter) {
	t.Helper()
	rd, _, err := snapshot.NewReader(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); err != nil {
		t.Fatal(err)
	}
	if err := r.Restore(rd); err != nil {
		t.Fatal(err)
	}
	for _, c := range comps {
		if err := c.Restore(rd); err != nil {
			t.Fatal(err)
		}
	}
}

// testPanicContainment is the satellite's core property, shared by the
// sequential and parallel schedulers: a deliberately panicking endpoint
// surfaces as a structured EndpointPanicError naming the endpoint and
// cycle window, the runner refuses further runs and saves while
// poisoned, and restoring the pre-panic checkpoint then re-running (with
// the fault disarmed) lands bit-identical to an undisturbed run.
func testPanicContainment(t *testing.T, parallel, mux bool) {
	run := func(r *Runner, cycles clock.Cycles) error {
		if parallel {
			return r.RunParallel(cycles)
		}
		return r.Run(cycles)
	}

	// Undisturbed reference.
	ref, aR, r1R, r2R, zR := faultChain()
	ref.SetWorkers(2)
	ref.SetMultiplexed(mux)
	if err := run(ref, 64); err != nil {
		t.Fatal(err)
	}
	want := saveChainState(t, ref, aR, r1R, r2R, zR)

	// Faulty run: checkpoint at 32, arm r2 to blow up at cycle 40.
	r, a, r1, r2, z := faultChain()
	r.SetWorkers(2)
	r.SetMultiplexed(mux)
	if err := run(r, 32); err != nil {
		t.Fatal(err)
	}
	ck := saveChainState(t, r, a, r1, r2, z)
	r2.panicAt = 40

	err := run(r, 32)
	var pe *EndpointPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("armed run returned %v, want *EndpointPanicError", err)
	}
	if pe.Endpoint != "r2" {
		t.Errorf("panic attributed to %q, want \"r2\"", pe.Endpoint)
	}
	if pe.Cycle < 32 || pe.Cycle >= 64 {
		t.Errorf("panic cycle window %d outside the armed run [32, 64)", pe.Cycle)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "TickBatch") {
		t.Error("panic error carries no usable stack")
	}
	// The sequential loop advances cycle per completed round (so it may
	// read the panic window's start); the parallel loop only advances at
	// the end (so it stays at 32). Neither may claim cycles past the
	// panic window as simulated.
	if got := r.Cycle(); got < 32 || got > pe.Cycle {
		t.Errorf("cycle = %d after torn run, want within [32, %d]", got, pe.Cycle)
	}

	// Poisoned: running and saving must both refuse.
	if err := run(r, 32); !errors.Is(err, ErrPoisoned) {
		t.Errorf("run on poisoned runner returned %v, want ErrPoisoned", err)
	}
	var buf bytes.Buffer
	w, _ := snapshot.NewWriter(&buf, snapshot.Header{})
	w.Section("state")
	if err := r.Save(w); !errors.Is(err, ErrPoisoned) {
		t.Errorf("Save on poisoned runner returned %v, want ErrPoisoned", err)
	}

	// Rewind, disarm, replay: must match the undisturbed reference bit
	// for bit.
	restoreChainState(t, ck, r, a, r1, r2, z)
	r2.panicAt = -1
	if err := run(r, 32); err != nil {
		t.Fatalf("run after restore: %v", err)
	}
	got := saveChainState(t, r, a, r1, r2, z)
	if !bytes.Equal(got, want) {
		t.Error("recovered run diverged from undisturbed run (state bytes differ)")
	}
}

func TestSequentialPanicContainment(t *testing.T) { testPanicContainment(t, false, false) }
func TestParallelPanicContainment(t *testing.T)   { testPanicContainment(t, true, false) }

// disjointPairs is a 4-endpoint topology made of two independent pairs —
// the shape of one shard process hosting two re-packed partition units.
func disjointPairs() (*Runner, map[string]*pulse) {
	r := NewRunner()
	ps := map[string]*pulse{}
	mk := func(name string, period int64) *pulse {
		p := &pulse{name: name, period: period}
		ps[name] = p
		r.Add(p)
		return p
	}
	a, b, c, d := mk("a", 3), mk("b", 5), mk("c", 7), mk("d", 11)
	if err := r.Connect(a, 0, b, 0, 8); err != nil {
		panic(err)
	}
	if err := r.Connect(c, 0, d, 0, 8); err != nil {
		panic(err)
	}
	return r, ps
}

// TestChannelUnitRoundTrip drives the name-keyed per-unit checkpoint
// APIs the partition layer uses: each unit (a,b) and (c,d) is saved to
// its own stream, restored into a fresh runner unit by unit, time is
// jumped with SetCycle, and the continuation must match an undisturbed
// run exactly.
func TestChannelUnitRoundTrip(t *testing.T) {
	unitAB := func(n string) bool { return n == "a" || n == "b" }
	unitCD := func(n string) bool { return n == "c" || n == "d" }

	saveUnit := func(r *Runner, ps map[string]*pulse, include func(string) bool, names ...string) []byte {
		var buf bytes.Buffer
		w, err := snapshot.NewWriter(&buf, snapshot.Header{Cycle: uint64(r.Cycle()), Step: uint64(r.Step())})
		if err != nil {
			t.Fatal(err)
		}
		w.Section("unit")
		if err := r.SaveChannels(w, include); err != nil {
			t.Fatal(err)
		}
		for _, n := range names {
			if err := ps[n].Save(w); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	r1, ps1 := disjointPairs()
	if err := r1.Run(32); err != nil {
		t.Fatal(err)
	}
	abStream := saveUnit(r1, ps1, unitAB, "a", "b")
	cdStream := saveUnit(r1, ps1, unitCD, "c", "d")
	if err := r1.Run(32); err != nil {
		t.Fatal(err)
	}

	r2, ps2 := disjointPairs()
	restoreUnit := func(stream []byte, include func(string) bool, names ...string) {
		rd, _, err := snapshot.NewReader(bytes.NewReader(stream))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rd.Next(); err != nil {
			t.Fatal(err)
		}
		if err := r2.RestoreChannels(rd, include); err != nil {
			t.Fatal(err)
		}
		for _, n := range names {
			if err := ps2[n].Restore(rd); err != nil {
				t.Fatal(err)
			}
		}
	}
	restoreUnit(abStream, unitAB, "a", "b")
	restoreUnit(cdStream, unitCD, "c", "d")
	if err := r2.SetCycle(32); err != nil {
		t.Fatal(err)
	}
	if err := r2.Run(32); err != nil {
		t.Fatal(err)
	}
	for n := range ps1 {
		if ps1[n].hash != ps2[n].hash {
			t.Errorf("endpoint %q: hash %#x after unit restore, want %#x", n, ps2[n].hash, ps1[n].hash)
		}
	}

	// Restoring a unit stream under a narrower include must fail loudly,
	// not partially apply.
	rd, _, err := snapshot.NewReader(bytes.NewReader(abStream))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); err != nil {
		t.Fatal(err)
	}
	r3, _ := disjointPairs()
	if err := r3.RestoreChannels(rd, func(n string) bool { return n == "a" }); err == nil {
		t.Error("RestoreChannels with mismatched include succeeded")
	}

	// SetCycle off the step grid is an error.
	if err := r2.SetCycle(33); err == nil {
		t.Error("SetCycle(33) with step 8 succeeded")
	}
}
