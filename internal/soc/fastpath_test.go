package soc

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"testing"

	"repro/internal/blockdev"
	"repro/internal/clock"
	"repro/internal/ethernet"
	"repro/internal/fame"
	"repro/internal/faults"
	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/riscv"
	"repro/internal/snapshot"
	"repro/internal/switchmodel"
	"repro/internal/token"
)

// The tests in this file pin down the fast-path contract from the issue:
// with the predecode cache, fetch memo and quiescent skip forced off vs
// on, runs must produce bit-identical checkpoint streams — under the
// sequential and parallel schedulers, with fault injection, and across a
// mid-run checkpoint/restore that crosses fast-path settings.

func setFastPaths(s *SoC, on bool) {
	s.SetQuiescentSkip(on)
	s.SetFetchMemo(on)
	s.SetDecodeCache(on)
}

// rack is a directly-wired fame topology of SoC blades behind one switch
// (manager clusters deploy softstack nodes, not blades, so the acceptance
// test builds its own).
type rack struct {
	r    *fame.Runner
	socs []*SoC
	tor  *switchmodel.Switch
}

// saveRack checkpoints runner, blades and switch into one stream, in a
// fixed order so streams from different runs are byte-comparable.
func saveRack(t *testing.T, rk *rack) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := snapshot.NewWriter(&buf, snapshot.Header{Cycle: uint64(rk.r.Cycle())})
	if err != nil {
		t.Fatal(err)
	}
	w.Section("runner")
	if err := rk.r.Save(w); err != nil {
		t.Fatal(err)
	}
	for _, s := range rk.socs {
		w.Section("node/" + s.Name())
		if err := s.Save(w); err != nil {
			t.Fatal(err)
		}
	}
	w.Section("switch/" + rk.tor.Name())
	if err := rk.tor.Save(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// restoreRack loads a saveRack stream into a freshly built rack.
func restoreRack(t *testing.T, rk *rack, data []byte) {
	t.Helper()
	r, _, err := snapshot.NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]*SoC, len(rk.socs))
	for _, s := range rk.socs {
		byName["node/"+s.Name()] = s
	}
	for {
		name, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case name == "runner":
			err = rk.r.Restore(r)
		case name == "switch/"+rk.tor.Name():
			err = rk.tor.Restore(r)
		case byName[name] != nil:
			err = byName[name].Restore(r)
		default:
			t.Fatalf("checkpoint section %q has no home", name)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

func hash64(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// delaySendProgram burns roughly 3*delay cycles in a countdown loop, then
// pushes one staged frame through the NIC and powers off.
func delaySendProgram(frameLen int, delay int32) *riscv.Asm {
	a := riscv.NewAsm()
	a.LI(riscv.S0, delay)
	a.Label("delay")
	a.ADDI(riscv.S0, riscv.S0, -1)
	a.BNE(riscv.S0, riscv.Zero, "delay")
	a.LI64(riscv.T0, NICBase)
	a.LI64(riscv.T1, (DRAMBase+0x2000)|uint64(frameLen)<<48)
	a.SD(riscv.T1, riscv.T0, nic.RegSendReq)
	a.Label("poll")
	a.LD(riscv.T2, riscv.T0, nic.RegCounts)
	a.SRLI(riscv.T2, riscv.T2, 16)
	a.ANDI(riscv.T2, riscv.T2, 0xff)
	a.BEQ(riscv.T2, riscv.Zero, "poll")
	a.LD(riscv.Zero, riscv.T0, nic.RegSendComp)
	powerOff(a)
	return a
}

// wfiRecvProgram posts one receive buffer, unmasks the receive-completion
// interrupt and sleeps in WFI instead of busy-polling — the idle shape the
// quiescent skip is built for. On wake it records the frame length at
// DRAMBase+0x3000 and powers off.
func wfiRecvProgram() *riscv.Asm {
	a := riscv.NewAsm()
	a.LI64(riscv.T0, NICBase)
	a.LI64(riscv.T1, DRAMBase+0x4000)
	a.SD(riscv.T1, riscv.T0, nic.RegRecvReq)
	a.LI(riscv.T1, nic.IntrRecv)
	a.SD(riscv.T1, riscv.T0, nic.RegIntrMask)
	a.Label("wait")
	a.WFI()
	a.LD(riscv.T2, riscv.T0, nic.RegCounts)
	a.SRLI(riscv.T2, riscv.T2, 24)
	a.ANDI(riscv.T2, riscv.T2, 0xff)
	a.BEQ(riscv.T2, riscv.Zero, "wait")
	a.LD(riscv.A0, riscv.T0, nic.RegRecvComp)
	a.LI64(riscv.T3, DRAMBase+0x3000)
	a.SD(riscv.A0, riscv.T3, 0)
	powerOff(a)
	return a
}

// wfiRecvLoopProgram is the forever variant: re-post a buffer, WFI until a
// frame lands, count it in S1, repeat. Never halts; used by the cluster
// test where fault injection may drop any given frame.
func wfiRecvLoopProgram() *riscv.Asm {
	a := riscv.NewAsm()
	a.LI64(riscv.T0, NICBase)
	a.LI(riscv.T1, nic.IntrRecv)
	a.SD(riscv.T1, riscv.T0, nic.RegIntrMask)
	a.LI(riscv.S1, 0)
	a.Label("loop")
	a.LI64(riscv.T1, DRAMBase+0x4000)
	a.SD(riscv.T1, riscv.T0, nic.RegRecvReq)
	a.Label("wait")
	a.WFI()
	a.LD(riscv.T2, riscv.T0, nic.RegCounts)
	a.SRLI(riscv.T2, riscv.T2, 24)
	a.ANDI(riscv.T2, riscv.T2, 0xff)
	a.BEQ(riscv.T2, riscv.Zero, "wait")
	a.LD(riscv.A0, riscv.T0, nic.RegRecvComp)
	a.ADDI(riscv.S1, riscv.S1, 1)
	a.J("loop")
	return a
}

const fpLinkLat = 640

// buildPair wires a delayed sender and a WFI receiver through a 2-port
// switch.
func buildPair(t *testing.T, fast bool) *rack {
	t.Helper()
	const macA, macB = ethernet.MAC(0x0200_0000_0001), ethernet.MAC(0x0200_0000_0002)
	frame := &ethernet.Frame{Dst: macB, Src: macA, Type: ethernet.TypeIPv4, Payload: []byte("wfi wakeup payload")}
	buf, err := frame.Encode()
	if err != nil {
		t.Fatal(err)
	}
	sender := mustSoC(t, Config{Name: "A", Cores: 1, MAC: macA}, delaySendProgram(len(buf), 20_000))
	sender.DRAM().WriteBytes(0x2000, buf)
	receiver := mustSoC(t, Config{Name: "B", Cores: 1, MAC: macB}, wfiRecvProgram())
	tor := switchmodel.New(switchmodel.Config{Name: "tor", Ports: 2})
	tor.MACTable().Set(macA, 0)
	tor.MACTable().Set(macB, 1)
	r := fame.NewRunner()
	r.Add(sender)
	r.Add(receiver)
	r.Add(tor)
	if err := r.Connect(sender, 0, tor, 0, fpLinkLat); err != nil {
		t.Fatal(err)
	}
	if err := r.Connect(receiver, 0, tor, 1, fpLinkLat); err != nil {
		t.Fatal(err)
	}
	for _, s := range []*SoC{sender, receiver} {
		setFastPaths(s, fast)
	}
	return &rack{r: r, socs: []*SoC{sender, receiver}, tor: tor}
}

// TestWFIReceiverSkipEquivalence runs the WFI-heavy two-node exchange with
// fast paths on and off on a fixed batch schedule, comparing the complete
// checkpoint stream at a mid-run boundary (taken while the fast run is
// inside its skip window) and at the end, and then restores the fast run's
// mid-run checkpoint into a slow-path rack and checks it converges to the
// same final state.
func TestWFIReceiverSkipEquivalence(t *testing.T) {
	const (
		chunk    = fpLinkLat * 4
		midChunk = 10
		nChunks  = 48
	)
	type runOut struct {
		mid, final []byte
		rk         *rack
	}
	run := func(fast bool) runOut {
		rk := buildPair(t, fast)
		var out runOut
		for i := 0; i < nChunks; i++ {
			if err := rk.r.Run(chunk); err != nil {
				t.Fatal(err)
			}
			if i == midChunk-1 {
				out.mid = saveRack(t, rk)
				if fast && rk.socs[1].SkippedCycles() == 0 {
					t.Error("fast run reached the mid-run checkpoint without ever skipping")
				}
			}
		}
		out.final = saveRack(t, rk)
		out.rk = rk
		return out
	}

	fastRun, slowRun := run(true), run(false)
	for _, s := range fastRun.rk.socs {
		if !s.Halted() {
			t.Fatalf("node %s did not finish", s.Name())
		}
	}
	if !bytes.Equal(fastRun.mid, slowRun.mid) {
		t.Errorf("mid-run checkpoints diverge: fast %#x slow %#x", hash64(fastRun.mid), hash64(slowRun.mid))
	}
	if !bytes.Equal(fastRun.final, slowRun.final) {
		t.Errorf("final checkpoints diverge: fast %#x slow %#x", hash64(fastRun.final), hash64(slowRun.final))
	}
	if got, want := fastRun.rk.socs[1].Console(), slowRun.rk.socs[1].Console(); got != want {
		t.Errorf("console diverged: %q vs %q", got, want)
	}
	if skipped := fastRun.rk.socs[1].SkippedCycles(); skipped == 0 {
		t.Error("receiver never took the quiescent skip")
	}
	if slowRun.rk.socs[1].SkippedCycles() != 0 {
		t.Error("slow run skipped cycles with the fast path disabled")
	}

	// Cross-setting restore: a checkpoint taken mid-skip-window by the fast
	// run must land bit-exactly in a rack running the per-cycle path.
	resumed := buildPair(t, false)
	restoreRack(t, resumed, fastRun.mid)
	for i := midChunk; i < nChunks; i++ {
		if err := resumed.r.Run(chunk); err != nil {
			t.Fatal(err)
		}
	}
	if got := saveRack(t, resumed); !bytes.Equal(got, slowRun.final) {
		t.Errorf("restored run diverged: %#x, want %#x", hash64(got), hash64(slowRun.final))
	}
}

// stormProgram hammers the block device: eight 1-sector reads, each
// awaited in WFI with the completion interrupt enabled — a constant
// stream of wakeups interleaved with DMA, so the skip guard must keep
// declining without ever changing behaviour.
func stormProgram() *riscv.Asm {
	a := riscv.NewAsm()
	a.LI64(riscv.T0, BlockDevBase)
	a.LI(riscv.T1, 1)
	a.SD(riscv.T1, riscv.T0, blockdev.RegIntrEn)
	a.LI(riscv.S0, 0)
	a.Label("loop")
	a.LI64(riscv.T1, DRAMBase+0x2000)
	a.SD(riscv.T1, riscv.T0, blockdev.RegAddr)
	a.ADDI(riscv.T1, riscv.S0, 1)
	a.SD(riscv.T1, riscv.T0, blockdev.RegSector)
	a.LI(riscv.T1, 1)
	a.SD(riscv.T1, riscv.T0, blockdev.RegNSectors)
	a.SD(riscv.Zero, riscv.T0, blockdev.RegWrite)
	a.LD(riscv.A0, riscv.T0, blockdev.RegAlloc)
	a.Label("wait")
	a.WFI()
	a.LD(riscv.T2, riscv.T0, blockdev.RegNComplete)
	a.BEQ(riscv.T2, riscv.Zero, "wait")
	a.LD(riscv.A1, riscv.T0, blockdev.RegComplete)
	a.ADDI(riscv.S0, riscv.S0, 1)
	a.LI(riscv.T3, 8)
	a.BLT(riscv.S0, riscv.T3, "loop")
	powerOff(a)
	return a
}

// socState serialises one standalone blade for byte comparison.
func socState(t *testing.T, s *SoC) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := snapshot.NewWriter(&buf, snapshot.Header{})
	if err != nil {
		t.Fatal(err)
	}
	w.Section("soc")
	if err := s.Save(w); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestInterruptStormEquivalence drives an interrupt-per-iteration workload
// with fast paths on and off: the skip guard sees a pending interrupt or a
// busy DMA tracker nearly every window, and whatever it decides the final
// state must be bit-identical.
func TestInterruptStormEquivalence(t *testing.T) {
	run := func(fast bool) *SoC {
		s := mustSoC(t, Config{Name: "n", Cores: 1, MAC: 1}, stormProgram())
		for i := 0; i < 8; i++ {
			s.BlockDev().WriteSector(uint64(i+1), []byte(fmt.Sprintf("sector-%d", i+1)))
		}
		setFastPaths(s, fast)
		tickUntilHalted(t, s, 10_000_000)
		return s
	}
	on, off := run(true), run(false)
	if got := on.Core(0).X[riscv.S0]; got != 8 {
		t.Fatalf("storm loop completed %d iterations, want 8", got)
	}
	if a, b := socState(t, on), socState(t, off); !bytes.Equal(a, b) {
		t.Errorf("interrupt-storm state diverges: fast %#x slow %#x", hash64(a), hash64(b))
	}
	if on.Core(0).Stats() != off.Core(0).Stats() {
		t.Errorf("stats diverge: %+v vs %+v", on.Core(0).Stats(), off.Core(0).Stats())
	}
}

// TestNodeMetricsPublish checks the node_* instruments: exact instruction
// and skipped-cycle counters (published as deltas per TickBatch) for a
// blade that computes, sleeps in WFI, and powers off.
func TestNodeMetricsPublish(t *testing.T) {
	a := riscv.NewAsm()
	a.LI(riscv.T0, 100)
	a.Label("loop")
	a.ADDI(riscv.T0, riscv.T0, -1)
	a.BNE(riscv.T0, riscv.Zero, "loop")
	powerOff(a)
	s := mustSoC(t, Config{Name: "n0", Cores: 1, MAC: 1}, a)
	reg := obs.NewRegistry("test")
	s.EnableMetrics(reg)
	tickUntilHalted(t, s, 1_000_000)
	// Keep ticking the halted blade: the quiescent skip covers it and the
	// skipped counter must follow.
	in := []*token.Batch{token.NewBatch(256)}
	out := []*token.Batch{token.NewBatch(256)}
	for i := 0; i < 4; i++ {
		out[0].Reset(256)
		s.TickBatch(256, in, out)
	}
	instrs := reg.Counter(obs.Label("node_instrs_total", "node", "n0")).Value()
	skipped := reg.Counter(obs.Label("node_skipped_cycles_total", "node", "n0")).Value()
	if instrs != s.InstretTotal() {
		t.Errorf("node_instrs_total = %d, want %d", instrs, s.InstretTotal())
	}
	if skipped != s.SkippedCycles() || skipped < 4*256 {
		t.Errorf("node_skipped_cycles_total = %d, want %d (>= %d)", skipped, s.SkippedCycles(), 4*256)
	}
}

// buildRack8 wires the acceptance-test topology: four delayed senders and
// four WFI receivers behind one 8-port ToR, with a deterministic fault
// plan injected at every endpoint and stalls on the switch.
func buildRack8(t *testing.T, fast bool, horizon int) *rack {
	t.Helper()
	mac := func(i int) ethernet.MAC { return ethernet.MAC(0x0200_0000_0010 + uint64(i)) }
	tor := switchmodel.New(switchmodel.Config{Name: "tor", Ports: 8})
	r := fame.NewRunner()
	var socs []*SoC
	for pair := 0; pair < 4; pair++ {
		src, dst := mac(2*pair), mac(2*pair+1)
		frame := &ethernet.Frame{Dst: dst, Src: src, Type: ethernet.TypeIPv4,
			Payload: []byte(fmt.Sprintf("pair-%d traffic", pair))}
		buf, err := frame.Encode()
		if err != nil {
			t.Fatal(err)
		}
		sender := mustSoC(t, Config{Name: fmt.Sprintf("s%d", pair), Cores: 1, MAC: src},
			delaySendProgram(len(buf), int32(1500*(pair+1))))
		sender.DRAM().WriteBytes(0x2000, buf)
		receiver := mustSoC(t, Config{Name: fmt.Sprintf("r%d", pair), Cores: 1, MAC: dst}, wfiRecvLoopProgram())
		tor.MACTable().Set(src, 2*pair)
		tor.MACTable().Set(dst, 2*pair+1)
		socs = append(socs, sender, receiver)
	}
	r.Add(socs[0]) // Add in a fixed order so endpoint indices match across builds.
	for _, s := range socs[1:] {
		r.Add(s)
	}
	r.Add(tor)
	for i, s := range socs {
		if err := r.Connect(s, 0, tor, i, fpLinkLat); err != nil {
			t.Fatal(err)
		}
		setFastPaths(s, fast)
	}

	targets := []faults.Target{{Name: "tor", Ports: 8, Kind: faults.SwitchTarget}}
	for _, s := range socs {
		targets = append(targets, faults.Target{Name: s.Name(), Ports: 1, Kind: faults.NodeTarget})
	}
	plan, err := faults.Generate(faults.Config{
		Scenario:   "fastpath-acceptance",
		Seed:       42,
		Horizon:    clock.Cycles(horizon),
		LinkFlap:   faults.Burst{MeanEvery: 20_000, MeanDuration: 3_000},
		PacketDrop: faults.Burst{MeanEvery: 15_000, MeanDuration: 2_000},
		Corrupt:    faults.Burst{MeanEvery: 30_000, MeanDuration: 1_500},
		PortStall:  faults.Burst{MeanEvery: 25_000, MeanDuration: 2_000},
		NodeFreeze: faults.Burst{MeanEvery: 60_000, MeanDuration: 5_000},
	}, targets)
	if err != nil {
		t.Fatal(err)
	}
	r.SetInjector(plan)
	if fn := plan.StallFunc("tor"); fn != nil {
		tor.SetStall(fn)
	}
	return &rack{r: r, socs: socs, tor: tor}
}

// TestClusterFaultedFastPathEquivalence is the issue's acceptance check:
// an 8-node cluster under fault injection must produce bit-identical
// checkpoint streams with fast paths on vs off, under the sequential and
// parallel schedulers, and across a mid-run checkpoint restored into a
// rack with the opposite fast-path setting and scheduler.
func TestClusterFaultedFastPathEquivalence(t *testing.T) {
	const (
		chunk    = fpLinkLat * 4
		nChunks  = 32
		midChunk = 16
		horizon  = chunk * nChunks
	)
	type variant struct {
		name     string
		fast     bool
		parallel bool
	}
	variants := []variant{
		{"fast-seq", true, false},
		{"fast-par", true, true},
		{"slow-seq", false, false},
		{"slow-par", false, true},
	}
	finals := make(map[string][]byte)
	var fastMid []byte
	var fastSkipped uint64
	for _, v := range variants {
		rk := buildRack8(t, v.fast, horizon)
		if v.parallel {
			if err := rk.r.SetWorkers(4); err != nil {
				t.Fatal(err)
			}
		}
		step := func() error {
			if v.parallel {
				return rk.r.RunParallel(chunk)
			}
			return rk.r.Run(chunk)
		}
		for i := 0; i < nChunks; i++ {
			if err := step(); err != nil {
				t.Fatal(err)
			}
			if i == midChunk-1 && v.name == "fast-seq" {
				fastMid = saveRack(t, rk)
			}
		}
		finals[v.name] = saveRack(t, rk)
		if v.name == "fast-seq" {
			for _, s := range rk.socs {
				fastSkipped += s.SkippedCycles()
			}
		}
	}
	want := finals["slow-seq"]
	for _, v := range variants {
		if !bytes.Equal(finals[v.name], want) {
			t.Errorf("%s final state %#x != slow-seq %#x", v.name, hash64(finals[v.name]), hash64(want))
		}
	}
	if fastSkipped == 0 {
		t.Error("no blade ever took the quiescent skip in the fast cluster run")
	}

	// Mid-run checkpoint from the fast sequential run, restored into a
	// slow parallel rack: the remaining half must converge to the same
	// final state.
	resumed := buildRack8(t, false, horizon)
	if err := resumed.r.SetWorkers(4); err != nil {
		t.Fatal(err)
	}
	restoreRack(t, resumed, fastMid)
	for i := midChunk; i < nChunks; i++ {
		if err := resumed.r.RunParallel(chunk); err != nil {
			t.Fatal(err)
		}
	}
	if got := saveRack(t, resumed); !bytes.Equal(got, want) {
		t.Errorf("restored cluster diverged: %#x, want %#x", hash64(got), hash64(want))
	}
}

// denseThenSendProgram is the partial-idle shape: hart 0 burns a dense ALU
// loop (the superblock dispatcher's bread and butter), pushes one staged
// frame through the NIC and parks in WFI; every other hart parks in WFI
// immediately. While hart 0 computes, the blade has exactly one runnable
// hart — the compute window must keep dispatching it while the parked
// harts are skipped arithmetically.
func denseThenSendProgram(frameLen int, delay int32) *riscv.Asm {
	a := riscv.NewAsm()
	a.CSRRS(riscv.T0, riscv.CSRMHartID, riscv.Zero)
	a.BNE(riscv.T0, riscv.Zero, "park")
	a.LI(riscv.S0, delay)
	a.Label("delay")
	a.ADD(riscv.A1, riscv.A1, riscv.S0)
	a.XORI(riscv.A2, riscv.A2, 0x3c)
	a.SLLI(riscv.A3, riscv.A1, 7)
	a.ADDI(riscv.S0, riscv.S0, -1)
	a.BNE(riscv.S0, riscv.Zero, "delay")
	a.LI64(riscv.T0, NICBase)
	a.LI64(riscv.T1, (DRAMBase+0x2000)|uint64(frameLen)<<48)
	a.SD(riscv.T1, riscv.T0, nic.RegSendReq)
	a.Label("poll")
	a.LD(riscv.T2, riscv.T0, nic.RegCounts)
	a.SRLI(riscv.T2, riscv.T2, 16)
	a.ANDI(riscv.T2, riscv.T2, 0xff)
	a.BEQ(riscv.T2, riscv.Zero, "poll")
	a.LD(riscv.Zero, riscv.T0, nic.RegSendComp)
	a.Label("park")
	a.WFI()
	a.J("park")
	return a
}

// buildPartialIdlePair wires a two-hart sender (hart 0 dense, hart 1
// parked in WFI) to a single-hart WFI receiver. fast additionally enables
// the superblock dispatcher on top of the PR5 fast paths.
func buildPartialIdlePair(t *testing.T, fast bool) *rack {
	t.Helper()
	const macA, macB = ethernet.MAC(0x0200_0000_0003), ethernet.MAC(0x0200_0000_0004)
	frame := &ethernet.Frame{Dst: macB, Src: macA, Type: ethernet.TypeIPv4, Payload: []byte("partial idle payload")}
	buf, err := frame.Encode()
	if err != nil {
		t.Fatal(err)
	}
	sender := mustSoC(t, Config{Name: "A", Cores: 2, MAC: macA}, denseThenSendProgram(len(buf), 12_000))
	sender.DRAM().WriteBytes(0x2000, buf)
	receiver := mustSoC(t, Config{Name: "B", Cores: 1, MAC: macB}, wfiRecvProgram())
	tor := switchmodel.New(switchmodel.Config{Name: "tor", Ports: 2})
	tor.MACTable().Set(macA, 0)
	tor.MACTable().Set(macB, 1)
	r := fame.NewRunner()
	r.Add(sender)
	r.Add(receiver)
	r.Add(tor)
	if err := r.Connect(sender, 0, tor, 0, fpLinkLat); err != nil {
		t.Fatal(err)
	}
	if err := r.Connect(receiver, 0, tor, 1, fpLinkLat); err != nil {
		t.Fatal(err)
	}
	for _, s := range []*SoC{sender, receiver} {
		setFastPaths(s, fast)
		s.SetSuperblocks(fast)
	}
	return &rack{r: r, socs: []*SoC{sender, receiver}, tor: tor}
}

// TestPartialIdleSkipEquivalence is the superblock PR's keystone: a blade
// with one dense hart and one WFI hart must take compute windows (parked
// hart skipped arithmetically, dense hart through block dispatch) and
// stay bit-identical to per-cycle ticking — under both schedulers, at a
// mid-window checkpoint taken while the partial idle is active, and
// across restores that cross both the fast-path setting and the
// scheduler.
func TestPartialIdleSkipEquivalence(t *testing.T) {
	const (
		chunk    = fpLinkLat * 4
		midChunk = 6
		nChunks  = 40
	)
	type variant struct {
		name     string
		fast     bool
		parallel bool
	}
	variants := []variant{
		{"fast-seq", true, false},
		{"fast-par", true, true},
		{"slow-seq", false, false},
		{"slow-par", false, true},
	}
	finals := make(map[string][]byte)
	mids := make(map[string][]byte)
	racks := make(map[string]*rack)
	for _, v := range variants {
		rk := buildPartialIdlePair(t, v.fast)
		if v.parallel {
			if err := rk.r.SetWorkers(2); err != nil {
				t.Fatal(err)
			}
		}
		step := func() error {
			if v.parallel {
				return rk.r.RunParallel(chunk)
			}
			return rk.r.Run(chunk)
		}
		for i := 0; i < nChunks; i++ {
			if err := step(); err != nil {
				t.Fatal(err)
			}
			if i == midChunk-1 {
				mids[v.name] = saveRack(t, rk)
				if v.fast {
					// The checkpoint must land inside the partial-idle phase:
					// hart 0 still dense, hart 1 already parked and skipped.
					if rk.socs[0].PartialIdleCycles() == 0 {
						t.Errorf("%s: no partial-idle cycles by the mid checkpoint", v.name)
					}
					if rk.socs[0].SuperblockInstret() == 0 {
						t.Errorf("%s: no superblock dispatch by the mid checkpoint", v.name)
					}
				}
			}
		}
		finals[v.name] = saveRack(t, rk)
		racks[v.name] = rk
	}
	for _, v := range variants[1:] {
		if !bytes.Equal(mids[v.name], mids["fast-seq"]) {
			t.Errorf("%s mid checkpoint %#x != fast-seq %#x", v.name, hash64(mids[v.name]), hash64(mids["fast-seq"]))
		}
		if !bytes.Equal(finals[v.name], finals["fast-seq"]) {
			t.Errorf("%s final state %#x != fast-seq %#x", v.name, hash64(finals[v.name]), hash64(finals["fast-seq"]))
		}
	}
	if !racks["fast-seq"].socs[1].Halted() {
		t.Fatal("receiver never completed the exchange")
	}
	for _, name := range []string{"slow-seq", "slow-par"} {
		rk := racks[name]
		if rk.socs[0].PartialIdleCycles() != 0 || rk.socs[0].SuperblockInstret() != 0 {
			t.Errorf("%s: slow run used fast-path machinery (partIdle=%d sbInstret=%d)",
				name, rk.socs[0].PartialIdleCycles(), rk.socs[0].SuperblockInstret())
		}
	}

	// Cross restores: the fast sequential run's mid-partial-idle checkpoint
	// into a slow parallel rack, and the slow sequential run's into a fast
	// parallel rack — both halves must converge to the shared final state.
	for _, cross := range []struct {
		from string
		fast bool
	}{
		{"fast-seq", false},
		{"slow-seq", true},
	} {
		resumed := buildPartialIdlePair(t, cross.fast)
		if err := resumed.r.SetWorkers(2); err != nil {
			t.Fatal(err)
		}
		restoreRack(t, resumed, mids[cross.from])
		for i := midChunk; i < nChunks; i++ {
			if err := resumed.r.RunParallel(chunk); err != nil {
				t.Fatal(err)
			}
		}
		if got := saveRack(t, resumed); !bytes.Equal(got, finals["fast-seq"]) {
			t.Errorf("restore %s into fast=%v rack diverged: %#x, want %#x",
				cross.from, cross.fast, hash64(got), hash64(finals["fast-seq"]))
		}
	}
}
