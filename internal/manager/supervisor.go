package manager

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/clock"
	"repro/internal/fame"
	"repro/internal/stats"
	"repro/internal/transport"
)

// This file adds the distributed-run supervisor. A scale-out simulation
// spans several Runner instances joined by transport bridges; any of the
// peer hosts can die mid-run. Without supervision the surviving partition
// would block forever waiting for tokens that will never arrive. The
// supervisor drives the local runner in slices and polls the bridges
// between slices: when a bridge reports a permanent transport error it is
// degraded (its token stream goes silent), the remote partition's nodes
// are marked down, and the local partition keeps simulating to the
// horizon so partial results survive the failure.
//
// This relies on the hardened bridge: deadline-based reads guarantee a
// dead peer surfaces as a bridge error instead of a hung TickBatch, so
// the supervisor always regains control between slices.

// NodeStatus is one server's health in a supervisor report.
type NodeStatus struct {
	// Name is the server (or peer partition) name.
	Name string
	// Up is false once the component's partition is unreachable.
	Up bool
	// LastCycle is the last target cycle the component is known to have
	// simulated: the horizon for local nodes, the last confirmed token
	// batch for nodes behind a dead bridge.
	LastCycle clock.Cycles
	// Err is the transport error that took the partition down, if any.
	Err error
}

// Report summarises a supervised run.
type Report struct {
	// Cycle is the local partition's final target cycle.
	Cycle clock.Cycles
	// Partial is true when at least one peer partition died and the
	// results therefore cover only the surviving nodes.
	Partial bool
	// Nodes lists per-node status, local nodes first, sorted by name.
	Nodes []NodeStatus
}

// String renders the report as a table.
func (r *Report) String() string {
	t := stats.NewTable("Node", "Status", "LastCycle", "Error")
	for _, n := range r.Nodes {
		status := "up"
		if !n.Up {
			status = "DOWN"
		}
		errText := ""
		if n.Err != nil {
			errText = n.Err.Error()
		}
		t.AddRow(n.Name, status, n.LastCycle, errText)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "run to cycle %d (partial=%v)\n", r.Cycle, r.Partial)
	b.WriteString(t.String())
	return b.String()
}

// watchedPeer is one remote partition reached through a bridge.
type watchedPeer struct {
	name  string
	br    *transport.Bridge
	nodes []string
	down  bool
	at    clock.Cycles // local cycle when the failure was detected
	err   error
}

// Supervisor drives a local Runner while watching the transport bridges
// that connect it to remote partitions.
type Supervisor struct {
	runner *fame.Runner
	local  []string
	peers  []*watchedPeer
	// CheckEvery is how many target cycles run between bridge health
	// checks (rounded to whole runner steps; default 4 steps).
	CheckEvery clock.Cycles

	metrics *supervisorMetrics
}

// NewSupervisor wraps a runner with no nodes registered yet.
func NewSupervisor(r *fame.Runner) *Supervisor {
	return &Supervisor{runner: r}
}

// Supervise returns a supervisor for the cluster's runner with every
// local server pre-registered.
func (c *Cluster) Supervise() *Supervisor {
	s := NewSupervisor(c.Runner)
	for _, n := range c.Servers {
		s.AddLocal(n.Name())
	}
	return s
}

// AddLocal registers servers simulated by the local runner.
func (s *Supervisor) AddLocal(names ...string) {
	s.local = append(s.local, names...)
}

// Watch registers a bridge to a remote partition and the names of the
// nodes simulated behind it, so a failure can be attributed in the
// report. The bridge should be configured with a read timeout (and
// usually a redial policy): the supervisor can only degrade a peer whose
// death surfaces as a bridge error.
func (s *Supervisor) Watch(peerName string, br *transport.Bridge, remoteNodes ...string) {
	s.peers = append(s.peers, &watchedPeer{name: peerName, br: br, nodes: remoteNodes})
	if m := s.metrics; m != nil {
		br.EnableMetrics(m.reg)
		for _, name := range remoteNodes {
			m.trackNode(name)
		}
		m.watched.Set(int64(len(s.peers)))
	}
}

// checkPeers degrades any bridge with a permanent error. It reports
// whether all peers are still up.
func (s *Supervisor) checkPeers() bool {
	if m := s.metrics; m != nil {
		m.checks.Inc()
	}
	allUp := true
	for _, p := range s.peers {
		if p.down {
			allUp = false
			continue
		}
		if err := p.br.Err(); err != nil {
			p.down = true
			p.at = s.runner.Cycle()
			p.err = err
			p.br.Degrade()
			allUp = false
		}
	}
	return allUp
}

// RunTo advances the local partition to the given target cycle (rounded
// down to whole runner steps), degrading dead peers along the way rather
// than hanging on them. It returns a per-node report; a peer failure is
// reported in it, not as an error — only a local runner failure aborts
// the run.
func (s *Supervisor) RunTo(horizon clock.Cycles) (*Report, error) {
	step := s.runner.Step()
	if step <= 0 {
		return nil, fmt.Errorf("manager: supervisor: runner has no connected links")
	}
	slice := s.CheckEvery
	if slice < step {
		slice = 4 * step
	}
	slice -= slice % step
	horizon -= horizon % step

	for s.runner.Cycle() < horizon {
		n := slice
		if rem := horizon - s.runner.Cycle(); rem < n {
			n = rem
		}
		if err := s.runner.Run(n); err != nil {
			return nil, err
		}
		s.checkPeers()
		if s.metrics != nil {
			s.metrics.slices.Inc()
			s.publishMetrics()
		}
	}
	s.checkPeers()
	if s.metrics != nil {
		s.publishMetrics()
	}
	return s.report(), nil
}

func (s *Supervisor) report() *Report {
	r := &Report{Cycle: s.runner.Cycle()}
	for _, name := range s.local {
		r.Nodes = append(r.Nodes, NodeStatus{Name: name, Up: true, LastCycle: r.Cycle})
	}
	sort.Slice(r.Nodes, func(i, j int) bool { return r.Nodes[i].Name < r.Nodes[j].Name })
	for _, p := range s.peers {
		if p.down {
			r.Partial = true
		}
		// The peer's nodes advanced at least to the last batch the bridge
		// confirmed before the failure.
		confirmed := clock.Cycles(p.br.Received()) * clock.Cycles(p.br.Step())
		status := make([]NodeStatus, 0, len(p.nodes))
		for _, name := range p.nodes {
			ns := NodeStatus{Name: name, Up: !p.down, LastCycle: r.Cycle}
			if p.down {
				ns.LastCycle = confirmed
				ns.Err = p.err
			}
			status = append(status, ns)
		}
		sort.Slice(status, func(i, j int) bool { return status[i].Name < status[j].Name })
		r.Nodes = append(r.Nodes, status...)
	}
	return r
}
