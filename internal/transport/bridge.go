package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/token"
)

// This file hardens the distributed token transport. The original Bridge
// blocked forever on a dead peer and latched the first error with no
// recovery, so one flaky connection could wedge an entire scale-out run.
// The hardened Bridge adds, in layers:
//
//   - a connect-time handshake validating protocol version, batch step
//     size and (optionally) a topology hash, so mismatched halves fail
//     fast with a descriptive error instead of desynchronising;
//   - a monotonically increasing sequence number on every batch frame, so
//     the two sides can resynchronise exactly after a connection drop
//     (duplicates from retransmission are discarded, gaps are detected);
//   - deadline-based reads and writes (when the connection supports
//     deadlines, as net.Conn does), so a hung peer surfaces as an error
//     instead of blocking target time forever;
//   - bounded reconnection with exponential backoff plus a small resend
//     ring of recently sent batches, so a transient drop heals without
//     losing a single token — cycle counts after recovery are identical
//     to an undisturbed run (asserted by tests);
//   - an explicit degraded mode (Degrade) for the supervisor: a bridge
//     whose peer is declared permanently dead stops touching the network
//     and emits empty batches, letting the surviving partition drain and
//     report partial results instead of hanging.

// Protocol constants for the framed bridge stream.
const (
	helloMagic   uint32 = 0x4653_4b54 // "FSKT"
	helloVersion uint16 = 3 // bumped for the v3 run-length frame codec
	helloSize           = 32
)

// ErrDegraded is latched on a bridge that the supervisor has marked
// permanently down; its TickBatch is a no-op from then on.
var ErrDegraded = errors.New("transport: bridge degraded (peer declared dead)")

// ErrClosed is latched on a bridge another goroutine has Closed; any
// in-flight or subsequent TickBatch fails fast instead of blocking.
var ErrClosed = errors.New("transport: bridge closed")

// errNonRetryable wraps handshake failures that reconnecting cannot fix
// (wrong protocol, wrong step, wrong topology).
type errNonRetryable struct{ err error }

func (e errNonRetryable) Error() string { return e.err.Error() }
func (e errNonRetryable) Unwrap() error { return e.err }

// deadlineConn is the optional connection capability used for timeouts.
type deadlineConn interface {
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// BridgeConfig tunes the hardened transport. The zero value reproduces
// the classic behaviour: block indefinitely, no reconnection, handshake
// with step validation only.
type BridgeConfig struct {
	// ReadTimeout bounds each batch read (and the handshake read) when
	// the connection supports deadlines. Zero blocks forever.
	ReadTimeout time.Duration
	// WriteTimeout bounds each batch write likewise.
	WriteTimeout time.Duration
	// TopologyHash, when non-zero on both sides, must match at handshake
	// time: it guards against wiring two halves of different topologies
	// (or different config revisions) together.
	TopologyHash uint64
	// Redial, when non-nil, reopens the connection after a transport
	// error. The bridge then re-handshakes and resynchronises from
	// sequence numbers.
	Redial func() (io.ReadWriter, error)
	// MaxReconnects bounds redial attempts per disconnect (default 0: a
	// transport error is immediately permanent).
	MaxReconnects int
	// BackoffBase is the first reconnect delay, doubling per attempt up
	// to BackoffMax. Defaults: 50ms base, 2s max.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// ResendWindow is how many sent batches are retained for
	// retransmission after a reconnect (default 8). A peer that fell
	// further behind than this cannot be resynchronised.
	ResendWindow int
}

func (c *BridgeConfig) fillDefaults() {
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.ResendWindow <= 0 {
		c.ResendWindow = 8
	}
}

// ringEntry is one retained sent frame, stored fully encoded (sequence
// number included — v3 encodes it as an absolute value for exactly this
// reason): a resync retransmits the original bytes with a plain Write
// instead of re-encoding every retained batch per reconnect, and the
// retransmission is guaranteed byte-identical to the first transmission.
type ringEntry struct {
	seq uint64
	buf []byte
}

// Bridge splices one token stream endpoint of a distributed simulation.
// It forwards everything received on its single local port to the peer
// and emits everything the peer sends. Both sides must advance in
// identical batch steps (validated by the handshake).
//
// A Bridge is driven from a single scheduler goroutine; it is not safe
// for concurrent TickBatch calls. Degrade is intended to be called
// between Run steps (the supervisor's pattern).
type Bridge struct {
	name string
	cfg  BridgeConfig
	conn io.ReadWriter
	w    *bufio.Writer
	r    *bufio.Reader

	// connMu guards the conn pointer only: Close may run concurrently
	// with the scheduler goroutine swapping connections in reconnect.
	connMu sync.Mutex
	// closed flips once on Close; stop is closed alongside so a
	// reconnect backoff sleep aborts immediately instead of waiting out
	// BackoffMax.
	closed atomic.Bool
	stop   chan struct{}

	err      error
	degraded bool

	handshaken bool
	step       int

	nextSend  uint64 // sequence number for the next batch we send
	nextRecv  uint64 // sequence number we expect from the peer next
	resendLow uint64 // first sequence the peer still needs (== nextSend when in sync)
	ring      []ringEntry

	reconnects int // total successful reconnects, for reports
	scratch    token.Batch

	// Wire-level byte accounting, fed by the counting shims installed
	// around the connection in setConn — the totals are what actually
	// crossed the wire (frames, handshakes, duplicates, partial writes),
	// not a recomputation. Atomic because the send side is counted from
	// the writer goroutine. precodec tracks what the same traffic would
	// have cost under the v2 fixed-width codec.
	wireSent    atomic.Uint64
	wireRecv    atomic.Uint64
	sentFlushed uint64 // wireSent already forwarded to the obs counters
	recvFlushed uint64
	precodec    uint64

	// Persistent writer goroutine: one per bridge, started lazily on the
	// first submit and living across exchanges, so the steady-state send
	// path is a channel round-trip instead of a goroutine+channel
	// allocation per exchange. writerMu serialises submits against
	// stopWriter; the buffered channels guarantee a submitted request is
	// always drained and always answered, even across a concurrent Close.
	writerMu   sync.Mutex
	writerUp   bool
	writerCh   chan writeReq
	writerDone chan error

	// Current-frame encode state for the overlapped exchange: sendBuf
	// holds the encoded frame for sendSeq once sendReady; sendSubmitted
	// means the writer goroutine holds an in-flight request for it (set
	// by the eager StartBatch path, collected by the next exchange).
	sendBuf       []byte
	sendSeq       uint64
	sendReady     bool
	sendSubmitted bool
	reqFrames     [][]byte // reusable request scratch

	// metrics, when non-nil, exports the recovery ledger and wire volume
	// to the observability layer (see metrics.go).
	metrics *bridgeMetrics
}

// writeReq is one batched write handed to the persistent writer
// goroutine: the frames are written in order through the buffered writer,
// then flushed as a single network write.
type writeReq struct {
	frames [][]byte
}

// countingWriter and countingReader are the wire-truth shims installed
// between the bufio layer and the connection: every byte that actually
// crosses (including retransmissions, duplicates and torn partial writes)
// is counted, so the byte metrics no longer recompute frame sizes.
type countingWriter struct {
	w io.Writer
	n *atomic.Uint64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(uint64(n))
	return n, err
}

type countingReader struct {
	r io.Reader
	n *atomic.Uint64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(uint64(n))
	return n, err
}

// NewBridge wraps a connection with the default (blocking, non-reconnecting)
// configuration. Each side of the distributed simulation creates one
// Bridge over its end of the connection and Connects it where the remote
// half of the topology would attach.
func NewBridge(name string, conn io.ReadWriter) *Bridge {
	return NewBridgeConfig(name, conn, BridgeConfig{})
}

// NewBridgeConfig wraps a connection with explicit robustness settings.
func NewBridgeConfig(name string, conn io.ReadWriter, cfg BridgeConfig) *Bridge {
	cfg.fillDefaults()
	b := &Bridge{name: name, cfg: cfg, stop: make(chan struct{})}
	b.setConn(conn)
	return b
}

func (b *Bridge) setConn(conn io.ReadWriter) {
	b.connMu.Lock()
	b.conn = conn
	b.connMu.Unlock()
	b.w = bufio.NewWriter(&countingWriter{w: conn, n: &b.wireSent})
	b.r = bufio.NewReader(&countingReader{r: conn, n: &b.wireRecv})
}

// currentConn reads the connection pointer under the lock; callers that
// only need its optional capabilities (Closer, deadlines) use this so
// they never race a concurrent Close/reconnect swap.
func (b *Bridge) currentConn() io.ReadWriter {
	b.connMu.Lock()
	defer b.connMu.Unlock()
	return b.conn
}

// Err reports the first permanent transport error encountered (the
// simulation cannot continue past one; subsequent batches are empty).
// Transient errors healed by reconnection are not reported here.
func (b *Bridge) Err() error { return b.err }

// Degraded reports whether the bridge has been marked permanently down.
func (b *Bridge) Degraded() bool { return b.degraded }

// Reconnects reports how many times the bridge successfully re-established
// its connection.
func (b *Bridge) Reconnects() int { return b.reconnects }

// Sent and Received report how many batches have been exchanged, which
// tells a supervisor the last target cycle the peer confirmed.
func (b *Bridge) Sent() uint64     { return b.nextSend }
func (b *Bridge) Received() uint64 { return b.nextRecv }

// Step reports the negotiated batch step in target cycles (0 before the
// handshake). Received()*Step() is the last target cycle the peer
// confirmed, which a supervisor reports for a dead partition.
func (b *Bridge) Step() int { return b.step }

// WireBytesSent and WireBytesRecv report the exact byte totals that
// crossed the connection in each direction (frames, handshakes and
// retransmissions included), accumulated across reconnects. Safe to read
// after the run completes; the bench uses them without needing a
// registry.
func (b *Bridge) WireBytesSent() uint64 { return b.wireSent.Load() }
func (b *Bridge) WireBytesRecv() uint64 { return b.wireRecv.Load() }

// PrecodecBytes reports what the bridge's sent traffic would have cost
// under the v2 fixed-width codec — the denominator-free baseline for the
// codec's compression ratio.
func (b *Bridge) PrecodecBytes() uint64 { return b.precodec }

// flushWireMetrics forwards the counting shims' deltas to the obs
// counters. Called from the scheduler goroutine after every handshake and
// exchange, so the exported byte totals track the wire truth even under
// duplicate, resync or torn-write traffic.
func (b *Bridge) flushWireMetrics() {
	m := b.metrics
	if m == nil {
		return
	}
	if s := b.wireSent.Load(); s > b.sentFlushed {
		m.bytesSent.Add(s - b.sentFlushed)
		b.sentFlushed = s
	}
	if r := b.wireRecv.Load(); r > b.recvFlushed {
		m.bytesRecv.Add(r - b.recvFlushed)
		b.recvFlushed = r
	}
}

// writerLoop is the persistent writer goroutine's body: write each
// request's frames, flush, reply. On failure it closes the connection so
// a reader blocked on the reply side of the exchange fails within one
// syscall instead of one timeout. It always replies — the done channel is
// buffered, so the reply survives even when the collector arrives after a
// stopWriter — and exits when the request channel closes.
func (b *Bridge) writerLoop(ch chan writeReq, done chan error) {
	for req := range ch {
		var err error
		for _, f := range req.frames {
			if _, err = b.w.Write(f); err != nil {
				break
			}
		}
		if err == nil {
			err = b.w.Flush()
		}
		if err != nil {
			b.closeConn()
		}
		done <- err
	}
}

// submitWrite hands the prepared reqFrames to the writer goroutine,
// starting it lazily, and reports false when the bridge is closed. The
// channel send cannot block: the writer is always idle (its previous
// reply collected) when the scheduler submits, and the buffer absorbs the
// race with a concurrent Close.
func (b *Bridge) submitWrite() bool {
	b.writerMu.Lock()
	defer b.writerMu.Unlock()
	if !b.writerUp {
		if b.closed.Load() {
			return false
		}
		b.writerCh = make(chan writeReq, 1)
		b.writerDone = make(chan error, 1)
		go b.writerLoop(b.writerCh, b.writerDone)
		b.writerUp = true
	}
	b.writerCh <- writeReq{frames: b.reqFrames}
	return true
}

// stopWriter retires the writer goroutine. Safe from any goroutine: an
// in-flight request is still drained (range reads buffered items before
// observing the close) and its reply still delivered, so a concurrent
// exchange never loses its reply.
func (b *Bridge) stopWriter() {
	b.writerMu.Lock()
	if b.writerUp {
		close(b.writerCh)
		b.writerUp = false
	}
	b.writerMu.Unlock()
}

// encodeFrame encodes the batch for seq into the reusable sendBuf and
// charges the precodec (v2-equivalent) byte accounting.
func (b *Bridge) encodeFrame(seq uint64, in *token.Batch) {
	b.sendBuf = appendFrame(b.sendBuf[:0], seq, in)
	b.sendSeq = seq
	b.sendReady = true
	b.precodec += frameWireBytes(len(in.Slots))
	if m := b.metrics; m != nil {
		m.precodecBytes.Add(frameWireBytes(len(in.Slots)))
	}
}

// Degrade marks the bridge permanently down: TickBatch becomes a no-op
// that emits empty batches (the surviving partition sees silence from the
// dead one, exactly as if those links went dark). The underlying
// connection is closed if it supports Close.
func (b *Bridge) Degrade() {
	b.degraded = true
	if b.err == nil {
		b.err = ErrDegraded
	}
	if m := b.metrics; m != nil {
		m.degraded.Set(1)
	}
	b.closeConn()
	b.stopWriter()
}

// Reset revives a bridge (possibly degraded or errored) onto a fresh
// connection, rewinding both sequence counters to seq. It is the
// supervisor's recovery path: after restoring a dead peer from a
// checkpoint taken at cycle C, both sides resume the token stream at
// batch C/step, so the bridge must forget everything after that point —
// including its resend ring, whose retained batches belong to an
// abandoned timeline. The next TickBatch re-handshakes on the new
// connection.
func (b *Bridge) Reset(conn io.ReadWriter, seq uint64) {
	if conn != b.currentConn() {
		// Keep the connection alive when a fresh bridge is reset onto the
		// conn it was built with (the respawned peer's pattern).
		b.closeConn()
	}
	// Retire the previous writer goroutine before swapping connections.
	// An aborted epoch can leave an eager StartBatch submit uncollected;
	// the closed old connection guarantees the writer replies, so drain
	// that reply here and the request/reply protocol is idle again.
	b.stopWriter()
	if b.sendSubmitted {
		b.closeConn()
		<-b.writerDone
		b.sendSubmitted = false
	}
	b.sendReady = false
	b.setConn(conn)
	if b.closed.CompareAndSwap(true, false) {
		// Revive a Closed bridge: arm a fresh stop channel for the next
		// Close.
		b.stop = make(chan struct{})
	}
	b.err = nil
	b.degraded = false
	b.handshaken = false
	b.step = 0
	b.nextSend = seq
	b.nextRecv = seq
	b.resendLow = seq
	b.ring = nil
	if m := b.metrics; m != nil {
		m.degraded.Set(0)
	}
}

func (b *Bridge) closeConn() {
	if c, ok := b.currentConn().(io.Closer); ok {
		c.Close()
	}
}

// Close aborts the bridge from any goroutine: the underlying connection
// is closed (failing any blocked read or write immediately) and a
// reconnect backoff sleep in progress is interrupted rather than waited
// out. The scheduler goroutine's next TickBatch latches ErrClosed.
// Close is idempotent and safe concurrently with TickBatch — it is the
// coordinator's lever for yanking a shard out of a doomed run without
// waiting for timeouts.
func (b *Bridge) Close() error {
	if b.closed.CompareAndSwap(false, true) {
		close(b.stop)
	}
	b.closeConn()
	b.stopWriter()
	return nil
}

// Name implements fame.Endpoint.
func (b *Bridge) Name() string { return b.name }

// NumPorts implements fame.Endpoint.
func (b *Bridge) NumPorts() int { return 1 }

// fail latches err (wrapped with the bridge name) as permanent.
func (b *Bridge) fail(err error) {
	if b.err == nil {
		b.err = fmt.Errorf("transport: bridge %q: %w", b.name, err)
		if m := b.metrics; m != nil {
			m.errors.Inc()
		}
	}
}

// TickBatch implements fame.Endpoint: ship the local batch and block for
// the peer's batch covering the same target window, handshaking first and
// transparently reconnecting on transient failures. After a permanent
// failure (or Degrade) it is a no-op, so the local runner keeps advancing
// with empty input from the dead partition instead of hanging.
func (b *Bridge) TickBatch(n int, in, out []*token.Batch) {
	if b.err != nil || b.degraded {
		return
	}
	if b.closed.Load() {
		b.fail(ErrClosed)
		return
	}
	if !b.handshaken {
		if err := b.handshake(n); err != nil {
			if !b.retryable(err) || !b.reconnect(n) {
				b.fail(err)
				return
			}
		}
	}
	if n != b.step {
		b.fail(fmt.Errorf("local step changed from %d to %d mid-run", b.step, n))
		return
	}
	for {
		err := b.exchange(n, in[0], out[0])
		if err == nil {
			return
		}
		if !b.retryable(err) || !b.reconnect(n) {
			b.fail(err)
			return
		}
		// Reconnected and resynchronised: retry the same window.
	}
}

func (b *Bridge) retryable(err error) bool {
	var nr errNonRetryable
	return !errors.As(err, &nr)
}

// handshake exchanges and validates hello frames. It also carries each
// side's resume sequence so a reconnect retransmits exactly the batches
// the peer is missing. The hello write runs concurrently with the read so
// the symmetric exchange cannot deadlock on unbuffered connections.
func (b *Bridge) handshake(step int) error {
	var hello [helloSize]byte
	binary.BigEndian.PutUint32(hello[0:4], helloMagic)
	binary.BigEndian.PutUint16(hello[4:6], helloVersion)
	// hello[6:8] flags, reserved.
	binary.BigEndian.PutUint32(hello[8:12], uint32(step))
	binary.BigEndian.PutUint64(hello[16:24], b.cfg.TopologyHash)
	binary.BigEndian.PutUint64(hello[24:32], b.nextRecv)

	b.armWriteDeadline()
	writeDone := make(chan error, 1)
	go func() {
		err := func() error {
			if _, err := b.w.Write(hello[:]); err != nil {
				return err
			}
			return b.w.Flush()
		}()
		if err != nil {
			b.closeConn() // unblock the reader if the peer is silent
		}
		writeDone <- err
	}()

	b.armReadDeadline()
	var peer [helloSize]byte
	_, readErr := io.ReadFull(b.r, peer[:])
	if readErr != nil {
		b.closeConn() // unblock the writer if it is stuck
	}
	writeErr := <-writeDone
	if readErr != nil && writeErr != nil &&
		errors.Is(readErr, io.ErrClosedPipe) && !errors.Is(writeErr, io.ErrClosedPipe) {
		readErr = nil
	}
	if readErr != nil {
		return fmt.Errorf("handshake read: %w", readErr)
	}
	if writeErr != nil {
		return fmt.Errorf("handshake write: %w", writeErr)
	}

	if magic := binary.BigEndian.Uint32(peer[0:4]); magic != helloMagic {
		return errNonRetryable{fmt.Errorf("handshake: bad magic %#x (peer is not a token bridge?)", magic)}
	}
	if v := binary.BigEndian.Uint16(peer[4:6]); v != helloVersion {
		return errNonRetryable{fmt.Errorf("handshake: protocol version %d, local %d", v, helloVersion)}
	}
	if ps := int(binary.BigEndian.Uint32(peer[8:12])); ps != 0 && step != 0 && ps != step {
		return errNonRetryable{fmt.Errorf("handshake: peer batch step %d cycles, local step %d (link latencies must match)", ps, step)}
	}
	if ph := binary.BigEndian.Uint64(peer[16:24]); ph != 0 && b.cfg.TopologyHash != 0 && ph != b.cfg.TopologyHash {
		return errNonRetryable{fmt.Errorf("handshake: topology hash %#x, local %#x (the two halves describe different targets)", ph, b.cfg.TopologyHash)}
	}
	b.precodec += helloSize
	if m := b.metrics; m != nil {
		m.precodecBytes.Add(helloSize)
	}
	b.flushWireMetrics()
	resume := binary.BigEndian.Uint64(peer[24:32])
	// resume may legitimately be nextSend+1: the peer committed our
	// in-flight batch but its acknowledgment (the peer's own batch) was
	// lost with the connection.
	if resume > b.nextSend+1 {
		return errNonRetryable{fmt.Errorf("handshake: peer expects batch %d but only %d were ever sent", resume, b.nextSend)}
	}
	if resume < b.nextSend && !b.ringHas(resume) {
		return errNonRetryable{fmt.Errorf("handshake: peer needs batch %d, which is beyond the %d-batch resend window", resume, b.cfg.ResendWindow)}
	}
	b.resendLow = resume
	b.step = step
	b.handshaken = true
	return nil
}

func (b *Bridge) ringHas(seq uint64) bool {
	if len(b.ring) == 0 {
		return false
	}
	e := b.ring[seq%uint64(len(b.ring))]
	return len(e.buf) > 0 && e.seq == seq
}

// ringPut retains one fully encoded frame for retransmission, reusing the
// slot's buffer capacity so the steady-state commit path is a memcpy.
func (b *Bridge) ringPut(seq uint64, frame []byte) {
	if len(b.ring) == 0 {
		b.ring = make([]ringEntry, b.cfg.ResendWindow)
	}
	e := &b.ring[seq%uint64(len(b.ring))]
	e.buf = append(e.buf[:0], frame...)
	e.seq = seq
}

// StartBatch is the eager half of an overlapped exchange (the
// fame.EagerStarter fast path): it encodes and submits this window's
// frame to the persistent writer as soon as the local batch is ready, so
// every cut-point bridge in a partition has its send in flight before any
// of them blocks on a receive — K cut points cost ~1 round-trip per
// window instead of K serial round-trips. It is a best-effort no-op
// whenever the bridge is not in clean steady state (unhandshaken,
// errored, degraded, closed, resynchronising, or step mismatch); the
// following TickBatch then performs the full synchronous exchange,
// including the first window's handshake.
func (b *Bridge) StartBatch(n int, in []*token.Batch) {
	if b.err != nil || b.degraded || b.closed.Load() || !b.handshaken {
		return
	}
	if n != b.step || b.sendSubmitted || b.resendLow != b.nextSend {
		return
	}
	b.encodeFrame(b.nextSend, in[0])
	b.reqFrames = append(b.reqFrames[:0], b.sendBuf)
	b.armWriteDeadline()
	if b.submitWrite() {
		b.sendSubmitted = true
	}
}

// exchange performs one sequenced batch swap: retransmit anything the peer
// is missing, send the current batch, and read frames until the expected
// sequence number arrives (discarding duplicates). The send runs on the
// persistent writer goroutine concurrently with the read, so the
// symmetric exchange cannot deadlock on unbuffered connections — and when
// StartBatch already put this window's frame in flight, the send cost has
// fully overlapped whatever the scheduler did since.
func (b *Bridge) exchange(n int, in, out *token.Batch) error {
	cur := b.nextSend
	if !b.sendReady || b.sendSeq != cur {
		b.encodeFrame(cur, in)
	}
	if !b.sendSubmitted {
		b.reqFrames = b.reqFrames[:0]
		if b.resendLow < cur {
			if m := b.metrics; m != nil {
				m.resyncs.Inc()
				m.resentFrames.Add(cur - b.resendLow)
			}
			for seq := b.resendLow; seq < cur; seq++ {
				if !b.ringHas(seq) {
					return errNonRetryable{fmt.Errorf("batch %d fell out of the resend window", seq)}
				}
				b.reqFrames = append(b.reqFrames, b.ring[seq%uint64(len(b.ring))].buf)
			}
		}
		if b.resendLow <= cur {
			// Skipped only when the peer already committed our current
			// batch before the connection dropped.
			b.reqFrames = append(b.reqFrames, b.sendBuf)
		}
		b.armWriteDeadline()
		if !b.submitWrite() {
			return ErrClosed
		}
		b.sendSubmitted = true
	}

	b.armReadDeadline()
	var stallStart time.Time
	if b.metrics != nil {
		stallStart = time.Now()
	}
	readErr := b.readExpected(out)
	if readErr != nil {
		b.closeConn() // unblock the writer if it is stuck mid-write
	}
	writeErr := <-b.writerDone
	b.sendSubmitted = false
	b.flushWireMetrics()
	// When both sides fail, one of them closed the connection to unblock
	// the other: a closed-pipe error is then the secondary symptom, not
	// the cause, so report the genuine failure.
	if writeErr != nil && readErr != nil &&
		errors.Is(writeErr, io.ErrClosedPipe) && !errors.Is(readErr, io.ErrClosedPipe) {
		writeErr = nil
	}
	if writeErr != nil {
		return fmt.Errorf("send batch %d: %w", cur, writeErr)
	}
	if readErr != nil {
		return fmt.Errorf("recv batch %d: %w", b.nextRecv, readErr)
	}
	if out.N != n {
		return errNonRetryable{fmt.Errorf("peer batch covers %d cycles, local step is %d", out.N, n)}
	}
	// Committed: the peer has everything up to and including cur, and we
	// consumed its batch for this window.
	b.ringPut(cur, b.sendBuf)
	b.sendReady = false
	b.nextSend = cur + 1
	b.resendLow = b.nextSend
	b.nextRecv++
	if m := b.metrics; m != nil {
		m.batchesSent.Inc()
		m.batchesRecv.Inc()
		m.stallNanos.Observe(uint64(time.Since(stallStart)))
	}
	return nil
}

// readExpected reads frames until one carries the expected sequence
// number. Frames below it are retransmitted duplicates (the peer could not
// know we already had them) and are discarded; a frame above it means
// batches were lost for good.
func (b *Bridge) readExpected(out *token.Batch) error {
	for {
		b.armReadDeadline()
		seq, err := readFrameSeq(b.r)
		if err != nil {
			return err
		}
		switch {
		case seq == b.nextRecv:
			return readBatchV3(b.r, out)
		case seq < b.nextRecv:
			// Duplicate from a resync: decode and discard.
			if err := readBatchV3(b.r, &b.scratch); err != nil {
				return err
			}
			if m := b.metrics; m != nil {
				m.dupFrames.Inc()
			}
		default:
			if m := b.metrics; m != nil {
				m.seqGaps.Inc()
			}
			return errNonRetryable{fmt.Errorf("sequence gap: got batch %d, expected %d", seq, b.nextRecv)}
		}
	}
}

// reconnect tears down the current connection and redials with
// exponential backoff, re-handshaking (which resynchronises sequence
// numbers) on each fresh connection. It reports whether the bridge is
// usable again.
func (b *Bridge) reconnect(step int) bool {
	if b.cfg.Redial == nil || b.cfg.MaxReconnects <= 0 {
		return false
	}
	b.closeConn()
	b.handshaken = false
	backoff := b.cfg.BackoffBase
	for attempt := 1; attempt <= b.cfg.MaxReconnects; attempt++ {
		// The backoff sleep is interruptible: Close from another
		// goroutine aborts it immediately instead of waiting out
		// BackoffMax. The delay itself is jittered ±20% (deterministic
		// per bridge name and attempt) so a respawned fleet of shards
		// does not hammer the coordinator in lockstep.
		t := time.NewTimer(jitterBackoff(b.name, attempt, backoff))
		select {
		case <-t.C:
		case <-b.stop:
			t.Stop()
			return false
		}
		if backoff *= 2; backoff > b.cfg.BackoffMax {
			backoff = b.cfg.BackoffMax
		}
		conn, err := b.cfg.Redial()
		if err != nil {
			continue
		}
		b.setConn(conn)
		if err := b.handshake(step); err != nil {
			if !b.retryable(err) {
				// Reconnecting cannot fix a protocol/topology mismatch;
				// surface the specific reason rather than the original
				// transient error.
				b.fail(err)
				return false
			}
			b.closeConn()
			continue
		}
		b.reconnects++
		if m := b.metrics; m != nil {
			m.reconnects.Inc()
		}
		return true
	}
	return false
}

func (b *Bridge) armReadDeadline() {
	if b.cfg.ReadTimeout <= 0 {
		return
	}
	if dc, ok := b.currentConn().(deadlineConn); ok {
		dc.SetReadDeadline(time.Now().Add(b.cfg.ReadTimeout))
	}
}

func (b *Bridge) armWriteDeadline() {
	if b.cfg.WriteTimeout <= 0 {
		return
	}
	if dc, ok := b.currentConn().(deadlineConn); ok {
		dc.SetWriteDeadline(time.Now().Add(b.cfg.WriteTimeout))
	}
}

// jitterBackoff spreads a nominal backoff delay across [0.8, 1.2) of its
// value, deterministically seeded from the bridge name and attempt
// number: a given bridge always produces the same delay sequence (tests
// and reruns are reproducible), while different bridges — the respawned
// shard fleet — spread out instead of redialing in lockstep.
func jitterBackoff(name string, attempt int, backoff time.Duration) time.Duration {
	h := fnv.New64a()
	h.Write([]byte(name))
	var a [8]byte
	binary.BigEndian.PutUint64(a[:], uint64(attempt))
	h.Write(a[:])
	// Top 53 bits → uniform float in [0, 1).
	u := float64(h.Sum64()>>11) / float64(uint64(1)<<53)
	return time.Duration(float64(backoff) * (0.8 + 0.4*u))
}
