// Package transport implements FireSim's physical token transports
// (Section III-B2).
//
// The paper moves tokens over three transports: PCIe/EDMA between FPGA and
// host, shared memory between processes on one host, and TCP sockets
// between hosts. In this reproduction the fame.Runner's channels play the
// shared-memory role; this package adds:
//
//   - a wire codec for token batches (binary framing), and
//   - Bridge, a fame.Endpoint that splices a simulation across two Runner
//     instances — potentially in different OS processes or machines —
//     over any io.ReadWriter (usually a TCP connection). A Bridge pair
//     behaves as a zero-latency wire: all target latency stays in the
//     explicit links, so splitting a topology across hosts does not change
//     its cycle-level behaviour (asserted by tests).
//
// As in the paper, tokens are batched to one link latency's worth per
// exchange, and "the exchange of these tokens ensures that each server
// simulation computes each target cycle deterministically": a Bridge
// blocks until its peer's batch arrives, which is exactly the decoupled
// synchronisation the token protocol prescribes.
package transport

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/token"
)

// maxSlots bounds decoded batch occupancy as a sanity check against
// corrupt streams.
const maxSlots = 1 << 24

// WriteBatch encodes a batch to w.
func WriteBatch(w io.Writer, b *token.Batch) error {
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(b.N))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(b.Slots)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: write header: %w", err)
	}
	var rec [13]byte
	for _, s := range b.Slots {
		binary.BigEndian.PutUint32(rec[0:4], uint32(s.Offset))
		binary.BigEndian.PutUint64(rec[4:12], s.Tok.Data)
		var flags byte
		if s.Tok.Valid {
			flags |= 1
		}
		if s.Tok.Last {
			flags |= 2
		}
		rec[12] = flags
		if _, err := w.Write(rec[:]); err != nil {
			return fmt.Errorf("transport: write slot: %w", err)
		}
	}
	return nil
}

// ReadBatch decodes a batch from r into dst (which is Reset first).
func ReadBatch(r io.Reader, dst *token.Batch) error {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("transport: read header: %w", err)
	}
	n := int(binary.BigEndian.Uint32(hdr[0:4]))
	count := int(binary.BigEndian.Uint32(hdr[4:8]))
	if n <= 0 || count < 0 || count > maxSlots || count > n {
		return fmt.Errorf("transport: corrupt batch header (n=%d, slots=%d)", n, count)
	}
	dst.Reset(n)
	var rec [13]byte
	prev := -1
	for i := 0; i < count; i++ {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return fmt.Errorf("transport: read slot: %w", err)
		}
		off := int(int32(binary.BigEndian.Uint32(rec[0:4])))
		tok := token.Token{
			Data:  binary.BigEndian.Uint64(rec[4:12]),
			Valid: rec[12]&1 != 0,
			Last:  rec[12]&2 != 0,
		}
		if off < 0 || off >= n {
			return fmt.Errorf("transport: corrupt slot offset %d", off)
		}
		// A well-formed batch stores slots in strictly increasing offset
		// order; a duplicate or out-of-order offset means the stream is
		// corrupt. Rejecting it here (rather than letting Put panic or a
		// later slot shadow an earlier one) keeps corrupt peers from
		// crashing or silently perturbing the simulation.
		if off <= prev {
			return fmt.Errorf("transport: corrupt batch: slot offset %d after %d (duplicate or out of order)", off, prev)
		}
		prev = off
		// WriteBatch only ever emits valid tokens with flag bits 0-1, so
		// anything else is stream corruption.
		if rec[12] > 3 || !tok.Valid {
			return fmt.Errorf("transport: corrupt slot flags %#x at offset %d", rec[12], off)
		}
		dst.Put(off, tok)
	}
	return nil
}

// Bridge, the fame.Endpoint that splices a simulation across hosts over
// this codec, lives in bridge.go.
