// datacenter1024 deploys the paper's Figure 10 target: 1,024 quad-core
// servers (4,096 cores, 16 TB of memory) under 32 ToR switches, 4
// aggregation switches, and one root switch, all on a 2 us / 200 Gbit/s
// network with supernode packing — then measures how fast this host
// simulates it and prints the Section V-C cost arithmetic.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/stats"
)

func main() {
	rounds := flag.Int("rounds", 400, "link-latency batches of target time to simulate")
	parallel := flag.Bool("parallel", false, "measure with the parallel worker-pool scheduler")
	workers := flag.Int("workers", 0, "parallel worker count (0 = GOMAXPROCS)")
	multiplexed := flag.Bool("multiplexed", false, "fuse each worker's endpoints into one scheduling unit (implies -parallel)")
	flag.Parse()
	if *multiplexed {
		*parallel = true
	}

	topo, err := core.Tree([]int{4, 8, 32}, core.QuadCore)
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := core.Deploy(topo, core.DeployConfig{
		Supernode:   true,
		Workers:     *workers,
		Multiplexed: *multiplexed,
	})
	if err != nil {
		log.Fatal(err)
	}

	cores := 4 * len(cluster.Servers)
	memTB := 16 * len(cluster.Servers) / 1024
	fmt.Printf("deployed %d servers (%d cores, %d TB DRAM), %d switches\n\n",
		len(cluster.Servers), cores, memTB, len(cluster.Switches))

	t := stats.NewTable("Host platform", "Value", "Paper")
	t.AddRow("f1.16xlarge instances", cluster.Deployment.Count("f1.16xlarge"), 32)
	t.AddRow("m4.16xlarge instances", cluster.Deployment.Count("m4.16xlarge"), 5)
	t.AddRow("FPGAs harnessed", cluster.Deployment.FPGAs(), 256)
	t.AddRow("FPGA retail value", fmt.Sprintf("$%.1fM", cluster.Deployment.FPGAValueUSD()/1e6), "$12.8M")
	t.AddRow("Spot $/hour", fmt.Sprintf("$%.0f", cluster.Deployment.HourlyCost(true)), "~$100")
	t.AddRow("On-demand $/hour", fmt.Sprintf("$%.0f", cluster.Deployment.HourlyCost(false)), "~$440")
	fmt.Print(t.String())

	fmt.Printf("\nsimulating %d batches of target time...\n", *rounds)
	cycles := cluster.LinkLatency * clock.Cycles(*rounds)
	var rate clock.SimRate
	if *parallel {
		cycles -= cycles % cluster.Runner.Step()
		rate, err = cluster.Runner.Measure(cycles, clock.DefaultTargetClock, true)
	} else {
		rate, err = core.MeasureRate(cluster, cycles)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *parallel {
		fmt.Printf("parallel scheduler: %d effective workers, %d scheduling units (multiplexed=%v)\n",
			cluster.Runner.EffectiveWorkers(), cluster.Runner.SchedUnits(), *multiplexed)
	}
	fmt.Printf("simulation rate on this host: %v\n", rate)
	fmt.Printf("(the paper's EC2 F1 deployment ran this target at 3.42 MHz, <1000x slowdown)\n")
}
