package manager

import (
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/ethernet"
	"repro/internal/fame"
	"repro/internal/obs"
	"repro/internal/softstack"
	"repro/internal/transport"
)

// TestClusterMetricsEndToEnd deploys a small topology with every layer
// instrumented against one registry and checks the layers agree with
// each other after a supervised run: the manager's heartbeat gauge, the
// runner's cycle gauge, and the report must all name the same final
// cycle, and the switch mirror must have seen the ping traffic.
func TestClusterMetricsEndToEnd(t *testing.T) {
	topo := NewSwitchNode("tor0")
	for i := 0; i < 2; i++ {
		topo.AddDownlinks(NewServerNode(fmt.Sprintf("s%d", i), QuadCore))
	}
	c, err := Deploy(topo, DeployConfig{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry("cluster")
	c.EnableMetrics(reg)
	s := c.Supervise()
	s.EnableMetrics(reg)

	c.NodeByName("s0").Ping(0, c.NodeByName("s1").IP(), 3, 40*c.LinkLatency, nil)
	rep, err := s.RunTo(20 * c.LinkLatency)
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	want := int64(rep.Cycle)
	if got := snap.Gauges["manager_local_cycle"]; got != want {
		t.Errorf("manager_local_cycle = %d, want %d", got, want)
	}
	if got := snap.Gauges["fame_cycle"]; got != want {
		t.Errorf("fame_cycle = %d, want %d", got, want)
	}
	for _, name := range []string{"s0", "s1"} {
		if got := snap.Gauges[obs.Label("manager_node_up", "node", name)]; got != 1 {
			t.Errorf("manager_node_up{node=%s} = %d, want 1", name, got)
		}
		if got := snap.Gauges[obs.Label("manager_node_last_cycle", "node", name)]; got != want {
			t.Errorf("manager_node_last_cycle{node=%s} = %d, want %d", name, got, want)
		}
	}
	if got := snap.Counters["manager_slices_total"]; got == 0 {
		t.Error("manager_slices_total = 0 after a supervised run")
	}
	if got := snap.Counters["manager_checks_total"]; got == 0 {
		t.Error("manager_checks_total = 0 after a supervised run")
	}
	if got := snap.Counters[obs.Label("switch_flits_in_total", "switch", "tor0")]; got == 0 {
		t.Error("switch mirror saw no traffic despite an in-flight ping")
	}
	if got := snap.Counters["fame_rounds_total"]; got != uint64(rep.Cycle/c.Runner.Step()) {
		t.Errorf("fame_rounds_total = %d, want %d", got, uint64(rep.Cycle/c.Runner.Step()))
	}
}

// TestSupervisorMetricsDeadPeer reruns the dead-peer scenario with
// metrics on: when the remote host dies, the per-node liveness gauges
// must flip, peers_down must rise, and the dead node's last-cycle gauge
// must freeze at the last confirmed token exchange.
func TestSupervisorMetricsDeadPeer(t *testing.T) {
	const linkLat = 3200
	const horizon = 50 * linkLat
	arp := map[ethernet.IP]ethernet.MAC{0x0a000001: 0x1, 0x0a000002: 0x2}
	c1, c2 := net.Pipe()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		b := softstack.NewNode(softstack.Config{Name: "b", MAC: 0x2, IP: 0x0a000002, StaticARP: arp})
		br := transport.NewBridge("bridge2", c2)
		r := fame.NewRunner()
		r.Add(b)
		r.Add(br)
		if err := r.Connect(b, 0, br, 0, linkLat); err != nil {
			panic(err)
		}
		for i := 0; i < 3; i++ {
			if err := r.Run(linkLat); err != nil {
				panic(err)
			}
		}
		c2.Close()
	}()

	a := softstack.NewNode(softstack.Config{Name: "a", MAC: 0x1, IP: 0x0a000001, StaticARP: arp})
	br := transport.NewBridgeConfig("to-host2", c1, transport.BridgeConfig{
		ReadTimeout:   100 * time.Millisecond,
		WriteTimeout:  100 * time.Millisecond,
		MaxReconnects: 1,
		BackoffBase:   2 * time.Millisecond,
		Redial:        func() (io.ReadWriter, error) { return nil, fmt.Errorf("no route to host") },
	})
	r := fame.NewRunner()
	r.Add(a)
	r.Add(br)
	if err := r.Connect(a, 0, br, 0, linkLat); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry("deadpeer")
	s := NewSupervisor(r)
	s.AddLocal("a")
	s.EnableMetrics(reg)
	s.Watch("host2", br, "b") // after EnableMetrics: Watch must instrument late peers too
	rep, err := s.RunTo(horizon)
	wg.Wait()
	if err != nil {
		t.Fatalf("supervised run failed: %v", err)
	}
	if !rep.Partial {
		t.Fatal("peer death not detected")
	}

	snap := reg.Snapshot()
	if got := snap.Gauges["manager_peers_watched"]; got != 1 {
		t.Errorf("manager_peers_watched = %d, want 1", got)
	}
	if got := snap.Gauges["manager_peers_down"]; got != 1 {
		t.Errorf("manager_peers_down = %d, want 1", got)
	}
	if got := snap.Gauges[obs.Label("manager_node_up", "node", "a")]; got != 1 {
		t.Errorf("local node marked down: manager_node_up{node=a} = %d", got)
	}
	if got := snap.Gauges[obs.Label("manager_node_up", "node", "b")]; got != 0 {
		t.Errorf("dead node still up: manager_node_up{node=b} = %d", got)
	}
	if got := snap.Gauges[obs.Label("manager_node_last_cycle", "node", "b")]; got != 3*linkLat {
		t.Errorf("manager_node_last_cycle{node=b} = %d, want %d", got, 3*linkLat)
	}
	if got := snap.Gauges["manager_local_cycle"]; got != horizon {
		t.Errorf("manager_local_cycle = %d, want %d", got, horizon)
	}
	// Watch() wired the bridge into the same registry.
	if got := snap.Counters[obs.Label("transport_errors_total", "bridge", "to-host2")]; got != 1 {
		t.Errorf("transport_errors_total = %d, want 1", got)
	}
	if got := snap.Gauges[obs.Label("transport_degraded", "bridge", "to-host2")]; got != 1 {
		t.Errorf("transport_degraded = %d, want 1", got)
	}
}
