package experiments

import (
	"fmt"
	"strings"

	"repro/internal/clock"
	"repro/internal/ethernet"
	"repro/internal/fame"
	"repro/internal/pfa"
	"repro/internal/softstack"
	"repro/internal/stats"
	"repro/internal/switchmodel"
)

func init() {
	register("ablation-newq", func(sc Scale) (Result, error) { return AblationNewQ(sc) })
	register("ablation-switchbuf", func(sc Scale) (Result, error) { return AblationSwitchBuf(sc) })
}

// AblationNewQRow is one newQ batch-size point.
type AblationNewQRow struct {
	Batch         int
	RuntimeUs     float64
	MetaRatioVsSW float64
}

// AblationNewQResult sweeps the PFA's newQ pop batch size, the design
// choice behind the paper's 2.5x metadata-time reduction: popping
// descriptors one at a time forfeits the OS cache locality that batching
// buys.
type AblationNewQResult struct {
	SWRuntimeUs float64
	Rows        []AblationNewQRow
}

// Title implements Result.
func (AblationNewQResult) Title() string {
	return "Ablation: PFA newQ batch size (Section VI design choice)"
}

// Render implements Result.
func (r AblationNewQResult) Render() string {
	t := stats.NewTable("newQ batch", "PFA runtime (us)", "SW/PFA metadata ratio")
	for _, row := range r.Rows {
		t.AddRow(row.Batch, row.RuntimeUs, row.MetaRatioVsSW)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "software-paging baseline runtime: %.0f us\n\n", r.SWRuntimeUs)
	b.WriteString(t.String())
	b.WriteString("\nBatching new-page descriptors amortises OS metadata work; the paper's\n" +
		"design pops them in batches and measures ~2.5x less metadata time.\n")
	return b.String()
}

// AblationNewQ runs Genome at 50% local memory across newQ batch sizes.
func AblationNewQ(sc Scale) (AblationNewQResult, error) {
	pages := uint64(2048)
	accesses := 20000
	batches := []int{1, 8, 64, 256}
	if sc.Quick {
		pages = 1024
		accesses = 6000
		batches = []int{1, 64}
	}
	mk := func() pfa.AccessPattern { return pfa.NewGenomePattern(pages, accesses, 11) }

	swRes, err := fig11Run(pfa.SoftwarePaging, int(pages)/2, mk())
	if err != nil {
		return AblationNewQResult{}, err
	}
	out := AblationNewQResult{SWRuntimeUs: float64(swRes.Runtime) / 3200}
	for _, batch := range batches {
		costs := pfa.DefaultPagingCosts(clock.DefaultTargetClock)
		costs.NewQBatch = batch
		if batch == 1 {
			// Per-page pops get no locality benefit: same cost as the
			// software path's metadata management.
			costs.MetaPerPageBatched = costs.MetaPerPage
		}
		res, err := fig11RunWithCosts(pfa.PFAMode, int(pages)/2, mk(), costs)
		if err != nil {
			return AblationNewQResult{}, err
		}
		row := AblationNewQRow{Batch: batch, RuntimeUs: float64(res.Runtime) / 3200}
		if res.MetadataTime > 0 {
			row.MetaRatioVsSW = float64(swRes.MetadataTime) / float64(res.MetadataTime)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// AblationSwitchBufRow is one output-buffer-size point.
type AblationSwitchBufRow struct {
	BufferKiB int
	DropsBuf  uint64
	Delivered uint64
}

// AblationSwitchBufResult sweeps switch output buffering under incast
// congestion (four full-rate senders to one receiver), the buffer-sizing
// design choice of Section III-B1: congestion is modeled by packets not
// being releasable, and drops occur at full-packet granularity when the
// output buffer bound is hit.
type AblationSwitchBufResult struct {
	Rows []AblationSwitchBufRow
}

// Title implements Result.
func (AblationSwitchBufResult) Title() string {
	return "Ablation: switch output buffer under incast (Section III-B1 design choice)"
}

// Render implements Result.
func (r AblationSwitchBufResult) Render() string {
	t := stats.NewTable("Output buffer (KiB)", "Packets delivered", "Buffer drops")
	for _, row := range r.Rows {
		t.AddRow(row.BufferKiB, row.Delivered, row.DropsBuf)
	}
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString("\nSmaller buffers drop whole packets under 4:1 incast; larger buffers absorb\n" +
		"the burst at the cost of queueing delay.\n")
	return b.String()
}

// AblationSwitchBuf runs a 4:1 incast against varying output buffers.
func AblationSwitchBuf(sc Scale) (AblationSwitchBufResult, error) {
	buffers := []int{8, 32, 128, 512}
	if sc.Quick {
		buffers = []int{8, 512}
	}
	var out AblationSwitchBufResult
	for _, kib := range buffers {
		res, err := incastRun(kib << 10)
		if err != nil {
			return AblationSwitchBufResult{}, err
		}
		res.BufferKiB = kib
		out.Rows = append(out.Rows, res)
	}
	return out, nil
}

// incastRun drives four full-rate raw streams at one receiver through a
// switch with the given output buffer bound and reports deliveries and
// drops.
func incastRun(bufBytes int) (AblationSwitchBufRow, error) {
	sw := switchmodel.New(switchmodel.Config{
		Name:              "tor",
		Ports:             5,
		OutputBufferBytes: bufBytes,
	})
	r := fame.NewRunner()
	r.Add(sw)
	nodes := make([]*softstack.Node, 5)
	const linkLat = 6400
	for i := range nodes {
		nodes[i] = softstack.NewNode(softstack.Config{
			Name: fmt.Sprintf("n%d", i),
			MAC:  ethernet.MAC(0x10 + i),
			IP:   ethernet.IP(0x0a000010 + i),
		})
		r.Add(nodes[i])
		sw.MACTable().Set(nodes[i].MAC(), i)
		if err := r.Connect(nodes[i], 0, sw, i, linkLat); err != nil {
			return AblationSwitchBufRow{}, err
		}
	}
	const dur = 1_600_000 // 500 us of 4:1 incast
	for i := 0; i < 4; i++ {
		nodes[i].StartRawStream(0, nodes[4].MAC(), 1504, 200, dur)
	}
	if err := r.Run(dur + 32*linkLat); err != nil {
		return AblationSwitchBufRow{}, err
	}
	return AblationSwitchBufRow{
		Delivered: nodes[4].Stats().FramesRecv,
		DropsBuf:  sw.Stats().DropsBufFull,
	}, nil
}
