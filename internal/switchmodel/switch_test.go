package switchmodel

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/ethernet"
	"repro/internal/fame"
	"repro/internal/token"
)

// mkFrameFlits builds a small frame's flits destined for dst.
func mkFrameFlits(t *testing.T, dst, src ethernet.MAC, payloadLen int) []uint64 {
	t.Helper()
	f := &ethernet.Frame{Dst: dst, Src: src, Type: ethernet.TypeIPv4, Payload: make([]byte, payloadLen)}
	flits, err := f.FrameFlits()
	if err != nil {
		t.Fatal(err)
	}
	return flits
}

// tick runs one TickBatch with the given per-port input batches (nil means
// empty) and returns the output batches.
func tick(sw *Switch, n int, ins map[int]*token.Batch) []*token.Batch {
	in := make([]*token.Batch, sw.NumPorts())
	out := make([]*token.Batch, sw.NumPorts())
	empty := token.NewBatch(n)
	for p := 0; p < sw.NumPorts(); p++ {
		if b, ok := ins[p]; ok {
			in[p] = b
		} else {
			in[p] = empty
		}
		out[p] = token.NewBatch(n)
	}
	sw.TickBatch(n, in, out)
	return out
}

// packetBatch lays the flits of a packet into a batch starting at offset.
func packetBatch(n, offset int, flits []uint64) *token.Batch {
	b := token.NewBatch(n)
	for i, f := range flits {
		b.Put(offset+i, token.Token{Data: f, Valid: true, Last: i == len(flits)-1})
	}
	return b
}

// collectPackets extracts completed packets (as flit slices) with the
// absolute cycle of their last flit from a sequence of output batches.
func collectPackets(batches []*token.Batch, startCycle int64) (pkts [][]uint64, lastCycles []int64) {
	var cur []uint64
	cycle := startCycle
	for _, b := range batches {
		for _, s := range b.Slots {
			cur = append(cur, s.Tok.Data)
			if s.Tok.Last {
				pkts = append(pkts, cur)
				lastCycles = append(lastCycles, cycle+int64(s.Offset))
				cur = nil
			}
		}
		cycle += int64(b.N)
	}
	return pkts, lastCycles
}

func TestUnicastRoutingAndTiming(t *testing.T) {
	sw := New(Config{Name: "tor", Ports: 4, SwitchingLatency: 10})
	dst := ethernet.MAC(0x2222)
	sw.MACTable().Set(dst, 2)
	flits := mkFrameFlits(t, dst, 0x1111, 8) // 16+8=24 bytes = 3 flits

	const n = 64
	out1 := tick(sw, n, map[int]*token.Batch{0: packetBatch(n, 5, flits)})
	// Packet's last flit arrives at cycle 5+len-1 = 7; release = 17.
	// Egress must start exactly at cycle 17 on port 2 and nowhere else.
	for p := 0; p < 4; p++ {
		if p != 2 && !out1[p].IsEmpty() {
			t.Errorf("port %d unexpectedly carried %d tokens", p, out1[p].Occupied())
		}
	}
	got := out1[2].Dense()
	wantStart := 5 + len(flits) - 1 + 10
	for i, f := range flits {
		tok := got[wantStart+i]
		if !tok.Valid || tok.Data != f {
			t.Fatalf("cycle %d: got %v, want flit %#x", wantStart+i, tok, f)
		}
		if (i == len(flits)-1) != tok.Last {
			t.Errorf("cycle %d: Last = %v", wantStart+i, tok.Last)
		}
	}
	if got[wantStart-1].Valid {
		t.Error("packet released before minimum switching latency")
	}
	st := sw.Stats()
	if st.PacketsIn != 1 || st.PacketsOut != 1 || st.FlitsIn != uint64(len(flits)) || st.FlitsOut != uint64(len(flits)) {
		t.Errorf("stats = %+v", st)
	}
}

func TestPacketSpanningBatches(t *testing.T) {
	// A packet whose flits straddle a batch boundary must still assemble.
	sw := New(Config{Name: "tor", Ports: 2, SwitchingLatency: 10})
	dst := ethernet.MAC(0xbeef)
	sw.MACTable().Set(dst, 1)
	flits := mkFrameFlits(t, dst, 0x1, 24) // 5 flits

	const n = 4
	b1 := token.NewBatch(n)
	for i := 0; i < 3; i++ {
		b1.Put(i+1, token.Token{Data: flits[i], Valid: true})
	}
	b2 := token.NewBatch(n)
	b2.Put(0, token.Token{Data: flits[3], Valid: true})
	b2.Put(1, token.Token{Data: flits[4], Valid: true, Last: true})

	var outs []*token.Batch
	outs = append(outs, tick(sw, n, map[int]*token.Batch{0: b1})[1])
	outs = append(outs, tick(sw, n, map[int]*token.Batch{0: b2})[1])
	for i := 0; i < 6; i++ {
		outs = append(outs, tick(sw, n, nil)[1])
	}
	pkts, lasts := collectPackets(outs, 0)
	if len(pkts) != 1 {
		t.Fatalf("got %d packets, want 1", len(pkts))
	}
	if len(pkts[0]) != 5 {
		t.Errorf("reassembled %d flits, want 5", len(pkts[0]))
	}
	// last input flit at absolute cycle 5; release 15; 5 flits -> last out at 19
	if lasts[0] != 19 {
		t.Errorf("last flit egressed at cycle %d, want 19", lasts[0])
	}
}

func TestBroadcastFlood(t *testing.T) {
	sw := New(Config{Name: "tor", Ports: 4})
	flits := mkFrameFlits(t, ethernet.Broadcast, 0x1, 0)
	out := tick(sw, 64, map[int]*token.Batch{1: packetBatch(64, 0, flits)})
	for p := 0; p < 4; p++ {
		want := p != 1 // flooded everywhere except ingress
		if got := !out[p].IsEmpty(); got != want {
			t.Errorf("port %d: carried data = %v, want %v", p, got, want)
		}
	}
	if st := sw.Stats(); st.PacketsOut != 3 {
		t.Errorf("PacketsOut = %d, want 3 (duplicated)", st.PacketsOut)
	}
}

func TestUnknownDestinationFloods(t *testing.T) {
	sw := New(Config{Name: "tor", Ports: 3})
	flits := mkFrameFlits(t, ethernet.MAC(0xdead), 0x1, 0) // not in table
	out := tick(sw, 64, map[int]*token.Batch{0: packetBatch(64, 0, flits)})
	if out[0].Occupied() != 0 || out[1].IsEmpty() || out[2].IsEmpty() {
		t.Error("unknown destination should flood to all non-ingress ports")
	}
}

func TestReflectionDropped(t *testing.T) {
	sw := New(Config{Name: "tor", Ports: 2})
	dst := ethernet.MAC(0x77)
	sw.MACTable().Set(dst, 0) // dst lives on the ingress port
	flits := mkFrameFlits(t, dst, 0x1, 0)
	out := tick(sw, 64, map[int]*token.Batch{0: packetBatch(64, 0, flits)})
	for p := range out {
		if !out[p].IsEmpty() {
			t.Errorf("port %d should be silent", p)
		}
	}
	if st := sw.Stats(); st.DropsUnroutable != 1 {
		t.Errorf("DropsUnroutable = %d, want 1", st.DropsUnroutable)
	}
}

func TestOutputContentionSerialises(t *testing.T) {
	// Two ports send simultaneously to the same destination; the switch
	// must serialise them on the output port with no loss.
	sw := New(Config{Name: "tor", Ports: 3, SwitchingLatency: 10})
	dst := ethernet.MAC(0x3333)
	sw.MACTable().Set(dst, 2)
	f1 := mkFrameFlits(t, dst, 0xa, 16) // 4 flits
	f2 := mkFrameFlits(t, dst, 0xb, 16)

	const n = 64
	outs := []*token.Batch{tick(sw, n, map[int]*token.Batch{
		0: packetBatch(n, 0, f1),
		1: packetBatch(n, 0, f2),
	})[2]}
	pkts, lasts := collectPackets(outs, 0)
	if len(pkts) != 2 {
		t.Fatalf("got %d packets, want 2", len(pkts))
	}
	// First packet: release 3+10=13, 4 flits -> last at 16.
	// Second must follow immediately: flits 17..20, last at 20.
	if lasts[0] != 16 || lasts[1] != 20 {
		t.Errorf("last cycles = %v, want [16 20]", lasts)
	}
	if sw.Stats().DropsBufFull != 0 {
		t.Error("unexpected drops")
	}
}

func TestTieBreakIsDeterministic(t *testing.T) {
	// Identical timestamps must drain in ingress (seq) order every run.
	for trial := 0; trial < 5; trial++ {
		sw := New(Config{Name: "tor", Ports: 3})
		dst := ethernet.MAC(0x1)
		sw.MACTable().Set(dst, 2)
		f1 := mkFrameFlits(t, dst, 0xaaaa, 0)
		f2 := mkFrameFlits(t, dst, 0xbbbb, 0)
		out := tick(sw, 64, map[int]*token.Batch{
			0: packetBatch(64, 0, f1),
			1: packetBatch(64, 0, f2),
		})
		pkts, _ := collectPackets([]*token.Batch{out[2]}, 0)
		if len(pkts) != 2 {
			t.Fatalf("got %d packets", len(pkts))
		}
		fr, err := ethernet.DecodeFlits(pkts[0])
		if err != nil {
			t.Fatal(err)
		}
		if fr.Src != 0xaaaa {
			t.Errorf("trial %d: first packet from %v, want port-0 packet first", trial, fr.Src)
		}
	}
}

func TestBufferOverflowDrops(t *testing.T) {
	// Output buffer sized for one small packet only; the second of two
	// simultaneous packets must be dropped at full-packet granularity.
	sw := New(Config{Name: "tor", Ports: 3, OutputBufferBytes: 24})
	dst := ethernet.MAC(0x1)
	sw.MACTable().Set(dst, 2)
	f1 := mkFrameFlits(t, dst, 0xa, 0) // 16 bytes = 2 flits
	f2 := mkFrameFlits(t, dst, 0xb, 0)
	out := tick(sw, 64, map[int]*token.Batch{
		0: packetBatch(64, 0, f1),
		1: packetBatch(64, 0, f2),
	})
	pkts, _ := collectPackets([]*token.Batch{out[2]}, 0)
	if len(pkts) != 1 {
		t.Fatalf("got %d packets, want 1 (second dropped)", len(pkts))
	}
	if st := sw.Stats(); st.DropsBufFull != 1 {
		t.Errorf("DropsBufFull = %d, want 1", st.DropsBufFull)
	}
}

func TestStaleDrop(t *testing.T) {
	// With MaxReleaseDelay set, a packet stuck behind a long transmission
	// beyond the bound is dropped rather than released.
	sw := New(Config{Name: "tor", Ports: 3, SwitchingLatency: 10, MaxReleaseDelay: 5})
	dst := ethernet.MAC(0x1)
	sw.MACTable().Set(dst, 2)
	big := mkFrameFlits(t, dst, 0xa, 400) // 52 flits: occupies the port a while
	small := mkFrameFlits(t, dst, 0xb, 0)

	const n = 128
	out := tick(sw, n, map[int]*token.Batch{
		0: packetBatch(n, 0, big),    // last flit at 51, release 61, tx 61..112
		1: packetBatch(n, 70, small), // last flit at 71, release 81
	})
	pkts, _ := collectPackets([]*token.Batch{out[2]}, 0)
	// The small packet queues behind the big transmission; by the time the
	// port frees at cycle 113 it is 32 cycles past its release timestamp,
	// beyond MaxReleaseDelay=5, so it must be dropped.
	if len(pkts) != 1 {
		t.Fatalf("got %d packets, want 1", len(pkts))
	}
	if st := sw.Stats(); st.DropsStale != 1 {
		t.Errorf("DropsStale = %d, want 1", st.DropsStale)
	}
}

func TestProbeCountsFlits(t *testing.T) {
	sw := New(Config{Name: "root", Ports: 2})
	dst := ethernet.MAC(0x9)
	sw.MACTable().Set(dst, 1)
	flits := mkFrameFlits(t, dst, 0x2, 8)
	var count int
	sw.SetProbe(func(cycle clock.Cycles, port int) {
		if port != 1 {
			t.Errorf("probe port = %d", port)
		}
		count++
	})
	tick(sw, 64, map[int]*token.Batch{0: packetBatch(64, 0, flits)})
	if count != len(flits) {
		t.Errorf("probe fired %d times, want %d", count, len(flits))
	}
}

// TestEndToEndThroughRunner wires source -> switch -> sink through the fame
// runner and checks the full path delay: send cycle + flits + link latency
// (x2) + switching latency.
func TestEndToEndThroughRunner(t *testing.T) {
	const linkLat = 16
	r := fame.NewRunner()
	src := fame.NewSource("src")
	sink := fame.NewSink("sink")
	sw := New(Config{Name: "tor", Ports: 2, SwitchingLatency: 10})
	dstMAC := ethernet.MAC(0x0200_0000_0002)
	sw.MACTable().Set(dstMAC, 1)

	r.Add(src)
	r.Add(sink)
	r.Add(sw)
	if err := r.Connect(src, 0, sw, 0, linkLat); err != nil {
		t.Fatal(err)
	}
	if err := r.Connect(sw, 1, sink, 0, linkLat); err != nil {
		t.Fatal(err)
	}

	flits := mkFrameFlits(t, dstMAC, 0x0200_0000_0001, 8) // 3 flits
	src.EmitPacketAt(0, flits)
	if err := r.Run(linkLat * 16); err != nil {
		t.Fatal(err)
	}

	// Last flit emitted at cycle 2, reaches switch at 2+16=18, release
	// 18+10=28, flits egress 28..30, arrive at sink 44..46.
	if len(sink.Received) != len(flits) {
		t.Fatalf("sink received %d flits, want %d", len(sink.Received), len(flits))
	}
	if got := sink.Received[0].Cycle; got != 44 {
		t.Errorf("first flit arrived at %d, want 44", got)
	}
	if got := sink.Received[2]; got.Cycle != 46 || !got.Tok.Last {
		t.Errorf("last flit: %+v, want cycle 46 with Last", got)
	}
}

// TestStallHook checks that an installed stall hook suppresses egress for
// exactly its window, delaying (not dropping) traffic, and that stalled
// port-cycles are counted.
func TestStallHook(t *testing.T) {
	sw := New(Config{Name: "tor", Ports: 2, SwitchingLatency: 10})
	dst := ethernet.MAC(0x2222)
	sw.MACTable().Set(dst, 1)
	flits := mkFrameFlits(t, dst, 0x1111, 8)

	// Stall port 1 for cycles [0, 40).
	const stallEnd = 40
	sw.SetStall(func(port int, cycle clock.Cycles) bool {
		return port == 1 && cycle < stallEnd
	})

	const n = 64
	out := tick(sw, n, map[int]*token.Batch{0: packetBatch(n, 5, flits)})
	pkts, last := collectPackets([]*token.Batch{out[1]}, 0)
	if len(pkts) != 1 {
		t.Fatalf("got %d packets through stalled port, want 1", len(pkts))
	}
	// Without the stall the release would start at cycle 17 (arrival 7 +
	// latency 10); the stall holds it to cycle 40, so the last of the 3
	// flits egresses at 42.
	if want := int64(stallEnd + len(flits) - 1); last[0] != want {
		t.Errorf("last flit at cycle %d, want %d", last[0], want)
	}
	if got := sw.Stats().StallCycles; got != stallEnd {
		t.Errorf("StallCycles = %d, want %d", got, stallEnd)
	}
}
