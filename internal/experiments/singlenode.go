package experiments

import (
	"fmt"
	"strings"

	"repro/internal/clock"
	"repro/internal/riscv"
	"repro/internal/soc"
	"repro/internal/stats"
	"repro/internal/token"
)

func init() {
	register("singlenode", func(sc Scale) (Result, error) { return SingleNode(sc) })
}

// Section VIII: "Harnessing FireSim's ability to distribute jobs to many
// parallel single-node simulations, users can run the entire SPECint17
// benchmark suite ... and obtain cycle-exact results in roughly one day."
// This experiment is that workflow in miniature: a suite of bare-metal
// RV64 kernels, each dispatched to its own single-node cycle-exact blade
// simulation, reporting deterministic cycle counts and IPC.

// SingleNodeRow is one kernel's cycle-exact result.
type SingleNodeRow struct {
	Kernel       string
	Instructions uint64
	Cycles       clock.Cycles
	IPC          float64
	// Check is the kernel's self-computed result, validated against a Go
	// reference before reporting.
	Check uint64
}

// SingleNodeResult is the suite report.
type SingleNodeResult struct {
	Rows []SingleNodeRow
}

// Title implements Result.
func (SingleNodeResult) Title() string {
	return "Section VIII: parallel single-node cycle-exact benchmarking"
}

// Render implements Result.
func (r SingleNodeResult) Render() string {
	t := stats.NewTable("Kernel", "Instructions", "Cycles", "IPC", "Result")
	for _, row := range r.Rows {
		t.AddRow(row.Kernel, row.Instructions, int64(row.Cycles), fmt.Sprintf("%.3f", row.IPC), row.Check)
	}
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString("\nEach kernel ran on its own single-node blade simulation (1 Rocket-class\n" +
		"core, Table I caches and DDR3); results are deterministic and cycle-exact.\n")
	return b.String()
}

// suiteBase is where kernels place their data.
const suiteBase = soc.DRAMBase + 0x40000

type kernel struct {
	name  string
	build func(scale int) *riscv.Asm
	// ref computes the expected A0 result.
	ref func(scale int) uint64
}

// SingleNode runs the kernel suite.
func SingleNode(sc Scale) (SingleNodeResult, error) {
	scale := 4
	if sc.Quick {
		scale = 1
	}
	suite := []kernel{
		{"alu-loop", buildALULoop, refALULoop},
		{"sieve", buildSieve, refSieve},
		{"matmul8", buildMatmul, refMatmul},
		{"memstride", buildMemStride, refMemStride},
	}
	var out SingleNodeResult
	for _, k := range suite {
		row, err := runKernel(k, scale)
		if err != nil {
			return SingleNodeResult{}, fmt.Errorf("singlenode %s: %w", k.name, err)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func runKernel(k kernel, scale int) (SingleNodeRow, error) {
	prog, err := k.build(scale).Bytes()
	if err != nil {
		return SingleNodeRow{}, err
	}
	s, err := soc.New(soc.Config{Name: k.name, Cores: 1, MAC: 1}, prog)
	if err != nil {
		return SingleNodeRow{}, err
	}
	const step = 1024
	in := []*token.Batch{token.NewBatch(step)}
	outB := []*token.Batch{token.NewBatch(step)}
	for !s.Halted() && s.Core(0).Cycle < 2_000_000_000 {
		outB[0].Reset(step)
		s.TickBatch(step, in, outB)
	}
	if !s.Halted() {
		return SingleNodeRow{}, fmt.Errorf("did not finish (pc=%#x)", s.Core(0).PC)
	}
	cpu := s.Core(0)
	if want := k.ref(scale); cpu.X[riscv.A0] != want {
		return SingleNodeRow{}, fmt.Errorf("result = %d, want %d", cpu.X[riscv.A0], want)
	}
	st := cpu.Stats()
	row := SingleNodeRow{
		Kernel:       k.name,
		Instructions: st.Instret,
		Cycles:       cpu.Cycle,
		Check:        cpu.X[riscv.A0],
	}
	if cpu.Cycle > 0 {
		row.IPC = float64(st.Instret) / float64(cpu.Cycle)
	}
	return row, nil
}

func powerOff(a *riscv.Asm) {
	a.LI(riscv.T6, int32(soc.PowerOff))
	a.SD(riscv.Zero, riscv.T6, 0)
}

// --- alu-loop: tight integer arithmetic, the IPC ceiling ---

func aluIters(scale int) int { return 50_000 * scale }

func buildALULoop(scale int) *riscv.Asm {
	a := riscv.NewAsm()
	a.LI(riscv.T0, int32(aluIters(scale)))
	a.LI(riscv.A0, 0)
	a.Label("loop")
	a.ADDI(riscv.A0, riscv.A0, 3)
	a.XORI(riscv.A0, riscv.A0, 0x55)
	a.ADDI(riscv.T0, riscv.T0, -1)
	a.BNE(riscv.T0, riscv.Zero, "loop")
	powerOff(a)
	return a
}

func refALULoop(scale int) uint64 {
	v := uint64(0)
	for i := 0; i < aluIters(scale); i++ {
		v = (v + 3) ^ 0x55
	}
	return v
}

// --- sieve: Sieve of Eratosthenes, branch + byte-memory bound ---

func sieveN(scale int) int { return 2048 * scale }

func buildSieve(scale int) *riscv.Asm {
	n := int32(sieveN(scale))
	a := riscv.NewAsm()
	a.LI64(riscv.S0, suiteBase)
	a.LI(riscv.S1, n)
	a.LI(riscv.T0, 2)
	a.Label("outer")
	a.MUL(riscv.T1, riscv.T0, riscv.T0)
	a.BGE(riscv.T1, riscv.S1, "count")
	a.ADD(riscv.T2, riscv.S0, riscv.T0)
	a.LBU(riscv.T3, riscv.T2, 0)
	a.BNE(riscv.T3, riscv.Zero, "nextp")
	a.MV(riscv.T2, riscv.T1)
	a.LI(riscv.T5, 1)
	a.Label("inner")
	a.ADD(riscv.T4, riscv.S0, riscv.T2)
	a.SB(riscv.T5, riscv.T4, 0)
	a.ADD(riscv.T2, riscv.T2, riscv.T0)
	a.BLT(riscv.T2, riscv.S1, "inner")
	a.Label("nextp")
	a.ADDI(riscv.T0, riscv.T0, 1)
	a.J("outer")
	a.Label("count")
	a.LI(riscv.A0, 0)
	a.LI(riscv.T0, 2)
	a.Label("cloop")
	a.ADD(riscv.T2, riscv.S0, riscv.T0)
	a.LBU(riscv.T3, riscv.T2, 0)
	a.BNE(riscv.T3, riscv.Zero, "notprime")
	a.ADDI(riscv.A0, riscv.A0, 1)
	a.Label("notprime")
	a.ADDI(riscv.T0, riscv.T0, 1)
	a.BLT(riscv.T0, riscv.S1, "cloop")
	powerOff(a)
	return a
}

func refSieve(scale int) uint64 {
	n := sieveN(scale)
	composite := make([]bool, n)
	count := uint64(0)
	for p := 2; p < n; p++ {
		if !composite[p] {
			count++
			for m := p * p; m < n; m += p {
				composite[m] = true
			}
		}
	}
	return count
}

// --- matmul8: 8x8 64-bit integer matrix multiply, multiply-heavy ---

func buildMatmul(scale int) *riscv.Asm {
	// A[i][k] = i+k, B[k][j] = k*j+1 are generated in-program; the check
	// value is the sum of all C entries. The multiply repeats `scale`
	// times to lengthen the run.
	a := riscv.NewAsm()
	aBase, bBase, cBase := int64(0), int64(512), int64(1024)
	a.LI64(riscv.S0, suiteBase+0x10000+uint64(aBase))
	a.LI64(riscv.S1, suiteBase+0x10000+uint64(bBase))
	a.LI64(riscv.S2, suiteBase+0x10000+uint64(cBase))
	// init A and B
	a.LI(riscv.T0, 0) // i
	a.Label("initi")
	a.LI(riscv.T1, 0) // j
	a.Label("initj")
	a.SLLI(riscv.T2, riscv.T0, 3)
	a.ADD(riscv.T2, riscv.T2, riscv.T1) // idx = i*8+j
	a.SLLI(riscv.T3, riscv.T2, 3)       // byte offset
	a.ADD(riscv.T4, riscv.T0, riscv.T1) // A = i+j
	a.ADD(riscv.T5, riscv.S0, riscv.T3)
	a.SD(riscv.T4, riscv.T5, 0)
	a.MUL(riscv.T4, riscv.T0, riscv.T1) // B = i*j+1
	a.ADDI(riscv.T4, riscv.T4, 1)
	a.ADD(riscv.T5, riscv.S1, riscv.T3)
	a.SD(riscv.T4, riscv.T5, 0)
	a.ADDI(riscv.T1, riscv.T1, 1)
	a.LI(riscv.T2, 8)
	a.BLT(riscv.T1, riscv.T2, "initj")
	a.ADDI(riscv.T0, riscv.T0, 1)
	a.BLT(riscv.T0, riscv.T2, "initi")

	a.LI(riscv.S3, int32(scale)) // repetitions
	a.Label("repeat")
	a.LI(riscv.T0, 0) // i
	a.Label("mi")
	a.LI(riscv.T1, 0) // j
	a.Label("mj")
	a.LI(riscv.A1, 0) // acc
	a.LI(riscv.T2, 0) // k
	a.Label("mk")
	// acc += A[i*8+k] * B[k*8+j]
	a.SLLI(riscv.T3, riscv.T0, 3)
	a.ADD(riscv.T3, riscv.T3, riscv.T2)
	a.SLLI(riscv.T3, riscv.T3, 3)
	a.ADD(riscv.T3, riscv.S0, riscv.T3)
	a.LD(riscv.T3, riscv.T3, 0)
	a.SLLI(riscv.T4, riscv.T2, 3)
	a.ADD(riscv.T4, riscv.T4, riscv.T1)
	a.SLLI(riscv.T4, riscv.T4, 3)
	a.ADD(riscv.T4, riscv.S1, riscv.T4)
	a.LD(riscv.T4, riscv.T4, 0)
	a.MUL(riscv.T3, riscv.T3, riscv.T4)
	a.ADD(riscv.A1, riscv.A1, riscv.T3)
	a.ADDI(riscv.T2, riscv.T2, 1)
	a.LI(riscv.T5, 8)
	a.BLT(riscv.T2, riscv.T5, "mk")
	// C[i*8+j] = acc
	a.SLLI(riscv.T3, riscv.T0, 3)
	a.ADD(riscv.T3, riscv.T3, riscv.T1)
	a.SLLI(riscv.T3, riscv.T3, 3)
	a.ADD(riscv.T3, riscv.S2, riscv.T3)
	a.SD(riscv.A1, riscv.T3, 0)
	a.ADDI(riscv.T1, riscv.T1, 1)
	a.BLT(riscv.T1, riscv.T5, "mj")
	a.ADDI(riscv.T0, riscv.T0, 1)
	a.BLT(riscv.T0, riscv.T5, "mi")
	a.ADDI(riscv.S3, riscv.S3, -1)
	a.BNE(riscv.S3, riscv.Zero, "repeat")

	// checksum C into A0
	a.LI(riscv.A0, 0)
	a.LI(riscv.T0, 0)
	a.Label("sum")
	a.SLLI(riscv.T1, riscv.T0, 3)
	a.ADD(riscv.T1, riscv.S2, riscv.T1)
	a.LD(riscv.T1, riscv.T1, 0)
	a.ADD(riscv.A0, riscv.A0, riscv.T1)
	a.ADDI(riscv.T0, riscv.T0, 1)
	a.LI(riscv.T2, 64)
	a.BLT(riscv.T0, riscv.T2, "sum")
	powerOff(a)
	return a
}

func refMatmul(scale int) uint64 {
	var A, B, C [8][8]uint64
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			A[i][j] = uint64(i + j)
			B[i][j] = uint64(i*j + 1)
		}
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			var acc uint64
			for k := 0; k < 8; k++ {
				acc += A[i][k] * B[k][j]
			}
			C[i][j] = acc
		}
	}
	var sum uint64
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			sum += C[i][j]
		}
	}
	return sum
}

// --- memstride: 64-byte-stride walk over a large array, DRAM-bound ---

func strideIters(scale int) int { return 4096 * scale }

func buildMemStride(scale int) *riscv.Asm {
	a := riscv.NewAsm()
	a.LI64(riscv.S0, suiteBase+0x80000)
	a.LI(riscv.T0, int32(strideIters(scale)))
	a.LI(riscv.A0, 0)
	a.MV(riscv.T1, riscv.S0)
	a.Label("loop")
	a.LD(riscv.T2, riscv.T1, 0) // cold lines: mostly DRAM fills
	a.ADD(riscv.A0, riscv.A0, riscv.T2)
	a.ADDI(riscv.T1, riscv.T1, 64)
	a.ADDI(riscv.T0, riscv.T0, -1)
	a.BNE(riscv.T0, riscv.Zero, "loop")
	powerOff(a)
	return a
}

func refMemStride(scale int) uint64 {
	return 0 // fresh memory reads zero
}
