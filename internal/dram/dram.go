// Package dram implements the cycle-accurate DRAM timing model that backs
// each simulated server blade.
//
// In FireSim, the target's 16 GiB DDR3 memory is modeled by a synthesizable
// timing model (from MIDAS) in front of the host FPGA's on-board DRAM, with
// parameters that model DDR3. Here the functional storage is host memory
// and the timing model is this package: a bank/row state machine with DDR3
// timing parameters expressed in *target core cycles* (3.2 GHz), an
// open-page row-buffer policy, and a shared data bus that bounds streaming
// bandwidth.
//
// The model is event-timed rather than ticked: Access(now, ...) computes
// the completion cycle of a line transfer given the controller state at
// `now` and advances that state. A blocking in-order core plus a DMA engine
// produce at most a few outstanding requests, which the shared-bus
// serialisation handles; the observable behaviour (row hits vs misses,
// ~12.8 GB/s streaming ceiling) matches a queued FR-FCFS controller for
// these access streams.
package dram

import (
	"encoding/binary"
	"fmt"

	"repro/internal/clock"
)

// Config holds DDR3-style timing parameters in target core cycles.
//
// The defaults model one channel of DDR3-1600 as seen from a 3.2 GHz core:
// the memory clock is 800 MHz (4 core cycles per memory cycle), the data
// bus moves 8 bytes per memory half-cycle (DDR), i.e. 4 bytes per core
// cycle = 12.8 GB/s, and the CAS/RCD/RP latencies are 11 memory cycles
// (13.75 ns) = 44 core cycles each.
type Config struct {
	// CapacityBytes is the DRAM size (Table I: 16 GiB).
	CapacityBytes uint64
	// Banks is the number of banks in the rank.
	Banks int
	// RowBytes is the row-buffer (page) size per bank.
	RowBytes uint64
	// LineBytes is the transfer granularity (one burst).
	LineBytes uint64
	// TRCD is ACTIVATE-to-READ/WRITE delay in core cycles.
	TRCD clock.Cycles
	// TCAS is READ-to-data delay in core cycles.
	TCAS clock.Cycles
	// TRP is PRECHARGE delay in core cycles.
	TRP clock.Cycles
	// BusCyclesPerLine is data-bus occupancy per line in core cycles
	// (LineBytes / bytes-per-core-cycle).
	BusCyclesPerLine clock.Cycles
}

// DefaultConfig returns the DDR3-1600 configuration used for all server
// blades (Table I: 16 GiB DDR3).
func DefaultConfig() Config {
	return Config{
		CapacityBytes:    16 << 30,
		Banks:            8,
		RowBytes:         8 << 10,
		LineBytes:        64,
		TRCD:             44,
		TCAS:             44,
		TRP:              44,
		BusCyclesPerLine: 16, // 64 B at 4 B per core cycle = 12.8 GB/s
	}
}

// Stats counts controller activity.
type Stats struct {
	Reads     uint64
	Writes    uint64
	RowHits   uint64
	RowMisses uint64
	// BusBusyCycles accumulates data-bus occupancy, from which achieved
	// bandwidth can be computed.
	BusBusyCycles clock.Cycles
}

type bank struct {
	openRow int64 // -1 when precharged
	readyAt clock.Cycles
}

// Model is a single-channel DRAM timing model plus functional backing
// store.
type Model struct {
	cfg   Config
	banks []bank
	// busFreeAt is the cycle at which the shared data bus next frees.
	busFreeAt clock.Cycles
	stats     Stats

	// mem is the functional backing store, allocated sparsely in 64 KiB
	// chunks so a 16 GiB target footprint does not require 16 GiB of host
	// memory.
	mem map[uint64][]byte
}

const chunkShift = 16 // 64 KiB functional chunks
const chunkSize = 1 << chunkShift

// New builds a model; zero-value fields in cfg take defaults.
func New(cfg Config) *Model {
	d := DefaultConfig()
	if cfg.CapacityBytes == 0 {
		cfg.CapacityBytes = d.CapacityBytes
	}
	if cfg.Banks == 0 {
		cfg.Banks = d.Banks
	}
	if cfg.RowBytes == 0 {
		cfg.RowBytes = d.RowBytes
	}
	if cfg.LineBytes == 0 {
		cfg.LineBytes = d.LineBytes
	}
	if cfg.TRCD == 0 {
		cfg.TRCD = d.TRCD
	}
	if cfg.TCAS == 0 {
		cfg.TCAS = d.TCAS
	}
	if cfg.TRP == 0 {
		cfg.TRP = d.TRP
	}
	if cfg.BusCyclesPerLine == 0 {
		cfg.BusCyclesPerLine = d.BusCyclesPerLine
	}
	m := &Model{
		cfg:   cfg,
		banks: make([]bank, cfg.Banks),
		mem:   make(map[uint64][]byte),
	}
	for i := range m.banks {
		m.banks[i].openRow = -1
	}
	return m
}

// Config returns the model's effective configuration.
func (m *Model) Config() Config { return m.cfg }

// Stats returns a snapshot of the counters.
func (m *Model) Stats() Stats { return m.stats }

// bankAndRow decomposes an address: line-interleaved across banks, rows
// above that, which gives streaming accesses bank-level parallelism.
func (m *Model) bankAndRow(addr uint64) (int, int64) {
	line := addr / m.cfg.LineBytes
	b := int(line % uint64(m.cfg.Banks))
	row := int64(addr / (m.cfg.RowBytes * uint64(m.cfg.Banks)))
	return b, row
}

// Access models the timing of one line-granularity transfer beginning no
// earlier than cycle now, returning the cycle at which the data transfer
// completes. It advances bank and bus state.
func (m *Model) Access(now clock.Cycles, addr uint64, write bool) clock.Cycles {
	if addr >= m.cfg.CapacityBytes {
		panic(fmt.Sprintf("dram: address %#x beyond capacity %#x", addr, m.cfg.CapacityBytes))
	}
	b, row := m.bankAndRow(addr)
	bk := &m.banks[b]

	start := now
	if bk.readyAt > start {
		start = bk.readyAt
	}

	var cmdDone clock.Cycles
	switch {
	case bk.openRow == row:
		// Row hit: CAS only.
		m.stats.RowHits++
		cmdDone = start + m.cfg.TCAS
	case bk.openRow == -1:
		// Bank precharged: ACTIVATE then CAS.
		m.stats.RowMisses++
		cmdDone = start + m.cfg.TRCD + m.cfg.TCAS
	default:
		// Row conflict: PRECHARGE, ACTIVATE, CAS.
		m.stats.RowMisses++
		cmdDone = start + m.cfg.TRP + m.cfg.TRCD + m.cfg.TCAS
	}
	bk.openRow = row

	// The data burst needs the shared bus.
	burstStart := cmdDone
	if m.busFreeAt > burstStart {
		burstStart = m.busFreeAt
	}
	done := burstStart + m.cfg.BusCyclesPerLine
	m.busFreeAt = done
	bk.readyAt = done
	m.stats.BusBusyCycles += m.cfg.BusCyclesPerLine

	if write {
		m.stats.Writes++
	} else {
		m.stats.Reads++
	}
	return done
}

// IdleAt reports whether the controller is provably idle at cycle now: the
// shared bus is free and every bank has finished its last transfer. While
// idle, no controller state evolves on its own (readyAt/busFreeAt are
// timestamps, open rows are static), so cycles can be skipped without
// changing any observable or checkpointed state.
func (m *Model) IdleAt(now clock.Cycles) bool {
	if m.busFreeAt > now {
		return false
	}
	for i := range m.banks {
		if m.banks[i].readyAt > now {
			return false
		}
	}
	return true
}

// --- functional backing store ---

func (m *Model) chunk(addr uint64) []byte {
	key := addr >> chunkShift
	c, ok := m.mem[key]
	if !ok {
		c = make([]byte, chunkSize)
		m.mem[key] = c
	}
	return c
}

// ReadBytes copies len(buf) bytes of functional state at addr into buf.
func (m *Model) ReadBytes(addr uint64, buf []byte) {
	if addr+uint64(len(buf)) > m.cfg.CapacityBytes {
		panic(fmt.Sprintf("dram: functional read [%#x,+%d) beyond capacity", addr, len(buf)))
	}
	for n := 0; n < len(buf); {
		c := m.chunk(addr + uint64(n))
		off := int((addr + uint64(n)) & (chunkSize - 1))
		k := copy(buf[n:], c[off:])
		n += k
	}
}

// WriteBytes stores buf into functional state at addr.
func (m *Model) WriteBytes(addr uint64, buf []byte) {
	if addr+uint64(len(buf)) > m.cfg.CapacityBytes {
		panic(fmt.Sprintf("dram: functional write [%#x,+%d) beyond capacity", addr, len(buf)))
	}
	for n := 0; n < len(buf); {
		c := m.chunk(addr + uint64(n))
		off := int((addr + uint64(n)) & (chunkSize - 1))
		k := copy(c[off:], buf[n:])
		n += k
	}
}

// LoadLE reads a little-endian value of 1, 2, 4 or 8 bytes that does not
// cross a functional chunk boundary, without staging through a temporary
// buffer. ok=false means the access straddles a chunk (or size is odd) and
// the caller must fall back to ReadBytes.
func (m *Model) LoadLE(addr uint64, size int) (v uint64, ok bool) {
	if addr+uint64(size) > m.cfg.CapacityBytes {
		panic(fmt.Sprintf("dram: functional read [%#x,+%d) beyond capacity", addr, size))
	}
	off := addr & (chunkSize - 1)
	if off+uint64(size) > chunkSize {
		return 0, false
	}
	c := m.chunk(addr)
	switch size {
	case 1:
		return uint64(c[off]), true
	case 2:
		return uint64(binary.LittleEndian.Uint16(c[off:])), true
	case 4:
		return uint64(binary.LittleEndian.Uint32(c[off:])), true
	case 8:
		return binary.LittleEndian.Uint64(c[off:]), true
	}
	return 0, false
}

// StoreLE writes the low size bytes of v little-endian at addr when the
// access fits inside one functional chunk. ok=false means the caller must
// fall back to WriteBytes.
func (m *Model) StoreLE(addr uint64, size int, v uint64) (ok bool) {
	if addr+uint64(size) > m.cfg.CapacityBytes {
		panic(fmt.Sprintf("dram: functional write [%#x,+%d) beyond capacity", addr, size))
	}
	off := addr & (chunkSize - 1)
	if off+uint64(size) > chunkSize {
		return false
	}
	c := m.chunk(addr)
	switch size {
	case 1:
		c[off] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(c[off:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(c[off:], uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(c[off:], v)
	default:
		return false
	}
	return true
}

// Read64 reads an 8-byte little-endian word of functional state.
func (m *Model) Read64(addr uint64) uint64 {
	var b [8]byte
	m.ReadBytes(addr, b[:])
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// Write64 writes an 8-byte little-endian word of functional state.
func (m *Model) Write64(addr uint64, v uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	m.WriteBytes(addr, b[:])
}

// StreamBandwidthBytesPerCycle reports the model's peak streaming
// bandwidth, the quantity that caps the bare-metal NIC experiment at
// ~100 Gbit/s in Section IV-C.
func (m *Model) StreamBandwidthBytesPerCycle() float64 {
	return float64(m.cfg.LineBytes) / float64(m.cfg.BusCyclesPerLine)
}
