package manager

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// controlSeed frames one message and returns the raw bytes.
func controlSeed(t byte, msg any) []byte {
	var buf bytes.Buffer
	if err := WriteControl(&buf, t, msg); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzControlRead mirrors transport's FuzzReadBatch for the shard
// control protocol: whatever bytes arrive on the control connection —
// malformed lengths, bad versions, truncated payloads, corrupt JSON —
// ReadControl and the message decoders must return structured errors,
// never panic, and never allocate beyond the frame bound.
func FuzzControlRead(f *testing.F) {
	spec := ClusterSpec{
		Root: NodeSpec{Switch: "root", Downlinks: []NodeSpec{
			{Server: "server0", Blade: "QuadCore"},
			{Server: "server1", Blade: "QuadCore"},
		}},
		LinkLatency:      512,
		SwitchingLatency: 10,
	}
	seeds := [][]byte{
		controlSeed(msgHello, HelloMsg{Name: "shard0", PID: 1234, Proto: 1}),
		controlSeed(msgAssign, AssignMsg{
			Epoch:     3,
			Spec:      spec,
			Units:     []UnitAssign{{Unit: 0, StoreDir: "/tmp/sub0"}},
			TokenAddr: "127.0.0.1:9000",
			Restore:   true, RestoreCycle: 2048,
		}),
		controlSeed(msgRunTo, RunToMsg{Target: 8192, Final: true}),
		controlSeed(msgCheckpoint, nil),
		controlSeed(msgProgress, ProgressMsg{Cycle: 77}),
		controlSeed(msgDone, DoneMsg{Cycle: 8192, Hashes: map[string]uint64{"node/server0": 1}}),
		controlSeed(msgError, ErrorMsg{Msg: "bridge died", Cycle: 99}),
	}
	for _, s := range seeds {
		f.Add(s)
		// Truncations at every prefix of a representative frame sweep the
		// header / payload / crc boundary classes.
		if len(s) < 64 {
			for cut := 0; cut < len(s); cut++ {
				f.Add(s[:cut])
			}
		}
	}
	// Targeted malformations.
	badMagic := append([]byte(nil), seeds[0]...)
	badMagic[0] ^= 0xff
	f.Add(badMagic)
	badVer := append([]byte(nil), seeds[0]...)
	binary.BigEndian.PutUint16(badVer[4:6], 0x7fff)
	f.Add(badVer)
	hugeLen := append([]byte(nil), seeds[0]...)
	binary.BigEndian.PutUint32(hugeLen[8:12], 0xffff_ffff)
	f.Add(hugeLen)
	badCRC := append([]byte(nil), seeds[2]...)
	badCRC[len(badCRC)-1] ^= 0x01
	f.Add(badCRC)
	badType := append([]byte(nil), seeds[3]...)
	badType[6] = 0xee
	f.Add(badType)

	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadControl(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A frame that passed framing checks must also survive message
		// decoding without panicking, whatever its payload claims to be.
		switch typ {
		case msgHello:
			var m HelloMsg
			_ = decodeControl(typ, payload, &m)
		case msgAssign:
			var m AssignMsg
			if decodeControl(typ, payload, &m) == nil {
				// A structurally valid assign may still carry a hostile
				// spec; Topology() must bound and reject, not panic.
				_, _, _ = m.Spec.Topology()
			}
		case msgRunTo:
			var m RunToMsg
			_ = decodeControl(typ, payload, &m)
		case msgProgress:
			var m ProgressMsg
			_ = decodeControl(typ, payload, &m)
		case msgDone:
			var m DoneMsg
			_ = decodeControl(typ, payload, &m)
		case msgError:
			var m ErrorMsg
			_ = decodeControl(typ, payload, &m)
		}
		// Valid frames round-trip: re-encoding the raw payload under the
		// same type must produce bytes ReadControl accepts identically.
		var buf bytes.Buffer
		if err := WriteControl(&buf, typ, nil); err != nil {
			t.Fatalf("re-encode empty: %v", err)
		}
		typ2, payload2, err := ReadControl(bytes.NewReader(append(frameWithPayload(typ, payload), buf.Bytes()...)))
		if err != nil || typ2 != typ || !bytes.Equal(payload2, payload) {
			t.Fatalf("round trip: typ %d->%d err %v", typ, typ2, err)
		}
	})
}

// frameWithPayload re-frames a raw payload (bypassing JSON encoding).
func frameWithPayload(typ byte, payload []byte) []byte {
	var buf bytes.Buffer
	// WriteControl JSON-encodes; frame manually for raw payloads.
	hdr := make([]byte, 12)
	binary.BigEndian.PutUint32(hdr[0:4], 0x4653_4350)
	binary.BigEndian.PutUint16(hdr[4:6], 1)
	hdr[6] = typ
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	buf.Write(hdr)
	buf.Write(payload)
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	buf.Write(crc[:])
	return buf.Bytes()
}
