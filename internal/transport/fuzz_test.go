package transport

import (
	"bytes"
	"testing"

	"repro/internal/token"
)

// encode is a test helper that panics on the (impossible) in-memory
// write failure.
func encode(b *token.Batch) []byte {
	var buf bytes.Buffer
	if err := WriteBatch(&buf, b); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzReadBatch throws arbitrary byte streams at the batch decoder. The
// decoder may reject input (corrupt streams must error, never panic), but
// anything it accepts must round-trip: re-encoding the decoded batch and
// decoding again yields the identical batch. That property is what lets
// the bridge trust a decoded frame without further validation.
func FuzzReadBatch(f *testing.F) {
	// Seed corpus: an empty batch, a sparse batch, a dense batch, and
	// truncations/corruptions of a valid frame.
	f.Add(encode(token.NewBatch(4)))
	sparse := token.NewBatch(32)
	sparse.Put(3, token.Token{Data: 0xdeadbeef, Valid: true})
	sparse.Put(17, token.Token{Data: 1, Valid: true, Last: true})
	f.Add(encode(sparse))
	dense := token.NewBatch(8)
	for i := 0; i < 8; i++ {
		dense.Put(i, token.Token{Data: uint64(i) << 40, Valid: true})
	}
	f.Add(encode(dense))
	valid := encode(sparse)
	f.Add(valid[:len(valid)-5]) // truncated mid-slot
	f.Add(valid[:6])            // truncated mid-header
	f.Add([]byte{})
	mangled := append([]byte(nil), valid...)
	mangled[9] = 0xff // slot offset corruption
	f.Add(mangled)

	f.Fuzz(func(t *testing.T, data []byte) {
		got := token.NewBatch(1)
		if err := ReadBatch(bytes.NewReader(data), got); err != nil {
			return // rejected: fine, as long as it did not panic
		}
		re := encode(got)
		got2 := token.NewBatch(1)
		if err := ReadBatch(bytes.NewReader(re), got2); err != nil {
			t.Fatalf("re-encoded accepted batch failed to decode: %v", err)
		}
		if got.N != got2.N || len(got.Slots) != len(got2.Slots) {
			t.Fatalf("round-trip changed shape: %+v vs %+v", got, got2)
		}
		for i := range got.Slots {
			if got.Slots[i] != got2.Slots[i] {
				t.Fatalf("round-trip changed slot %d: %+v vs %+v", i, got.Slots[i], got2.Slots[i])
			}
		}
	})
}
