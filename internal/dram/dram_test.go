package dram

import (
	"testing"
	"testing/quick"

	"repro/internal/clock"
)

func TestRowHitFasterThanMiss(t *testing.T) {
	m := New(Config{})
	// First access to a bank: precharged -> ACT+CAS+burst.
	d1 := m.Access(0, 0, false)
	want1 := m.cfg.TRCD + m.cfg.TCAS + m.cfg.BusCyclesPerLine
	if d1 != want1 {
		t.Errorf("cold access done at %d, want %d", d1, want1)
	}
	// Second access in the same row (same bank): hit, CAS+burst only,
	// starting when the bank frees.
	d2 := m.Access(d1, 8*64, false) // +8 lines = same bank (8 banks), same row
	if got := d2 - d1; got != m.cfg.TCAS+m.cfg.BusCyclesPerLine {
		t.Errorf("row hit took %d cycles, want %d", got, m.cfg.TCAS+m.cfg.BusCyclesPerLine)
	}
	st := m.Stats()
	if st.RowHits != 1 || st.RowMisses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRowConflictSlowest(t *testing.T) {
	m := New(Config{})
	d1 := m.Access(0, 0, false)
	// Same bank, different row: PRE+ACT+CAS+burst.
	rowStride := m.cfg.RowBytes * uint64(m.cfg.Banks)
	d2 := m.Access(d1, rowStride, false)
	want := m.cfg.TRP + m.cfg.TRCD + m.cfg.TCAS + m.cfg.BusCyclesPerLine
	if got := d2 - d1; got != want {
		t.Errorf("row conflict took %d cycles, want %d", got, want)
	}
}

func TestBankParallelismHidesLatency(t *testing.T) {
	// Accesses to different banks overlap their ACT/CAS phases; only the
	// shared bus serialises the bursts. Issuing 8 parallel cold accesses at
	// cycle 0 must finish far sooner than 8 serialised cold accesses.
	m := New(Config{})
	var last clock.Cycles
	for i := 0; i < 8; i++ {
		last = m.Access(0, uint64(i)*64, false) // consecutive lines hit all 8 banks
	}
	serial := 8 * (m.cfg.TRCD + m.cfg.TCAS + m.cfg.BusCyclesPerLine)
	if last >= serial {
		t.Errorf("8 banked accesses done at %d, want < serialised %d", last, serial)
	}
	want := m.cfg.TRCD + m.cfg.TCAS + 8*m.cfg.BusCyclesPerLine
	if last != want {
		t.Errorf("banked completion = %d, want latency+8 bursts = %d", last, want)
	}
}

func TestStreamingBandwidthCeiling(t *testing.T) {
	// Stream 1 MiB sequentially with a pipelined requester (each request
	// issued as soon as the previous one is *issued*, like a DMA engine
	// with outstanding reads): steady-state throughput must approach
	// LineBytes/BusCyclesPerLine = 4 B/cycle (12.8 GB/s at 3.2 GHz), the
	// ceiling that explains the bare-metal 100 Gbit/s NIC result.
	m := New(Config{})
	const total = 1 << 20
	var now, done clock.Cycles
	for addr := uint64(0); addr < total; addr += 64 {
		done = m.Access(now, addr, false)
		now++ // issue one request per cycle; the bus is the bottleneck
	}
	bw := float64(total) / float64(done)
	if bw < 3.5 || bw > 4.01 {
		t.Errorf("streaming bandwidth = %.2f B/cycle, want ~4", bw)
	}
	if got := m.StreamBandwidthBytesPerCycle(); got != 4 {
		t.Errorf("StreamBandwidthBytesPerCycle = %g", got)
	}
}

func TestAccessMonotonicProperty(t *testing.T) {
	// Property: completion cycle is strictly after the request cycle and
	// never decreases when issued in time order.
	m := New(Config{})
	var now, prevDone clock.Cycles
	check := func(addrSeed uint32, gap uint8) bool {
		addr := (uint64(addrSeed) * 64) % (1 << 30)
		now += clock.Cycles(gap)
		done := m.Access(now, addr, addrSeed%2 == 0)
		ok := done > now && done >= prevDone
		prevDone = done
		return ok
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestFunctionalRoundTrip(t *testing.T) {
	m := New(Config{})
	data := []byte("the quick brown fox jumps over the lazy dog")
	// Straddle a 64 KiB chunk boundary deliberately.
	addr := uint64(chunkSize - 10)
	m.WriteBytes(addr, data)
	got := make([]byte, len(data))
	m.ReadBytes(addr, got)
	if string(got) != string(data) {
		t.Errorf("round trip = %q", got)
	}
}

func TestRead64Write64(t *testing.T) {
	m := New(Config{})
	check := func(addrSeed uint16, v uint64) bool {
		addr := uint64(addrSeed) * 8
		m.Write64(addr, v)
		return m.Read64(addr) == v
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestSparseAllocation(t *testing.T) {
	// Touching two distant addresses must not allocate the whole 16 GiB.
	m := New(Config{})
	m.Write64(0, 1)
	m.Write64(15<<30, 2)
	if len(m.mem) != 2 {
		t.Errorf("allocated %d chunks, want 2", len(m.mem))
	}
	if m.Read64(15<<30) != 2 {
		t.Error("distant read failed")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := New(Config{CapacityBytes: 1 << 20})
	for name, fn := range map[string]func(){
		"timing": func() { m.Access(0, 1<<20, false) },
		"read":   func() { m.ReadBytes(1<<20-4, make([]byte, 8)) },
		"write":  func() { m.WriteBytes(1<<20, []byte{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestUninitialisedMemoryReadsZero(t *testing.T) {
	m := New(Config{})
	if got := m.Read64(4096); got != 0 {
		t.Errorf("fresh memory = %#x, want 0", got)
	}
}
