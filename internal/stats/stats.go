// Package stats provides the measurement utilities used by the workload
// generators and the experiment harness: latency samples with percentile
// extraction (the paper reports 50th and 95th percentiles), bandwidth
// time series (Figure 6 plots bandwidth over time), and fixed-width text
// tables matching the paper's presentation.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Sample collects scalar observations (typically latencies in
// microseconds).
type Sample struct {
	values []float64
	sorted bool
}

// Add records an observation.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = false
}

// N reports the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Percentile returns the p-th percentile (0 < p <= 100) using linear
// interpolation between order statistics. It returns NaN for an empty
// sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
	if p <= 0 {
		return s.values[0]
	}
	if p >= 100 {
		return s.values[len(s.values)-1]
	}
	rank := p / 100 * float64(len(s.values)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s.values) {
		return s.values[len(s.values)-1]
	}
	return s.values[lo]*(1-frac) + s.values[lo+1]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// P95 returns the 95th percentile, the tail metric used throughout the
// paper's memcached experiments.
func (s *Sample) P95() float64 { return s.Percentile(95) }

// Mean returns the arithmetic mean, or NaN for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Min returns the smallest observation.
func (s *Sample) Min() float64 { return s.Percentile(0) }

// Max returns the largest observation.
func (s *Sample) Max() float64 { return s.Percentile(100) }

// TimeSeries accumulates a value (e.g. bytes) into fixed-width buckets of
// simulated time, for bandwidth-over-time plots.
type TimeSeries struct {
	// BucketWidth is the bucket size in the series' time unit (cycles).
	BucketWidth int64
	buckets     map[int64]float64
}

// NewTimeSeries returns a series with the given bucket width.
func NewTimeSeries(bucketWidth int64) *TimeSeries {
	if bucketWidth <= 0 {
		panic(fmt.Sprintf("stats: bucket width must be positive, got %d", bucketWidth))
	}
	return &TimeSeries{BucketWidth: bucketWidth, buckets: make(map[int64]float64)}
}

// Accumulate adds v at time t.
func (ts *TimeSeries) Accumulate(t int64, v float64) {
	ts.buckets[t/ts.BucketWidth] += v
}

// Points returns (bucket start time, total) pairs in time order.
func (ts *TimeSeries) Points() (times []int64, totals []float64) {
	keys := make([]int64, 0, len(ts.buckets))
	for k := range ts.buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		times = append(times, k*ts.BucketWidth)
		totals = append(totals, ts.buckets[k])
	}
	return times, totals
}

// Counters is a set of named monotonic counters with deterministic
// (sorted) iteration order, safe for concurrent use. The fault-injection
// subsystem and the distributed-run supervisor both report through it, so
// two runs with the same seed render byte-identical counter tables.
type Counters struct {
	mu sync.Mutex
	m  map[string]uint64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{m: make(map[string]uint64)} }

// Add increments the named counter by delta.
func (c *Counters) Add(name string, delta uint64) {
	c.mu.Lock()
	c.m[name] += delta
	c.mu.Unlock()
}

// Get returns the named counter's value (zero if never incremented).
func (c *Counters) Get(name string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Names returns the counter names in sorted order.
func (c *Counters) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.m))
	for n := range c.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Table renders the counters as a two-column table in name order.
func (c *Counters) Table() *Table {
	t := NewTable("Counter", "Value")
	for _, n := range c.Names() {
		t.AddRow(n, c.Get(n))
	}
	return t
}

// String renders the counter table.
func (c *Counters) String() string { return c.Table().String() }

// Table renders fixed-width text tables like the paper's.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
