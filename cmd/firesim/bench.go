package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stats"
)

// benchVariant is one (mode, metrics) measurement at one topology size.
type benchVariant struct {
	WallNanos int64   `json:"wall_ns"`
	SimHz     float64 `json:"sim_hz"`
	Slowdown  float64 `json:"slowdown"`
}

// schedTune bundles the parallel-scheduler tuning surface a bench
// invocation applies to every deployment: worker count plus the
// multiplexing/slack knobs. All host-side only — none of these change
// simulated behaviour.
type schedTune struct {
	workers     int
	multiplexed bool
	ringSlack   int
	balancePct  int
}

// sweepPoint is one measurement of the worker-sweep pass: one (nodes,
// workers) cell. EffectiveWorkers and SchedUnits record what the runner
// actually did — the requested count is capped at the endpoint-group
// count, so a speedup is only attributable to the effective value.
type sweepPoint struct {
	Nodes            int     `json:"nodes"`
	Workers          int     `json:"workers"`
	EffectiveWorkers int     `json:"effective_workers"`
	SchedUnits       int     `json:"sched_units"`
	Multiplexed      bool    `json:"multiplexed"`
	WallNanos        int64   `json:"wall_ns"`
	SimHz            float64 `json:"sim_hz"`
	// SpeedupVs1W is this cell's best wall time against the same size's
	// 1-worker (sequential-delegate) best: the scaling curve the sweep
	// exists to record.
	SpeedupVs1W float64 `json:"speedup_vs_1_worker"`
}

// benchResult is the sim-rate record for one topology size.
type benchResult struct {
	Nodes  int    `json:"nodes"`
	Cycles uint64 `json:"cycles"`

	Run                benchVariant `json:"run"`
	RunParallel        benchVariant `json:"run_parallel"`
	RunMetrics         benchVariant `json:"run_metrics"`
	RunParallelMetrics benchVariant `json:"run_parallel_metrics"`

	// EffectiveWorkers/SchedUnits are what the parallel variant actually
	// ran with (the -workers request is capped at the endpoint-group
	// count; units are per-endpoint in pool mode, per-worker multiplexed).
	EffectiveWorkers int `json:"effective_workers"`
	SchedUnits       int `json:"sched_units"`

	// Overhead of enabling metrics, percent of wall time: the median of
	// per-rep wall-time ratios. Each rep measures base and instrumented
	// back to back, so host frequency drift — which moves both sides of an
	// adjacent pair almost equally but can swing distant runs by tens of
	// percent — mostly cancels inside each ratio, and the median rejects
	// the occasional rep where a GC pause or scheduler preemption landed
	// inside one measured region. The headline numbers are clamped at 0
	// (instrumentation cannot make the simulator faster); the raw signed
	// medians are reported alongside — a persistently negative raw value
	// means the measurement is noise-dominated, which the clamp would
	// otherwise hide.
	RunOverheadPct            float64 `json:"run_metrics_overhead_pct"`
	RunOverheadRawPct         float64 `json:"run_metrics_overhead_raw_pct"`
	RunParallelOverheadPct    float64 `json:"run_parallel_metrics_overhead_pct"`
	RunParallelOverheadRawPct float64 `json:"run_parallel_metrics_overhead_raw_pct"`

	ParallelSpeedup float64 `json:"parallel_speedup"`
}

// benchFile is the BENCH_fame.json document.
type benchFile struct {
	GeneratedBy       string  `json:"generated_by"`
	TargetFreqHz      float64 `json:"target_freq_hz"`
	LinkLatencyCycles uint64  `json:"link_latency_cycles"`
	Rounds            int     `json:"rounds"`
	Reps              int     `json:"reps"`
	// Workers is the -workers flag (0 = GOMAXPROCS); GOMAXPROCS records
	// what that default resolved to on the bench host, so speedup numbers
	// can be read against the core count that produced them.
	Workers    int  `json:"workers"`
	GOMAXPROCS int  `json:"gomaxprocs"`
	// Scheduler tuning the whole invocation ran under (see schedTune).
	Multiplexed     bool          `json:"multiplexed,omitempty"`
	RingSlack       int           `json:"ring_slack,omitempty"`
	BalanceSlackPct int           `json:"balance_slack_pct,omitempty"`
	Results         []benchResult `json:"results"`
	// WorkerSweep is the multi-core scaling pass: every (nodes, workers)
	// cell from -worker-sweep × -sweep-nodes, with per-cell effective
	// worker counts and speedup-vs-1-worker.
	WorkerSweep []sweepPoint `json:"worker_sweep,omitempty"`
	// ScaleCurve is the sim-rate-vs-scale pass (the paper's Fig. 9 shape):
	// one sequential measurement per -scale-nodes size; see scalebench.go.
	ScaleCurve []scalePoint `json:"scale_curve,omitempty"`
	// NodeResults covers the per-node compute loop (SoC blades running
	// machine code) with the fast paths on vs off; see nodebench.go.
	NodeResults []nodeBenchResult `json:"node_results,omitempty"`
	// DistResults is the distributed token-plane pass: multi-process
	// sim rate and per-window wire cost vs the v2 fixed-width codec
	// baseline, idle and dense variants; see distbench.go.
	DistResults []distBenchPoint `json:"dist_results,omitempty"`
}

// benchHistoryEntry is one line of BENCH_history.jsonl: a timestamped
// digest of a bench invocation, so the perf trajectory is tracked across
// PRs without diffing full BENCH_fame.json documents.
type benchHistoryEntry struct {
	Time       string             `json:"time"`
	Rounds     int                `json:"rounds"`
	Reps       int                `json:"reps"`
	Workers    int                `json:"workers"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	RunHz      map[string]float64 `json:"run_hz"`
	ParHz      map[string]float64 `json:"run_parallel_hz"`
	Speedup    map[string]float64 `json:"parallel_speedup"`
	// Raw (unclamped) metrics overhead per size, so the history shows when
	// a measurement went noise-negative rather than silently reporting 0.
	RunOverheadRawPct map[string]float64 `json:"run_metrics_overhead_raw_pct,omitempty"`
	ParOverheadRawPct map[string]float64 `json:"run_parallel_metrics_overhead_raw_pct,omitempty"`
	// Node-bench digests, keyed "<workload>_fast" / "<workload>_slow"
	// (MIPS) and "<workload>" (fast-over-slow wall-time speedup).
	NodeMIPS        map[string]float64 `json:"node_mips,omitempty"`
	NodeFastSpeedup map[string]float64 `json:"node_fast_speedup,omitempty"`
	// Worker-sweep digests, keyed "<nodes>n<workers>w" (e.g. "32n4w"):
	// sim rate and speedup vs the same size's 1-worker baseline, plus the
	// effective worker count that produced each cell.
	Multiplexed  bool               `json:"multiplexed,omitempty"`
	SweepHz      map[string]float64 `json:"sweep_hz,omitempty"`
	SweepSpeedup map[string]float64 `json:"sweep_speedup,omitempty"`
	SweepEffW    map[string]int     `json:"sweep_effective_workers,omitempty"`
	// Scale-curve digests, keyed by node count: the Fig. 9 trajectory.
	ScaleHz map[string]float64 `json:"scale_hz,omitempty"`
	// Dist-pass digests, keyed by variant ("idle"/"dense"): distributed
	// sim rate, per-window wire bytes, and compression vs the v2 codec.
	DistHz        map[string]float64 `json:"dist_hz,omitempty"`
	DistWireBPW   map[string]float64 `json:"dist_wire_bytes_per_window,omitempty"`
	DistWireRatio map[string]float64 `json:"dist_wire_ratio,omitempty"`
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	nodesList := fs.String("nodes", "2,4,8", "comma-separated rack sizes to measure")
	rounds := fs.Int("rounds", 2048, "link-latency rounds per measurement")
	reps := fs.Int("reps", 5, "repetitions per variant (best wall time wins)")
	latencyUs := fs.Float64("latency-us", 2, "link latency in microseconds")
	workers := fs.Int("workers", 0, "parallel scheduler worker count (0 = GOMAXPROCS)")
	multiplexed := fs.Bool("multiplexed", false, "run parallel measurements in the many-nodes-per-worker scheduling mode")
	ringSlack := fs.Int("ring-slack", 0, "extra producer-side rounds of slack on cross-worker rings")
	balanceSlackPct := fs.Int("balance-slack-pct", 0, "percent the partitioner's balance cap may be exceeded to co-locate links")
	workerSweep := fs.String("worker-sweep", "", "comma-separated worker counts for the multi-core scaling sweep (empty disables it)")
	sweepNodes := fs.String("sweep-nodes", "8,16,32,64", "comma-separated rack sizes for the worker sweep")
	sweepRounds := fs.Int("sweep-rounds", 0, "link-latency rounds per sweep measurement (0 = -rounds)")
	sweepMinSpeedup := fs.String("sweep-min-speedup", "", "scaling gate, e.g. \"2:1.6,4:2.5\": fail unless the sweep's best speedup at W effective workers reaches the bound")
	scaleNodes := fs.String("scale-nodes", "", "comma-separated node counts for the sim-rate-vs-scale pass, e.g. '8,64,256' (empty disables it; 64/256/1024 run as the paper's tree shapes)")
	scaleRounds := fs.Int("scale-rounds", 0, "link-latency rounds per scale measurement (0 = -rounds)")
	scaleReps := fs.Int("scale-reps", 3, "repetitions per scale point (best wall time wins)")
	scaleMinFrac := fs.Float64("scale-min-frac", 0, "Fig. 9 shape gate: fail unless the largest size's sim rate is at least this fraction of the second largest's (0 disables)")
	distNodes := fs.Int("dist-nodes", 0, "node count for the distributed token-plane pass (0 disables it)")
	distProcs := fs.Int("dist-procs", 3, "shard worker processes for the dist pass")
	distHorizon := fs.Uint64("dist-horizon", 16384, "target cycle for the dist pass (multiple of -dist-link)")
	distLink := fs.Uint64("dist-link", 512, "link latency in cycles for the dist pass (must be even)")
	distIdleMinRatio := fs.Float64("dist-idle-min-ratio", 0, "fail unless the idle dist variant's wire ratio vs the v2 codec reaches this (0 disables the gate)")
	distDenseMinRatio := fs.Float64("dist-dense-min-ratio", 0, "fail unless the dense dist variant's wire ratio vs the v2 codec reaches this (0 disables the gate)")
	distMinFrac := fs.Float64("dist-min-frac", 0, "fail unless the dense dist variant's sim rate is at least this fraction of the same spec in-process (0 disables the gate)")
	nodeNodes := fs.Int("node-nodes", 4, "blade count for the per-node compute-loop bench (0 disables it)")
	nodeRounds := fs.Int("node-rounds", 512, "link-latency rounds per node-bench measurement")
	idleMinSpeedup := fs.Float64("idle-min-speedup", 0, "fail unless the idle workload's fast-path speedup reaches this (0 disables the gate)")
	denseMinSpeedup := fs.Float64("dense-min-speedup", 0, "fail unless the dense workload's fast-path speedup reaches this (0 disables the gate)")
	sbMinSpeedup := fs.Float64("sb-min-speedup", 0, "fail unless the dense workload's superblock A-B speedup reaches this (0 disables the gate)")
	maxOverheadPct := fs.Float64("max-overhead-pct", 0, "fail if any size's clamped metrics overhead exceeds this percent (0 disables the gate)")
	out := fs.String("out", "BENCH_fame.json", "output file")
	history := fs.String("history", "", "append a timestamped result line to this JSONL file")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile covering only the measured round loops to this file")
	tracefile := fs.String("trace", "", "write a runtime execution trace covering only the measured round loops to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sizes, err := parseFanouts(*nodesList)
	if err != nil {
		return err
	}

	tune := schedTune{
		workers:     *workers,
		multiplexed: *multiplexed,
		ringSlack:   *ringSlack,
		balancePct:  *balanceSlackPct,
	}

	clk := clock.New(clock.DefaultTargetClock)
	doc := benchFile{
		GeneratedBy:       "firesim bench",
		TargetFreqHz:      float64(clock.DefaultTargetClock),
		LinkLatencyCycles: uint64(clk.CyclesInMicros(*latencyUs)),
		Rounds:            *rounds,
		Reps:              *reps,
		Workers:           *workers,
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		Multiplexed:       *multiplexed,
		RingSlack:         *ringSlack,
		BalanceSlackPct:   *balanceSlackPct,
	}

	table := stats.NewTable("Nodes", "Run", "RunParallel", "Speedup", "EffWorkers", "Metrics overhead")
	for _, n := range sizes {
		r, err := benchOneSize(n, *rounds, *reps, tune, clk.CyclesInMicros(*latencyUs))
		if err != nil {
			return fmt.Errorf("bench %d nodes: %w", n, err)
		}
		doc.Results = append(doc.Results, r)
		table.AddRow(n,
			clock.Hz(r.Run.SimHz), clock.Hz(r.RunParallel.SimHz),
			fmt.Sprintf("%.2fx", r.ParallelSpeedup),
			r.EffectiveWorkers,
			fmt.Sprintf("%+.1f%% / %+.1f%%", r.RunOverheadPct, r.RunParallelOverheadPct))
	}

	sweepTable := stats.NewTable("Nodes", "Workers", "EffWorkers", "SchedUnits", "SimHz", "Speedup vs 1w")
	if *workerSweep != "" {
		counts, err := parseFanouts(*workerSweep)
		if err != nil {
			return fmt.Errorf("bench: -worker-sweep: %w", err)
		}
		swSizes, err := parseFanouts(*sweepNodes)
		if err != nil {
			return fmt.Errorf("bench: -sweep-nodes: %w", err)
		}
		swRounds := *sweepRounds
		if swRounds <= 0 {
			swRounds = *rounds
		}
		points, err := benchWorkerSweep(swSizes, counts, swRounds, *reps, tune, clk.CyclesInMicros(*latencyUs))
		if err != nil {
			return err
		}
		doc.WorkerSweep = points
		for _, p := range points {
			sweepTable.AddRow(p.Nodes, p.Workers, p.EffectiveWorkers, p.SchedUnits,
				clock.Hz(p.SimHz), fmt.Sprintf("%.2fx", p.SpeedupVs1W))
		}
	}

	scaleTable := stats.NewTable("Nodes", "Topology", "Switches", "SimHz", "Slowdown")
	if *scaleNodes != "" {
		scSizes, err := parseFanouts(*scaleNodes)
		if err != nil {
			return fmt.Errorf("bench: -scale-nodes: %w", err)
		}
		scRounds := *scaleRounds
		if scRounds <= 0 {
			scRounds = *rounds
		}
		points, err := benchScalePass(scSizes, scRounds, *scaleReps, clk.CyclesInMicros(*latencyUs))
		if err != nil {
			return err
		}
		doc.ScaleCurve = points
		for _, p := range points {
			topoStr := make([]string, len(p.Fanouts))
			for i, f := range p.Fanouts {
				topoStr[i] = fmt.Sprintf("%d", f)
			}
			scaleTable.AddRow(p.Nodes, strings.Join(topoStr, "x"), p.Switches,
				clock.Hz(p.SimHz), fmt.Sprintf("%.0fx", p.Slowdown))
		}
	}

	nodeTable := stats.NewTable("Workload", "Fast", "Slow", "Speedup", "SB speedup", "MIPS fast/slow", "Skipped")
	if *nodeNodes > 0 {
		nodeResults, err := benchNodePass(*nodeNodes, *nodeRounds, *reps, clk.CyclesInMicros(*latencyUs))
		if err != nil {
			return err
		}
		doc.NodeResults = nodeResults
		for _, r := range nodeResults {
			sb := "-"
			if r.FastNoSB != nil {
				sb = fmt.Sprintf("%.2fx", r.SuperblockSpeedup)
			}
			nodeTable.AddRow(r.Workload,
				clock.Hz(r.Fast.SimHz), clock.Hz(r.Slow.SimHz),
				fmt.Sprintf("%.2fx", r.FastSpeedup),
				sb,
				fmt.Sprintf("%.2f / %.2f", r.Fast.MIPS, r.Slow.MIPS),
				fmt.Sprintf("%.1f%%", r.Fast.SkippedPct))
		}
	}

	distTable := stats.NewTable("Variant", "DistHz", "InprocHz", "Frac", "Wire B/win", "v2 B/win", "Ratio")
	if *distNodes > 0 {
		distResults, err := benchDistPass(*distNodes, *distProcs, *distHorizon, *distLink)
		if err != nil {
			return err
		}
		doc.DistResults = distResults
		for _, p := range distResults {
			distTable.AddRow(p.Variant,
				clock.Hz(p.DistHz), clock.Hz(p.InprocHz),
				fmt.Sprintf("%.3f", p.DistFrac),
				fmt.Sprintf("%.1f", p.WireBytesPerWindow),
				fmt.Sprintf("%.1f", p.PrecodecBytesPerWindow),
				fmt.Sprintf("%.2fx", p.WireRatio))
		}
	}

	buf, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	if *history != "" {
		if err := appendBenchHistory(*history, &doc); err != nil {
			return err
		}
	}
	fmt.Printf("sim-rate across topology sizes (%d rounds x %d reps, link %.3g us):\n",
		*rounds, *reps, *latencyUs)
	fmt.Print(table.String())
	if len(doc.WorkerSweep) > 0 {
		mode := "pool"
		if *multiplexed {
			mode = "multiplexed"
		}
		fmt.Printf("multi-core worker sweep (%s mode, GOMAXPROCS=%d):\n", mode, doc.GOMAXPROCS)
		fmt.Print(sweepTable.String())
	}
	if len(doc.ScaleCurve) > 0 {
		fmt.Printf("sim-rate vs scale (Fig. 9 curve, sequential scheduler, %d reps):\n", *scaleReps)
		fmt.Print(scaleTable.String())
	}
	if len(doc.NodeResults) > 0 {
		fmt.Printf("per-node compute loop, %d blades x %d rounds, fast paths on vs off:\n",
			*nodeNodes, *nodeRounds)
		fmt.Print(nodeTable.String())
	}
	if len(doc.DistResults) > 0 {
		fmt.Printf("distributed token plane, %d nodes / %d procs to cycle %d (wire vs v2-codec baseline):\n",
			*distNodes, *distProcs, *distHorizon)
		fmt.Print(distTable.String())
	}
	fmt.Printf("wrote %s\n", *out)

	for _, gate := range []struct {
		workload string
		min      float64
	}{
		{"idle", *idleMinSpeedup},
		{"dense", *denseMinSpeedup},
	} {
		if gate.min <= 0 {
			continue
		}
		var got *nodeBenchResult
		for i := range doc.NodeResults {
			if doc.NodeResults[i].Workload == gate.workload {
				got = &doc.NodeResults[i]
			}
		}
		if got == nil {
			return fmt.Errorf("bench: -%s-min-speedup set but the node bench did not run (see -node-nodes)", gate.workload)
		}
		if got.FastSpeedup < gate.min {
			return fmt.Errorf("bench: %s workload fast-path speedup %.2fx below the %.2fx gate",
				gate.workload, got.FastSpeedup, gate.min)
		}
	}
	if *sbMinSpeedup > 0 {
		var got *nodeBenchResult
		for i := range doc.NodeResults {
			if doc.NodeResults[i].Workload == "dense" {
				got = &doc.NodeResults[i]
			}
		}
		if got == nil || got.FastNoSB == nil {
			return fmt.Errorf("bench: -sb-min-speedup set but the dense node bench did not run (see -node-nodes)")
		}
		if got.SuperblockSpeedup < *sbMinSpeedup {
			return fmt.Errorf("bench: dense superblock A-B speedup %.2fx below the %.2fx gate",
				got.SuperblockSpeedup, *sbMinSpeedup)
		}
	}
	if *sweepMinSpeedup != "" {
		if err := checkSweepGate(doc.WorkerSweep, *sweepMinSpeedup); err != nil {
			return err
		}
	}
	if *scaleMinFrac > 0 {
		if err := checkScaleGate(doc.ScaleCurve, *scaleMinFrac); err != nil {
			return err
		}
	}
	if *distIdleMinRatio > 0 || *distDenseMinRatio > 0 || *distMinFrac > 0 {
		if err := checkDistGates(doc.DistResults, *distIdleMinRatio, *distDenseMinRatio, *distMinFrac); err != nil {
			return err
		}
	}
	if *maxOverheadPct > 0 {
		for _, r := range doc.Results {
			if r.RunOverheadPct > *maxOverheadPct || r.RunParallelOverheadPct > *maxOverheadPct {
				return fmt.Errorf("bench: %d-node metrics overhead %.1f%% / %.1f%% exceeds the %.1f%% gate",
					r.Nodes, r.RunOverheadPct, r.RunParallelOverheadPct, *maxOverheadPct)
			}
		}
	}

	// Profiling is a dedicated extra pass so the collectors wrap only the
	// measured round loops (pprof cannot pause/resume into one file, so
	// arming it around the whole bench would bury the schedulers under
	// deployment and JSON noise).
	if *cpuprofile != "" || *tracefile != "" {
		largest := sizes[len(sizes)-1]
		if err := profilePass(largest, *rounds, tune, clk.CyclesInMicros(*latencyUs), *cpuprofile, *tracefile); err != nil {
			return err
		}
		fmt.Printf("profiled %d-node round loops (cpu=%q trace=%q)\n", largest, *cpuprofile, *tracefile)
	}
	return nil
}

// appendBenchHistory adds one compact line for this invocation to the
// JSONL history file, creating it if needed.
func appendBenchHistory(path string, doc *benchFile) error {
	e := benchHistoryEntry{
		Time:       time.Now().UTC().Format(time.RFC3339),
		Rounds:     doc.Rounds,
		Reps:       doc.Reps,
		Workers:    doc.Workers,
		GOMAXPROCS: doc.GOMAXPROCS,
		RunHz:      map[string]float64{},
		ParHz:      map[string]float64{},
		Speedup:    map[string]float64{},
	}
	for _, r := range doc.Results {
		key := fmt.Sprintf("%d", r.Nodes)
		e.RunHz[key] = r.Run.SimHz
		e.ParHz[key] = r.RunParallel.SimHz
		e.Speedup[key] = r.ParallelSpeedup
		if e.RunOverheadRawPct == nil {
			e.RunOverheadRawPct = map[string]float64{}
			e.ParOverheadRawPct = map[string]float64{}
		}
		e.RunOverheadRawPct[key] = r.RunOverheadRawPct
		e.ParOverheadRawPct[key] = r.RunParallelOverheadRawPct
	}
	if len(doc.WorkerSweep) > 0 {
		e.Multiplexed = doc.Multiplexed
		e.SweepHz = map[string]float64{}
		e.SweepSpeedup = map[string]float64{}
		e.SweepEffW = map[string]int{}
		for _, p := range doc.WorkerSweep {
			key := fmt.Sprintf("%dn%dw", p.Nodes, p.Workers)
			e.SweepHz[key] = p.SimHz
			e.SweepSpeedup[key] = p.SpeedupVs1W
			e.SweepEffW[key] = p.EffectiveWorkers
		}
	}
	if len(doc.ScaleCurve) > 0 {
		e.ScaleHz = map[string]float64{}
		for _, p := range doc.ScaleCurve {
			e.ScaleHz[fmt.Sprintf("%d", p.Nodes)] = p.SimHz
		}
	}
	if len(doc.DistResults) > 0 {
		e.DistHz = map[string]float64{}
		e.DistWireBPW = map[string]float64{}
		e.DistWireRatio = map[string]float64{}
		for _, p := range doc.DistResults {
			e.DistHz[p.Variant] = p.DistHz
			e.DistWireBPW[p.Variant] = p.WireBytesPerWindow
			e.DistWireRatio[p.Variant] = p.WireRatio
		}
	}
	if len(doc.NodeResults) > 0 {
		e.NodeMIPS = map[string]float64{}
		e.NodeFastSpeedup = map[string]float64{}
		for _, r := range doc.NodeResults {
			e.NodeMIPS[r.Workload+"_fast"] = r.Fast.MIPS
			e.NodeMIPS[r.Workload+"_slow"] = r.Slow.MIPS
			e.NodeFastSpeedup[r.Workload] = r.FastSpeedup
			if r.FastNoSB != nil {
				e.NodeMIPS[r.Workload+"_fast_nosb"] = r.FastNoSB.MIPS
				e.NodeFastSpeedup[r.Workload+"_sb"] = r.SuperblockSpeedup
			}
		}
	}
	line, err := json.Marshal(&e)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(append(line, '\n'))
	return err
}

// benchWorkerSweep measures the multi-core scaling curve: for each rack
// size, the best-of-reps wall time at each requested worker count,
// normalized against the same size's 1-worker baseline (which is measured
// whether or not 1 appears in counts — a speedup needs its denominator).
// Each cell records the runner's effective worker count and scheduling-
// unit count, so a flat curve on a saturated host is attributable.
func benchWorkerSweep(sizes, counts []int, rounds, reps int, tune schedTune, linkLatency clock.Cycles) ([]sweepPoint, error) {
	withBase := counts
	for _, w := range counts {
		if w == 1 {
			withBase = nil
			break
		}
	}
	if withBase != nil {
		withBase = append([]int{1}, counts...)
	} else {
		withBase = counts
	}

	var points []sweepPoint
	for _, nodes := range sizes {
		var baseWall int64
		for _, w := range withBase {
			t := tune
			t.workers = w
			c, _, err := benchDeploy(nodes, rounds*(reps+1), t, linkLatency, true, false)
			if err != nil {
				return nil, fmt.Errorf("sweep %d nodes x %d workers: %w", nodes, w, err)
			}
			step := c.Runner.Step()
			region := clock.Cycles(rounds) * step
			// Same warm-up discipline as benchOneSize: burn one unbilled
			// region so cold caches never land in a measured rate.
			runtime.GC()
			if _, err := c.Runner.Measure(region, clock.DefaultTargetClock, true); err != nil {
				return nil, err
			}
			best := time.Duration(-1)
			for i := 0; i < reps; i++ {
				runtime.GC()
				rate, err := c.Runner.Measure(region, clock.DefaultTargetClock, true)
				if err != nil {
					return nil, fmt.Errorf("sweep %d nodes x %d workers: %w", nodes, w, err)
				}
				if best < 0 || rate.Wall < best {
					best = rate.Wall
				}
			}
			p := sweepPoint{
				Nodes:            nodes,
				Workers:          w,
				EffectiveWorkers: c.Runner.EffectiveWorkers(),
				SchedUnits:       c.Runner.SchedUnits(),
				Multiplexed:      tune.multiplexed,
			}
			v := toVariant(region, best)
			p.WallNanos, p.SimHz = v.WallNanos, v.SimHz
			if w == 1 {
				baseWall = p.WallNanos
			}
			if baseWall > 0 && p.WallNanos > 0 {
				p.SpeedupVs1W = float64(baseWall) / float64(p.WallNanos)
			}
			points = append(points, p)
		}
	}
	return points, nil
}

// checkSweepGate enforces a "W:min,W:min" scaling gate against the sweep:
// for each entry, the best speedup-vs-1-worker over cells that actually
// ran with W effective workers must reach min. Gating on the effective
// count keeps the gate honest — a host that silently capped the worker
// count fails loudly instead of passing on the baseline's parity.
func checkSweepGate(points []sweepPoint, spec string) error {
	if len(points) == 0 {
		return fmt.Errorf("bench: -sweep-min-speedup set but the worker sweep did not run (see -worker-sweep)")
	}
	for _, entry := range strings.Split(spec, ",") {
		var w int
		var min float64
		if _, err := fmt.Sscanf(strings.TrimSpace(entry), "%d:%f", &w, &min); err != nil {
			return fmt.Errorf("bench: -sweep-min-speedup entry %q: want W:MIN", entry)
		}
		best := -1.0
		for _, p := range points {
			if p.EffectiveWorkers == w && p.SpeedupVs1W > best {
				best = p.SpeedupVs1W
			}
		}
		if best < 0 {
			return fmt.Errorf("bench: sweep gate %d:%.2f: no sweep cell ran with %d effective workers", w, min, w)
		}
		if best < min {
			return fmt.Errorf("bench: sweep speedup at %d workers is %.2fx, below the %.2fx gate", w, best, min)
		}
	}
	return nil
}

// benchDeploy stands up one ping-loaded rack ready to measure: pings
// armed, one warm-up slice already run with the requested scheduler so
// cold caches and first-round batch allocation are never billed to a
// measured rate.
func benchDeploy(nodes, rounds int, tune schedTune, linkLatency clock.Cycles, parallel, withMetrics bool) (*core.Cluster, clock.Cycles, error) {
	c, err := core.Deploy(core.Rack("tor0", nodes, core.QuadCore),
		core.DeployConfig{
			LinkLatency:     linkLatency,
			Workers:         tune.workers,
			Multiplexed:     tune.multiplexed,
			RingSlack:       tune.ringSlack,
			BalanceSlackPct: tune.balancePct,
		})
	if err != nil {
		return nil, 0, err
	}
	if withMetrics {
		c.EnableMetrics(obs.NewRegistry("bench"))
	}
	step := c.Runner.Step()
	cycles := clock.Cycles(rounds) * step
	interval := 4 * step
	count := int((cycles+4*step)/interval) + 1
	for i, src := range c.Servers {
		dst := c.Servers[(i+1)%len(c.Servers)]
		src.Ping(0, dst.IP(), count, interval, nil)
	}
	if _, err := c.Runner.Measure(4*step, clock.DefaultTargetClock, parallel); err != nil {
		return nil, 0, err
	}
	return c, cycles, nil
}

// benchOneSize measures one rack size in all four variants, running a
// ring of pings — an idle rack ticks in nanoseconds and would make any
// fixed instrumentation cost look enormous, so the overhead number is
// only meaningful under representative load.
//
// Per scheduler, ONE deployment serves every measurement: base and
// instrumented regions alternate B I B I ... B on the same warm cluster
// (reps instrumented regions, reps+1 base). Fresh-deploy-per-variant
// benchmarking put ~100ms of deployment between the two sides of each
// ratio; on a shared host whose effective frequency drifts by tens of
// percent over such gaps, that drift dwarfed the real instrumentation
// cost. Alternating regions on one cluster makes each comparison
// back-to-back, pairing each instrumented region against the mean of its
// two flanking base regions (linear drift cancels exactly), and the
// median across reps rejects the occasional region a GC pause or
// scheduler preemption inflates. Displayed rates are best-of-regions.
func benchOneSize(nodes, rounds, reps int, tune schedTune, linkLatency clock.Cycles) (benchResult, error) {
	res := benchResult{Nodes: nodes}
	measurePair := func(parallel bool) (base, inst benchVariant, overhead, raw float64, err error) {
		regions := 2*reps + 1
		// One extra region's worth of pings covers the unbilled warm-up
		// region below.
		c, _, err := benchDeploy(nodes, rounds*(regions+1), tune, linkLatency, parallel, false)
		if err != nil {
			return base, inst, 0, 0, err
		}
		step := c.Runner.Step()
		region := clock.Cycles(rounds) * step
		res.Cycles = uint64(region)
		// The first region after deployment runs 1.5-2x slower than steady
		// state (cold host caches, lazily allocated batch pools) no matter
		// what the short deploy warm-up does; left in the flank set it
		// poisons every ratio it borders. Burn one full region unbilled so
		// the measured B I B ... B sequence starts warm.
		runtime.GC()
		if _, err := c.Runner.Measure(region, clock.DefaultTargetClock, parallel); err != nil {
			return base, inst, 0, 0, err
		}
		reg := obs.NewRegistry("bench")
		walls := make([]time.Duration, regions)
		bestBase, bestInst := time.Duration(-1), time.Duration(-1)
		for i := 0; i < regions; i++ {
			withMetrics := i%2 == 1
			if withMetrics {
				c.EnableMetrics(reg)
			} else {
				c.EnableMetrics(nil)
			}
			// Collect garbage from the previous region (and, first time
			// round, from deployment) before the clock starts, so a pause
			// from someone else's allocations never lands inside a measured
			// region.
			runtime.GC()
			rate, err := c.Runner.Measure(region, clock.DefaultTargetClock, parallel)
			if err != nil {
				return base, inst, 0, 0, err
			}
			walls[i] = rate.Wall
			if withMetrics {
				if bestInst < 0 || rate.Wall < bestInst {
					bestInst = rate.Wall
				}
			} else if bestBase < 0 || rate.Wall < bestBase {
				bestBase = rate.Wall
			}
		}
		ratios := make([]float64, 0, reps)
		for i := 1; i < regions; i += 2 {
			if flank := float64(walls[i-1]+walls[i+1]) / 2; flank > 0 {
				ratios = append(ratios, float64(walls[i])/flank)
			}
		}
		sort.Float64s(ratios)
		if n := len(ratios); n > 0 {
			med := ratios[n/2]
			if n%2 == 0 {
				med = (ratios[n/2-1] + ratios[n/2]) / 2
			}
			raw = 100 * (med - 1)
		}
		overhead = raw
		if overhead < 0 {
			overhead = 0
		}
		if parallel {
			res.EffectiveWorkers = c.Runner.EffectiveWorkers()
			res.SchedUnits = c.Runner.SchedUnits()
		}
		return toVariant(region, bestBase), toVariant(region, bestInst), overhead, raw, nil
	}

	var err error
	if res.Run, res.RunMetrics, res.RunOverheadPct, res.RunOverheadRawPct, err = measurePair(false); err != nil {
		return res, err
	}
	if res.RunParallel, res.RunParallelMetrics, res.RunParallelOverheadPct, res.RunParallelOverheadRawPct, err = measurePair(true); err != nil {
		return res, err
	}
	if res.RunParallel.WallNanos > 0 {
		res.ParallelSpeedup = float64(res.Run.WallNanos) / float64(res.RunParallel.WallNanos)
	}
	return res, nil
}

// profilePass runs both schedulers once at the given size with the
// collectors from internal/obs armed around only the measured round
// loops: deployment, ping arming and warm-up happen before Start, the
// JSON/teardown after Stop.
func profilePass(nodes, rounds int, tune schedTune, linkLatency clock.Cycles, cpuPath, tracePath string) error {
	seq, seqCycles, err := benchDeploy(nodes, rounds, tune, linkLatency, false, false)
	if err != nil {
		return err
	}
	par, parCycles, err := benchDeploy(nodes, rounds, tune, linkLatency, true, false)
	if err != nil {
		return err
	}
	var prof obs.Profiles
	if err := prof.Start(cpuPath, tracePath); err != nil {
		return err
	}
	defer prof.Stop()
	if _, err := seq.Runner.Measure(seqCycles, clock.DefaultTargetClock, false); err != nil {
		return err
	}
	if _, err := par.Runner.Measure(parCycles, clock.DefaultTargetClock, true); err != nil {
		return err
	}
	return nil
}

func toVariant(cycles clock.Cycles, wall time.Duration) benchVariant {
	rate := clock.SimRate{TargetCycles: cycles, Wall: wall, TargetFreq: clock.DefaultTargetClock}
	return benchVariant{
		WallNanos: wall.Nanoseconds(),
		SimHz:     float64(rate.EffectiveHz()),
		Slowdown:  rate.Slowdown(),
	}
}
