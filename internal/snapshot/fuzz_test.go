package snapshot

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader feeds arbitrary bytes through the full read path: header,
// section iteration, and every primitive decoder against each section
// payload. The invariant is simply "never panic, never allocate
// unboundedly" — errors are the expected outcome for garbage input.
func FuzzReader(f *testing.F) {
	// Seed with a well-formed snapshot so the fuzzer starts from valid
	// structure and mutates toward interesting corruptions.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{TopologyHash: 0xabc, Cycle: 512, Step: 8})
	if err != nil {
		f.Fatal(err)
	}
	w.Section("runner")
	w.Begin("fame.Runner", 1)
	w.U64(512)
	w.Uvarint(3)
	w.Section("node/s0")
	w.Begin("softstack.Node", 1)
	w.Bytes([]byte{1, 2, 3, 4})
	w.String("server0")
	w.Bool(true)
	w.F64(2.5)
	w.I64(-9)
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(Magic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, _, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1024; i++ {
			_, err := r.Next()
			if err == io.EOF || err != nil {
				break
			}
			// Exercise every decoder against the payload; all must
			// bounds-check and latch errors rather than panic.
			_ = r.U64()
			_ = r.I64()
			_ = r.F64()
			_ = r.Bool()
			_ = r.Uvarint()
			_ = r.Count(1 << 20)
			_ = r.Bytes(1 << 20)
			_ = r.String(1 << 20)
			_ = r.Begin("anything", 1)
			_ = r.Remaining()
		}
		_, _, _ = Inspect(bytes.NewReader(data))
	})
}
