package riscv

import (
	"testing"
	"testing/quick"

	"repro/internal/clock"
)

// flatBus is a simple test memory with uniform latency and an optional
// MMIO hook.
type flatBus struct {
	mem     []byte
	latency clock.Cycles
	// mmio intercepts accesses at/above mmioBase when set.
	mmioBase  uint64
	mmioLoad  func(addr uint64, size int) uint64
	mmioStore func(addr uint64, size int, v uint64)
}

func newFlatBus(size int) *flatBus { return &flatBus{mem: make([]byte, size)} }

func (b *flatBus) Fetch(addr uint64) (uint32, clock.Cycles) {
	v, _ := b.Load(addr, 4)
	return uint32(v), b.latency
}

func (b *flatBus) Load(addr uint64, size int) (uint64, clock.Cycles) {
	if b.mmioLoad != nil && addr >= b.mmioBase {
		return b.mmioLoad(addr, size), b.latency
	}
	var v uint64
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(b.mem[addr+uint64(i)])
	}
	return v, b.latency
}

func (b *flatBus) Store(addr uint64, size int, v uint64) clock.Cycles {
	if b.mmioStore != nil && addr >= b.mmioBase {
		b.mmioStore(addr, size, v)
		return b.latency
	}
	for i := 0; i < size; i++ {
		b.mem[addr+uint64(i)] = byte(v >> (8 * i))
	}
	return b.latency
}

func (b *flatBus) loadProgram(words []uint32) {
	for i, w := range words {
		b.Store(uint64(i*4), 4, uint64(w))
	}
}

// run executes until halt or maxSteps, returning the CPU.
func run(t *testing.T, a *Asm, maxSteps int, setup func(*CPU, *flatBus)) *CPU {
	t.Helper()
	bus := newFlatBus(1 << 20)
	bus.loadProgram(a.MustAssemble())
	cpu := New(bus, 0, 0)
	if setup != nil {
		setup(cpu, bus)
	}
	for i := 0; i < maxSteps && !cpu.Halted; i++ {
		cpu.Cycle += c(cpu.Step())
	}
	if !cpu.Halted {
		t.Fatalf("program did not halt within %d steps (pc=%#x)", maxSteps, cpu.PC)
	}
	return cpu
}

func c(x clock.Cycles) clock.Cycles { return x }

func TestArithmeticLoop(t *testing.T) {
	// sum = 0; for i = 1..10 { sum += i }; halt. sum in A0.
	a := NewAsm()
	a.LI(A0, 0)
	a.LI(T0, 1)
	a.LI(T1, 11)
	a.Label("loop")
	a.ADD(A0, A0, T0)
	a.ADDI(T0, T0, 1)
	a.BNE(T0, T1, "loop")
	a.EBREAK()
	cpu := run(t, a, 1000, nil)
	if cpu.X[A0] != 55 {
		t.Errorf("sum = %d, want 55", cpu.X[A0])
	}
}

func TestFibonacci(t *testing.T) {
	a := NewAsm()
	a.LI(T0, 0) // fib(0)
	a.LI(T1, 1) // fib(1)
	a.LI(T2, 20)
	a.Label("loop")
	a.ADD(T3, T0, T1)
	a.MV(T0, T1)
	a.MV(T1, T3)
	a.ADDI(T2, T2, -1)
	a.BNE(T2, Zero, "loop")
	a.MV(A0, T0)
	a.EBREAK()
	cpu := run(t, a, 1000, nil)
	if cpu.X[A0] != 6765 {
		t.Errorf("fib(20) = %d, want 6765", cpu.X[A0])
	}
}

func TestLoadStoreSignExtension(t *testing.T) {
	a := NewAsm()
	base := int32(0x1000)
	a.LI(T0, base)
	a.LI(T1, -2) // 0xff..fe
	a.SB(T1, T0, 0)
	a.SH(T1, T0, 8)
	a.SW(T1, T0, 16)
	a.SD(T1, T0, 24)
	a.LB(A0, T0, 0)  // -2
	a.LBU(A1, T0, 0) // 0xfe
	a.LH(A2, T0, 8)  // -2
	a.LHU(A3, T0, 8) // 0xfffe
	a.LW(A4, T0, 16) // -2
	a.LWU(A5, T0, 16)
	a.LD(A6, T0, 24)
	a.EBREAK()
	cpu := run(t, a, 100, nil)
	want := map[Reg]uint64{
		A0: ^uint64(1), A1: 0xfe,
		A2: ^uint64(1), A3: 0xfffe,
		A4: ^uint64(1), A5: 0xfffffffe,
		A6: ^uint64(1),
	}
	for r, w := range want {
		if cpu.X[r] != w {
			t.Errorf("x%d = %#x, want %#x", r, cpu.X[r], w)
		}
	}
}

func TestBranchVariants(t *testing.T) {
	// Each taken branch sets a bit in A0; all 6 must fire.
	a := NewAsm()
	a.LI(A0, 0)
	a.LI(T0, -5)
	a.LI(T1, 5)

	a.BEQ(T0, T0, "beq_ok")
	a.EBREAK()
	a.Label("beq_ok")
	a.ORI(A0, A0, 1)

	a.BNE(T0, T1, "bne_ok")
	a.EBREAK()
	a.Label("bne_ok")
	a.ORI(A0, A0, 2)

	a.BLT(T0, T1, "blt_ok") // -5 < 5 signed
	a.EBREAK()
	a.Label("blt_ok")
	a.ORI(A0, A0, 4)

	a.BGE(T1, T0, "bge_ok")
	a.EBREAK()
	a.Label("bge_ok")
	a.ORI(A0, A0, 8)

	a.BLTU(T1, T0, "bltu_ok") // 5 < 0xff..fb unsigned
	a.EBREAK()
	a.Label("bltu_ok")
	a.ORI(A0, A0, 16)

	a.BGEU(T0, T1, "bgeu_ok")
	a.EBREAK()
	a.Label("bgeu_ok")
	a.ORI(A0, A0, 32)
	a.EBREAK()

	cpu := run(t, a, 100, nil)
	if cpu.X[A0] != 63 {
		t.Errorf("branch bits = %#b, want 0b111111", cpu.X[A0])
	}
}

func TestFunctionCall(t *testing.T) {
	// main: A0 = double(21) via JAL/RET.
	a := NewAsm()
	a.LI(A0, 21)
	a.JAL(RA, "double")
	a.EBREAK()
	a.Label("double")
	a.ADD(A0, A0, A0)
	a.RET()
	cpu := run(t, a, 100, nil)
	if cpu.X[A0] != 42 {
		t.Errorf("double(21) = %d", cpu.X[A0])
	}
}

func TestMulDivEdgeCases(t *testing.T) {
	a := NewAsm()
	a.LI(T0, 0)
	a.LI(T1, 7)
	a.DIV(A0, T1, T0) // div by zero -> -1
	a.REM(A1, T1, T0) // rem by zero -> dividend
	a.LI64(T2, 1<<63) // INT64_MIN
	a.LI(T3, -1)
	a.DIV(A2, T2, T3) // overflow -> INT64_MIN
	a.REM(A3, T2, T3) // overflow -> 0
	a.LI(T4, 6)
	a.LI(T5, 7)
	a.MUL(A4, T4, T5)
	a.EBREAK()
	cpu := run(t, a, 200, nil)
	if cpu.X[A0] != ^uint64(0) {
		t.Errorf("div/0 = %#x, want all ones", cpu.X[A0])
	}
	if cpu.X[A1] != 7 {
		t.Errorf("rem/0 = %d, want 7", cpu.X[A1])
	}
	if cpu.X[A2] != 1<<63 {
		t.Errorf("overflow div = %#x", cpu.X[A2])
	}
	if cpu.X[A3] != 0 {
		t.Errorf("overflow rem = %d", cpu.X[A3])
	}
	if cpu.X[A4] != 42 {
		t.Errorf("6*7 = %d", cpu.X[A4])
	}
}

func TestMulhuAgainstGo(t *testing.T) {
	// Property: mulhu matches 128-bit reference computed via math/bits
	// semantics (here recomputed with split arithmetic on the Go side).
	check := func(x, y uint64) bool {
		hi := mulhu(x, y)
		// Reference using big-ish decomposition.
		xl, xh := x&0xffffffff, x>>32
		yl, yh := y&0xffffffff, y>>32
		ll := xl * yl
		lh := xl * yh
		hl := xh * yl
		hh := xh * yh
		carry := (ll>>32 + lh&0xffffffff + hl&0xffffffff) >> 32
		ref := hh + lh>>32 + hl>>32 + carry
		return hi == ref
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestLI64Property(t *testing.T) {
	// Property: LI64 materialises arbitrary 64-bit constants exactly.
	check := func(v uint64) bool {
		a := NewAsm()
		a.LI64(A0, v)
		a.EBREAK()
		bus := newFlatBus(1 << 16)
		bus.loadProgram(a.MustAssemble())
		cpu := New(bus, 0, 0)
		for i := 0; i < 50 && !cpu.Halted; i++ {
			cpu.Step()
		}
		return cpu.Halted && cpu.X[A0] == v
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestLIProperty(t *testing.T) {
	check := func(v int32) bool {
		a := NewAsm()
		a.LI(A0, v)
		a.EBREAK()
		bus := newFlatBus(1 << 16)
		bus.loadProgram(a.MustAssemble())
		cpu := New(bus, 0, 0)
		for i := 0; i < 10 && !cpu.Halted; i++ {
			cpu.Step()
		}
		return cpu.Halted && cpu.X[A0] == uint64(int64(v))
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestExternalInterruptFlow(t *testing.T) {
	// Install a handler that increments A7 and MRETs; main spins in WFI.
	a := NewAsm()
	a.J("main")
	a.Label("handler") // must be at a known PC: instruction index 1 -> 4
	a.ADDI(A7, A7, 1)
	// Acknowledge by clearing MIP.MEIP via CSRRC.
	a.LI(T0, MIPMEIP)
	a.CSRRC(Zero, CSRMIP, T0)
	a.MRET()
	a.Label("main")
	a.LI(T0, 4) // handler address
	a.CSRRW(Zero, CSRMTVec, T0)
	a.LI(T0, MIEMEIE)
	a.CSRRS(Zero, CSRMIE, T0)
	a.LI(T0, MStatusMIE)
	a.CSRRS(Zero, CSRMStatus, T0)
	a.Label("spin")
	a.WFI()
	a.LI(T1, 3)
	a.BNE(A7, T1, "spin")
	a.EBREAK()

	bus := newFlatBus(1 << 16)
	bus.loadProgram(a.MustAssemble())
	cpu := New(bus, 0, 0)
	steps := 0
	for !cpu.Halted && steps < 10000 {
		cpu.Step()
		steps++
		// Fire an interrupt whenever the core is parked in WFI.
		if cpu.WaitingForInterrupt {
			cpu.SetExternalInterrupt(true)
		}
	}
	if !cpu.Halted {
		t.Fatalf("did not halt; pc=%#x A7=%d", cpu.PC, cpu.X[A7])
	}
	if cpu.X[A7] != 3 {
		t.Errorf("handler ran %d times, want 3", cpu.X[A7])
	}
	if cpu.Stats().Traps != 3 {
		t.Errorf("Traps = %d, want 3", cpu.Stats().Traps)
	}
}

func TestInterruptDisabledNotTaken(t *testing.T) {
	// With mstatus.MIE clear, a pending external interrupt must not trap.
	a := NewAsm()
	a.LI(T0, 100)
	a.Label("loop")
	a.ADDI(T0, T0, -1)
	a.BNE(T0, Zero, "loop")
	a.EBREAK()
	bus := newFlatBus(1 << 16)
	bus.loadProgram(a.MustAssemble())
	cpu := New(bus, 0, 0)
	cpu.SetExternalInterrupt(true)
	for i := 0; i < 1000 && !cpu.Halted; i++ {
		cpu.Step()
	}
	if !cpu.Halted {
		t.Fatal("did not halt")
	}
	if cpu.Stats().Traps != 0 {
		t.Errorf("took %d traps with interrupts disabled", cpu.Stats().Traps)
	}
}

func TestECallTrapsToHandler(t *testing.T) {
	a := NewAsm()
	a.J("main")
	a.Label("handler")
	a.LI(A0, 77)
	a.EBREAK()
	a.Label("main")
	a.LI(T0, 4)
	a.CSRRW(Zero, CSRMTVec, T0)
	a.ECALL()
	a.EBREAK() // not reached
	cpu := run(t, a, 100, nil)
	if cpu.X[A0] != 77 {
		t.Errorf("handler not taken: A0=%d", cpu.X[A0])
	}
	if cpu.MCause != CauseECall {
		t.Errorf("MCause = %#x, want %d", cpu.MCause, CauseECall)
	}
}

func TestMMIO(t *testing.T) {
	a := NewAsm()
	a.LI(T0, 0x10000)
	a.LI(T1, 123)
	a.SD(T1, T0, 0)
	a.LD(A0, T0, 8)
	a.EBREAK()
	bus := newFlatBus(1 << 16)
	bus.mmioBase = 0x10000
	var stored uint64
	bus.mmioStore = func(addr uint64, size int, v uint64) { stored = v }
	bus.mmioLoad = func(addr uint64, size int) uint64 { return 456 }
	bus.loadProgram(a.MustAssemble())
	cpu := New(bus, 0, 0)
	for i := 0; i < 100 && !cpu.Halted; i++ {
		cpu.Step()
	}
	if stored != 123 {
		t.Errorf("MMIO store saw %d", stored)
	}
	if cpu.X[A0] != 456 {
		t.Errorf("MMIO load = %d", cpu.X[A0])
	}
}

func TestCycleCSR(t *testing.T) {
	a := NewAsm()
	a.CSRRS(A0, CSRCycle, Zero)
	a.EBREAK()
	bus := newFlatBus(1 << 16)
	bus.loadProgram(a.MustAssemble())
	cpu := New(bus, 0, 0)
	cpu.Cycle = 9999
	for i := 0; i < 10 && !cpu.Halted; i++ {
		cpu.Step()
	}
	if cpu.X[A0] != 9999 {
		t.Errorf("rdcycle = %d, want 9999", cpu.X[A0])
	}
}

func TestTimingCosts(t *testing.T) {
	// 3 ALU ops + EBREAK with latency-0 bus: cycles = base per
	// instruction; a taken branch adds BranchTaken.
	a := NewAsm()
	a.ADDI(T0, Zero, 1)
	a.ADDI(T0, T0, 1)
	a.J("next")
	a.ADDI(T0, T0, 100) // skipped
	a.Label("next")
	a.EBREAK()
	bus := newFlatBus(1 << 16)
	bus.loadProgram(a.MustAssemble())
	cpu := New(bus, 0, 0)
	var total clock.Cycles
	for i := 0; i < 100 && !cpu.Halted; i++ {
		total += cpu.Step()
	}
	tm := DefaultTiming()
	want := 4*tm.Base + tm.BranchTaken
	if total != want {
		t.Errorf("total cycles = %d, want %d", total, want)
	}
	if cpu.X[T0] != 2 {
		t.Errorf("T0 = %d, want 2 (skipped instruction executed?)", cpu.X[T0])
	}
}

func TestHartID(t *testing.T) {
	a := NewAsm()
	a.CSRRS(A0, CSRMHartID, Zero)
	a.EBREAK()
	bus := newFlatBus(1 << 16)
	bus.loadProgram(a.MustAssemble())
	cpu := New(bus, 3, 0)
	for i := 0; i < 10 && !cpu.Halted; i++ {
		cpu.Step()
	}
	if cpu.X[A0] != 3 {
		t.Errorf("mhartid = %d, want 3", cpu.X[A0])
	}
}

func TestX0AlwaysZero(t *testing.T) {
	a := NewAsm()
	a.ADDI(Zero, Zero, 100)
	a.MV(A0, Zero)
	a.EBREAK()
	cpu := run(t, a, 10, nil)
	if cpu.X[A0] != 0 {
		t.Errorf("x0 = %d after write attempt", cpu.X[A0])
	}
}

func TestAssemblerErrors(t *testing.T) {
	a := NewAsm()
	a.BNE(T0, T1, "nowhere")
	if _, err := a.Assemble(); err == nil {
		t.Error("undefined label assembled without error")
	}

	b := NewAsm()
	b.ADDI(T0, Zero, 5000) // out of 12-bit range
	if _, err := b.Assemble(); err == nil {
		t.Error("oversized immediate assembled without error")
	}

	d := NewAsm()
	d.Label("x")
	d.Label("x")
	d.NOP()
	if _, err := d.Assemble(); err == nil {
		t.Error("duplicate label assembled without error")
	}
}

func TestWordOps32(t *testing.T) {
	a := NewAsm()
	a.LI(T0, 0x7fffffff)
	a.ADDIW(A0, T0, 1) // wraps to INT32_MIN, sign-extended
	a.ADDW(A1, T0, T0) // 0xfffffffe sign-extended
	a.LI(T1, 1)
	a.SUBW(A2, Zero, T1) // -1
	a.EBREAK()
	cpu := run(t, a, 100, nil)
	if cpu.X[A0] != 0xffffffff80000000 {
		t.Errorf("ADDIW wrap = %#x", cpu.X[A0])
	}
	if cpu.X[A1] != 0xfffffffffffffffe {
		t.Errorf("ADDW = %#x", cpu.X[A1])
	}
	if cpu.X[A2] != ^uint64(0) {
		t.Errorf("SUBW = %#x", cpu.X[A2])
	}
}

func TestShifts(t *testing.T) {
	a := NewAsm()
	a.LI(T0, -8)
	a.SRAI(A0, T0, 1) // -4
	a.SRLI(A1, T0, 60)
	a.SLLI(A2, T0, 2) // -32
	a.EBREAK()
	cpu := run(t, a, 100, nil)
	if int64(cpu.X[A0]) != -4 {
		t.Errorf("SRAI = %d", int64(cpu.X[A0]))
	}
	if cpu.X[A1] != 0xf {
		t.Errorf("SRLI = %#x", cpu.X[A1])
	}
	if int64(cpu.X[A2]) != -32 {
		t.Errorf("SLLI = %d", int64(cpu.X[A2]))
	}
}
