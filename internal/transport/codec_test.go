package transport

import (
	"bufio"
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/token"
)

// encodeV3 is a test helper producing one complete v3 frame.
func encodeV3(seq uint64, b *token.Batch) []byte {
	return appendFrame(nil, seq, b)
}

// decodeV3 decodes one complete v3 frame from raw bytes.
func decodeV3(raw []byte) (uint64, *token.Batch, error) {
	r := bufio.NewReader(bytes.NewReader(raw))
	seq, err := readFrameSeq(r)
	if err != nil {
		return 0, nil, err
	}
	b := token.NewBatch(1)
	if err := readBatchV3(r, b); err != nil {
		return seq, nil, err
	}
	return seq, b, nil
}

// randomBatch builds a reproducible batch with a mix of idle stretches,
// isolated tokens and contiguous bursts (the traffic shapes the run-length
// codec was designed around), flipping the Last flag inside bursts so run
// boundaries land mid-burst too.
func randomBatch(rng *rand.Rand) *token.Batch {
	n := 1 + rng.Intn(200)
	b := token.NewBatch(n)
	for off := 0; off < n; {
		switch rng.Intn(3) {
		case 0: // idle gap
			off += 1 + rng.Intn(8)
		case 1: // isolated token
			b.Put(off, token.Token{Data: rng.Uint64(), Valid: true, Last: rng.Intn(2) == 0})
			off += 2
		default: // contiguous burst
			burst := 1 + rng.Intn(12)
			for i := 0; i < burst && off < n; i++ {
				b.Put(off, token.Token{Data: rng.Uint64(), Valid: true, Last: rng.Intn(4) == 0})
				off++
			}
		}
	}
	return b
}

// TestCodecV3RoundTrip: for arbitrary batches, the v3 frame decodes back
// to the identical batch (sequence number included), and the v2 codec —
// kept verbatim as the oracle — agrees on the semantics: decoding the v2
// encoding of the same batch yields the same result as decoding the v3
// encoding.
func TestCodecV3RoundTrip(t *testing.T) {
	check := func(seed int64, seq uint64) bool {
		b := randomBatch(rand.New(rand.NewSource(seed)))
		gotSeq, got, err := decodeV3(encodeV3(seq, b))
		if err != nil || gotSeq != seq || !reflect.DeepEqual(b, got) {
			t.Logf("v3 round-trip: seq %d->%d err %v", seq, gotSeq, err)
			return false
		}
		oracle := token.NewBatch(1)
		if err := ReadBatch(bytes.NewReader(encode(b)), oracle); err != nil {
			t.Logf("v2 oracle decode: %v", err)
			return false
		}
		return reflect.DeepEqual(oracle, got)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// TestCodecV3Compactness pins the size wins the codec exists for: an
// empty (idle-link) frame is a few header bytes, and a dense contiguous
// frame beats the v2 fixed-width framing by well over the 1.5x floor.
func TestCodecV3Compactness(t *testing.T) {
	idle := encodeV3(7, token.NewBatch(6400))
	if len(idle) > 4 {
		t.Errorf("idle frame is %d bytes, want <= 4", len(idle))
	}
	const n = 512
	dense := token.NewBatch(n)
	for i := 0; i < n; i++ {
		dense.Put(i, token.Token{Data: uint64(i), Valid: true, Last: i == n-1})
	}
	v3 := len(encodeV3(7, dense))
	v2 := int(frameWireBytes(n))
	if float64(v2) < 1.5*float64(v3) {
		t.Errorf("dense frame: v3 %d bytes vs v2 %d bytes, want >= 1.5x smaller", v3, v2)
	}
}

// TestCodecV3RejectsCorrupt throws hand-crafted malformed frames at the
// decoder: every one must error (never panic), and truncations must
// surface as io.ErrUnexpectedEOF so the bridge treats them as torn frames.
func TestCodecV3RejectsCorrupt(t *testing.T) {
	// A valid single-run frame to mutate: seq 5, N=16, one 2-slot run at
	// offset 3.
	b := token.NewBatch(16)
	b.Put(3, token.Token{Data: 1, Valid: true})
	b.Put(4, token.Token{Data: 2, Valid: true})
	valid := encodeV3(5, b)
	if _, _, err := decodeV3(valid); err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}

	cases := []struct {
		name string
		raw  []byte
		torn bool // must unwrap to io.ErrUnexpectedEOF
	}{
		{"zero cycles", []byte{5, 0}, false},
		{"cycle count overflow", append([]byte{5}, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1), false},
		{"run count past occupancy ceiling", []byte{5, 16, 0xff, 0xff, 0xff, 0x7f}, false},
		{"empty run descriptor", []byte{5, 16, 1, 0, 0}, false},
		{"gap past batch end", []byte{5, 16, 1, 40, 2}, false},
		{"run length past batch end", []byte{5, 16, 1, 0, 40 << 1}, false},
		{"run spans past batch end", []byte{5, 16, 1, 10, 10 << 1}, false},
		{"truncated mid-cycle-varint", []byte{5, 0x80}, true},
		{"truncated before run count", valid[:2], true},
		{"truncated mid-descriptor", valid[:4], true},
		{"truncated mid-data-word", valid[:len(valid)-3], true},
		{"second run overlap unrepresentable", func() []byte {
			// Two runs: the second one's gap varint is forced to zero, so
			// it abuts the first — still valid. Then mutate the second
			// run's length to overrun N instead.
			bb := token.NewBatch(8)
			bb.Put(0, token.Token{Data: 1, Valid: true})
			bb.Put(2, token.Token{Data: 2, Valid: true})
			raw := encodeV3(0, bb)
			raw[len(raw)-9] = 20 << 1 // second run's descriptor: length 20 in an 8-cycle batch
			return raw
		}(), false},
	}
	for _, tc := range cases {
		_, _, err := decodeV3(tc.raw)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if tc.torn && !(err == io.ErrUnexpectedEOF || bytes.Contains([]byte(err.Error()), []byte("unexpected EOF"))) {
			t.Errorf("%s: err = %v, want unexpected EOF", tc.name, err)
		}
	}
}

// FuzzReadBatchV3 throws arbitrary byte streams at the v3 frame decoder.
// Corrupt input must error, never panic; anything accepted must round-trip
// through the canonical encoder, and must decode to exactly what the v2
// oracle codec produces for the same batch.
func FuzzReadBatchV3(f *testing.F) {
	f.Add(encodeV3(0, token.NewBatch(4)))
	sparse := token.NewBatch(32)
	sparse.Put(3, token.Token{Data: 0xdeadbeef, Valid: true})
	sparse.Put(17, token.Token{Data: 1, Valid: true, Last: true})
	f.Add(encodeV3(9, sparse))
	dense := token.NewBatch(8)
	for i := 0; i < 8; i++ {
		dense.Put(i, token.Token{Data: uint64(i) << 40, Valid: true})
	}
	f.Add(encodeV3(1, dense))
	valid := encodeV3(9, sparse)
	f.Add(valid[:len(valid)-5]) // truncated mid-data
	f.Add(valid[:3])            // truncated mid-header
	f.Add([]byte{})
	mangled := append([]byte(nil), valid...)
	mangled[3] = 0xff // run descriptor corruption
	f.Add(mangled)

	f.Fuzz(func(t *testing.T, data []byte) {
		seq, got, err := decodeV3(data)
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		// Accepted: the canonical re-encoding must decode to the same
		// batch (input varints may be non-minimal, so bytes can differ).
		seq2, got2, err := decodeV3(encodeV3(seq, got))
		if err != nil {
			t.Fatalf("re-encoded accepted frame failed to decode: %v", err)
		}
		if seq != seq2 || !reflect.DeepEqual(got, got2) {
			t.Fatalf("round-trip changed frame: seq %d->%d, %+v vs %+v", seq, seq2, got, got2)
		}
		// Cross-check against the v2 oracle: encode the accepted batch
		// with the v2 codec and decode it; semantics must match.
		oracle := token.NewBatch(1)
		if err := ReadBatch(bytes.NewReader(encode(got)), oracle); err != nil {
			t.Fatalf("v2 oracle rejected an accepted batch: %v", err)
		}
		if !reflect.DeepEqual(oracle, got) {
			t.Fatalf("v3 and v2 disagree: %+v vs %+v", got, oracle)
		}
	})
}
