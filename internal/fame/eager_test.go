package fame

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/clock"
	"repro/internal/token"
)

// passthru forwards tokens from port 0 to port 1, the minimal two-port
// pass-through for prepass tests.
type passthru struct {
	name string
}

func (r *passthru) Name() string  { return r.name }
func (r *passthru) NumPorts() int { return 2 }
func (r *passthru) TickBatch(n int, in, out []*token.Batch) {
	for _, s := range in[0].Slots {
		out[1].Put(int(s.Offset), s.Tok)
	}
}

// eagerRelay additionally implements EagerStarter and checks the
// contract from the caller's side: StartBatch runs exactly once before
// each TickBatch, on the same input storage the tick then receives.
type eagerRelay struct {
	passthru
	mu       sync.Mutex
	starts   int
	ticks    int
	orderBad bool
	inBad    bool
	lastIn0  *token.Batch
	startSum uint64 // token data observed at StartBatch time
}

func (e *eagerRelay) StartBatch(n int, in []*token.Batch) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.starts++
	e.lastIn0 = in[0]
	for _, s := range in[0].Slots {
		e.startSum += s.Tok.Data
	}
}

func (e *eagerRelay) TickBatch(n int, in, out []*token.Batch) {
	e.mu.Lock()
	if e.starts != e.ticks+1 {
		e.orderBad = true
	}
	if in[0] != e.lastIn0 {
		e.inBad = true
	}
	e.ticks++
	e.mu.Unlock()
	e.passthru.TickBatch(n, in, out)
}

// countingInjector counts FilterInput calls per endpoint so the test can
// assert the prepass filters an eager endpoint's inputs exactly once per
// round (not zero times, not twice).
type countingInjector struct {
	mu      sync.Mutex
	inCalls map[string]int
}

func (c *countingInjector) FilterInput(ep string, port int, start clock.Cycles, b *token.Batch) {
	c.mu.Lock()
	c.inCalls[ep+":"+string(rune('0'+port))]++
	c.mu.Unlock()
}
func (c *countingInjector) FilterOutput(string, int, clock.Cycles, *token.Batch) {}

// TestEagerStarterPrepass drives a topology containing an EagerStarter
// endpoint through all three schedulers and asserts, for each: StartBatch
// ran once per round strictly before TickBatch with the identical input
// batch; the injector filtered the eager inputs exactly once per round;
// and the delivered token stream is bit-identical to the same topology
// built with a plain (non-eager) passthru.
func TestEagerStarterPrepass(t *testing.T) {
	const lat = 8
	const cycles = 16 * lat

	type mode struct {
		name string
		run  func(r *Runner) error
	}
	modes := []mode{
		{"sequential", func(r *Runner) error { return r.Run(cycles) }},
		{"parallel", func(r *Runner) error {
			if err := r.SetWorkers(2); err != nil {
				return err
			}
			return r.RunParallel(cycles)
		}},
		{"multiplexed", func(r *Runner) error {
			if err := r.SetWorkers(2); err != nil {
				return err
			}
			r.SetMultiplexed(true)
			return r.RunParallel(cycles)
		}},
	}

	build := func(mid Endpoint) (*Runner, *Sink) {
		r := NewRunner()
		src := NewSource("src")
		sink := NewSink("sink")
		r.Add(src)
		r.Add(mid)
		r.Add(sink)
		if err := r.Connect(src, 0, mid, 0, lat); err != nil {
			t.Fatal(err)
		}
		if err := r.Connect(mid, 1, sink, 0, lat); err != nil {
			t.Fatal(err)
		}
		src.EmitPacketAt(3, []uint64{7, 8, 9})
		src.EmitPacketAt(40, []uint64{11})
		return r, sink
	}

	for _, md := range modes {
		t.Run(md.name, func(t *testing.T) {
			inj := &countingInjector{inCalls: make(map[string]int)}

			plainR, plainSink := build(&passthru{name: "mid"})
			plainR.SetInjector(inj)
			if err := md.run(plainR); err != nil {
				t.Fatal(err)
			}

			eg := &eagerRelay{passthru: passthru{name: "mid"}}
			eagerR, eagerSink := build(eg)
			eagerInj := &countingInjector{inCalls: make(map[string]int)}
			eagerR.SetInjector(eagerInj)
			if err := md.run(eagerR); err != nil {
				t.Fatal(err)
			}

			rounds := cycles / lat
			if eg.starts != rounds || eg.ticks != rounds {
				t.Errorf("starts = %d, ticks = %d, want %d each", eg.starts, eg.ticks, rounds)
			}
			if eg.orderBad {
				t.Error("TickBatch ran without a preceding StartBatch for its round")
			}
			if eg.inBad {
				t.Error("TickBatch input differs from the batch StartBatch received")
			}
			if eg.startSum == 0 {
				t.Error("StartBatch never observed the emitted tokens")
			}
			if !reflect.DeepEqual(plainSink.Received, eagerSink.Received) {
				t.Errorf("eager and plain streams differ:\nplain: %+v\neager: %+v",
					plainSink.Received, eagerSink.Received)
			}
			for _, key := range []string{"mid:0", "mid:1"} {
				if got, want := eagerInj.inCalls[key], inj.inCalls[key]; got != want {
					t.Errorf("injector FilterInput(%s) ran %d times under eager, %d plain", key, got, want)
				}
			}
		})
	}
}
