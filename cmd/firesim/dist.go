// Distributed multi-process simulation: `firesim run-dist` is the
// coordinator — it spawns `firesim shard` worker processes (re-execing
// this same binary), drives them through checkpointed lockstep slices,
// and self-heals crashes, stalls and torn checkpoints by rewinding the
// whole cluster to the last coordinated generation and resharding.
//
//	firesim run-dist -nodes 8 -procs 3 -horizon 16384 -verify
//	firesim run-dist -nodes 8 -procs 3 -chaos 'kill:shard1@4096,tear:sub0' -verify
//	firesim shard    -control 127.0.0.1:9000 -name shard0
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"time"

	"repro/internal/clock"
	"repro/internal/faults"
	"repro/internal/manager"
)

func cmdShard(args []string) error {
	fs := flag.NewFlagSet("shard", flag.ExitOnError)
	control := fs.String("control", os.Getenv("FIRESIM_SHARD_CONTROL"), "coordinator control address host:port")
	name := fs.String("name", os.Getenv("FIRESIM_SHARD_NAME"), "process name for diagnostics")
	quiet := fs.Bool("quiet", false, "suppress lifecycle log lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *control == "" {
		return fmt.Errorf("shard: -control (or FIRESIM_SHARD_CONTROL) is required")
	}
	cfg := manager.ShardConfig{ControlAddr: *control, Name: *name}
	if !*quiet {
		cfg.Log = func(format string, a ...any) { fmt.Fprintf(os.Stderr, "shard "+format+"\n", a...) }
	}
	return manager.RunShard(cfg)
}

func cmdRunDist(args []string) error {
	fs := flag.NewFlagSet("run-dist", flag.ExitOnError)
	nodes := fs.Int("nodes", 8, "servers on the rack (one partition unit each; ignored with -tree)")
	tree := fs.String("tree", "", "uniform tree fanouts, e.g. '4,8,8' for 256 nodes (overrides -nodes)")
	cutLevel := fs.Int("cut-level", 1, "tree depth to cut partition units at (with -tree; 1 = root downlinks)")
	procs := fs.Int("procs", 3, "shard worker processes")
	horizon := fs.Uint64("horizon", 16384, "target cycle to run to (multiple of -link)")
	ckptEvery := fs.Uint64("ckpt-every", 2048, "coordinated checkpoint interval in cycles (multiple of -link)")
	link := fs.Uint64("link", 512, "link latency in cycles (must be even; partitions step at link/2)")
	seed := fs.Uint64("seed", 42, "deterministic seed")
	parallel := fs.Bool("parallel", false, "use the worker-pool scheduler inside every process")
	workers := fs.Int("workers", 3, "workers per process when -parallel")
	chaosSpec := fs.String("chaos", "", "failure injection, e.g. 'kill:shard1@4096,stall:shard2@8192+2500,tear:sub0'")
	respawns := fs.Int("respawns", 0, "replacement processes allowed before re-packing onto survivors")
	maxRecoveries := fs.Int("max-recoveries", 5, "failures to heal before giving up")
	verify := fs.Bool("verify", false, "re-run in-process and check bit-identity component by component")
	dir := fs.String("dir", "", "checkpoint directory (default: a temp dir, removed on success)")
	quiet := fs.Bool("quiet", false, "suppress coordinator log lines")
	if err := fs.Parse(args); err != nil {
		return err
	}

	dcfg := manager.DeployConfig{LinkLatency: clock.Cycles(*link), Seed: *seed}
	var spec manager.ClusterSpec
	var err error
	if *tree != "" {
		fanouts, ferr := parseFanouts(*tree)
		if ferr != nil {
			return ferr
		}
		spec, err = manager.TreeSpec(fanouts, manager.SingleCore, dcfg, *cutLevel)
		total := 1
		for _, f := range fanouts {
			total *= f
		}
		*nodes = total
	} else {
		spec, err = manager.RackSpec(*nodes, dcfg)
	}
	if err != nil {
		return err
	}
	spec.Parallel = *parallel
	if *parallel {
		spec.Workers = *workers
	}
	// A paced stream ring: serializable (the generator is part of node
	// checkpoints) and every frame crosses the partition boundary.
	spec.Workload = &manager.WorkloadSpec{Kind: "stream", StartAt: 600, FrameBytes: 200, Gbps: 1, StopAt: *horizon}

	chaos, err := faults.ParseChaos(*chaosSpec)
	if err != nil {
		return err
	}
	baseDir := *dir
	if baseDir == "" {
		baseDir, err = os.MkdirTemp("", "firesim-dist-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(baseDir)
	}

	self, err := os.Executable()
	if err != nil {
		return err
	}
	logf := func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	if *quiet {
		logf = nil
	}
	start := time.Now()
	report, err := manager.RunDistributed(manager.CoordinatorConfig{
		Spec:          spec,
		Procs:         *procs,
		BaseDir:       baseDir,
		CkptEvery:     *ckptEvery,
		Horizon:       *horizon,
		MaxRecoveries: *maxRecoveries,
		RespawnBudget: *respawns,
		Chaos:         chaos,
		Spawn: func(name, controlAddr string) *exec.Cmd {
			cmd := exec.Command(self, "shard", "-control", controlAddr, "-name", name, "-quiet")
			cmd.Stderr = os.Stderr
			return cmd
		},
		Log: logf,
	})
	if err != nil {
		return err
	}

	fmt.Printf("run-dist: %d nodes / %d procs to cycle %d in %s\n", *nodes, report.FinalProcs, report.Cycle, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  epochs %d, recoveries %d, combined state hash %016x\n", report.Epochs, report.Recoveries, report.Combined)

	if *verify {
		ref, err := manager.ReferenceHashes(spec, *horizon)
		if err != nil {
			return fmt.Errorf("reference run: %w", err)
		}
		bad := 0
		for k, want := range ref {
			if got, ok := report.Hashes[k]; !ok || got != want {
				fmt.Printf("  MISMATCH %s: distributed %016x, reference %016x\n", k, report.Hashes[k], want)
				bad++
			}
		}
		if len(report.Hashes) != len(ref) || bad > 0 || report.Combined != manager.CombineHashes(ref) {
			return fmt.Errorf("distributed run is NOT bit-identical to the in-process reference (%d mismatching components)", bad)
		}
		fmt.Printf("  verify: bit-identical to the in-process reference (%d components)\n", len(ref))
	}
	return nil
}
