package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestCounterGaugeConcurrency hammers one counter, one gauge and one
// histogram from many goroutines; under -race this doubles as the data
// race check, and the final values verify no increments were lost.
func TestCounterGaugeConcurrency(t *testing.T) {
	reg := NewRegistry("race")
	c := reg.Counter("events_total")
	g := reg.Gauge("depth")
	h := reg.Histogram("latency_nanos")

	const workers = 8
	const perWorker = 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(uint64(i%1000 + 1))
				// get-or-create from multiple goroutines must also be safe
				// and return the same instrument.
				if reg.Counter("events_total") != c {
					panic("registry returned a different counter")
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	// Snapshotting while idle must agree with direct reads.
	s := reg.Snapshot()
	if s.Counters["events_total"] != workers*perWorker {
		t.Errorf("snapshot counter = %d", s.Counters["events_total"])
	}
}

// TestSnapshotWhileWriting takes snapshots concurrently with writers;
// it asserts monotonicity of the counter across snapshots (and, under
// -race, the absence of data races on the snapshot path).
func TestSnapshotWhileWriting(t *testing.T) {
	reg := NewRegistry("live")
	c := reg.Counter("ticks_total")
	h := reg.Histogram("tick_nanos")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50_000; i++ {
			c.Inc()
			h.Observe(uint64(i))
		}
	}()
	var last uint64
	for i := 0; i < 100; i++ {
		s := reg.Snapshot()
		v := s.Counters["ticks_total"]
		if v < last {
			t.Fatalf("counter went backwards: %d after %d", v, last)
		}
		last = v
	}
	<-done
}

// TestHistogramBuckets pins the power-of-two bucketing: observation v
// lands in the bucket whose upper bound is the next power of two.
func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0) // bucket 0, bound 0
	h.Observe(1) // bucket 1, bound 2
	h.Observe(2) // bucket 2, bound 4
	h.Observe(3) // bucket 2, bound 4
	h.Observe(4) // bucket 3, bound 8
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d", got)
	}
	if got := h.Sum(); got != 10 {
		t.Fatalf("sum = %d", got)
	}
	if got := h.Quantile(0.5); got != 4 {
		t.Errorf("p50 bound = %d, want 4", got)
	}
	if got := h.Quantile(1.0); got != 8 {
		t.Errorf("p100 bound = %d, want 8", got)
	}
	if got := h.Mean(); got != 2 {
		t.Errorf("mean = %v, want 2", got)
	}
}

// golden registry used by both output-format tests.
func goldenRegistry() *Registry {
	reg := NewRegistry("golden")
	reg.Counter("fame_rounds_total").Add(12)
	reg.Counter(Label("transport_bytes_sent_total", "bridge", "east")).Add(4096)
	reg.Gauge(Label("switch_out_queued_bytes", "switch", "tor0")).Set(1536)
	h := reg.Histogram(Label("fame_tick_nanos", "endpoint", "tor0-s0"))
	h.Observe(3)
	h.Observe(5)
	h.Observe(900)
	return reg
}

func TestGoldenJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{
  "registry": "golden",
  "counters": {
    "fame_rounds_total": 12,
    "transport_bytes_sent_total{bridge=\"east\"}": 4096
  },
  "gauges": {
    "switch_out_queued_bytes{switch=\"tor0\"}": 1536
  },
  "histograms": {
    "fame_tick_nanos{endpoint=\"tor0-s0\"}": {
      "count": 3,
      "sum": 908,
      "buckets": [
        {
          "le": 4,
          "count": 1
        },
        {
          "le": 8,
          "count": 1
        },
        {
          "le": 1024,
          "count": 1
        }
      ]
    }
  }
}
`
	if got := buf.String(); got != want {
		t.Errorf("JSON output mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// And it must round-trip as valid JSON.
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if s.Counters["fame_rounds_total"] != 12 {
		t.Errorf("round-trip counter = %d", s.Counters["fame_rounds_total"])
	}
}

func TestGoldenPrometheus(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE fame_rounds_total counter",
		"fame_rounds_total 12",
		"# TYPE transport_bytes_sent_total counter",
		`transport_bytes_sent_total{bridge="east"} 4096`,
		"# TYPE switch_out_queued_bytes gauge",
		`switch_out_queued_bytes{switch="tor0"} 1536`,
		"# TYPE fame_tick_nanos histogram",
		`fame_tick_nanos_bucket{endpoint="tor0-s0",le="4"} 1`,
		`fame_tick_nanos_bucket{endpoint="tor0-s0",le="8"} 2`,
		`fame_tick_nanos_bucket{endpoint="tor0-s0",le="1024"} 3`,
		`fame_tick_nanos_bucket{endpoint="tor0-s0",le="+Inf"} 3`,
		`fame_tick_nanos_sum{endpoint="tor0-s0"} 908`,
		`fame_tick_nanos_count{endpoint="tor0-s0"} 3`,
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("Prometheus output mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestTableRendersEveryKind(t *testing.T) {
	out := goldenRegistry().Snapshot().Table().String()
	for _, want := range []string{"fame_rounds_total", "counter", "gauge", "histogram", "n=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	got := Label("m", "k", `a"b\c`)
	want := `m{k="a\"b\\c"}`
	if got != want {
		t.Errorf("Label = %s, want %s", got, want)
	}
}

func TestKindCollisionPanics(t *testing.T) {
	reg := NewRegistry("collide")
	reg.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering gauge over counter name")
		}
	}()
	reg.Gauge("x")
}
