// memcached-qos reproduces the Section IV-E experiment interactively: a
// 4-core memcached server under mutilate load from seven client nodes,
// with 4 threads, 5 threads (one more than cores), and 4 threads pinned
// one-to-a-core. The fifth thread must share a core, and its
// timeslice-scale stalls inflate tail latency while the median barely
// moves.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/stats"
)

func run(threads int, pinned bool, qps float64) (p50, p95 float64) {
	cluster, err := core.Deploy(core.Rack("tor0", 8, core.QuadCore), core.DeployConfig{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	apps.NewMemcachedServer(cluster.Servers[0], apps.MemcachedConfig{Threads: threads, Pinned: pinned})

	window := clock.Cycles(160_000_000) // 50 ms of target time
	var gens []*apps.Mutilate
	for i := 1; i < 8; i++ {
		gens = append(gens, apps.NewMutilate(cluster.Servers[i], apps.MutilateConfig{
			Server:      cluster.Servers[0].IP(),
			QPS:         qps / 7,
			Connections: 3,
			Duration:    window,
			Seed:        uint64(i),
		}))
	}
	if err := cluster.RunFor(window + 3_200_000); err != nil {
		log.Fatal(err)
	}
	var all stats.Sample
	for _, g := range gens {
		for p := 1.0; p <= 99; p++ {
			all.Add(g.Latencies.Percentile(p))
		}
	}
	return all.Median(), all.P95()
}

func main() {
	const qps = 135_000 // near the ~150k QPS capacity of 4 cores
	t := stats.NewTable("Configuration", "p50 (us)", "p95 (us)")
	for _, cfg := range []struct {
		label   string
		threads int
		pinned  bool
	}{
		{"4 threads", 4, false},
		{"5 threads", 5, false},
		{"4 threads pinned", 4, true},
	} {
		p50, p95 := run(cfg.threads, cfg.pinned, qps)
		t.AddRow(cfg.label, p50, p95)
	}
	fmt.Printf("memcached QoS at %d offered QPS (8-node cluster, 200 Gbit/s / 2 us network):\n\n%s\n", qps, t.String())
	fmt.Println("Expected shape (paper Fig. 7): the 5-thread p95 is sharply inflated while")
	fmt.Println("its p50 moves far less; pinning smooths the 4-thread tail.")
}
