package fame

import (
	"fmt"
	"sort"

	"repro/internal/clock"
	"repro/internal/snapshot"
)

// This file holds the runner APIs the multi-process partition layer
// (internal/manager) builds on. Runner.Save/Restore key channels by
// endpoint INDEX, which is perfect when checkpoint and restore target are
// the same topology — but a partition checkpoint must be restorable into
// a runner that hosts a different SET of endpoints (a re-packed shard
// carrying two subtrees instead of one). Names survive re-packing; global
// indices do not. SaveChannels/RestoreChannels therefore key each channel
// by (producer endpoint name, port) and take an include predicate naming
// the partition unit's members, so one runner can checkpoint and restore
// each hosted unit independently.

// chanConsumer maps each channel to the endpoint index consuming it.
func (r *Runner) chanConsumer() map[*channel]int {
	consOf := make(map[*channel]int, 2*len(r.links))
	for i := range r.endpoints {
		for _, ch := range r.inCh[i] {
			if ch != nil {
				consOf[ch] = i
			}
		}
	}
	return consOf
}

// unitChannel is one (producer, port) entry selected by an include
// predicate, in the canonical (name, port) order both save and restore
// walk.
type unitChannel struct {
	name string
	ep   int
	port int
	ch   *channel
}

// unitChannels lists the channels whose producer AND consumer both
// satisfy include, sorted by producer name then port. Requiring both ends
// keeps a unit's stream self-contained: a channel reaching outside the
// unit would need state from an endpoint some other process owns.
func (r *Runner) unitChannels(include func(name string) bool) []unitChannel {
	consOf := r.chanConsumer()
	var out []unitChannel
	for i, e := range r.endpoints {
		if !include(e.Name()) {
			continue
		}
		for p, ch := range r.outCh[i] {
			if ch == nil {
				continue
			}
			cons := r.endpoints[consOf[ch]]
			if !include(cons.Name()) {
				continue
			}
			out = append(out, unitChannel{name: e.Name(), ep: i, port: p, ch: ch})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].name != out[b].name {
			return out[a].name < out[b].name
		}
		return out[a].port < out[b].port
	})
	return out
}

// SaveChannels writes the in-flight token state of every channel whose
// producer and consumer endpoints both satisfy include, keyed by producer
// name and port. Like Save it is only legal at a batch boundary, where
// each channel holds exactly latency/step batches.
func (r *Runner) SaveChannels(w *snapshot.Writer, include func(name string) bool) error {
	if err := r.build(); err != nil {
		return err
	}
	if r.poisoned {
		return ErrPoisoned
	}
	chans := r.unitChannels(include)
	w.Begin("fame.Channels", 1)
	w.U64(uint64(r.step))
	w.Uvarint(uint64(len(chans)))
	for _, uc := range chans {
		want := int(uc.ch.latency / r.step)
		if uc.ch.queue.len() != want {
			return fmt.Errorf("fame: channel %q port %d holds %d batches, want %d (checkpoint only at batch boundaries)",
				uc.name, uc.port, uc.ch.queue.len(), want)
		}
		w.String(uc.name)
		w.Uvarint(uint64(uc.port))
		w.U64(uint64(uc.ch.latency))
		for k := 0; k < uc.ch.queue.len(); k++ {
			if err := uc.ch.queue.at(k).Save(w); err != nil {
				return err
			}
		}
	}
	return w.Err()
}

// RestoreChannels overwrites the in-flight batches of the channels
// selected by include from a SaveChannels stream. The runner must expose
// the same unit under the same names: every saved channel must resolve,
// and every channel include selects in this topology must appear in the
// stream. It does not touch r.cycle (one runner may restore several units
// in sequence) — finish a partition-level restore with SetCycle.
func (r *Runner) RestoreChannels(rd *snapshot.Reader, include func(name string) bool) error {
	if err := r.build(); err != nil {
		return err
	}
	if err := rd.Begin("fame.Channels", 1); err != nil {
		return err
	}
	step := clock.Cycles(rd.U64())
	n := rd.Uvarint()
	if err := rd.Err(); err != nil {
		return err
	}
	if step != r.step {
		return fmt.Errorf("fame: channel checkpoint step %d, runner step %d", step, r.step)
	}
	chans := r.unitChannels(include)
	if n != uint64(len(chans)) {
		return fmt.Errorf("fame: channel checkpoint has %d channels, unit has %d", n, len(chans))
	}
	byKey := make(map[string]unitChannel, len(chans))
	for _, uc := range chans {
		byKey[fmt.Sprintf("%s/%d", uc.name, uc.port)] = uc
	}
	seen := make(map[string]bool, len(chans))
	for c := uint64(0); c < n; c++ {
		name := rd.String(256)
		port := int(rd.Uvarint())
		lat := clock.Cycles(rd.U64())
		if err := rd.Err(); err != nil {
			return err
		}
		key := fmt.Sprintf("%s/%d", name, port)
		uc, ok := byKey[key]
		if !ok {
			return fmt.Errorf("fame: channel checkpoint entry %q not present in unit", key)
		}
		if seen[key] {
			return fmt.Errorf("fame: channel checkpoint repeats %q", key)
		}
		seen[key] = true
		if uc.ch.latency != lat {
			return fmt.Errorf("fame: channel checkpoint latency %d for %q, topology has %d", lat, key, uc.ch.latency)
		}
		depth := int(lat / r.step)
		for uc.ch.queue.len() > 0 {
			uc.ch.recycle(uc.ch.queue.pop())
		}
		for k := 0; k < depth; k++ {
			b := uc.ch.take(int(r.step))
			if err := b.Restore(rd); err != nil {
				uc.ch.recycle(b)
				return err
			}
			if b.N != int(r.step) {
				return fmt.Errorf("fame: channel checkpoint batch window %d, step is %d", b.N, r.step)
			}
			uc.ch.push(b)
		}
	}
	return nil
}

// SetCycle jumps target time to c (a multiple of Step), completing a
// partition-level restore after the unit's components and channels have
// been rewound. It clears panic poison: the caller has just replaced
// whatever mid-round state the panic tore.
func (r *Runner) SetCycle(c clock.Cycles) error {
	if err := r.build(); err != nil {
		return err
	}
	if c%r.step != 0 {
		return fmt.Errorf("fame: cycle %d is not a multiple of step %d", c, r.step)
	}
	r.cycle = c
	r.poisoned = false
	return nil
}
