package fame

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/hostplatform"
	"repro/internal/token"
)

// This file implements the parallel scheduler: a fixed, GOMAXPROCS-aware
// worker pool over a topology-aware partition of endpoints, replacing the
// original goroutine-per-endpoint design (which benchmarked *slower* than
// the sequential scheduler at every topology size — two Go channel
// operations per port per round plus scheduler churn swamped the
// per-round work).
//
// The new design follows the paper's actual performance mechanism:
// simulators run decoupled for up to a link latency of target cycles
// between synchronizations.
//
//   - partition() groups endpoints so that pairs exchanging tokens
//     co-locate on one worker whenever load balance allows. A link whose
//     two ends share a worker needs no synchronization at all: the worker
//     drives the link's persistent batch ring exactly as the sequential
//     scheduler does.
//   - links that do cross workers become spscRing pairs (data + recycled
//     storage) sized to the link's latency depth. A worker can execute up
//     to LinkLatency/Step rounds ahead of a neighbour before a ring runs
//     empty/full, so one cache-line handoff is amortised over the whole
//     slack window instead of paying two channel ops per port per round.
//   - each worker ticks its endpoints in global registration order, which
//     together with FIFO link order makes the token streams bit-identical
//     to the sequential scheduler — with or without an Injector installed
//     (hooks remain keyed on absolute target cycle).
//
// Worker count: SetWorkers(n) (0 = GOMAXPROCS), capped at the endpoint
// count. With one worker the partition is a single group with zero
// cross-worker links, and runParallel runs the sequential round loop
// directly — on a single-core host "actually parallel" means "no slower
// than sequential", which the old design failed.
//
// Scheduling granularity: by default each endpoint is its own schedule
// entry within its worker. SetMultiplexed(true) selects the FAME-style
// many-nodes-per-worker mode instead, where a worker's whole endpoint
// group is fused into one scheduling unit (see mux.go) — datacenter-scale
// topologies then need only Workers() scheduling units, not one per
// endpoint.
//
// Deadlock freedom: every cross-worker data ring has capacity ≥ depth+1
// (at least one free slot beyond the seeded in-flight population), so any
// wait-for cycle would need positive total slack around a topology cycle;
// intra-worker ordering edges are acyclic (index order) and every
// inter-worker edge carries slack ≥ 1, so no cycle of waits can close.

// SetWorkers configures how many workers RunParallel schedules endpoints
// onto: 0 (the default) means runtime.GOMAXPROCS. Like SetInjector it may
// be called between runs; mid-run changes are not supported. The worker
// count is host-side tuning only — token streams are bit-identical for
// every value.
func (r *Runner) SetWorkers(n int) error {
	if n < 0 {
		return fmt.Errorf("fame: worker count must be >= 0 (0 = GOMAXPROCS), got %d", n)
	}
	r.workers = n
	return nil
}

// Workers reports the worker count the next RunParallel will use before
// capping at the endpoint count: the SetWorkers value, or GOMAXPROCS when
// unset.
func (r *Runner) Workers() int {
	if r.workers > 0 {
		return r.workers
	}
	return runtime.GOMAXPROCS(0)
}

// EffectiveWorkers reports how many workers the most recent RunParallel
// actually ran after capping at the endpoint count and dropping empty
// partition bins (1 when the run delegated to the sequential loop, 0
// before any RunParallel). Benchmarks record this per sweep point so a
// measured speedup is attributable to the worker count that produced it,
// not the requested one.
func (r *Runner) EffectiveWorkers() int { return r.effWorkers }

// SchedUnits reports how many scheduling units the most recent
// RunParallel compiled: one per endpoint in the default pool mode (the
// sequential delegate also schedules each endpoint individually), one per
// worker in multiplexed mode. This is the number the many-nodes-per-worker
// mode exists to bound: a 1024-node topology multiplexed onto 8 workers
// runs as 8 units, not ~1100.
func (r *Runner) SchedUnits() int { return r.schedUnits }

// SetRingSlack adds n rounds of producer-side headroom to every
// cross-worker SPSC ring: the data ring grows by n slots and the free
// ring is pre-seeded with n spare batches, so a worker can run up to
// 1+n rounds ahead of a lagging consumer before blocking (the consumer
// side already has the full latency depth of slack). Host-side tuning
// only — rings are FIFO, so token streams are bit-identical for every
// value. The default is 0: on the single-core host this repo is grown on
// the measured sweep shows no benefit (workers time-slice anyway), and
// extra slack only costs memory; multi-core hosts with bursty endpoint
// costs can widen the window via `firesim bench -ring-slack`.
func (r *Runner) SetRingSlack(n int) error {
	if n < 0 {
		return fmt.Errorf("fame: ring slack must be >= 0, got %d", n)
	}
	r.ringSlack = n
	return nil
}

// RingSlack reports the configured cross-worker ring slack, in rounds.
func (r *Runner) RingSlack() int { return r.ringSlack }

// SetBalanceSlackPct loosens the partitioner's balance cap by p percent:
// merged link groups may grow to ceil(total/workers)*(100+p)/100 weight
// before a merge is refused. More slack trades worker balance for link
// co-location (fewer cross-worker rings). Host-side tuning only; the
// partition stays deterministic for every value. Default 0 — the measured
// sweep at 8–64 nodes shows the star/tree benches are ring-bound only at
// the ToR boundary, which no cap setting can co-locate without collapsing
// to one worker.
func (r *Runner) SetBalanceSlackPct(p int) error {
	if p < 0 {
		return fmt.Errorf("fame: balance slack must be >= 0 percent, got %d", p)
	}
	r.balanceSlackPct = p
	return nil
}

// BalanceSlackPct reports the partitioner's balance-cap slack, percent.
func (r *Runner) BalanceSlackPct() int { return r.balanceSlackPct }

// partition splits endpoint indices into at most `workers` groups. It is
// deterministic (a pure function of the registered topology, the worker
// count and the balance-slack knob) and aims for two properties, in
// order:
//
//  1. balance: group weights stay near total/workers, with an endpoint's
//     port count as its cost proxy (a switch ticking 32 ports does
//     roughly 32 single-port endpoints' worth of work per round);
//  2. co-location: endpoints joined by a link merge into one group when
//     the balance cap allows, so their links need no synchronization.
//
// Greedy merge over links in registration order (union-find, capped at
// ceil(total/workers) plus the configured slack), then the merged groups
// are packed by hostplatform.PackUnits — descending weight onto the
// least-loaded bin (worst-fit decreasing, the LPT balancing heuristic;
// NOT first-fit-decreasing, which minimises bin count rather than
// balancing a fixed bin set), ties broken by ascending group then bin
// index. This is the same packing the distributed reshard path uses, so
// in-process workers and multi-process shards balance identically. Empty
// bins are dropped; each returned group is sorted by endpoint index,
// which is the worker's tick order.
func (r *Runner) partition(workers int) [][]int {
	ne := len(r.endpoints)
	if workers > ne {
		workers = ne
	}
	if workers <= 1 {
		all := make([]int, ne)
		for i := range all {
			all[i] = i
		}
		return [][]int{all}
	}

	weight := make([]int, ne)
	total := 0
	for i, e := range r.endpoints {
		w := e.NumPorts()
		if w < 1 {
			w = 1
		}
		weight[i] = w
		total += w
	}
	maxGroup := (total + workers - 1) / workers
	maxGroup += maxGroup * r.balanceSlackPct / 100

	parent := make([]int, ne)
	wsum := make([]int, ne)
	for i := range parent {
		parent[i] = i
		wsum[i] = weight[i]
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, l := range r.links {
		a, b := find(l.a.ep), find(l.b.ep)
		if a == b || wsum[a]+wsum[b] > maxGroup {
			continue
		}
		if b < a {
			a, b = b, a // root at the smaller index: deterministic
		}
		parent[b] = a
		wsum[a] += wsum[b]
	}

	// Collect merged groups; scanning i ascending makes each group's
	// first member its smallest index, so group indices are ordered by
	// first member — which is what makes PackUnits' ascending-index
	// tie-break deterministic here too.
	groupOf := make(map[int]int, ne)
	var groups [][]int
	var gw []int
	for i := 0; i < ne; i++ {
		root := find(i)
		gi, ok := groupOf[root]
		if !ok {
			gi = len(groups)
			groupOf[root] = gi
			groups = append(groups, nil)
			gw = append(gw, wsum[root])
		}
		groups[gi] = append(groups[gi], i)
	}

	var parts [][]int
	for _, unitIdxs := range hostplatform.PackUnits(gw, workers) {
		if len(unitIdxs) == 0 {
			continue
		}
		var bin []int
		for _, gi := range unitIdxs {
			bin = append(bin, groups[gi]...)
		}
		sort.Ints(bin)
		parts = append(parts, bin)
	}
	return parts
}

// ringPair is the cross-worker replacement for one directed channel: data
// carries filled batches producer→consumer, free returns recycled storage
// consumer→producer. Sized so that steady-state rounds never allocate and
// never drop recycled batches (the free ring holds the entire circulating
// population: data capacity plus one batch in each side's hands).
type ringPair struct {
	data *spscRing
	free *spscRing
	ch   *channel // the persistent channel the rings stand in for
}

// newRingPair moves ch's in-flight queue and free pool into fresh rings.
//
// Sizing invariant (checked, not assumed — see TestRingPairSizing):
//   - data holds depth+1+slack slots: depth seeded in-flight batches,
//     plus one slot so the producer can push its round's output before
//     the consumer pops (the transient the sequential scheduler also
//     exhibits at a round boundary), plus the configured ring slack;
//   - free holds depth+3+slack slots: the circulating population is
//     bounded by depth seeded batches + one in each side's hands + slack
//     spares = depth+2+slack, and one more slot keeps the bound strict
//     rather than exact, so seeding overflow is impossible by
//     construction.
//
// Overflow is therefore a counted error, not a silent GC drop: hitting it
// means a broken invariant and the run must not proceed on a leaking
// pool.
func (r *Runner) newRingPair(ch *channel, m *runnerMetrics) (*ringPair, error) {
	depth := int(ch.latency / r.step)
	slack := r.ringSlack
	rp := &ringPair{
		data: newSPSCRing(depth + 1 + slack),
		free: newSPSCRing(depth + 3 + slack),
		ch:   ch,
	}
	for ch.queue.len() > 0 {
		if !rp.data.push(ch.queue.pop()) {
			rp.drain()
			return nil, fmt.Errorf("fame: data ring overflow seeding link (depth %d, cap %d)", depth, rp.data.cap())
		}
	}
	for _, b := range ch.free {
		if !rp.free.push(b) {
			if m != nil {
				m.poolDrops.Inc()
			}
			rp.drain()
			return nil, fmt.Errorf("fame: free-pool ring overflow seeding link (%d recycled batches, cap %d)", len(ch.free), rp.free.cap())
		}
	}
	ch.free = ch.free[:0]
	// Top the free ring up to `slack` spare batches so the producer can
	// actually run ahead without allocating: extra data-ring capacity is
	// useless unless the circulating population can fill it. The top-up
	// happens at most once per link lifetime — the spares drain back into
	// the channel's recycle pool after the run and re-seed the ring on the
	// next one, so repeated RunParallel calls do not grow the pool.
	for rp.free.len() < slack {
		if !rp.free.push(token.NewBatch(int(r.step))) {
			break // unreachable: free cap depth+3+slack > slack
		}
	}
	return rp, nil
}

// drain moves all ring contents back into the persistent channel, in FIFO
// order, so a subsequent sequential Run or a checkpoint Save sees exactly
// the state it would after a sequential run.
func (rp *ringPair) drain() {
	for {
		b, ok := rp.data.pop()
		if !ok {
			break
		}
		rp.ch.push(b)
	}
	for {
		b, ok := rp.free.pop()
		if !ok {
			break
		}
		rp.ch.recycle(b)
	}
}

// portBind resolves one endpoint port for the worker loop: exactly one of
// ch (intra-worker link), rp (cross-worker link) is non-nil, or neither
// (unconnected port).
type portBind struct {
	ch *channel
	rp *ringPair
}

func (b portBind) connected() bool { return b.ch != nil || b.rp != nil }

// epPlan is one endpoint's precompiled schedule entry: port bindings and
// reusable scratch, so the hot loop performs no lookups.
type epPlan struct {
	idx     int // index into Runner.endpoints (and metrics arrays)
	ep      Endpoint
	name    string
	eager   EagerStarter // non-nil when ep wants the per-round prepass
	in, out []portBind
	ins     []*token.Batch
	outs    []*token.Batch
	scratch []*token.Batch // per unconnected output port
	empty   *token.Batch   // read-only input for unconnected input ports
}

// ringSpin is how many failed pop/push attempts a worker burns before
// yielding the processor. Within a link's slack window attempts never
// fail; at the window edge the neighbour is at most one round of work
// away, so a short spin usually beats a scheduler round trip.
const ringSpin = 128

// popWait/pushWait block until the ring yields/accepts a batch — or until
// abort is raised, which happens when a sibling worker's endpoint
// panicked and will never produce (or consume) the batch this worker is
// waiting on. The abort check sits on the slow path only: within a link's
// slack window the first attempt succeeds and the flag is never loaded.
func popWait(q *spscRing, abort *atomic.Bool) (*token.Batch, bool) {
	for i := 0; ; i++ {
		if b, ok := q.pop(); ok {
			return b, true
		}
		if i >= ringSpin {
			if abort.Load() {
				return nil, false
			}
			runtime.Gosched()
		}
	}
}

func pushWait(q *spscRing, b *token.Batch, abort *atomic.Bool) bool {
	for i := 0; ; i++ {
		if q.push(b) {
			return true
		}
		if i >= ringSpin {
			if abort.Load() {
				return false
			}
			runtime.Gosched()
		}
	}
}

// buildCrossRings replaces every channel whose producer and consumer land
// on different workers with an SPSC ring pair. On error the already-built
// rings are drained back so the runner state stays coherent
// (checkpointable, sequentially runnable).
func (r *Runner) buildCrossRings(owner []int) (map[*channel]*ringPair, error) {
	consOf := r.chanConsumer()
	rings := make(map[*channel]*ringPair, 2*len(r.links))
	for i := range r.endpoints {
		for _, ch := range r.outCh[i] {
			if ch == nil || owner[i] == owner[consOf[ch]] {
				continue
			}
			rp, err := r.newRingPair(ch, r.metrics)
			if err != nil {
				for _, built := range rings {
					built.drain()
				}
				return nil, err
			}
			rings[ch] = rp
		}
	}
	return rings, nil
}

// buildPlans precompiles each worker's schedule: one epPlan per endpoint,
// port bindings resolved against the cross-worker rings.
func (r *Runner) buildPlans(parts [][]int, rings map[*channel]*ringPair, n int) [][]*epPlan {
	plans := make([][]*epPlan, len(parts))
	for w, eps := range parts {
		empty := token.NewBatch(n)
		for _, i := range eps {
			e := r.endpoints[i]
			np := e.NumPorts()
			pl := &epPlan{
				idx:     i,
				ep:      e,
				name:    e.Name(),
				eager:   asEagerStarter(e),
				in:      make([]portBind, np),
				out:     make([]portBind, np),
				ins:     make([]*token.Batch, np),
				outs:    make([]*token.Batch, np),
				scratch: make([]*token.Batch, np),
				empty:   empty,
			}
			for p := 0; p < np; p++ {
				if ch := r.inCh[i][p]; ch != nil {
					if rp := rings[ch]; rp != nil {
						pl.in[p] = portBind{rp: rp}
					} else {
						pl.in[p] = portBind{ch: ch}
					}
				}
				if ch := r.outCh[i][p]; ch != nil {
					if rp := rings[ch]; rp != nil {
						pl.out[p] = portBind{rp: rp}
					} else {
						pl.out[p] = portBind{ch: ch}
					}
				} else {
					pl.scratch[p] = token.NewBatch(n)
				}
			}
			plans[w] = append(plans[w], pl)
		}
	}
	return plans
}

// asEagerStarter resolves the optional prepass capability once at plan
// build time, so the hot loops test a field instead of a type assertion.
func asEagerStarter(e Endpoint) EagerStarter {
	if s, ok := e.(EagerStarter); ok {
		return s
	}
	return nil
}

// runParallel is RunParallel plus a wall-time measurement covering only
// the decoupled round loop: build, partitioning, ring construction and
// the final drain all happen outside the clock, matching what run times
// for the sequential scheduler.
func (r *Runner) runParallel(cycles clock.Cycles) (time.Duration, error) {
	if err := r.build(); err != nil {
		return 0, err
	}
	if r.poisoned {
		return 0, ErrPoisoned
	}
	if cycles <= 0 || cycles%r.step != 0 {
		return 0, fmt.Errorf("fame: cycles %d must be a positive multiple of step %d", cycles, r.step)
	}

	parts := r.partition(r.Workers())
	r.effWorkers = len(parts)
	if len(parts) == 1 {
		// One worker owns every endpoint, so there is nothing to
		// synchronize: the worker-pool loop would be the sequential loop
		// with extra indirection. Run the sequential scheduler itself —
		// this is what makes RunParallel no slower than Run on a
		// single-core host. The sequential loop schedules each endpoint
		// individually, so the unit count matches pool mode.
		r.schedUnits = len(r.endpoints)
		return r.run(cycles)
	}

	rounds := int(cycles / r.step)
	n := int(r.step)
	m := r.metrics

	owner := make([]int, len(r.endpoints))
	for w, eps := range parts {
		for _, i := range eps {
			owner[i] = w
		}
	}

	rings, err := r.buildCrossRings(owner)
	if err != nil {
		return 0, err
	}
	plans := r.buildPlans(parts, rings, n)

	var wall time.Duration
	var panicErr *EndpointPanicError
	if r.multiplexed {
		r.schedUnits = len(parts)
		wall, panicErr = r.muxLoop(buildMuxPlans(plans), owner[0], rounds, n, m)
	} else {
		r.schedUnits = len(r.endpoints)
		wall, panicErr = r.poolLoop(plans, owner[0], rounds, n, m)
	}

	// Move ring state back into the persistent channel queues so a
	// subsequent sequential Run or checkpoint Save continues seamlessly.
	// Iterate in endpoint/port order (not map order) for a deterministic
	// drain sequence.
	for i := range r.endpoints {
		for _, ch := range r.outCh[i] {
			if ch == nil {
				continue
			}
			if rp := rings[ch]; rp != nil {
				rp.drain()
			}
		}
	}
	if panicErr != nil {
		// Target time does not advance: the run was torn mid-round, so
		// r.cycle still names the last coherent checkpointable boundary a
		// caller could have saved. The drained channel populations are NOT
		// coherent (workers unwound at arbitrary points), hence the poison
		// until Restore rewinds them.
		r.poisoned = true
		return wall, panicErr
	}
	r.cycle += clock.Cycles(rounds) * r.step
	if m != nil {
		m.runWall.Add(uint64(wall.Nanoseconds()))
		m.cycleGauge.Set(int64(r.cycle))
	}
	return wall, nil
}

// poolLoop runs the default per-endpoint scheduling mode: one goroutine
// per worker, each iterating its endpoints' plans in global registration
// order every round. Returns the round-loop wall time and the contained
// panic, if any (the caller drains rings and poisons the runner).
func (r *Runner) poolLoop(plans [][]*epPlan, hbWorker, rounds, n int, m *runnerMetrics) (time.Duration, *EndpointPanicError) {
	base := r.cycle
	start := time.Now()

	// Panic containment (see panic.go): the first worker whose endpoint
	// panics records the structured error and raises abort; every other
	// worker notices on its next slow-path ring wait (or round boundary)
	// and unwinds. The rings are drained by the caller regardless, so the
	// runner stays structurally coherent — just poisoned until a Restore.
	var abort atomic.Bool
	var panicMu sync.Mutex
	var panicErr *EndpointPanicError

	var wg sync.WaitGroup
	for w := range plans {
		wg.Add(1)
		go func(w int, plans []*epPlan) {
			defer wg.Done()
			curName := "<worker>"
			curWin := base
			defer func() {
				if v := recover(); v != nil {
					abort.Store(true)
					panicMu.Lock()
					if panicErr == nil {
						panicErr = &EndpointPanicError{Endpoint: curName, Cycle: curWin, Value: v, Stack: debug.Stack()}
					}
					panicMu.Unlock()
				}
			}()
			heartbeat := hbWorker == w
			var hbRounds, accToks uint64
			// Per-endpoint token counts batch locally (indexed like this
			// worker's plans) and flush on sampled rounds and at run end,
			// mirroring the sequential runner.
			var epAcc []uint64
			if m != nil {
				epAcc = make([]uint64, len(plans))
			}
			// Eager endpoints on this worker: their inputs pop early each
			// round so StartBatch overlaps the rest of the round.
			var eagers []*epPlan
			for _, pl := range plans {
				if pl.eager != nil {
					eagers = append(eagers, pl)
				}
			}
			for round := 0; round < rounds; round++ {
				if abort.Load() {
					return
				}
				winStart := base + clock.Cycles(round)*r.step
				curWin = winStart
				for _, pl := range eagers {
					curName = pl.name
					in := pl.ins
					for p := range pl.in {
						switch bind := pl.in[p]; {
						case bind.rp != nil:
							b, ok := popWait(bind.rp.data, &abort)
							if !ok {
								return
							}
							in[p] = b
						case bind.ch != nil:
							in[p] = bind.ch.pop()
						default:
							in[p] = pl.empty
						}
					}
					if inj := r.injector; inj != nil {
						for p := range pl.in {
							if pl.in[p].connected() {
								inj.FilterInput(pl.name, p, winStart, in[p])
							}
						}
					}
					pl.eager.StartBatch(n, in)
				}
				// Tick timing samples the same round indices as the
				// sequential runner so the histograms stay comparable;
				// each tick pays its own two clock reads so ring-wait
				// time never pollutes the histogram.
				sampled := m != nil && round&tickSampleMask == 0
				for pi, pl := range plans {
					curName = pl.name
					in, out := pl.ins, pl.outs
					for p := range pl.in {
						if pl.eager == nil {
							switch bind := pl.in[p]; {
							case bind.rp != nil:
								b, ok := popWait(bind.rp.data, &abort)
								if !ok {
									return
								}
								in[p] = b
							case bind.ch != nil:
								in[p] = bind.ch.pop()
							default:
								in[p] = pl.empty
							}
						}
						switch bind := pl.out[p]; {
						case bind.rp != nil:
							if b, ok := bind.rp.free.pop(); ok {
								b.Reset(n)
								out[p] = b
							} else {
								if m != nil {
									m.poolAllocs.Inc()
								}
								out[p] = token.NewBatch(n)
							}
						case bind.ch != nil:
							out[p] = bind.ch.take(n)
						default:
							pl.scratch[p].Reset(n)
							out[p] = pl.scratch[p]
						}
					}
					if inj := r.injector; inj != nil && pl.eager == nil {
						for p := range pl.in {
							if pl.in[p].connected() {
								inj.FilterInput(pl.name, p, winStart, in[p])
							}
						}
					}
					var t0 time.Time
					if sampled {
						t0 = time.Now()
					}
					pl.ep.TickBatch(n, in, out)
					if sampled {
						m.tick[pl.idx].Observe(uint64(time.Since(t0).Nanoseconds()))
					}
					if m != nil {
						var toks uint64
						for p := range pl.out {
							if pl.out[p].connected() {
								toks += uint64(len(out[p].Slots))
							}
						}
						if toks > 0 {
							epAcc[pi] += toks
							accToks += toks
						}
					}
					if inj := r.injector; inj != nil {
						for p := range pl.out {
							if pl.out[p].connected() {
								inj.FilterOutput(pl.name, p, winStart, out[p])
							}
						}
					}
					for p := range pl.out {
						switch bind := pl.out[p]; {
						case bind.rp != nil:
							if !pushWait(bind.rp.data, out[p], &abort) {
								return
							}
						case bind.ch != nil:
							bind.ch.push(out[p])
						}
						switch bind := pl.in[p]; {
						case bind.rp != nil:
							if !bind.rp.free.push(in[p]) {
								// Unreachable with the depth+3+slack sizing;
								// the counter is a regression tripwire
								// asserted zero by tests.
								if m != nil {
									m.poolDrops.Inc()
								}
							}
						case bind.ch != nil:
							bind.ch.recycle(in[p])
						}
					}
				}
				if m != nil {
					if sampled {
						if accToks > 0 {
							m.tokens.Add(accToks)
							accToks = 0
						}
						for pi, t := range epAcc {
							if t > 0 {
								m.epTokens[plans[pi].idx].Add(t)
								epAcc[pi] = 0
							}
						}
					}
					// Workers advance decoupled, so any one is an equally
					// good progress heartbeat; the worker owning endpoint 0
					// reports for the group. The gauge is corrected to the
					// exact final cycle after the barrier below.
					if heartbeat {
						hbRounds++
						if sampled {
							m.rounds.Add(hbRounds)
							m.cycles.Add(hbRounds * uint64(r.step))
							hbRounds = 0
							m.cycleGauge.Set(int64(winStart + r.step))
						}
					}
				}
			}
			if m != nil {
				if hbRounds > 0 {
					m.rounds.Add(hbRounds)
					m.cycles.Add(hbRounds * uint64(r.step))
				}
				if accToks > 0 {
					m.tokens.Add(accToks)
				}
				for pi, t := range epAcc {
					if t > 0 {
						m.epTokens[plans[pi].idx].Add(t)
					}
				}
			}
		}(w, plans[w])
	}
	wg.Wait()
	wall := time.Since(start)
	return wall, panicErr
}
