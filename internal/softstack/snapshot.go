package softstack

import (
	"fmt"
	"sort"

	"repro/internal/clock"
	"repro/internal/ethernet"
	"repro/internal/snapshot"
)

// maxFrameFlits bounds one frame in a checkpoint.
const maxFrameFlits = 1 << 20

// Quiescent reports whether the node can be checkpointed: no pending
// events, no outstanding ARP resolutions, no active pingers, no thread
// with queued or in-flight CPU work. The event heap holds Go closures,
// which have no serialisable representation — checkpointing is only
// defined at points where none exist. Pure data paths (the TX queue, the
// raw-stream generator, partial RX assembly) do not affect quiescence.
func (n *Node) Quiescent() error {
	if len(n.events) > 0 {
		return fmt.Errorf("softstack %s: %d pending events (in-flight kernel work cannot be serialised)", n.cfg.Name, len(n.events))
	}
	if len(n.arpWaiting) > 0 {
		return fmt.Errorf("softstack %s: %d outstanding ARP resolutions", n.cfg.Name, len(n.arpWaiting))
	}
	if len(n.pingers) > 0 {
		return fmt.Errorf("softstack %s: %d active pingers", n.cfg.Name, len(n.pingers))
	}
	for i := range n.sched.cores {
		c := &n.sched.cores[i]
		if c.current != nil || len(c.runq) > 0 {
			return fmt.Errorf("softstack %s: core %d has runnable threads", n.cfg.Name, i)
		}
	}
	for _, th := range n.threads {
		if len(th.jobs) > 0 || th.running {
			return fmt.Errorf("softstack %s: thread %d has queued jobs", n.cfg.Name, th.id)
		}
	}
	return nil
}

// Save serialises the node's data-plane state: clock, counters, the ARP
// table (sorted by IP for canonical bytes), partial RX assembly, the TX
// queue and cursor, the raw-stream generator, ping IDs, scheduler RNG and
// per-core/per-thread accounting. It refuses non-quiescent nodes — see
// Quiescent. UDP handlers, the remote-memory hook and Config are
// application wiring, re-established by whoever rebuilds the node.
func (n *Node) Save(w *snapshot.Writer) error {
	if err := n.Quiescent(); err != nil {
		return err
	}
	w.Begin("softstack.Node", 1)
	w.U64(uint64(n.cycle))
	w.U64(n.eventSeq)
	w.U64(n.stats.FramesSent)
	w.U64(n.stats.FramesRecv)
	w.U64(n.stats.BytesSent)
	w.U64(n.stats.BytesRecv)
	w.U64(n.stats.ARPLookups)

	ips := make([]ethernet.IP, 0, len(n.arp))
	for ip := range n.arp {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
	w.Uvarint(uint64(len(ips)))
	for _, ip := range ips {
		w.U64(uint64(ip))
		w.U64(uint64(n.arp[ip]))
	}

	w.Uvarint(uint64(len(n.rxFlits)))
	for _, f := range n.rxFlits {
		w.U64(f)
	}
	w.Uvarint(uint64(len(n.txq)))
	for i := range n.txq {
		f := &n.txq[i]
		w.Uvarint(uint64(len(f.flits)))
		for _, fl := range f.flits {
			w.U64(fl)
		}
		w.U64(uint64(f.readyAt))
		w.Uvarint(uint64(f.flit))
	}
	w.U64(uint64(n.txCursor))

	if g := n.gen; g != nil {
		w.Bool(true)
		w.U64(uint64(g.dst))
		w.Uvarint(uint64(len(g.flits)))
		for _, fl := range g.flits {
			w.U64(fl)
		}
		w.F64(g.next)
		w.F64(g.interval)
		w.U64(uint64(g.stopAt))
	} else {
		w.Bool(false)
	}
	w.Uvarint(uint64(n.nextID))

	w.U64(n.sched.rngState)
	w.Uvarint(uint64(len(n.sched.cores)))
	for i := range n.sched.cores {
		c := &n.sched.cores[i]
		w.U64(uint64(c.busyUntil))
		w.U64(uint64(c.quantumStart))
	}
	w.Uvarint(uint64(len(n.threads)))
	for _, th := range n.threads {
		w.Uvarint(uint64(th.lastCore))
		w.U64(th.wakes)
		w.U64(uint64(th.Busy))
	}
	return w.Err()
}

// Restore overwrites the node's data-plane state from r. The node must
// have been rebuilt from the same Config — same core count and, if the
// application creates threads before restoring, the same thread
// population.
func (n *Node) Restore(r *snapshot.Reader) error {
	if err := r.Begin("softstack.Node", 1); err != nil {
		return err
	}
	cycle := clock.Cycles(r.U64())
	eventSeq := r.U64()
	var stats Stats
	stats.FramesSent = r.U64()
	stats.FramesRecv = r.U64()
	stats.BytesSent = r.U64()
	stats.BytesRecv = r.U64()
	stats.ARPLookups = r.U64()

	narp := r.Count(1 << 24)
	if err := r.Err(); err != nil {
		return err
	}
	arp := make(map[ethernet.IP]ethernet.MAC, narp)
	var prevIP uint64
	for i := 0; i < narp; i++ {
		ip := r.U64()
		mac := r.U64()
		if err := r.Err(); err != nil {
			return err
		}
		if i > 0 && ip <= prevIP {
			return fmt.Errorf("softstack %s: checkpoint ARP entries out of order", n.cfg.Name)
		}
		if ip > uint64(^uint32(0)) {
			return fmt.Errorf("softstack %s: checkpoint ARP IP %#x out of range", n.cfg.Name, ip)
		}
		prevIP = ip
		arp[ethernet.IP(ip)] = ethernet.MAC(mac)
	}

	rxFlits := make([]uint64, r.Count(maxFrameFlits))
	for i := range rxFlits {
		rxFlits[i] = r.U64()
	}
	ntx := r.Count(1 << 24)
	if err := r.Err(); err != nil {
		return err
	}
	txq := make([]txFrame, ntx)
	for i := range txq {
		nf := r.Count(maxFrameFlits)
		if err := r.Err(); err != nil {
			return err
		}
		txq[i].flits = make([]uint64, nf)
		for k := range txq[i].flits {
			txq[i].flits[k] = r.U64()
		}
		txq[i].readyAt = clock.Cycles(r.U64())
		txq[i].flit = int(r.Uvarint())
		if err := r.Err(); err != nil {
			return err
		}
		if txq[i].flit < 0 || txq[i].flit > nf {
			return fmt.Errorf("softstack %s: checkpoint TX frame %d cursor out of range", n.cfg.Name, i)
		}
	}
	txCursor := clock.Cycles(r.U64())

	var gen *generator
	if r.Bool() {
		gen = &generator{dst: ethernet.MAC(r.U64())}
		nf := r.Count(maxFrameFlits)
		if err := r.Err(); err != nil {
			return err
		}
		gen.flits = make([]uint64, nf)
		for i := range gen.flits {
			gen.flits[i] = r.U64()
		}
		gen.next = r.F64()
		gen.interval = r.F64()
		gen.stopAt = clock.Cycles(r.U64())
	}
	nextID := r.Uvarint()

	rngState := r.U64()
	ncores := r.Uvarint()
	if err := r.Err(); err != nil {
		return err
	}
	if ncores != uint64(len(n.sched.cores)) {
		return fmt.Errorf("softstack %s: checkpoint has %d cores, node has %d", n.cfg.Name, ncores, len(n.sched.cores))
	}
	cores := make([]struct{ busyUntil, quantumStart clock.Cycles }, ncores)
	for i := range cores {
		cores[i].busyUntil = clock.Cycles(r.U64())
		cores[i].quantumStart = clock.Cycles(r.U64())
	}
	nthreads := r.Uvarint()
	if err := r.Err(); err != nil {
		return err
	}
	if nthreads != uint64(len(n.threads)) {
		return fmt.Errorf("softstack %s: checkpoint has %d threads, node has %d", n.cfg.Name, nthreads, len(n.threads))
	}
	type threadState struct {
		lastCore int
		wakes    uint64
		busy     clock.Cycles
	}
	threads := make([]threadState, nthreads)
	for i := range threads {
		threads[i].lastCore = int(r.Uvarint())
		threads[i].wakes = r.U64()
		threads[i].busy = clock.Cycles(r.U64())
		if err := r.Err(); err != nil {
			return err
		}
		if threads[i].lastCore < 0 || threads[i].lastCore >= int(ncores) {
			return fmt.Errorf("softstack %s: checkpoint thread %d lastCore out of range", n.cfg.Name, i)
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	if nextID > uint64(^uint16(0)) {
		return fmt.Errorf("softstack %s: checkpoint ping ID %d out of range", n.cfg.Name, nextID)
	}
	// The restore target must itself be quiescent; overwriting a node with
	// live closures would strand them.
	if err := n.Quiescent(); err != nil {
		return fmt.Errorf("restore target not quiescent: %w", err)
	}
	n.cycle = cycle
	n.eventSeq = eventSeq
	n.stats = stats
	n.arp = arp
	n.rxFlits = rxFlits
	n.txq = txq
	n.txCursor = txCursor
	n.gen = gen
	n.nextID = uint16(nextID)
	n.sched.rngState = rngState
	for i := range n.sched.cores {
		n.sched.cores[i].busyUntil = cores[i].busyUntil
		n.sched.cores[i].quantumStart = cores[i].quantumStart
	}
	for i, th := range n.threads {
		th.lastCore = threads[i].lastCore
		th.wakes = threads[i].wakes
		th.Busy = threads[i].busy
	}
	return nil
}
