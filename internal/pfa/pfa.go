// Package pfa implements the paper's Section VI case study: a
// disaggregated-memory system with a "Page-Fault Accelerator" that removes
// software from the critical path of paging-based remote memory.
//
// The system has two kinds of nodes on the simulated network:
//
//   - a memory blade (in the paper, another Rocket core running a
//     bare-metal memory server speaking a custom protocol over the NIC),
//     which serves page fetch and eviction requests, and
//   - application nodes whose local memory is a cache over the blade,
//     managed either by traditional software paging (the baseline,
//     Infiniswap-style) or by the PFA.
//
// With software paging, every remote access costs a trap plus a kernel
// fault handler before the fetch, and page-table/metadata management plus
// cache pollution after it. The PFA instead fetches the latency-critical
// page in hardware — the OS pre-provisions free frames through a freeQ and
// consumes new-page descriptors from a newQ asynchronously in batches,
// which improves OS cache locality: the paper measures the same number of
// evictions in both modes but a 2.5x reduction in metadata-management time
// and up to a 1.4x application speedup.
package pfa

import (
	"encoding/binary"

	"repro/internal/clock"
	"repro/internal/ethernet"
	"repro/internal/softstack"
)

// PageBytes is the page size moved between app nodes and the blade.
const PageBytes = 4096

// Remote-memory protocol opcodes (carried in ethernet.TypeRemoteMem
// frames).
const (
	opFetch     = 1
	opFetchResp = 2
	opEvict     = 3
)

// Blade is the bare-metal memory server: it stores evicted pages and
// serves fetches with a fixed service cost.
type Blade struct {
	node *softstack.Node
	// ServiceCost is the per-request processing cost on the blade.
	ServiceCost clock.Cycles
	// Served and Stored count fetches and evictions handled.
	Served, Stored uint64
}

// NewBlade installs the memory server on a node.
func NewBlade(n *softstack.Node) *Blade {
	c := clock.New(n.Clock().Freq())
	b := &Blade{node: n, ServiceCost: c.CyclesInMicros(1.5)}
	n.RemoteMemHandler = b.onRequest
	return b
}

func (b *Blade) onRequest(now clock.Cycles, src ethernet.MAC, payload []byte) {
	if len(payload) < 9 {
		return
	}
	op := payload[0]
	page := binary.BigEndian.Uint64(payload[1:9])
	switch op {
	case opFetch:
		b.Served++
		resp := make([]byte, 9+PageBytes)
		resp[0] = opFetchResp
		binary.BigEndian.PutUint64(resp[1:9], page)
		b.node.SendRemoteMem(now+b.ServiceCost, src, resp)
	case opEvict:
		b.Stored++
	}
}

// Mode selects the paging implementation.
type Mode int

// Paging modes.
const (
	// SoftwarePaging is the baseline: Linux paging directly to the memory
	// blade (Infiniswap-style).
	SoftwarePaging Mode = iota
	// PFAMode uses the Page-Fault Accelerator.
	PFAMode
)

// String names the mode.
func (m Mode) String() string {
	if m == PFAMode {
		return "PFA"
	}
	return "software-paging"
}

// PagingCosts holds the per-event CPU costs of the two paging paths, in
// cycles at 3.2 GHz.
type PagingCosts struct {
	// Trap is the fault trap + context save cost (software paging only).
	Trap clock.Cycles
	// KernelHandler is the page-fault handler cost before the fetch can
	// be issued (software paging only).
	KernelHandler clock.Cycles
	// MetaPerPage is the synchronous per-page metadata management cost
	// for software paging.
	MetaPerPage clock.Cycles
	// Pollution is the extra cost after a software fault from the fault
	// path evicting useful application cache state.
	Pollution clock.Cycles
	// EvictKernel is the synchronous kernel part of a software eviction.
	EvictKernel clock.Cycles
	// HWFault is the PFA's hardware fault-detection/injection cost.
	HWFault clock.Cycles
	// MetaPerPageBatched is the PFA's amortised per-page newQ processing
	// cost: batching new-page descriptors improves OS cache locality, the
	// paper's measured 2.5x reduction.
	MetaPerPageBatched clock.Cycles
	// NewQBatch is how many descriptors the OS pops per newQ interrupt.
	NewQBatch int
}

// DefaultPagingCosts returns costs calibrated at 3.2 GHz so that the
// Genome benchmark's software/PFA ratio lands near the paper's 1.4x and
// the metadata ratio at 2.5x.
func DefaultPagingCosts(freq clock.Hz) PagingCosts {
	c := clock.New(freq)
	return PagingCosts{
		Trap:               c.CyclesInMicros(1.0),
		KernelHandler:      c.CyclesInMicros(2.5),
		MetaPerPage:        c.CyclesInMicros(2.0),
		Pollution:          c.CyclesInMicros(1.5),
		EvictKernel:        c.CyclesInMicros(1.5),
		HWFault:            c.CyclesInMicros(0.3),
		MetaPerPageBatched: c.CyclesInMicros(0.8),
		NewQBatch:          64,
	}
}

// AccessPattern yields the page reference string of an application.
type AccessPattern interface {
	// Next returns the next page touched and false when the workload is
	// complete.
	Next() (page uint64, ok bool)
	// Reset restarts the pattern from the beginning.
	Reset()
}

// GenomePattern models de-novo genome assembly: random accesses into a
// large hash table, with effectively no locality — the access pattern
// that thrashes under low local memory in the paper.
type GenomePattern struct {
	Pages    uint64
	Accesses int
	seed     uint64
	state    uint64
	done     int
}

// NewGenomePattern returns a pattern touching `accesses` random pages of
// a `pages`-page working set.
func NewGenomePattern(pages uint64, accesses int, seed uint64) *GenomePattern {
	g := &GenomePattern{Pages: pages, Accesses: accesses, seed: seed}
	g.Reset()
	return g
}

// Next implements AccessPattern.
func (g *GenomePattern) Next() (uint64, bool) {
	if g.done >= g.Accesses {
		return 0, false
	}
	g.done++
	x := g.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	g.state = x
	return (x * 2685821657736338717) % g.Pages, true
}

// Reset implements AccessPattern.
func (g *GenomePattern) Reset() { g.state = g.seed*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9; g.done = 0 }

// QsortPattern models quicksort over the working set: a depth-first
// recursive partitioning trace. Each partition pass sweeps its segment
// once; recursing into the left half immediately re-touches just-scanned
// pages, which is the temporal locality that makes quicksort "known to
// have good cache behavior" (the paper observes it barely slows down when
// swapping).
type QsortPattern struct {
	// Pages is the working-set size; MinSegment stops the recursion (a
	// segment this small is sorted in place without further passes).
	Pages      uint64
	MinSegment uint64

	stack []qseg
	cur   qseg
	pos   uint64
	done  bool
}

type qseg struct{ lo, hi uint64 }

// NewQsortPattern returns a quicksort page trace over a `pages`-page
// array. minSegment bounds recursion depth (default 2 pages).
func NewQsortPattern(pages uint64, minSegment uint64) *QsortPattern {
	if minSegment < 2 {
		minSegment = 2
	}
	q := &QsortPattern{Pages: pages, MinSegment: minSegment}
	q.Reset()
	return q
}

// Next implements AccessPattern.
func (q *QsortPattern) Next() (uint64, bool) {
	if q.done {
		return 0, false
	}
	if q.pos < q.cur.hi {
		page := q.pos
		q.pos++
		return page, true
	}
	// Current pass finished: recurse depth-first (left first).
	if size := q.cur.hi - q.cur.lo; size > q.MinSegment {
		mid := q.cur.lo + size/2
		q.stack = append(q.stack, qseg{mid, q.cur.hi})
		q.cur = qseg{q.cur.lo, mid}
		q.pos = q.cur.lo
		return q.Next()
	}
	if len(q.stack) == 0 {
		q.done = true
		return 0, false
	}
	q.cur = q.stack[len(q.stack)-1]
	q.stack = q.stack[:len(q.stack)-1]
	q.pos = q.cur.lo
	return q.Next()
}

// Reset implements AccessPattern.
func (q *QsortPattern) Reset() {
	q.stack = q.stack[:0]
	q.cur = qseg{0, q.Pages}
	q.pos = 0
	q.done = false
}

// AppConfig parameterises one application run.
type AppConfig struct {
	// Mode selects software paging or PFA.
	Mode Mode
	// Blade is the memory blade's MAC address.
	Blade ethernet.MAC
	// LocalPages is the number of page frames of fast local memory.
	LocalPages int
	// Pattern is the page reference string.
	Pattern AccessPattern
	// ComputePerAccess is the application CPU work between page touches.
	ComputePerAccess clock.Cycles
	// Costs are the paging-path costs; zero value takes defaults.
	Costs PagingCosts
}

// Result summarises a finished run.
type Result struct {
	Mode      Mode
	Runtime   clock.Cycles
	Faults    uint64
	Evictions uint64
	// MetadataTime is CPU time spent on page metadata management, the
	// quantity the PFA reduces 2.5x by batching.
	MetadataTime clock.Cycles
}

// App drives an access pattern over paged remote memory on a node.
type App struct {
	node *softstack.Node
	cfg  AppConfig

	resident map[uint64]uint64 // page -> LRU stamp
	lruTick  uint64
	pending  uint64 // page currently being fetched

	started  clock.Cycles
	finished bool
	res      Result

	newQ int // PFA: descriptors accumulated since the last batch pop
}

// NewApp installs the application on the node; it starts at cycle start.
func NewApp(n *softstack.Node, cfg AppConfig, start clock.Cycles) *App {
	if cfg.Costs == (PagingCosts{}) {
		cfg.Costs = DefaultPagingCosts(n.Clock().Freq())
	}
	if cfg.LocalPages < 1 {
		cfg.LocalPages = 1
	}
	a := &App{node: n, cfg: cfg, resident: make(map[uint64]uint64, cfg.LocalPages)}
	a.res.Mode = cfg.Mode
	n.RemoteMemHandler = a.onFetchResponse
	n.At(start, func(now clock.Cycles) {
		a.started = now
		a.step(now)
	})
	return a
}

// Done reports whether the workload has completed.
func (a *App) Done() bool { return a.finished }

// Result returns the run summary (valid once Done).
func (a *App) Result() Result { return a.res }

// step consumes accesses until the next fault (accumulating pure compute
// time arithmetically), then starts the fault sequence.
func (a *App) step(now clock.Cycles) {
	var compute clock.Cycles
	for {
		page, ok := a.cfg.Pattern.Next()
		if !ok {
			a.node.At(now+compute, func(done clock.Cycles) {
				a.finished = true
				a.res.Runtime = done - a.started
			})
			return
		}
		compute += a.cfg.ComputePerAccess
		if _, hit := a.resident[page]; hit {
			a.lruTick++
			a.resident[page] = a.lruTick
			continue
		}
		// Page fault.
		a.node.At(now+compute, func(faultAt clock.Cycles) {
			a.fault(faultAt, page)
		})
		return
	}
}

// fault runs the pre-fetch part of the paging path and issues the fetch.
func (a *App) fault(now clock.Cycles, page uint64) {
	a.res.Faults++
	c := a.cfg.Costs
	t := now
	if a.cfg.Mode == SoftwarePaging {
		t += c.Trap + c.KernelHandler
	} else {
		t += c.HWFault
	}
	// Make room first (the OS keeps the freeQ stocked in PFA mode; in
	// software mode eviction is on the fault path).
	if len(a.resident) >= a.cfg.LocalPages {
		victim := a.evictVictim()
		delete(a.resident, victim)
		a.res.Evictions++
		req := make([]byte, 9+PageBytes)
		req[0] = opEvict
		binary.BigEndian.PutUint64(req[1:9], victim)
		if a.cfg.Mode == SoftwarePaging {
			t += c.EvictKernel
			a.node.SendRemoteMem(t, a.cfg.Blade, req)
		} else {
			// Asynchronous eviction: the write-back leaves at the same
			// target time but consumes no critical-path CPU.
			a.node.SendRemoteMem(t, a.cfg.Blade, req)
		}
	}
	a.pending = page
	fetch := make([]byte, 9)
	fetch[0] = opFetch
	binary.BigEndian.PutUint64(fetch[1:9], page)
	a.node.SendRemoteMem(t, a.cfg.Blade, fetch)
}

// evictVictim picks the least-recently-used resident page.
func (a *App) evictVictim() uint64 {
	var victim, best uint64
	first := true
	for p, stamp := range a.resident {
		if first || stamp < best {
			victim, best, first = p, stamp, false
		}
	}
	return victim
}

// onFetchResponse completes the fault: install the page, pay the
// post-fetch costs, and resume the access loop.
func (a *App) onFetchResponse(now clock.Cycles, src ethernet.MAC, payload []byte) {
	if len(payload) < 9 || payload[0] != opFetchResp {
		return
	}
	page := binary.BigEndian.Uint64(payload[1:9])
	if page != a.pending {
		return
	}
	a.lruTick++
	a.resident[page] = a.lruTick
	c := a.cfg.Costs
	t := now
	if a.cfg.Mode == SoftwarePaging {
		t += c.MetaPerPage + c.Pollution
		a.res.MetadataTime += c.MetaPerPage
	} else {
		a.newQ++
		if a.newQ >= c.NewQBatch {
			// newQ full: the OS pops the whole batch under an interrupt.
			batchCost := clock.Cycles(a.newQ) * c.MetaPerPageBatched
			a.res.MetadataTime += batchCost
			t += batchCost
			a.newQ = 0
		}
	}
	a.step(t)
}
