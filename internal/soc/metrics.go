package soc

import (
	"time"

	"repro/internal/obs"
)

// This file wires the blade's compute loop into the observability layer,
// following the same rules as the fame runner instruments: a nil
// *socMetrics disables everything (one pointer nil check per TickBatch),
// enabled-path records are uncontended atomic adds, and wall-clock reads
// are paid only on sampled batches.
//
// Metric names, all under the node_ prefix:
//
//	node_instrs_total{node=N}          instructions retired, summed over harts
//	node_skipped_cycles_total{node=N}  target cycles skipped while quiescent
//	node_mips{node=N}                  gauge: sampled sim rate, million instrs/s
//
// The counters are exact (published as deltas each TickBatch); the MIPS
// gauge is a host-side rate sampled once per mipsSampleMask+1 batches.
type socMetrics struct {
	instrs  *obs.Counter
	skipped *obs.Counter
	mips    *obs.Gauge

	// Local accumulators so restores (which rewind the hart counters)
	// never make a counter go backwards.
	lastInstret uint64
	lastSkipped uint64

	batches     uint64
	sampInstret uint64
	sampTime    time.Time
}

// mipsSampleMask selects the batches that pay a time.Now() read for the
// MIPS gauge: batch indices where batches&mipsSampleMask == 0.
const mipsSampleMask = 31

// EnableMetrics attaches the blade to a registry, publishing the node_*
// instruments described above. Passing nil detaches (the default). Like
// the fame runner's EnableMetrics, call it between runs, not mid-run.
func (s *SoC) EnableMetrics(reg *obs.Registry) {
	if reg == nil {
		s.metrics = nil
		return
	}
	s.metrics = &socMetrics{
		instrs:      reg.Counter(obs.Label("node_instrs_total", "node", s.cfg.Name)),
		skipped:     reg.Counter(obs.Label("node_skipped_cycles_total", "node", s.cfg.Name)),
		mips:        reg.Gauge(obs.Label("node_mips", "node", s.cfg.Name)),
		lastInstret: s.InstretTotal(),
		lastSkipped: s.skipped,
	}
}

// publishMetrics flushes this batch's instruction/skip deltas and, on
// sampled batches, updates the MIPS gauge. Called once per TickBatch when
// metrics are enabled.
func (s *SoC) publishMetrics() {
	m := s.metrics
	total := s.InstretTotal()
	if total >= m.lastInstret {
		if d := total - m.lastInstret; d > 0 {
			m.instrs.Add(d)
		}
	}
	m.lastInstret = total
	if d := s.skipped - m.lastSkipped; d > 0 {
		m.skipped.Add(d)
	}
	m.lastSkipped = s.skipped

	if m.batches&mipsSampleMask == 0 {
		now := time.Now()
		if !m.sampTime.IsZero() {
			if dt := now.Sub(m.sampTime).Seconds(); dt > 0 {
				m.mips.Set(int64(float64(total-m.sampInstret) / dt / 1e6))
			}
		}
		m.sampTime = now
		m.sampInstret = total
	}
	m.batches++
}
