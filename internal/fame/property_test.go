package fame

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/clock"
	"repro/internal/token"
)

// TestRandomTopologyEquivalence is the load-bearing property of the whole
// platform: for arbitrary star topologies with random link latencies and
// random traffic programs, the sequential and parallel runners produce
// bit-identical token streams.
func TestRandomTopologyEquivalence(t *testing.T) {
	type spec struct {
		// nSources in [1,6], latencies in [1,64], each source emits a few
		// packets at pseudo-random cycles.
		Seed uint64
	}
	check := func(s spec) bool {
		build := func() (*Runner, []*Sink) {
			rng := s.Seed
			next := func(n uint64) uint64 {
				rng ^= rng >> 12
				rng ^= rng << 25
				rng ^= rng >> 27
				return (rng * 2685821657736338717) % n
			}
			r := NewRunner()
			nSrc := int(next(6)) + 1
			var sinks []*Sink
			for i := 0; i < nSrc; i++ {
				src := NewSource(fmt.Sprintf("src%d", i))
				sink := NewSink(fmt.Sprintf("sink%d", i))
				r.Add(src)
				r.Add(sink)
				lat := clock.Cycles(next(64) + 1)
				if err := r.Connect(src, 0, sink, 0, lat); err != nil {
					t.Fatal(err)
				}
				nPkts := int(next(4)) + 1
				for p := 0; p < nPkts; p++ {
					at := int64(next(500))
					nFlits := int(next(5)) + 1
					flits := make([]uint64, nFlits)
					for f := range flits {
						flits[f] = next(1 << 62)
					}
					src.EmitPacketAt(at, flits)
				}
				sinks = append(sinks, sink)
			}
			return r, sinks
		}

		rSeq, seqSinks := build()
		if err := rSeq.Run(roundUp(2048, rSeq.Step())); err != nil {
			t.Fatal(err)
		}
		rPar, parSinks := build()
		if err := rPar.RunParallel(roundUp(2048, rPar.Step())); err != nil {
			t.Fatal(err)
		}
		for i := range seqSinks {
			if !reflect.DeepEqual(seqSinks[i].Received, parSinks[i].Received) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

func roundUp(c, step clock.Cycles) clock.Cycles {
	if rem := c % step; rem != 0 {
		return c + step - rem
	}
	return c
}

// TestSourceOverlappingPackets documents EmitPacketAt semantics: later
// programs override earlier cycles, so test programs must not overlap.
func TestSourceOverlappingPackets(t *testing.T) {
	src := NewSource("s")
	src.EmitPacketAt(0, []uint64{1, 2})
	src.EmitPacketAt(1, []uint64{9}) // overwrites cycle 1
	in := []*token.Batch{token.NewBatch(4)}
	out := []*token.Batch{token.NewBatch(4)}
	src.TickBatch(4, in, out)
	if got := out[0].At(1).Data; got != 9 {
		t.Errorf("cycle 1 data = %d, want 9 (last program wins)", got)
	}
}

// TestLongRun exercises batch-queue recycling across many rounds.
func TestLongRun(t *testing.T) {
	r := NewRunner()
	src := NewSource("src")
	sink := NewSink("sink")
	r.Add(src)
	r.Add(sink)
	if err := r.Connect(src, 0, sink, 0, 32); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 1000; i++ {
		src.EmitAt(i*100, token.Token{Data: uint64(i), Valid: true, Last: true})
	}
	if err := r.Run(32 * 4000); err != nil {
		t.Fatal(err)
	}
	if len(sink.Received) != 1000 {
		t.Fatalf("received %d tokens, want 1000", len(sink.Received))
	}
	for i, arr := range sink.Received {
		if arr.Cycle != int64(i*100+32) {
			t.Fatalf("token %d arrived at %d, want %d", i, arr.Cycle, i*100+32)
		}
	}
}
