package apps

import (
	"testing"

	"repro/internal/clock"
	"repro/internal/ethernet"
	"repro/internal/fame"
	"repro/internal/softstack"
	"repro/internal/switchmodel"
)

const usCycles = 3200

// cluster builds n softstack nodes on one ToR switch with static ARP and
// returns (nodes, runner).
func cluster(t *testing.T, n int, linkLat clock.Cycles) ([]*softstack.Node, *fame.Runner) {
	t.Helper()
	arp := make(map[ethernet.IP]ethernet.MAC)
	for i := 0; i < n; i++ {
		arp[ethernet.IP(0x0a000001+i)] = ethernet.MAC(0x0200_0000_0001 + i)
	}
	sw := switchmodel.New(switchmodel.Config{Name: "tor", Ports: n, SwitchingLatency: 10})
	r := fame.NewRunner()
	r.Add(sw)
	nodes := make([]*softstack.Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = softstack.NewNode(softstack.Config{
			Name:      "node" + string(rune('A'+i)),
			MAC:       ethernet.MAC(0x0200_0000_0001 + i),
			IP:        ethernet.IP(0x0a000001 + i),
			Cores:     4,
			Seed:      uint64(i + 1),
			StaticARP: arp,
		})
		r.Add(nodes[i])
		sw.MACTable().Set(nodes[i].MAC(), i)
		if err := r.Connect(nodes[i], 0, sw, i, linkLat); err != nil {
			t.Fatal(err)
		}
	}
	return nodes, r
}

func runFor(t *testing.T, r *fame.Runner, cycles clock.Cycles) {
	t.Helper()
	cycles -= cycles % r.Step()
	if cycles <= 0 {
		return
	}
	if err := r.Run(cycles); err != nil {
		t.Fatal(err)
	}
}

func TestIperfReproducesPaperThroughput(t *testing.T) {
	// Section IV-B: iperf3 over the modeled Linux stack lands at
	// ~1.4 Gbit/s despite the 200 Gbit/s link, because the per-packet
	// kernel cost on the slow in-order core is the bottleneck.
	nodes, r := cluster(t, 2, 2*usCycles)
	srv := NewIperfServer(nodes[1])
	const dur = 20_000_000 // 6.25 ms
	NewIperfClient(nodes[0], nodes[1].IP(), 0, dur)
	runFor(t, r, dur+clock.Cycles(200*usCycles))

	got := srv.GoodputGbps()
	if got < 1.1 || got > 1.8 {
		t.Errorf("iperf goodput = %.2f Gbit/s, want ~1.4 (paper Section IV-B)", got)
	}
}

func TestMemcachedLowLoadLatency(t *testing.T) {
	// A lightly-loaded server over a 2us network: p50 should land in the
	// several-tens-of-microseconds regime (paper Table III: ~79 us
	// cross-ToR) and p95 must not be below p50.
	nodes, r := cluster(t, 3, 2*usCycles)
	NewMemcachedServer(nodes[0], MemcachedConfig{Threads: 4, Pinned: true})
	const dur = 160_000_000 // 50 ms
	m1 := NewMutilate(nodes[1], MutilateConfig{Server: nodes[0].IP(), QPS: 5000, Connections: 4, Duration: dur, Seed: 7})
	m2 := NewMutilate(nodes[2], MutilateConfig{Server: nodes[0].IP(), QPS: 5000, Connections: 4, Duration: dur, Seed: 8})
	runFor(t, r, dur+clock.Cycles(1000*usCycles))

	total := m1.Received + m2.Received
	if total < (m1.Sent+m2.Sent)*9/10 {
		t.Fatalf("lost requests: sent %d received %d", m1.Sent+m2.Sent, total)
	}
	p50 := m1.Latencies.Median()
	p95 := m1.Latencies.P95()
	if p50 < 40 || p50 > 120 {
		t.Errorf("p50 = %.1f us, want tens of microseconds", p50)
	}
	if p95 < p50 {
		t.Errorf("p95 (%.1f) < p50 (%.1f)", p95, p50)
	}
}

func TestThreadImbalanceInflatesTail(t *testing.T) {
	// Section IV-E: with 5 threads on 4 cores, p95 is significantly
	// worsened while p50 is essentially unaffected, relative to 4 pinned
	// threads.
	run := func(threads int, pinned bool) (p50, p95 float64) {
		nodes, r := cluster(t, 3, 2*usCycles)
		NewMemcachedServer(nodes[0], MemcachedConfig{Threads: threads, Pinned: pinned})
		const dur = 240_000_000 // 75 ms
		// ~135k QPS against a ~150k QPS capacity server: the heavily
		// loaded (but unsaturated) regime where a fifth thread must share
		// a core with a busy sibling much of the time.
		m1 := NewMutilate(nodes[1], MutilateConfig{Server: nodes[0].IP(), QPS: 67_500, Connections: 10, Duration: dur, Seed: 21})
		m2 := NewMutilate(nodes[2], MutilateConfig{Server: nodes[0].IP(), QPS: 67_500, Connections: 10, Duration: dur, Seed: 22})
		runFor(t, r, dur+clock.Cycles(2000*usCycles))
		all := m1.Latencies
		_ = m2
		return all.Median(), all.P95()
	}
	p50Bal, p95Bal := run(4, true)
	p50Imb, p95Imb := run(5, false)

	if p95Imb < p95Bal*1.2 {
		t.Errorf("5-thread p95 (%.1f us) not clearly worse than 4-pinned p95 (%.1f us)", p95Imb, p95Bal)
	}
	// The tail moves much more than the median (paper: "tail latency is
	// significantly worsened ... while median latency is essentially
	// unaffected").
	medianShift := p50Imb - p50Bal
	tailShift := p95Imb - p95Bal
	if medianShift < 0 {
		medianShift = -medianShift
	}
	if tailShift <= 2*medianShift {
		t.Errorf("tail shift (%.1f us) should dwarf median shift (%.1f us)", tailShift, medianShift)
	}
}

func TestMemcachedConnectionDistribution(t *testing.T) {
	// Connections must round-robin across workers like real memcached.
	nodes, _ := cluster(t, 2, usCycles)
	s := NewMemcachedServer(nodes[0], MemcachedConfig{Threads: 3})
	for port := uint16(0); port < 6; port++ {
		s.onRequest(0, nodes[1].IP(), basePort+port, make([]byte, 32))
	}
	if len(s.conns) != 6 {
		t.Errorf("tracked %d connections, want 6", len(s.conns))
	}
	counts := map[int]int{}
	for _, w := range s.conns {
		counts[w]++
	}
	for w := 0; w < 3; w++ {
		if counts[w] != 2 {
			t.Errorf("worker %d has %d connections, want 2", w, counts[w])
		}
	}
}

func TestMutilateDeterminism(t *testing.T) {
	run := func() (uint64, float64) {
		nodes, r := cluster(t, 2, usCycles)
		NewMemcachedServer(nodes[0], MemcachedConfig{Threads: 4, Pinned: true})
		m := NewMutilate(nodes[1], MutilateConfig{Server: nodes[0].IP(), QPS: 20000, Connections: 4, Duration: 30_000_000, Seed: 5})
		runFor(t, r, 32_000_000)
		return m.Received, m.Latencies.P95()
	}
	n1, p1 := run()
	n2, p2 := run()
	if n1 != n2 || p1 != p2 {
		t.Errorf("runs differ: (%d, %g) vs (%d, %g)", n1, p1, n2, p2)
	}
	if n1 == 0 {
		t.Error("no requests completed")
	}
}
