package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/token"
)

// This file hardens the distributed token transport. The original Bridge
// blocked forever on a dead peer and latched the first error with no
// recovery, so one flaky connection could wedge an entire scale-out run.
// The hardened Bridge adds, in layers:
//
//   - a connect-time handshake validating protocol version, batch step
//     size and (optionally) a topology hash, so mismatched halves fail
//     fast with a descriptive error instead of desynchronising;
//   - a monotonically increasing sequence number on every batch frame, so
//     the two sides can resynchronise exactly after a connection drop
//     (duplicates from retransmission are discarded, gaps are detected);
//   - deadline-based reads and writes (when the connection supports
//     deadlines, as net.Conn does), so a hung peer surfaces as an error
//     instead of blocking target time forever;
//   - bounded reconnection with exponential backoff plus a small resend
//     ring of recently sent batches, so a transient drop heals without
//     losing a single token — cycle counts after recovery are identical
//     to an undisturbed run (asserted by tests);
//   - an explicit degraded mode (Degrade) for the supervisor: a bridge
//     whose peer is declared permanently dead stops touching the network
//     and emits empty batches, letting the surviving partition drain and
//     report partial results instead of hanging.

// Protocol constants for the framed bridge stream.
const (
	helloMagic   uint32 = 0x4653_4b54 // "FSKT"
	helloVersion uint16 = 2
	helloSize           = 32
)

// ErrDegraded is latched on a bridge that the supervisor has marked
// permanently down; its TickBatch is a no-op from then on.
var ErrDegraded = errors.New("transport: bridge degraded (peer declared dead)")

// ErrClosed is latched on a bridge another goroutine has Closed; any
// in-flight or subsequent TickBatch fails fast instead of blocking.
var ErrClosed = errors.New("transport: bridge closed")

// errNonRetryable wraps handshake failures that reconnecting cannot fix
// (wrong protocol, wrong step, wrong topology).
type errNonRetryable struct{ err error }

func (e errNonRetryable) Error() string { return e.err.Error() }
func (e errNonRetryable) Unwrap() error { return e.err }

// deadlineConn is the optional connection capability used for timeouts.
type deadlineConn interface {
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// BridgeConfig tunes the hardened transport. The zero value reproduces
// the classic behaviour: block indefinitely, no reconnection, handshake
// with step validation only.
type BridgeConfig struct {
	// ReadTimeout bounds each batch read (and the handshake read) when
	// the connection supports deadlines. Zero blocks forever.
	ReadTimeout time.Duration
	// WriteTimeout bounds each batch write likewise.
	WriteTimeout time.Duration
	// TopologyHash, when non-zero on both sides, must match at handshake
	// time: it guards against wiring two halves of different topologies
	// (or different config revisions) together.
	TopologyHash uint64
	// Redial, when non-nil, reopens the connection after a transport
	// error. The bridge then re-handshakes and resynchronises from
	// sequence numbers.
	Redial func() (io.ReadWriter, error)
	// MaxReconnects bounds redial attempts per disconnect (default 0: a
	// transport error is immediately permanent).
	MaxReconnects int
	// BackoffBase is the first reconnect delay, doubling per attempt up
	// to BackoffMax. Defaults: 50ms base, 2s max.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// ResendWindow is how many sent batches are retained for
	// retransmission after a reconnect (default 8). A peer that fell
	// further behind than this cannot be resynchronised.
	ResendWindow int
}

func (c *BridgeConfig) fillDefaults() {
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.ResendWindow <= 0 {
		c.ResendWindow = 8
	}
}

// ringEntry is one retained sent batch.
type ringEntry struct {
	seq uint64
	b   *token.Batch
}

// Bridge splices one token stream endpoint of a distributed simulation.
// It forwards everything received on its single local port to the peer
// and emits everything the peer sends. Both sides must advance in
// identical batch steps (validated by the handshake).
//
// A Bridge is driven from a single scheduler goroutine; it is not safe
// for concurrent TickBatch calls. Degrade is intended to be called
// between Run steps (the supervisor's pattern).
type Bridge struct {
	name string
	cfg  BridgeConfig
	conn io.ReadWriter
	w    *bufio.Writer
	r    *bufio.Reader

	// connMu guards the conn pointer only: Close may run concurrently
	// with the scheduler goroutine swapping connections in reconnect.
	connMu sync.Mutex
	// closed flips once on Close; stop is closed alongside so a
	// reconnect backoff sleep aborts immediately instead of waiting out
	// BackoffMax.
	closed atomic.Bool
	stop   chan struct{}

	err      error
	degraded bool

	handshaken bool
	step       int

	nextSend  uint64 // sequence number for the next batch we send
	nextRecv  uint64 // sequence number we expect from the peer next
	resendLow uint64 // first sequence the peer still needs (== nextSend when in sync)
	ring      []ringEntry

	reconnects int // total successful reconnects, for reports
	scratch    token.Batch

	// metrics, when non-nil, exports the recovery ledger and wire volume
	// to the observability layer (see metrics.go).
	metrics *bridgeMetrics
}

// NewBridge wraps a connection with the default (blocking, non-reconnecting)
// configuration. Each side of the distributed simulation creates one
// Bridge over its end of the connection and Connects it where the remote
// half of the topology would attach.
func NewBridge(name string, conn io.ReadWriter) *Bridge {
	return NewBridgeConfig(name, conn, BridgeConfig{})
}

// NewBridgeConfig wraps a connection with explicit robustness settings.
func NewBridgeConfig(name string, conn io.ReadWriter, cfg BridgeConfig) *Bridge {
	cfg.fillDefaults()
	b := &Bridge{name: name, cfg: cfg, stop: make(chan struct{})}
	b.setConn(conn)
	return b
}

func (b *Bridge) setConn(conn io.ReadWriter) {
	b.connMu.Lock()
	b.conn = conn
	b.connMu.Unlock()
	b.w = bufio.NewWriter(conn)
	b.r = bufio.NewReader(conn)
}

// currentConn reads the connection pointer under the lock; callers that
// only need its optional capabilities (Closer, deadlines) use this so
// they never race a concurrent Close/reconnect swap.
func (b *Bridge) currentConn() io.ReadWriter {
	b.connMu.Lock()
	defer b.connMu.Unlock()
	return b.conn
}

// Err reports the first permanent transport error encountered (the
// simulation cannot continue past one; subsequent batches are empty).
// Transient errors healed by reconnection are not reported here.
func (b *Bridge) Err() error { return b.err }

// Degraded reports whether the bridge has been marked permanently down.
func (b *Bridge) Degraded() bool { return b.degraded }

// Reconnects reports how many times the bridge successfully re-established
// its connection.
func (b *Bridge) Reconnects() int { return b.reconnects }

// Sent and Received report how many batches have been exchanged, which
// tells a supervisor the last target cycle the peer confirmed.
func (b *Bridge) Sent() uint64     { return b.nextSend }
func (b *Bridge) Received() uint64 { return b.nextRecv }

// Step reports the negotiated batch step in target cycles (0 before the
// handshake). Received()*Step() is the last target cycle the peer
// confirmed, which a supervisor reports for a dead partition.
func (b *Bridge) Step() int { return b.step }

// Degrade marks the bridge permanently down: TickBatch becomes a no-op
// that emits empty batches (the surviving partition sees silence from the
// dead one, exactly as if those links went dark). The underlying
// connection is closed if it supports Close.
func (b *Bridge) Degrade() {
	b.degraded = true
	if b.err == nil {
		b.err = ErrDegraded
	}
	if m := b.metrics; m != nil {
		m.degraded.Set(1)
	}
	b.closeConn()
}

// Reset revives a bridge (possibly degraded or errored) onto a fresh
// connection, rewinding both sequence counters to seq. It is the
// supervisor's recovery path: after restoring a dead peer from a
// checkpoint taken at cycle C, both sides resume the token stream at
// batch C/step, so the bridge must forget everything after that point —
// including its resend ring, whose retained batches belong to an
// abandoned timeline. The next TickBatch re-handshakes on the new
// connection.
func (b *Bridge) Reset(conn io.ReadWriter, seq uint64) {
	if conn != b.currentConn() {
		// Keep the connection alive when a fresh bridge is reset onto the
		// conn it was built with (the respawned peer's pattern).
		b.closeConn()
	}
	b.setConn(conn)
	if b.closed.CompareAndSwap(true, false) {
		// Revive a Closed bridge: arm a fresh stop channel for the next
		// Close.
		b.stop = make(chan struct{})
	}
	b.err = nil
	b.degraded = false
	b.handshaken = false
	b.step = 0
	b.nextSend = seq
	b.nextRecv = seq
	b.resendLow = seq
	b.ring = nil
	if m := b.metrics; m != nil {
		m.degraded.Set(0)
	}
}

func (b *Bridge) closeConn() {
	if c, ok := b.currentConn().(io.Closer); ok {
		c.Close()
	}
}

// Close aborts the bridge from any goroutine: the underlying connection
// is closed (failing any blocked read or write immediately) and a
// reconnect backoff sleep in progress is interrupted rather than waited
// out. The scheduler goroutine's next TickBatch latches ErrClosed.
// Close is idempotent and safe concurrently with TickBatch — it is the
// coordinator's lever for yanking a shard out of a doomed run without
// waiting for timeouts.
func (b *Bridge) Close() error {
	if b.closed.CompareAndSwap(false, true) {
		close(b.stop)
	}
	b.closeConn()
	return nil
}

// Name implements fame.Endpoint.
func (b *Bridge) Name() string { return b.name }

// NumPorts implements fame.Endpoint.
func (b *Bridge) NumPorts() int { return 1 }

// fail latches err (wrapped with the bridge name) as permanent.
func (b *Bridge) fail(err error) {
	if b.err == nil {
		b.err = fmt.Errorf("transport: bridge %q: %w", b.name, err)
		if m := b.metrics; m != nil {
			m.errors.Inc()
		}
	}
}

// TickBatch implements fame.Endpoint: ship the local batch and block for
// the peer's batch covering the same target window, handshaking first and
// transparently reconnecting on transient failures. After a permanent
// failure (or Degrade) it is a no-op, so the local runner keeps advancing
// with empty input from the dead partition instead of hanging.
func (b *Bridge) TickBatch(n int, in, out []*token.Batch) {
	if b.err != nil || b.degraded {
		return
	}
	if b.closed.Load() {
		b.fail(ErrClosed)
		return
	}
	if !b.handshaken {
		if err := b.handshake(n); err != nil {
			if !b.retryable(err) || !b.reconnect(n) {
				b.fail(err)
				return
			}
		}
	}
	if n != b.step {
		b.fail(fmt.Errorf("local step changed from %d to %d mid-run", b.step, n))
		return
	}
	for {
		err := b.exchange(n, in[0], out[0])
		if err == nil {
			return
		}
		if !b.retryable(err) || !b.reconnect(n) {
			b.fail(err)
			return
		}
		// Reconnected and resynchronised: retry the same window.
	}
}

func (b *Bridge) retryable(err error) bool {
	var nr errNonRetryable
	return !errors.As(err, &nr)
}

// handshake exchanges and validates hello frames. It also carries each
// side's resume sequence so a reconnect retransmits exactly the batches
// the peer is missing. The hello write runs concurrently with the read so
// the symmetric exchange cannot deadlock on unbuffered connections.
func (b *Bridge) handshake(step int) error {
	var hello [helloSize]byte
	binary.BigEndian.PutUint32(hello[0:4], helloMagic)
	binary.BigEndian.PutUint16(hello[4:6], helloVersion)
	// hello[6:8] flags, reserved.
	binary.BigEndian.PutUint32(hello[8:12], uint32(step))
	binary.BigEndian.PutUint64(hello[16:24], b.cfg.TopologyHash)
	binary.BigEndian.PutUint64(hello[24:32], b.nextRecv)

	b.armWriteDeadline()
	writeDone := make(chan error, 1)
	go func() {
		err := func() error {
			if _, err := b.w.Write(hello[:]); err != nil {
				return err
			}
			return b.w.Flush()
		}()
		if err != nil {
			b.closeConn() // unblock the reader if the peer is silent
		}
		writeDone <- err
	}()

	b.armReadDeadline()
	var peer [helloSize]byte
	_, readErr := io.ReadFull(b.r, peer[:])
	if readErr != nil {
		b.closeConn() // unblock the writer if it is stuck
	}
	writeErr := <-writeDone
	if readErr != nil && writeErr != nil &&
		errors.Is(readErr, io.ErrClosedPipe) && !errors.Is(writeErr, io.ErrClosedPipe) {
		readErr = nil
	}
	if readErr != nil {
		return fmt.Errorf("handshake read: %w", readErr)
	}
	if writeErr != nil {
		return fmt.Errorf("handshake write: %w", writeErr)
	}

	if magic := binary.BigEndian.Uint32(peer[0:4]); magic != helloMagic {
		return errNonRetryable{fmt.Errorf("handshake: bad magic %#x (peer is not a token bridge?)", magic)}
	}
	if v := binary.BigEndian.Uint16(peer[4:6]); v != helloVersion {
		return errNonRetryable{fmt.Errorf("handshake: protocol version %d, local %d", v, helloVersion)}
	}
	if ps := int(binary.BigEndian.Uint32(peer[8:12])); ps != 0 && step != 0 && ps != step {
		return errNonRetryable{fmt.Errorf("handshake: peer batch step %d cycles, local step %d (link latencies must match)", ps, step)}
	}
	if ph := binary.BigEndian.Uint64(peer[16:24]); ph != 0 && b.cfg.TopologyHash != 0 && ph != b.cfg.TopologyHash {
		return errNonRetryable{fmt.Errorf("handshake: topology hash %#x, local %#x (the two halves describe different targets)", ph, b.cfg.TopologyHash)}
	}
	if m := b.metrics; m != nil {
		m.bytesSent.Add(helloSize)
		m.bytesRecv.Add(helloSize)
	}
	resume := binary.BigEndian.Uint64(peer[24:32])
	// resume may legitimately be nextSend+1: the peer committed our
	// in-flight batch but its acknowledgment (the peer's own batch) was
	// lost with the connection.
	if resume > b.nextSend+1 {
		return errNonRetryable{fmt.Errorf("handshake: peer expects batch %d but only %d were ever sent", resume, b.nextSend)}
	}
	if resume < b.nextSend && !b.ringHas(resume) {
		return errNonRetryable{fmt.Errorf("handshake: peer needs batch %d, which is beyond the %d-batch resend window", resume, b.cfg.ResendWindow)}
	}
	b.resendLow = resume
	b.step = step
	b.handshaken = true
	return nil
}

func (b *Bridge) ringHas(seq uint64) bool {
	if len(b.ring) == 0 {
		return false
	}
	e := b.ring[seq%uint64(len(b.ring))]
	return e.b != nil && e.seq == seq
}

func (b *Bridge) ringPut(seq uint64, batch *token.Batch) {
	if len(b.ring) == 0 {
		b.ring = make([]ringEntry, b.cfg.ResendWindow)
	}
	e := &b.ring[seq%uint64(len(b.ring))]
	if e.b == nil {
		e.b = batch.Copy()
	} else {
		e.b.Reset(batch.N)
		e.b.Slots = append(e.b.Slots[:0], batch.Slots...)
	}
	e.seq = seq
}

// exchange performs one sequenced batch swap: retransmit anything the peer
// is missing, send the current batch, and read frames until the expected
// sequence number arrives (discarding duplicates). The write side runs
// concurrently with the read so the symmetric exchange cannot deadlock on
// unbuffered connections.
func (b *Bridge) exchange(n int, in, out *token.Batch) error {
	cur := b.nextSend
	if m := b.metrics; m != nil && b.resendLow < cur {
		m.resyncs.Inc()
		m.resentFrames.Add(cur - b.resendLow)
	}
	b.armWriteDeadline()
	writeDone := make(chan error, 1)
	go func() {
		err := func() error {
			for seq := b.resendLow; seq < cur; seq++ {
				if !b.ringHas(seq) {
					return errNonRetryable{fmt.Errorf("batch %d fell out of the resend window", seq)}
				}
				if err := b.writeFrame(seq, b.ring[seq%uint64(len(b.ring))].b); err != nil {
					return err
				}
			}
			if b.resendLow <= cur {
				// Skipped only when the peer already committed our current
				// batch before the connection dropped.
				if err := b.writeFrame(cur, in); err != nil {
					return err
				}
			}
			return b.w.Flush()
		}()
		if err != nil {
			b.closeConn() // unblock the reader if the peer is silent
		}
		writeDone <- err
	}()

	readErr := b.readExpected(out)
	if readErr != nil {
		b.closeConn() // unblock the writer if it is stuck mid-write
	}
	writeErr := <-writeDone
	// When both sides fail, one of them closed the connection to unblock
	// the other: a closed-pipe error is then the secondary symptom, not
	// the cause, so report the genuine failure.
	if writeErr != nil && readErr != nil &&
		errors.Is(writeErr, io.ErrClosedPipe) && !errors.Is(readErr, io.ErrClosedPipe) {
		writeErr = nil
	}
	if writeErr != nil {
		return fmt.Errorf("send batch %d: %w", cur, writeErr)
	}
	if readErr != nil {
		return fmt.Errorf("recv batch %d: %w", b.nextRecv, readErr)
	}
	if out.N != n {
		return errNonRetryable{fmt.Errorf("peer batch covers %d cycles, local step is %d", out.N, n)}
	}
	// Committed: the peer has everything up to and including cur, and we
	// consumed its batch for this window.
	b.ringPut(cur, in)
	b.nextSend = cur + 1
	b.resendLow = b.nextSend
	b.nextRecv++
	if m := b.metrics; m != nil {
		m.batchesSent.Inc()
		m.batchesRecv.Inc()
		m.bytesRecv.Add(frameWireBytes(len(out.Slots)))
	}
	return nil
}

// readExpected reads frames until one carries the expected sequence
// number. Frames below it are retransmitted duplicates (the peer could not
// know we already had them) and are discarded; a frame above it means
// batches were lost for good.
func (b *Bridge) readExpected(out *token.Batch) error {
	for {
		b.armReadDeadline()
		var hdr [8]byte
		if _, err := io.ReadFull(b.r, hdr[:]); err != nil {
			return err
		}
		seq := binary.BigEndian.Uint64(hdr[:])
		switch {
		case seq == b.nextRecv:
			return ReadBatch(b.r, out)
		case seq < b.nextRecv:
			// Duplicate from a resync: decode and discard.
			if err := ReadBatch(b.r, &b.scratch); err != nil {
				return err
			}
			if m := b.metrics; m != nil {
				m.dupFrames.Inc()
				m.bytesRecv.Add(frameWireBytes(len(b.scratch.Slots)))
			}
		default:
			if m := b.metrics; m != nil {
				m.seqGaps.Inc()
			}
			return errNonRetryable{fmt.Errorf("sequence gap: got batch %d, expected %d", seq, b.nextRecv)}
		}
	}
}

func (b *Bridge) writeFrame(seq uint64, batch *token.Batch) error {
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], seq)
	if _, err := b.w.Write(hdr[:]); err != nil {
		return err
	}
	if err := WriteBatch(b.w, batch); err != nil {
		return err
	}
	if m := b.metrics; m != nil {
		m.bytesSent.Add(frameWireBytes(len(batch.Slots)))
	}
	return nil
}

// reconnect tears down the current connection and redials with
// exponential backoff, re-handshaking (which resynchronises sequence
// numbers) on each fresh connection. It reports whether the bridge is
// usable again.
func (b *Bridge) reconnect(step int) bool {
	if b.cfg.Redial == nil || b.cfg.MaxReconnects <= 0 {
		return false
	}
	b.closeConn()
	b.handshaken = false
	backoff := b.cfg.BackoffBase
	for attempt := 1; attempt <= b.cfg.MaxReconnects; attempt++ {
		// The backoff sleep is interruptible: Close from another
		// goroutine aborts it immediately instead of waiting out
		// BackoffMax. The delay itself is jittered ±20% (deterministic
		// per bridge name and attempt) so a respawned fleet of shards
		// does not hammer the coordinator in lockstep.
		t := time.NewTimer(jitterBackoff(b.name, attempt, backoff))
		select {
		case <-t.C:
		case <-b.stop:
			t.Stop()
			return false
		}
		if backoff *= 2; backoff > b.cfg.BackoffMax {
			backoff = b.cfg.BackoffMax
		}
		conn, err := b.cfg.Redial()
		if err != nil {
			continue
		}
		b.setConn(conn)
		if err := b.handshake(step); err != nil {
			if !b.retryable(err) {
				// Reconnecting cannot fix a protocol/topology mismatch;
				// surface the specific reason rather than the original
				// transient error.
				b.fail(err)
				return false
			}
			b.closeConn()
			continue
		}
		b.reconnects++
		if m := b.metrics; m != nil {
			m.reconnects.Inc()
		}
		return true
	}
	return false
}

func (b *Bridge) armReadDeadline() {
	if b.cfg.ReadTimeout <= 0 {
		return
	}
	if dc, ok := b.currentConn().(deadlineConn); ok {
		dc.SetReadDeadline(time.Now().Add(b.cfg.ReadTimeout))
	}
}

func (b *Bridge) armWriteDeadline() {
	if b.cfg.WriteTimeout <= 0 {
		return
	}
	if dc, ok := b.currentConn().(deadlineConn); ok {
		dc.SetWriteDeadline(time.Now().Add(b.cfg.WriteTimeout))
	}
}

// jitterBackoff spreads a nominal backoff delay across [0.8, 1.2) of its
// value, deterministically seeded from the bridge name and attempt
// number: a given bridge always produces the same delay sequence (tests
// and reruns are reproducible), while different bridges — the respawned
// shard fleet — spread out instead of redialing in lockstep.
func jitterBackoff(name string, attempt int, backoff time.Duration) time.Duration {
	h := fnv.New64a()
	h.Write([]byte(name))
	var a [8]byte
	binary.BigEndian.PutUint64(a[:], uint64(attempt))
	h.Write(a[:])
	// Top 53 bits → uniform float in [0, 1).
	u := float64(h.Sum64()>>11) / float64(uint64(1)<<53)
	return time.Duration(float64(backoff) * (0.8 + 0.4*u))
}
