// Package ethernet implements the link-layer and minimal network-layer
// protocols carried over the simulated 200 Gbit/s network.
//
// The simulated links move 64-bit flits (one per target cycle at 3.2 GHz =
// 204.8 Gbit/s raw). A frame is serialised to bytes, split into 8-byte
// flits, and the final flit is marked with the token Last flag; switches
// and NICs delimit packets purely by Last, without parsing the link layer,
// exactly as in the paper.
//
// The frame layout places the destination MAC in the first flit so that a
// switch can route a packet after ingesting a single flit's worth of
// header:
//
//	bytes  0..1   frame length in bytes (simulation framing preamble)
//	bytes  2..7   destination MAC
//	bytes  8..13  source MAC
//	bytes 14..15  EtherType
//	bytes 16..    payload
package ethernet

import (
	"encoding/binary"
	"fmt"
)

// MAC is a 48-bit Ethernet address stored in the low bits of a uint64.
type MAC uint64

// Broadcast is the all-ones broadcast address; switches duplicate broadcast
// frames to every port except the ingress port.
const Broadcast MAC = 0xffff_ffff_ffff

// String renders the address in standard colon notation.
func (m MAC) String() string {
	b := m.Bytes()
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", b[0], b[1], b[2], b[3], b[4], b[5])
}

// Bytes returns the 6-byte big-endian representation.
func (m MAC) Bytes() [6]byte {
	var b [6]byte
	for i := 0; i < 6; i++ {
		b[i] = byte(m >> (40 - 8*i))
	}
	return b
}

// MACFromBytes parses a 6-byte big-endian address.
func MACFromBytes(b []byte) MAC {
	var m MAC
	for i := 0; i < 6; i++ {
		m = m<<8 | MAC(b[i])
	}
	return m
}

// IP is an IPv4 address stored big-endian in a uint32.
type IP uint32

// String renders dotted-quad notation.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// EtherType identifies the payload protocol of a frame.
type EtherType uint16

// EtherTypes used by the simulated stack.
const (
	TypeIPv4 EtherType = 0x0800
	TypeARP  EtherType = 0x0806
	// TypeRemoteMem is the custom link protocol used by the disaggregated
	// memory case study (Section VI): the memory blade speaks a raw
	// request/response protocol directly over Ethernet.
	TypeRemoteMem EtherType = 0x88b5 // IEEE local experimental ethertype
)

// HeaderLen is the serialised frame header length in bytes.
const HeaderLen = 16

// MaxFrameLen bounds serialised frames; it corresponds to a jumbo-ish MTU
// large enough for a 4 KiB page plus headers (the remote-memory protocol
// moves whole pages).
const MaxFrameLen = 65535

// Frame is a link-layer frame.
type Frame struct {
	Dst     MAC
	Src     MAC
	Type    EtherType
	Payload []byte
}

// Encode serialises the frame.
func (f *Frame) Encode() ([]byte, error) {
	total := HeaderLen + len(f.Payload)
	if total > MaxFrameLen {
		return nil, fmt.Errorf("ethernet: frame length %d exceeds max %d", total, MaxFrameLen)
	}
	buf := make([]byte, total)
	binary.BigEndian.PutUint16(buf[0:2], uint16(total))
	db := f.Dst.Bytes()
	sb := f.Src.Bytes()
	copy(buf[2:8], db[:])
	copy(buf[8:14], sb[:])
	binary.BigEndian.PutUint16(buf[14:16], uint16(f.Type))
	copy(buf[16:], f.Payload)
	return buf, nil
}

// DecodeFrame parses a serialised frame, tolerating trailing padding bytes
// introduced by flit alignment.
func DecodeFrame(buf []byte) (*Frame, error) {
	if len(buf) < HeaderLen {
		return nil, fmt.Errorf("ethernet: frame too short: %d bytes", len(buf))
	}
	total := int(binary.BigEndian.Uint16(buf[0:2]))
	if total < HeaderLen || total > len(buf) {
		return nil, fmt.Errorf("ethernet: bad frame length field %d (have %d bytes)", total, len(buf))
	}
	f := &Frame{
		Dst:  MACFromBytes(buf[2:8]),
		Src:  MACFromBytes(buf[8:14]),
		Type: EtherType(binary.BigEndian.Uint16(buf[14:16])),
	}
	f.Payload = append([]byte(nil), buf[16:total]...)
	return f, nil
}

// FlitSize is the link word size in bytes: 64-bit flits, matching the
// paper's token data field width for 200 Gbit/s links at 3.2 GHz.
const FlitSize = 8

// ToFlits splits a serialised frame into 64-bit link flits, padding the
// final flit with zeros.
func ToFlits(buf []byte) []uint64 {
	n := (len(buf) + FlitSize - 1) / FlitSize
	flits := make([]uint64, n)
	for i := 0; i < n; i++ {
		var word [8]byte
		copy(word[:], buf[i*FlitSize:])
		flits[i] = binary.BigEndian.Uint64(word[:])
	}
	return flits
}

// FromFlits reassembles the byte stream carried by a sequence of flits.
func FromFlits(flits []uint64) []byte {
	buf := make([]byte, len(flits)*FlitSize)
	for i, f := range flits {
		binary.BigEndian.PutUint64(buf[i*FlitSize:], f)
	}
	return buf
}

// DstFromFirstFlit extracts the destination MAC from the first flit of a
// frame, letting a switch route after a single flit of header (bytes 2..7
// of the frame are the high-order 6 bytes... of flit 0 after the 2-byte
// length field).
func DstFromFirstFlit(flit0 uint64) MAC {
	return MAC(flit0 & 0xffff_ffff_ffff)
}

// FrameFlits is a convenience: encode a frame and convert it to flits.
func (f *Frame) FrameFlits() ([]uint64, error) {
	buf, err := f.Encode()
	if err != nil {
		return nil, err
	}
	return ToFlits(buf), nil
}

// DecodeFlits is a convenience: reassemble and parse a frame from flits.
func DecodeFlits(flits []uint64) (*Frame, error) {
	return DecodeFrame(FromFlits(flits))
}
