package softstack

import (
	"reflect"
	"testing"

	"repro/internal/clock"
	"repro/internal/ethernet"
	"repro/internal/fame"
	"repro/internal/switchmodel"
	"repro/internal/token"
)

const usCycles = 3200 // cycles per microsecond at 3.2 GHz

// advance drives a standalone node with no network traffic.
func advance(n *Node, cycles, step int) {
	in := []*token.Batch{token.NewBatch(step)}
	out := []*token.Batch{token.NewBatch(step)}
	for c := 0; c < cycles; c += step {
		out[0].Reset(step)
		n.TickBatch(step, in, out)
	}
}

// twoNodeNet wires a and b through a 2-port ToR switch with the given link
// latency and returns the runner.
func twoNodeNet(t *testing.T, a, b *Node, linkLat clock.Cycles) *fame.Runner {
	t.Helper()
	sw := switchmodel.New(switchmodel.Config{Name: "tor", Ports: 2, SwitchingLatency: 10})
	sw.MACTable().Set(a.MAC(), 0)
	sw.MACTable().Set(b.MAC(), 1)
	r := fame.NewRunner()
	r.Add(a)
	r.Add(b)
	r.Add(sw)
	if err := r.Connect(a, 0, sw, 0, linkLat); err != nil {
		t.Fatal(err)
	}
	if err := r.Connect(b, 0, sw, 1, linkLat); err != nil {
		t.Fatal(err)
	}
	return r
}

func mkNode(name string, mac ethernet.MAC, ip ethernet.IP, arp map[ethernet.IP]ethernet.MAC) *Node {
	return NewNode(Config{Name: name, MAC: mac, IP: ip, Cores: 4, Seed: uint64(mac), StaticARP: arp})
}

func TestPingRTTMatchesModel(t *testing.T) {
	// 2 us links: ideal RTT = 4*2us + 2*10cyc; measured must be ideal +
	// ~34 us of kernel overhead, reproducing Figure 5's offset.
	const linkLat = 2 * usCycles
	arp := map[ethernet.IP]ethernet.MAC{0x0a000001: 0x1, 0x0a000002: 0x2}
	a := mkNode("a", 0x1, 0x0a000001, arp)
	b := mkNode("b", 0x2, 0x0a000002, arp)
	r := twoNodeNet(t, a, b, linkLat)

	var results []PingResult
	a.Ping(0, b.IP(), 10, 100*usCycles, func(res []PingResult) { results = res })
	for r.Cycle() < 5_000_000 && results == nil {
		if err := r.Run(linkLat * 8); err != nil {
			t.Fatal(err)
		}
	}
	if results == nil {
		t.Fatal("ping did not complete")
	}
	ideal := clock.Cycles(4*linkLat + 2*10)
	overhead := clock.Cycles(34 * usCycles)
	for _, pr := range results {
		got := pr.RTT
		want := ideal + overhead
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		// Allow a microsecond of slack for frame serialisation.
		if diff > usCycles {
			t.Errorf("seq %d: RTT = %d cycles (%.2f us), want ~%d (%.2f us)",
				pr.Seq, got, float64(got)/usCycles, want, float64(want)/usCycles)
		}
	}
}

func TestFirstPingIncludesARP(t *testing.T) {
	// With an empty ARP cache the first sample must be visibly slower
	// than the rest — the artifact the paper's methodology discards.
	const linkLat = 2 * usCycles
	a := mkNode("a", 0x1, 0x0a000001, nil)
	b := mkNode("b", 0x2, 0x0a000002, nil)
	r := twoNodeNet(t, a, b, linkLat)

	var results []PingResult
	a.Ping(0, b.IP(), 5, 200*usCycles, func(res []PingResult) { results = res })
	for r.Cycle() < 10_000_000 && results == nil {
		if err := r.Run(linkLat * 8); err != nil {
			t.Fatal(err)
		}
	}
	if results == nil {
		t.Fatal("ping did not complete")
	}
	first := results[0].RTT
	for _, pr := range results[1:] {
		if first <= pr.RTT {
			t.Errorf("first ping (%d) not slower than seq %d (%d)", first, pr.Seq, pr.RTT)
		}
	}
}

func TestUDPRoundTrip(t *testing.T) {
	const linkLat = usCycles
	arp := map[ethernet.IP]ethernet.MAC{0x0a000001: 0x1, 0x0a000002: 0x2}
	a := mkNode("a", 0x1, 0x0a000001, arp)
	b := mkNode("b", 0x2, 0x0a000002, arp)
	r := twoNodeNet(t, a, b, linkLat)

	var reply []byte
	var replyAt clock.Cycles
	b.HandleUDP(7, func(now clock.Cycles, src ethernet.IP, srcPort uint16, payload []byte) {
		b.SendUDP(now, src, srcPort, 7, append([]byte("echo:"), payload...))
	})
	a.HandleUDP(9, func(now clock.Cycles, src ethernet.IP, srcPort uint16, payload []byte) {
		reply = payload
		replyAt = now
	})
	a.At(0, func(now clock.Cycles) { a.SendUDP(now, b.IP(), 7, 9, []byte("hi")) })

	for r.Cycle() < 5_000_000 && reply == nil {
		if err := r.Run(linkLat * 8); err != nil {
			t.Fatal(err)
		}
	}
	if string(reply) != "echo:hi" {
		t.Fatalf("reply = %q", reply)
	}
	// Latency must include at least 2 network crossings and 4 kernel
	// crossings.
	min := clock.Cycles(2*2*linkLat) + 2*(a.Costs().KernelTX+a.Costs().KernelRX)
	if replyAt < min {
		t.Errorf("UDP round trip at %d cycles, want >= %d", replyAt, min)
	}
}

func TestRawStreamBandwidth(t *testing.T) {
	// A 10 Gbit/s paced stream of 1500 B frames must deliver ~10 Gbit/s
	// at the receiver.
	const linkLat = 2 * usCycles
	a := mkNode("a", 0x1, 0x0a000001, nil)
	b := mkNode("b", 0x2, 0x0a000002, nil)
	r := twoNodeNet(t, a, b, linkLat)

	const dur = 1_000_000 // cycles of stream time (312.5 us)
	a.StartRawStream(0, b.MAC(), 1500, 10, dur)
	total := clock.Cycles(dur + 100*linkLat)
	total -= total % linkLat
	if err := r.Run(total); err != nil {
		t.Fatal(err)
	}
	bits := float64(b.Stats().BytesRecv) * 8
	gbps := bits / (float64(dur) / 3.2e9) / 1e9
	if gbps < 9 || gbps > 11 {
		t.Errorf("delivered %.2f Gbit/s, want ~10", gbps)
	}
}

func TestRawStreamLineRateCap(t *testing.T) {
	// Asking for 400 Gbit/s on a 204.8 Gbit/s link must cap at line rate.
	a := mkNode("a", 0x1, 0x0a000001, nil)
	b := mkNode("b", 0x2, 0x0a000002, nil)
	r := twoNodeNet(t, a, b, usCycles)
	const dur = 500_000
	a.StartRawStream(0, b.MAC(), 1504, 400, dur)
	total := clock.Cycles(dur + 50*usCycles)
	total -= total % usCycles
	if err := r.Run(total); err != nil {
		t.Fatal(err)
	}
	gbps := float64(b.Stats().BytesRecv) * 8 / (float64(dur) / 3.2e9) / 1e9
	if gbps > 205 {
		t.Errorf("delivered %.2f Gbit/s, exceeds line rate", gbps)
	}
	if gbps < 190 {
		t.Errorf("delivered %.2f Gbit/s, expected near line rate", gbps)
	}
}

func TestThreadsSerialiseOnOneCore(t *testing.T) {
	n := NewNode(Config{Name: "n", MAC: 1, IP: 1, Cores: 1})
	t1 := n.NewThread(0)
	t2 := n.NewThread(0)
	var done1, done2 clock.Cycles
	n.At(0, func(now clock.Cycles) {
		t1.Submit(now, Job{Cost: 1000, Fn: func(d clock.Cycles) { done1 = d }})
		t2.Submit(now, Job{Cost: 1000, Fn: func(d clock.Cycles) { done2 = d }})
	})
	advance(n, 10_000, 256)
	if done1 == 0 || done2 == 0 {
		t.Fatal("jobs did not complete")
	}
	if done2 < done1+1000 {
		t.Errorf("jobs overlapped on one core: done1=%d done2=%d", done1, done2)
	}
}

func TestThreadsParallelOnTwoCores(t *testing.T) {
	n := NewNode(Config{Name: "n", MAC: 1, IP: 1, Cores: 2})
	t1 := n.NewThread(0)
	t2 := n.NewThread(1)
	var done1, done2 clock.Cycles
	n.At(0, func(now clock.Cycles) {
		t1.Submit(now, Job{Cost: 1000, Fn: func(d clock.Cycles) { done1 = d }})
		t2.Submit(now, Job{Cost: 1000, Fn: func(d clock.Cycles) { done2 = d }})
	})
	advance(n, 10_000, 256)
	if done1 != done2 {
		t.Errorf("pinned threads on separate cores should finish together: %d vs %d", done1, done2)
	}
}

func TestThreadFIFOWork(t *testing.T) {
	n := NewNode(Config{Name: "n", MAC: 1, IP: 1, Cores: 1})
	th := n.NewThread(0)
	var order []int
	n.At(0, func(now clock.Cycles) {
		for i := 0; i < 5; i++ {
			i := i
			th.Submit(now, Job{Cost: 100, Fn: func(d clock.Cycles) { order = append(order, i) }})
		}
	})
	advance(n, 10_000, 256)
	if !reflect.DeepEqual(order, []int{0, 1, 2, 3, 4}) {
		t.Errorf("job order = %v", order)
	}
}

func TestThreadBusyAccounting(t *testing.T) {
	n := NewNode(Config{Name: "n", MAC: 1, IP: 1, Cores: 2})
	th := n.NewThread(-1)
	n.At(0, func(now clock.Cycles) {
		th.Submit(now, Job{Cost: 500})
		th.Submit(now, Job{Cost: 700})
	})
	advance(n, 10_000, 256)
	if th.Busy != 1200 {
		t.Errorf("Busy = %d, want 1200", th.Busy)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	runOnce := func() []PingResult {
		arp := map[ethernet.IP]ethernet.MAC{0x0a000001: 0x1, 0x0a000002: 0x2}
		a := mkNode("a", 0x1, 0x0a000001, arp)
		b := mkNode("b", 0x2, 0x0a000002, arp)
		r := twoNodeNet(t, a, b, 2*usCycles)
		var results []PingResult
		a.Ping(0, b.IP(), 20, 50*usCycles, func(res []PingResult) { results = res })
		for r.Cycle() < 10_000_000 && results == nil {
			if err := r.Run(16 * usCycles); err != nil {
				t.Fatal(err)
			}
		}
		return results
	}
	r1, r2 := runOnce(), runOnce()
	if !reflect.DeepEqual(r1, r2) {
		t.Error("identical runs produced different results")
	}
}

func TestUnpinnedPlacementCollides(t *testing.T) {
	// The sloppy-wakeup policy must sometimes place two runnable threads
	// on the same core even when others idle — that is the phenomenon
	// behind Fig. 7's unpinned p95 — while pinned threads never collide.
	countCollisions := func(pinned bool) int {
		n := NewNode(Config{Name: "n", MAC: 1, IP: 1, Cores: 4, Seed: 42})
		p1, p2 := -1, -1
		if pinned {
			p1, p2 = 0, 1
		}
		th1 := n.NewThread(p1)
		th2 := n.NewThread(p2)
		collisions := 0
		// Each round wakes both threads simultaneously with every core
		// idle. If they land on the same core, the two 100-cycle jobs
		// serialise and finish at different cycles.
		for round := 0; round < 200; round++ {
			d1, d2 := new(clock.Cycles), new(clock.Cycles)
			n.At(clock.Cycles(round*10_000), func(now clock.Cycles) {
				th1.Submit(now, Job{Cost: 100, Fn: func(d clock.Cycles) { *d1 = d }})
				th2.Submit(now, Job{Cost: 100, Fn: func(d clock.Cycles) { *d2 = d }})
			})
			n.At(clock.Cycles(round*10_000+9000), func(now clock.Cycles) {
				if *d1 != *d2 {
					collisions++
				}
			})
		}
		advance(n, 200*10_000+50_000, 1000)
		return collisions
	}
	if got := countCollisions(true); got != 0 {
		t.Errorf("pinned threads collided %d times, want 0", got)
	}
	if got := countCollisions(false); got == 0 {
		t.Error("unpinned threads never collided; placement policy too perfect for Fig 7")
	}
}

func TestIdleCoreStealsWaitingThread(t *testing.T) {
	// Two unpinned threads forced onto core 0 (via wake affinity would be
	// probabilistic, so pin one and queue behind it): when core 1 finishes
	// its own work and idles, it must steal the waiting unpinned thread.
	n := NewNode(Config{Name: "n", MAC: 1, IP: 1, Cores: 2, Seed: 3})
	pinned := n.NewThread(0)   // owns core 0
	floater := n.NewThread(-1) // starts with lastCore 1
	helper := n.NewThread(1)   // briefly occupies core 1
	var floaterDone clock.Cycles
	n.At(0, func(now clock.Cycles) {
		pinned.Submit(now, Job{Cost: 100_000})
		helper.Submit(now, Job{Cost: 500})
	})
	n.At(600, func(now clock.Cycles) {
		// Core 1 is free again; core 0 busy until 100k. Wherever the
		// floater lands, it must complete long before 100k because either
		// it was placed on the idle core or stolen to it.
		floater.Submit(now, Job{Cost: 1000, Fn: func(d clock.Cycles) { floaterDone = d }})
	})
	advance(n, 200_000, 1000)
	if floaterDone == 0 {
		t.Fatal("floater never ran")
	}
	if floaterDone > 50_000 {
		t.Errorf("floater finished at %d; idle balancing failed", floaterDone)
	}
}

func TestQuantumRotationUnderContention(t *testing.T) {
	// Two busy unpinned threads on one core: the runner keeps the core
	// within its quantum, then rotates, so both make progress and neither
	// starves.
	n := NewNode(Config{Name: "n", MAC: 1, IP: 1, Cores: 1, Seed: 4})
	t1 := n.NewThread(0)
	t2 := n.NewThread(0)
	var done1, done2 int
	n.At(0, func(now clock.Cycles) {
		for i := 0; i < 20; i++ {
			t1.Submit(now, Job{Cost: 200_000, Fn: func(clock.Cycles) { done1++ }})
			t2.Submit(now, Job{Cost: 200_000, Fn: func(clock.Cycles) { done2++ }})
		}
	})
	// 20 jobs x 2 threads x 200k cycles (PS-stretched while both queued).
	advance(n, 20_000_000, 10_000)
	if done1 == 0 || done2 == 0 {
		t.Fatalf("starvation: done1=%d done2=%d", done1, done2)
	}
	if done1+done2 < 20 {
		t.Errorf("little progress: done1=%d done2=%d", done1, done2)
	}
	// Neither thread should lap the other by more than a few quanta worth
	// of jobs.
	diff := done1 - done2
	if diff < 0 {
		diff = -diff
	}
	if diff > 17 {
		t.Errorf("unfair rotation: done1=%d done2=%d", done1, done2)
	}
}
