package riscv

import (
	"testing"
	"testing/quick"
)

// smcProgram builds a self-modifying loop: each of three iterations
// executes a target instruction (initially ADDI A0,A0,1), then stores a
// replacement word (ADDI A0,A0,100) over it, optionally followed by
// fence.i. Expected A0 after the loop: 1 + 100 + 100 = 201.
func smcProgram(fencei bool) []uint32 {
	a := NewAsm()
	a.LI(A0, 0)
	a.LI(S0, 0)
	a.AUIPC(S1, 0) // S1 = address of this AUIPC
	auipcPC := a.PC() - 4
	a.Label("loop")
	targetOff := int32(a.PC() - auipcPC)
	a.Word(encI(1, uint32(A0), 0, uint32(A0), opImm)) // target: ADDI A0, A0, 1
	a.LI(T1, int32(encI(100, uint32(A0), 0, uint32(A0), opImm)))
	a.SW(T1, S1, targetOff)
	if fencei {
		a.FENCEI()
	}
	a.ADDI(S0, S0, 1)
	a.LI(T3, 3)
	a.BLT(S0, T3, "loop")
	a.EBREAK()
	return a.MustAssemble()
}

func runWords(t *testing.T, words []uint32, decode bool, maxSteps int) *CPU {
	t.Helper()
	bus := newFlatBus(1 << 16)
	bus.loadProgram(words)
	cpu := New(bus, 0, 0)
	cpu.SetDecodeCache(decode)
	for i := 0; i < maxSteps && !cpu.Halted; i++ {
		cpu.Step()
	}
	if !cpu.Halted {
		t.Fatal("program did not halt")
	}
	return cpu
}

// TestSelfModifyingCode runs a program that patches its own instruction
// stream, with and without fence.i, and asserts the predecode cache
// changes nothing: same result, same architectural state, same stats.
func TestSelfModifyingCode(t *testing.T) {
	for _, tc := range []struct {
		name   string
		fencei bool
	}{
		{"with-fencei", true},
		// Same-hart stores invalidate the predecode cache directly, so the
		// patched stream must be honoured even without the fence.
		{"without-fencei", false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			words := smcProgram(tc.fencei)
			on := runWords(t, words, true, 1000)
			off := runWords(t, words, false, 1000)
			if on.X[A0] != 201 {
				t.Errorf("A0 = %d, want 201", on.X[A0])
			}
			if on.X != off.X || on.PC != off.PC || on.stats != off.stats {
				t.Errorf("decode cache diverged: on A0=%d off A0=%d", on.X[A0], off.X[A0])
			}
		})
	}
}

// TestDecodeCacheRandomToggle steps a self-modifying program in lockstep
// on two harts — one with the decode cache permanently off, one whose
// cache is toggled pseudo-randomly mid-run — and asserts bit-identical
// architectural state and per-step cycle cost throughout.
func TestDecodeCacheRandomToggle(t *testing.T) {
	words := smcProgram(true)
	check := func(seed uint64) bool {
		mk := func(decode bool) *CPU {
			bus := newFlatBus(1 << 16)
			bus.latency = 1 // make fetch latency part of the comparison
			bus.loadProgram(words)
			cpu := New(bus, 0, 0)
			cpu.SetDecodeCache(decode)
			return cpu
		}
		ref, tog := mk(false), mk(true)
		s := seed
		for step := 0; !ref.Halted && step < 1000; step++ {
			if step%5 == 0 {
				tog.SetDecodeCache(s&1 == 1)
				s = s*6364136223846793005 + 1442695040888963407
			}
			c1 := ref.Step()
			c2 := tog.Step()
			if c1 != c2 || ref.X != tog.X || ref.PC != tog.PC || ref.stats != tog.stats {
				t.Logf("diverged at step %d: cost %d vs %d, pc %#x vs %#x", step, c1, c2, ref.PC, tog.PC)
				return false
			}
		}
		return ref.Halted && tog.Halted
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
