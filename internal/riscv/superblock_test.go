package riscv

import (
	"testing"
	"testing/quick"

	"repro/internal/clock"
)

// The tests in this file pin down the superblock dispatcher's contract:
// StepBlock interleaved with Step under the SoC's compute-window
// scheduling must be bit-identical — registers, PC, stats, and cycle
// accounting — to pure per-instruction stepping, including across
// self-modifying code, stores into the next block's instruction stream,
// and blocks toggled on and off mid-run.

// runWindows drives cpu with the single-hart compute-window loop the SoC
// scheduler uses: windows of w cycles, the external line deasserted at
// every instruction boundary, StepBlock first (when block is true) and
// Step as the fallback. Returns the cycle the hart stopped on.
func runWindows(cpu *CPU, w, maxCycles int, block bool) clock.Cycles {
	now := clock.Cycles(0)
	max := clock.Cycles(maxCycles)
	for now < max && !cpu.Halted {
		last := now + clock.Cycles(w) - 1
		if last >= max {
			last = max - 1
		}
		for now <= last && !cpu.Halted {
			cpu.SetExternalInterrupt(false)
			cpu.Cycle = now
			var used clock.Cycles
			if block {
				used = cpu.StepBlock(last + 1 - now)
			}
			if used == 0 {
				used = cpu.Step()
				if used <= 0 {
					used = 1
				}
			}
			now += used
		}
	}
	return now
}

// mixedProgram exercises every superblock shape at once: span-eligible ALU
// runs, mul/div timing, loads and stores (which break spans and carry bus
// latency), conditional branches inside a block and an unconditional
// back edge ending one.
func mixedProgram() []uint32 {
	a := NewAsm()
	a.LI(S0, 0)
	a.LI(A0, 1)
	a.LI(A1, 7)
	a.LI64(S1, 0x8000) // scratch, well away from code
	a.Label("loop")
	for i := 0; i < 6; i++ {
		a.ADD(A0, A0, A1)
		a.XORI(A1, A1, 0x55)
		a.SLLI(A2, A0, 3)
		a.ADDIW(A3, A2, -9)
	}
	a.MUL(A4, A0, A1)
	a.DIVU(A5, A4, A1)
	a.SD(A4, S1, 0)
	a.LD(A6, S1, 0)
	a.BNE(A6, A4, "trap") // never taken: branch inside the block
	a.ADDI(S0, S0, 1)
	a.LI(T3, 40)
	a.BLT(S0, T3, "loop")
	a.EBREAK()
	a.Label("trap")
	a.EBREAK()
	return a.MustAssemble()
}

func runProgram(t *testing.T, words []uint32, window, maxCycles int, block bool) (*CPU, clock.Cycles) {
	t.Helper()
	bus := newFlatBus(1 << 16)
	bus.latency = 1
	bus.loadProgram(words)
	cpu := New(bus, 0, 0)
	cpu.SetDecodeCache(true)
	cpu.SetSuperblocks(block)
	end := runWindows(cpu, window, maxCycles, block)
	if !cpu.Halted {
		t.Fatalf("program did not halt in %d cycles (block=%v)", maxCycles, block)
	}
	return cpu, end
}

// TestSuperblockEquivalence runs representative programs under the
// compute-window driver with the superblock dispatcher on vs off, across
// window sizes from degenerate (1 cycle: every dispatch is budget-bound)
// to far larger than any block, and asserts identical architectural
// state, stats and cycle accounting.
func TestSuperblockEquivalence(t *testing.T) {
	programs := map[string][]uint32{
		"mixed":       mixedProgram(),
		"smc-fencei":  smcProgram(true),
		"smc-nofence": smcProgram(false),
	}
	// smc-fencei runs fence.i every iteration, wiping the predecode cache
	// before the back edge ever revisits warm code, so it legitimately
	// never forms a block — it pins down the cold path, not dispatch.
	dispatches := map[string]bool{"mixed": true, "smc-nofence": true}
	for name, words := range programs {
		for _, window := range []int{1, 3, 17, 64, 4096} {
			ref, refEnd := runProgram(t, words, window, 1_000_000, false)
			sb, sbEnd := runProgram(t, words, window, 1_000_000, true)
			if ref.X != sb.X || ref.PC != sb.PC || ref.stats != sb.stats || refEnd != sbEnd {
				t.Errorf("%s w=%d diverged: end %d vs %d, pc %#x vs %#x, stats %+v vs %+v",
					name, window, refEnd, sbEnd, ref.PC, sb.PC, ref.stats, sb.stats)
			}
			if ref.SuperblockInstret() != 0 {
				t.Errorf("%s w=%d: reference run dispatched %d instructions through blocks", name, window, ref.SuperblockInstret())
			}
			if window >= 17 && dispatches[name] && sb.SuperblockInstret() == 0 {
				t.Errorf("%s w=%d: superblock run never used block dispatch", name, window)
			}
		}
	}
}

// nextBlockPatchProgram lays out a 32-instruction block (sbMaxLen) whose
// first instruction stores a replacement word over the first instruction
// of the block immediately after it — the store lands outside the running
// block but inside code the dispatcher is about to chain into. Two
// iterations: the first patches a never-yet-executed word, the second
// overwrites a word that is predecoded and block-resident, so the
// envelope check must bump the version and exit dispatch before the stale
// instruction can issue. A0 must end at 200 (100 per iteration), never
// 1 + 100 (stale first pass) or 101/2 (stale second pass).
func nextBlockPatchProgram() []uint32 {
	a := NewAsm()
	a.LI(A0, 0)
	a.LI(S0, 0)
	a.AUIPC(S1, 0) // S1 = address of this AUIPC
	auipcPC := a.PC() - 4
	a.LI(T1, int32(encI(100, uint32(A0), 0, uint32(A0), opImm))) // ADDI A0,A0,100
	a.J("loop")
	a.Label("loop")
	loopPC := a.PC()
	// Patch the word at "target" — sbMaxLen instructions ahead, i.e. the
	// first entry of the NEXT superblock.
	swIdx := a.PC() / 4
	a.SW(T1, S1, 0) // offset fixed up below once target's PC is known
	for a.PC()-loopPC < (sbMaxLen-1)*4 {
		a.ADDI(S2, S2, 1) // filler: keeps the block exactly sbMaxLen long
	}
	targetOff := int32(a.PC() - auipcPC)
	a.Label("target")
	a.Word(encI(1, uint32(A0), 0, uint32(A0), opImm)) // target: ADDI A0,A0,1
	a.ADDI(S0, S0, 1)
	a.LI(T3, 2)
	a.BLT(S0, T3, "loop")
	a.EBREAK()
	words := a.MustAssemble()
	words[swIdx] = encS(targetOff, uint32(T1), uint32(S1), 2, opStore)
	return words
}

// TestSuperblockSMCNextBlockPatch is the cross-block invalidation case:
// a store issued from block N into block N+1's first instruction, with
// block N+1 both cold (first iteration) and already built (second).
func TestSuperblockSMCNextBlockPatch(t *testing.T) {
	words := nextBlockPatchProgram()
	for _, window := range []int{5, 64, 4096} {
		ref, refEnd := runProgram(t, words, window, 1_000_000, false)
		sb, sbEnd := runProgram(t, words, window, 1_000_000, true)
		if sb.X[A0] != 200 {
			t.Errorf("w=%d: A0 = %d, want 200 (stale pre-patch instruction executed)", window, sb.X[A0])
		}
		if ref.X != sb.X || ref.PC != sb.PC || ref.stats != sb.stats || refEnd != sbEnd {
			t.Errorf("w=%d: diverged from per-instruction path: end %d vs %d, A0 %d vs %d",
				window, refEnd, sbEnd, ref.X[A0], sb.X[A0])
		}
	}
}

// TestSuperblockRandomToggle steps a self-modifying program in lockstep
// on two harts — one with superblocks permanently off, one toggled
// pseudo-randomly between windows — and asserts bit-identical state and
// cycle accounting at every window boundary.
func TestSuperblockRandomToggle(t *testing.T) {
	words := smcProgram(true)
	check := func(seed uint64) bool {
		mk := func() *CPU {
			bus := newFlatBus(1 << 16)
			bus.latency = 1
			bus.loadProgram(words)
			cpu := New(bus, 0, 0)
			cpu.SetDecodeCache(true)
			cpu.SetSuperblocks(false)
			return cpu
		}
		ref, tog := mk(), mk()
		const w = 23
		s := seed
		var refNow, togNow clock.Cycles
		for win := 0; !ref.Halted && win < 2000; win++ {
			tog.SetSuperblocks(s&1 == 1)
			s = s*6364136223846793005 + 1442695040888963407
			refNow = runOneWindow(ref, refNow, w, false)
			togNow = runOneWindow(tog, togNow, w, true)
			if refNow != togNow || ref.X != tog.X || ref.PC != tog.PC || ref.stats != tog.stats {
				t.Logf("diverged in window %d: cycle %d vs %d, pc %#x vs %#x", win, refNow, togNow, ref.PC, tog.PC)
				return false
			}
		}
		return ref.Halted && tog.Halted
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// runOneWindow advances one w-cycle compute window (see runWindows).
func runOneWindow(cpu *CPU, now clock.Cycles, w int, block bool) clock.Cycles {
	last := now + clock.Cycles(w) - 1
	for now <= last && !cpu.Halted {
		cpu.SetExternalInterrupt(false)
		cpu.Cycle = now
		var used clock.Cycles
		if block {
			used = cpu.StepBlock(last + 1 - now)
		}
		if used == 0 {
			used = cpu.Step()
			if used <= 0 {
				used = 1
			}
		}
		now += used
	}
	return now
}
