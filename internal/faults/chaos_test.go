package faults

import (
	"reflect"
	"testing"
)

func TestParseChaos(t *testing.T) {
	got, err := ParseChaos("kill:shard1@8192, stall:shard2@16384+2000 ,tear:sub0,stop:shard0@4096")
	if err != nil {
		t.Fatal(err)
	}
	want := []ChaosEvent{
		{Kind: ChaosKill, Target: "shard1", Cycle: 8192},
		{Kind: ChaosStall, Target: "shard2", Cycle: 16384, StallMs: 2000},
		{Kind: ChaosTear, Target: "sub0"},
		{Kind: ChaosStop, Target: "shard0", Cycle: 4096},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v\nwant %+v", got, want)
	}
}

func TestParseChaosEmpty(t *testing.T) {
	if ev, err := ParseChaos("  "); err != nil || ev != nil {
		t.Fatalf("blank spec: %v %v", ev, err)
	}
}

func TestParseChaosRejects(t *testing.T) {
	bad := []string{
		"boom:shard0@1",       // unknown kind
		"kill:shard0",         // kill without cycle
		"kill:@100",           // empty target
		"stall:shard0@100",    // stall without duration
		"stall:shard0@100+0",  // zero duration
		"kill:shard0@100+5",   // duration on kill
		"tear:sub0@100",       // cycle on tear
		"kill shard0",         // missing colon
		"kill:shard0@x",       // bad cycle
		"stall:shard0@100+xy", // bad duration
	}
	for _, spec := range bad {
		if _, err := ParseChaos(spec); err == nil {
			t.Errorf("ParseChaos(%q) accepted, want error", spec)
		}
	}
}
