// distributed splits one cycle-exact simulation across two simulator
// processes connected by TCP, the way FireSim spans EC2 instances: node A
// lives in "host 1", the ToR switch and node B in "host 2", and a token
// bridge carries link batches between them. The token protocol keeps both
// halves cycle-exact — the measured RTT is identical to running the same
// target in one process.
package main

import (
	"fmt"
	"log"
	"net"

	"repro/internal/clock"
	"repro/internal/ethernet"
	"repro/internal/fame"
	"repro/internal/softstack"
	"repro/internal/switchmodel"
	"repro/internal/transport"
)

const linkLat = 3200 // 1 us per half-link

var arp = map[ethernet.IP]ethernet.MAC{0x0a000001: 0x1, 0x0a000002: 0x2}

// host2 owns the switch and node B.
func host2(conn net.Conn, done chan<- struct{}) {
	defer close(done)
	b := softstack.NewNode(softstack.Config{Name: "nodeB", MAC: 0x2, IP: 0x0a000002, StaticARP: arp})
	sw := switchmodel.New(switchmodel.Config{Name: "tor", Ports: 2, SwitchingLatency: 10})
	sw.MACTable().Set(0x1, 0)
	sw.MACTable().Set(0x2, 1)
	bridge := transport.NewBridge("to-host1", conn)

	r := fame.NewRunner()
	r.Add(b)
	r.Add(sw)
	r.Add(bridge)
	if err := r.Connect(bridge, 0, sw, 0, linkLat); err != nil {
		log.Fatal(err)
	}
	if err := r.Connect(b, 0, sw, 1, linkLat); err != nil {
		log.Fatal(err)
	}
	// Both hosts advance the same fixed horizon: the token protocol needs
	// matching batch counts on each side of the bridge.
	for r.Cycle() < horizon && bridge.Err() == nil {
		if err := r.Run(linkLat * 4); err != nil {
			log.Fatal(err)
		}
	}
}

// horizon is the target-time span both hosts simulate.
const horizon = 3_000_000 // cycles (~0.94 ms at 3.2 GHz)

func main() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	fmt.Printf("host 2 (switch + node B) listening on %v\n", ln.Addr())

	done := make(chan struct{})
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		defer conn.Close()
		host2(conn, done)
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	fmt.Println("host 1 (node A) connected; simulation advancing in lockstep batches")

	// Host 1 owns node A and its bridge half.
	a := softstack.NewNode(softstack.Config{Name: "nodeA", MAC: 0x1, IP: 0x0a000001, StaticARP: arp})
	bridge := transport.NewBridge("to-host2", conn)
	r := fame.NewRunner()
	r.Add(a)
	r.Add(bridge)
	if err := r.Connect(a, 0, bridge, 0, linkLat); err != nil {
		log.Fatal(err)
	}

	clk := clock.New(clock.DefaultTargetClock)
	var res []softstack.PingResult
	a.Ping(0, 0x0a000002, 5, clk.CyclesInMicros(100), func(rs []softstack.PingResult) { res = rs })
	for r.Cycle() < horizon && bridge.Err() == nil {
		if err := r.Run(linkLat * 4); err != nil {
			log.Fatal(err)
		}
	}
	<-done
	if bridge.Err() != nil {
		log.Fatalf("bridge: %v", bridge.Err())
	}
	if res == nil {
		log.Fatal("ping did not complete")
	}
	fmt.Printf("\nping node A -> node B across two simulator processes over TCP:\n")
	for _, p := range res {
		fmt.Printf("  seq=%d time=%.2f us\n", p.Seq, clk.Micros(p.RTT))
	}
	fmt.Println("\nthe RTT is bit-identical to the single-process simulation of the same")
	fmt.Println("target (see internal/transport's TestDistributedEquivalence).")
}
