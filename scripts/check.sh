#!/usr/bin/env bash
# Full local gate: static checks, build, and the test suite under the race
# detector. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== bench smoke =="
# One tiny topology, one rep: proves `firesim bench` still runs end to end
# and emits parseable JSON. Real numbers come from scripts/bench.sh. The
# node bench is skipped here; it gets its own gated pass below.
go run ./cmd/firesim bench -nodes 2 -rounds 64 -reps 1 -node-nodes 0 -out "$(mktemp)" >/dev/null

echo "== fast-path equivalence gate =="
# The predecode cache, fetch memo and quiescent skip must be bit-identical
# to the per-cycle path: self-modifying-code and toggle fuzz at the ISA
# level, the NIC idle-skip arithmetic against its tick loop, and the WFI /
# interrupt-storm / 8-node-faulted-cluster equivalences (sequential and
# parallel schedulers, mid-run checkpoint restored across settings).
go test -count=1 -run 'TestSelfModifyingCode|TestDecodeCacheRandomToggle' ./internal/riscv >/dev/null
go test -count=1 -run 'TestSkipIdleMatchesTickLoop' ./internal/nic >/dev/null
go test -count=1 -run 'TestWFIReceiverSkipEquivalence|TestInterruptStormEquivalence|TestClusterFaultedFastPathEquivalence' ./internal/soc >/dev/null

echo "== switch fast-path gate =="
# The zero-allocation switch datapath must stay bit-identical to the
# straightforward container/heap + copy-per-port reference (token-stream
# fuzz over random port counts, latencies, buffer limits, stall hooks and
# broadcast mixes), must tick dense and idle steady-state rounds without
# a single heap allocation, and must not let the egress rings or the
# packet pool grow without bound under sustained load.
go test -count=1 \
    -run 'TestSwitchStreamEquivalenceFuzz|TestSwitchZeroSteadyStateAllocs|TestOutQueueNoCapacityGrowth' \
    ./internal/switchmodel >/dev/null

echo "== superblock equivalence gate =="
# The superblock dispatcher (decode-once/execute-many with fetch spans)
# must be bit-identical to per-instruction stepping: window-driver
# equivalence across budget sizes, a store from block N into block N+1's
# first instruction, random mid-run toggling, and the partial-idle
# keystone (one dense hart dispatching through blocks while its sibling
# parks in WFI, checkpointed mid-window and restored across fast-path
# setting and scheduler).
go test -count=1 -run 'TestSuperblockEquivalence|TestSuperblockSMCNextBlockPatch|TestSuperblockRandomToggle' ./internal/riscv >/dev/null
go test -count=1 -run 'TestPartialIdleSkipEquivalence' ./internal/soc >/dev/null

echo "== node-MIPS regression smoke =="
# The fast paths must actually pay for their complexity. The slow side of
# each pair is the pre-PR per-cycle path, so BENCH_fame.json carries its
# own baseline and the gate needs no cross-run BENCH_history.jsonl state:
# on an idle WFI rack the quiescent skip is orders of magnitude faster
# than per-cycle ticking (gate 5x, far below the measured ~1000x); an
# instruction-dense workload must beat per-cycle ticking by 3x with the
# full fast-path stack on (superblocks + spans measure 3.7-5.6x here, vs
# ~1.2x before block dispatch — the 3x floor encodes the issue's >=2.5x
# over that baseline with host-noise margin); and the superblock A-B
# (fast paths with only block dispatch off) must show dispatch itself
# still pays (gate 1.3x, measured 1.6-2.1x).
go run ./cmd/firesim bench -nodes 2 -rounds 64 -reps 2 \
    -node-nodes 4 -node-rounds 256 \
    -idle-min-speedup 5 -dense-min-speedup 3.0 -sb-min-speedup 1.3 \
    -out "$(mktemp)" >/dev/null

echo "== metrics overhead gate (2 nodes) =="
# Leaving the obs instruments attached must cost under 5% on a loaded
# 2-node rack, both schedulers. The estimator alternates base and
# instrumented regions on one warm cluster and takes the median of
# flank-normalised ratios, but a single invocation can still catch a
# host-frequency swing mid-sequence; a real regression fails every
# attempt, so up to three tries de-flakes the gate without loosening it.
OVERHEAD_OK=0
for attempt in 1 2 3; do
    if go run ./cmd/firesim bench -nodes 2 -rounds 2048 -reps 5 \
        -node-nodes 0 -max-overhead-pct 5 -out "$(mktemp)" >/dev/null; then
        OVERHEAD_OK=1
        break
    fi
    echo "   attempt $attempt exceeded the overhead gate, retrying"
done
[ "$OVERHEAD_OK" = 1 ] || { echo "FAIL: 2-node metrics overhead above 5% on 3 attempts" >&2; exit 1; }

echo "== parallel speedup gate (8 nodes) =="
# The worker-pool scheduler must never lose to the sequential one. On a
# multi-core host it should win outright (gate at 1.0); a single-core host
# cannot express real parallelism, so the gate there only rejects a
# regression back to the goroutine-per-endpoint era (0.73x at 8 nodes) while
# allowing measurement noise around parity.
BENCH_OUT="$(mktemp)"
go run ./cmd/firesim bench -nodes 8 -rounds 512 -reps 3 -out "$BENCH_OUT" >/dev/null
CORES="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
MIN_SPEEDUP=1.0
if [ "$CORES" -lt 2 ]; then MIN_SPEEDUP=0.9; fi
SPEEDUP="$(sed -n 's/.*"parallel_speedup": \([0-9.]*\).*/\1/p' "$BENCH_OUT" | head -n1)"
echo "   parallel_speedup=$SPEEDUP (min $MIN_SPEEDUP on $CORES core(s))"
awk -v s="$SPEEDUP" -v min="$MIN_SPEEDUP" 'BEGIN { exit !(s >= min) }' || {
    echo "FAIL: 8-node parallel_speedup $SPEEDUP < $MIN_SPEEDUP" >&2
    exit 1
}

echo "== multi-core scaling gate (worker sweep) =="
# Core-count-aware gate on the worker sweep, evaluated inside the bench
# binary against effective (not requested) worker counts. A host with
# cores to spare must show real scaling: >=1.6x at 2 workers, >=2.5x at 4.
# A single-core host cannot express parallel speedup at all, so the gate
# there only requires the forced 2-worker run to hold near parity with
# the 1-worker baseline (>=0.8x), rejecting a regression to the
# channel-per-port era without pretending the host can scale. Retried like
# the overhead gate: a real regression fails every attempt.
if [ "$CORES" -ge 4 ]; then
    SWEEP_COUNTS="1,2,4"; SWEEP_GATE="2:1.6,4:2.5"
elif [ "$CORES" -ge 2 ]; then
    SWEEP_COUNTS="1,2"; SWEEP_GATE="2:1.6"
else
    SWEEP_COUNTS="1,2"; SWEEP_GATE="2:0.8"
fi
SWEEP_OK=0
for attempt in 1 2 3; do
    if go run ./cmd/firesim bench -nodes 2 -rounds 64 -reps 3 -node-nodes 0 \
        -worker-sweep "$SWEEP_COUNTS" -sweep-nodes 8,16 -sweep-rounds 512 \
        -sweep-min-speedup "$SWEEP_GATE" -out "$(mktemp)" >/dev/null; then
        SWEEP_OK=1
        break
    fi
    echo "   attempt $attempt missed the scaling gate ($SWEEP_GATE), retrying"
done
[ "$SWEEP_OK" = 1 ] || { echo "FAIL: worker-sweep scaling gate $SWEEP_GATE on $CORES core(s) after 3 attempts" >&2; exit 1; }

echo "== scale-curve gate (Fig. 9 shape) =="
# The sim-rate-vs-scale curve must keep its shape: growing the target from
# 64 nodes (8x8 tree) to 256 (4x8x8) multiplies the per-cycle work by ~4x
# plus two extra switch tiers, so the 256-node rate lands around 0.15-0.2
# of the 64-node rate here. The 0.08 floor only trips when the datapath
# cost grows super-linearly with scale (per-round allocation, egress-queue
# retention) — exactly the regressions the zero-alloc switch work removed.
# Retried like the other perf gates: a real regression fails every attempt.
SCALE_OK=0
for attempt in 1 2 3; do
    if go run ./cmd/firesim bench -nodes 2 -rounds 64 -reps 1 -node-nodes 0 \
        -scale-nodes 8,64,256 -scale-rounds 256 -scale-reps 2 \
        -scale-min-frac 0.08 -out "$(mktemp)" >/dev/null; then
        SCALE_OK=1
        break
    fi
    echo "   attempt $attempt missed the scale-curve gate, retrying"
done
[ "$SCALE_OK" = 1 ] || { echo "FAIL: 256-node sim rate below 0.08 of the 64-node rate on 3 attempts" >&2; exit 1; }

if [ "${FIRESIM_CHECK_HEAVY:-0}" = 1 ]; then
    echo "== full-datacenter scale point (1024 nodes, FIRESIM_CHECK_HEAVY) =="
    # The paper's complete 4x8x32 datacenter topology as the tail of the
    # Fig. 9 curve. Opt-in: deploying and ticking ~1100 endpoints
    # multiplies the gate's wall time, so the default run stops at 256.
    # The same 0.08 shape floor applies between the two largest sizes
    # (1024 vs 256 here).
    timeout 600 go run ./cmd/firesim bench -nodes 2 -rounds 64 -reps 1 -node-nodes 0 \
        -scale-nodes 8,64,256,1024 -scale-rounds 256 -scale-reps 2 \
        -scale-min-frac 0.08 -out "$(mktemp)" >/dev/null
fi

echo "== multiplexed-mode equivalence smoke (-race) =="
# The many-nodes-per-worker scheduling mode must stay bit-identical to the
# sequential scheduler under the race detector: stream equivalence across
# worker counts (with fault injection), mid-run checkpoint restore across
# modes, metrics parity, and panic containment inside a fused unit.
go test -race -count=1 \
    -run 'TestMuxWorkerSweepEquivalence|TestMuxCheckpointMidRun|TestMuxMetricsEquivalence|TestMuxPanicContainment|TestMuxCrossModeRestore' \
    ./internal/fame >/dev/null

echo "== checkpoint determinism smoke =="
# Run, checkpoint, run on, restore, re-run: final state must be
# bit-identical, under both runners. Exits non-zero on divergence.
go run ./cmd/firesim snap verify -nodes 4 -cycles 2048 -extra 2048 >/dev/null
go run ./cmd/firesim snap verify -nodes 4 -cycles 2048 -extra 2048 -parallel >/dev/null

echo "== distributed chaos smoke =="
# A 3-process, 8-node self-healing run: one shard SIGKILLed, another
# stalled long enough for the progress watchdog, healed from coordinated
# checkpoints, and -verify proves the result bit-identical to an
# undisturbed in-process run. The parallel pass adds a SIGSTOP victim
# (caught by lease expiry, not the watchdog) and a respawn budget. The
# hard timeout guards the gate itself against a supervision deadlock —
# the one bug class this subsystem exists to rule out.
timeout 180 go run ./cmd/firesim run-dist -nodes 8 -procs 3 \
    -horizon 16384 -ckpt-every 2048 \
    -chaos 'kill:shard1@4096,stall:shard2@10240+5000' \
    -verify -quiet
timeout 180 go run ./cmd/firesim run-dist -nodes 8 -procs 3 \
    -horizon 16384 -ckpt-every 2048 -parallel -respawns 2 \
    -chaos 'kill:shard1@4096,stop:shard0@6144,stall:shard2@10240+5000' \
    -verify -quiet

echo "== 256-node multi-level-cut chaos smoke =="
# The paper's 4x8x8 tree cut below the aggregation tier: 32 ToR units over
# 4 shard processes with the root and aggregation switches in the
# coordinator. One shard is SIGKILLed mid-run and its units re-packed onto
# the survivors, then a stall trips the progress watchdog; the healed
# 256-node run must still be bit-identical to the undisturbed in-process
# reference, component by component.
timeout 180 go run ./cmd/firesim run-dist -tree 4,8,8 -cut-level 2 -procs 4 \
    -horizon 16384 -ckpt-every 2048 \
    -chaos 'kill:shard1@4096,stall:shard2@10240+5000' \
    -verify -quiet

echo "== distributed token-plane gate =="
# The dist bench pass: an 8-node, 3-process loopback-TCP run per variant,
# each checked bit-identical against the same spec in-process before any
# number is reported. Gates the v3 wire codec's compression against the
# v2 fixed-width baseline at both ends of the operating range (idle
# windows must shrink >=3x, half-line-rate dense windows >=1.5x) and the
# dense variant's sim rate against the in-process run (>=0.01 of it —
# measured ~0.05; the floor trips if the exchange path regresses to
# multiple RTTs per window). The hard timeout guards against a bridge
# deadlock; retries de-flake the rate floor on a loaded host, a real
# regression fails every attempt.
DIST_OK=0
for attempt in 1 2 3; do
    if timeout 180 go run ./cmd/firesim bench -nodes 2 -rounds 64 -reps 1 -node-nodes 0 \
        -dist-nodes 8 -dist-procs 3 \
        -dist-idle-min-ratio 3 -dist-dense-min-ratio 1.5 -dist-min-frac 0.01 \
        -out "$(mktemp)" >/dev/null; then
        DIST_OK=1
        break
    fi
    echo "   attempt $attempt missed the dist token-plane gate, retrying"
done
[ "$DIST_OK" = 1 ] || { echo "FAIL: distributed token-plane gate on 3 attempts" >&2; exit 1; }

echo "== snapshot fuzz (short) =="
# A few seconds of coverage-guided fuzzing over the snapshot decoder: the
# Reader must never panic on malformed streams.
go test ./internal/snapshot -run '^$' -fuzz FuzzReader -fuzztime 5s >/dev/null

echo "OK"
