// The coordinator of a self-healing multi-process run. It owns the root
// switch partition and both wire planes (control + token), spawns and
// adopts shard worker processes, drives them through lockstep
// checkpointed slices, and — when a shard dies, hangs or its checkpoint
// tears — rewinds the whole cluster to the last coordinated generation
// and rebuilds the next epoch: respawning replacements while the budget
// lasts, then elastically re-packing lost units onto the survivors.
//
// Failure detection is layered, fastest-first:
//
//   - a bridge read error (peer socket died) surfaces the moment the
//     root partition finishes its slice;
//   - the liveness lease expires when a shard stops sending ANY control
//     frame for Lease (SIGKILL, SIGSTOP, machine gone) — heartbeats
//     flow every 25ms, so this fires in well under a second;
//   - the progress watchdog fires when frames still flow but target
//     time stops advancing for StallAfter: a shard that is alive but
//     wedged, the one failure mode a liveness lease cannot see.
//
// On any of them the epoch fails ONCE: the token plane is closed (which
// unblocks every blocked exchange on both sides within one syscall, not
// one timeout), survivors report structured errors and await the next
// assignment, and recovery restores from snapshot.CoordinatedCycle over
// all unit stores plus the root store. The root store is the integrity
// keystone: the coordinator only persists its own generation for a slice
// whose every token exchange succeeded, so a generation poisoned by a
// degraded stream can never become the coordinated restore point.
package manager

import (
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/clock"
	"repro/internal/faults"
	"repro/internal/hostplatform"
	"repro/internal/snapshot"
	"repro/internal/transport"
)

// CoordinatorConfig configures RunDistributed.
type CoordinatorConfig struct {
	// Spec is the cluster to simulate (identical on every process).
	Spec ClusterSpec
	// Procs is the target number of shard worker processes (clamped to
	// the number of partition units, so every process hosts at least one).
	Procs int
	// BaseDir holds the checkpoint stores: BaseDir/units/sub<i> per
	// partition unit and BaseDir/root for the coordinator's partition.
	BaseDir string
	// CkptEvery is the coordinated checkpoint interval in target cycles
	// (a multiple of the link latency).
	CkptEvery uint64
	// Horizon is the target cycle to run to (a multiple of the link
	// latency).
	Horizon uint64
	// Retain bounds checkpoint generations kept per store (default 4).
	Retain int
	// MaxRecoveries bounds how many failures the run will heal before
	// giving up (default 3).
	MaxRecoveries int
	// RespawnBudget is how many replacement processes may be spawned
	// over the whole run; once exhausted, lost units are re-packed onto
	// the surviving processes instead.
	RespawnBudget int
	// Chaos schedules host-level failure injection (tests and the chaos
	// smoke); empty for production runs.
	Chaos []faults.ChaosEvent
	// Spawn builds the command for one shard worker process. The command
	// must exec something that calls RunShard against controlAddr with
	// the given name. Required.
	Spawn func(name, controlAddr string) *exec.Cmd
	// Log, when non-nil, receives coordinator lifecycle lines.
	Log func(format string, args ...any)

	// Lease is the liveness lease (default 1s): a shard silent on the
	// control plane this long is declared dead.
	Lease time.Duration
	// StallAfter is the progress watchdog deadline (default 2.5s):
	// control frames flowing but target time frozen cluster-wide this
	// long fails the epoch without naming a suspect.
	StallAfter time.Duration
	// SetupTimeout bounds the spawn/hello/assign/dial phases and each
	// slice's done-collection (default 60s).
	SetupTimeout time.Duration
}

// DistReport summarises a completed distributed run.
type DistReport struct {
	// Cycle is the horizon reached.
	Cycle uint64
	// Hashes maps every component ("node/x", "switch/x") to its state
	// hash at the horizon; Combined folds them order-independently.
	Hashes   map[string]uint64
	Combined uint64
	// Recoveries counts healed failures; Epochs counts assignments
	// (1 = an undisturbed run).
	Recoveries int
	Epochs     int
	// FinalProcs is the number of shard processes at completion.
	FinalProcs int
	// Token-plane wire accounting for the final (successful) epoch,
	// summed over the root partition's bridges: bytes that actually
	// crossed the wire in each direction, and what the sent traffic
	// would have cost under the v2 fixed-width codec (the compression
	// baseline). Windows is the number of batch exchanges the horizon
	// required per bridge (Cycle / token step), so
	// WireBytesSent/Windows is the root's per-window wire cost. The
	// root drives one side of every cut link, so the sent totals are
	// exact for the root→shard direction without any cross-process
	// collection.
	WireBytesSent uint64
	WireBytesRecv uint64
	PrecodecBytes uint64
	Windows       uint64
}

// chaosState tracks one scheduled chaos event; done flips exactly once
// when the event has been delivered (kill/stop/stall) or applied (tear).
type chaosState struct {
	ev   faults.ChaosEvent
	done atomic.Bool
}

// shardEvent is one control-plane event routed from a shard reader
// goroutine to the coordinator main loop.
type shardEvent struct {
	p     *shardProc
	typ   byte // msgReady, msgDone, msgError; 0 when lost is set
	ready ReadyMsg
	done  DoneMsg
	errm  ErrorMsg
	lost  error
}

// shardProc is the coordinator's view of one worker process.
type shardProc struct {
	name  string
	cmd   *exec.Cmd
	conn  net.Conn
	units []int

	lastFrame    atomic.Int64 // unix nanos of the last control frame
	lastCycle    atomic.Uint64
	lastProgress atomic.Int64 // unix nanos of the last cycle change
	stallArmed   *chaosState  // chaos stall delivered in the current assign
}

type helloConn struct {
	name string
	conn net.Conn
}

type tokenConn struct {
	unit  int
	epoch uint32
	conn  net.Conn
}

// epochRun is the state of one assignment epoch. fail may be called from
// the main loop, the watchdog and bridge-error attribution concurrently;
// the first call closes the token plane, which unblocks every in-flight
// exchange in the whole cluster.
type epochRun struct {
	epoch    uint32
	part     *Partition // root partition
	failed   chan struct{}
	failOnce sync.Once
	mu       sync.Mutex
	suspects map[string]string // proc name → reason (may stay empty)
	reason   string
	target   atomic.Uint64 // current slice target (progress watchdog gate)
	running  atomic.Bool   // true while a slice is in flight
}

func (e *epochRun) fail(name, reason string) {
	e.mu.Lock()
	if name != "" {
		if _, dup := e.suspects[name]; !dup {
			e.suspects[name] = reason
		}
	}
	if e.reason == "" {
		e.reason = reason
	}
	e.mu.Unlock()
	e.failOnce.Do(func() {
		close(e.failed)
		e.part.CloseBridges()
	})
}

func (e *epochRun) failedNow() bool {
	select {
	case <-e.failed:
		return true
	default:
		return false
	}
}

// coordinator is the supervisor state for one RunDistributed call.
type coordinator struct {
	cfg  CoordinatorConfig
	spec ClusterSpec

	controlLn net.Listener
	tokenLn   net.Listener

	helloCh chan helloConn
	tokenCh chan tokenConn
	evCh    chan shardEvent

	procs   map[string]*shardProc // adopted (hello received)
	pending map[string]*exec.Cmd  // spawned, hello not yet received

	weights    []int // servers per partition unit
	unitStores map[int]*snapshot.Store
	rootStore  *snapshot.Store

	epoch        atomic.Uint32
	chaos        []*chaosState
	respawnsLeft int
	recoveries   int
	restoreCycle uint64
	restore      bool

	rootCycle    atomic.Uint64
	rootProgress atomic.Int64
}

func (c *coordinator) logf(format string, args ...any) {
	if c.cfg.Log != nil {
		c.cfg.Log("[coordinator] "+format, args...)
	}
}

// RunDistributed executes a whole multi-process simulation: spawn,
// assign, run in checkpointed lockstep slices, heal failures, and return
// the horizon-state component hashes.
func RunDistributed(cfg CoordinatorConfig) (*DistReport, error) {
	if cfg.Spawn == nil {
		return nil, fmt.Errorf("manager: distributed: Spawn is required")
	}
	root, dcfg, err := cfg.Spec.Topology()
	if err != nil {
		return nil, err
	}
	dcfg = normalizeConfig(dcfg)
	link := uint64(dcfg.LinkLatency)
	if link%2 != 0 {
		return nil, fmt.Errorf("manager: distributed: link latency %d must be even", link)
	}
	if cfg.CkptEvery == 0 || cfg.CkptEvery%link != 0 {
		return nil, fmt.Errorf("manager: distributed: CkptEvery %d must be a positive multiple of the link latency %d", cfg.CkptEvery, link)
	}
	if cfg.Horizon == 0 || cfg.Horizon%link != 0 {
		return nil, fmt.Errorf("manager: distributed: Horizon %d must be a positive multiple of the link latency %d", cfg.Horizon, link)
	}
	if cfg.BaseDir == "" {
		return nil, fmt.Errorf("manager: distributed: BaseDir is required")
	}
	if cfg.Lease <= 0 {
		cfg.Lease = time.Second
	}
	if cfg.StallAfter <= 0 {
		cfg.StallAfter = 2500 * time.Millisecond
	}
	if cfg.SetupTimeout <= 0 {
		cfg.SetupTimeout = 60 * time.Second
	}
	if cfg.MaxRecoveries <= 0 {
		cfg.MaxRecoveries = 3
	}
	units := len(CutUnits(root, cfg.Spec.CutLevel))
	if units == 0 {
		return nil, fmt.Errorf("manager: distributed: topology root has no downlinks")
	}
	if cfg.Procs < 1 {
		cfg.Procs = 1
	}
	if cfg.Procs > units {
		cfg.Procs = units
	}

	c := &coordinator{
		cfg:          cfg,
		spec:         cfg.Spec,
		helloCh:      make(chan helloConn, 16),
		tokenCh:      make(chan tokenConn, 64),
		evCh:         make(chan shardEvent, 256),
		procs:        make(map[string]*shardProc),
		pending:      make(map[string]*exec.Cmd),
		respawnsLeft: cfg.RespawnBudget,
	}
	for _, ev := range cfg.Chaos {
		c.chaos = append(c.chaos, &chaosState{ev: ev})
	}
	c.weights = unitWeights(root, cfg.Spec.CutLevel)
	c.unitStores = make(map[int]*snapshot.Store, units)
	for i := 0; i < units; i++ {
		st, err := snapshot.NewStore(filepath.Join(cfg.BaseDir, "units", UnitName(i)), cfg.Retain)
		if err != nil {
			return nil, err
		}
		c.unitStores[i] = st
	}
	c.rootStore, err = snapshot.NewStore(filepath.Join(cfg.BaseDir, UnitName(RootUnit)), cfg.Retain)
	if err != nil {
		return nil, err
	}

	c.controlLn, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	c.tokenLn, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		c.controlLn.Close()
		return nil, err
	}
	defer c.shutdown()
	go c.acceptControl()
	go c.acceptTokens()

	// Initial fleet: shard0..shardN-1, units packed by server weight.
	for i := 0; i < cfg.Procs; i++ {
		if err := c.spawnProc(fmt.Sprintf("shard%d", i)); err != nil {
			return nil, err
		}
	}
	assignments := c.packOnto(c.fleetNames())

	for {
		report, failure := c.runEpoch(assignments)
		if failure == nil {
			report.Recoveries = c.recoveries
			report.Epochs = int(c.epoch.Load())
			report.FinalProcs = len(c.procs)
			return report, nil
		}
		c.logf("epoch %d failed at cycle ~%d: %s (suspects: %v)",
			failure.epoch, c.maxObservedCycle(), failure.reason, suspectNames(failure.suspects))
		if c.recoveries >= c.cfg.MaxRecoveries {
			return nil, fmt.Errorf("manager: distributed: giving up after %d recoveries: %s", c.recoveries, failure.reason)
		}
		c.recoveries++
		assignments, err = c.recover(failure)
		if err != nil {
			return nil, err
		}
	}
}

// unitWeights counts the servers under each partition unit at the given
// cut level — the packing weight of each unit.
func unitWeights(root *SwitchNode, cutLevel int) []int {
	cuts := CutUnits(root, cutLevel)
	w := make([]int, len(cuts))
	for i, d := range cuts {
		switch v := d.(type) {
		case *ServerNode:
			w[i] = 1
		case *SwitchNode:
			w[i] = CountServers(v)
		}
	}
	return w
}

func suspectNames(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (c *coordinator) maxObservedCycle() uint64 {
	max := c.rootCycle.Load()
	for _, p := range c.procs {
		if v := p.lastCycle.Load(); v > max {
			max = v
		}
	}
	return max
}

// fleetNames lists every adopted or spawned-but-not-yet-adopted process
// name, sorted — the deterministic order packing maps onto.
func (c *coordinator) fleetNames() []string {
	var names []string
	for n := range c.procs {
		names = append(names, n)
	}
	for n := range c.pending {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// packOnto distributes all partition units over the named processes.
func (c *coordinator) packOnto(names []string) map[string][]int {
	packs := hostplatform.PackUnits(c.weights, len(names))
	out := make(map[string][]int, len(names))
	for i, n := range names {
		out[n] = packs[i]
	}
	return out
}

// spawnProc starts one worker process; it is adopted when its Hello
// arrives on the control listener.
func (c *coordinator) spawnProc(name string) error {
	cmd := c.cfg.Spawn(name, c.controlLn.Addr().String())
	if cmd == nil {
		return fmt.Errorf("manager: distributed: Spawn(%q) returned nil", name)
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("manager: distributed: spawn %s: %w", name, err)
	}
	go cmd.Wait() // reap; liveness is tracked by the lease, not by exit
	c.pending[name] = cmd
	c.logf("spawned %s (pid %d)", name, cmd.Process.Pid)
	return nil
}

// killProc removes a process from the fleet with prejudice. SIGKILL
// works on SIGSTOPped processes too, which is exactly the chaos case.
func (c *coordinator) killProc(name string) {
	if p, ok := c.procs[name]; ok {
		p.conn.Close()
		if p.cmd != nil && p.cmd.Process != nil {
			p.cmd.Process.Kill()
		}
		delete(c.procs, name)
	}
	if cmd, ok := c.pending[name]; ok {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
		delete(c.pending, name)
	}
}

// acceptControl adopts shard control connections: the first frame must
// be a Hello naming a process we spawned.
func (c *coordinator) acceptControl() {
	for {
		conn, err := c.controlLn.Accept()
		if err != nil {
			return
		}
		go func(conn net.Conn) {
			conn.SetReadDeadline(time.Now().Add(15 * time.Second))
			typ, payload, err := ReadControl(conn)
			conn.SetReadDeadline(time.Time{})
			if err != nil || typ != msgHello {
				conn.Close()
				return
			}
			var m HelloMsg
			if decodeControl(typ, payload, &m) != nil || m.Proto != int(controlVersion) {
				conn.Close()
				return
			}
			select {
			case c.helloCh <- helloConn{name: m.Name, conn: conn}:
			default:
				conn.Close()
			}
		}(conn)
	}
}

// acceptTokens accepts token-plane connections, validates the preamble
// and drops anything from a superseded epoch on the floor.
func (c *coordinator) acceptTokens() {
	for {
		conn, err := c.tokenLn.Accept()
		if err != nil {
			return
		}
		go func(conn net.Conn) {
			unit, epoch, err := transport.ReadTokenPreamble(conn, 15*time.Second)
			if err != nil || epoch != c.epoch.Load() {
				conn.Close()
				return
			}
			select {
			case c.tokenCh <- tokenConn{unit: int(unit), epoch: epoch, conn: conn}:
			default:
				conn.Close()
			}
		}(conn)
	}
}

// readShard pumps one adopted shard's control frames: heartbeats update
// the lease and progress clocks in place; protocol events are routed to
// the main loop.
func (c *coordinator) readShard(p *shardProc) {
	for {
		typ, payload, err := ReadControl(p.conn)
		if err != nil {
			c.evCh <- shardEvent{p: p, lost: err}
			return
		}
		p.lastFrame.Store(time.Now().UnixNano())
		switch typ {
		case msgProgress:
			var m ProgressMsg
			if decodeControl(typ, payload, &m) == nil && m.Cycle != p.lastCycle.Load() {
				p.lastCycle.Store(m.Cycle)
				p.lastProgress.Store(time.Now().UnixNano())
			}
		case msgReady:
			ev := shardEvent{p: p, typ: typ}
			if decodeControl(typ, payload, &ev.ready) == nil {
				c.evCh <- ev
			}
		case msgDone:
			ev := shardEvent{p: p, typ: typ}
			if decodeControl(typ, payload, &ev.done) == nil {
				p.lastCycle.Store(ev.done.Cycle)
				p.lastProgress.Store(time.Now().UnixNano())
				c.evCh <- ev
			}
		case msgError:
			ev := shardEvent{p: p, typ: typ}
			if decodeControl(typ, payload, &ev.errm) == nil {
				c.evCh <- ev
			}
		}
	}
}

// adoptHellos waits until every named process has an adopted control
// connection, spawning the reader goroutine for each as it arrives.
func (c *coordinator) adoptHellos(names []string, deadline time.Time) error {
	for {
		missing := 0
		for _, n := range names {
			if _, ok := c.procs[n]; !ok {
				missing++
			}
		}
		if missing == 0 {
			return nil
		}
		select {
		case h := <-c.helloCh:
			cmd, ok := c.pending[h.name]
			if !ok {
				h.conn.Close() // unknown or already-adopted name
				continue
			}
			delete(c.pending, h.name)
			p := &shardProc{name: h.name, cmd: cmd, conn: h.conn}
			p.lastFrame.Store(time.Now().UnixNano())
			p.lastProgress.Store(time.Now().UnixNano())
			c.procs[h.name] = p
			go c.readShard(p)
			c.logf("adopted %s", h.name)
		case <-time.After(time.Until(deadline)):
			var absent []string
			for _, n := range names {
				if _, ok := c.procs[n]; !ok {
					absent = append(absent, n)
				}
			}
			return fmt.Errorf("hello timeout waiting for %s", strings.Join(absent, ","))
		}
	}
}

// epochFailure describes why an epoch died, for recovery planning.
type epochFailure struct {
	epoch    uint32
	reason   string
	suspects map[string]string
}

// runEpoch drives one assignment epoch to the horizon or to failure.
func (c *coordinator) runEpoch(assignments map[string][]int) (*DistReport, *epochFailure) {
	epoch := c.epoch.Add(1)
	names := make([]string, 0, len(assignments))
	for n := range assignments {
		names = append(names, n)
	}
	sort.Strings(names)
	c.logf("epoch %d: assigning %d proc(s), restore=%v cycle=%d", epoch, len(names), c.restore, c.restoreCycle)

	failAll := func(reason string) *epochFailure {
		f := &epochFailure{epoch: epoch, reason: reason, suspects: map[string]string{}}
		for _, n := range names {
			if _, ok := c.procs[n]; !ok {
				f.suspects[n] = reason
			}
		}
		return f
	}

	deadline := time.Now().Add(c.cfg.SetupTimeout)
	if err := c.adoptHellos(names, deadline); err != nil {
		return nil, failAll(err.Error())
	}

	// Root partition: rebuilt from the spec every epoch, restored from
	// the root store when recovering. The bridge timeout mirrors the
	// shard side: supervision closes connections long before it fires.
	part, err := BuildPartition(c.spec, nil, shardBridgeTimeout)
	if err != nil {
		return nil, failAll("build root partition: " + err.Error())
	}
	e := &epochRun{epoch: epoch, part: part, failed: make(chan struct{}), suspects: map[string]string{}}
	defer part.CloseBridges()
	if c.restore {
		data, err := c.rootStore.Load(c.restoreCycle)
		if err != nil {
			return nil, failAll(fmt.Sprintf("load root checkpoint at %d: %v", c.restoreCycle, err))
		}
		got, err := part.RestoreUnit(data, RootUnit)
		if err != nil {
			return nil, failAll("restore root partition: " + err.Error())
		}
		if got != c.restoreCycle {
			return nil, failAll(fmt.Sprintf("root checkpoint cycle %d, recovery wants %d", got, c.restoreCycle))
		}
		if err := part.Runner.SetCycle(clock.Cycles(c.restoreCycle)); err != nil {
			return nil, failAll(err.Error())
		}
	} else if err := c.rootStore.Save(0, func(w io.Writer) error {
		return part.SaveUnit(w, RootUnit)
	}); err != nil {
		return nil, failAll("persist root baseline: " + err.Error())
	}
	c.rootCycle.Store(c.restoreCycle)
	c.rootProgress.Store(time.Now().UnixNano())

	// Assign every proc its units; arm a pending chaos stall on its
	// victim when the trigger cycle is still ahead of the restore point.
	procsList := make([]*shardProc, 0, len(names))
	for _, n := range names {
		p := c.procs[n]
		p.units = assignments[n]
		p.stallArmed = nil
		m := AssignMsg{
			Epoch:        epoch,
			Spec:         c.spec,
			TokenAddr:    c.tokenLn.Addr().String(),
			Restore:      c.restore,
			RestoreCycle: c.restoreCycle,
			Retain:       c.cfg.Retain,
		}
		for _, u := range p.units {
			m.Units = append(m.Units, UnitAssign{Unit: u, StoreDir: c.unitStores[u].Dir()})
		}
		for _, cs := range c.chaos {
			if cs.ev.Kind == faults.ChaosStall && cs.ev.Target == n && !cs.done.Load() && cs.ev.Cycle > c.restoreCycle {
				m.StallAt, m.StallMs = cs.ev.Cycle, cs.ev.StallMs
				p.stallArmed = cs
			}
		}
		if err := WriteControl(p.conn, msgAssign, m); err != nil {
			return nil, failAll(fmt.Sprintf("assign %s: %v", n, err))
		}
		procsList = append(procsList, p)
	}

	if f := c.awaitSetup(e, procsList, deadline); f != nil {
		return nil, f
	}

	// Supervision for the slice phase.
	stopWatch := make(chan struct{})
	defer close(stopWatch)
	go c.watchdog(e, procsList, stopWatch)
	go c.chaosWatcher(procsList, stopWatch)

	return c.runSlices(e, procsList)
}

// awaitSetup collects epoch-tagged token connections (attaching each to
// the root partition) and Ready replies from every proc.
func (c *coordinator) awaitSetup(e *epochRun, procs []*shardProc, deadline time.Time) *epochFailure {
	needToken := make(map[int]bool)
	for u := range c.unitStores {
		needToken[u] = true
	}
	needReady := make(map[*shardProc]bool)
	for _, p := range procs {
		needReady[p] = true
	}
	// The liveness lease applies during setup too: a proc that was
	// stopped or wedged BETWEEN epochs sends no heartbeats and would
	// otherwise only be caught by the full ready timeout.
	lease := time.NewTicker(50 * time.Millisecond)
	defer lease.Stop()
	for len(needToken) > 0 || len(needReady) > 0 {
		select {
		case <-lease.C:
			now := time.Now().UnixNano()
			for _, p := range procs {
				if needReady[p] && now-p.lastFrame.Load() > int64(c.cfg.Lease) {
					e.fail(p.name, fmt.Sprintf("liveness lease expired during setup (silent for %v)", c.cfg.Lease))
					return c.collectFailure(e, "")
				}
			}
		case tc := <-c.tokenCh:
			if tc.epoch != e.epoch || !needToken[tc.unit] {
				tc.conn.Close()
				continue
			}
			if err := e.part.AttachBridge(tc.unit, tc.conn, c.restoreCycle); err != nil {
				tc.conn.Close()
				return c.collectFailure(e, "attach "+UnitName(tc.unit)+": "+err.Error())
			}
			delete(needToken, tc.unit)
		case ev := <-c.evCh:
			switch {
			case ev.lost != nil:
				if c.procs[ev.p.name] == ev.p {
					e.fail(ev.p.name, "control connection lost: "+ev.lost.Error())
					return c.collectFailure(e, "")
				}
			case ev.typ == msgReady && ev.ready.Epoch == e.epoch:
				delete(needReady, ev.p)
			case ev.typ == msgError && ev.errm.Epoch == e.epoch:
				e.fail(ev.p.name, "assign failed: "+ev.errm.Msg)
				return c.collectFailure(e, "")
			default:
				// Stale frame from a superseded epoch; drop.
			}
		case <-time.After(time.Until(deadline)):
			for _, p := range procs {
				if needReady[p] {
					e.fail(p.name, "ready timeout")
				}
			}
			if len(needReady) == 0 {
				e.fail("", fmt.Sprintf("token dial timeout (%d unit(s) unattached)", len(needToken)))
			}
			return c.collectFailure(e, "")
		}
	}
	return nil
}

// collectFailure finalises a failed epoch into its failure record.
func (c *coordinator) collectFailure(e *epochRun, reason string) *epochFailure {
	if reason != "" {
		e.fail("", reason)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	f := &epochFailure{epoch: e.epoch, reason: e.reason, suspects: make(map[string]string, len(e.suspects))}
	for k, v := range e.suspects {
		f.suspects[k] = v
	}
	return f
}

// runSlices drives checkpointed lockstep slices to the horizon. A
// recovery that rewound exactly to the horizon replays the final slice
// as a zero-length one: run-to is idempotent at the target, and the Done
// replies still carry the hashes.
func (c *coordinator) runSlices(e *epochRun, procs []*shardProc) (*DistReport, *epochFailure) {
	for {
		cur := uint64(e.part.Runner.Cycle())
		target := cur + c.cfg.CkptEvery
		if target > c.cfg.Horizon {
			target = c.cfg.Horizon
		}
		final := target == c.cfg.Horizon
		e.target.Store(target)
		e.running.Store(true)

		for _, p := range procs {
			if err := WriteControl(p.conn, msgRunTo, RunToMsg{Target: target, Final: final}); err != nil {
				e.fail(p.name, "send run-to: "+err.Error())
			}
		}

		// The root's own slice: its token exchanges ARE the lockstep
		// coupling with every shard. Chunked by step so the progress
		// clock stays fresh for the watchdog.
		var sliceErr error
		for uint64(e.part.Runner.Cycle()) < target && sliceErr == nil && !e.failedNow() {
			sliceErr = e.part.RunSlice(e.part.Step)
			c.rootCycle.Store(uint64(e.part.Runner.Cycle()))
			c.rootProgress.Store(time.Now().UnixNano())
		}
		if sliceErr != nil && !e.failedNow() {
			// Attribute bridge deaths to the procs owning those units; a
			// pure local error (a contained panic in the root switch)
			// fails the epoch with no suspects — recovery rewinds
			// everyone without killing anyone.
			blamed := false
			for unit, br := range e.part.Bridges {
				if err := br.Err(); err != nil {
					if p := c.procOfUnit(procs, unit); p != nil {
						e.fail(p.name, fmt.Sprintf("token plane to %s: %v", UnitName(unit), err))
						blamed = true
					}
				}
			}
			if !blamed {
				e.fail("", "root slice: "+sliceErr.Error())
			}
		}
		if e.failedNow() {
			e.running.Store(false)
			return nil, c.collectFailure(e, "")
		}

		// Persist the root generation ONLY after a fully clean slice:
		// this is what keeps a degraded-stream generation out of
		// CoordinatedCycle forever.
		if err := c.rootStore.Save(target, func(w io.Writer) error {
			return e.part.SaveUnit(w, RootUnit)
		}); err != nil {
			e.running.Store(false)
			return nil, c.collectFailure(e, fmt.Sprintf("persist root at %d: %v", target, err))
		}

		hashes, f := c.collectDones(e, procs, target, final)
		e.running.Store(false)
		if f != nil {
			return nil, f
		}
		if !final {
			continue
		}
		rootHashes, err := e.part.UnitHashes()
		if err != nil {
			return nil, c.collectFailure(e, "root hashes: "+err.Error())
		}
		all, err := MergeHashes(append(hashes, rootHashes)...)
		if err != nil {
			return nil, c.collectFailure(e, err.Error())
		}
		rep := &DistReport{
			Cycle:    target,
			Hashes:   all,
			Combined: CombineHashes(all),
		}
		// Wire accounting while the epoch's bridges are still alive
		// (runEpoch closes them on return). Safe here: the bridges'
		// driving goroutine is this one, and the run is complete.
		for _, br := range e.part.Bridges {
			rep.WireBytesSent += br.WireBytesSent()
			rep.WireBytesRecv += br.WireBytesRecv()
			rep.PrecodecBytes += br.PrecodecBytes()
		}
		if step := uint64(e.part.Step); step > 0 {
			rep.Windows = target / step
		}
		return rep, nil
	}
}

func (c *coordinator) procOfUnit(procs []*shardProc, unit int) *shardProc {
	for _, p := range procs {
		for _, u := range p.units {
			if u == unit {
				return p
			}
		}
	}
	return nil
}

// collectDones gathers every proc's Done for the slice (with hashes on
// the final slice), guarded by the watchdogs and a hard timeout.
func (c *coordinator) collectDones(e *epochRun, procs []*shardProc, target uint64, final bool) ([]map[string]uint64, *epochFailure) {
	pendingProcs := make(map[*shardProc]bool, len(procs))
	for _, p := range procs {
		pendingProcs[p] = true
	}
	var hashes []map[string]uint64
	timer := time.NewTimer(c.cfg.SetupTimeout)
	defer timer.Stop()
	for len(pendingProcs) > 0 {
		select {
		case <-e.failed:
			return nil, c.collectFailure(e, "")
		case <-timer.C:
			for p := range pendingProcs {
				e.fail(p.name, fmt.Sprintf("done timeout at slice %d", target))
			}
			return nil, c.collectFailure(e, "")
		case ev := <-c.evCh:
			switch {
			case ev.lost != nil:
				if pendingProcs[ev.p] {
					e.fail(ev.p.name, "control connection lost: "+ev.lost.Error())
					return nil, c.collectFailure(e, "")
				}
			case ev.typ == msgDone && ev.done.Epoch == e.epoch && pendingProcs[ev.p]:
				if ev.done.Cycle != target {
					e.fail(ev.p.name, fmt.Sprintf("done at cycle %d, slice target %d", ev.done.Cycle, target))
					return nil, c.collectFailure(e, "")
				}
				if final {
					hashes = append(hashes, ev.done.Hashes)
				}
				delete(pendingProcs, ev.p)
			case ev.typ == msgError && ev.errm.Epoch == e.epoch:
				e.fail(ev.p.name, "slice error: "+ev.errm.Msg)
				return nil, c.collectFailure(e, "")
			default:
				// Stale epoch frame; drop.
			}
		}
	}
	return hashes, nil
}

// watchdog enforces the liveness lease and the progress deadline while a
// slice is in flight. Lease expiry names its suspect; a progress stall
// does not — the minimum-cycle heuristic misattributes under lockstep
// blocking (the root's in-window exchange order can freeze healthy
// shards at the victim's cycle), so a stall fails the epoch suspectless
// and recovery rewinds everyone. A truly wedged process then misses the
// next epoch's setup deadline and is killed on that evidence instead.
func (c *coordinator) watchdog(e *epochRun, procs []*shardProc, stop chan struct{}) {
	tick := time.NewTicker(25 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-e.failed:
			return
		case <-tick.C:
			if !e.running.Load() {
				continue
			}
			now := time.Now().UnixNano()
			for _, p := range procs {
				if now-p.lastFrame.Load() > int64(c.cfg.Lease) {
					e.fail(p.name, fmt.Sprintf("liveness lease expired (silent for %v)", c.cfg.Lease))
				}
			}
			if c.rootCycle.Load() < e.target.Load() {
				latest := c.rootProgress.Load()
				for _, p := range procs {
					if v := p.lastProgress.Load(); v > latest {
						latest = v
					}
				}
				if now-latest > int64(c.cfg.StallAfter) {
					e.fail("", fmt.Sprintf("progress watchdog: target time frozen for %v at cycle %d", c.cfg.StallAfter, c.maxObservedCycle()))
				}
			}
		}
	}
}

// chaosWatcher delivers scheduled kill/stop events the moment the victim
// reports reaching the trigger cycle — mid-slice, not at a tidy boundary.
func (c *coordinator) chaosWatcher(procs []*shardProc, stop chan struct{}) {
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			for _, cs := range c.chaos {
				if cs.done.Load() || (cs.ev.Kind != faults.ChaosKill && cs.ev.Kind != faults.ChaosStop) {
					continue
				}
				for _, p := range procs {
					if p.name != cs.ev.Target || p.lastCycle.Load() < cs.ev.Cycle {
						continue
					}
					if !cs.done.CompareAndSwap(false, true) {
						break
					}
					if cs.ev.Kind == faults.ChaosKill {
						c.logf("chaos: SIGKILL %s at cycle >= %d", p.name, cs.ev.Cycle)
						p.cmd.Process.Kill()
					} else {
						c.logf("chaos: SIGSTOP %s at cycle >= %d", p.name, cs.ev.Cycle)
						p.cmd.Process.Signal(syscall.SIGSTOP)
					}
				}
			}
		}
	}
}

// applyTearChaos truncates the newest checkpoint generation of each
// targeted unit's store — simulating a crash mid-checkpoint-write
// discovered at recovery time. The store's whole-file CRC catches the
// tear and CoordinatedCycle falls back to the previous intact
// generation.
func (c *coordinator) applyTearChaos() {
	for _, cs := range c.chaos {
		if cs.ev.Kind != faults.ChaosTear || cs.done.Load() {
			continue
		}
		var dir string
		if cs.ev.Target == UnitName(RootUnit) {
			dir = c.rootStore.Dir()
		} else {
			for u, st := range c.unitStores {
				if UnitName(u) == cs.ev.Target {
					dir = st.Dir()
				}
			}
		}
		if dir == "" {
			continue
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		newest := ""
		for _, ent := range entries {
			if strings.HasPrefix(ent.Name(), "ckpt-") && ent.Name() > newest {
				newest = ent.Name()
			}
		}
		if newest == "" {
			continue
		}
		path := filepath.Join(dir, newest)
		if fi, err := os.Stat(path); err == nil {
			if err := os.Truncate(path, fi.Size()/2); err == nil {
				cs.done.Store(true)
				c.logf("chaos: tore %s to %d bytes", path, fi.Size()/2)
			}
		}
	}
}

// recover plans the next epoch after a failure: kill the suspects,
// consume any chaos stall that caused a suspectless progress failure,
// apply tear chaos, find the coordinated rewind point, respawn while the
// budget lasts, and re-pack all units over the resulting fleet.
func (c *coordinator) recover(f *epochFailure) (map[string][]int, error) {
	// A suspectless progress stall was (when armed) the chaos stall
	// doing its job: mark it consumed so the victim is not re-stalled
	// every epoch. The process stays alive — it heals by rewind.
	for _, p := range c.procs {
		if p.stallArmed != nil && p.lastCycle.Load() >= p.stallArmed.ev.Cycle {
			p.stallArmed.done.Store(true)
		}
	}
	for name, reason := range f.suspects {
		c.logf("recovery %d: killing %s (%s)", c.recoveries, name, reason)
		c.killProc(name)
	}

	c.applyTearChaos()

	stores := make([]*snapshot.Store, 0, len(c.unitStores)+1)
	for _, st := range c.unitStores {
		stores = append(stores, st)
	}
	stores = append(stores, c.rootStore)
	if cycle, ok := snapshot.CoordinatedCycle(stores); ok {
		c.restore = true
		c.restoreCycle = cycle
	} else {
		// Nothing coordinated survives (a failure before the first
		// baselines landed everywhere): heal by a deterministic fresh
		// start instead of giving up.
		c.restore = false
		c.restoreCycle = 0
		c.logf("recovery %d: no coordinated checkpoint; restarting from cycle 0", c.recoveries)
	}

	// Respawn replacements while the budget lasts; otherwise the packing
	// below spreads the lost units over the survivors.
	for len(c.procs)+len(c.pending) < c.cfg.Procs && c.respawnsLeft > 0 {
		name := c.freeProcName()
		if err := c.spawnProc(name); err != nil {
			return nil, err
		}
		c.respawnsLeft--
	}
	names := c.fleetNames()
	if len(names) == 0 {
		return nil, fmt.Errorf("manager: distributed: no shard processes left and respawn budget exhausted")
	}
	c.logf("recovery %d: rewinding to cycle %d with %d proc(s)", c.recoveries, c.restoreCycle, len(names))
	return c.packOnto(names), nil
}

// freeProcName picks the lowest shard<i> not currently in the fleet.
func (c *coordinator) freeProcName() string {
	for i := 0; ; i++ {
		name := fmt.Sprintf("shard%d", i)
		if _, ok := c.procs[name]; ok {
			continue
		}
		if _, ok := c.pending[name]; ok {
			continue
		}
		return name
	}
}

// shutdown tears the whole fleet down: polite Shutdown frames first,
// then unconditional kills, then the listeners.
func (c *coordinator) shutdown() {
	for _, p := range c.procs {
		WriteControl(p.conn, msgShutdown, nil)
	}
	time.Sleep(50 * time.Millisecond)
	for name := range c.procs {
		c.killProc(name)
	}
	for name := range c.pending {
		c.killProc(name)
	}
	if c.controlLn != nil {
		c.controlLn.Close()
	}
	if c.tokenLn != nil {
		c.tokenLn.Close()
	}
}
