package transport

import (
	"repro/internal/obs"
)

// This file wires the hardened bridge into the observability layer
// (internal/obs). A distributed run's health story lives almost entirely
// in its bridges — how often connections dropped, how many frames had to
// be retransmitted to resynchronise, whether the peer ever produced a
// sequence gap — so each bridge exports the full recovery ledger, plus
// byte/batch volume for transport-overhead accounting.
//
// All instruments are updated from the bridge's single driving goroutine,
// so the counters cost one uncontended atomic add each at frame
// granularity (never per token).
//
// Metric names, labelled with the bridge name:
//
//	transport_batches_sent_total{bridge=B}     committed batch sends
//	transport_batches_recv_total{bridge=B}     committed batch receives
//	transport_bytes_sent_total{bridge=B}       wire bytes written (counted at the connection, not recomputed)
//	transport_bytes_recv_total{bridge=B}       wire bytes read (likewise)
//	transport_precodec_bytes_total{bridge=B}   what the sent traffic would cost under the v2 fixed-width codec
//	transport_stall_nanos{bridge=B}            histogram: per-exchange wall time blocked on the peer's batch
//	transport_reconnects_total{bridge=B}       successful redials
//	transport_resyncs_total{bridge=B}          exchanges that retransmitted frames
//	transport_resent_frames_total{bridge=B}    frames retransmitted during resyncs
//	transport_dup_frames_total{bridge=B}       duplicate frames discarded
//	transport_seq_gaps_total{bridge=B}         fatal sequence gaps observed
//	transport_errors_total{bridge=B}           permanent transport errors latched
//	transport_degraded{bridge=B}               gauge: 1 once the bridge is degraded
//
// The byte counters are fed by counting shims wrapped around the
// connection itself (see setConn), so they report what actually crossed
// the wire — retransmissions, duplicates and torn partial writes
// included — rather than a per-frame size recomputation. The precodec
// counter tracks the same sent traffic priced at the v2 codec's fixed
// 13-bytes-per-slot framing; the ratio of the two is the v3 codec's
// live compression factor.
type bridgeMetrics struct {
	batchesSent   *obs.Counter
	batchesRecv   *obs.Counter
	bytesSent     *obs.Counter
	bytesRecv     *obs.Counter
	precodecBytes *obs.Counter
	stallNanos    *obs.Histogram
	reconnects    *obs.Counter
	resyncs       *obs.Counter
	resentFrames  *obs.Counter
	dupFrames     *obs.Counter
	seqGaps       *obs.Counter
	errors        *obs.Counter
	degraded      *obs.Gauge
}

// EnableMetrics attaches the bridge to a registry: every subsequent
// exchange updates the transport_* instruments described in metrics.go.
// Passing nil detaches. Call it before the run starts (alongside
// NewBridgeConfig), from the same goroutine that will drive TickBatch.
func (b *Bridge) EnableMetrics(reg *obs.Registry) {
	if reg == nil {
		b.metrics = nil
		return
	}
	label := func(metric string) string { return obs.Label(metric, "bridge", b.name) }
	b.metrics = &bridgeMetrics{
		batchesSent:   reg.Counter(label("transport_batches_sent_total")),
		batchesRecv:   reg.Counter(label("transport_batches_recv_total")),
		bytesSent:     reg.Counter(label("transport_bytes_sent_total")),
		bytesRecv:     reg.Counter(label("transport_bytes_recv_total")),
		precodecBytes: reg.Counter(label("transport_precodec_bytes_total")),
		stallNanos:    reg.Histogram(label("transport_stall_nanos")),
		reconnects:    reg.Counter(label("transport_reconnects_total")),
		resyncs:       reg.Counter(label("transport_resyncs_total")),
		resentFrames:  reg.Counter(label("transport_resent_frames_total")),
		dupFrames:     reg.Counter(label("transport_dup_frames_total")),
		seqGaps:       reg.Counter(label("transport_seq_gaps_total")),
		errors:        reg.Counter(label("transport_errors_total")),
		degraded:      reg.Gauge(label("transport_degraded")),
	}
}

// frameWireBytes is the exact on-wire size of one sequenced v2 batch
// frame: 8-byte sequence header, 8-byte batch header, 13 bytes per
// occupied slot. The v3 codec prices its precodec (baseline) accounting
// with it; it is no longer what crosses the wire.
func frameWireBytes(slots int) uint64 { return 8 + 8 + 13*uint64(slots) }
