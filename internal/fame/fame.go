// Package fame implements the decoupled, token-coupled simulation runtime
// at the heart of FireSim.
//
// FireSim applies the FAME-1 transform to server RTL: each target cycle,
// the transformed design expects a token on every input interface and
// produces a token on every output interface; if any input token is
// missing, the model stalls until one arrives. This simple contract is what
// lets heterogeneous simulation hosts — FPGAs, switch-model processes,
// different machines — advance different target cycles at the same wall
// time while still computing every target cycle deterministically.
//
// This package provides:
//
//   - the Endpoint contract (a batched form of the per-cycle token
//     interface; see DESIGN.md, "Performance note"),
//   - Link plumbing with per-link latency, where batch size equals the
//     link latency exactly as in the paper ("we always set our batch size
//     to the target link latency being modeled"),
//   - a deterministic sequential Runner and a parallel Runner (a fixed
//     worker pool over a topology-aware endpoint partition, with
//     latency-tolerant SPSC rings on cross-worker links; see parallel.go)
//     that produce bit-identical token streams, and
//   - a FAME-5-style Multiplex wrapper that hosts several target models on
//     one simulated physical pipeline.
package fame

import (
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/token"
)

// Endpoint is a decoupled simulation model: a FAME-1-transformed server
// blade, a switch model, or any other component on the token network.
//
// TickBatch advances the model by n target cycles. in[p] holds the tokens
// arriving on port p during those cycles and out[p] must be filled with the
// tokens the model emits on port p. Both slices have one entry per port.
//
// Contract:
//   - in batches are read-only; endpoints must not mutate or retain them
//     past the call (the runtime recycles their storage),
//   - out batches arrive Reset to n cycles; the endpoint Puts its valid
//     tokens and must not retain them,
//   - an unconnected input port receives a batch with no valid tokens; an
//     unconnected output port receives a scratch batch that is discarded.
//
// A model must behave as if it were ticked one cycle at a time: emitting a
// token at out-offset k may depend only on input tokens at offsets <= k on
// ports whose data combinationally reaches the output, exactly like the
// latency-insensitive FAME-1 hardware contract.
type Endpoint interface {
	// Name identifies the endpoint in diagnostics.
	Name() string
	// NumPorts reports how many token ports the endpoint exposes.
	NumPorts() int
	// TickBatch advances the endpoint by n target cycles.
	TickBatch(n int, in, out []*token.Batch)
}

// EagerStarter is an optional Endpoint capability for overlapping I/O
// with computation. When an endpoint implements it, every scheduler runs
// a per-round prepass before the normal tick order: the endpoint's input
// batches are popped (and injector-filtered) early and handed to
// StartBatch, which may kick off asynchronous work — a transport.Bridge
// puts its frame on the wire — before any endpoint in the round blocks.
// With K cut-point bridges in a partition, all K sends overlap and the
// round pays ~one network round-trip instead of K serial ones.
//
// Contract: StartBatch receives exactly the input batches the subsequent
// TickBatch call will receive (same storage, already filtered); it must
// not mutate them, and it must be a best-effort no-op whenever it cannot
// proceed — the runtime neither checks for nor reacts to failure there,
// TickBatch remains responsible for the window's result. Pre-popping is
// equivalence-preserving: a round's inputs were pushed in the previous
// round (or pre-seeded), so the FIFO pop yields the same batch whether it
// happens in the prepass or at the endpoint's slot in tick order.
type EagerStarter interface {
	StartBatch(n int, in []*token.Batch)
}

// Injector observes and mutates token batches as they cross endpoint
// boundaries, the hook the fault-injection subsystem (internal/faults)
// plugs into. FilterInput runs on a batch just before it is delivered to
// the named endpoint's input port; FilterOutput runs on a batch the
// endpoint just emitted, before it enters the link. start is the absolute
// target cycle of the batch's first token, so an injector keyed on
// (endpoint, port, cycle) is a pure function of target time and therefore
// deterministic under both Run and RunParallel.
//
// Implementations may mutate the batch in place (the runtime owns its
// storage at hook time) but must not retain it. They must be safe for
// concurrent calls on distinct endpoints: RunParallel invokes each
// endpoint's hooks from the worker goroutine that owns the endpoint, and
// different endpoints may be on different workers.
type Injector interface {
	FilterInput(endpoint string, port int, start clock.Cycles, b *token.Batch)
	FilterOutput(endpoint string, port int, start clock.Cycles, b *token.Batch)
}

// link is one attachment point: (endpoint index, port).
type portRef struct {
	ep   int
	port int
}

// channel carries token batches in one direction with a fixed latency.
// latency tokens are always in flight: the queue is pre-seeded with
// latency/step empty batches before the simulation starts.
type channel struct {
	latency clock.Cycles
	queue   batchRing      // FIFO of batches in flight
	free    []*token.Batch // recycled batch storage
}

func (c *channel) take(n int) *token.Batch {
	if k := len(c.free); k > 0 {
		b := c.free[k-1]
		c.free = c.free[:k-1]
		b.Reset(n)
		return b
	}
	return token.NewBatch(n)
}

func (c *channel) push(b *token.Batch) { c.queue.push(b) }

func (c *channel) pop() *token.Batch { return c.queue.pop() }

func (c *channel) recycle(b *token.Batch) { c.free = append(c.free, b) }

// Link describes a bidirectional connection between two endpoint ports
// with a given latency in target cycles. N tokens are always in flight in
// each direction, so data emitted at cycle M arrives at cycle M+N.
type Link struct {
	a, b    portRef
	latency clock.Cycles
}

// Runner owns a topology of endpoints and links and advances target time.
// Endpoints and links must all be registered before the first Run call.
type Runner struct {
	endpoints []Endpoint
	epIndex   map[Endpoint]int
	links     []Link
	// inCh[e][p] / outCh[e][p] are the channels attached to each port;
	// nil when the port is unconnected.
	inCh, outCh [][]*channel
	step        clock.Cycles
	cycle       clock.Cycles
	built       bool

	// poisoned is set when an endpoint panic was contained mid-round: the
	// channel populations are inconsistent, so running or saving is
	// refused until a Restore (or partition-level SetCycle) rewinds to a
	// coherent state. See panic.go.
	poisoned bool

	// emptyIn is the shared read-only batch handed to unconnected input
	// ports; scratchOut[e][p] is a per-port discard batch for unconnected
	// output ports (per-port so that one endpoint with several unconnected
	// outputs never sees aliased batches).
	emptyIn    *token.Batch
	scratchOut [][]*token.Batch

	// injector, when non-nil, filters every batch crossing an endpoint
	// boundary (fault injection).
	injector Injector

	// metricsReg and metrics carry the optional observability wiring (see
	// metrics.go). metrics is nil unless EnableMetrics was called, and the
	// hot loops guard every instrument behind that one nil check.
	metricsReg *obs.Registry
	metrics    *runnerMetrics

	// workers, when non-zero, fixes how many workers RunParallel uses;
	// zero means GOMAXPROCS (see SetWorkers in parallel.go).
	workers int

	// multiplexed selects the many-nodes-per-worker scheduling mode: each
	// worker's endpoints are fused into one scheduling unit (see mux.go)
	// instead of one plan entry per endpoint. Host-side only; token
	// streams are bit-identical either way.
	multiplexed bool

	// ringSlack adds extra producer-side headroom (in rounds) to every
	// cross-worker SPSC ring beyond the mandatory latency depth, and
	// balanceSlackPct loosens the partitioner's balance cap by the given
	// percentage in favour of link co-location. Both are host-side tuning
	// knobs (see SetRingSlack / SetBalanceSlackPct in parallel.go).
	ringSlack       int
	balanceSlackPct int

	// effWorkers and schedUnits record the shape of the most recent
	// RunParallel: how many workers actually ran after endpoint-count
	// capping, and how many scheduling units they executed. Benchmarks
	// read them so sweep points are attributable to the real worker count
	// rather than the requested one.
	effWorkers int
	schedUnits int

	// stepOverride, when non-zero, forces a smaller batch step than the
	// latency GCD (it must divide every link latency). Target behaviour is
	// identical — only host performance changes — which makes it the
	// ablation knob for the paper's batching argument ("tokens can be
	// batched up to the target's link latency, without any compromise in
	// cycle accuracy").
	stepOverride clock.Cycles
}

// NewRunner returns an empty topology.
func NewRunner() *Runner {
	return &Runner{epIndex: make(map[Endpoint]int)}
}

// Add registers an endpoint and returns it for chaining-style use.
func (r *Runner) Add(e Endpoint) Endpoint {
	if r.built {
		panic("fame: Add after Run")
	}
	if _, dup := r.epIndex[e]; dup {
		panic(fmt.Sprintf("fame: endpoint %q added twice", e.Name()))
	}
	r.epIndex[e] = len(r.endpoints)
	r.endpoints = append(r.endpoints, e)
	return e
}

// Connect attaches port aPort of a to port bPort of b with the given link
// latency (in target cycles) in each direction. Both endpoints must already
// be registered with Add.
func (r *Runner) Connect(a Endpoint, aPort int, b Endpoint, bPort int, latency clock.Cycles) error {
	if r.built {
		return errors.New("fame: Connect after Run")
	}
	ai, ok := r.epIndex[a]
	if !ok {
		return fmt.Errorf("fame: endpoint %q not registered", a.Name())
	}
	bi, ok := r.epIndex[b]
	if !ok {
		return fmt.Errorf("fame: endpoint %q not registered", b.Name())
	}
	if latency <= 0 {
		return fmt.Errorf("fame: link latency must be positive, got %d", latency)
	}
	if aPort < 0 || aPort >= a.NumPorts() {
		return fmt.Errorf("fame: port %d out of range for %q", aPort, a.Name())
	}
	if bPort < 0 || bPort >= b.NumPorts() {
		return fmt.Errorf("fame: port %d out of range for %q", bPort, b.Name())
	}
	r.links = append(r.links, Link{a: portRef{ai, aPort}, b: portRef{bi, bPort}, latency: latency})
	return nil
}

// Step returns the batch step size in cycles chosen for this topology: the
// greatest common divisor of all link latencies, so that every link's
// in-flight token count is a whole number of batches. Calling Step
// finalises the topology (no further Add/Connect calls are allowed); it
// returns 0 if the topology is not yet valid.
func (r *Runner) Step() clock.Cycles {
	if err := r.build(); err != nil {
		return 0
	}
	return r.step
}

// Cycle returns the current target cycle (the number of cycles fully
// simulated so far).
func (r *Runner) Cycle() clock.Cycles { return r.cycle }

// SetInjector installs (or, with nil, removes) the batch filter hook used
// for fault injection. It may be called between runs; mid-run changes are
// not supported. Determinism is preserved as long as the injector itself
// is a pure function of (endpoint, port, cycle), which faults.Plan
// guarantees.
func (r *Runner) SetInjector(inj Injector) { r.injector = inj }

// SetStepOverride forces exchanging batches of s tokens instead of one
// link latency's worth. s must divide every link latency; it must be set
// before the first Run. Use only for host-performance ablation — target
// behaviour is unchanged by construction.
func (r *Runner) SetStepOverride(s clock.Cycles) error {
	if r.built {
		return errors.New("fame: SetStepOverride after Run")
	}
	if s <= 0 {
		return fmt.Errorf("fame: step override must be positive, got %d", s)
	}
	r.stepOverride = s
	return nil
}

func gcd(a, b clock.Cycles) clock.Cycles {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func (r *Runner) build() error {
	if r.built {
		return nil
	}
	if len(r.endpoints) == 0 {
		return errors.New("fame: no endpoints registered")
	}
	if len(r.links) == 0 {
		return errors.New("fame: no links registered")
	}
	r.step = r.links[0].latency
	for _, l := range r.links[1:] {
		r.step = gcd(r.step, l.latency)
	}
	if r.stepOverride > 0 {
		if r.step%r.stepOverride != 0 {
			return fmt.Errorf("fame: step override %d does not divide the latency gcd %d", r.stepOverride, r.step)
		}
		r.step = r.stepOverride
	}

	r.inCh = make([][]*channel, len(r.endpoints))
	r.outCh = make([][]*channel, len(r.endpoints))
	for i, e := range r.endpoints {
		r.inCh[i] = make([]*channel, e.NumPorts())
		r.outCh[i] = make([]*channel, e.NumPorts())
	}
	attach := func(from, to portRef, lat clock.Cycles) error {
		if r.outCh[from.ep][from.port] != nil {
			return fmt.Errorf("fame: output port %d of %q connected twice", from.port, r.endpoints[from.ep].Name())
		}
		if r.inCh[to.ep][to.port] != nil {
			return fmt.Errorf("fame: input port %d of %q connected twice", to.port, r.endpoints[to.ep].Name())
		}
		ch := &channel{latency: lat}
		// Pre-seed the link with latency worth of empty tokens, exactly as
		// in the paper's walk-through: "each input token queue initialized
		// with l tokens".
		for seeded := clock.Cycles(0); seeded < lat; seeded += r.step {
			ch.push(token.NewBatch(int(r.step)))
		}
		r.outCh[from.ep][from.port] = ch
		r.inCh[to.ep][to.port] = ch
		return nil
	}
	for _, l := range r.links {
		if err := attach(l.a, l.b, l.latency); err != nil {
			return err
		}
		if err := attach(l.b, l.a, l.latency); err != nil {
			return err
		}
	}
	r.emptyIn = token.NewBatch(int(r.step))
	r.scratchOut = make([][]*token.Batch, len(r.endpoints))
	for i, e := range r.endpoints {
		r.scratchOut[i] = make([]*token.Batch, e.NumPorts())
		for p := 0; p < e.NumPorts(); p++ {
			if r.outCh[i][p] == nil {
				r.scratchOut[i][p] = token.NewBatch(int(r.step))
			}
		}
	}
	r.built = true
	if r.metricsReg != nil {
		r.initMetrics()
	}
	return nil
}

// Run advances the simulation by the given number of target cycles using
// the deterministic sequential scheduler. cycles must be a positive
// multiple of Step (after the first Run, Step is fixed).
func (r *Runner) Run(cycles clock.Cycles) error {
	_, err := r.run(cycles)
	return err
}

// run is Run plus a wall-time measurement covering only the round loop:
// topology build and scratch allocation happen before the clock starts,
// so Measure's reported sim rate is not inflated by setup cost on short
// runs.
func (r *Runner) run(cycles clock.Cycles) (wall time.Duration, err error) {
	if err := r.build(); err != nil {
		return 0, err
	}
	if r.poisoned {
		return 0, ErrPoisoned
	}
	if cycles <= 0 || cycles%r.step != 0 {
		return 0, fmt.Errorf("fame: cycles %d must be a positive multiple of step %d", cycles, r.step)
	}
	rounds := cycles / r.step
	n := int(r.step)

	// Panic containment: a model that panics mid-tick must not take the
	// process down (in a shard process it would take every co-hosted
	// partition with it). curIdx tracks which endpoint is being ticked so
	// the recovered error can name it; the runner is poisoned because the
	// round was torn mid-flight.
	curIdx := -1
	defer func() {
		if v := recover(); v != nil {
			r.poisoned = true
			name := "<runner>"
			if curIdx >= 0 && curIdx < len(r.endpoints) {
				name = r.endpoints[curIdx].Name()
			}
			err = &EndpointPanicError{Endpoint: name, Cycle: r.cycle, Value: v, Stack: debug.Stack()}
		}
	}()

	// Per-endpoint scratch slices, reused across rounds.
	ins := make([][]*token.Batch, len(r.endpoints))
	outs := make([][]*token.Batch, len(r.endpoints))
	for i, e := range r.endpoints {
		ins[i] = make([]*token.Batch, e.NumPorts())
		outs[i] = make([]*token.Batch, e.NumPorts())
	}

	// Eager endpoints (cut-point bridges) get a per-round prepass: inputs
	// popped and filtered early, StartBatch called, and the main loop then
	// reuses the pre-popped batches. See the EagerStarter contract.
	type eagerEp struct {
		i int
		s EagerStarter
	}
	var eagers []eagerEp
	isEager := make([]bool, len(r.endpoints))
	for i, e := range r.endpoints {
		if s, ok := e.(EagerStarter); ok {
			eagers = append(eagers, eagerEp{i, s})
			isEager[i] = true
		}
	}

	m := r.metrics
	var epAcc []uint64
	if m != nil {
		epAcc = make([]uint64, len(r.endpoints))
	}
	start := time.Now()
	var lastTick time.Time
	var accRounds, accToks uint64
	for round := clock.Cycles(0); round < rounds; round++ {
		sampled := m != nil && round&tickSampleMask == 0
		if sampled {
			lastTick = time.Now()
		}
		var roundToks uint64
		for _, eg := range eagers {
			i := eg.i
			curIdx = i
			in := ins[i]
			for p := range in {
				if ch := r.inCh[i][p]; ch != nil {
					in[p] = ch.pop()
				} else {
					in[p] = r.emptyIn
				}
			}
			if inj := r.injector; inj != nil {
				name := r.endpoints[i].Name()
				for p := range in {
					if r.inCh[i][p] != nil {
						inj.FilterInput(name, p, r.cycle, in[p])
					}
				}
			}
			eg.s.StartBatch(n, in)
		}
		for i, e := range r.endpoints {
			curIdx = i
			in := ins[i]
			out := outs[i]
			for p := range in {
				if !isEager[i] {
					if ch := r.inCh[i][p]; ch != nil {
						in[p] = ch.pop()
					} else {
						in[p] = r.emptyIn
					}
				}
				if ch := r.outCh[i][p]; ch != nil {
					out[p] = ch.take(n)
				} else {
					sb := r.scratchOut[i][p]
					sb.Reset(n)
					out[p] = sb
				}
			}
			if inj := r.injector; inj != nil && !isEager[i] {
				name := e.Name()
				for p := range in {
					if r.inCh[i][p] != nil {
						inj.FilterInput(name, p, r.cycle, in[p])
					}
				}
			}
			e.TickBatch(n, in, out)
			if m != nil {
				var toks uint64
				for p := range out {
					if r.outCh[i][p] != nil {
						toks += uint64(len(out[p].Slots))
					}
				}
				if toks > 0 {
					// Batched locally like the heartbeat counters; flushed
					// on sampled rounds and at run end.
					epAcc[i] += toks
					roundToks += toks
				}
				// Tick timing is sampled (every tickSampleMask+1 rounds) with
				// chained clock reads: endpoint i's tick is measured from the
				// previous endpoint's read, so a sampled round costs one
				// time.Now per endpoint and an unsampled round costs none.
				// The runner's own bookkeeping between ticks lands in the
				// next endpoint's bucket — tick times are attribution, and a
				// sampled round's tick times sum to its wall time.
				if sampled {
					now := time.Now()
					m.tick[i].Observe(uint64(now.Sub(lastTick).Nanoseconds()))
					lastTick = now
				}
			}
			if inj := r.injector; inj != nil {
				name := e.Name()
				for p := range in {
					if r.outCh[i][p] != nil {
						inj.FilterOutput(name, p, r.cycle, out[p])
					}
				}
			}
			for p := range in {
				if ch := r.outCh[i][p]; ch != nil {
					ch.push(out[p])
				}
				if ch := r.inCh[i][p]; ch != nil {
					ch.recycle(in[p])
				}
			}
		}
		r.cycle += r.step
		if m != nil {
			// Heartbeat counters batch locally and flush on sampled rounds:
			// progress stays externally visible at sample granularity while
			// quiet rounds touch no shared memory at all.
			accRounds++
			accToks += roundToks
			if sampled {
				m.flushProgress(&accRounds, &accToks, uint64(r.step), int64(r.cycle))
				m.flushEpTokens(epAcc)
			}
		}
	}
	wall = time.Since(start)
	if m != nil {
		m.flushProgress(&accRounds, &accToks, uint64(r.step), int64(r.cycle))
		m.flushEpTokens(epAcc)
		m.runWall.Add(uint64(wall.Nanoseconds()))
	}
	return wall, nil
}

// RunParallel advances the simulation by the given number of target cycles
// using the sharded worker pool scheduler (see parallel.go): endpoints are
// partitioned across up to Workers() workers, and each worker runs
// decoupled for up to a link latency of target cycles before synchronizing
// with a neighbour. This mirrors the paper's distributed execution: hosts
// may be simulating different target cycles at the same moment, yet the
// token protocol guarantees results identical to the sequential scheduler.
func (r *Runner) RunParallel(cycles clock.Cycles) error {
	_, err := r.runParallel(cycles)
	return err
}

// Measure runs the simulation for the given target cycles (sequentially or
// in parallel) and returns the achieved simulation rate, which is how the
// paper reports performance in Figures 8 and 9.
//
// Only the round loop is timed. Topology build, scratch allocation and the
// parallel runner's partition and ring construction all happen before the
// clock starts
// (and the parallel drain after it stops), so short calibration runs
// report the same per-cycle cost as long ones instead of folding one-time
// setup into the rate.
func (r *Runner) Measure(cycles clock.Cycles, freq clock.Hz, parallel bool) (clock.SimRate, error) {
	var wall time.Duration
	var err error
	if parallel {
		wall, err = r.runParallel(cycles)
	} else {
		wall, err = r.run(cycles)
	}
	if err != nil {
		return clock.SimRate{}, err
	}
	return clock.SimRate{TargetCycles: cycles, Wall: wall, TargetFreq: freq}, nil
}
