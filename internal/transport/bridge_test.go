package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/token"
)

// peerHello speaks the raw handshake from the test side: write a valid
// hello and consume the bridge's. It runs inside helper goroutines, so
// failures panic rather than calling t.Fatal.
func peerHello(conn net.Conn, step int, topoHash, resume uint64) {
	var hello [helloSize]byte
	binary.BigEndian.PutUint32(hello[0:4], helloMagic)
	binary.BigEndian.PutUint16(hello[4:6], helloVersion)
	binary.BigEndian.PutUint32(hello[8:12], uint32(step))
	binary.BigEndian.PutUint64(hello[16:24], topoHash)
	binary.BigEndian.PutUint64(hello[24:32], resume)
	done := make(chan error, 1)
	go func() {
		_, err := conn.Write(hello[:])
		done <- err
	}()
	var peer [helloSize]byte
	if _, err := io.ReadFull(conn, peer[:]); err != nil {
		panic(fmt.Sprintf("peerHello read: %v", err))
	}
	if err := <-done; err != nil {
		panic(fmt.Sprintf("peerHello write: %v", err))
	}
}

// tickOnce drives one TickBatch with a single-token input batch and
// returns the output batch.
func tickOnce(br *Bridge, n int, data uint64) *token.Batch {
	in := token.NewBatch(n)
	in.Put(0, token.Token{Data: data, Valid: true})
	out := token.NewBatch(n)
	br.TickBatch(n, []*token.Batch{in}, []*token.Batch{out})
	return out
}

// TestBridgePeerClosesMidBatch: the peer handshakes, then dies partway
// through a frame. The bridge must latch a wrapped, descriptive error and
// subsequent TickBatch calls must be silent no-ops.
func TestBridgePeerClosesMidBatch(t *testing.T) {
	c1, c2 := net.Pipe()
	go func() {
		peerHello(c2, 16, 0, 0)
		// Read the bridge's first frame concurrently (net.Pipe is
		// synchronous), then send a truncated frame and vanish.
		go io.Copy(io.Discard, c2)
		// seq 0, N=16, then vanish before the run count: a torn v3 frame.
		c2.Write([]byte{0, 16})
		c2.Close()
	}()
	br := NewBridge("wedge", c1)
	out := tickOnce(br, 16, 1)
	err := br.Err()
	if err == nil {
		t.Fatal("peer death mid-batch not detected")
	}
	// Which half of the exchange trips first depends on scheduling: the
	// close usually fails the pending recv, but can land while the bridge
	// is still writing its own frame, failing the send instead. Either
	// way the latched error must name the bridge and the batch exchange.
	if !strings.Contains(err.Error(), `bridge "wedge"`) ||
		!(strings.Contains(err.Error(), "recv batch") || strings.Contains(err.Error(), "send batch")) {
		t.Errorf("error not descriptive: %q", err)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.ErrClosedPipe) {
		t.Errorf("error does not unwrap to the underlying cause: %v", err)
	}

	// Subsequent ticks: no-ops that leave the output empty.
	out = tickOnce(br, 16, 2)
	if !out.IsEmpty() {
		t.Error("TickBatch after permanent error produced tokens")
	}
	if got := br.Err(); got != err {
		t.Errorf("error changed after no-op tick: %v -> %v", err, got)
	}
}

// failAfterConn passes through to the underlying conn until limit bytes
// have been written, then fails every write: a short-write fault.
type failAfterConn struct {
	net.Conn
	mu      sync.Mutex
	written int
	limit   int
}

func (c *failAfterConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.written+len(p) > c.limit {
		k := c.limit - c.written
		if k < 0 {
			k = 0
		}
		if k > 0 {
			n, _ := c.Conn.Write(p[:k])
			c.written += n
		}
		return k, fmt.Errorf("simulated short write (NIC buffer exhausted)")
	}
	n, err := c.Conn.Write(p)
	c.written += n
	return n, err
}

// TestBridgeShortWrite: the local connection starts failing writes after
// the handshake. The bridge must surface a wrapped send error, not hang or
// corrupt state.
func TestBridgeShortWrite(t *testing.T) {
	c1, c2 := net.Pipe()
	go func() {
		peerHello(c2, 16, 0, 0)
		io.Copy(io.Discard, c2) // consume whatever arrives until the fault
	}()
	br := NewBridge("short", &failAfterConn{Conn: c1, limit: helloSize + 4})
	tickOnce(br, 16, 7)
	err := br.Err()
	if err == nil {
		t.Fatal("short write not detected")
	}
	if !strings.Contains(err.Error(), "send batch") || !strings.Contains(err.Error(), "short write") {
		t.Errorf("error not descriptive: %q", err)
	}
	if out := tickOnce(br, 16, 8); !out.IsEmpty() {
		t.Error("TickBatch after short-write error produced tokens")
	}
}

// TestBridgeTopologyHashMismatch: both sides set a topology hash and they
// disagree — the handshake must fail fast with a descriptive error.
func TestBridgeTopologyHashMismatch(t *testing.T) {
	c1, c2 := net.Pipe()
	var wg sync.WaitGroup
	wg.Add(1)
	var peerErr error
	go func() {
		defer wg.Done()
		peer := NewBridgeConfig("peer", c2, BridgeConfig{TopologyHash: 0xbbbb})
		tickOnce(peer, 16, 0)
		peerErr = peer.Err()
	}()
	br := NewBridgeConfig("local", c1, BridgeConfig{TopologyHash: 0xaaaa})
	tickOnce(br, 16, 0)
	wg.Wait()
	for _, err := range []error{br.Err(), peerErr} {
		if err == nil {
			t.Fatal("topology hash mismatch not detected")
		}
		if !strings.Contains(err.Error(), "topology") {
			t.Errorf("error not descriptive: %q", err)
		}
	}
}

// TestBridgeDeadPeerTimesOut: the peer handshakes then goes silent with
// the connection open. With a read deadline and no way to reconnect, the
// bridge must give up in bounded time instead of blocking forever.
func TestBridgeDeadPeerTimesOut(t *testing.T) {
	c1, c2 := net.Pipe()
	go func() {
		peerHello(c2, 16, 0, 0)
		go io.Copy(io.Discard, c2)
		// ... and then nothing: the peer is hung, not dead.
	}()
	redials := 0
	br := NewBridgeConfig("patient", c1, BridgeConfig{
		ReadTimeout:   50 * time.Millisecond,
		WriteTimeout:  50 * time.Millisecond,
		MaxReconnects: 2,
		BackoffBase:   5 * time.Millisecond,
		Redial: func() (io.ReadWriter, error) {
			redials++
			return nil, fmt.Errorf("no path to host")
		},
	})
	start := time.Now()
	tickOnce(br, 16, 1)
	elapsed := time.Since(start)
	if br.Err() == nil {
		t.Fatal("hung peer not detected")
	}
	if elapsed > 2*time.Second {
		t.Errorf("gave up after %v; deadline+backoff should bound this well under 2s", elapsed)
	}
	if redials != 2 {
		t.Errorf("redial attempts = %d, want 2 (bounded retry)", redials)
	}
}

// TestBridgeDegrade: a degraded bridge is inert and reports ErrDegraded.
func TestBridgeDegrade(t *testing.T) {
	c1, _ := net.Pipe()
	br := NewBridge("down", c1)
	br.Degrade()
	if !br.Degraded() {
		t.Fatal("Degraded() false after Degrade")
	}
	if !errors.Is(br.Err(), ErrDegraded) {
		t.Fatalf("Err() = %v, want ErrDegraded", br.Err())
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if out := tickOnce(br, 16, 1); !out.IsEmpty() {
			t.Error("degraded bridge emitted tokens")
		}
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("degraded bridge blocked in TickBatch")
	}
}

// TestBridgeReconnectResync is the headline robustness property: the
// connection between two live peers is torn down mid-run; both sides
// reconnect with backoff, re-handshake, resynchronise from sequence
// numbers, and the token streams arrive complete, in order, without
// duplicates — as if the drop never happened.
func TestBridgeReconnectResync(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	addr := ln.Addr().String()

	accepted := make(chan net.Conn, 4)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			accepted <- conn
		}
	}()
	dial := func() (io.ReadWriter, error) { return net.Dial("tcp", addr) }
	accept := func() (io.ReadWriter, error) {
		select {
		case c := <-accepted:
			return c, nil
		case <-time.After(2 * time.Second):
			return nil, fmt.Errorf("no incoming connection")
		}
	}

	connA, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	connB, err := accept()
	if err != nil {
		t.Fatal(err)
	}

	cfg := BridgeConfig{
		ReadTimeout:   time.Second,
		WriteTimeout:  time.Second,
		MaxReconnects: 5,
		BackoffBase:   5 * time.Millisecond,
		TopologyHash:  0x1234,
	}
	cfgA, cfgB := cfg, cfg
	cfgA.Redial = dial
	cfgB.Redial = accept
	brA := NewBridgeConfig("A", connA, cfgA)
	brB := NewBridgeConfig("B", connB, cfgB)
	reg := obs.NewRegistry("resync")
	brA.EnableMetrics(reg)

	const rounds = 10
	const n = 16
	const killAfter = 3
	killed := make(chan struct{})

	drive := func(br *Bridge, base uint64, kill func()) error {
		for r := 0; r < rounds; r++ {
			out := tickOnce(br, n, base+uint64(r))
			if br.Err() != nil {
				return fmt.Errorf("round %d: %w", r, br.Err())
			}
			tok := out.At(0)
			if !tok.Valid || tok.Data%1000 != uint64(r) {
				return fmt.Errorf("round %d: got token %v, want peer round %d", r, tok, r)
			}
			if r == killAfter-1 && kill != nil {
				kill()
			}
		}
		return nil
	}

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		errs <- drive(brA, 2000, func() {
			// Sever the current connection out from under both sides.
			connA.(net.Conn).Close()
			connB.(net.Conn).Close()
			close(killed)
		})
	}()
	go func() {
		defer wg.Done()
		errs <- drive(brB, 5000, nil)
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	<-killed
	if brA.Reconnects() == 0 && brB.Reconnects() == 0 {
		t.Error("connection was severed but neither side reconnected")
	}
	if got := brA.Received(); got != rounds {
		t.Errorf("A received %d batches, want %d", got, rounds)
	}
	if got := brB.Received(); got != rounds {
		t.Errorf("B received %d batches, want %d", got, rounds)
	}
	// The obs mirror must agree with the bridge's own recovery ledger.
	s := reg.Snapshot()
	if got := s.Counters[obs.Label("transport_reconnects_total", "bridge", "A")]; got != uint64(brA.Reconnects()) {
		t.Errorf("obs reconnects = %d, Reconnects() = %d", got, brA.Reconnects())
	}
	if got := s.Counters[obs.Label("transport_batches_recv_total", "bridge", "A")]; got != rounds {
		t.Errorf("obs batches_recv = %d, want %d", got, rounds)
	}
}
