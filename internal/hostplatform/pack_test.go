package hostplatform

import (
	"reflect"
	"testing"
)

func TestPackUnitsBalances(t *testing.T) {
	// 6 units, weights dominated by unit 0: FFD must not stack more on
	// the process that got the heavy unit.
	got := PackUnits([]int{8, 1, 1, 1, 1, 1}, 2)
	if len(got) != 2 {
		t.Fatalf("got %d procs, want 2", len(got))
	}
	loads := []int{0, 0}
	seen := map[int]bool{}
	for p, units := range got {
		for _, u := range units {
			if seen[u] {
				t.Fatalf("unit %d packed twice", u)
			}
			seen[u] = true
			loads[p] += []int{8, 1, 1, 1, 1, 1}[u]
		}
	}
	if len(seen) != 6 {
		t.Fatalf("packed %d units, want 6", len(seen))
	}
	if loads[0] != 8 || loads[1] != 5 {
		t.Fatalf("loads %v, want [8 5]", loads)
	}
}

func TestPackUnitsDeterministic(t *testing.T) {
	w := []int{2, 2, 2, 2, 2}
	a := PackUnits(w, 3)
	b := PackUnits(w, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("non-deterministic packing: %v vs %v", a, b)
	}
	// Equal weights: round-robin by index onto least-loaded.
	want := [][]int{{0, 3}, {1, 4}, {2}}
	if !reflect.DeepEqual(a, want) {
		t.Fatalf("packing %v, want %v", a, want)
	}
}

func TestPackUnitsDegenerate(t *testing.T) {
	if got := PackUnits(nil, 3); len(got) != 3 {
		t.Fatalf("empty units: %v", got)
	}
	got := PackUnits([]int{1, 2}, 0) // procs clamped to 1
	if len(got) != 1 || !reflect.DeepEqual(got[0], []int{0, 1}) {
		t.Fatalf("single-proc fallback: %v", got)
	}
}

// TestPackUnitsWorstFitTieBreak is the tie-breaking golden: equal-weight
// units must round-robin by ascending index onto the least-loaded
// (lowest-index) process. This is worst-fit decreasing — FFD would pour
// units 2..5 into proc 0 until it "filled"; worst-fit alternates. The
// fame partitioner inherits exactly this order, so the golden here locks
// worker assignment determinism too.
func TestPackUnitsWorstFitTieBreak(t *testing.T) {
	got := PackUnits([]int{3, 3, 1, 1, 1, 1}, 2)
	// Order: 0, 1 (weight 3, ascending index), then 2..5 (weight 1).
	// 0→p0 (3), 1→p1 (3), 2→p0 on the load tie (4), 3→p1 (4), 4→p0, 5→p1.
	want := [][]int{{0, 2, 4}, {1, 3, 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PackUnits tie-break = %v, want %v", got, want)
	}
}
