package experiments

import (
	"fmt"
	"strings"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/stats"
)

func init() {
	register("fig6", func(sc Scale) (Result, error) { return Fig6(sc) })
}

// Fig6Series is the bandwidth-over-time measurement at the root switch
// for one sender rate limit.
type Fig6Series struct {
	// RateGbps is the per-sender NIC rate limit.
	RateGbps float64
	// TimesUs and Gbps are the time series sampled at the root switch.
	TimesUs []float64
	Gbps    []float64
	// PlateauGbps is the steady-state aggregate bandwidth.
	PlateauGbps float64
}

// Fig6Result holds all four series.
type Fig6Result struct {
	Series []Fig6Series
}

// Title implements Result.
func (Fig6Result) Title() string {
	return "Figure 6: Multi-node bandwidth test (root-switch aggregate)"
}

// Render implements Result.
func (r Fig6Result) Render() string {
	var b strings.Builder
	t := stats.NewTable("Sender rate (Gbit/s)", "Aggregate plateau (Gbit/s)", "Paper plateau")
	paper := map[float64]string{1: "8", 10: "80", 40: "200 (saturated)", 100: "200 (saturated)"}
	for _, s := range r.Series {
		t.AddRow(s.RateGbps, s.PlateauGbps, paper[s.RateGbps])
	}
	b.WriteString(t.String())
	b.WriteString("\nBandwidth over time (Gbit/s per 20us bucket):\n")
	for _, s := range r.Series {
		fmt.Fprintf(&b, "  %3g Gbit/s senders: ", s.RateGbps)
		for i, g := range s.Gbps {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%.0f", g)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Fig6 simulates a 16-node cluster with two ToR switches and one root
// switch. Each server on the first ToR streams to the corresponding
// server on the second ToR through the root. Senders enter one fixed
// interval apart so traffic ramps at the root, exactly as in the paper;
// in the 40 and 100 Gbit/s runs the root link saturates at 200 Gbit/s.
func Fig6(sc Scale) (Fig6Result, error) {
	rates := []float64{1, 10, 40, 100}
	if sc.Quick {
		rates = []float64{10, 100}
	}
	clk := clock.New(clock.DefaultTargetClock)
	stagger := clk.CyclesInMicros(100)
	tail := clk.CyclesInMicros(400)
	bucket := clk.CyclesInMicros(20)

	var out Fig6Result
	for _, rate := range rates {
		topo := core.NewSwitch("root")
		topo.AddDownlinks(core.Rack("tor0", 8, core.QuadCore), core.Rack("tor1", 8, core.QuadCore))
		c, err := core.Deploy(topo, core.DeployConfig{})
		if err != nil {
			return Fig6Result{}, err
		}
		root := c.Switches[0]

		ts := stats.NewTimeSeries(int64(bucket))
		root.SetProbe(func(cycle clock.Cycles, port int) {
			// Count only flits leaving toward the receiving rack (port 1)
			// to avoid double-counting both root crossings.
			if port == 1 {
				ts.Accumulate(int64(cycle), 64) // bits per flit
			}
		})

		for i := 0; i < 8; i++ {
			sender := c.Servers[i] // tor0 servers are assigned first
			receiver := c.Servers[8+i]
			sender.StartRawStream(clock.Cycles(i+1)*stagger, receiver.MAC(), 1504, rate, 0)
		}
		total := 9*stagger + tail
		if err := c.RunFor(total); err != nil {
			return Fig6Result{}, err
		}

		times, bits := ts.Points()
		series := Fig6Series{RateGbps: rate}
		for i := range times {
			us := float64(times[i]) / 3200
			gbps := bits[i] / (float64(bucket) / 3.2e9) / 1e9
			series.TimesUs = append(series.TimesUs, us)
			series.Gbps = append(series.Gbps, gbps)
		}
		// Plateau: the maximum over full buckets after all senders are in.
		cut := float64(8*stagger) / 3200
		for i, us := range series.TimesUs {
			if us >= cut && series.Gbps[i] > series.PlateauGbps {
				series.PlateauGbps = series.Gbps[i]
			}
		}
		out.Series = append(out.Series, series)
	}
	return out, nil
}
