package manager

import (
	"repro/internal/obs"
)

// This file wires the distributed-run control plane into the
// observability layer (internal/obs). The supervisor is the natural
// heartbeat source for a partition: it regains control between run
// slices, so publishing the local cycle there gives an external observer
// (firesim top, a Prometheus scrape) a progress signal that advances even
// while the hot loop is busy. Per-node liveness mirrors the supervisor's
// report so "which half of the simulation is dead" is answerable from
// metrics alone.
//
// Metric names:
//
//	manager_slices_total             run slices completed by RunTo
//	manager_checks_total             bridge health sweeps performed
//	manager_recoveries_total         peers revived from a checkpoint
//	manager_local_cycle              gauge: local partition target cycle
//	manager_peers_watched            gauge: bridges under supervision
//	manager_peers_down               gauge: peers degraded so far
//	manager_node_up{node=N}          gauge: 1 while N's partition is reachable
//	manager_node_last_cycle{node=N}  gauge: last cycle N is known to have reached
type supervisorMetrics struct {
	reg        *obs.Registry
	slices     *obs.Counter
	checks     *obs.Counter
	recoveries *obs.Counter
	localCycle *obs.Gauge
	watched    *obs.Gauge
	down       *obs.Gauge

	nodeUp   map[string]*obs.Gauge
	nodeLast map[string]*obs.Gauge
}

// EnableMetrics attaches the supervisor to a registry: RunTo publishes a
// per-slice progress heartbeat and per-node liveness from then on. Every
// bridge already under Watch is instrumented too (transport_* metrics),
// as are bridges Watched later. Passing nil detaches the supervisor but
// not previously instrumented bridges.
func (s *Supervisor) EnableMetrics(reg *obs.Registry) {
	if reg == nil {
		s.metrics = nil
		return
	}
	s.metrics = &supervisorMetrics{
		reg:        reg,
		slices:     reg.Counter("manager_slices_total"),
		checks:     reg.Counter("manager_checks_total"),
		recoveries: reg.Counter("manager_recoveries_total"),
		localCycle: reg.Gauge("manager_local_cycle"),
		watched:    reg.Gauge("manager_peers_watched"),
		down:       reg.Gauge("manager_peers_down"),
		nodeUp:     make(map[string]*obs.Gauge),
		nodeLast:   make(map[string]*obs.Gauge),
	}
	for _, name := range s.local {
		s.metrics.trackNode(name)
	}
	for _, p := range s.peers {
		p.br.EnableMetrics(reg)
		for _, name := range p.nodes {
			s.metrics.trackNode(name)
		}
	}
	s.metrics.watched.Set(int64(len(s.peers)))
}

// trackNode get-or-creates the per-node liveness gauges; a tracked node
// starts up with an unknown (zero) last cycle.
func (m *supervisorMetrics) trackNode(name string) {
	if _, ok := m.nodeUp[name]; ok {
		return
	}
	m.nodeUp[name] = m.reg.Gauge(obs.Label("manager_node_up", "node", name))
	m.nodeLast[name] = m.reg.Gauge(obs.Label("manager_node_last_cycle", "node", name))
	m.nodeUp[name].Set(1)
}

// publish mirrors the supervisor's current view into the gauges. Called
// between slices, never from the hot loop.
func (s *Supervisor) publishMetrics() {
	m := s.metrics
	cycle := int64(s.runner.Cycle())
	m.localCycle.Set(cycle)
	for _, name := range s.local {
		m.nodeLast[name].Set(cycle)
	}
	downCount := 0
	for _, p := range s.peers {
		up, last := int64(1), cycle
		if p.down {
			downCount++
			up = 0
			last = int64(p.br.Received()) * int64(p.br.Step())
		}
		for _, name := range p.nodes {
			m.nodeUp[name].Set(up)
			m.nodeLast[name].Set(last)
		}
	}
	m.down.Set(int64(downCount))
}

// EnableMetrics instruments every component of the deployed cluster —
// the runner's hot loop (fame_*) and every switch (switch_*) — against
// one registry. Bridges joining this cluster to remote partitions are
// instrumented separately via Supervisor.EnableMetrics or
// Bridge.EnableMetrics.
func (c *Cluster) EnableMetrics(reg *obs.Registry) {
	c.Runner.EnableMetrics(reg)
	for _, sw := range c.Switches {
		sw.EnableMetrics(reg)
	}
}
