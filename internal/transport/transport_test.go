package transport

import (
	"bytes"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/clock"
	"repro/internal/ethernet"
	"repro/internal/fame"
	"repro/internal/softstack"
	"repro/internal/switchmodel"
	"repro/internal/token"
)

func TestCodecRoundTrip(t *testing.T) {
	check := func(pattern uint16, n uint8) bool {
		size := int(n)%60 + 4
		b := token.NewBatch(size)
		for i := 0; i < size && i < 16; i++ {
			if pattern&(1<<i) != 0 {
				b.Put(i, token.Token{Data: uint64(i) * 31, Valid: true, Last: i%2 == 0})
			}
		}
		var buf bytes.Buffer
		if err := WriteBatch(&buf, b); err != nil {
			return false
		}
		got := token.NewBatch(1)
		if err := ReadBatch(&buf, got); err != nil {
			return false
		}
		return reflect.DeepEqual(b, got)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestCodecRejectsCorruptHeader(t *testing.T) {
	// slots > n is impossible for a well-formed batch.
	buf := []byte{0, 0, 0, 4, 0, 0, 0, 9}
	if err := ReadBatch(bytes.NewReader(buf), token.NewBatch(1)); err == nil {
		t.Error("corrupt header accepted")
	}
	// Truncated stream.
	var w bytes.Buffer
	b := token.NewBatch(8)
	b.Put(3, token.Token{Data: 1, Valid: true})
	if err := WriteBatch(&w, b); err != nil {
		t.Fatal(err)
	}
	trunc := w.Bytes()[:w.Len()-2]
	if err := ReadBatch(bytes.NewReader(trunc), token.NewBatch(1)); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestCodecRejectsBadOffset(t *testing.T) {
	var w bytes.Buffer
	b := token.NewBatch(8)
	b.Put(3, token.Token{Data: 1, Valid: true})
	if err := WriteBatch(&w, b); err != nil {
		t.Fatal(err)
	}
	raw := w.Bytes()
	raw[8+3] = 99 // offset byte beyond n
	if err := ReadBatch(bytes.NewReader(raw), token.NewBatch(1)); err == nil {
		t.Error("out-of-range offset accepted")
	}
}

// TestDistributedEquivalence splits a two-node topology across two Runner
// instances joined by a TCP Bridge pair and verifies that a ping
// measurement is bit-identical to the single-runner simulation of the
// same target: the transport must not perturb cycle-exactness.
func TestDistributedEquivalence(t *testing.T) {
	const linkLat = 6400 // 2 us
	arp := map[ethernet.IP]ethernet.MAC{0x0a000001: 0x1, 0x0a000002: 0x2}
	mkA := func() *softstack.Node {
		return softstack.NewNode(softstack.Config{Name: "a", MAC: 0x1, IP: 0x0a000001, Seed: 1, StaticARP: arp})
	}
	mkB := func() *softstack.Node {
		return softstack.NewNode(softstack.Config{Name: "b", MAC: 0x2, IP: 0x0a000002, Seed: 2, StaticARP: arp})
	}

	// Reference: everything in one runner. Topology: A -- switch -- B with
	// the A-side link split in half so the distributed version can place
	// the bridge at the midpoint with identical total latency.
	reference := func() []softstack.PingResult {
		a, b := mkA(), mkB()
		wire := fame.NewWire("mid")
		sw := switchmodel.New(switchmodel.Config{Name: "tor", Ports: 2, SwitchingLatency: 10})
		sw.MACTable().Set(0x1, 0)
		sw.MACTable().Set(0x2, 1)
		r := fame.NewRunner()
		for _, e := range []fame.Endpoint{a, b, wire, sw} {
			r.Add(e)
		}
		if err := r.Connect(a, 0, wire, 0, linkLat/2); err != nil {
			t.Fatal(err)
		}
		if err := r.Connect(wire, 1, sw, 0, linkLat/2); err != nil {
			t.Fatal(err)
		}
		if err := r.Connect(b, 0, sw, 1, linkLat); err != nil {
			t.Fatal(err)
		}
		var res []softstack.PingResult
		a.Ping(0, 0x0a000002, 5, 50*3200, func(r []softstack.PingResult) { res = r })
		for r.Cycle() < 4_000_000 && res == nil {
			if err := r.Run(linkLat); err != nil {
				t.Fatal(err)
			}
		}
		return res
	}

	distributed := func() []softstack.PingResult {
		c1, c2 := net.Pipe()
		var res []softstack.PingResult

		var wg sync.WaitGroup
		wg.Add(1)
		// Host 2: switch + node B + bridge half.
		go func() {
			defer wg.Done()
			b := mkB()
			sw := switchmodel.New(switchmodel.Config{Name: "tor", Ports: 2, SwitchingLatency: 10})
			sw.MACTable().Set(0x1, 0)
			sw.MACTable().Set(0x2, 1)
			br := NewBridge("bridge2", c2)
			r := fame.NewRunner()
			for _, e := range []fame.Endpoint{b, sw, br} {
				r.Add(e)
			}
			if err := r.Connect(br, 0, sw, 0, linkLat/2); err != nil {
				panic(err)
			}
			if err := r.Connect(b, 0, sw, 1, linkLat); err != nil {
				panic(err)
			}
			for r.Cycle() < 4_000_000 && br.Err() == nil {
				if err := r.Run(linkLat); err != nil {
					panic(err)
				}
			}
		}()

		// Host 1: node A + bridge half.
		a := mkA()
		br := NewBridge("bridge1", c1)
		r := fame.NewRunner()
		r.Add(a)
		r.Add(br)
		if err := r.Connect(a, 0, br, 0, linkLat/2); err != nil {
			t.Fatal(err)
		}
		a.Ping(0, 0x0a000002, 5, 50*3200, func(rs []softstack.PingResult) { res = rs })
		for r.Cycle() < 4_000_000 && br.Err() == nil {
			if err := r.Run(linkLat); err != nil {
				t.Fatal(err)
			}
		}
		wg.Wait()
		if br.Err() != nil {
			t.Fatalf("bridge error: %v", br.Err())
		}
		return res
	}

	ref := reference()
	if ref == nil {
		t.Fatal("reference ping did not complete")
	}
	dist := distributed()
	if dist == nil {
		t.Fatal("distributed ping did not complete")
	}
	if !reflect.DeepEqual(ref, dist) {
		t.Errorf("distributed results differ from single-host:\nref:  %+v\ndist: %+v", ref, dist)
	}
}

func TestBridgeStepMismatch(t *testing.T) {
	c1, c2 := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Peer side runs with a 32-cycle step; local side uses 16. The
		// handshake must reject the pairing on both ends.
		peer := NewBridge("peer", c2)
		in := []*token.Batch{token.NewBatch(32)}
		out := []*token.Batch{token.NewBatch(32)}
		peer.TickBatch(32, in, out)
		if peer.Err() == nil {
			t.Error("peer did not detect step mismatch")
		}
	}()
	br := NewBridge("br", c1)
	in := []*token.Batch{token.NewBatch(16)}
	out := []*token.Batch{token.NewBatch(16)}
	br.TickBatch(16, in, out)
	<-done
	if br.Err() == nil {
		t.Fatal("step mismatch not detected")
	}
	if !strings.Contains(br.Err().Error(), "step") {
		t.Errorf("error %q does not describe the step mismatch", br.Err())
	}
}

func TestClock(t *testing.T) {
	// Silence the unused import check for clock while documenting the
	// batch-per-link-latency convention.
	if clock.Cycles(6400) != clock.New(clock.DefaultTargetClock).CyclesInMicros(2) {
		t.Error("2 us at 3.2 GHz should be 6400 cycles")
	}
}

// TestBridgeOverRealTCP runs the distributed split over an actual
// localhost TCP connection (kernel-buffered, like the paper's inter-host
// transport) rather than a synchronous in-memory pipe.
func TestBridgeOverRealTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	const linkLat = 3200
	arp := map[ethernet.IP]ethernet.MAC{0x0a000001: 0x1, 0x0a000002: 0x2}

	done := make(chan []softstack.PingResult, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			panic(err)
		}
		defer conn.Close()
		// Host 2: node B behind the bridge.
		b := softstack.NewNode(softstack.Config{Name: "b", MAC: 0x2, IP: 0x0a000002, StaticARP: arp})
		br := NewBridge("bridge2", conn)
		r := fame.NewRunner()
		r.Add(b)
		r.Add(br)
		if err := r.Connect(b, 0, br, 0, linkLat); err != nil {
			panic(err)
		}
		for r.Cycle() < 3_000_000 && br.Err() == nil {
			if err := r.Run(linkLat * 2); err != nil {
				panic(err)
			}
		}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Host 1: node A behind the other bridge half. Total path latency is
	// 2*linkLat each way (A->bridge + bridge->B).
	a := softstack.NewNode(softstack.Config{Name: "a", MAC: 0x1, IP: 0x0a000001, StaticARP: arp})
	br := NewBridge("bridge1", conn)
	r := fame.NewRunner()
	r.Add(a)
	r.Add(br)
	if err := r.Connect(a, 0, br, 0, linkLat); err != nil {
		t.Fatal(err)
	}
	var res []softstack.PingResult
	a.Ping(0, 0x0a000002, 3, 100*3200, func(rs []softstack.PingResult) { res = rs })
	for r.Cycle() < 3_000_000 && res == nil && br.Err() == nil {
		if err := r.Run(linkLat * 2); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case done <- res:
	default:
	}
	if br.Err() != nil {
		t.Fatalf("bridge error: %v", br.Err())
	}
	if res == nil {
		t.Fatal("ping over TCP bridge did not complete")
	}
	// RTT = 4 link crossings (A->bridge and bridge->B, each direction; the
	// bridge pair itself is a zero-latency wire) + kernel costs.
	wantNet := clock.Cycles(4 * linkLat)
	overhead := clock.Cycles(34 * 3200)
	for _, pr := range res {
		diff := pr.RTT - (wantNet + overhead)
		if diff < 0 {
			diff = -diff
		}
		if diff > 3200 {
			t.Errorf("seq %d: RTT = %d cycles, want ~%d", pr.Seq, pr.RTT, wantNet+overhead)
		}
	}
}
