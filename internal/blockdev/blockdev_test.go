package blockdev

import (
	"bytes"
	"testing"

	"repro/internal/clock"
)

type fakeMem struct {
	mem     []byte
	latency clock.Cycles
}

func newFakeMem() *fakeMem { return &fakeMem{mem: make([]byte, 1<<20), latency: 100} }

func (m *fakeMem) ReadDMA(now clock.Cycles, addr uint64, buf []byte) clock.Cycles {
	copy(buf, m.mem[addr:])
	return now + m.latency
}

func (m *fakeMem) WriteDMA(now clock.Cycles, addr uint64, data []byte) clock.Cycles {
	copy(m.mem[addr:], data)
	return now + m.latency
}

// doTransfer programs and runs one transfer to completion, returning the
// cycle at which the completion appeared.
func doTransfer(t *testing.T, d *Device, mem *fakeMem, addr, sector, nsec, write uint64) clock.Cycles {
	t.Helper()
	d.MMIOStore(RegAddr, addr)
	d.MMIOStore(RegSector, sector)
	d.MMIOStore(RegNSectors, nsec)
	d.MMIOStore(RegWrite, write)
	id := d.MMIOLoad(0, RegAlloc)
	if id == NoTracker {
		t.Fatal("allocation failed")
	}
	for now := clock.Cycles(1); now < 10_000_000; now++ {
		d.Tick(now)
		if d.MMIOLoad(now, RegNComplete) > 0 {
			got := d.MMIOLoad(now, RegComplete)
			if got != id {
				t.Fatalf("completion id = %d, want %d", got, id)
			}
			return now
		}
	}
	t.Fatal("transfer never completed")
	return 0
}

func TestWriteThenReadBack(t *testing.T) {
	mem := newFakeMem()
	d := New(DefaultConfig(), mem)
	data := bytes.Repeat([]byte("sector-data!"), 100) // > 1 sector
	copy(mem.mem[0x1000:], data)

	doTransfer(t, d, mem, 0x1000, 5, 2, 1) // write 2 sectors from memory
	// Clobber memory, then read back from the device.
	for i := range mem.mem[0x8000 : 0x8000+2*SectorBytes] {
		mem.mem[0x8000+i] = 0
	}
	doTransfer(t, d, mem, 0x8000, 5, 2, 0)
	if !bytes.Equal(mem.mem[0x8000:0x8000+2*SectorBytes], data[:2*SectorBytes]) {
		t.Error("read-back data differs from written data")
	}
	st := d.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.SectorsMoved != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTransferLatencyScalesWithSectors(t *testing.T) {
	mem := newFakeMem()
	d := New(DefaultConfig(), mem)
	cfg := DefaultConfig()
	t1 := doTransfer(t, d, mem, 0x1000, 0, 1, 0)
	t8 := doTransfer(t, d, mem, 0x1000, 0, 8, 0)
	if want := cfg.FixedLatency + cfg.SectorLatency; t1 != want {
		t.Errorf("1-sector latency = %d, want %d", t1, want)
	}
	if want := cfg.FixedLatency + 8*cfg.SectorLatency; t8 != want {
		t.Errorf("8-sector latency = %d, want %d", t8, want)
	}
}

func TestAllTrackersBusy(t *testing.T) {
	mem := newFakeMem()
	cfg := DefaultConfig()
	d := New(cfg, mem)
	d.MMIOStore(RegNSectors, 1)
	for i := 0; i < cfg.Trackers; i++ {
		if id := d.MMIOLoad(0, RegAlloc); id == NoTracker {
			t.Fatalf("tracker %d allocation failed", i)
		}
	}
	if id := d.MMIOLoad(0, RegAlloc); id != NoTracker {
		t.Errorf("allocation with all trackers busy returned %d", id)
	}
	if d.Stats().AllocFailed != 1 {
		t.Errorf("AllocFailed = %d", d.Stats().AllocFailed)
	}
	// After completion, trackers free up again.
	for now := clock.Cycles(1); now < 1_000_000; now++ {
		d.Tick(now)
		if d.MMIOLoad(now, RegNComplete) == uint64(cfg.Trackers) {
			break
		}
	}
	if id := d.MMIOLoad(2_000_000, RegAlloc); id == NoTracker {
		t.Error("allocation still failing after trackers completed")
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	mem := newFakeMem()
	d := New(DefaultConfig(), mem)
	d.MMIOStore(RegSector, d.NumSectors()-1)
	d.MMIOStore(RegNSectors, 2)
	if id := d.MMIOLoad(0, RegAlloc); id != NoTracker {
		t.Errorf("out-of-range transfer allocated tracker %d", id)
	}
}

func TestInterrupt(t *testing.T) {
	mem := newFakeMem()
	d := New(DefaultConfig(), mem)
	d.MMIOStore(RegIntrEn, 1)
	if d.IntrPending() {
		t.Error("interrupt pending with no completions")
	}
	d.MMIOStore(RegNSectors, 1)
	d.MMIOLoad(0, RegAlloc)
	for now := clock.Cycles(1); now < 1_000_000 && !d.IntrPending(); now++ {
		d.Tick(now)
	}
	if !d.IntrPending() {
		t.Fatal("interrupt never asserted")
	}
	d.MMIOLoad(0, RegComplete)
	if d.IntrPending() {
		t.Error("interrupt still pending after completion popped")
	}
}

func TestEmptyCompletionQueue(t *testing.T) {
	d := New(DefaultConfig(), newFakeMem())
	if got := d.MMIOLoad(0, RegComplete); got != NoTracker {
		t.Errorf("empty completion pop = %d", got)
	}
}

func TestProvisioning(t *testing.T) {
	d := New(DefaultConfig(), newFakeMem())
	d.WriteSector(7, []byte("root filesystem block"))
	got := d.ReadSector(7)
	if string(got[:21]) != "root filesystem block" {
		t.Errorf("ReadSector = %q", got[:21])
	}
	if got := d.ReadSector(99); !bytes.Equal(got, make([]byte, SectorBytes)) {
		t.Error("unwritten sector not zero")
	}
}

func TestTechnologyOrdering(t *testing.T) {
	// 3D XPoint < SSD < Disk for a single-sector access, and the ordering
	// must also hold end-to-end through the controller.
	disk := ConfigFor(TechDisk)
	ssd := ConfigFor(TechSSD)
	xp := ConfigFor(TechXPoint)
	if !(xp.AccessLatency(1) < ssd.AccessLatency(1) && ssd.AccessLatency(1) < disk.AccessLatency(1)) {
		t.Errorf("latency ordering wrong: xp=%d ssd=%d disk=%d",
			xp.AccessLatency(1), ssd.AccessLatency(1), disk.AccessLatency(1))
	}
	mem := newFakeMem()
	tSSD := doTransfer(t, New(ssd, mem), mem, 0x1000, 0, 1, 0)
	tXP := doTransfer(t, New(xp, mem), mem, 0x1000, 0, 1, 0)
	if tXP >= tSSD {
		t.Errorf("3D XPoint transfer (%d) not faster than SSD (%d)", tXP, tSSD)
	}
}

func TestTechnologyBandwidth(t *testing.T) {
	// For large streaming transfers the per-sector term dominates: disk
	// streams ~200 MB/s, SSD ~2 GB/s (10x fewer cycles per sector).
	disk := ConfigFor(TechDisk)
	ssd := ConfigFor(TechSSD)
	const sectors = 4096
	dCycles := disk.AccessLatency(sectors) - disk.FixedLatency
	sCycles := ssd.AccessLatency(sectors) - ssd.FixedLatency
	ratio := float64(dCycles) / float64(sCycles)
	if ratio < 8 || ratio > 12 {
		t.Errorf("disk/ssd streaming ratio = %.1f, want ~10", ratio)
	}
}

func TestUnknownTechnologyDefaults(t *testing.T) {
	cfg := ConfigFor(Technology("quantum"))
	if cfg != DefaultConfig() {
		t.Error("unknown technology should fall back to the default config")
	}
}
