package clock

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestCyclesIn(t *testing.T) {
	c := New(DefaultTargetClock)
	if got := c.CyclesIn(time.Microsecond); got != 3200 {
		t.Errorf("CyclesIn(1us) = %d, want 3200", got)
	}
	if got := c.CyclesIn(2 * time.Microsecond); got != 6400 {
		t.Errorf("CyclesIn(2us) = %d, want 6400 (the paper's 2us link latency)", got)
	}
	if got := c.CyclesIn(time.Second); got != 3_200_000_000 {
		t.Errorf("CyclesIn(1s) = %d", got)
	}
}

func TestDurationRoundTrip(t *testing.T) {
	c := New(1 * GHz)
	check := func(n uint32) bool {
		cyc := Cycles(n)
		// at 1 GHz, 1 cycle == 1 ns exactly, so the round trip is lossless
		return c.CyclesIn(c.Duration(cyc)) == cyc
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestMicros(t *testing.T) {
	c := New(DefaultTargetClock)
	if got := c.Micros(6400); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("Micros(6400) = %g, want 2.0", got)
	}
	if got := c.CyclesInMicros(2.0); got != 6400 {
		t.Errorf("CyclesInMicros(2.0) = %d, want 6400", got)
	}
}

func TestNewPanicsOnBadFreq(t *testing.T) {
	for _, f := range []Hz{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", f)
				}
			}()
			New(f)
		}()
	}
}

func TestHzString(t *testing.T) {
	cases := []struct {
		f    Hz
		want string
	}{
		{3.2 * GHz, "3.2 GHz"},
		{3.4 * MHz, "3.4 MHz"},
		{500 * KHz, "500 KHz"},
		{42, "42 Hz"},
	}
	for _, tc := range cases {
		if got := tc.f.String(); got != tc.want {
			t.Errorf("(%v).String() = %q, want %q", float64(tc.f), got, tc.want)
		}
	}
}

func TestSimRate(t *testing.T) {
	// The paper's headline: 3.2 GHz target simulated at 3.4 MHz is a ~941x
	// slowdown, "less than 1,000x over real-time".
	r := SimRate{
		TargetCycles: 3_400_000, // 3.4M cycles...
		Wall:         time.Second,
		TargetFreq:   DefaultTargetClock,
	}
	if got := r.EffectiveHz(); math.Abs(float64(got)-3.4e6) > 1 {
		t.Errorf("EffectiveHz = %v", got)
	}
	if got := r.Slowdown(); math.Abs(got-941.18) > 0.1 {
		t.Errorf("Slowdown = %g, want ~941.18", got)
	}
	if got := r.Slowdown(); got >= 1000 {
		t.Errorf("slowdown %g should be < 1000x per the paper", got)
	}
}

func TestSimRateZeroWall(t *testing.T) {
	r := SimRate{TargetCycles: 100, Wall: 0, TargetFreq: GHz}
	if r.EffectiveHz() != 0 || r.Slowdown() != 0 {
		t.Error("zero wall time should yield zero rate, not a division panic")
	}
}
