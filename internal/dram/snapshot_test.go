package dram

import (
	"bytes"
	"testing"

	"repro/internal/snapshot"
	"repro/internal/snapshot/snaptest"
)

func TestModelSnapshotConformance(t *testing.T) {
	m := New(Config{})
	// Populate two sparse chunks plus bank/bus timing and counters.
	m.Write64(0x1000, 0xdeadbeefcafef00d)
	m.WriteBytes(1<<20+64, bytes.Repeat([]byte{0xa5}, 256))
	now := m.Access(0, 0x1000, false)
	now = m.Access(now, 1<<20, true)
	m.Access(now, 0x2000, false)
	snaptest.RoundTrip(t, m, func() snapshot.Snapshotter { return New(Config{}) })
}

func TestModelZeroedChunksCanonical(t *testing.T) {
	// Writing data and then zeroing it back must serialise to the same
	// bytes as never having touched the chunk: all-zero chunks are skipped
	// because an absent chunk and a zero chunk are behaviorally identical.
	a := New(Config{})
	b := New(Config{})
	b.Write64(0x4000, 0x1234)
	b.Write64(0x4000, 0)
	if !bytes.Equal(snaptest.Save(t, a), snaptest.Save(t, b)) {
		t.Fatal("zeroed-back chunk changed checkpoint bytes")
	}
}
