// Package switchmodel implements FireSim's software switch models.
//
// Switches in the target design are modeled in software (C++ in the paper,
// Go here) processing network flits cycle-by-cycle. The algorithm follows
// Section III-B1 exactly:
//
//   - At ingress, simulation tokens containing valid data are buffered into
//     full packets, timestamped with the arrival cycle of their last token
//     plus a configurable minimum switching latency.
//   - A global switching step pushes all packets that completed during the
//     round through a priority queue sorted on timestamp, and drains the
//     queue into output-port buffers chosen by a static MAC address table
//     (datacenter topologies are relatively fixed). Broadcast packets are
//     duplicated as necessary.
//   - Per output port, packets are "released" onto the link in token form
//     when their release timestamp is less than or equal to global
//     simulation time and the output token buffer has space. Because the
//     output token buffer is of fixed size each iteration (one link
//     latency's worth of tokens), congestion is modeled automatically by
//     packets not being releasable. Buffer sizing and congestion drops are
//     modeled by bounding the delay between a packet's release timestamp
//     and global time, and by bounding output buffer occupancy in bytes.
//
// The switching algorithm and the assumption of Ethernet as the link layer
// are not fundamental: users can plug in their own Router to model new
// switch designs.
//
// At datacenter scale (the paper's 1024-node tree has ~1,100 switch ports)
// the switch model is the scale-out hot path, so the steady-state round is
// allocation-free: Packet structs and their flit slabs live in a per-switch
// free list (recycled when the last reference drops at egress or on drop),
// the pending queue is a concrete 4-ary min-heap with no interface boxing,
// broadcast fan-out shares one refcounted packet across egress queues
// instead of copying it per port, egress FIFOs are head-index rings whose
// backing arrays are reused forever, and the published stats snapshot goes
// through a seqlock instead of a fresh heap copy per round. A fully
// quiescent round (no ingress tokens, nothing queued, nothing in flight)
// short-circuits to an arithmetic cycle advance: O(ports), not O(ports×n).
package switchmodel

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/clock"
	"repro/internal/ethernet"
	"repro/internal/token"
)

// Config parameterises a switch. Port bandwidth, link latency, buffering
// and switching latency are all runtime-configurable (no FPGA rebuild), as
// the paper emphasises.
type Config struct {
	// Name identifies the switch in diagnostics and stats.
	Name string
	// Ports is the number of full-duplex ports.
	Ports int
	// SwitchingLatency is the minimum port-to-port latency added to every
	// packet's timestamp at ingress. The paper's experiments use 10 cycles.
	SwitchingLatency clock.Cycles
	// OutputBufferBytes bounds each output port's packet buffer; packets
	// that would overflow it are dropped (at full-packet granularity).
	OutputBufferBytes int
	// MaxReleaseDelay bounds how stale a packet may become (global time
	// minus release timestamp) before it is dropped, modeling drop due to
	// congestion. Zero disables staleness drops.
	MaxReleaseDelay clock.Cycles
	// Router chooses output ports; nil selects a MAC-table router.
	Router Router
}

// DefaultSwitchingLatency is the paper's fixed port-to-port latency.
const DefaultSwitchingLatency clock.Cycles = 10

// DefaultOutputBufferBytes is a generous default output buffer (512 KiB),
// comparable to per-port packet memory in datacenter ToR switches.
const DefaultOutputBufferBytes = 512 << 10

// Packet is a fully-assembled packet inside the switch.
type Packet struct {
	// Flits is the packet's link-level data.
	Flits []uint64
	// InPort is the ingress port.
	InPort int
	// Release is the earliest global cycle at which the packet may be
	// released to an output port (last-flit arrival + switching latency).
	Release clock.Cycles
	// seq breaks timestamp ties deterministically (ingress order).
	seq uint64
	// refs counts egress queues (and in-flight transmissions) still holding
	// the packet; broadcast fan-out shares one packet across ports instead
	// of copying it. Owned by the ticking goroutine — never atomic.
	refs int32
}

// Dst returns the destination MAC parsed from the first flit.
func (p *Packet) Dst() ethernet.MAC { return ethernet.DstFromFirstFlit(p.Flits[0]) }

// Router decides which output ports a packet goes to.
type Router interface {
	// Route returns the output ports for the packet. Returning no ports
	// drops the packet. The returned slice is only valid until the next
	// Route or table-mutation call and must not be retained or mutated:
	// routers are free to return a shared scratch or cached slice.
	Route(sw *Switch, pkt *Packet) []int
}

// MACTableRouter routes by a static MAC address table populated by the
// simulation manager, flooding broadcast and unknown-destination packets to
// every port except the ingress port.
type MACTableRouter struct {
	table map[ethernet.MAC]int
	// unicast is the reusable single-port result slab: the known-MAC fast
	// path returns unicast[:1] instead of allocating a fresh slice per
	// packet (see Router.Route's aliasing contract).
	unicast [1]int
	// flood caches, per ingress port, the flood list "every port except
	// the ingress port". Built lazily for the switch's port count and
	// invalidated on Set, so broadcast/unknown floods allocate only once
	// per (table generation, port count) instead of once per packet.
	flood [][]int
}

// NewMACTableRouter returns an empty table router.
func NewMACTableRouter() *MACTableRouter {
	return &MACTableRouter{table: make(map[ethernet.MAC]int)}
}

// Set maps a MAC address to an output port.
func (r *MACTableRouter) Set(mac ethernet.MAC, port int) {
	r.table[mac] = port
	r.flood = nil
}

// Lookup reports the port for a MAC, if present.
func (r *MACTableRouter) Lookup(mac ethernet.MAC) (int, bool) {
	p, ok := r.table[mac]
	return p, ok
}

// Route implements Router.
func (r *MACTableRouter) Route(sw *Switch, pkt *Packet) []int {
	dst := pkt.Dst()
	if dst != ethernet.Broadcast {
		if port, ok := r.table[dst]; ok {
			if port == pkt.InPort {
				return nil // never reflect a packet back out its ingress port
			}
			r.unicast[0] = port
			return r.unicast[:1]
		}
	}
	// Broadcast / unknown destination: flood.
	if len(r.flood) != sw.cfg.Ports {
		r.flood = make([][]int, sw.cfg.Ports)
		for ip := range r.flood {
			ports := make([]int, 0, sw.cfg.Ports-1)
			for p := 0; p < sw.cfg.Ports; p++ {
				if p != ip {
					ports = append(ports, p)
				}
			}
			r.flood[ip] = ports
		}
	}
	return r.flood[pkt.InPort]
}

// Stats aggregates switch activity counters.
type Stats struct {
	PacketsIn       uint64
	PacketsOut      uint64
	FlitsIn         uint64
	FlitsOut        uint64
	DropsBufFull    uint64
	DropsStale      uint64
	DropsUnroutable uint64
	BytesSwitched   uint64
	// StallCycles counts port-cycles on which an installed stall hook
	// (fault injection) suppressed egress.
	StallCycles uint64
}

// numStatFields is the number of uint64 counters in Stats, mirrored by the
// seqlock publication slots below.
const numStatFields = 9

// pktLess orders packets by (release timestamp, ingress sequence) — a total
// order, so any correct heap drains packets in exactly this order.
func pktLess(a, b *Packet) bool {
	if a.Release != b.Release {
		return a.Release < b.Release
	}
	return a.seq < b.seq
}

// pktHeap is the global timestamp-sorted priority queue of assembled
// packets: a concrete 4-ary min-heap. Compared to container/heap this
// removes the interface{} boxing on every push/pop and halves the tree
// depth; because pktLess is a total order, drain order (and therefore every
// output token stream and stat) is identical to any other min-heap.
type pktHeap struct {
	a []*Packet
}

func (h *pktHeap) len() int { return len(h.a) }

func (h *pktHeap) push(p *Packet) {
	h.a = append(h.a, p)
	a := h.a
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !pktLess(a[i], a[parent]) {
			break
		}
		a[i], a[parent] = a[parent], a[i]
		i = parent
	}
}

func (h *pktHeap) pop() *Packet {
	a := h.a
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = nil
	a = a[:n]
	h.a = a
	i := 0
	for {
		min := i
		first := i*4 + 1
		if first >= n {
			break
		}
		last := first + 4
		if last > n {
			last = n
		}
		for c := first; c < last; c++ {
			if pktLess(a[c], a[min]) {
				min = c
			}
		}
		if min == i {
			break
		}
		a[i], a[min] = a[min], a[i]
		i = min
	}
	return top
}

// pktRing is a FIFO of packets over a reusable circular buffer. The
// append-and-reslice queue it replaces leaked its backing array's head on
// every dequeue (o.queue = o.queue[1:] strands the popped cell forever, the
// same defect PR 3 fixed in the fame channel rings); the ring reuses cells
// in place and grows only when genuinely full.
type pktRing struct {
	buf  []*Packet
	head int
	n    int
}

func (q *pktRing) len() int { return q.n }

func (q *pktRing) push(p *Packet) {
	if q.n == len(q.buf) {
		grown := make([]*Packet, max(8, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			grown[i] = q.at(i)
		}
		q.buf = grown
		q.head = 0
	}
	i := q.head + q.n
	if i >= len(q.buf) {
		i -= len(q.buf)
	}
	q.buf[i] = p
	q.n++
}

func (q *pktRing) front() *Packet { return q.buf[q.head] }

func (q *pktRing) pop() *Packet {
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.n--
	return p
}

// at returns the i-th queued packet in FIFO order (0 = front), for
// snapshotting and metrics; i must be < len().
func (q *pktRing) at(i int) *Packet {
	j := q.head + i
	if j >= len(q.buf) {
		j -= len(q.buf)
	}
	return q.buf[j]
}

// outPort is the egress state of one port.
type outPort struct {
	queue       pktRing // FIFO, already routed, bounded by bytes
	queuedBytes int
	// tx is the packet currently being transmitted, flit index next to go.
	tx     *Packet
	txFlit int
}

// inPort is the ingress state of one port: partial packet assembly into a
// pooled packet (nil when no flits are buffered).
type inPort struct {
	cur *Packet
}

// Switch is a software switch model implementing fame.Endpoint.
type Switch struct {
	cfg    Config
	router Router
	cycle  clock.Cycles
	seq    uint64

	in    []inPort
	out   []outPort
	queue pktHeap

	// free is the packet pool. Packets (and their flit slabs, kept at
	// capacity) are recycled here when their last reference drops — egress
	// of the final flit, a drop, or an unroutable verdict — and reused at
	// ingress, so steady-state rounds allocate nothing.
	free []*Packet

	// stats is owned by the ticking goroutine; readers go through the
	// seqlock-published copy below, so Stats() and Cycle() are safe to
	// call concurrently with an in-flight RunParallel (the runner runs
	// each endpoint, this switch included, on its own goroutine).
	stats Stats
	// Seqlock publication: pubSeq is odd while the writer is mid-publish;
	// readers retry until they see the same even value on both sides of
	// copying pubStat. Replaces an atomic.Pointer[Stats] store whose
	// per-round heap copy was the last steady-state allocation.
	pubSeq   atomic.Uint64
	pubStat  [numStatFields]atomic.Uint64
	pubLast  Stats // last published counters; quiet rounds skip the seqlock
	pubCycle atomic.Int64

	// metrics, when non-nil, mirrors the switch counters into the
	// observability registry at the end of every TickBatch (see
	// publishMetrics); the per-flit hot loops stay untouched.
	metrics *switchMetrics

	// probe, when non-nil, is called once per released flit with the
	// absolute cycle, for bandwidth-over-time measurements (Figure 6
	// samples aggregate bandwidth at the root switch).
	probe func(cycle clock.Cycles, port int)

	// stall, when non-nil, reports whether an output port is prevented
	// from releasing a flit at the given cycle (fault injection: a stalled
	// port backs traffic up into its output buffer, so sustained stalls
	// surface as DropsBufFull/DropsStale exactly like real congestion).
	stall func(port int, cycle clock.Cycles) bool
}

// New builds a switch from cfg, applying defaults for zero values.
func New(cfg Config) *Switch {
	if cfg.Ports <= 0 {
		panic(fmt.Sprintf("switchmodel: switch %q needs at least one port", cfg.Name))
	}
	if cfg.SwitchingLatency == 0 {
		cfg.SwitchingLatency = DefaultSwitchingLatency
	}
	if cfg.OutputBufferBytes == 0 {
		cfg.OutputBufferBytes = DefaultOutputBufferBytes
	}
	router := cfg.Router
	if router == nil {
		router = NewMACTableRouter()
	}
	return &Switch{
		cfg:    cfg,
		router: router,
		in:     make([]inPort, cfg.Ports),
		out:    make([]outPort, cfg.Ports),
	}
}

// newPacket takes a packet from the pool (flit slab emptied but at
// capacity) or allocates one on first use.
func (s *Switch) newPacket() *Packet {
	if n := len(s.free); n > 0 {
		p := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return p
	}
	return &Packet{}
}

// recycle returns a packet to the pool, keeping its flit slab's capacity.
func (s *Switch) recycle(p *Packet) {
	p.Flits = p.Flits[:0]
	p.refs = 0
	s.free = append(s.free, p)
}

// unref drops one egress reference and recycles the packet when the last
// holder (queue slot, in-flight tx) lets go.
func (s *Switch) unref(p *Packet) {
	p.refs--
	if p.refs <= 0 {
		s.recycle(p)
	}
}

// Name implements fame.Endpoint.
func (s *Switch) Name() string { return s.cfg.Name }

// NumPorts implements fame.Endpoint.
func (s *Switch) NumPorts() int { return s.cfg.Ports }

// Router returns the switch's router, for manager-side MAC table
// population.
func (s *Switch) Router() Router { return s.router }

// MACTable returns the router as a *MACTableRouter if that is what is
// installed, for the common case.
func (s *Switch) MACTable() *MACTableRouter {
	r, _ := s.router.(*MACTableRouter)
	return r
}

// Stats returns a snapshot of the switch counters as of the most recently
// completed TickBatch. It reads the seqlock-published copy, so it is safe
// to call from any goroutine while a parallel run is in flight — the
// snapshot is always internally consistent (whole-round granularity),
// never a torn mid-round view.
func (s *Switch) Stats() Stats {
	for {
		s1 := s.pubSeq.Load()
		if s1&1 == 0 {
			var st Stats
			st.PacketsIn = s.pubStat[0].Load()
			st.PacketsOut = s.pubStat[1].Load()
			st.FlitsIn = s.pubStat[2].Load()
			st.FlitsOut = s.pubStat[3].Load()
			st.DropsBufFull = s.pubStat[4].Load()
			st.DropsStale = s.pubStat[5].Load()
			st.DropsUnroutable = s.pubStat[6].Load()
			st.BytesSwitched = s.pubStat[7].Load()
			st.StallCycles = s.pubStat[8].Load()
			if s.pubSeq.Load() == s1 {
				return st
			}
		}
		runtime.Gosched() // writer mid-publish; it finishes in a few stores
	}
}

// publishStats makes the current counters visible to concurrent readers.
// Rounds that moved no counter skip the write side entirely; the published
// copy is already identical.
func (s *Switch) publishStats() {
	if s.stats != s.pubLast {
		s.pubSeq.Add(1) // odd: readers hold off
		s.pubStat[0].Store(s.stats.PacketsIn)
		s.pubStat[1].Store(s.stats.PacketsOut)
		s.pubStat[2].Store(s.stats.FlitsIn)
		s.pubStat[3].Store(s.stats.FlitsOut)
		s.pubStat[4].Store(s.stats.DropsBufFull)
		s.pubStat[5].Store(s.stats.DropsStale)
		s.pubStat[6].Store(s.stats.DropsUnroutable)
		s.pubStat[7].Store(s.stats.BytesSwitched)
		s.pubStat[8].Store(s.stats.StallCycles)
		s.pubSeq.Add(1) // even: snapshot complete
		s.pubLast = s.stats
	}
	s.pubCycle.Store(int64(s.cycle))
}

// Cycle returns the switch's target cycle as of the most recently
// completed TickBatch. Like Stats, it is safe concurrently with a
// parallel run.
func (s *Switch) Cycle() clock.Cycles { return clock.Cycles(s.pubCycle.Load()) }

// SetProbe installs a per-released-flit callback for bandwidth
// measurement.
func (s *Switch) SetProbe(fn func(cycle clock.Cycles, port int)) { s.probe = fn }

// SetStall installs (or, with nil, removes) a port-stall hook for fault
// injection. While fn(port, cycle) reports true the port releases nothing;
// the hook must be a pure function of (port, cycle) to preserve
// determinism.
func (s *Switch) SetStall(fn func(port int, cycle clock.Cycles) bool) { s.stall = fn }

// TickBatch implements fame.Endpoint: one full switching round over n
// target cycles.
func (s *Switch) TickBatch(n int, in, out []*token.Batch) {
	// Idle early-out: with no ingress tokens, nothing pending and nothing
	// queued or in flight at egress, the round is a pure cycle advance —
	// partial ingress assemblies can't progress without new tokens, and no
	// stat moves. Quiescent aggregation/root switches pay O(ports), not
	// O(ports×n). A stall hook disables the shortcut: stalled port-cycles
	// are counted (and checkpointed) even on otherwise idle ports.
	if s.stall == nil && s.queue.len() == 0 {
		idle := true
		for p := 0; p < s.cfg.Ports; p++ {
			o := &s.out[p]
			if len(in[p].Slots) != 0 || o.tx != nil || o.queue.len() != 0 {
				idle = false
				break
			}
		}
		if idle {
			s.cycle += clock.Cycles(n)
			s.publishStats()
			if s.metrics != nil {
				s.publishMetrics()
			}
			return
		}
	}

	// Phase 1: ingress. Buffer valid tokens into packets; timestamp each
	// completed packet with its last token's arrival cycle plus the
	// minimum switching latency, and push it into the global queue.
	for p := 0; p < s.cfg.Ports; p++ {
		ip := &s.in[p]
		for _, slot := range in[p].Slots {
			if ip.cur == nil {
				ip.cur = s.newPacket()
			}
			ip.cur.Flits = append(ip.cur.Flits, slot.Tok.Data)
			s.stats.FlitsIn++
			if slot.Tok.Last {
				pkt := ip.cur
				ip.cur = nil
				pkt.InPort = p
				pkt.Release = s.cycle + clock.Cycles(slot.Offset) + s.cfg.SwitchingLatency
				pkt.seq = s.seq
				s.seq++
				s.stats.PacketsIn++
				s.queue.push(pkt)
			}
		}
	}

	// Phase 2: global switching step. Drain the priority queue in
	// timestamp order into output port buffers via the router; broadcast
	// fan-out shares the packet across ports under a refcount. Packets
	// that would overflow an output buffer are dropped at full-packet
	// granularity.
	for s.queue.len() > 0 {
		pkt := s.queue.pop()
		ports := s.router.Route(s, pkt)
		if len(ports) == 0 {
			s.stats.DropsUnroutable++
			s.recycle(pkt)
			continue
		}
		bytes := len(pkt.Flits) * ethernet.FlitSize
		for _, op := range ports {
			o := &s.out[op]
			if o.queuedBytes+bytes > s.cfg.OutputBufferBytes {
				s.stats.DropsBufFull++
				continue
			}
			pkt.refs++
			o.queue.push(pkt)
			o.queuedBytes += bytes
		}
		if pkt.refs == 0 {
			// Every routed port overflowed: nobody holds the packet.
			s.recycle(pkt)
		}
	}

	// Phase 3: egress. Per port, release packets whose timestamp has been
	// reached, one flit per cycle. The output token buffer for the round
	// is exactly n tokens, so a congested port simply fails to release —
	// which is the paper's congestion model.
	for p := 0; p < s.cfg.Ports; p++ {
		s.releasePort(p, n, out[p])
	}
	s.cycle += clock.Cycles(n)

	// Publish this round's counters for concurrent readers: a handful of
	// atomic stores per changed round, nothing per flit, no allocation.
	s.publishStats()
	if s.metrics != nil {
		s.publishMetrics()
	}
}

func (s *Switch) releasePort(p int, n int, out *token.Batch) {
	o := &s.out[p]
	for i := 0; i < n; i++ {
		now := s.cycle + clock.Cycles(i)
		if s.stall != nil && s.stall(p, now) {
			s.stats.StallCycles++
			continue
		}
		if o.tx == nil {
			// Try to start a new packet this cycle.
			for o.queue.len() > 0 {
				head := o.queue.front()
				if head.Release > now {
					break
				}
				if s.cfg.MaxReleaseDelay > 0 && now-head.Release > s.cfg.MaxReleaseDelay {
					// Too stale: congestion drop.
					o.queue.pop()
					o.queuedBytes -= len(head.Flits) * ethernet.FlitSize
					s.stats.DropsStale++
					s.unref(head)
					continue
				}
				o.tx = head
				o.txFlit = 0
				o.queue.pop()
				break
			}
		}
		if o.tx == nil {
			// Idle: fast-forward to the next packet's release time (or
			// the end of the batch). Semantically identical to ticking
			// every empty cycle, but O(1) for idle ports.
			if o.queue.len() == 0 {
				return
			}
			next := o.queue.front().Release
			if next >= s.cycle+clock.Cycles(n) {
				return
			}
			if j := int(next - s.cycle); j > i {
				i = j - 1 // loop increment lands on the release cycle
			}
			continue
		}
		flit := o.tx.Flits[o.txFlit]
		last := o.txFlit == len(o.tx.Flits)-1
		out.Put(i, token.Token{Data: flit, Valid: true, Last: last})
		s.stats.FlitsOut++
		s.stats.BytesSwitched += ethernet.FlitSize
		if s.probe != nil {
			s.probe(now, p)
		}
		o.txFlit++
		if last {
			o.queuedBytes -= len(o.tx.Flits) * ethernet.FlitSize
			s.stats.PacketsOut++
			s.unref(o.tx)
			o.tx = nil
		}
	}
}
