package snapshot

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeGen is a test helper that saves one small but multi-section
// generation at the given cycle.
func writeGen(t *testing.T, s *Store, cycle uint64) {
	t.Helper()
	err := s.Save(cycle, func(w io.Writer) error {
		sw, err := NewWriter(w, Header{TopologyHash: 0xfeed, Cycle: cycle, Step: 8})
		if err != nil {
			return err
		}
		sw.Section("node/server0")
		sw.Begin("test.node", 1)
		sw.U64(cycle)
		sw.String("some state")
		sw.Section("links")
		sw.Begin("test.links", 1)
		for i := 0; i < 16; i++ {
			sw.U64(uint64(i) * cycle)
		}
		return sw.Close()
	})
	if err != nil {
		t.Fatalf("Save(%d): %v", cycle, err)
	}
}

// genFile locates the on-disk generation file for a cycle (the name
// embeds a content CRC, so tests find it by prefix).
func genFile(t *testing.T, dir string, cycle uint64) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, fmt.Sprintf("ckpt-%016x-*.fsnp", cycle)))
	if err != nil || len(matches) != 1 {
		t.Fatalf("generation file for cycle %d: matches=%v err=%v", cycle, matches, err)
	}
	return matches[0]
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	s, err := NewStore(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	writeGen(t, s, 100)
	writeGen(t, s, 200)

	cycles, err := s.Cycles()
	if err != nil {
		t.Fatal(err)
	}
	if len(cycles) != 2 || cycles[0] != 100 || cycles[1] != 200 {
		t.Fatalf("Cycles = %v, want [100 200]", cycles)
	}
	data, err := s.Load(200)
	if err != nil {
		t.Fatal(err)
	}
	h, infos, err := Inspect(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if h.Cycle != 200 || len(infos) != 2 {
		t.Fatalf("loaded header %+v with %d sections", h, len(infos))
	}
	cycle, _, ok := s.LatestValid()
	if !ok || cycle != 200 {
		t.Fatalf("LatestValid = %d, %v; want 200, true", cycle, ok)
	}
}

func TestStoreFailedSaveLeavesNoGeneration(t *testing.T) {
	s, err := NewStore(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	writeGen(t, s, 100)
	saveErr := s.Save(200, func(w io.Writer) error {
		w.Write([]byte("partial garbage"))
		return fmt.Errorf("node not quiescent")
	})
	if saveErr == nil {
		t.Fatal("Save with failing fn returned nil")
	}
	cycles, _ := s.Cycles()
	if len(cycles) != 1 || cycles[0] != 100 {
		t.Fatalf("Cycles after failed save = %v, want [100]", cycles)
	}
	// No temp litter either.
	entries, _ := os.ReadDir(s.Dir())
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("failed save left temp file %q", e.Name())
		}
	}
}

func TestStoreRetentionGC(t *testing.T) {
	s, err := NewStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []uint64{10, 20, 30, 40} {
		writeGen(t, s, c)
	}
	cycles, _ := s.Cycles()
	if len(cycles) != 2 || cycles[0] != 30 || cycles[1] != 40 {
		t.Fatalf("Cycles after GC = %v, want [30 40]", cycles)
	}
}

// TestStoreTornNewestFallsBack is the torn-checkpoint recovery matrix: a
// shard killed mid-checkpoint-write (or a filesystem tearing the file
// after the fact) must leave the store falling back to the previous good
// generation, never erroring out and never serving the torn bytes. The
// newest generation file is truncated at EVERY byte boundary — which
// sweeps through every boundary class of the format: mid-header,
// mid-section-marker, mid-name, mid-length, mid-payload, mid-CRC, and
// missing trailer — and additionally corrupted by a bit flip at every
// offset.
func TestStoreTornNewestFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	writeGen(t, s, 100)
	writeGen(t, s, 200)

	newest := genFile(t, dir, 200)
	pristine, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if len(pristine) < 40 {
		t.Fatalf("test stream too small (%d bytes) to exercise boundary classes", len(pristine))
	}

	check := func(t *testing.T, mutated []byte) {
		t.Helper()
		if err := os.WriteFile(newest, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		cycle, data, ok := s.LatestValid()
		if !ok {
			t.Fatal("LatestValid found nothing; want fallback to generation 100")
		}
		if cycle != 100 {
			t.Fatalf("LatestValid = cycle %d, want fallback to 100", cycle)
		}
		if h, _, err := Inspect(strings.NewReader(string(data))); err != nil || h.Cycle != 100 {
			t.Fatalf("fallback bytes invalid: cycle %d err %v", h.Cycle, err)
		}
		// Load of the torn cycle itself must error, not serve garbage.
		if _, err := s.Load(200); err == nil {
			t.Fatal("Load(200) of torn file succeeded")
		}
	}

	t.Run("truncated", func(t *testing.T) {
		for cut := 0; cut < len(pristine); cut++ {
			check(t, pristine[:cut])
		}
	})
	t.Run("bitflip", func(t *testing.T) {
		for off := 0; off < len(pristine); off++ {
			mutated := append([]byte(nil), pristine...)
			mutated[off] ^= 0x40
			check(t, mutated)
		}
	})
	t.Run("empty", func(t *testing.T) {
		check(t, nil)
	})

	// Restore the pristine newest generation: the store must serve it
	// again (nothing above deleted it permanently beyond our rewrites).
	if err := os.WriteFile(newest, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
	if cycle, _, ok := s.LatestValid(); !ok || cycle != 200 {
		t.Fatalf("after repair LatestValid = %d, %v; want 200", cycle, ok)
	}
}

// A bit flip that lands in a section payload must fail the CRC even
// though the overall framing lengths still parse.
func TestStoreCRCMismatchSkipped(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	writeGen(t, s, 7)
	name := genFile(t, dir, 7)
	data, _ := os.ReadFile(name)
	// Flip a byte well inside the first section payload (past the 32-byte
	// header and the section preamble).
	data[40] ^= 0xff
	os.WriteFile(name, data, 0o644)
	if cycles, _ := s.Cycles(); len(cycles) != 0 {
		t.Fatalf("corrupt-only store lists cycles %v", cycles)
	}
	if _, _, ok := s.LatestValid(); ok {
		t.Fatal("LatestValid returned a corrupt generation")
	}
}

func TestCoordinatedCycle(t *testing.T) {
	base := t.TempDir()
	var stores []*Store
	for i := 0; i < 3; i++ {
		st, err := NewStore(filepath.Join(base, fmt.Sprintf("sub%d", i)), 4)
		if err != nil {
			t.Fatal(err)
		}
		stores = append(stores, st)
	}
	for _, st := range stores {
		writeGen(t, st, 100)
		writeGen(t, st, 200)
	}
	// Only store 0 reached 300; the coordinated point stays at 200.
	writeGen(t, stores[0], 300)
	c, ok := CoordinatedCycle(stores)
	if !ok || c != 200 {
		t.Fatalf("CoordinatedCycle = %d, %v; want 200, true", c, ok)
	}
	// Tear store 1's generation 200: coordination falls back to 100.
	torn := genFile(t, stores[1].Dir(), 200)
	data, _ := os.ReadFile(torn)
	os.WriteFile(torn, data[:len(data)/2], 0o644)
	c, ok = CoordinatedCycle(stores)
	if !ok || c != 100 {
		t.Fatalf("CoordinatedCycle after tear = %d, %v; want 100, true", c, ok)
	}
}

// TestStoreSameCycleOverwrite: re-saving a cycle replaces the previous
// generation file for that cycle, even when the content (and therefore
// the CRC-named file) differs — the recovery path re-runs a slice whose
// earlier, degraded persist must not survive as an alternative Load
// result.
func TestStoreSameCycleOverwrite(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Two different payloads for the same cycle.
	save := func(tag string) {
		t.Helper()
		err := s.Save(64, func(w io.Writer) error {
			sw, err := NewWriter(w, Header{TopologyHash: 0xfeed, Cycle: 64, Step: 8})
			if err != nil {
				return err
			}
			sw.Section("node/server0")
			sw.Begin("test.node", 1)
			sw.String(tag)
			return sw.Close()
		})
		if err != nil {
			t.Fatalf("Save(%s): %v", tag, err)
		}
	}
	save("degraded")
	save("good")
	matches, err := filepath.Glob(filepath.Join(dir, "ckpt-*.fsnp"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly one generation file, got %v (err %v)", matches, err)
	}
	data, err := s.Load(64)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "good") || strings.Contains(string(data), "degraded") {
		t.Fatalf("Load returned the stale generation")
	}
}
