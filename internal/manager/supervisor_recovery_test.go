package manager

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/fame"
	"repro/internal/snapshot"
	"repro/internal/softstack"
	"repro/internal/transport"
)

// savePartition and restorePartition checkpoint one half of a two-host
// distributed run: the partition's runner (in-flight token batches) plus
// its single node. This is the shape Cluster.Checkpoint has for a full
// deployment, reduced to what a hand-built partition needs.
func savePartition(r *fame.Runner, n *softstack.Node) func(io.Writer) error {
	return func(dst io.Writer) error {
		w, err := snapshot.NewWriter(dst, snapshot.Header{
			Cycle: uint64(r.Cycle()),
			Step:  uint64(r.Step()),
		})
		if err != nil {
			return err
		}
		w.Section("runner")
		if err := r.Save(w); err != nil {
			return err
		}
		w.Section("node/" + n.Name())
		if err := n.Save(w); err != nil {
			return err
		}
		return w.Close()
	}
}

func restorePartition(r *fame.Runner, n *softstack.Node) func(io.Reader) error {
	return func(src io.Reader) error {
		rd, _, err := snapshot.NewReader(src)
		if err != nil {
			return err
		}
		for {
			name, err := rd.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			switch name {
			case "runner":
				err = r.Restore(rd)
			case "node/" + n.Name():
				err = n.Restore(rd)
			default:
				err = fmt.Errorf("unexpected section %q", name)
			}
			if err != nil {
				return err
			}
		}
	}
}

// peerHost stands in for the remote machine: it retains its own partition
// checkpoints at the supervisor's cadence (the symmetric-cadence
// assumption RecoveryConfig documents), so a Respawn request for cycle C
// can actually be honoured.
type peerHost struct {
	mu    sync.Mutex
	ckpts map[clock.Cycles][]byte
}

func (h *peerHost) put(cycle clock.Cycles, data []byte) {
	h.mu.Lock()
	h.ckpts[cycle] = data
	h.mu.Unlock()
}

func (h *peerHost) get(cycle clock.Cycles) []byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ckpts[cycle]
}

// run simulates node b from resumeCycle to horizon, checkpointing every
// `every` cycles. dieAfter >= 0 kills the host (closes the connection)
// after that many steps; -1 runs to completion. A non-nil resume stream
// restores the partition and rewinds the bridge sequence to match — the
// respawned-peer half of the recovery contract.
func (h *peerHost) run(t *testing.T, wg *sync.WaitGroup, conn io.ReadWriter,
	linkLat, every, horizon clock.Cycles, resume []byte, resumeCycle clock.Cycles, dieAfter int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		b := softstack.NewNode(softstack.Config{Name: "b", MAC: 0x2, IP: 0x0a000002})
		br := transport.NewBridge("bridge-b", conn)
		r := fame.NewRunner()
		r.Add(b)
		r.Add(br)
		if err := r.Connect(b, 0, br, 0, linkLat); err != nil {
			panic(err)
		}
		if resume != nil {
			if err := restorePartition(r, b)(bytes.NewReader(resume)); err != nil {
				panic(fmt.Sprintf("peer restore at cycle %d: %v", resumeCycle, err))
			}
			br.Reset(conn, uint64(resumeCycle/linkLat))
		} else {
			b.StartRawStream(0, 0x1, 256, 1.0, 1<<20)
		}
		save := func() {
			var buf bytes.Buffer
			if err := savePartition(r, b)(&buf); err != nil {
				panic(fmt.Sprintf("peer checkpoint at cycle %d: %v", r.Cycle(), err))
			}
			h.put(r.Cycle(), buf.Bytes())
		}
		save()
		steps := 0
		for r.Cycle() < horizon {
			if dieAfter >= 0 && steps >= dieAfter {
				if c, ok := conn.(io.Closer); ok {
					c.Close()
				}
				return
			}
			if err := r.Run(linkLat); err != nil {
				return
			}
			steps++
			if r.Cycle()%every == 0 {
				save()
			}
		}
	}()
}

// recoveryOutcome is what one end-to-end scenario run produces: the
// supervisor's report, the surviving bridge, node a's final statistics
// and the local partition's final checkpoint bytes.
type recoveryOutcome struct {
	rep     *Report
	br      *transport.Bridge
	stats   softstack.Stats
	final   []byte
	respawn []clock.Cycles
}

// runRecoveryScenario drives a two-partition simulation (node a local,
// node b behind a bridge on a goroutine "host") to the horizon. When die
// is true the peer host is killed after 6 steps and the supervisor's
// checkpoint recovery must bring it back; otherwise it is the undisturbed
// control run the recovered one is compared against.
func runRecoveryScenario(t *testing.T, die bool) recoveryOutcome {
	const linkLat = clock.Cycles(3200)
	const every = 4 * linkLat
	const horizon = 16 * linkLat

	host := &peerHost{ckpts: make(map[clock.Cycles][]byte)}
	var wg sync.WaitGroup
	c1, c2 := net.Pipe()
	dieAfter := -1
	if die {
		dieAfter = 6
	}
	host.run(t, &wg, c2, linkLat, every, horizon, nil, 0, dieAfter)

	a := softstack.NewNode(softstack.Config{Name: "a", MAC: 0x1, IP: 0x0a000001})
	a.StartRawStream(0, 0x2, 256, 1.0, 1<<20)
	br := transport.NewBridgeConfig("to-host-b", c1, transport.BridgeConfig{
		ReadTimeout:  100 * time.Millisecond,
		WriteTimeout: 100 * time.Millisecond,
	})
	r := fame.NewRunner()
	r.Add(a)
	r.Add(br)
	if err := r.Connect(a, 0, br, 0, linkLat); err != nil {
		t.Fatal(err)
	}

	s := NewSupervisor(r)
	s.AddLocal("a")
	s.Watch("host-b", br, "b")
	var respawns []clock.Cycles
	err := s.EnableRecovery(RecoveryConfig{
		Save:    savePartition(r, a),
		Restore: restorePartition(r, a),
		Every:   every,
		Respawn: func(peer string, cycle clock.Cycles) (io.ReadWriter, error) {
			if peer != "host-b" {
				return nil, fmt.Errorf("asked to respawn unknown peer %q", peer)
			}
			data := host.get(cycle)
			if data == nil {
				return nil, fmt.Errorf("peer host has no checkpoint at cycle %d", cycle)
			}
			respawns = append(respawns, cycle)
			d1, d2 := net.Pipe()
			host.run(t, &wg, d2, linkLat, every, horizon, data, cycle, -1)
			return d1, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	rep, err := s.RunTo(horizon)
	wg.Wait()
	if err != nil {
		t.Fatalf("supervised run failed: %v", err)
	}
	var final bytes.Buffer
	if err := savePartition(r, a)(&final); err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	return recoveryOutcome{rep: rep, br: br, stats: a.Stats(), final: final.Bytes(), respawn: respawns}
}

// TestSupervisorRecoversDeadPeer is the recovery acceptance test: the
// peer host dies mid-run, and instead of degrading it for good the
// supervisor rewinds to its last checkpoint, respawns the peer from the
// peer's own checkpoint at that cycle, resets the bridge sequence, and
// completes the run with full coverage. The recovered run's final local
// state must be bit-identical to an undisturbed run.
func TestSupervisorRecoversDeadPeer(t *testing.T) {
	const linkLat = clock.Cycles(3200)
	const horizon = 16 * linkLat

	control := runRecoveryScenario(t, false)
	if control.rep.Partial {
		t.Fatal("control run flagged partial")
	}
	if len(control.respawn) != 0 {
		t.Fatalf("control run respawned peers: %v", control.respawn)
	}

	got := runRecoveryScenario(t, true)
	if got.rep.Cycle != horizon {
		t.Errorf("recovered run stopped at cycle %d, want %d", got.rep.Cycle, horizon)
	}
	if got.rep.Partial {
		t.Error("recovered run flagged partial: peer loss was not healed")
	}
	if got.rep.Recoveries != 1 {
		t.Errorf("report counts %d recoveries, want 1", got.rep.Recoveries)
	}
	if got.br.Degraded() {
		t.Error("bridge degraded despite successful recovery")
	}
	if err := got.br.Err(); err != nil {
		t.Errorf("bridge error after recovery: %v", err)
	}
	// The peer died after 6 steps; the newest checkpoint it provably
	// completed is at 4 steps (the shared 4-step cadence), so that is the
	// cycle both sides must have rewound to.
	if want := []clock.Cycles{4 * linkLat}; len(got.respawn) != 1 || got.respawn[0] != want[0] {
		t.Errorf("respawn cycles = %v, want %v", got.respawn, want)
	}
	for _, ns := range got.rep.Nodes {
		if !ns.Up || ns.LastCycle != horizon {
			t.Errorf("node status %+v, want up at cycle %d", ns, horizon)
		}
	}
	if got.stats != control.stats {
		t.Errorf("node a stats diverged after recovery: %+v vs control %+v", got.stats, control.stats)
	}
	if !bytes.Equal(got.final, control.final) {
		t.Errorf("final partition state diverged after recovery (%d vs %d bytes)",
			len(got.final), len(control.final))
	}
}

// TestSupervisorRecoveryExhausted: when the peer host cannot come back
// (Respawn keeps failing), recovery falls through to the degraded-peer
// behaviour — the run still completes, flagged partial.
func TestSupervisorRecoveryExhausted(t *testing.T) {
	const linkLat = clock.Cycles(3200)
	const every = 4 * linkLat
	const horizon = 16 * linkLat

	host := &peerHost{ckpts: make(map[clock.Cycles][]byte)}
	var wg sync.WaitGroup
	c1, c2 := net.Pipe()
	host.run(t, &wg, c2, linkLat, every, horizon, nil, 0, 6)

	a := softstack.NewNode(softstack.Config{Name: "a", MAC: 0x1, IP: 0x0a000001})
	a.StartRawStream(0, 0x2, 256, 1.0, 1<<20)
	br := transport.NewBridgeConfig("to-host-b", c1, transport.BridgeConfig{
		ReadTimeout:  100 * time.Millisecond,
		WriteTimeout: 100 * time.Millisecond,
	})
	r := fame.NewRunner()
	r.Add(a)
	r.Add(br)
	if err := r.Connect(a, 0, br, 0, linkLat); err != nil {
		t.Fatal(err)
	}
	s := NewSupervisor(r)
	s.AddLocal("a")
	s.Watch("host-b", br, "b")
	attempts := 0
	err := s.EnableRecovery(RecoveryConfig{
		Save:    savePartition(r, a),
		Restore: restorePartition(r, a),
		Every:   every,
		Respawn: func(string, clock.Cycles) (io.ReadWriter, error) {
			attempts++
			return nil, fmt.Errorf("host is gone for good")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.RunTo(horizon)
	wg.Wait()
	if err != nil {
		t.Fatalf("supervised run failed: %v", err)
	}
	if attempts == 0 {
		t.Error("recovery never attempted a respawn")
	}
	if rep.Cycle != horizon {
		t.Errorf("surviving partition stopped at cycle %d, want %d", rep.Cycle, horizon)
	}
	if !rep.Partial {
		t.Error("unrecoverable peer not flagged partial")
	}
	if rep.Recoveries != 0 {
		t.Errorf("report counts %d recoveries, want 0", rep.Recoveries)
	}
	if !br.Degraded() {
		t.Error("unrecoverable peer's bridge was not degraded")
	}
}
