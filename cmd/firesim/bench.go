package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/stats"
)

// benchVariant is one (mode, metrics) measurement at one topology size.
type benchVariant struct {
	WallNanos int64   `json:"wall_ns"`
	SimHz     float64 `json:"sim_hz"`
	Slowdown  float64 `json:"slowdown"`
}

// benchResult is the sim-rate record for one topology size.
type benchResult struct {
	Nodes  int    `json:"nodes"`
	Cycles uint64 `json:"cycles"`

	Run                benchVariant `json:"run"`
	RunParallel        benchVariant `json:"run_parallel"`
	RunMetrics         benchVariant `json:"run_metrics"`
	RunParallelMetrics benchVariant `json:"run_parallel_metrics"`

	// Overhead of enabling metrics, percent of wall time: the median of
	// per-rep instrumented/base ratios (negative means the instrumented
	// run happened to be faster — i.e. within noise).
	RunOverheadPct         float64 `json:"run_metrics_overhead_pct"`
	RunParallelOverheadPct float64 `json:"run_parallel_metrics_overhead_pct"`

	ParallelSpeedup float64 `json:"parallel_speedup"`
}

// benchFile is the BENCH_fame.json document.
type benchFile struct {
	GeneratedBy       string        `json:"generated_by"`
	TargetFreqHz      float64       `json:"target_freq_hz"`
	LinkLatencyCycles uint64        `json:"link_latency_cycles"`
	Rounds            int           `json:"rounds"`
	Reps              int           `json:"reps"`
	Results           []benchResult `json:"results"`
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	nodesList := fs.String("nodes", "2,4,8", "comma-separated rack sizes to measure")
	rounds := fs.Int("rounds", 2048, "link-latency rounds per measurement")
	reps := fs.Int("reps", 5, "repetitions per variant (best wall time wins)")
	latencyUs := fs.Float64("latency-us", 2, "link latency in microseconds")
	out := fs.String("out", "BENCH_fame.json", "output file")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the bench run to this file")
	tracefile := fs.String("trace", "", "write a runtime execution trace to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sizes, err := parseFanouts(*nodesList)
	if err != nil {
		return err
	}

	var prof obs.Profiles
	if err := prof.Start(*cpuprofile, *tracefile); err != nil {
		return err
	}
	defer prof.Stop()

	clk := clock.New(clock.DefaultTargetClock)
	doc := benchFile{
		GeneratedBy:       "firesim bench",
		TargetFreqHz:      float64(clock.DefaultTargetClock),
		LinkLatencyCycles: uint64(clk.CyclesInMicros(*latencyUs)),
		Rounds:            *rounds,
		Reps:              *reps,
	}

	table := stats.NewTable("Nodes", "Run", "RunParallel", "Speedup", "Metrics overhead")
	for _, n := range sizes {
		r, err := benchOneSize(n, *rounds, *reps, clk.CyclesInMicros(*latencyUs))
		if err != nil {
			return fmt.Errorf("bench %d nodes: %w", n, err)
		}
		doc.Results = append(doc.Results, r)
		table.AddRow(n,
			clock.Hz(r.Run.SimHz), clock.Hz(r.RunParallel.SimHz),
			fmt.Sprintf("%.2fx", r.ParallelSpeedup),
			fmt.Sprintf("%+.1f%% / %+.1f%%", r.RunOverheadPct, r.RunParallelOverheadPct))
	}

	buf, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("sim-rate across topology sizes (%d rounds x %d reps, link %.3g us):\n",
		*rounds, *reps, *latencyUs)
	fmt.Print(table.String())
	fmt.Printf("wrote %s\n", *out)
	return nil
}

// benchOneSize measures one rack size in all four variants. Each variant
// gets a fresh deployment (so FAME pipe state never carries over) running
// a ring of pings — an idle rack ticks in nanoseconds and would make any
// fixed instrumentation cost look enormous, so the overhead number is
// only meaningful under representative load. One warm-up slice precedes
// the measurement and the best of reps runs wins — the usual way to
// reject scheduler noise on a shared host.
func benchOneSize(nodes, rounds, reps int, linkLatency clock.Cycles) (benchResult, error) {
	res := benchResult{Nodes: nodes}
	oneRun := func(parallel, withMetrics bool) (time.Duration, clock.Cycles, error) {
		c, err := core.Deploy(core.Rack("tor0", nodes, core.QuadCore),
			core.DeployConfig{LinkLatency: linkLatency})
		if err != nil {
			return 0, 0, err
		}
		if withMetrics {
			c.EnableMetrics(obs.NewRegistry("bench"))
		}
		step := c.Runner.Step()
		cycles := clock.Cycles(rounds) * step
		interval := 4 * step
		count := int((cycles+4*step)/interval) + 1
		for i, src := range c.Servers {
			dst := c.Servers[(i+1)%len(c.Servers)]
			src.Ping(0, dst.IP(), count, interval, nil)
		}
		// Warm-up: one slice outside the measurement, so cold caches and
		// the parallel runner's first-round batch allocation are not
		// billed to the rate.
		if _, err := c.Runner.Measure(4*step, clock.DefaultTargetClock, parallel); err != nil {
			return 0, 0, err
		}
		rate, err := c.Runner.Measure(cycles, clock.DefaultTargetClock, parallel)
		if err != nil {
			return 0, 0, err
		}
		return rate.Wall, cycles, nil
	}

	// Base and instrumented runs are interleaved within each rep so that
	// host frequency/scheduler drift during the bench biases both sides
	// equally rather than whichever variant ran last. The displayed rates
	// use best-of-reps; the overhead is the median of per-rep
	// instrumented/base ratios, which survives slow drift and a single
	// outlier rep far better than a ratio of two independent bests.
	measurePair := func(parallel bool) (base, inst benchVariant, overhead float64, err error) {
		bestBase, bestInst := time.Duration(-1), time.Duration(-1)
		ratios := make([]float64, 0, reps)
		var cycles clock.Cycles
		for rep := 0; rep < reps; rep++ {
			wb, cy, err := oneRun(parallel, false)
			if err != nil {
				return base, inst, 0, err
			}
			if bestBase < 0 || wb < bestBase {
				bestBase = wb
			}
			wi, _, err := oneRun(parallel, true)
			if err != nil {
				return base, inst, 0, err
			}
			if bestInst < 0 || wi < bestInst {
				bestInst = wi
			}
			ratios = append(ratios, float64(wi)/float64(wb))
			cycles = cy
		}
		res.Cycles = uint64(cycles)
		sort.Float64s(ratios)
		overhead = 100 * (ratios[len(ratios)/2] - 1)
		return toVariant(cycles, bestBase), toVariant(cycles, bestInst), overhead, nil
	}

	var err error
	if res.Run, res.RunMetrics, res.RunOverheadPct, err = measurePair(false); err != nil {
		return res, err
	}
	if res.RunParallel, res.RunParallelMetrics, res.RunParallelOverheadPct, err = measurePair(true); err != nil {
		return res, err
	}
	if res.RunParallel.WallNanos > 0 {
		res.ParallelSpeedup = float64(res.Run.WallNanos) / float64(res.RunParallel.WallNanos)
	}
	return res, nil
}

func toVariant(cycles clock.Cycles, wall time.Duration) benchVariant {
	rate := clock.SimRate{TargetCycles: cycles, Wall: wall, TargetFreq: clock.DefaultTargetClock}
	return benchVariant{
		WallNanos: wall.Nanoseconds(),
		SimHz:     float64(rate.EffectiveHz()),
		Slowdown:  rate.Slowdown(),
	}
}
