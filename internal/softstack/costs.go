// Package softstack models the software stack running on simulated server
// blades: a Linux-like kernel network path, a run-queue scheduler with
// optional pinning, timers, and a socket-style API for workloads.
//
// SUBSTITUTION NOTE (see DESIGN.md): the paper boots real Linux on the
// FAME-1-transformed Rocket cores. Here, the *network beneath the stack*
// remains token-cycle-exact (the same switch models and link tokens as the
// RTL path), while the software stack's timing is modeled with explicit
// per-operation costs calibrated against the paper's own measurements:
//
//   - Section IV-A observes a ~34 µs ping RTT offset over the ideal
//     network time, attributed to "overhead in the Linux networking stack
//     and other server latency". Four kernel crossings per RTT gives
//     ~8.5 µs per crossing, our KernelTX/KernelRX default.
//   - Section IV-B measures iperf3 TCP at 1.4 Gbit/s and attributes it to
//     the slow single-issue in-order Rocket core running the network stack.
//     1500 B / 8.5 µs = 1.41 Gbit/s: the same per-packet kernel cost
//     reproduces this number exactly, which is good evidence the paper's
//     two measurements are mutually consistent.
package softstack

import (
	"repro/internal/clock"
)

// Costs holds the modeled software-stack timing constants, in target
// cycles at the node's clock. Zero values take defaults.
type Costs struct {
	// KernelTX is the per-packet transmit cost through the kernel
	// (syscall, skb alloc, protocol stack, driver, doorbell).
	KernelTX clock.Cycles
	// KernelRX is the per-packet receive cost (interrupt, softirq,
	// protocol stack, copy to socket buffer).
	KernelRX clock.Cycles
	// IRQLatency is the delivery delay from NIC packet arrival to the
	// start of kernel RX processing.
	IRQLatency clock.Cycles
	// SockWakeup is the scheduler wakeup delay from socket data ready to
	// a blocked application thread starting to run (given a free core).
	SockWakeup clock.Cycles
	// Syscall is the cost of a trivial syscall (epoll_wait return, read).
	Syscall clock.Cycles
	// SchedQuantum is the CFS-style timeslice: a thread with pending work
	// keeps its core across jobs until the quantum expires, so a
	// co-located thread can wait a full quantum — the millisecond-scale
	// stall behind microsecond-scale requests that inflates memcached
	// tail latency under thread imbalance (Section IV-E).
	SchedQuantum clock.Cycles
}

// DefaultCosts returns constants calibrated to the paper's validation
// numbers at a 3.2 GHz target clock.
func DefaultCosts(freq clock.Hz) Costs {
	// Calibration: a ping RTT crosses the kernel four times plus two IRQ
	// deliveries: 2*(KernelTX + IRQ + KernelRX) = 34 us, the offset the
	// paper measures in Figure 5. The same KernelTX bounds iperf3 at
	// 1500 B / ~8.5 us/pkt ~= 1.4 Gbit/s (Section IV-B).
	c := clock.New(freq)
	return Costs{
		KernelTX:     c.CyclesInMicros(8.0),
		KernelRX:     c.CyclesInMicros(8.0),
		IRQLatency:   c.CyclesInMicros(1.0),
		SockWakeup:   c.CyclesInMicros(3.0),
		Syscall:      c.CyclesInMicros(1.0),
		SchedQuantum: c.CyclesInMicros(1000), // ~1 ms CFS-scale timeslice
	}
}

func (c *Costs) applyDefaults(freq clock.Hz) {
	d := DefaultCosts(freq)
	if c.KernelTX == 0 {
		c.KernelTX = d.KernelTX
	}
	if c.KernelRX == 0 {
		c.KernelRX = d.KernelRX
	}
	if c.IRQLatency == 0 {
		c.IRQLatency = d.IRQLatency
	}
	if c.SockWakeup == 0 {
		c.SockWakeup = d.SockWakeup
	}
	if c.Syscall == 0 {
		c.Syscall = d.Syscall
	}
	if c.SchedQuantum == 0 {
		c.SchedQuantum = d.SchedQuantum
	}
}
