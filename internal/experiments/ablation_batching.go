package experiments

import (
	"fmt"
	"strings"

	"repro/internal/clock"
	"repro/internal/ethernet"
	"repro/internal/fame"
	"repro/internal/softstack"
	"repro/internal/stats"
	"repro/internal/switchmodel"
)

func init() {
	register("ablation-batching", func(sc Scale) (Result, error) { return AblationBatching(sc) })
}

// AblationBatchingRow is one batch-size point on the same fixed target.
type AblationBatchingRow struct {
	BatchTokens int
	MeasuredMHz float64
	PingRTTUs   float64 // target-level check: must be identical everywhere
}

// AblationBatchingResult ablates the paper's central transport design
// choice: "batching the exchange of these tokens improves host bandwidth
// utilization and hides the data movement latency of the host platform
// ... tokens can be batched up to the target's link latency, without any
// compromise in cycle accuracy. Given that the movement of network tokens
// is the fundamental bottleneck of simulation performance ... we always
// set our batch size to the target link latency being modeled."
//
// The target (an 8-node rack on a 2 us network) is held fixed; only the
// exchange granularity varies. Target-level behaviour (a ping RTT) must
// be bit-identical at every batch size, while host simulation rate climbs
// with the batch.
type AblationBatchingResult struct {
	Rows []AblationBatchingRow
}

// Title implements Result.
func (AblationBatchingResult) Title() string {
	return "Ablation: token batch size on a fixed 2 us target (Section III-B2 design choice)"
}

// Render implements Result.
func (r AblationBatchingResult) Render() string {
	t := stats.NewTable("Batch (tokens)", "Measured rate (MHz)", "Ping RTT (us)")
	for _, row := range r.Rows {
		t.AddRow(row.BatchTokens, row.MeasuredMHz, row.PingRTTUs)
	}
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString("\nThe RTT column is the cycle-accuracy proof: identical at every batch size.\n" +
		"The rate column is why FireSim always batches to the full link latency.\n")
	return b.String()
}

// AblationBatching measures simulation rate and a target-level RTT at
// several forced batch sizes on the identical target.
func AblationBatching(sc Scale) (AblationBatchingResult, error) {
	batches := []clock.Cycles{16, 64, 640, 6400}
	targetCycles := clock.Cycles(1_280_000)
	if sc.Quick {
		batches = []clock.Cycles{64, 6400}
		targetCycles = 640_000
	}

	var out AblationBatchingResult
	for _, batch := range batches {
		rate, rtt, err := batchingRun(batch, targetCycles)
		if err != nil {
			return AblationBatchingResult{}, err
		}
		out.Rows = append(out.Rows, AblationBatchingRow{
			BatchTokens: int(batch),
			MeasuredMHz: float64(rate.EffectiveHz()) / 1e6,
			PingRTTUs:   rtt,
		})
	}
	return out, nil
}

func batchingRun(batch, targetCycles clock.Cycles) (clock.SimRate, float64, error) {
	const linkLat = 6400
	arp := make(map[ethernet.IP]ethernet.MAC)
	for i := 0; i < 8; i++ {
		arp[ethernet.IP(0x0a000001+i)] = ethernet.MAC(0x1 + i)
	}
	sw := switchmodel.New(switchmodel.Config{Name: "tor", Ports: 8, SwitchingLatency: 10})
	r := fame.NewRunner()
	r.Add(sw)
	nodes := make([]*softstack.Node, 8)
	for i := range nodes {
		nodes[i] = softstack.NewNode(softstack.Config{
			Name: "n", MAC: ethernet.MAC(0x1 + i), IP: ethernet.IP(0x0a000001 + i), StaticARP: arp,
		})
		r.Add(nodes[i])
		sw.MACTable().Set(nodes[i].MAC(), i)
		if err := r.Connect(nodes[i], 0, sw, i, linkLat); err != nil {
			return clock.SimRate{}, 0, err
		}
	}
	if err := r.SetStepOverride(batch); err != nil {
		return clock.SimRate{}, 0, err
	}
	var res []softstack.PingResult
	nodes[0].Ping(0, nodes[5].IP(), 1, 1, func(rs []softstack.PingResult) { res = rs })
	rate, err := r.Measure(targetCycles, clock.DefaultTargetClock, false)
	if err != nil {
		return clock.SimRate{}, 0, err
	}
	if res == nil {
		return clock.SimRate{}, 0, fmt.Errorf("ablation-batching: ping did not complete at batch %d", batch)
	}
	return rate, nodes[0].Clock().Micros(res[0].RTT), nil
}
