package token

import (
	"fmt"

	"repro/internal/snapshot"
)

// maxBatchCycles bounds the window size a restored batch may claim. Real
// batches are at most one link latency wide; the cap only exists so a
// corrupted stream cannot request absurd allocations.
const maxBatchCycles = 1 << 24

// Save serialises the batch: the window size, then each occupied slot as
// (offset, data, flags). Slots are already in strictly increasing offset
// order, so the encoding is canonical — equal batches produce equal bytes.
func (b *Batch) Save(w *snapshot.Writer) error {
	w.Uvarint(uint64(b.N))
	w.Uvarint(uint64(len(b.Slots)))
	for _, s := range b.Slots {
		w.Uvarint(uint64(s.Offset))
		w.U64(s.Tok.Data)
		var flags uint64
		if s.Tok.Valid {
			flags |= 1
		}
		if s.Tok.Last {
			flags |= 2
		}
		w.Uvarint(flags)
	}
	return w.Err()
}

// Restore overwrites the batch from r, validating every invariant a live
// batch holds: positive window, slot count within the window, offsets
// strictly increasing and in range, stored tokens valid.
func (b *Batch) Restore(r *snapshot.Reader) error {
	n := r.Count(maxBatchCycles)
	if r.Err() != nil {
		return r.Err()
	}
	if n <= 0 {
		return fmt.Errorf("token: restored batch window %d not positive", n)
	}
	nslots := r.Count(n)
	if r.Err() != nil {
		return r.Err()
	}
	b.Reset(n)
	prev := -1
	for i := 0; i < nslots; i++ {
		off := int(r.Uvarint())
		data := r.U64()
		flags := r.Uvarint()
		if err := r.Err(); err != nil {
			return err
		}
		if off <= prev || off >= n {
			return fmt.Errorf("token: restored slot offset %d out of order or range [0,%d)", off, n)
		}
		if flags&1 == 0 || flags&^uint64(3) != 0 {
			return fmt.Errorf("token: restored slot flags %#x invalid (stored tokens must be valid)", flags)
		}
		prev = off
		b.Slots = append(b.Slots, Slot{Offset: int32(off), Tok: Token{Data: data, Valid: true, Last: flags&2 != 0}})
	}
	return nil
}
